package castle_test

// streaming_test.go covers the facade surface of the streaming pipeline:
// Options.Streaming must not change any answer on any device, the metrics
// must report batch counts and peak residency, and the telemetry exports
// (Prometheus names, flight records) must carry the new streaming fields.

import (
	"reflect"
	"strings"
	"testing"

	castle "castle"
)

// TestStreamingOptionBitIdentical runs SSB queries on every device with
// streaming on and off: answers must match exactly and streamed runs must
// report their batch accounting.
func TestStreamingOptionBitIdentical(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	devices := []castle.Options{
		{Device: castle.DeviceCAPE},
		{Device: castle.DeviceCPU},
		{Device: castle.DeviceHybrid, Placement: castle.PlacementPerOperator},
	}
	for _, q := range []castle.SSBQuery{castle.SSBQueries()[0], castle.SSBQueries()[3], castle.SSBQueries()[8]} {
		for _, opt := range devices {
			mat, _, err := db.QueryWith(q.SQL, opt)
			if err != nil {
				t.Fatalf("%s %s materializing: %v", q.Flight, opt.Device, err)
			}
			opt.Streaming = true
			str, m, err := db.QueryWith(q.SQL, opt)
			if err != nil {
				t.Fatalf("%s %s streaming: %v", q.Flight, opt.Device, err)
			}
			if !reflect.DeepEqual(mat.Data, str.Data) {
				t.Errorf("%s %s: streaming changed the answer\nmat: %v\nstr: %v",
					q.Flight, opt.Device, mat.Data, str.Data)
			}
			if m.StreamBatches == 0 {
				t.Errorf("%s %s: streamed run reports no batches", q.Flight, opt.Device)
			}
			// A mixed placement ships only survivors, so an empty answer can
			// legitimately ship zero bytes; any non-empty answer cannot.
			if len(str.Data) > 0 && m.PeakBatchBytes <= 0 {
				t.Errorf("%s %s: streamed run reports no peak batch bytes", q.Flight, opt.Device)
			}
			if m.XferOverlapCycles < 0 {
				t.Errorf("%s %s: negative overlap credit %d", q.Flight, opt.Device, m.XferOverlapCycles)
			}
		}
	}
}

// TestStreamingTelemetryExports checks the observable tail: the Prometheus
// rendering carries the peak-residency gauge (and the overlap counter when
// a crossing overlapped), and the flight record reports batch accounting.
func TestStreamingTelemetryExports(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	tel := castle.NewTelemetry()
	q := castle.SSBQueries()[3]
	_, m, err := db.QueryWith(q.SQL, castle.Options{
		Device:    castle.DeviceHybrid,
		Placement: castle.PlacementPerOperator,
		Streaming: true,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "castle_peak_batch_bytes") {
		t.Error("Prometheus output missing castle_peak_batch_bytes")
	}
	if m.XferOverlapCycles > 0 && !strings.Contains(out, "castle_xfer_overlap_cycles_total") {
		t.Error("overlap credited but castle_xfer_overlap_cycles_total not exported")
	}
	rec, ok := tel.Flight().Get(m.FlightSeq)
	if !ok {
		t.Fatalf("flight record #%d missing", m.FlightSeq)
	}
	if rec.Batches != m.StreamBatches {
		t.Errorf("flight batches = %d, metrics report %d", rec.Batches, m.StreamBatches)
	}
	if rec.PeakBatchBytes != m.PeakBatchBytes {
		t.Errorf("flight peak bytes = %d, metrics report %d", rec.PeakBatchBytes, m.PeakBatchBytes)
	}
}
