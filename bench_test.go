package castle_test

// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark exercises the experiment's
// code path per iteration and reports the paper-relevant metric via
// b.ReportMetric (speedups as "x", cost-model counts as exact values), so
//
//	go test -bench=. -benchmem
//
// both measures the simulator and prints the reproduced results. The SSB
// suite benchmarks run at a reduced scale factor to keep iterations fast;
// cmd/experiments reproduces the SF 1 numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	castle "castle"
	"castle/internal/cape/micro"
	"castle/internal/experiments"
	"castle/internal/isa"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/server"
)

const benchSF = 0.02

var (
	suiteOnce    sync.Once
	suiteResults []experiments.QueryResult
	suiteRunner  *experiments.Runner
)

func benchSuite(b *testing.B) ([]experiments.QueryResult, *experiments.Runner) {
	b.Helper()
	suiteOnce.Do(func() {
		suiteRunner = experiments.NewRunner(benchSF)
		suiteResults = suiteRunner.RunSuite()
	})
	return suiteResults, suiteRunner
}

// BenchmarkTable1CostModel executes the bit-serial microop engine and
// reports the measured step counts of the Table 1 operations.
func BenchmarkTable1CostModel(b *testing.B) {
	const vl = 4096
	words := make([]uint32, vl)
	for i := range words {
		words[i] = uint32(i)
	}
	b.ReportAllocs()
	var addSteps, searchSteps int64
	for i := 0; i < b.N; i++ {
		e := micro.NewEngine(vl)
		x := micro.NewArray(vl, 32)
		y := micro.NewArray(vl, 32)
		x.Load(words)
		y.Load(words)
		e.AddInPlace(x, y)
		addSteps = e.Stats().Steps()
		e.ResetStats()
		e.SearchEqual(x, 42)
		searchSteps = e.Stats().Steps()
	}
	b.ReportMetric(float64(addSteps), "add-steps(8n+2)")
	b.ReportMetric(float64(searchSteps), "search-steps(n+1)")
}

// BenchmarkTable2Configuration constructs the experimental setup (Table 2).
func BenchmarkTable2Configuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.TierABA
	}
	b.ReportMetric(float64(isa.SearchSteps(32)), "gp-search-cycles")
	b.ReportMetric(float64(isa.SearchStepsCAM), "cam-search-cycles")
}

// BenchmarkFig1Waterfall reports the three headline geomeans of Figure 1.
func BenchmarkFig1Waterfall(b *testing.B) {
	results, r := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One representative end-to-end query at the full design point
		// per iteration.
		r.RunQueryTier(4, experiments.TierABA)
	}
	b.ReportMetric(experiments.GeoMean(results, experiments.TierOps), "ops-only-x")
	b.ReportMetric(experiments.GeoMean(results, experiments.TierQO), "queryopt-x")
	b.ReportMetric(experiments.GeoMean(results, experiments.TierABA), "full-x")
}

// BenchmarkFig5PlanShapes enumerates the Figure 5 worked example and
// reports the three plan-shape costs in searches.
func BenchmarkFig5PlanShapes(b *testing.B) {
	q, cat := experiments.Fig5Query()
	est := optimizer.Estimator{Cat: cat}
	order := []plan.JoinEdge{*q.JoinFor("d1"), *q.JoinFor("d2")}
	var ld, rd, zz int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld = optimizer.Cost(q, est, 32768, order, 0)
		rd = optimizer.Cost(q, est, 32768, order, 2)
		zz = optimizer.Cost(q, est, 32768, order, 1)
	}
	b.ReportMetric(float64(ld), "leftdeep-searches")
	b.ReportMetric(float64(rd), "rightdeep-searches")
	b.ReportMetric(float64(zz), "zigzag-searches")
}

// BenchmarkFig6QueryOptimization runs a multi-join query at the
// operators-only and query-optimized tiers and reports both speedups.
func BenchmarkFig6QueryOptimization(b *testing.B) {
	results, r := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunQueryTier(7, experiments.TierQO) // Q3.1
	}
	b.ReportMetric(experiments.GeoMean(results, experiments.TierOps), "ops-only-x")
	b.ReportMetric(experiments.GeoMean(results, experiments.TierQO), "queryopt-x")
}

// BenchmarkFig7Breakdown measures the CSB cycle class breakdown of a
// search-dominated query.
func BenchmarkFig7Breakdown(b *testing.B) {
	results, r := benchSuite(b)
	b.ResetTimer()
	var searchShare float64
	for i := 0; i < b.N; i++ {
		run, _ := r.RunQueryTier(4, experiments.TierQO)
		var total int64
		for _, v := range run.CSBByClass {
			total += v
		}
		searchShare = float64(run.CSBByClass[isa.ClassSearch]) / float64(total)
	}
	_ = results
	b.ReportMetric(100*searchShare, "q4-search-share-%")
}

// BenchmarkFig10Microarch reports the cumulative enhancement geomeans.
func BenchmarkFig10Microarch(b *testing.B) {
	results, r := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunQueryTier(13, experiments.TierABA) // Q4.3, all enhancements active
	}
	b.ReportMetric(experiments.GeoMean(results, experiments.TierADL), "adl-x")
	b.ReportMetric(experiments.GeoMean(results, experiments.TierMKS), "mks-x")
	b.ReportMetric(experiments.GeoMean(results, experiments.TierABA), "aba-x")
}

// BenchmarkFig11Join runs the join microbenchmark at one representative
// point per iteration and reports the small-dimension speedup.
func BenchmarkFig11Join(b *testing.B) {
	var pts []experiments.MicroPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.JoinMicro(200_000, []int{1_000})
	}
	b.ReportMetric(pts[0].Speedup(), "speedup-x")
	b.ReportMetric(pts[0].SpeedupNoOpt(), "noopt-speedup-x")
}

// BenchmarkFig12Aggregation runs the aggregation microbenchmark at a
// small-group point (Castle's winning regime) and reports the speedup.
func BenchmarkFig12Aggregation(b *testing.B) {
	var pts []experiments.MicroPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AggregationMicro(200_000, []int{50})
	}
	b.ReportMetric(pts[0].Speedup(), "speedup-x")
}

// BenchmarkFig12AggregationCrossover measures the large-group regime where
// the baseline overtakes Castle.
func BenchmarkFig12AggregationCrossover(b *testing.B) {
	var pts []experiments.MicroPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AggregationMicro(200_000, []int{100_000})
	}
	b.ReportMetric(pts[0].Speedup(), "speedup-x")
}

// BenchmarkSelectionSweep runs the §7.1 selection microbenchmark.
func BenchmarkSelectionSweep(b *testing.B) {
	var pts []experiments.MicroPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.SelectionMicro([]int{1_000_000}, []int{10})
	}
	b.ReportMetric(pts[0].Speedup(), "speedup-x")
}

// BenchmarkMKSBufferSweep measures the §6.1 vmks buffer sensitivity.
func BenchmarkMKSBufferSweep(b *testing.B) {
	_, r := benchSuite(b)
	var pts []experiments.MKSBufferPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = r.MKSBufferSweep([]int{64, 512, 2048})
	}
	for _, p := range pts {
		switch p.BufferBytes {
		case 64:
			b.ReportMetric(p.Relative, "rel-64B-x")
		case 2048:
			b.ReportMetric(p.Relative, "rel-2KB-x")
		}
	}
}

// BenchmarkDataMovement reports the §6.3 byte-movement ratio.
func BenchmarkDataMovement(b *testing.B) {
	results, r := benchSuite(b)
	b.ResetTimer()
	var d experiments.DataMovement
	for i := 0; i < b.N; i++ {
		d = experiments.DataMovementSweep(results)
	}
	_ = r
	b.ReportMetric(d.Ratio(), "baseline/castle-bytes-x")
}

// BenchmarkFusionAblation measures the §7.4 operator-fusion benefit.
func BenchmarkFusionAblation(b *testing.B) {
	_, r := benchSuite(b)
	var pts []experiments.FusionAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = r.RunFusionAblation()
	}
	worst := 1.0
	for _, p := range pts {
		if p.Penalty() > worst {
			worst = p.Penalty()
		}
	}
	b.ReportMetric(worst, "max-unfused-penalty-x")
}

// BenchmarkABADiscoveryAblation measures §5.1's two bitwidth sources.
func BenchmarkABADiscoveryAblation(b *testing.B) {
	_, r := benchSuite(b)
	var pts []experiments.ABADiscoveryAblation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = r.RunABADiscoveryAblation()
	}
	b.ReportMetric(float64(pts[0].DiscoveryCycles)/float64(pts[0].StatsCycles), "q1-discovery-penalty-x")
}

// BenchmarkPIMExploration measures the §8 future-work flavor on one
// load-bound and one search-bound query.
func BenchmarkPIMExploration(b *testing.B) {
	_, r := benchSuite(b)
	var pts []experiments.PIMPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = r.RunPIMStudy()
	}
	for _, p := range pts {
		switch p.Num {
		case 3: // load-bound
			b.ReportMetric(p.Ratio(), "q3-sram/pim-x")
		case 7: // search-bound
			b.ReportMetric(p.Ratio(), "q7-sram/pim-x")
		}
	}
}

// BenchmarkPowerComparison reports the §6.1 energy ratio for Q2.1.
func BenchmarkPowerComparison(b *testing.B) {
	_, r := benchSuite(b)
	var p experiments.PowerComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = r.RunPowerComparison(4)
	}
	b.ReportMetric(p.Comparison.EnergyRatioX, "energy-ratio-x")
	b.ReportMetric(p.Comparison.PowerRatioTDPX, "tdp-ratio-x")
}

// BenchmarkReferenceCodebases reports the §4.1 scalar/AVX-512 relationship.
func BenchmarkReferenceCodebases(b *testing.B) {
	_, r := benchSuite(b)
	var c experiments.CodebaseComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = r.RunCodebaseComparison()
	}
	b.ReportMetric(c.Ratio(), "scalar/avx512-x")
}

// BenchmarkServerThroughput drives the query service with concurrent
// clients issuing mixed SSB statements through the full serving path
// (admission queue, hybrid routing, device scheduler, plan cache). Each
// iteration is one served request; ns/op is the inverse of sustained
// throughput at the configured parallelism.
func BenchmarkServerThroughput(b *testing.B) {
	db := castle.GenerateSSB(benchSF, 1)
	svc, err := server.New(db, nil, server.Config{QueueDepth: 1024, CAPETiles: 2, CPUSlots: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	queries := castle.SSBQueries()
	var n int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[int(atomic.AddInt64(&n, 1))%len(queries)]
			if _, err := svc.Do(context.Background(), server.Request{SQL: q.SQL}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := db.PlanCacheStats()
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total), "plan-cache-hit-ratio")
	}
}
