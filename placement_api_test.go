package castle_test

// placement_api_test.go covers the public surface of per-operator hybrid
// placement: Options.Placement, the combined two-device metrics, and the
// ExplainPlacement EXPLAIN surface.

import (
	"strings"
	"testing"

	castle "castle"
)

// TestPublicAPIPerOperatorPlacement runs a grouping-heavy SSB flight under
// per-operator placement and checks the result matches the forced
// single-device engines, the placement mixes devices, and the breakdown
// partitions the combined cycle total.
func TestPublicAPIPerOperatorPlacement(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	q := castle.SSBQueries()[7] // Q3.2: selective filter, city-level groups
	want, _, err := db.QueryWith(q.SQL, castle.Options{Device: castle.DeviceCAPE})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		rows, m, err := db.QueryWith(q.SQL, castle.Options{
			Device:      castle.DeviceHybrid,
			Placement:   castle.PlacementPerOperator,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != len(want.Data) {
			t.Fatalf("par=%d: %d rows, single-device run returned %d", par, len(rows.Data), len(want.Data))
		}
		for i := range rows.Data {
			for j := range rows.Data[i] {
				if rows.Data[i][j] != want.Data[i][j] {
					t.Fatalf("par=%d row %d col %d: %q vs %q", par, i, j, rows.Data[i][j], want.Data[i][j])
				}
			}
		}
		if m.DeviceUsed != "CAPE+CPU" {
			t.Fatalf("par=%d: DeviceUsed = %q, want CAPE+CPU (mixed placement expected on %s)", par, m.DeviceUsed, q.Flight)
		}
		if !strings.Contains(m.Plan, "placed plan (mixed") {
			t.Fatalf("par=%d: Plan does not describe a mixed placed pipeline:\n%s", par, m.Plan)
		}
		if m.Breakdown == nil || m.Breakdown.SumCycles() != m.Cycles {
			t.Fatalf("par=%d: breakdown rows must partition Cycles exactly", par)
		}
		sawXfer := false
		for _, op := range m.Breakdown.Operators {
			if strings.HasPrefix(op.Operator, "xfer:") {
				sawXfer = true
			}
			if op.Device == "" {
				t.Fatalf("par=%d: operator %q carries no device", par, op.Operator)
			}
		}
		if !sawXfer {
			t.Fatalf("par=%d: mixed run published no xfer: rows", par)
		}
	}
}

// TestPublicAPIExplainPlacement checks the EXPLAIN surface: the placed tree
// renders with per-operator devices, and the grand-aggregate flights stay
// uniform CAPE while the grouping-heavy flights mix.
func TestPublicAPIExplainPlacement(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	pe, err := db.ExplainPlacement(castle.SSBQueries()[0].SQL, castle.Options{}) // Q1.1
	if err != nil {
		t.Fatal(err)
	}
	if pe.Mixed || pe.FactDevice != castle.DeviceCAPE {
		t.Fatalf("Q1.1 should place uniform CAPE, got mixed=%v fact=%s", pe.Mixed, pe.FactDevice)
	}
	if !strings.Contains(pe.Tree, "uniform") || !strings.Contains(pe.Tree, "scan[lineorder]") {
		t.Fatalf("Q1.1 tree malformed:\n%s", pe.Tree)
	}
	pe, err = db.ExplainPlacement(castle.SSBQueries()[7].SQL, castle.Options{}) // Q3.2
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Mixed || pe.FactDevice != castle.DeviceCAPE {
		t.Fatalf("Q3.2 should mix with the fact stage on CAPE, got mixed=%v fact=%s", pe.Mixed, pe.FactDevice)
	}
	if pe.EstCycles <= 0 {
		t.Fatal("EstCycles missing")
	}
	if !strings.Contains(pe.Tree, "aggregate") || !strings.Contains(pe.Tree, "CPU") {
		t.Fatalf("Q3.2 tree should show a CPU aggregate:\n%s", pe.Tree)
	}
}

// TestPublicAPIPlacementValidation pins option parsing and validation.
func TestPublicAPIPlacementValidation(t *testing.T) {
	if p, err := castle.ParsePlacement("per-operator"); err != nil || p != castle.PlacementPerOperator {
		t.Fatalf("ParsePlacement(per-operator) = %v, %v", p, err)
	}
	if p, err := castle.ParsePlacement(""); err != nil || p != castle.PlacementWholeQuery {
		t.Fatalf("ParsePlacement(\"\") = %v, %v", p, err)
	}
	if _, err := castle.ParsePlacement("sideways"); err == nil {
		t.Fatal("ParsePlacement should reject unknown modes")
	}
	db := demoDB(t)
	if _, _, err := db.QueryWith("SELECT SUM(o_amount) FROM orders", castle.Options{Placement: castle.Placement(99)}); err == nil {
		t.Fatal("QueryWith should reject out-of-range Placement")
	}
	// Placement is ignored on forced-device runs: this must not error.
	if _, _, err := db.QueryWith("SELECT SUM(o_amount) FROM orders", castle.Options{
		Device: castle.DeviceCPU, Placement: castle.PlacementPerOperator,
	}); err != nil {
		t.Fatal(err)
	}
}
