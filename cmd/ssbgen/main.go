// Command ssbgen generates Star Schema Benchmark data and writes it out
// either as CSV files (one per relation, dictionary-encoded string columns
// decoded), mirroring the classic dbgen tool, or as a single CSTL binary
// database file that cmd/castle can -load directly.
//
// Usage:
//
//	ssbgen -sf 0.1 -out /tmp/ssb
//	ssbgen -sf 0.1 -format binary -out /tmp/ssb
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"castle/internal/ssb"
	"castle/internal/storage"
)

func main() {
	sf := flag.Float64("sf", 1.0, "scale factor (SF 1 = 6M lineorder rows)")
	out := flag.String("out", ".", "output directory")
	seed := flag.Uint64("seed", 1, "generator seed")
	format := flag.String("format", "csv", "output format: csv or binary")
	queries := flag.Bool("queries", false, "print the 13 SSB queries as JSON ({num, flight, sql} per line) and exit")
	flag.Parse()

	if *queries {
		enc := json.NewEncoder(os.Stdout)
		for _, q := range ssb.Queries() {
			if err := enc.Encode(map[string]any{"num": q.Num, "flight": q.Flight, "sql": q.SQL}); err != nil {
				fatalf("%v", err)
			}
		}
		return
	}

	fmt.Printf("generating SSB at SF=%.2f (seed %d)...\n", *sf, *seed)
	db := ssb.Generate(ssb.Config{SF: *sf, Seed: *seed})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	switch *format {
	case "csv":
		for _, t := range db.Tables() {
			path := filepath.Join(*out, t.Name+".csv")
			if err := writeCSV(path, t); err != nil {
				fatalf("writing %s: %v", path, err)
			}
			fmt.Printf("  %-12s %9d rows  -> %s\n", t.Name, t.Rows(), path)
		}
	case "binary":
		path := filepath.Join(*out, "ssb.cstl")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := db.WriteBinary(f); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  database -> %s (load with: castle -load %s)\n", path, path)
	default:
		fatalf("unknown format %q (csv, binary)", *format)
	}
}

func writeCSV(path string, t *storage.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	cols := t.Columns()
	for i, c := range cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
	for r := 0; r < t.Rows(); r++ {
		for i, c := range cols {
			if i > 0 {
				w.WriteByte(',')
			}
			if c.Dict != nil {
				w.WriteString(c.Dict.Decode(c.Data[r]))
			} else {
				fmt.Fprintf(w, "%d", c.Data[r])
			}
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ssbgen: "+format+"\n", args...)
	os.Exit(1)
}
