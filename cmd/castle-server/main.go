// Command castle-server serves SQL over HTTP against the CAPE simulator:
// it generates (or loads) a database, starts the admission-controlled query
// service, and exposes POST /query, GET /metrics (Prometheus text format)
// and GET /healthz. SIGINT/SIGTERM drain gracefully: in-flight and queued
// queries finish, then the process exits 0.
//
// Usage:
//
//	castle-server -sf 0.01 -listen :8642              # serve SSB at SF 0.01
//	castle-server -load ssb.cstl -device hybrid
//	castle-server -client http://localhost:8642 -clients 8 -requests 50
//
// The -client mode is a load generator: it fires mixed SSB queries at a
// running server from concurrent clients and prints a latency/outcome
// summary, exiting non-zero if any request fails.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"castle"
	"castle/internal/server"
)

func main() {
	listen := flag.String("listen", ":8642", "address to serve HTTP on")
	sf := flag.Float64("sf", 0.01, "SSB scale factor to generate")
	seed := flag.Uint64("seed", 1, "SSB generator seed")
	loadPath := flag.String("load", "", "load a CSTL binary database instead of generating SSB")
	device := flag.String("device", "hybrid", "default execution device: cape, cpu, or hybrid")
	placement := flag.String("placement", "whole-query", "hybrid device granularity: whole-query or per-operator")
	adaptive := flag.Bool("adaptive", false, "enable the mid-query re-placement checkpoint for per-operator hybrid requests")
	capeTiles := flag.Int("cape-tiles", 2, "number of CAPE tiles to schedule")
	cpuSlots := flag.Int("cpu-slots", 2, "number of baseline-CPU slots to schedule")
	maxTiles := flag.Int("max-tiles", 1, "elastic lease size: tiles/slots a single query may fan its fact sweep across")
	queueDepth := flag.Int("queue", 64, "admission queue depth (beyond this, requests are shed with 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	slowMs := flag.Int64("slow-query-ms", 0, "log requests slower than this many milliseconds with phase attribution (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	clusterNodes := flag.Int("cluster-nodes", 0, "shard the database across this many simulated nodes behind a scatter-gather coordinator (0 = single-node)")
	clusterReplicas := flag.Int("cluster-replicas", 1, "replicas per shard; the coordinator load-balances by queue depth")
	clusterPartition := flag.String("cluster-partition", "hash", "fact-table partitioning scheme: hash or range (range enables shard pruning)")
	clusterKey := flag.String("cluster-partition-key", "lo_orderdate", "fact column to partition on")
	scanSharing := flag.Bool("scan-sharing", false, "coalesce concurrent same-table queries into fused shared scans")
	coalesceWindow := flag.Duration("coalesce-window", 2*time.Millisecond, "how long an arriving query waits for sweep-mates before flushing (with -scan-sharing)")
	maxGroup := flag.Int("max-group", 8, "largest fused shared-scan group (with -scan-sharing)")

	clientURL := flag.String("client", "", "run as a load-generating client against this base URL instead of serving")
	clients := flag.Int("clients", 8, "client mode: concurrent clients")
	requests := flag.Int("requests", 50, "client mode: requests per client")
	mixedTenant := flag.Bool("mixed-tenant", false, "client mode: skewed multi-tenant workload at a fixed offered load instead of round-robin closed loop")
	rate := flag.Float64("rate", 200, "mixed-tenant mode: offered load in requests/second across all clients")
	loadDur := flag.Duration("load-duration", 10*time.Second, "mixed-tenant mode: how long to offer load")
	flag.Parse()

	if *clientURL != "" {
		if *mixedTenant {
			os.Exit(runMixedTenant(*clientURL, *clients, *rate, *loadDur, *timeout))
		}
		os.Exit(runClient(*clientURL, *clients, *requests, *timeout))
	}

	if _, err := castle.ParseDevice(*device); err != nil {
		fatalf("%v", err)
	}
	if _, err := castle.ParsePlacement(*placement); err != nil {
		fatalf("%v", err)
	}

	var db *castle.DB
	if *loadPath != "" {
		var err error
		if db, err = castle.Open(*loadPath); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("loaded database from %s\n", *loadPath)
	} else {
		fmt.Printf("generating SSB at SF=%.2f...\n", *sf)
		db = castle.GenerateSSB(*sf, *seed)
	}

	svc, err := server.New(db, nil, server.Config{
		Device:              *device,
		Placement:           *placement,
		QueueDepth:          *queueDepth,
		CAPETiles:           *capeTiles,
		CPUSlots:            *cpuSlots,
		MaxTilesPerQuery:    *maxTiles,
		DefaultTimeout:      *timeout,
		SlowQueryMillis:     *slowMs,
		ClusterNodes:        *clusterNodes,
		ClusterReplicas:     *clusterReplicas,
		ClusterPartition:    *clusterPartition,
		ClusterPartitionKey: *clusterKey,
		ScanSharing:         *scanSharing,
		CoalesceWindow:      *coalesceWindow,
		MaxGroupSize:        *maxGroup,
		Options:             castle.Options{AdaptivePlacement: *adaptive},
	})
	if err != nil {
		// Topology errors (negative shard/replica counts, a partition key
		// absent from the schema, an unknown scheme) land here descriptively.
		fatalf("%v", err)
	}

	if *debugAddr != "" {
		// Profiling gets its own mux on its own listener, so pprof never
		// shares the serving port (or its admission queue) with queries.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Printf("pprof listening on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				fmt.Fprintf(os.Stderr, "castle-server: pprof listener: %v\n", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *listen, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("%v listening on %s\n", svc, *listen)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("shutting down: draining in-flight queries...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatalf("shutdown: %v", err)
		}
		if err := svc.Close(); err != nil {
			fatalf("drain: %v", err)
		}
		fmt.Println("drained cleanly")
	case err := <-errCh:
		fatalf("serve: %v", err)
	}
}

// runClient is the load generator: nClients goroutines each issue nRequests
// mixed SSB queries and record latency and outcome.
func runClient(baseURL string, nClients, nRequests int, timeout time.Duration) int {
	queries := castle.SSBQueries()
	httpc := &http.Client{Timeout: timeout + 5*time.Second}

	type outcome struct {
		status  int
		micros  int64
		timings server.Timings
		failure string
	}
	results := make([][]outcome, nClients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < nRequests; i++ {
				q := queries[(c+i)%len(queries)]
				body, _ := json.Marshal(server.Request{SQL: q.SQL})
				t0 := time.Now()
				resp, err := httpc.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				o := outcome{micros: time.Since(t0).Microseconds()}
				if err != nil {
					o.failure = err.Error()
				} else {
					o.status = resp.StatusCode
					if resp.StatusCode != http.StatusOK {
						b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
						o.failure = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
					} else {
						var sr server.Response
						if derr := json.NewDecoder(resp.Body).Decode(&sr); derr == nil {
							o.timings = sr.TimingsMicros
						}
					}
					resp.Body.Close()
				}
				results[c] = append(results[c], o)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed int
	var lat []int64
	var sum server.Timings
	for _, rs := range results {
		for _, o := range rs {
			if o.failure == "" {
				ok++
				lat = append(lat, o.micros)
				sum.QueueMicros += o.timings.QueueMicros
				sum.LeaseMicros += o.timings.LeaseMicros
				sum.ExecMicros += o.timings.ExecMicros
				sum.SerializeMicros += o.timings.SerializeMicros
			} else {
				failed++
				fmt.Fprintf(os.Stderr, "request failed: %s\n", o.failure)
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / 1e3
	}
	fmt.Printf("clients=%d requests=%d ok=%d failed=%d elapsed=%.2fs throughput=%.1f req/s\n",
		nClients, nClients*nRequests, ok, failed, elapsed.Seconds(),
		float64(ok)/elapsed.Seconds())
	fmt.Printf("latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	if ok > 0 {
		n := float64(ok) * 1e3
		fmt.Printf("server-side attribution (mean ms): queue=%.2f lease=%.2f exec=%.2f serialize=%.2f\n",
			float64(sum.QueueMicros)/n, float64(sum.LeaseMicros)/n,
			float64(sum.ExecMicros)/n, float64(sum.SerializeMicros)/n)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runMixedTenant offers a skewed multi-tenant workload at a fixed open-loop
// rate: a handful of hot dashboard fingerprints dominate arrivals, the full
// SSB tail fills the rest, and arrivals are spread evenly across clients
// regardless of completion times. It reports latency percentiles plus the
// shared-sweep hit rate — the fraction of answers served by a fused group —
// which is how scan sharing shows up to tenants.
func runMixedTenant(baseURL string, nClients int, rate float64, dur, timeout time.Duration) int {
	queries := castle.SSBQueries()
	// Weighted fingerprint mix: tenants hammer a few dashboards (Q2.1,
	// Q3.2, Q1.1 here) while the rest of the suite trickles. Weights are
	// expanded into a pick table so a uniform index draw realizes the skew.
	weights := make([]int, len(queries))
	for i := range weights {
		weights[i] = 1
	}
	weights[3], weights[8], weights[0] = 8, 6, 4
	var pick []int
	for qi, w := range weights {
		for j := 0; j < w; j++ {
			pick = append(pick, qi)
		}
	}

	if nClients < 1 {
		nClients = 1
	}
	if rate <= 0 {
		rate = 1
	}
	httpc := &http.Client{Timeout: timeout + 5*time.Second}
	interval := time.Duration(float64(nClients) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}

	type tally struct {
		ok, failed, shared int
		lat                []int64
	}
	tallies := make([]tally, nClients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			deadline := start.Add(dur)
			for seq := 0; time.Now().Before(deadline); seq++ {
				// Deterministic per-client skewed draw: no shared rng state.
				q := queries[pick[(c*7919+seq*104729)%len(pick)]]
				body, _ := json.Marshal(server.Request{SQL: q.SQL})
				t0 := time.Now()
				resp, err := httpc.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				tl := &tallies[c]
				if err != nil {
					tl.failed++
					fmt.Fprintf(os.Stderr, "request failed: %v\n", err)
				} else {
					if resp.StatusCode == http.StatusOK {
						var sr server.Response
						if derr := json.NewDecoder(resp.Body).Decode(&sr); derr == nil {
							tl.ok++
							tl.lat = append(tl.lat, time.Since(t0).Microseconds())
							if sr.GroupSize > 1 {
								tl.shared++
							}
						} else {
							tl.failed++
						}
					} else {
						// Sheds are an expected outcome at fixed offered
						// load, not a generator failure.
						tl.failed++
						b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
						fmt.Fprintf(os.Stderr, "HTTP %d: %s\n", resp.StatusCode, bytes.TrimSpace(b))
					}
					resp.Body.Close()
				}
				select {
				case <-tick.C:
				default:
					<-tick.C // behind schedule: next arrival fires immediately
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all tally
	for _, tl := range tallies {
		all.ok += tl.ok
		all.failed += tl.failed
		all.shared += tl.shared
		all.lat = append(all.lat, tl.lat...)
	}
	sort.Slice(all.lat, func(i, j int) bool { return all.lat[i] < all.lat[j] })
	pct := func(p float64) float64 {
		if len(all.lat) == 0 {
			return 0
		}
		return float64(all.lat[int(p*float64(len(all.lat)-1))]) / 1e3
	}
	fmt.Printf("mixed-tenant: clients=%d offered=%.0f req/s duration=%.1fs ok=%d failed=%d achieved=%.1f req/s\n",
		nClients, rate, elapsed.Seconds(), all.ok, all.failed, float64(all.ok)/elapsed.Seconds())
	fmt.Printf("latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	hit := 0.0
	if all.ok > 0 {
		hit = float64(all.shared) / float64(all.ok)
	}
	fmt.Printf("shared-sweep hit rate: %.1f%% (%d of %d answers served by fused groups)\n",
		hit*100, all.shared, all.ok)
	if all.ok == 0 {
		return 1
	}
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "castle-server: "+format+"\n", args...)
	os.Exit(1)
}
