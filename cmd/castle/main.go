// Command castle is an interactive analytic query runner: it generates (or
// loads) an SSB database and executes SQL against the CAPE simulator, the
// AVX-512 baseline model, or both, printing results, plans, and cycle
// accounting.
//
// Usage:
//
//	castle -sf 0.1 -query "SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"
//	castle -sf 0.1 -ssb 4                  # run SSB query 4 (Q2.1)
//	castle -sf 0.1 -ssb 4 -device cpu
//	castle -sf 0.1 -ssb 4 -explain         # show candidate plans and costs
//	castle -sf 0.1 -save ssb.cstl          # persist the generated database
//	castle -load ssb.cstl -interactive     # REPL against a saved database
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSB scale factor")
	queryText := flag.String("query", "", "SQL query to run")
	ssbNum := flag.Int("ssb", 0, "run SSB query 1..13 instead of -query")
	device := flag.String("device", "cape", "execution device: cape, cpu, both, or hybrid (per-operator placement)")
	explain := flag.Bool("explain", false, "print every candidate plan with its cost")
	analyze := flag.Bool("analyze", false, "print the EXPLAIN ANALYZE per-operator cycle breakdown")
	noEnh := flag.Bool("no-enhancements", false, "disable ADL/MKS/ABA (unmodified CAPE)")
	shape := flag.String("shape", "", "force plan shape: left-deep, right-deep, zig-zag")
	savePath := flag.String("save", "", "write the database to this file (CSTL binary format) and exit unless a query is given")
	loadPath := flag.String("load", "", "load a database from a CSTL binary file instead of generating SSB")
	interactive := flag.Bool("interactive", false, "read SQL queries from stdin (one per line)")
	parallel := flag.Int("parallel", 1, "fan the fact sweep across N tiles/cores (clamped to available morsels)")
	traceOut := flag.String("trace-out", "", "write spans as Chrome trace-event JSON to this file on exit (open in Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write metrics in Prometheus text format to this file on exit")
	flag.Parse()

	switch *device {
	case "cape", "cpu", "both", "hybrid":
	default:
		fatalf("unknown -device %q (valid: cape, cpu, both, hybrid)", *device)
	}

	qsql := *queryText
	if *ssbNum != 0 {
		found := false
		for _, q := range ssb.Queries() {
			if q.Num == *ssbNum {
				qsql, found = q.SQL, true
				fmt.Printf("SSB query %d (%s)\n", q.Num, q.Flight)
				break
			}
		}
		if !found {
			fatalf("no SSB query %d (valid: 1..13)", *ssbNum)
		}
	}

	var db *storage.Database
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatalf("%v", err)
		}
		db, err = storage.ReadBinary(f)
		f.Close()
		if err != nil {
			fatalf("loading %s: %v", *loadPath, err)
		}
		fmt.Printf("loaded database from %s\n", *loadPath)
	} else {
		fmt.Printf("generating SSB at SF=%.2f...\n", *sf)
		db = ssb.Generate(ssb.Config{SF: *sf, Seed: 1})
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := db.WriteBinary(f); err != nil {
			fatalf("saving: %v", err)
		}
		f.Close()
		fmt.Printf("saved database to %s\n", *savePath)
	}
	cat := stats.Collect(db)

	var tel *telemetry.Telemetry
	if *traceOut != "" || *metricsOut != "" {
		tel = telemetry.New()
	}

	if *parallel < 1 {
		fatalf("-parallel must be at least 1 (got %d)", *parallel)
	}
	sess := &session{
		db: db, cat: cat,
		device: *device, explain: *explain, analyze: *analyze,
		noEnh: *noEnh, shape: *shape, parallel: *parallel, tel: tel,
		flight: telemetry.NewFlightRecorder(0),
	}

	if *interactive {
		sess.repl()
	} else {
		if qsql == "" {
			if *savePath != "" {
				return
			}
			flag.Usage()
			os.Exit(2)
		}
		if err := sess.runQuery(qsql); err != nil {
			fatalf("%v", err)
		}
	}
	if err := writeTelemetry(tel, *traceOut, *metricsOut); err != nil {
		fatalf("%v", err)
	}
}

// writeTelemetry exports the trace and metrics files requested on the
// command line.
func writeTelemetry(tel *telemetry.Telemetry, tracePath, metricsPath string) error {
	if tel == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		err = tel.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = tel.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Printf("wrote Prometheus metrics to %s\n", metricsPath)
	}
	return nil
}

// session holds the loaded database and execution settings.
type session struct {
	db       *storage.Database
	cat      *stats.Catalog
	device   string
	explain  bool
	analyze  bool
	noEnh    bool
	shape    string
	parallel int
	tel      *telemetry.Telemetry
	// flight retains a post-mortem record for every statement the session
	// runs; \flight lists them, \flight N prints one in full.
	flight *telemetry.FlightRecorder
}

// repl reads SQL statements from stdin, one per line; \q quits, \analyze
// toggles the EXPLAIN ANALYZE breakdown, \parallel N sets the fact-sweep
// fan-out.
func (s *session) repl() {
	fmt.Println("castle> enter SQL (one statement per line; \\analyze toggles breakdowns; \\explain toggles plans; \\device D switches engine; \\parallel N sets fan-out; \\flight [N] shows query post-mortems; \\q to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("castle> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q" || line == "quit" || line == "exit":
			return
		case line == "\\analyze":
			s.analyze = !s.analyze
			if s.analyze {
				fmt.Println("explain analyze: on")
			} else {
				fmt.Println("explain analyze: off")
			}
		case line == "\\explain":
			s.explain = !s.explain
			if s.explain {
				fmt.Println("explain: on (candidate plans + placed operator tree)")
			} else {
				fmt.Println("explain: off")
			}
		case line == "\\device" || strings.HasPrefix(line, "\\device "):
			arg := strings.TrimSpace(strings.TrimPrefix(line, "\\device"))
			switch arg {
			case "cape", "cpu", "both", "hybrid":
				s.device = arg
				fmt.Printf("device: %s\n", s.device)
			default:
				fmt.Fprintf(os.Stderr, "error: \\device wants cape, cpu, both or hybrid, got %q\n", arg)
			}
		case line == "\\parallel" || strings.HasPrefix(line, "\\parallel "):
			arg := strings.TrimSpace(strings.TrimPrefix(line, "\\parallel"))
			switch {
			case arg == "":
				// Bare \parallel toggles between serial and a 4-way sweep.
				if s.parallel > 1 {
					s.parallel = 1
				} else {
					s.parallel = 4
				}
			default:
				n, err := strconv.Atoi(arg)
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "error: \\parallel wants a positive integer, got %q\n", arg)
					fmt.Print("castle> ")
					continue
				}
				s.parallel = n
			}
			fmt.Printf("parallelism: %d\n", s.parallel)
		case line == "\\flight" || strings.HasPrefix(line, "\\flight "):
			s.showFlight(strings.TrimSpace(strings.TrimPrefix(line, "\\flight")))
		default:
			if err := s.runQuery(line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		fmt.Print("castle> ")
	}
}

// runQuery parses, optimizes and executes one statement on the configured
// device(s).
func (s *session) runQuery(qsql string) error {
	start := time.Now()
	qs := s.tel.StartSpan("query")
	defer qs.End()

	sp := qs.Child("parse")
	stmt, err := sql.Parse(qsql)
	sp.End()
	parseEnd := time.Now()
	if err != nil {
		return s.flightFail(qsql, start, fmt.Errorf("parse: %w", err))
	}
	sp = qs.Child("bind")
	q, err := plan.Bind(stmt, s.db)
	sp.End()
	bindEnd := time.Now()
	if err != nil {
		return s.flightFail(qsql, start, fmt.Errorf("bind: %w", err))
	}

	cfg := cape.DefaultConfig()
	if !s.noEnh {
		cfg = cfg.WithEnhancements()
	}

	var phys *plan.Physical
	osp := qs.Child("optimize")
	if s.shape != "" {
		sh, err := parseShape(s.shape)
		if err != nil {
			osp.End()
			return s.flightFail(qsql, start, err)
		}
		phys, err = optimizer.BestWithShapeTraced(q, s.cat, cfg.MAXVL, sh, osp)
		if err != nil {
			osp.End()
			return s.flightFail(qsql, start, fmt.Errorf("optimize: %w", err))
		}
	} else {
		phys, err = optimizer.OptimizeTraced(q, s.cat, cfg.MAXVL, osp)
		if err != nil {
			osp.End()
			return s.flightFail(qsql, start, fmt.Errorf("optimize: %w", err))
		}
	}
	osp.End()
	optEnd := time.Now()
	marks := flightMarks{start: start, parseEnd: parseEnd, bindEnd: bindEnd, optEnd: optEnd}

	if s.explain {
		fmt.Println("candidate plans:")
		for _, c := range optimizer.Enumerate(q, s.cat, cfg.MAXVL) {
			marker := " "
			if c.SwitchAt == phys.Switch && sameOrder(c.Joins, phys.Joins) {
				marker = "*"
			}
			fmt.Printf("  %s %-11v switch=%d searches=%-12d order=%v\n",
				marker, c.Shape(), c.SwitchAt, c.Searches, dimNames(c.Joins))
		}
		fmt.Println(optimizer.PlacePlan(phys, s.cat, cfg.MAXVL).String())
	}
	fmt.Printf("plan: %v\n\n", phys)

	if s.device == "hybrid" {
		return s.runHybrid(qs, qsql, phys, cfg, marks)
	}

	if s.device == "cape" || s.device == "both" {
		eng := cape.New(cfg)
		exec.AttachEngineTelemetry(eng, s.tel)
		castle := exec.NewCastle(eng, s.cat, exec.DefaultCastleOptions())
		castle.SetParallelism(s.parallel)
		es := qs.Child("execute")
		castle.SetTelemetry(s.tel, es)
		execStart := time.Now()
		res := castle.Run(phys, s.db)
		st := eng.Stats()
		es.SetInt("cycles", st.TotalCycles())
		es.SetStr("device", "CAPE")
		es.End()
		pred := optimizer.PredictUniform(phys, s.cat, cfg.MAXVL, plan.DeviceCAPE)
		bd := castle.Breakdown()
		applyEstimateCells(bd, pred)
		s.recordFlight(qsql, "CAPE", phys, bd, pred, len(res.Rows), st.TotalCycles(), marks, execStart)
		s.countQuery("cape", st.TotalCycles(), eng.Mem().BytesMoved(),
			phys.Shape().String(), st.Seconds(cfg.ClockHz))
		fmt.Printf("== CAPE (%v)\n", cfg)
		fmt.Print(res.Format(s.db))
		fmt.Printf("\n%v\n", st)
		fmt.Printf("wall time at %.1f GHz: %.3f ms; DRAM traffic: %.1f MB\n",
			cfg.ClockHz/1e9, st.Seconds(cfg.ClockHz)*1e3,
			float64(eng.Mem().BytesMoved())/(1<<20))
		printParallel(castle.ParallelStats())
		fmt.Println()
		if s.analyze {
			fmt.Println("EXPLAIN ANALYZE:")
			fmt.Println(bd.Format())
		}
	}
	if s.device == "cpu" || s.device == "both" {
		cpu := baseline.New(baseline.DefaultConfig())
		exec.AttachCPUTelemetry(cpu, s.tel)
		x := exec.NewCPUExec(cpu)
		x.SetParallelism(s.parallel)
		es := qs.Child("execute")
		x.SetTelemetry(s.tel, es)
		execStart := time.Now()
		res := x.Run(q, s.db)
		es.SetInt("cycles", cpu.Cycles())
		es.SetStr("device", "CPU")
		es.End()
		pred := optimizer.PredictUniform(phys, s.cat, cfg.MAXVL, plan.DeviceCPU)
		bd := x.Breakdown()
		applyEstimateCells(bd, pred)
		s.recordFlight(qsql, "CPU", phys, bd, pred, len(res.Rows), cpu.Cycles(), marks, execStart)
		s.countQuery("cpu", cpu.Cycles(), cpu.Mem().BytesMoved(), "", cpu.Seconds())
		fmt.Printf("== baseline (%v)\n", cpu.Config())
		fmt.Print(res.Format(s.db))
		fmt.Printf("\ntotal=%d cycles; wall time: %.3f ms; DRAM traffic: %.1f MB\n",
			cpu.Cycles(), cpu.Seconds()*1e3, float64(cpu.Mem().BytesMoved())/(1<<20))
		printParallel(x.ParallelStats())
		if s.analyze {
			fmt.Println("\nEXPLAIN ANALYZE:")
			fmt.Println(bd.Format())
		}
	}
	return nil
}

// runHybrid executes one plan under the optimizer's per-operator placement:
// the placed pipeline may keep the whole query on one device or split the
// fact stage and the aggregation tail across CAPE and the CPU, with both
// devices' cycle accounting combined.
func (s *session) runHybrid(qs *telemetry.Span, qsql string, phys *plan.Physical, cfg cape.Config, marks flightMarks) error {
	pp := optimizer.PlacePlan(phys, s.cat, cfg.MAXVL)
	h := exec.NewDefaultHybrid(cfg, s.cat)
	h.SetParallelism(s.parallel)
	exec.AttachEngineTelemetry(h.Castle().Engine(), s.tel)
	exec.AttachCPUTelemetry(h.CPUExec().CPU(), s.tel)
	es := qs.Child("execute")
	h.Placed().SetTelemetry(s.tel, es)
	execStart := time.Now()
	res, _, err := h.RunPlacedContext(context.Background(), pp, s.db)
	if err != nil {
		es.End()
		return s.flightFail(qsql, marks.start, err)
	}
	capeCy, cpuCy := h.Placed().DeviceCycles()
	total := capeCy + cpuCy
	used := "CAPE+CPU"
	if dev, uniform := pp.Uniform(); uniform {
		used = dev.String()
	}
	es.SetInt("cycles", total)
	es.SetStr("device", used)
	es.End()
	bd := h.Placed().Breakdown()
	applyEstimateCells(bd, pp)
	s.recordFlight(qsql, used, phys, bd, pp, len(res.Rows), total, marks, execStart)
	seconds := h.Castle().Engine().Stats().Seconds(cfg.ClockHz) + h.CPUExec().CPU().Seconds()
	moved := h.Castle().Engine().Mem().BytesMoved() + h.CPUExec().CPU().Mem().BytesMoved()
	s.countQuery(strings.ToLower(used), total, moved, phys.Shape().String(), seconds)

	fmt.Printf("== hybrid (%s)\n", used)
	fmt.Println(pp.String())
	fmt.Print(res.Format(s.db))
	fmt.Printf("\ntotal=%d cycles (CAPE %d + CPU %d); wall time: %.3f ms; DRAM traffic: %.1f MB\n",
		total, capeCy, cpuCy, seconds*1e3, float64(moved)/(1<<20))
	if s.analyze {
		fmt.Println("\nEXPLAIN ANALYZE:")
		fmt.Println(bd.Format())
	}
	return nil
}

// flightMarks carries the wall-clock boundaries of the shared planning
// phases so per-device flight records can attribute latency.
type flightMarks struct {
	start, parseEnd, bindEnd, optEnd time.Time
}

// flightFail records a post-mortem for a statement that never executed and
// passes the error through.
func (s *session) flightFail(qsql string, start time.Time, err error) error {
	wall := time.Since(start).Microseconds()
	s.flight.Record(telemetry.FlightRecord{
		SQL:         qsql,
		Fingerprint: telemetry.FingerprintSQL(qsql),
		Start:       start,
		WallMicros:  wall,
		Status:      "error",
		Error:       err.Error(),
		Phases:      []telemetry.FlightPhase{{Name: "total", Micros: wall}},
	})
	return err
}

// recordFlight retains one device execution as a flight record. The shared
// planning phases telescope from the statement's start; execute is measured
// from execStart so that under -device both the second engine's phase does
// not absorb the first engine's run (WallMicros is the phase sum, which for
// a single-device run equals end-to-end wall time).
func (s *session) recordFlight(qsql, device string, phys *plan.Physical, bd *telemetry.Breakdown, pred *plan.PlacedPlan, rows int, cycles int64, marks flightMarks, execStart time.Time) {
	p0 := marks.parseEnd.Sub(marks.start).Microseconds()
	p1 := marks.bindEnd.Sub(marks.start).Microseconds()
	p2 := marks.optEnd.Sub(marks.start).Microseconds()
	ex := time.Since(execStart).Microseconds()
	rec := telemetry.FlightRecord{
		SQL:         qsql,
		Fingerprint: telemetry.FingerprintSQL(qsql),
		Start:       marks.start,
		WallMicros:  p2 + ex,
		Status:      "ok",
		Device:      device,
		Plan:        fmt.Sprintf("%v", phys),
		RowCount:    rows,
		Cycles:      cycles,
		Phases: []telemetry.FlightPhase{
			{Name: "parse", Micros: p0},
			{Name: "bind", Micros: p1 - p0},
			{Name: "optimize", Micros: p2 - p1},
			{Name: "execute", Micros: ex},
		},
	}
	if pred != nil {
		rec.EstCycles = pred.EstCycles()
		rec.AltEstCycles = pred.AltEstCycles
	}
	if bd != nil {
		for _, o := range bd.Operators {
			dev := o.Device
			if dev == "" {
				dev = bd.Device
			}
			rec.Ops = append(rec.Ops, telemetry.FlightOp{
				Operator: o.Operator, Device: dev,
				EstCycles: o.EstCycles, Cycles: o.Cycles, Rows: o.Rows,
				EstSource: o.EstSource,
			})
		}
	}
	s.flight.Record(rec)
}

// showFlight implements \flight: with no argument it lists the retained
// records newest first; with a sequence number it prints that record's full
// post-mortem.
func (s *session) showFlight(arg string) {
	if arg == "" {
		recs := s.flight.Snapshot()
		if len(recs) == 0 {
			fmt.Println("no flight records yet (run a query first)")
			return
		}
		fmt.Printf("%4s  %-6s  %-9s  %12s  %12s  %10s  sql\n",
			"seq", "status", "device", "cycles", "est", "wall_ms")
		for _, r := range recs {
			sqlText := r.SQL
			if len(sqlText) > 48 {
				sqlText = sqlText[:45] + "..."
			}
			fmt.Printf("%4d  %-6s  %-9s  %12d  %12d  %10.3f  %s\n",
				r.Seq, r.Status, r.Device, r.Cycles, r.EstCycles,
				float64(r.WallMicros)/1e3, sqlText)
		}
		return
	}
	seq, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: \\flight wants a sequence number, got %q\n", arg)
		return
	}
	rec, ok := s.flight.Get(seq)
	if !ok {
		fmt.Fprintf(os.Stderr, "error: no flight record #%d (evicted or never recorded)\n", seq)
		return
	}
	fmt.Print(rec.Format())
}

// printParallel reports the fact-sweep fan-out of the last run, when it
// actually parallelised (the sweep may clamp below the requested degree).
func printParallel(ps exec.ParallelStats) {
	if ps.Tiles <= 1 {
		return
	}
	fmt.Printf("parallel sweep: %d tiles; elapsed=%d work=%d merge=%d; per-tile=%v\n",
		ps.Tiles, ps.ElapsedCycles, ps.WorkCycles, ps.MergeCycles, ps.TileCycles)
}

// countQuery records run-level metrics for one device execution.
func (s *session) countQuery(device string, cycles, bytesMoved int64, shape string, seconds float64) {
	if s.tel == nil {
		return
	}
	reg := s.tel.Metrics()
	reg.Counter(telemetry.MetricQueries, "Queries executed.",
		telemetry.L("device", device)).Inc()
	reg.Counter(telemetry.MetricBytesMoved, "Simulated DRAM bytes moved in both directions.",
		telemetry.L("device", device)).Add(bytesMoved)
	if shape != "" {
		reg.Counter(telemetry.MetricPlanShapes, "Executed physical plan shapes.",
			telemetry.L("shape", shape)).Inc()
	}
	reg.Histogram(telemetry.MetricQueryCycles, "Simulated cycles per query.").
		Observe(float64(cycles))
	reg.Histogram(telemetry.MetricQuerySeconds, "Simulated seconds per query.").
		Observe(seconds)
}

func parseShape(s string) (plan.Shape, error) {
	switch s {
	case "left-deep":
		return plan.LeftDeep, nil
	case "right-deep":
		return plan.RightDeep, nil
	case "zig-zag", "zigzag":
		return plan.ZigZag, nil
	}
	return 0, fmt.Errorf("unknown shape %q (left-deep, right-deep, zig-zag)", s)
}

func sameOrder(a, b []plan.JoinEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dim != b[i].Dim {
			return false
		}
	}
	return true
}

func dimNames(joins []plan.JoinEdge) []string {
	out := make([]string, len(joins))
	for i, j := range joins {
		out[i] = j.Dim
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "castle: "+format+"\n", args...)
	os.Exit(1)
}

// applyEstimateCells attaches a placed plan's source-tagged per-operator
// predictions to an EXPLAIN ANALYZE breakdown.
func applyEstimateCells(bd *telemetry.Breakdown, pp *plan.PlacedPlan) {
	cells := pp.EstimateCells()
	tc := make(map[string]telemetry.EstimateCell, len(cells))
	for k, c := range cells {
		tc[k] = telemetry.EstimateCell{Cycles: c.Cycles, Source: c.Source}
	}
	bd.ApplyEstimateCells(tc)
}
