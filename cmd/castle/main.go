// Command castle is an interactive analytic query runner: it generates (or
// loads) an SSB database and executes SQL against the CAPE simulator, the
// AVX-512 baseline model, or both, printing results, plans, and cycle
// accounting.
//
// Usage:
//
//	castle -sf 0.1 -query "SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"
//	castle -sf 0.1 -ssb 4                  # run SSB query 4 (Q2.1)
//	castle -sf 0.1 -ssb 4 -device cpu
//	castle -sf 0.1 -ssb 4 -explain         # show candidate plans and costs
//	castle -sf 0.1 -save ssb.cstl          # persist the generated database
//	castle -load ssb.cstl -interactive     # REPL against a saved database
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSB scale factor")
	queryText := flag.String("query", "", "SQL query to run")
	ssbNum := flag.Int("ssb", 0, "run SSB query 1..13 instead of -query")
	device := flag.String("device", "cape", "execution device: cape, cpu, or both")
	explain := flag.Bool("explain", false, "print every candidate plan with its cost")
	noEnh := flag.Bool("no-enhancements", false, "disable ADL/MKS/ABA (unmodified CAPE)")
	shape := flag.String("shape", "", "force plan shape: left-deep, right-deep, zig-zag")
	savePath := flag.String("save", "", "write the database to this file (CSTL binary format) and exit unless a query is given")
	loadPath := flag.String("load", "", "load a database from a CSTL binary file instead of generating SSB")
	interactive := flag.Bool("interactive", false, "read SQL queries from stdin (one per line)")
	flag.Parse()

	qsql := *queryText
	if *ssbNum != 0 {
		found := false
		for _, q := range ssb.Queries() {
			if q.Num == *ssbNum {
				qsql, found = q.SQL, true
				fmt.Printf("SSB query %d (%s)\n", q.Num, q.Flight)
			}
		}
		if !found {
			fatalf("no SSB query %d (valid: 1..13)", *ssbNum)
		}
	}

	var db *storage.Database
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatalf("%v", err)
		}
		db, err = storage.ReadBinary(f)
		f.Close()
		if err != nil {
			fatalf("loading %s: %v", *loadPath, err)
		}
		fmt.Printf("loaded database from %s\n", *loadPath)
	} else {
		fmt.Printf("generating SSB at SF=%.2f...\n", *sf)
		db = ssb.Generate(ssb.Config{SF: *sf, Seed: 1})
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := db.WriteBinary(f); err != nil {
			fatalf("saving: %v", err)
		}
		f.Close()
		fmt.Printf("saved database to %s\n", *savePath)
	}
	cat := stats.Collect(db)

	sess := &session{
		db: db, cat: cat,
		device: *device, explain: *explain, noEnh: *noEnh, shape: *shape,
	}

	if *interactive {
		sess.repl()
		return
	}
	if qsql == "" {
		if *savePath != "" {
			return
		}
		flag.Usage()
		os.Exit(2)
	}
	if err := sess.runQuery(qsql); err != nil {
		fatalf("%v", err)
	}
}

// session holds the loaded database and execution settings.
type session struct {
	db      *storage.Database
	cat     *stats.Catalog
	device  string
	explain bool
	noEnh   bool
	shape   string
}

// repl reads SQL statements from stdin, one per line; \q quits.
func (s *session) repl() {
	fmt.Println("castle> enter SQL (one statement per line; \\q to quit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("castle> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q" || line == "quit" || line == "exit":
			return
		default:
			if err := s.runQuery(line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		fmt.Print("castle> ")
	}
}

// runQuery parses, optimizes and executes one statement on the configured
// device(s).
func (s *session) runQuery(qsql string) error {
	stmt, err := sql.Parse(qsql)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	q, err := plan.Bind(stmt, s.db)
	if err != nil {
		return fmt.Errorf("bind: %w", err)
	}

	cfg := cape.DefaultConfig()
	if !s.noEnh {
		cfg = cfg.WithEnhancements()
	}

	var phys *plan.Physical
	if s.shape != "" {
		sh, err := parseShape(s.shape)
		if err != nil {
			return err
		}
		phys, err = optimizer.BestWithShape(q, s.cat, cfg.MAXVL, sh)
		if err != nil {
			return fmt.Errorf("optimize: %w", err)
		}
	} else {
		phys, err = optimizer.Optimize(q, s.cat, cfg.MAXVL)
		if err != nil {
			return fmt.Errorf("optimize: %w", err)
		}
	}

	if s.explain {
		fmt.Println("candidate plans:")
		for _, c := range optimizer.Enumerate(q, s.cat, cfg.MAXVL) {
			marker := " "
			if c.SwitchAt == phys.Switch && sameOrder(c.Joins, phys.Joins) {
				marker = "*"
			}
			fmt.Printf("  %s %-11v switch=%d searches=%-12d order=%v\n",
				marker, c.Shape(), c.SwitchAt, c.Searches, dimNames(c.Joins))
		}
	}
	fmt.Printf("plan: %v\n\n", phys)

	if s.device == "cape" || s.device == "both" {
		eng := cape.New(cfg)
		castle := exec.NewCastle(eng, s.cat, exec.DefaultCastleOptions())
		res := castle.Run(phys, s.db)
		st := eng.Stats()
		fmt.Printf("== CAPE (%v)\n", cfg)
		fmt.Print(res.Format(s.db))
		fmt.Printf("\n%v\n", st)
		fmt.Printf("wall time at %.1f GHz: %.3f ms; DRAM traffic: %.1f MB\n\n",
			cfg.ClockHz/1e9, st.Seconds(cfg.ClockHz)*1e3,
			float64(eng.Mem().BytesMoved())/(1<<20))
	}
	if s.device == "cpu" || s.device == "both" {
		cpu := baseline.New(baseline.DefaultConfig())
		res := exec.NewCPUExec(cpu).Run(q, s.db)
		fmt.Printf("== baseline (%v)\n", cpu.Config())
		fmt.Print(res.Format(s.db))
		fmt.Printf("\ntotal=%d cycles; wall time: %.3f ms; DRAM traffic: %.1f MB\n",
			cpu.Cycles(), cpu.Seconds()*1e3, float64(cpu.Mem().BytesMoved())/(1<<20))
	}
	return nil
}

func parseShape(s string) (plan.Shape, error) {
	switch s {
	case "left-deep":
		return plan.LeftDeep, nil
	case "right-deep":
		return plan.RightDeep, nil
	case "zig-zag", "zigzag":
		return plan.ZigZag, nil
	}
	return 0, fmt.Errorf("unknown shape %q (left-deep, right-deep, zig-zag)", s)
}

func sameOrder(a, b []plan.JoinEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dim != b[i].Dim {
			return false
		}
	}
	return true
}

func dimNames(joins []plan.JoinEdge) []string {
	out := make([]string, len(joins))
	for i, j := range joins {
		out[i] = j.Dim
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "castle: "+format+"\n", args...)
	os.Exit(1)
}
