// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -sf 1 -run all
//	experiments -sf 0.1 -run fig6,fig10
//	experiments -run table1,table2,fig5          # no data generation needed
//	experiments -sf 0.005 -diff 50               # differential fuzz campaign
//
// Available experiments: suite, fig1, fig5, fig6, fig7, fig10, fig11,
// fig12, selection, mks, datamovement, fusion, aba, codebases, power,
// pim, perjoin, ordersensitivity, table1, table2, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"castle/internal/diffcheck"
	"castle/internal/experiments"
)

func main() {
	sf := flag.Float64("sf", 1.0, "SSB scale factor (SF 1 = 6M-row lineorder, the paper's setting)")
	runList := flag.String("run", "all", "comma-separated experiments to run")
	quick := flag.Bool("quick", false, "shrink microbenchmark sweeps for a fast pass")
	benchJSON := flag.String("bench-json", "", "write a benchmark report (geomean, per-query cycles, K=1..4 scaling, server latency) as JSON to this path and exit")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-json: compare the run's geomean speedup against this committed baseline report; nonzero exit on regression beyond -bench-tolerance")
	benchTol := flag.Float64("bench-tolerance", 0.02, "fractional geomean regression allowed by -bench-baseline (0.02 = 2%)")
	diffN := flag.Int("diff", 0, "run a differential fuzz campaign of N random queries (reference vs CAPE vs CPU at K=1,4) and exit; nonzero exit on any mismatch")
	diffSeed := flag.Int64("diff-seed", 1, "base query seed for -diff (queries use seeds base..base+N-1)")
	diffOut := flag.String("diff-out", "DIFF_REPRO.txt", "where -diff writes the shrunk reproducer on failure")
	flag.Parse()

	if *diffN > 0 {
		runDiff(*sf, *diffN, *diffSeed, *diffOut)
		return
	}

	if *benchJSON != "" {
		fmt.Printf("benchmarking at SF=%.2f (suite + scaling curve + server load)...\n", *sf)
		rep := experiments.RunBench(*sf)
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		err = rep.WriteBenchJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (geomean speedup %.2fx; server p50=%dus p99=%dus)\n",
			*benchJSON, rep.GeomeanSpeedup, rep.Server.P50Micros, rep.Server.P99Micros)
		if *benchBaseline != "" {
			bf, err := os.Open(*benchBaseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			base, err := experiments.ReadBenchJSON(bf)
			bf.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := rep.CompareGeomean(base, *benchTol); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("geomean within %.1f%% of baseline %s (%.2fx vs %.2fx)\n",
				*benchTol*100, *benchBaseline, rep.GeomeanSpeedup, base.GeomeanSpeedup)
		}
		return
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(s))] = true
	}
	all := want["all"]
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	out := os.Stdout

	if need("table1") {
		experiments.RenderTable1(out)
		fmt.Fprintln(out)
	}
	if need("table2") {
		experiments.RenderTable2(out)
		fmt.Fprintln(out)
	}
	if need("fig5") {
		experiments.RenderFig5(out)
		fmt.Fprintln(out)
	}

	needsSuite := need("suite", "fig1", "fig6", "fig7", "fig10", "datamovement")
	needsRunner := needsSuite || need("mks", "fusion", "aba", "codebases", "power", "pim", "perjoin", "ordersensitivity")

	var r *experiments.Runner
	if needsRunner {
		fmt.Fprintf(out, "generating SSB at SF=%.2f...\n", *sf)
		r = experiments.NewRunner(*sf)
	}

	if needsSuite {
		fmt.Fprintln(out, "running the 13-query suite across all tiers (results cross-checked)...")
		results := r.RunSuite()
		experiments.RenderSuiteSummary(out, *sf, results)
		if need("fig1") {
			experiments.RenderFig1(out, results)
			fmt.Fprintln(out)
		}
		if need("fig6") {
			experiments.RenderFig6(out, results)
			fmt.Fprintln(out)
		}
		if need("fig7") {
			experiments.RenderFig7(out, results)
			fmt.Fprintln(out)
		}
		if need("fig10") {
			experiments.RenderFig10(out, results)
			fmt.Fprintln(out)
		}
		if need("datamovement") {
			experiments.RenderDataMovement(out, experiments.DataMovementSweep(results))
			fmt.Fprintln(out)
		}
	}

	if need("fig11") {
		facts := []int{1_000_000, 10_000_000}
		dims := []int{100, 1_000, 10_000, 30_000, 100_000, 250_000, 1_000_000}
		if *quick {
			facts = []int{1_000_000}
			dims = []int{100, 10_000, 250_000}
		}
		series := map[int][]experiments.MicroPoint{}
		for _, f := range facts {
			series[f] = experiments.JoinMicro(f, dims)
		}
		experiments.RenderFig11(out, series)
		fmt.Fprintln(out)
	}

	if need("fig12") {
		rows := []int{1_000_000, 10_000_000, 20_000_000}
		groups := []int{10, 100, 1_000, 5_000, 10_000, 100_000, 1_000_000}
		if *quick {
			rows = []int{1_000_000}
			groups = []int{10, 1_000, 100_000}
		}
		series := map[int][]experiments.MicroPoint{}
		for _, n := range rows {
			series[n] = experiments.AggregationMicro(n, groups)
		}
		experiments.RenderFig12(out, series)
		fmt.Fprintln(out)
	}

	if need("selection") {
		rows := []int{1_000, 100_000, 10_000_000, 100_000_000}
		sels := []int{1, 10, 50, 90}
		if *quick {
			rows = []int{100_000, 10_000_000}
			sels = []int{1, 50}
		}
		experiments.RenderSelection(out, experiments.SelectionMicro(rows, sels))
		fmt.Fprintln(out)
	}

	if need("mks") {
		experiments.RenderMKSBuffer(out, r.MKSBufferSweep([]int{64, 512, 2048}))
		fmt.Fprintln(out)
	}
	if need("fusion") {
		experiments.RenderFusion(out, r.RunFusionAblation())
		fmt.Fprintln(out)
	}
	if need("aba") {
		experiments.RenderABADiscovery(out, r.RunABADiscoveryAblation())
		fmt.Fprintln(out)
	}
	if need("codebases") {
		experiments.RenderCodebases(out, r.RunCodebaseComparison())
		fmt.Fprintln(out)
	}
	if need("perjoin") {
		pts, overall := r.RunPerJoinStudy(10) // Q3.4, the paper's example
		experiments.RenderPerJoin(out, 10, pts, overall)
		fmt.Fprintln(out)
	}
	if need("ordersensitivity") {
		experiments.RenderOrderSensitivity(out, 11, r.RunOrderSensitivity(11))
		fmt.Fprintln(out)
	}
	if need("pim") {
		experiments.RenderPIM(out, r.RunPIMStudy())
		fmt.Fprintln(out)
	}
	if need("power") {
		pts := []experiments.PowerComparison{}
		for _, n := range []int{1, 4, 7, 11} {
			pts = append(pts, r.RunPowerComparison(n))
		}
		experiments.RenderPower(out, pts)
		fmt.Fprintln(out)
	}
}

// runDiff is the -diff mode: a differential fuzz campaign over freshly
// generated SSB data. On a mismatch the shrunk reproducer is written to
// diffOut and the process exits 1; the report names the seed, so
// `diffcheck.NewSSB(sf, 42).Generate(seed)` replays it exactly.
func runDiff(sf float64, n int, base int64, diffOut string) {
	fmt.Printf("differential campaign: %d queries at SF=%.3f, seeds %d..%d, K in {1,4}\n",
		n, sf, base, base+int64(n)-1)
	c := diffcheck.NewSSB(sf, 42)
	m := c.Campaign(n, base, diffcheck.DefaultOptions(), func(done int) {
		if done%25 == 0 {
			fmt.Printf("  %d/%d ok\n", done, n)
		}
	})
	if m == nil {
		fmt.Printf("all %d queries agree across reference, CPU, and CAPE\n", n)
		return
	}
	fmt.Fprintf(os.Stderr, "MISMATCH:\n%s\n", m)
	f, err := os.Create(diffOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing repro: %v\n", err)
		os.Exit(1)
	}
	m.WriteReport(f)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing repro: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "shrunk reproducer written to %s\n", diffOut)
	os.Exit(1)
}
