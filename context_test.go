package castle_test

// context_test.go exercises the serving-facing facade additions: context
// cancellation through QueryContext, device validation, the prepared-plan
// cache, Route, and catalog safety under concurrent queries.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	castle "castle"
)

func TestQueryContextPreCanceled(t *testing.T) {
	db := demoDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, dev := range []castle.Device{castle.DeviceCAPE, castle.DeviceCPU, castle.DeviceHybrid} {
		_, _, err := db.QueryContext(ctx, "SELECT SUM(o_amount) FROM orders", castle.Options{Device: dev})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("device %v: want context.Canceled, got %v", dev, err)
		}
	}
	// The DB stays usable after cancellations.
	if _, err := db.Query("SELECT SUM(o_amount) FROM orders"); err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
}

func TestQueryContextDeadline(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := db.QueryContext(ctx, castle.SSBQueries()[0].SQL, castle.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestQueryWithRejectsUnknownDevice(t *testing.T) {
	db := demoDB(t)
	for _, bad := range []castle.Device{castle.Device(-1), castle.Device(3), castle.Device(99)} {
		if _, _, err := db.QueryWith("SELECT SUM(o_amount) FROM orders", castle.Options{Device: bad}); err == nil {
			t.Fatalf("device %d accepted", int(bad))
		}
	}
	if _, err := db.Route("SELECT SUM(o_amount) FROM orders", castle.Options{Device: castle.Device(7)}); err == nil {
		t.Fatal("Route accepted an out-of-range device")
	}
}

func TestParseDevice(t *testing.T) {
	for s, want := range map[string]castle.Device{
		"cape": castle.DeviceCAPE, "CPU": castle.DeviceCPU, " hybrid ": castle.DeviceHybrid,
	} {
		got, err := castle.ParseDevice(s)
		if err != nil || got != want {
			t.Fatalf("ParseDevice(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := castle.ParseDevice("gpu"); err == nil {
		t.Fatal("ParseDevice accepted gpu")
	}
}

func TestPlanCacheHitsAcrossQueries(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	queries := castle.SSBQueries()[:3]

	var cold []*castle.Rows
	for _, q := range queries {
		rows, _, err := db.QueryWith(q.SQL, castle.Options{})
		if err != nil {
			t.Fatalf("cold %s: %v", q.Flight, err)
		}
		cold = append(cold, rows)
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Misses < int64(len(queries)) || st.Entries < len(queries) {
		t.Fatalf("after cold runs: %+v", st)
	}

	for i, q := range queries {
		rows, _, err := db.QueryWith(q.SQL, castle.Options{})
		if err != nil {
			t.Fatalf("warm %s: %v", q.Flight, err)
		}
		if !reflect.DeepEqual(rows.Data, cold[i].Data) {
			t.Fatalf("%s: cached plan changed the result\ncold=%v\nwarm=%v",
				q.Flight, cold[i].Data, rows.Data)
		}
	}
	if st = db.PlanCacheStats(); st.Hits < int64(len(queries)) {
		t.Fatalf("after warm runs: %+v", st)
	}
}

func TestPlanCacheInvalidatedByDDLAndImport(t *testing.T) {
	db := demoDB(t)
	const q = "SELECT SUM(o_amount) FROM orders"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("no warm hit before mutation: %+v", st)
	}

	// CreateTable stales every cached plan.
	db.CreateTable("extra").Int("x", []uint32{1})
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Flushes == 0 {
		t.Fatalf("CreateTable did not flush the plan cache: %+v", st)
	}

	// ImportCSV does too.
	dir := t.TempDir()
	csv := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csv, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	flushesBefore := st.Flushes
	if err := db.ImportCSV("imported", csv); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if st = db.PlanCacheStats(); st.Flushes <= flushesBefore {
		t.Fatalf("ImportCSV did not flush the plan cache: %+v", st)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := demoDB(t)
	const q = "SELECT SUM(o_amount) FROM orders"
	opt := castle.Options{DisablePlanCache: true}
	for i := 0; i < 3; i++ {
		if _, _, err := db.QueryWith(q, opt); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("DisablePlanCache still touched the cache: %+v", st)
	}
}

func TestRouteResolvesHybrid(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	// Q1.1 (one join, one group) must route to CAPE; Q2.1 (~7000 estimated
	// groups) crosses the Figure 12 threshold and routes to the CPU.
	dev, err := db.Route(castle.SSBQueries()[0].SQL, castle.Options{Device: castle.DeviceHybrid})
	if err != nil || dev != castle.DeviceCAPE {
		t.Fatalf("Q1.1: %v, %v", dev, err)
	}
	dev, err = db.Route(castle.SSBQueries()[3].SQL, castle.Options{Device: castle.DeviceHybrid})
	if err != nil || dev != castle.DeviceCPU {
		t.Fatalf("Q2.1: %v, %v", dev, err)
	}
	// Concrete devices pass through untouched.
	dev, err = db.Route("SELECT SUM(lo_revenue) FROM lineorder", castle.Options{Device: castle.DeviceCPU})
	if err != nil || dev != castle.DeviceCPU {
		t.Fatalf("passthrough: %v, %v", dev, err)
	}
}

func TestConcurrentQueriesShareCatalog(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	const goroutines = 8
	want, err := db.Query(castle.SSBQueries()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}

	// Force the catalog dirty again so the concurrent queries race on the
	// collect-once decision as well as the plan cache.
	db.CreateTable("scratch").Int("v", []uint32{1, 2, 3})

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opt := castle.Options{Device: castle.Device(g % 3)}
			rows, _, err := db.QueryWith(castle.SSBQueries()[0].SQL, opt)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", g, err)
				return
			}
			if !reflect.DeepEqual(rows.Data, want.Data) {
				errs <- fmt.Errorf("goroutine %d: rows diverged: %v vs %v", g, rows.Data, want.Data)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
