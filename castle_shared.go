package castle

// castle_shared.go is the multi-query entry point behind scan sharing: a
// batch of statements submitted together is partitioned into fused
// shared-scan groups (same fact table, same routed device, fused-sweep
// eligible) and solo leftovers. A fused group executes as one fact sweep —
// the scan streams once over the union of member columns while every
// member's predicate sets, probes and aggregation tails run against the
// resident data — and takes one engine, not N. Member results are
// bit-identical to solo execution; member cycle totals partition the fused
// run exactly (the scan is attributed pro-rata with a largest-remainder
// split). The query service's coalescing window feeds admission batches
// through this entry point.

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/telemetry"
)

// sharedGroupID hands out process-unique fused-group identities for flight
// records and metrics.
var sharedGroupID atomic.Uint64

// ScanClass is the coalescing identity of a statement: queries agreeing on
// Fact and Device are candidates for one fused sweep, and queries sharing
// Fingerprint are textually identical after normalization (a scheduler can
// serve them from a single execution). Resolving a class costs one
// plan-cache lookup for an already-seen statement.
type ScanClass struct {
	// Fact is the fact table the query sweeps.
	Fact string
	// Device is the concrete engine the query would execute on under the
	// options (hybrid routing resolved).
	Device Device
	// Fingerprint is the normalized statement fingerprint.
	Fingerprint string
}

// ScanClassOf resolves the coalescing identity of a statement under opt.
func (db *DB) ScanClassOf(sqlText string, opt Options) (ScanClass, error) {
	dev, err := db.Route(sqlText, opt)
	if err != nil {
		return ScanClass{}, err
	}
	o := opt
	o.Device = dev
	cp, err := db.prepare(nil, sqlText, o, capeConfig(o).MAXVL)
	if err != nil {
		return ScanClass{}, err
	}
	return ScanClass{
		Fact:        cp.Bound.Fact,
		Device:      dev,
		Fingerprint: telemetry.FingerprintSQL(sqlText),
	}, nil
}

// sharedMember is one statement of a group batch bound to its caller slot.
type sharedMember struct {
	idx int // position in the caller's sqls slice
	sql string
	cp  optimizer.CachedPlan
}

// QueryGroup executes a batch of statements with background context; see
// QueryGroupContext.
func (db *DB) QueryGroup(sqls []string, opt Options) ([]*Rows, []*Metrics, error) {
	return db.QueryGroupContext(context.Background(), sqls, opt)
}

// QueryGroupContext executes a batch of statements together, fusing
// same-fact, same-device, sweep-eligible members into shared fact scans
// when opt.ScanSharing is set. Results and metrics align with sqls by
// index. Every member's rows are bit-identical to running it alone;
// fused members report GroupID/GroupSize and an attributed cycle share
// whose per-group sum equals the fused engine total exactly. Ineligible
// or solitary members fall back to ordinary solo execution transparently.
// Fused execution runs whole-query on the routed device; solo members
// keep the full option set. Any member's failure fails the batch.
func (db *DB) QueryGroupContext(ctx context.Context, sqls []string, opt Options) ([]*Rows, []*Metrics, error) {
	if err := opt.Device.validate(); err != nil {
		return nil, nil, err
	}
	if err := opt.Placement.validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(sqls)
	rows := make([]*Rows, n)
	mets := make([]*Metrics, n)
	if n == 0 {
		return rows, mets, nil
	}

	var solo []int
	byKey := make(map[string][]sharedMember)
	var keyOrder []string
	if opt.ScanSharing && n > 1 {
		for i, sqlText := range sqls {
			dev, err := db.Route(sqlText, opt)
			if err != nil {
				return nil, nil, fmt.Errorf("castle: group member %d: %w", i, err)
			}
			o := opt
			o.Device = dev
			cp, err := db.prepare(nil, sqlText, o, capeConfig(o).MAXVL)
			if err != nil {
				return nil, nil, fmt.Errorf("castle: group member %d: %w", i, err)
			}
			key := cp.Bound.Fact + "|" + dev.String()
			if _, seen := byKey[key]; !seen {
				keyOrder = append(keyOrder, key)
			}
			byKey[key] = append(byKey[key], sharedMember{idx: i, sql: sqlText, cp: cp})
		}
	} else {
		for i := range sqls {
			solo = append(solo, i)
		}
	}

	cfg := capeConfig(opt)
	for _, key := range keyOrder {
		candidates := byKey[key]
		onCAPE := strings.HasSuffix(key, "|"+DeviceCAPE.String())

		members := candidates
		if onCAPE {
			// Greedy admission against the fused-sweep eligibility check:
			// a member whose plan would push the group over the register
			// budget (or that needs GP-mode arithmetic) runs solo instead.
			members = members[:0:0]
			var plansAcc []*plan.Physical
			for _, m := range candidates {
				trial := append(plansAcc[:len(plansAcc):len(plansAcc)], m.cp.Phys)
				if exec.CAPESharedEligible(trial, cfg) == nil {
					members = append(members, m)
					plansAcc = trial
				} else {
					solo = append(solo, m.idx)
				}
			}
		}
		if len(members) < 2 {
			for _, m := range members {
				solo = append(solo, m.idx)
			}
			continue
		}
		var err error
		if onCAPE {
			err = db.runSharedCAPEGroup(ctx, members, opt, cfg, rows, mets)
		} else {
			err = db.runSharedCPUGroup(ctx, members, opt, cfg, rows, mets)
		}
		if err != nil {
			return nil, nil, err
		}
	}

	for _, i := range solo {
		r, m, err := db.QueryContext(ctx, sqls[i], opt)
		if err != nil {
			return nil, nil, fmt.Errorf("castle: group member %d: %w", i, err)
		}
		rows[i], mets[i] = r, m
	}
	return rows, mets, nil
}

// shareOf splits a group-level term across n members exactly (largest
// remainder by member position), matching the executors' attribution.
func shareOf(t int64, i, n int) int64 {
	s := t / int64(n)
	if int64(i) < t%int64(n) {
		s++
	}
	return s
}

// runSharedCAPEGroup executes one fused CAPE group and fills the members'
// caller slots.
func (db *DB) runSharedCAPEGroup(ctx context.Context, members []sharedMember, opt Options, cfg cape.Config, rows []*Rows, mets []*Metrics) error {
	start := time.Now()
	tel := opt.Telemetry
	cat := db.catalog()
	plans := make([]*plan.Physical, len(members))
	for i, m := range members {
		plans[i] = m.cp.Phys
	}

	eng := cape.New(cfg)
	exec.AttachEngineTelemetry(eng, tel)
	opts := exec.DefaultCastleOptions()
	opts.Fusion = !opt.DisableFusion

	gs := tel.StartSpan("fused-sweep")
	gs.SetStr("device", "CAPE")
	gs.SetInt("members", int64(len(members)))
	out, stats, err := exec.RunSharedCAPE(ctx, eng, cat, opts, plans, db.store)
	gs.SetInt("cycles", stats.TotalCycles)
	gs.End()
	if err != nil {
		return err
	}

	var est optimizer.SharedEstimate
	if e, perr := optimizer.PredictShared(plans, cat, cfg.MAXVL, plan.DeviceCAPE); perr == nil {
		est = e
	}
	gid := sharedGroupID.Add(1)
	bytesMoved := eng.Mem().BytesMoved()
	countSharedSweep(tel, "cape", len(members))
	for i, m := range members {
		res := out[i]
		met := &Metrics{
			Cycles:           res.Cycles,
			Seconds:          float64(res.Cycles) / cfg.ClockHz,
			BytesMoved:       shareOf(bytesMoved, i, len(members)),
			Plan:             plans[i].String(),
			DeviceUsed:       "CAPE",
			Breakdown:        res.Breakdown,
			GroupID:          gid,
			GroupSize:        len(members),
			SharedScanCycles: stats.SharedScanCycles,
		}
		if est.MemberCycles != nil {
			met.EstCycles = est.MemberCycles[i]
		}
		db.finishGroupMember(tel, met, m, plans[i].Shape().String(), start)
		rows[m.idx], mets[m.idx] = db.decode(res.Result), met
	}
	return nil
}

// runSharedCPUGroup executes one fused CPU group and fills the members'
// caller slots.
func (db *DB) runSharedCPUGroup(ctx context.Context, members []sharedMember, opt Options, cfg cape.Config, rows []*Rows, mets []*Metrics) error {
	start := time.Now()
	tel := opt.Telemetry
	queries := make([]*plan.Query, len(members))
	for i, m := range members {
		queries[i] = m.cp.Bound
	}

	cpu := baseline.New(baseline.DefaultConfig())
	exec.AttachCPUTelemetry(cpu, tel)

	gs := tel.StartSpan("fused-sweep")
	gs.SetStr("device", "CPU")
	gs.SetInt("members", int64(len(members)))
	out, stats, err := exec.RunSharedCPU(ctx, cpu, queries, db.store, 0)
	gs.SetInt("cycles", stats.TotalCycles)
	gs.End()
	if err != nil {
		return err
	}

	// Best-effort shared prediction: CPU preparations stop at binding, so
	// the group estimate runs its own plan-shape pass like the solo CPU path.
	var est optimizer.SharedEstimate
	cat := db.catalog()
	physes := make([]*plan.Physical, 0, len(members))
	for _, q := range queries {
		p, perr := optimizer.Optimize(q, cat, cfg.MAXVL)
		if perr != nil {
			physes = nil
			break
		}
		physes = append(physes, p)
	}
	if physes != nil {
		if e, perr := optimizer.PredictShared(physes, cat, cfg.MAXVL, plan.DeviceCPU); perr == nil {
			est = e
		}
	}

	gid := sharedGroupID.Add(1)
	bytesMoved := cpu.Mem().BytesMoved()
	countSharedSweep(tel, "cpu", len(members))
	for i, m := range members {
		res := out[i]
		met := &Metrics{
			Cycles:           res.Cycles,
			Seconds:          float64(res.Cycles) / cpu.Config().ClockHz,
			BytesMoved:       shareOf(bytesMoved, i, len(members)),
			DeviceUsed:       "CPU",
			Breakdown:        res.Breakdown,
			GroupID:          gid,
			GroupSize:        len(members),
			SharedScanCycles: stats.SharedScanCycles,
		}
		if est.MemberCycles != nil {
			met.EstCycles = est.MemberCycles[i]
		}
		db.finishGroupMember(tel, met, m, "", start)
		rows[m.idx], mets[m.idx] = db.decode(res.Result), met
	}
	return nil
}

// countSharedSweep records the fused-execution counters: one shared sweep
// on the device, n member queries served fused.
func countSharedSweep(tel *Telemetry, device string, n int) {
	if tel == nil {
		return
	}
	reg := tel.Metrics()
	reg.Counter(telemetry.MetricSharedSweeps,
		"Fused shared-scan executions (one per coalesced group).",
		telemetry.L("device", device)).Inc()
	reg.Counter(telemetry.MetricCoalescedQueries,
		"Member queries served by fused shared-scan executions.",
		telemetry.L("kind", "fused")).Add(int64(n))
}

// finishGroupMember records one fused member's run-level metrics and flight
// record, stamping the group identity. Preparation happened before the
// group formed, so the member's flight phases carry execution only.
func (db *DB) finishGroupMember(tel *Telemetry, m *Metrics, mem sharedMember, shape string, start time.Time) {
	db.recordQueryMetrics(tel, nil, m, shape)
	if tel == nil {
		return
	}
	rowCount := 0
	var ops []telemetry.FlightOp
	if m.Breakdown != nil {
		ops = make([]telemetry.FlightOp, 0, len(m.Breakdown.Operators))
		for _, o := range m.Breakdown.Operators {
			dev := o.Device
			if dev == "" {
				dev = m.Breakdown.Device
			}
			ops = append(ops, telemetry.FlightOp{
				Operator: o.Operator, Device: dev,
				EstCycles: o.EstCycles, Cycles: o.Cycles, Rows: o.Rows,
			})
		}
		for _, o := range m.Breakdown.Operators {
			if o.Operator == "aggregate" {
				rowCount = int(o.Rows)
			}
		}
	}
	wall := time.Since(start).Microseconds()
	m.FlightSeq = tel.Flight().Record(telemetry.FlightRecord{
		SQL:         mem.sql,
		Fingerprint: telemetry.FingerprintSQL(mem.sql),
		Start:       start,
		WallMicros:  wall,
		Status:      "ok",
		Device:      m.DeviceUsed,
		Plan:        m.Plan,
		RowCount:    rowCount,
		Cycles:      m.Cycles,
		EstCycles:   m.EstCycles,
		GroupID:     m.GroupID,
		GroupSize:   m.GroupSize,
		Phases: []telemetry.FlightPhase{
			{Name: "execute", Micros: wall},
		},
		Ops: ops,
	})
}
