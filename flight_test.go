package castle_test

import (
	"strings"
	"testing"

	castle "castle"
)

// TestEstimatesForAllSSBQueries pins the predicted-vs-actual contract on
// the facade: for every SSB query on both forced devices, the cost model's
// per-operator estimates land on the EXPLAIN ANALYZE breakdown — every
// priced operator row (prep/filter/join/aggregate) is Estimated(), i.e.
// carries a provenance source even when the histogram rounds its cost to
// zero cycles — and the rendered table grows the est and est/act columns.
func TestEstimatesForAllSSBQueries(t *testing.T) {
	db := castle.GenerateSSB(0.005, 1)
	for _, q := range castle.SSBQueries() {
		for _, dev := range []castle.Device{castle.DeviceCAPE, castle.DeviceCPU} {
			_, m, err := db.QueryWith(q.SQL, castle.Options{Device: dev})
			if err != nil {
				t.Fatalf("%s on %v: %v", q.Flight, dev, err)
			}
			if m.EstCycles <= 0 {
				t.Errorf("%s on %v: no total estimate (EstCycles=%d)", q.Flight, dev, m.EstCycles)
			}
			if m.AltEstCycles <= 0 {
				t.Errorf("%s on %v: no alternative-placement estimate", q.Flight, dev)
			}
			if m.Breakdown == nil {
				t.Fatalf("%s on %v: no breakdown", q.Flight, dev)
			}
			for _, op := range m.Breakdown.Operators {
				priced := op.Operator == "filter" || op.Operator == "aggregate" ||
					strings.HasPrefix(op.Operator, "prep:") || strings.HasPrefix(op.Operator, "join:")
				if priced && !op.Estimated() {
					t.Errorf("%s on %v: operator %q has no estimate", q.Flight, dev, op.Operator)
				}
				if !priced && op.Estimated() {
					t.Errorf("%s on %v: unpriced operator %q has estimate %d (%s)", q.Flight, dev, op.Operator, op.EstCycles, op.EstSource)
				}
			}
			table := m.Breakdown.Format()
			if !strings.Contains(table, "est") || !strings.Contains(table, "est/act") {
				t.Errorf("%s on %v: table missing est columns:\n%s", q.Flight, dev, table)
			}
		}
	}
}

// TestFacadeFlightRecords checks the facade-side flight recording: every
// query through QueryWith commits one record whose phases partition its
// wall time, and failed statements are recorded with their error.
func TestFacadeFlightRecords(t *testing.T) {
	db := castle.GenerateSSB(0.005, 1)
	tel := castle.NewTelemetry()
	q := castle.SSBQueries()[0]

	_, m, err := db.QueryWith(q.SQL, castle.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if m.FlightSeq == 0 {
		t.Fatal("metrics carry no flight sequence")
	}
	rec, ok := tel.Flight().Get(m.FlightSeq)
	if !ok {
		t.Fatalf("flight record #%d missing", m.FlightSeq)
	}
	if rec.Status != "ok" || rec.SQL != q.SQL || rec.Cycles != m.Cycles {
		t.Fatalf("flight record: %+v", rec)
	}
	if rec.SumPhaseMicros() != rec.WallMicros || rec.WallMicros <= 0 {
		t.Fatalf("phases %+v sum %dµs, wall %dµs", rec.Phases, rec.SumPhaseMicros(), rec.WallMicros)
	}
	if rec.PhaseMicros("execute") <= 0 {
		t.Fatalf("no execute phase: %+v", rec.Phases)
	}
	if len(rec.Ops) == 0 || rec.EstCycles != m.EstCycles {
		t.Fatalf("record ops/estimates incomplete: %+v", rec)
	}

	// Failures are recorded too.
	if _, _, err := db.QueryWith("SELECT FROM nope", castle.Options{Telemetry: tel}); err == nil {
		t.Fatal("bad statement accepted")
	}
	snap := tel.Flight().Snapshot()
	if len(snap) != 2 {
		t.Fatalf("flight ring holds %d records, want 2", len(snap))
	}
	if snap[0].Status != "error" || snap[0].Error == "" {
		t.Fatalf("failed statement not recorded: %+v", snap[0])
	}
}
