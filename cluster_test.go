package castle_test

// cluster_test.go pins the scale-out acceptance contract at the public
// facade: all 13 SSB queries are bit-identical to single-node execution at
// every topology (N x R, hash and range, every device path), the per-shard
// EXPLAIN ANALYZE rows partition the cycle total exactly, pruning is
// visible in the plan, and flight-record phases sum to the wall time.

import (
	"reflect"
	"strings"
	"testing"

	"castle"
	"castle/internal/telemetry"
)

// clusterGoldenDB is shared across the golden tests (generation dominates
// test time at this scale factor).
func clusterGoldenDB(t *testing.T) *castle.DB {
	t.Helper()
	return castle.GenerateSSB(0.002, 1)
}

func TestClusterGoldenSSB(t *testing.T) {
	db := clusterGoldenDB(t)
	queries := castle.SSBQueries()

	devices := []castle.Options{
		{Device: castle.DeviceCAPE, MAXVL: 2048},
		{Device: castle.DeviceCPU},
		{Device: castle.DeviceHybrid, Placement: castle.PlacementPerOperator, MAXVL: 2048},
	}

	// Single-node truth per device.
	truth := make(map[int]*castle.Rows)
	for _, q := range queries {
		rows, _, err := db.QueryWith(q.SQL, devices[0])
		if err != nil {
			t.Fatalf("single-node Q%d: %v", q.Num, err)
		}
		truth[q.Num] = rows
		for _, opt := range devices[1:] {
			other, _, err := db.QueryWith(q.SQL, opt)
			if err != nil {
				t.Fatalf("single-node Q%d (%s): %v", q.Num, opt.Device, err)
			}
			if !reflect.DeepEqual(other.Data, rows.Data) {
				t.Fatalf("single-node devices disagree on Q%d", q.Num)
			}
		}
	}

	for _, partition := range []string{"hash", "range"} {
		for _, n := range []int{1, 2, 4} {
			for _, r := range []int{1, 2} {
				cl, err := db.Cluster(castle.ClusterOptions{Nodes: n, Replicas: r, Partition: partition})
				if err != nil {
					t.Fatalf("Cluster(n=%d r=%d %s): %v", n, r, partition, err)
				}
				for _, opt := range devices {
					for _, q := range queries {
						rows, m, err := cl.QueryWith(q.SQL, opt)
						if err != nil {
							t.Fatalf("%s n=%d r=%d dev=%s Q%d: %v", partition, n, r, opt.Device, q.Num, err)
						}
						if !reflect.DeepEqual(rows.Data, truth[q.Num].Data) {
							t.Fatalf("%s n=%d r=%d dev=%s Q%d: sharded result differs from single-node",
								partition, n, r, opt.Device, q.Num)
						}
						if m.Cluster == nil {
							t.Fatalf("Q%d: Metrics.Cluster missing", q.Num)
						}
						if m.Breakdown.SumCycles() != m.Breakdown.TotalCycles || m.Breakdown.TotalCycles != m.Cycles {
							t.Fatalf("%s n=%d r=%d dev=%s Q%d: breakdown rows (sum %d) do not partition cycles (total %d, metrics %d)",
								partition, n, r, opt.Device, q.Num, m.Breakdown.SumCycles(), m.Breakdown.TotalCycles, m.Cycles)
						}
						shardRows := 0
						for _, o := range m.Breakdown.Operators {
							if strings.HasPrefix(o.Operator, "shard[") {
								shardRows++
							}
						}
						if shardRows != n {
							t.Fatalf("%s n=%d Q%d: EXPLAIN ANALYZE has %d shard rows, want %d", partition, n, q.Num, shardRows, n)
						}
					}
				}
			}
		}
	}
}

// TestClusterPruningVisibleInPlan asserts shard pruning shows up in the
// EXPLAIN surface when the partition key is predicated: every SSB flight-1
// query filters d_year through the date join, but a direct lo_orderdate
// predicate is the partition-key case.
func TestClusterPruningVisibleInPlan(t *testing.T) {
	db := clusterGoldenDB(t)
	cl, err := db.Cluster(castle.ClusterOptions{Nodes: 4, Partition: "range"})
	if err != nil {
		t.Fatal(err)
	}
	sqlText := "SELECT SUM(lo_revenue) FROM lineorder WHERE lo_orderdate <= 19920201"
	rows, m, err := cl.QueryWith(sqlText, castle.Options{Device: castle.DeviceCPU})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cluster.PrunedShards == 0 {
		t.Fatal("no shards pruned for a tight partition-key predicate")
	}
	if !strings.Contains(m.Plan, "pruned (key range)") {
		t.Fatalf("pruning not visible in plan:\n%s", m.Plan)
	}
	single, _, err := db.QueryWith(sqlText, castle.Options{Device: castle.DeviceCPU})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows.Data, single.Data) {
		t.Fatal("pruned execution differs from single-node")
	}
}

// TestClusterFlightPhases asserts the cluster flight record's
// prepare/scatter/gather phases partition WallMicros exactly.
func TestClusterFlightPhases(t *testing.T) {
	db := clusterGoldenDB(t)
	tel := castle.NewTelemetry()
	cl, err := db.Cluster(castle.ClusterOptions{Nodes: 2, Replicas: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range castle.SSBQueries() {
		_, m, err := cl.QueryWith(q.SQL, castle.Options{Device: castle.DeviceHybrid, Telemetry: tel})
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		fr, ok := tel.Flight().Get(m.FlightSeq)
		if !ok {
			t.Fatalf("Q%d: no flight record %d", q.Num, m.FlightSeq)
		}
		var sum int64
		names := make([]string, 0, len(fr.Phases))
		for _, p := range fr.Phases {
			sum += p.Micros
			names = append(names, p.Name)
		}
		if sum != fr.WallMicros {
			t.Fatalf("Q%d: phases sum %d != wall %d", q.Num, sum, fr.WallMicros)
		}
		if strings.Join(names, ",") != "prepare,scatter,gather" {
			t.Fatalf("Q%d: phases = %v", q.Num, names)
		}
	}
	// The cluster instruments must be registered and moving.
	reg := tel.Metrics()
	if v := reg.CounterValue(telemetry.MetricShuffleBytes, telemetry.L("shard", "0")); v <= 0 {
		t.Fatalf("castle_shuffle_bytes_total{shard=0} = %d, want > 0", v)
	}
}

func TestClusterOptionsValidation(t *testing.T) {
	db := clusterGoldenDB(t)
	if _, err := db.Cluster(castle.ClusterOptions{Nodes: 0}); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	if _, err := db.Cluster(castle.ClusterOptions{Nodes: 2, Replicas: -1}); err == nil {
		t.Fatal("Replicas=-1 accepted")
	}
	if _, err := db.Cluster(castle.ClusterOptions{Nodes: 2, PartitionKey: "lo_missing"}); err == nil {
		t.Fatal("missing partition key accepted")
	}
	if _, err := db.Cluster(castle.ClusterOptions{Nodes: 2, Partition: "round-robin"}); err == nil {
		t.Fatal("unknown partition scheme accepted")
	}
}
