package castle_test

// castle_shared_test.go is the golden gate for shared scans: every SSB
// query answered by a fused multi-query sweep must be bit-identical to its
// solo run on both devices, and member cycle attribution must partition
// the group total exactly.

import (
	"reflect"
	"testing"

	castle "castle"
)

// runSolo answers every query individually on the given device.
func runSolo(t *testing.T, db *castle.DB, sqls []string, dev castle.Device) []*castle.Rows {
	t.Helper()
	out := make([]*castle.Rows, len(sqls))
	for i, sql := range sqls {
		rows, _, err := db.QueryWith(sql, castle.Options{Device: dev})
		if err != nil {
			t.Fatalf("solo member %d: %v", i, err)
		}
		out[i] = rows
	}
	return out
}

// TestSharedGroupMatchesSoloGolden coalesces randomized mixed groups of
// the 13 SSB queries on each device and checks fused answers against solo.
func TestSharedGroupMatchesSoloGolden(t *testing.T) {
	db := castle.GenerateSSB(0.01, 20260807)
	queries := castle.SSBQueries()
	// Deterministic mixed groups: a flight-order slice, a reversed slice,
	// and an interleaved pick — together they cover all 13 queries per
	// device without relying on runtime randomness.
	groups := [][]int{
		{0, 1, 4, 5},          // Q1.x SumMul members must degrade to solo on CAPE, not diverge
		{4, 6, 5, 3},          // Q2.x shuffled
		{12, 10, 8, 7, 9, 11}, // Q3.4..Q4.3 reversed-ish
		{0, 4, 7, 11},         // one per flight family
	}
	for _, dev := range []castle.Device{castle.DeviceCAPE, castle.DeviceCPU} {
		for gi, idxs := range groups {
			sqls := make([]string, len(idxs))
			for i, qi := range idxs {
				sqls[i] = queries[qi].SQL
			}
			solo := runSolo(t, db, sqls, dev)
			rows, mets, err := db.QueryGroup(sqls, castle.Options{Device: dev, ScanSharing: true})
			if err != nil {
				t.Fatalf("%s group %d: %v", dev, gi, err)
			}
			if len(rows) != len(sqls) || len(mets) != len(sqls) {
				t.Fatalf("%s group %d: got %d rows / %d metrics for %d members",
					dev, gi, len(rows), len(mets), len(sqls))
			}
			var fused []int
			for i := range sqls {
				name := queries[idxs[i]].Flight
				if !reflect.DeepEqual(rows[i].Data, solo[i].Data) {
					t.Fatalf("%s group %d %s: fused Data diverged from solo", dev, gi, name)
				}
				if !reflect.DeepEqual(rows[i].Raw, solo[i].Raw) {
					t.Fatalf("%s group %d %s: fused Raw diverged from solo", dev, gi, name)
				}
				if mets[i].Cycles <= 0 {
					t.Fatalf("%s group %d %s: non-positive cycles %d", dev, gi, name, mets[i].Cycles)
				}
				if mets[i].GroupID != 0 {
					fused = append(fused, i)
				}
			}
			if len(fused) < 2 {
				t.Fatalf("%s group %d: only %d members fused; sharing never engaged", dev, gi, len(fused))
			}
			// Fused members share one group identity, carry the shared-scan
			// cost term, and size matches the fused cohort.
			gid := mets[fused[0]].GroupID
			for _, i := range fused {
				m := mets[i]
				if m.GroupID != gid || m.GroupSize != len(fused) {
					t.Fatalf("%s group %d member %d: identity (%d,%d), want (%d,%d)",
						dev, gi, i, m.GroupID, m.GroupSize, gid, len(fused))
				}
				if m.SharedScanCycles <= 0 {
					t.Fatalf("%s group %d member %d: missing shared-scan cycles", dev, gi, i)
				}
			}
		}
	}
}

// TestSharedGroupAttributionPartitions checks the pro-rata invariant on a
// full 13-query CPU group: member cycles are each positive and distinct
// members carry their exclusive work (the largest-remainder share keeps
// the sum exact — asserted inside the exec layer; here we pin the facade
// view: shared cost is charged once across the group).
func TestSharedGroupAttributionPartitions(t *testing.T) {
	db := castle.GenerateSSB(0.01, 20260807)
	queries := castle.SSBQueries()
	sqls := make([]string, len(queries))
	for i, q := range queries {
		sqls[i] = q.SQL
	}
	_, mets, err := db.QueryGroup(sqls, castle.Options{Device: castle.DeviceCPU, ScanSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	shared := mets[0].SharedScanCycles
	for i, m := range mets {
		if m.GroupSize != len(queries) {
			t.Fatalf("member %d: group size %d, want %d", i, m.GroupSize, len(queries))
		}
		if m.SharedScanCycles != shared {
			t.Fatalf("member %d: shared-scan cycles %d, want %d (one fused sweep for all)",
				i, m.SharedScanCycles, shared)
		}
		total += m.Cycles
	}
	if total <= 0 {
		t.Fatalf("group total %d", total)
	}
	// The fused sweep is charged once across the whole group: its cost must
	// be a strict minority of the members' attributed total, not once per
	// member.
	if shared <= 0 || shared >= total {
		t.Fatalf("shared-scan term %d out of range (group total %d)", shared, total)
	}
}
