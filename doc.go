// Package castle is a from-scratch reproduction of "Accelerating Database
// Analytic Query Workloads Using an Associative Processor" (Caminal,
// Chronis, Wu, Patel, Martínez — ISCA 2022).
//
// The repository contains the complete system stack the paper describes:
//
//   - internal/cape — a functional, cycle-cost simulator of the CAPE
//     associative-processor core (CSB, VMU, VCU) with the paper's three
//     database-aware microarchitectural enhancements: adaptive bitwidth
//     arithmetic (ABA), adaptive data layout (ADL), and multi-key search
//     (MKS);
//   - internal/cape/micro — genuine bit-serial associative algorithms
//     (search/update pairs over bit-sliced storage) validating the Table 1
//     cost model;
//   - internal/baseline — the iso-area AVX-512 out-of-order CPU comparison
//     system with an analytic cache/memory timing model;
//   - Castle, the analytic database: internal/storage (columnar engine,
//     dictionary encoding), internal/sql (parser), internal/plan (binder),
//     internal/optimizer (AP-aware join ordering and the left-deep /
//     right-deep / zig-zag plan shapes of §3.4), internal/exec (the CAPE
//     and CPU executors plus a reference engine);
//   - internal/ssb — a deterministic Star Schema Benchmark generator and
//     the 13 benchmark queries;
//   - internal/experiments — runners that regenerate every table and
//     figure in the paper's evaluation.
//
// Entry points: cmd/castle (interactive query runner), cmd/experiments
// (figure regeneration), cmd/ssbgen (data generator). The benchmarks in
// bench_test.go exercise one experiment per published table and figure.
package castle
