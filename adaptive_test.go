package castle_test

// adaptive_test.go covers the facade surface of statistics-driven adaptive
// placement: Options.AdaptivePlacement must never change an answer, the
// checkpoint must demonstrably fire (and flip a tail) on the stock SSB
// workload, the telemetry exports must carry the replacement counter and
// per-operator estimate provenance, and a statistics change — re-import or
// explicit refresh — must stale every cached plan.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	castle "castle"
)

func hybridOpts() castle.Options {
	return castle.Options{Device: castle.DeviceHybrid, Placement: castle.PlacementPerOperator}
}

// TestAdaptivePlacementBitIdentical runs every SSB query with the checkpoint
// on and off: answers must match exactly, the adaptive accounting must be
// self-consistent, and at least one query must actually re-place its tail —
// the histograms' residual misestimate on the stock workload is the demo,
// no artificial skew needed.
func TestAdaptivePlacementBitIdentical(t *testing.T) {
	db := castle.GenerateSSB(0.01, 20260704)
	fired, replaced := 0, 0
	for _, q := range castle.SSBQueries() {
		static, _, err := db.QueryWith(q.SQL, hybridOpts())
		if err != nil {
			t.Fatalf("%s static: %v", q.Flight, err)
		}
		opt := hybridOpts()
		opt.AdaptivePlacement = true
		rows, m, err := db.QueryWith(q.SQL, opt)
		if err != nil {
			t.Fatalf("%s adaptive: %v", q.Flight, err)
		}
		if !reflect.DeepEqual(static.Data, rows.Data) {
			t.Errorf("%s: adaptive placement changed the answer\nstatic: %v\nadaptive: %v",
				q.Flight, static.Data, rows.Data)
		}
		a := m.Adaptive
		if a == nil {
			t.Fatalf("%s: adaptive run reports no checkpoint accounting", q.Flight)
		}
		if a.Observed < 0 || a.EstSurvivors < 0 {
			t.Errorf("%s: negative cardinalities in %+v", q.Flight, a)
		}
		if a.Replaced && !a.Fired {
			t.Errorf("%s: tail re-placed without the checkpoint firing", q.Flight)
		}
		if a.Replaced != m.Replaced {
			t.Errorf("%s: Metrics.Replaced=%v disagrees with Adaptive.Replaced=%v",
				q.Flight, m.Replaced, a.Replaced)
		}
		if a.Fired {
			fired++
		}
		if a.Replaced {
			replaced++
		}
	}
	if fired == 0 {
		t.Error("checkpoint never fired across the SSB suite")
	}
	if replaced == 0 {
		t.Error("no SSB query re-placed its aggregation tail; the adaptive demo is gone")
	}
}

// TestAdaptiveTelemetryExports finds an SSB query whose tail re-places and
// checks the observable trail: the replacement counter with its direction
// label, the source-split divergence histograms, the flight record's
// replaced marker, and the EXPLAIN ANALYZE est-src column showing the
// re-priced tail as "observed".
func TestAdaptiveTelemetryExports(t *testing.T) {
	db := castle.GenerateSSB(0.01, 20260704)
	tel := castle.NewTelemetry()
	opt := hybridOpts()
	opt.AdaptivePlacement = true
	opt.Telemetry = tel

	var m *castle.Metrics
	for _, q := range castle.SSBQueries() {
		_, qm, err := db.QueryWith(q.SQL, opt)
		if err != nil {
			t.Fatalf("%s: %v", q.Flight, err)
		}
		if qm.Replaced {
			m = qm
			break
		}
	}
	if m == nil {
		t.Fatal("no SSB query re-placed its tail")
	}

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "castle_replacements_total") {
		t.Error("Prometheus output missing castle_replacements_total")
	}
	if !strings.Contains(out, `direction="`) {
		t.Error("replacement counter lost its direction label")
	}
	if !strings.Contains(out, `castle_estimate_divergence_pct`) ||
		!strings.Contains(out, `source="histogram"`) {
		t.Error("divergence histograms not split by estimate source")
	}

	rec, ok := tel.Flight().Get(m.FlightSeq)
	if !ok {
		t.Fatalf("flight record #%d missing", m.FlightSeq)
	}
	if !rec.Replaced {
		t.Error("flight record does not mark the replaced run")
	}
	srcs := map[string]bool{}
	for _, op := range rec.Ops {
		srcs[op.EstSource] = true
	}
	if !srcs["observed"] {
		t.Errorf("flight ops carry no observed-source estimate after re-placement: %v", srcs)
	}

	table := m.Breakdown.Format()
	if !strings.Contains(table, "est-src") || !strings.Contains(table, "observed") {
		t.Errorf("EXPLAIN ANALYZE lacks estimate provenance:\n%s", table)
	}
}

// writeSalesCSV writes n rows whose s_val distribution is controlled by
// skew: skew=false spreads values uniformly over [0,1000); skew=true puts
// 99%% of rows at value 5.
func writeSalesCSV(t *testing.T, path string, n int, skew bool) {
	t.Helper()
	var b strings.Builder
	b.WriteString("s_val,s_qty\n")
	for i := 0; i < n; i++ {
		v := (i * 7919) % 1000
		if skew && i%100 != 0 {
			v = 5
		}
		fmt.Fprintf(&b, "%d,%d\n", v, i%10)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReimportStalesPlans is the stats-epoch regression: re-importing a
// relation whose value distribution flipped must invalidate the prepared
// plan and re-price against fresh histograms — serving the cached plan would
// keep the stale selectivity forever.
func TestReimportStalesPlans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sales.csv")
	db := castle.New()

	writeSalesCSV(t, path, 4096, false)
	if err := db.ImportCSV("sales", path); err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT SUM(s_qty) FROM sales WHERE s_val <= 10`
	_, m1, err := db.QueryWith(sql, hybridOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.QueryWith(sql, hybridOpts()); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warm-up cache stats: %+v", st)
	}

	// Same name, same schema, inverted distribution: s_val <= 10 now matches
	// ~99% of rows instead of ~1%.
	writeSalesCSV(t, path, 4096, true)
	if err := db.ImportCSV("sales", path); err != nil {
		t.Fatal(err)
	}
	rows, m2, err := db.QueryWith(sql, hybridOpts())
	if err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	// No new hit: the re-import flushed the cache and the query re-planned.
	if st.Hits != 1 || st.Misses != 2 || st.Flushes < 1 {
		t.Fatalf("post-import cache stats (want a flush and a miss, no new hit): %+v", st)
	}
	// The rendered plan carries the histogram's cardinality annotations;
	// flipping the distribution flips the filter's survivor estimate, so a
	// genuinely re-planned query renders differently. (Cycle totals can tie:
	// a scalar CAPE tail prices independently of selectivity.)
	if m2.Plan == m1.Plan {
		t.Errorf("re-planned query rendered the identical plan; stale statistics suspected:\n%s",
			m2.Plan)
	}
	// Sanity: the answer reflects the new contents (99%+ of 4096 rows match).
	if len(rows.Data) != 1 {
		t.Fatalf("unexpected result shape: %v", rows.Data)
	}
}

// TestRefreshStatsStalesPlans: an explicit statistics refresh — no data or
// schema change at all — must also stale cached plans, since placements are
// priced from the histograms.
func TestRefreshStatsStalesPlans(t *testing.T) {
	db := castle.GenerateSSB(0.01, 20260704)
	sql := castle.SSBQueries()[0].SQL
	if _, _, err := db.QueryWith(sql, hybridOpts()); err != nil {
		t.Fatal(err)
	}
	db.RefreshStats()
	if _, _, err := db.QueryWith(sql, hybridOpts()); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 2 || st.Flushes != 1 {
		t.Fatalf("cache served a plan across a stats refresh: %+v", st)
	}
}
