package castle_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	castle "castle"
)

func demoDB(t *testing.T) *castle.DB {
	t.Helper()
	db := castle.New()
	db.CreateTable("customers").
		Int("c_id", []uint32{1, 2, 3, 4}).
		String("c_region", []string{"ASIA", "EUROPE", "ASIA", "AMERICA"})
	db.CreateTable("orders").
		Int("o_customer", []uint32{1, 2, 3, 4, 1, 2, 3, 4}).
		Int("o_amount", []uint32{10, 20, 30, 40, 50, 60, 70, 80})
	return db
}

func TestPublicAPIQuery(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`
		SELECT c_region, SUM(o_amount) AS revenue
		FROM orders, customers
		WHERE o_customer = c_id
		GROUP BY c_region
		ORDER BY revenue DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 2 || rows.Columns[1] != "revenue" {
		t.Fatalf("columns: %v", rows.Columns)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("rows: %v", rows.Data)
	}
	// ASIA = 10+30+50+70 = 160, first due to ORDER BY revenue DESC.
	if rows.Data[0][0] != "ASIA" || rows.Data[0][1] != "160" {
		t.Fatalf("first row: %v", rows.Data[0])
	}
	if rows.Raw[0].Aggs[0] != 160 {
		t.Fatalf("raw row: %+v", rows.Raw[0])
	}
	if !strings.Contains(rows.Format(), "ASIA") {
		t.Fatal("Format missing data")
	}
}

func TestPublicAPIDevicesAgree(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	q := castle.SSBQueries()[3] // Q2.1
	if q.Flight != "Q2.1" || q.Num != 4 {
		t.Fatalf("query meta: %+v", q)
	}
	capeRows, capeM, err := db.QueryWith(q.SQL, castle.Options{Device: castle.DeviceCAPE})
	if err != nil {
		t.Fatal(err)
	}
	cpuRows, cpuM, err := db.QueryWith(q.SQL, castle.Options{Device: castle.DeviceCPU})
	if err != nil {
		t.Fatal(err)
	}
	if len(capeRows.Data) != len(cpuRows.Data) {
		t.Fatalf("row counts differ: %d vs %d", len(capeRows.Data), len(cpuRows.Data))
	}
	for i := range capeRows.Data {
		for j := range capeRows.Data[i] {
			if capeRows.Data[i][j] != cpuRows.Data[i][j] {
				t.Fatalf("row %d col %d: %q vs %q", i, j, capeRows.Data[i][j], cpuRows.Data[i][j])
			}
		}
	}
	if capeM.Cycles <= 0 || cpuM.Cycles <= 0 || capeM.Seconds <= 0 {
		t.Fatal("metrics missing")
	}
	if capeM.Plan == "" || len(capeM.CSBBreakdown) == 0 {
		t.Fatal("CAPE metrics should include plan and breakdown")
	}
	if capeM.Cycles >= cpuM.Cycles {
		t.Fatalf("CAPE (%d cycles) should beat the baseline (%d) on Q2.1", capeM.Cycles, cpuM.Cycles)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	q := castle.SSBQueries()[6].SQL // Q3.1

	base, mBase, err := db.QueryWith(q, castle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, mPlain, err := db.QueryWith(q, castle.Options{DisableEnhancements: true})
	if err != nil {
		t.Fatal(err)
	}
	if mPlain.Cycles <= mBase.Cycles {
		t.Fatalf("unmodified CAPE (%d) should cost more than enhanced (%d)", mPlain.Cycles, mBase.Cycles)
	}
	ld, mLD, err := db.QueryWith(q, castle.Options{Shape: castle.ShapeLeftDeep})
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Data) != len(base.Data) {
		t.Fatal("forced shape changed the answer")
	}
	if !strings.Contains(mLD.Plan, "left-deep") {
		t.Fatalf("plan = %q, want left-deep", mLD.Plan)
	}
	_, mSmall, err := db.QueryWith(q, castle.Options{MAXVL: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if mSmall.Cycles == mBase.Cycles {
		t.Fatal("MAXVL override had no effect")
	}
	_, mNoFuse, err := db.QueryWith(q, castle.Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if mNoFuse.Cycles <= mBase.Cycles {
		t.Fatal("disabling fusion should cost cycles")
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	choices, err := db.Explain(castle.SSBQueries()[3].SQL)
	if err != nil {
		t.Fatal(err)
	}
	// 3 joins: 3! orders x 4 switch points.
	if len(choices) != 24 {
		t.Fatalf("choices = %d, want 24", len(choices))
	}
	chosen := 0
	for _, c := range choices {
		if c.Searches <= 0 || c.Shape == "" || len(c.Order) != 3 {
			t.Fatalf("bad choice: %+v", c)
		}
		if c.Chosen {
			chosen++
		}
	}
	if chosen == 0 {
		t.Fatal("no chosen plan marked")
	}
}

func TestPublicAPISaveOpenImport(t *testing.T) {
	dir := t.TempDir()
	db := demoDB(t)
	path := filepath.Join(dir, "demo.cstl")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := castle.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.RowCount("orders") != 8 || len(back.Tables()) != 2 {
		t.Fatalf("reopened db wrong: %v rows=%d", back.Tables(), back.RowCount("orders"))
	}
	rows, err := back.Query(`SELECT SUM(o_amount) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != "360" {
		t.Fatalf("sum = %v", rows.Data[0])
	}

	// CSV import.
	csvPath := filepath.Join(dir, "extra.csv")
	if err := os.WriteFile(csvPath, []byte("p_id,p_color\n1,RED\n2,BLUE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := back.ImportCSV("parts", csvPath); err != nil {
		t.Fatal(err)
	}
	if back.RowCount("parts") != 2 {
		t.Fatal("CSV import failed")
	}

	if _, err := castle.Open(filepath.Join(dir, "missing.cstl")); err == nil {
		t.Fatal("Open of missing file should fail")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Query("not sql"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := db.Query("SELECT SUM(nope) FROM orders"); err == nil {
		t.Fatal("bind error expected")
	}
	if _, err := db.Explain("not sql"); err == nil {
		t.Fatal("explain parse error expected")
	}
	if db.RowCount("missing") != 0 {
		t.Fatal("missing table should have zero rows")
	}
}

func TestPublicAPIHybridDevice(t *testing.T) {
	db := castle.GenerateSSB(0.01, 7)
	// Small-group aggregation stays on CAPE.
	rows, m, err := db.QueryWith(`
		SELECT d_year, SUM(lo_revenue) FROM lineorder, date
		WHERE lo_orderdate = d_datekey GROUP BY d_year`,
		castle.Options{Device: castle.DeviceHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if m.DeviceUsed != "CAPE" {
		t.Fatalf("device = %q, want CAPE", m.DeviceUsed)
	}
	if len(rows.Data) == 0 || m.Cycles <= 0 {
		t.Fatal("missing results or metrics")
	}
	// High-cardinality group-by falls back to the CPU.
	_, m2, err := db.QueryWith(`
		SELECT lo_orderkey, SUM(lo_revenue) FROM lineorder GROUP BY lo_orderkey`,
		castle.Options{Device: castle.DeviceHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if m2.DeviceUsed != "CPU" {
		t.Fatalf("device = %q, want CPU (Figure 12 crossover)", m2.DeviceUsed)
	}
}
