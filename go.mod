module castle

go 1.22
