package castle

// cluster.go is the public face of the scatter-gather scale-out tier: a
// Cluster wraps a DB's data partitioned across N simulated Castle nodes
// (with R replicas each) behind the same QueryContext surface as the DB
// itself, so callers — the server in particular — switch between
// single-node and sharded execution without changing how they submit
// queries or read metrics. Results are bit-identical to single-node
// execution at every topology.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"castle/internal/cluster"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/telemetry"
)

// ClusterOptions sizes a sharded deployment of a DB.
type ClusterOptions struct {
	// Nodes is the shard count N (must be >= 1).
	Nodes int
	// Replicas is the replica count R per shard (0 selects 1). The
	// coordinator load-balances each shard's traffic to the least-loaded
	// replica by queue depth.
	Replicas int
	// Partition is the partitioning scheme: "hash" (default) or "range".
	// Range partitioning enables shard pruning when queries predicate on
	// the partition key.
	Partition string
	// PartitionKey is the fact column rows are partitioned on (empty
	// selects "lo_orderdate"). It must exist in the schema.
	PartitionKey string
	// Telemetry, when non-nil, receives the cluster-level instruments:
	// per-node queue-depth gauges, per-shard shuffle-byte counters and
	// scatter/gather phase histograms. Query-level telemetry (spans,
	// flight records) still flows through Options.Telemetry per call.
	Telemetry *Telemetry
}

// ClusterStats is the cluster-level cost accounting of one sharded query:
// per-node elapsed/work cycle views, shuffle traffic, and pruning
// decisions. See Metrics.Cluster.
type ClusterStats = cluster.Stats

// Cluster is a sharded deployment of a DB behind a scatter-gather
// coordinator. Create with DB.Cluster; the parent DB remains fully usable
// (shards share the parent's immutable column data). Schema mutations on
// the parent after clustering are not reflected in the shards.
type Cluster struct {
	db    *DB
	coord *cluster.Coordinator
}

// Cluster partitions the database across N simulated nodes and returns the
// coordinator-backed query surface. Topology errors (non-positive shard or
// replica counts, a partition key absent from the schema) are returned
// descriptively rather than panicking in partitioning.
func (db *DB) Cluster(o ClusterOptions) (*Cluster, error) {
	scheme, err := cluster.ParseScheme(o.Partition)
	if err != nil {
		return nil, err
	}
	coord, err := cluster.New(db.store, cluster.Config{
		Nodes:     o.Nodes,
		Replicas:  o.Replicas,
		Scheme:    scheme,
		Key:       o.PartitionKey,
		Telemetry: o.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{db: db, coord: coord}, nil
}

// Shards returns the shard count N.
func (c *Cluster) Shards() int { return c.coord.Shards() }

// Replicas returns the replica count R per shard.
func (c *Cluster) Replicas() int { return c.coord.Replicas() }

// DB returns the parent database (for decoding and schema queries).
func (c *Cluster) DB() *DB { return c.db }

// String describes the topology for startup logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{shards=%d replicas=%d scheme=%s}",
		c.coord.Shards(), c.coord.Replicas(), c.coord.Scheme())
}

// QueryContext executes SQL across the cluster: the statement is prepared
// once at the coordinator, scattered to one replica per (unpruned) shard,
// and the partial aggregates are merged in fixed shard order — the result
// is bit-identical to DB.QueryContext at every topology. Metrics report
// the cluster cost model: Cycles is the critical path (slowest shard plus
// gather), Metrics.Cluster carries the per-node views and shuffle bytes,
// and Breakdown has one row per shard partitioning Cycles exactly.
func (c *Cluster) QueryContext(ctx context.Context, sqlText string, opt Options) (*Rows, *Metrics, error) {
	start := time.Now()
	rows, m, err := c.queryContext(ctx, sqlText, opt, start)
	if err != nil && opt.Telemetry != nil {
		status := "error"
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = "deadline"
		case errors.Is(err, context.Canceled):
			status = "canceled"
		}
		wall := time.Since(start).Microseconds()
		opt.Telemetry.Flight().Record(telemetry.FlightRecord{
			SQL:         sqlText,
			Fingerprint: telemetry.FingerprintSQL(sqlText),
			Start:       start,
			WallMicros:  wall,
			Status:      status,
			Error:       err.Error(),
			Phases:      []telemetry.FlightPhase{{Name: "total", Micros: wall}},
		})
	}
	return rows, m, err
}

// QueryWith executes SQL across the cluster with a background context.
func (c *Cluster) QueryWith(sqlText string, opt Options) (*Rows, *Metrics, error) {
	return c.QueryContext(context.Background(), sqlText, opt)
}

func (c *Cluster) queryContext(ctx context.Context, sqlText string, opt Options, start time.Time) (*Rows, *Metrics, error) {
	if err := opt.Device.validate(); err != nil {
		return nil, nil, err
	}
	if err := opt.Placement.validate(); err != nil {
		return nil, nil, err
	}
	if opt.Parallelism < 0 {
		return nil, nil, fmt.Errorf("castle: negative Parallelism %d", opt.Parallelism)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tel := opt.Telemetry
	qs := tel.StartSpan("query")
	defer qs.End()

	bound, err := c.db.prepareClusterBound(qs, sqlText, opt)
	if err != nil {
		return nil, nil, err
	}
	prepEnd := time.Now()

	es := qs.Child("execute")
	res, rep, err := c.coord.Run(ctx, bound, cluster.ExecOptions{
		Device:      opt.Device.String(),
		PerOperator: opt.Device == DeviceHybrid && opt.Placement == PlacementPerOperator,
		Config:      capeConfig(opt),
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		es.End()
		return nil, nil, err
	}
	cs := rep.Stats
	es.SetInt("cycles", cs.ElapsedCycles)
	es.SetStr("device", rep.DeviceUsed)
	es.SetInt("shards", int64(cs.Shards))
	es.End()

	m := &Metrics{
		Cycles:     cs.ElapsedCycles,
		Seconds:    cs.Seconds,
		BytesMoved: cs.BytesMoved,
		Plan:       rep.Plan,
		DeviceUsed: rep.DeviceUsed,
		Breakdown:  rep.Breakdown,
		Cluster:    &cs,
	}
	c.db.recordQueryMetrics(tel, qs, m, "")
	m.FlightSeq = c.recordFlight(tel, sqlText, opt, m, len(res.Rows), start, prepEnd, cs.ScatterEnd)
	return c.db.decode(res), m, nil
}

// ExplainAnalyze executes across the cluster and returns the rendered
// topology-aware breakdown: one row per shard (plus the scatter-overlap
// credit and gather rows) partitioning the cycle total exactly.
func (c *Cluster) ExplainAnalyze(sqlText string, opt Options) (*Rows, *Metrics, string, error) {
	rows, m, err := c.QueryWith(sqlText, opt)
	if err != nil {
		return nil, nil, "", err
	}
	return rows, m, m.Breakdown.Format(), nil
}

// recordFlight commits a sharded execution's flight record. The lifecycle
// phases are prepare/scatter/gather, telescoped at microsecond boundaries
// so they sum exactly to WallMicros; the server amends them with its
// queue/lease/serialize envelope when the query came through Do.
func (c *Cluster) recordFlight(tel *Telemetry, sqlText string, opt Options, m *Metrics, rowCount int, start, prepEnd, scatterEnd time.Time) uint64 {
	if tel == nil {
		return 0
	}
	prepMicros := prepEnd.Sub(start).Microseconds()
	scatMicros := scatterEnd.Sub(start).Microseconds()
	wall := time.Since(start).Microseconds()
	var ops []telemetry.FlightOp
	if m.Breakdown != nil {
		ops = make([]telemetry.FlightOp, 0, len(m.Breakdown.Operators))
		for _, o := range m.Breakdown.Operators {
			dev := o.Device
			if dev == "" {
				dev = m.Breakdown.Device
			}
			ops = append(ops, telemetry.FlightOp{
				Operator: o.Operator, Device: dev,
				EstCycles: o.EstCycles, Cycles: o.Cycles, Rows: o.Rows,
			})
		}
	}
	placement := ""
	if opt.Device == DeviceHybrid {
		placement = opt.Placement.String()
	}
	return tel.Flight().Record(telemetry.FlightRecord{
		SQL:         sqlText,
		Fingerprint: telemetry.FingerprintSQL(sqlText),
		Start:       start,
		WallMicros:  wall,
		Status:      "ok",
		Device:      m.DeviceUsed,
		Placement:   placement,
		Plan:        m.Plan,
		RowCount:    rowCount,
		Cycles:      m.Cycles,
		Phases: []telemetry.FlightPhase{
			{Name: "prepare", Micros: prepMicros},
			{Name: "scatter", Micros: scatMicros - prepMicros},
			{Name: "gather", Micros: wall - scatMicros},
		},
		Ops: ops,
	})
}

// prepareClusterBound parses and binds a statement for coordinator
// execution, consulting the prepared-plan cache. Cluster preparation stops
// at binding — every node optimizes against its own shard's statistics —
// so the cache key ignores optimizer inputs, like the CPU device class.
func (db *DB) prepareClusterBound(qs *telemetry.Span, sqlText string, opt Options) (*plan.Query, error) {
	key := optimizer.Fingerprint(sqlText, "cluster", 0, plan.ZigZag, false)
	version := db.storeVersion()
	if !opt.DisablePlanCache {
		if cp, ok := db.plans.Get(key, version); ok {
			qs.SetStr("plan_cache", "hit")
			db.countPlanCache(opt.Telemetry, true)
			return cp.Bound, nil
		}
	}
	sp := qs.Child("parse")
	stmt, err := sql.Parse(sqlText)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = qs.Child("bind")
	bound, err := plan.Bind(stmt, db.store)
	sp.End()
	if err != nil {
		return nil, err
	}
	if !opt.DisablePlanCache {
		db.plans.Put(key, version, optimizer.CachedPlan{Bound: bound})
		qs.SetStr("plan_cache", "miss")
		db.countPlanCache(opt.Telemetry, false)
	}
	return bound, nil
}
