// Quickstart: the public castle API end to end — build a small star
// schema, run SQL on the CAPE associative-processor simulator, inspect the
// chosen plan and the cycle accounting, and compare against the AVX-512
// baseline model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	castle "castle"
)

func main() {
	// 1. Build a database: an orders fact table and a customers dimension.
	// String columns are dictionary-encoded to 32-bit values (the paper's
	// SSB treatment, §4.1).
	db := castle.New()
	db.CreateTable("customers").
		Int("c_id", []uint32{1, 2, 3, 4}).
		String("c_region", []string{"ASIA", "EUROPE", "ASIA", "AMERICA"})
	db.CreateTable("orders").
		Int("o_customer", []uint32{1, 2, 3, 4, 1, 2, 3, 4, 1, 3}).
		Int("o_amount", []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}).
		Int("o_quantity", []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})

	query := `
		SELECT c_region, SUM(o_amount) AS revenue, MAX(o_amount) AS largest
		FROM orders, customers
		WHERE o_customer = c_id AND c_region = 'ASIA' AND o_quantity >= 3
		GROUP BY c_region
		ORDER BY revenue DESC`

	// 2. Ask the AP-aware optimizer what it would do (§3.4): candidate
	// join orders and shapes, costed in associative searches.
	choices, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidate plans:")
	for _, c := range choices {
		marker := "  "
		if c.Chosen {
			marker = "* "
		}
		fmt.Printf("  %s%-11s %8d searches\n", marker, c.Shape, c.Searches)
	}

	// 3. Execute on a CAPE core (all §5 enhancements on by default).
	rows, metrics, err := db.QueryWith(query, castle.Options{Device: castle.DeviceCAPE})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan: %s\n\nresult:\n%s", metrics.Plan, rows.Format())
	fmt.Printf("\nCAPE: %d cycles (%.2f µs simulated), %d bytes of DRAM traffic\n",
		metrics.Cycles, metrics.Seconds*1e6, metrics.BytesMoved)
	fmt.Printf("CSB cycle breakdown: search %.0f%%, arithmetic %.0f%%\n",
		100*metrics.CSBBreakdown["search"], 100*metrics.CSBBreakdown["vv arithmetic"])

	// 4. The same query on the baseline CPU model for comparison.
	_, cpuMetrics, err := db.QueryWith(query, castle.Options{Device: castle.DeviceCPU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline CPU: %d cycles -> speedup %.1fx\n",
		cpuMetrics.Cycles, float64(cpuMetrics.Cycles)/float64(metrics.Cycles))
}
