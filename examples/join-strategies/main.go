// Join strategies: the §3.4 story. One multi-join SSB query is executed
// under all three plan shapes — left-deep (the traditional choice),
// right-deep, and zig-zag — showing how the associative processor inverts
// conventional optimizer wisdom: the shape traditional databases prefer is
// the worst on CAPE.
//
//	go run ./examples/join-strategies
package main

import (
	"fmt"
	"log"

	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
)

func main() {
	const sf = 0.05
	fmt.Printf("generating SSB at scale factor %.2f...\n", sf)
	db := ssb.Generate(ssb.Config{SF: sf, Seed: 7})
	catalog := stats.Collect(db)
	cfg := cape.DefaultConfig().WithEnhancements()

	// SSB query 4 (Q2.1): three dimension joins with a two-column group-by.
	q := ssb.Queries()[3]
	fmt.Printf("query %d (%s): %d joins\n\n", q.Num, q.Flight, q.JoinCount)

	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	bound, err := plan.Bind(stmt, db)
	if err != nil {
		log.Fatalf("bind: %v", err)
	}

	fmt.Println("all candidate plans (cost in estimated searches, Figure 5's unit):")
	for _, c := range optimizer.Enumerate(bound, catalog, cfg.MAXVL) {
		dims := make([]string, len(c.Joins))
		for i, j := range c.Joins {
			dims[i] = j.Dim
		}
		fmt.Printf("  %-11v switch=%d  %12d searches  %v\n", c.Shape(), c.SwitchAt, c.Searches, dims)
	}
	fmt.Println()

	var reference *exec.Result
	for _, shape := range []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		physical, err := optimizer.BestWithShape(bound, catalog, cfg.MAXVL, shape)
		if err != nil {
			log.Fatalf("%v: %v", shape, err)
		}
		engine := cape.New(cfg)
		res := exec.NewCastle(engine, catalog, exec.DefaultCastleOptions()).Run(physical, db)
		if reference == nil {
			reference = res
		} else if !reference.Equal(res) {
			log.Fatalf("%v plan changed the answer!", shape)
		}
		st := engine.Stats()
		fmt.Printf("%-11v est. %12d searches  measured %12d cycles (%.3f ms)\n",
			shape, physical.EstimatedSearches, st.TotalCycles(),
			st.Seconds(cfg.ClockHz)*1e3)
	}

	best, _ := optimizer.Optimize(bound, catalog, cfg.MAXVL)
	fmt.Printf("\noptimizer's choice: %v\n", best.Shape())
	fmt.Println("(the paper reports 8 zig-zag and 5 right-deep winners across SSB — and zero left-deep)")
}
