// Adaptive hardware: a tour of the paper's three microarchitectural
// enhancements (§5) and of the associative computing model itself.
//
// Part 1 replays Figure 2's bit-serial increment on the search/update
// microop engine. Part 2 runs one SSB query while enabling ADL, MKS and
// ABA one at a time — a per-query Figure 10 waterfall.
//
//	go run ./examples/adaptive-hardware
package main

import (
	"fmt"
	"log"

	"castle/internal/cape"
	"castle/internal/cape/micro"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
)

func main() {
	// --- Part 1: associative processing from first principles (Figure 2).
	fmt.Println("Part 1 — bit-serial associative increment (Figure 2)")
	engine := micro.NewEngine(3)
	vec := micro.NewArray(3, 2)
	vec.Load([]uint32{0, 1, 3})
	fmt.Printf("  before: %v (two-bit elements)\n", vec.Words())
	engine.Increment(vec)
	fmt.Printf("  after:  %v (3 wrapped to 0)\n", vec.Words())
	fmt.Printf("  microops: %d searches, %d updates, %d broadcasts\n",
		engine.Stats().Searches, engine.Stats().Updates, engine.Stats().Broadcasts)

	e32 := micro.NewEngine(1024)
	w := make([]uint32, 1024)
	for i := range w {
		w[i] = 0xFFFFFFFF // worst case: the carry ripples through all 32 bits
	}
	v32 := micro.NewArray(1024, 32)
	v32.Load(w)
	e32.Increment(v32)
	fmt.Printf("  a 32-bit increment takes %d search/update steps (§2.1: 'over 100')\n\n",
		e32.Stats().Steps())

	// --- Part 2: the §5 enhancements, one at a time.
	fmt.Println("Part 2 — microarchitectural enhancements on SSB query 7 (Q3.1)")
	// Scale factor 0.25 is the smallest at which the probe-key batches of
	// Q3.1's dimension joins exceed a cacheline, letting vmks engage
	// (§6.2: smaller batches deliberately avoid vmks).
	const sf = 0.25
	db := ssb.Generate(ssb.Config{SF: sf, Seed: 99})
	catalog := stats.Collect(db)

	q := ssb.Queries()[6]
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	bound, err := plan.Bind(stmt, db)
	if err != nil {
		log.Fatalf("bind: %v", err)
	}

	steps := []struct {
		name          string
		adl, mks, aba bool
	}{
		{"unmodified CAPE", false, false, false},
		{"+ADL (CAM-mode searches)", true, false, false},
		{"+MKS (multi-key search)", true, true, false},
		{"+ABA (adaptive bitwidth)", true, true, true},
	}
	var first int64
	var reference *exec.Result
	for _, s := range steps {
		cfg := cape.DefaultConfig()
		cfg.EnableADL, cfg.EnableMKS, cfg.EnableABA = s.adl, s.mks, s.aba
		physical, err := optimizer.Optimize(bound, catalog, cfg.MAXVL)
		if err != nil {
			log.Fatalf("optimize: %v", err)
		}
		eng := cape.New(cfg)
		res := exec.NewCastle(eng, catalog, exec.DefaultCastleOptions()).Run(physical, db)
		if reference == nil {
			reference = res
		} else if !reference.Equal(res) {
			log.Fatalf("%s changed the answer!", s.name)
		}
		cycles := eng.Stats().TotalCycles()
		if first == 0 {
			first = cycles
		}
		fmt.Printf("  %-28s %12d cycles  (%.2fx vs unmodified)\n",
			s.name, cycles, float64(first)/float64(cycles))
	}
	fmt.Println("\nall configurations returned identical results —")
	fmt.Println("the enhancements change cost, never answers (ABA is exact, §5.1)")
}
