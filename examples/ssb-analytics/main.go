// SSB analytics: generate a Star Schema Benchmark database, run three
// representative queries end-to-end on both the CAPE core and the AVX-512
// baseline, cross-check the results, and report the speedups — the paper's
// headline experiment in miniature.
//
//	go run ./examples/ssb-analytics
package main

import (
	"fmt"
	"log"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
)

func main() {
	const sf = 0.05
	fmt.Printf("generating SSB at scale factor %.2f...\n", sf)
	db := ssb.Generate(ssb.Config{SF: sf, Seed: 42})
	catalog := stats.Collect(db)
	capeCfg := cape.DefaultConfig().WithEnhancements()

	// One query from each flight family: a scan-heavy aggregate, a
	// two-dimension group-by, and a four-join profit query.
	for _, num := range []int{1, 4, 11} {
		var q ssb.Query
		for _, cand := range ssb.Queries() {
			if cand.Num == num {
				q = cand
			}
		}
		fmt.Printf("\n=== SSB query %d (%s)\n", q.Num, q.Flight)

		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			log.Fatalf("parse: %v", err)
		}
		bound, err := plan.Bind(stmt, db)
		if err != nil {
			log.Fatalf("bind: %v", err)
		}
		physical, err := optimizer.Optimize(bound, catalog, capeCfg.MAXVL)
		if err != nil {
			log.Fatalf("optimize: %v", err)
		}
		fmt.Printf("castle plan: %v\n", physical)

		// CAPE execution.
		engine := cape.New(capeCfg)
		castleRes := exec.NewCastle(engine, catalog, exec.DefaultCastleOptions()).Run(physical, db)
		capeCycles := engine.Stats().TotalCycles()

		// Baseline execution.
		cpu := baseline.New(baseline.DefaultConfig())
		cpuRes := exec.NewCPUExec(cpu).Run(bound, db)

		if !castleRes.Equal(cpuRes) {
			log.Fatalf("%s: engines disagree!", q.Flight)
		}
		fmt.Printf("results agree (%d group(s)); first rows:\n", len(castleRes.Rows))
		shown := castleRes
		if len(shown.Rows) > 5 {
			shown = &exec.Result{GroupBy: castleRes.GroupBy, AggExprs: castleRes.AggExprs, Rows: castleRes.Rows[:5]}
		}
		fmt.Print(shown.Format(db))

		fmt.Printf("CAPE:     %12d cycles (%.3f ms)\n", capeCycles,
			float64(capeCycles)/capeCfg.ClockHz*1e3)
		fmt.Printf("baseline: %12d cycles (%.3f ms)\n", cpu.Cycles(), cpu.Seconds()*1e3)
		fmt.Printf("speedup:  %.1fx\n", float64(cpu.Cycles())/float64(capeCycles))
	}
}
