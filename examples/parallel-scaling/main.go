// Parallel scaling: fan one query's fact sweep across K CAPE tiles (or K
// baseline-CPU cores) with Options.Parallelism and watch the two cycle
// views diverge — elapsed time drops toward max(tile cycles) while total
// work stays within a whisker of serial, because the morsels partition the
// sweep instead of repeating it. Results are bit-identical at every K.
//
//	go run ./examples/parallel-scaling
package main

import (
	"fmt"
	"log"

	castle "castle"
)

func main() {
	// SSB at SF 0.02 keeps the demo fast while leaving enough fact rows
	// for several MAXVL-sized morsels.
	fmt.Println("generating SSB at SF 0.02...")
	db := castle.GenerateSSB(0.02, 1)

	query := castle.SSBQueries()[3] // Q2.1: three joins + grouped aggregate
	fmt.Printf("query %s:\n%s\n\n", query.Flight, query.SQL)

	for _, dev := range []castle.Device{castle.DeviceCAPE, castle.DeviceCPU} {
		fmt.Printf("== %v\n", dev)
		fmt.Printf("%3s %14s %14s %10s %8s\n", "K", "elapsed", "work", "speedup", "tiles")
		var serial int64
		var serialRows string
		for k := 1; k <= 4; k++ {
			opts := castle.Options{Device: dev, Parallelism: k}
			if dev == castle.DeviceCAPE {
				// The default MAXVL of 32,768 holds ~120K rows in four
				// morsels at SF 0.02; a smaller vector length yields enough
				// morsels to occupy every tile.
				opts.MAXVL = 8192
			}
			rows, m, err := db.QueryWith(query.SQL, opts)
			if err != nil {
				log.Fatal(err)
			}
			if k == 1 {
				serial = m.Cycles
				serialRows = fmt.Sprint(rows.Data)
			} else if fmt.Sprint(rows.Data) != serialRows {
				log.Fatalf("K=%d results diverged from serial", k)
			}
			fmt.Printf("%3d %14d %14d %9.2fx %8d\n",
				k, m.Cycles, m.Parallel.WorkCycles,
				float64(serial)/float64(m.Cycles), m.Parallel.Tiles)
		}
		fmt.Println()
	}
	fmt.Println("every K returned identical rows; elapsed shrinks, work does not grow.")
}
