// Hybrid scheduling: the paper's deployment model in action. CAPE sits in
// a tiled architecture next to conventional cores, so "decisions [about
// where to run an operator] are made dynamically" (§7.2); aggregations
// past the ~5,000-group crossover "are better evaluated on the CPU" (§7.3).
//
// This example sweeps an aggregation's group count through the crossover
// and lets DeviceHybrid route each query, printing which engine ran and
// what it cost.
//
//	go run ./examples/hybrid-scheduling
package main

import (
	"fmt"
	"log"

	castle "castle"
)

func main() {
	const rows = 400_000
	fmt.Printf("building a %d-row fact table with a controllable group column...\n\n", rows)

	for _, groups := range []int{8, 256, 4_096, 65_536, 262_144} {
		db := castle.New()
		g := make([]uint32, rows)
		v := make([]uint32, rows)
		for i := range g {
			g[i] = uint32((i * 2654435761) % groups) // spread rows across groups
			v[i] = uint32(i % 1000)
		}
		db.CreateTable("facts").Int("f_group", g).Int("f_val", v)

		query := `SELECT f_group, SUM(f_val) FROM facts GROUP BY f_group`

		_, hybrid, err := db.QueryWith(query, castle.Options{Device: castle.DeviceHybrid})
		if err != nil {
			log.Fatal(err)
		}
		// For reference, what each engine would have cost.
		_, onCape, err := db.QueryWith(query, castle.Options{Device: castle.DeviceCAPE})
		if err != nil {
			log.Fatal(err)
		}
		_, onCPU, err := db.QueryWith(query, castle.Options{Device: castle.DeviceCPU})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%8d groups: routed to %-4s (%9d cycles)   [CAPE %9d, CPU %9d]\n",
			groups, hybrid.DeviceUsed, hybrid.Cycles, onCape.Cycles, onCPU.Cycles)
	}

	fmt.Println("\nthe router follows Figure 12's crossover: small group counts exploit the")
	fmt.Println("associative group discovery, large ones fall back to the CPU's hash table")
}
