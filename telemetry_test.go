package castle_test

import (
	"encoding/json"
	"strings"
	"testing"

	castle "castle"
)

// TestQueryWithTelemetry drives the public facade end to end on a fixed
// SSB query and checks the acceptance properties: the span tree covers
// parse/bind/optimize/execute with per-join children, the Chrome export is
// valid JSON, the Prometheus export carries the run's counters, and the
// EXPLAIN ANALYZE breakdown reconciles with the reported cycle total.
func TestQueryWithTelemetry(t *testing.T) {
	db := castle.GenerateSSB(0.005, 1)
	qsql := castle.SSBQueries()[3].SQL // Q2.1: three joins, grouped

	tel := castle.NewTelemetry()
	rows, m, err := db.QueryWith(qsql, castle.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 {
		t.Fatal("no result rows")
	}

	// Breakdown reconciliation: operator cycles partition Metrics.Cycles.
	if m.Breakdown == nil {
		t.Fatal("Metrics.Breakdown missing")
	}
	if m.Breakdown.SumCycles() != m.Breakdown.TotalCycles || m.Breakdown.TotalCycles != m.Cycles {
		t.Fatalf("breakdown sum=%d total=%d metrics cycles=%d",
			m.Breakdown.SumCycles(), m.Breakdown.TotalCycles, m.Cycles)
	}
	table := m.Breakdown.Format()
	for _, want := range []string{"operator", "filter", "aggregate", "total (CAPE)"} {
		if !strings.Contains(table, want) {
			t.Fatalf("EXPLAIN ANALYZE table missing %q:\n%s", want, table)
		}
	}

	// Chrome export: valid JSON whose span names cover the lifecycle.
	var b strings.Builder
	if err := tel.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"query", "parse", "bind", "optimize", "execute", "fact-sweep"} {
		if !seen[want] {
			t.Fatalf("trace missing %q span; have %v", want, seen)
		}
	}
	joins := 0
	for name := range seen {
		if strings.HasPrefix(name, "join:") {
			joins++
		}
	}
	if joins == 0 {
		t.Fatal("trace has no per-join spans")
	}

	// Prometheus export: the run's counters are present.
	b.Reset()
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	for _, want := range []string{
		`castle_queries_total{device="cape"} 1`,
		"castle_csb_cycles_total",
		"castle_rows_scanned_total",
		"castle_plan_shape_total",
		"castle_query_cycles_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, prom)
		}
	}

	// A second query accumulates into the same registry.
	if _, _, err := db.QueryWith(qsql, castle.Options{Telemetry: tel, Device: castle.DeviceCPU}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `castle_queries_total{device="cpu"} 1`) {
		t.Fatalf("second run not counted:\n%s", b.String())
	}
}

// TestExplainAnalyzeFacade checks the convenience wrapper renders a table
// for every device.
func TestExplainAnalyzeFacade(t *testing.T) {
	db := castle.GenerateSSB(0.005, 1)
	qsql := castle.SSBQueries()[0].SQL
	for _, dev := range []castle.Device{castle.DeviceCAPE, castle.DeviceCPU, castle.DeviceHybrid} {
		_, m, table, err := db.ExplainAnalyze(qsql, castle.Options{Device: dev})
		if err != nil {
			t.Fatalf("device %v: %v", dev, err)
		}
		if !strings.Contains(table, "total ("+m.DeviceUsed+")") {
			t.Fatalf("device %v: breakdown table wrong:\n%s", dev, table)
		}
		if m.Breakdown.SumCycles() != m.Cycles {
			t.Fatalf("device %v: breakdown does not reconcile (%d != %d)",
				dev, m.Breakdown.SumCycles(), m.Cycles)
		}
	}
}

// TestTelemetryNilIsDefault: queries without a sink behave exactly as
// before (results identical, breakdown still attached to metrics).
func TestTelemetryNilIsDefault(t *testing.T) {
	db := demoDB(t)
	qsql := `SELECT c_region, SUM(o_amount) FROM orders, customers
		WHERE o_customer = c_id GROUP BY c_region ORDER BY c_region`
	r1, m1, err := db.QueryWith(qsql, castle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, m2, err := db.QueryWith(qsql, castle.Options{Telemetry: castle.NewTelemetry()})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Fatalf("telemetry changed the simulation: %d vs %d cycles", m1.Cycles, m2.Cycles)
	}
	if len(r1.Data) != len(r2.Data) {
		t.Fatal("telemetry changed the result")
	}
}
