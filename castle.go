package castle

// castle.go is the public API: a facade over the internal packages that
// covers the full workflow — build or load a database, submit SQL, choose
// an execution device and CAPE design point, and read back results with
// simulation metrics. The internal packages stay importable only within
// this module; external users program against these types.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/isa"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// DB is a columnar analytic database with its statistics catalog and
// prepared-plan cache. Queries may run concurrently (each execution gets
// its own simulated engine); schema changes (CreateTable, ImportCSV,
// column adds) must not race with in-flight queries, matching the usual
// analytic contract of load-then-serve.
type DB struct {
	store *storage.Database

	// mu guards the lazily collected catalog and the mutation version so
	// concurrent first-queries collect statistics exactly once.
	mu      sync.Mutex
	cat     *stats.Catalog
	dirty   bool
	version uint64
	// statsEpoch counts catalog collections. Plans are priced from the
	// histograms, so the plan cache's consistency token folds this in: a
	// statistics refresh stales every cached placement even when the schema
	// version alone has not moved.
	statsEpoch uint64

	plans *optimizer.PlanCache
}

func newDB(store *storage.Database) *DB {
	return &DB{store: store, dirty: true, plans: optimizer.NewPlanCache(0)}
}

// New returns an empty database. Add tables with CreateTable, then query.
func New() *DB {
	return newDB(storage.NewDatabase())
}

// GenerateSSB returns a Star Schema Benchmark database at the given scale
// factor (SF 1 ≈ 6M-row lineorder) with deterministic contents for a seed.
func GenerateSSB(sf float64, seed uint64) *DB {
	return newDB(ssb.Generate(ssb.Config{SF: sf, Seed: seed}))
}

// SSBQueries returns the 13 benchmark queries (paper numbering 1..13 =
// flights Q1.1..Q4.3).
func SSBQueries() []SSBQuery {
	qs := ssb.Queries()
	out := make([]SSBQuery, len(qs))
	for i, q := range qs {
		out[i] = SSBQuery{Num: q.Num, Flight: q.Flight, SQL: q.SQL}
	}
	return out
}

// SSBQuery names one benchmark query.
type SSBQuery struct {
	Num    int
	Flight string
	SQL    string
}

// Open loads a database saved with Save (the CSTL binary format).
func Open(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store, err := storage.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("castle: reading %s: %w", path, err)
	}
	return newDB(store), nil
}

// Save writes the database to path in the CSTL binary format.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.store.WriteBinary(f)
}

// ImportCSV adds a relation from a CSV file with a header row; columns
// whose values all parse as unsigned integers become integer columns, the
// rest are dictionary-encoded strings. Importing under an existing name
// replaces that relation: the mutation stales the statistics catalog and
// every cached plan, so the next query re-plans against the new contents.
func (db *DB) ImportCSV(tableName, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := storage.ReadCSV(tableName, f)
	if err != nil {
		return err
	}
	db.store.Put(t)
	db.mutate()
	return nil
}

// mutate records a schema or data change: catalog statistics are stale and
// plans bound against the previous contents must not be reused.
func (db *DB) mutate() {
	db.mu.Lock()
	db.dirty = true
	db.version++
	db.mu.Unlock()
}

// storeVersion returns the current mutation version (the plan cache's
// consistency token).
func (db *DB) storeVersion() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// TableBuilder accumulates columns for a new relation.
type TableBuilder struct {
	db  *DB
	tbl *storage.Table
}

// CreateTable starts a new relation; chain Int/String column calls.
func (db *DB) CreateTable(name string) *TableBuilder {
	t := storage.NewTable(name)
	db.store.Add(t)
	db.mutate()
	return &TableBuilder{db: db, tbl: t}
}

// Int adds an integer column (32-bit, CAPE's native element size).
func (b *TableBuilder) Int(name string, values []uint32) *TableBuilder {
	b.tbl.AddIntColumn(name, values)
	b.db.mutate()
	return b
}

// String adds a dictionary-encoded string column.
func (b *TableBuilder) String(name string, values []string) *TableBuilder {
	b.tbl.AddStringColumn(name, values)
	b.db.mutate()
	return b
}

// Tables lists relation names in creation order.
func (db *DB) Tables() []string {
	ts := db.store.Tables()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// RowCount returns a relation's cardinality (0 for unknown tables).
func (db *DB) RowCount(table string) int {
	t := db.store.Table(table)
	if t == nil {
		return 0
	}
	return t.Rows()
}

// catalog lazily (re)collects statistics after schema changes. Safe under
// concurrent QueryWith calls: the mutex makes the collect-once decision
// atomic, so simultaneous first-queries share a single catalog.
func (db *DB) catalog() *stats.Catalog {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dirty || db.cat == nil {
		db.cat = stats.Collect(db.store)
		db.dirty = false
		db.statsEpoch++
	}
	return db.cat
}

// RefreshStats recollects the statistics catalog immediately and advances
// the stats epoch, staling every cached plan: placements are priced from
// the histograms, so a plan prepared against old statistics may pick the
// wrong device for the data now present.
func (db *DB) RefreshStats() {
	db.mu.Lock()
	db.dirty = true
	db.mu.Unlock()
	db.catalog()
}

// cacheToken derives the plan cache's consistency token from the mutation
// version and the stats epoch: a cached plan is reusable only when neither
// the stored data nor the statistics it was priced against have changed.
func (db *DB) cacheToken() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return optimizer.Token(db.version, db.statsEpoch)
}

// Device selects the simulated execution engine.
type Device int

// Devices.
const (
	// DeviceCAPE executes on the associative-processor simulator.
	DeviceCAPE Device = iota
	// DeviceCPU executes on the AVX-512 out-of-order baseline model.
	DeviceCPU
	// DeviceHybrid routes dynamically: large-group aggregations and
	// huge-dimension joins fall back to the CPU, everything else runs on
	// CAPE (the paper's §7.2/§7.3 deployment model).
	DeviceHybrid
)

// String names the device for logs and API payloads.
func (d Device) String() string {
	switch d {
	case DeviceCAPE:
		return "cape"
	case DeviceCPU:
		return "cpu"
	case DeviceHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("device(%d)", int(d))
}

// validate rejects out-of-range device values instead of letting them fall
// through to an arbitrary execution path.
func (d Device) validate() error {
	if d < DeviceCAPE || d > DeviceHybrid {
		return fmt.Errorf("castle: unknown device %d (valid: DeviceCAPE, DeviceCPU, DeviceHybrid)", int(d))
	}
	return nil
}

// ParseDevice maps a device name ("cape", "cpu", "hybrid") to its Device.
func ParseDevice(s string) (Device, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cape":
		return DeviceCAPE, nil
	case "cpu":
		return DeviceCPU, nil
	case "hybrid":
		return DeviceHybrid, nil
	}
	return 0, fmt.Errorf("castle: unknown device %q (valid: cape, cpu, hybrid)", s)
}

// Placement selects the device-assignment granularity for DeviceHybrid.
type Placement int

// Placements.
const (
	// PlacementWholeQuery routes the entire query to one engine with the
	// §7.2 crossover heuristics (the historical hybrid behaviour).
	PlacementWholeQuery Placement = iota
	// PlacementPerOperator lets the optimizer assign each physical operator
	// its own device: the fused fact stage (scan+filter+probes), each
	// dimension build, and the aggregation tail are placed independently
	// with explicit transfer costs on CAPE<->CPU crossings, so a query can
	// filter selectively on CAPE and aggregate its high-cardinality groups
	// on the CPU within one execution.
	PlacementPerOperator
)

// String names the placement mode for logs and API payloads.
func (p Placement) String() string {
	switch p {
	case PlacementWholeQuery:
		return "whole-query"
	case PlacementPerOperator:
		return "per-operator"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement maps a placement name ("whole-query", "per-operator") to
// its Placement.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "whole-query":
		return PlacementWholeQuery, nil
	case "per-operator":
		return PlacementPerOperator, nil
	}
	return 0, fmt.Errorf("castle: unknown placement %q (valid: whole-query, per-operator)", s)
}

func (p Placement) validate() error {
	if p < PlacementWholeQuery || p > PlacementPerOperator {
		return fmt.Errorf("castle: unknown placement %d (valid: PlacementWholeQuery, PlacementPerOperator)", int(p))
	}
	return nil
}

// PlanShape forces a join-plan shape (§3.4); ShapeAuto lets the AP-aware
// optimizer choose.
type PlanShape int

// Plan shapes.
const (
	ShapeAuto PlanShape = iota
	ShapeLeftDeep
	ShapeRightDeep
	ShapeZigZag
)

// Options configure one query execution.
type Options struct {
	Device Device
	// Placement selects the device-assignment granularity when Device is
	// DeviceHybrid: whole-query crossover routing (the default) or
	// per-operator placement with explicit transfer costs. Ignored for
	// DeviceCAPE and DeviceCPU, whose device is forced.
	Placement Placement
	// Shape forces a plan shape on CAPE (ShapeAuto = optimizer's choice).
	Shape PlanShape
	// MAXVL overrides the CAPE vector length (0 = the paper's 32,768).
	MAXVL int
	// DisableEnhancements runs unmodified CAPE (no ADL/MKS/ABA).
	DisableEnhancements bool
	// DisableFusion turns off operator fusion (§7.4 ablation).
	DisableFusion bool
	// MKSBufferBytes overrides the vmks buffer (0 = 512, the cacheline).
	MKSBufferBytes int
	// DisablePlanCache bypasses the prepared-plan cache for this query:
	// the statement is parsed, bound and optimized from scratch and the
	// result is not cached.
	DisablePlanCache bool
	// Parallelism is the number of CAPE tiles (or baseline CPU cores) the
	// fact sweep may fan out across. Values <= 1 run serially; K > 1
	// partitions the sweep into morsels executed concurrently and merges
	// the partial aggregates deterministically, so results are bit-identical
	// to serial execution. The value is clamped to the available morsels;
	// it does not affect plan-cache identity. Negative values are rejected.
	Parallelism int
	// Streaming runs the pull-based batch pipeline: operators exchange
	// MAXVL-sized batches instead of materializing whole intermediates, and
	// device crossings double-buffer so each batch's transfer overlaps the
	// next batch's compute. Results are bit-identical to materializing;
	// mixed placements get an "xfer-overlap" credit row in the breakdown
	// and peak intermediate memory drops to O(K·MAXVL).
	Streaming bool
	// AdaptivePlacement enables the mid-query re-placement checkpoint for
	// per-operator placed executions (DeviceHybrid + PlacementPerOperator):
	// after the fact stage completes, the observed survivor count is
	// compared against the planner's estimate, and past the divergence
	// threshold the placement search re-runs for the unexecuted aggregation
	// tail with the observed cardinality — the tail switches devices when
	// the model flips. Results are bit-identical either way; only cycle
	// accounting can change. Adaptive runs always materialize the fact
	// stage's survivors (the checkpoint needs the complete count), so
	// Streaming is ignored when this is set.
	AdaptivePlacement bool
	// AdaptiveThreshold overrides the checkpoint's symmetric divergence
	// ratio (<= 0 selects the default, 2.0: the observation must be off by
	// more than 2x in either direction to trigger a re-plan).
	AdaptiveThreshold float64
	// ScanSharing allows QueryGroupContext to fuse eligible same-fact
	// members into one shared fact sweep (one scan, N predicate sets).
	// Member results are bit-identical to solo execution; only the scan
	// stream is charged once and attributed pro-rata. Ignored by the
	// single-query entry points.
	ScanSharing bool
	// Telemetry, when non-nil, records the query lifecycle: a span tree
	// (query → parse/bind/optimize/execute → per-operator) into its trace
	// recorder and cycle/row counters into its metrics registry. Nil costs
	// nothing.
	Telemetry *Telemetry
}

// Telemetry bundles a span recorder and a metrics registry. Create one with
// NewTelemetry, pass it via Options.Telemetry across any number of queries,
// then export with WriteChromeTrace (Perfetto / chrome://tracing) and
// WritePrometheus.
type Telemetry = telemetry.Telemetry

// NewTelemetry returns a telemetry sink with default capacity.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Breakdown is the per-operator cycle breakdown behind EXPLAIN ANALYZE.
type Breakdown = telemetry.Breakdown

// OperatorStats is one operator row of a Breakdown.
type OperatorStats = telemetry.OperatorStats

// ParallelStats describes how an execution's fact sweep fanned out: tile
// (or core) count, per-tile work, and the elapsed-versus-work cycle views.
type ParallelStats = exec.ParallelStats

// AdaptiveStats reports what the mid-query re-placement checkpoint saw and
// did (Options.AdaptivePlacement).
type AdaptiveStats = exec.AdaptiveStats

// Metrics reports the simulation cost of one execution.
type Metrics struct {
	// Cycles is the end-to-end cycle count at 2.7 GHz.
	Cycles int64
	// Seconds is the simulated wall time.
	Seconds float64
	// BytesMoved is DRAM traffic in both directions.
	BytesMoved int64
	// Plan describes the executed physical plan (CAPE only).
	Plan string
	// CSBBreakdown gives the Figure 7 class shares (CAPE only).
	CSBBreakdown map[string]float64
	// DeviceUsed names the engine that ran ("CAPE" or "CPU") — relevant
	// for DeviceHybrid.
	DeviceUsed string
	// Breakdown is the per-operator cycle breakdown of the execution (the
	// EXPLAIN ANALYZE table). Its operator cycles sum exactly to Cycles.
	Breakdown *Breakdown
	// Parallel profiles the fact sweep's fan-out (Tiles == 1 when serial).
	// Cycles above reports the elapsed view; Parallel.WorkCycles adds back
	// the tile cycles that overlapped under the critical tile — the energy
	// and §6.3 byte-accounting view.
	Parallel ParallelStats
	// EstCycles is the placement cost model's predicted total for the
	// placement that executed (transfers included); the same model prices
	// the per-operator "est" column of the Breakdown. Zero when no
	// prediction applied.
	EstCycles int64
	// AltEstCycles is the predicted total of the best alternative placement
	// the optimizer rejected (the other device for forced/uniform runs, the
	// runner-up fact/agg assignment for per-operator placement). When
	// Cycles exceeds it, perfect information would have flipped the
	// placement — the would-flip counter tracks exactly that. Meaningful
	// only when AltFeasible is true.
	AltEstCycles int64
	// AltFeasible reports whether a rejected alternative placement existed
	// at all: a grouped SUM(a*b) tail can only run on the CPU, so such
	// plans have no alternative and their AltEstCycles is not a runner-up
	// estimate. The would-flip counter never fires for them.
	AltFeasible bool
	// Replaced reports whether the adaptive checkpoint moved the
	// aggregation tail to a different device mid-query.
	Replaced bool
	// Adaptive carries the checkpoint's accounting (estimate, observation,
	// divergence, outcome) when AdaptivePlacement ran; nil otherwise.
	Adaptive *AdaptiveStats
	// FlightSeq is the sequence number of the flight record this execution
	// committed to Options.Telemetry's flight recorder (0 without
	// telemetry).
	FlightSeq uint64
	// Cluster carries the scale-out cost accounting when the query ran
	// through a Cluster: per-node elapsed/work cycle views, cross-node
	// shuffle bytes, and shard-pruning decisions. Nil for single-node
	// executions.
	Cluster *ClusterStats
	// StreamBatches counts the batches the streaming pipeline pulled
	// (0 for materializing runs).
	StreamBatches int64
	// PeakBatchBytes is the high-water mark of bytes resident in streaming
	// batches — O(K·MAXVL) by construction (0 for materializing runs).
	PeakBatchBytes int64
	// XferOverlapCycles is the transfer time hidden under compute by
	// double-buffered crossings; the breakdown's "xfer-overlap" row credits
	// exactly this amount back, so Cycles already reflects the overlap.
	XferOverlapCycles int64
	// GroupID identifies the fused shared-scan group this execution was a
	// member of (0 when the query ran solo). Members of one group share the
	// id; Cycles then reports the member's attributed share, and the group
	// members' Cycles sum to the fused run's engine total exactly.
	GroupID uint64
	// GroupSize is the member count of the fused group (0 when solo).
	GroupSize int
	// SharedScanCycles is the fused fact-scan stream charged once for the
	// whole group (the same value on every member); this member's
	// attributed share appears as the breakdown's "shared-scan" row.
	SharedScanCycles int64
}

// Rows is a decoded result relation: group-key columns first (strings
// decoded through their dictionaries), then one column per aggregate.
type Rows struct {
	Columns []string
	Data    [][]string
	// Raw exposes the undecoded row values for programmatic use: group
	// keys as encoded uint32s and aggregates as int64s.
	Raw []RawRow
}

// RawRow is one result row in encoded form.
type RawRow struct {
	Keys []uint32
	Aggs []int64
}

// Format renders the relation as an aligned text table.
func (r *Rows) Format() string {
	var b strings.Builder
	for _, c := range r.Columns {
		fmt.Fprintf(&b, "%-24s", c)
	}
	b.WriteByte('\n')
	for _, row := range r.Data {
		for _, v := range row {
			fmt.Fprintf(&b, "%-24s", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Query executes SQL on the full CAPE design point (all enhancements, the
// AP-aware optimizer) and returns the result relation.
func (db *DB) Query(sqlText string) (*Rows, error) {
	rows, _, err := db.QueryWith(sqlText, Options{})
	return rows, err
}

// QueryWith executes SQL with explicit options and returns the result
// relation plus simulation metrics.
func (db *DB) QueryWith(sqlText string, opt Options) (*Rows, *Metrics, error) {
	return db.QueryContext(context.Background(), sqlText, opt)
}

// capeConfig builds the CAPE design point the options select.
func capeConfig(opt Options) cape.Config {
	cfg := cape.DefaultConfig()
	if !opt.DisableEnhancements {
		cfg = cfg.WithEnhancements()
	}
	if opt.MAXVL > 0 {
		cfg.MAXVL = opt.MAXVL
	}
	if opt.MKSBufferBytes > 0 {
		cfg.MKSBufferBytes = opt.MKSBufferBytes
	}
	return cfg
}

// prepare parses, binds and (for paths that reach the optimizer) optimizes
// a statement, consulting the prepared-plan cache first. On a hit the
// parse/bind/optimize spans are skipped entirely and the root span is
// stamped plan_cache=hit.
func (db *DB) prepare(qs *telemetry.Span, sqlText string, opt Options, maxvl int) (optimizer.CachedPlan, error) {
	deviceClass := "cape"
	shapeForced := opt.Shape != ShapeAuto
	needPhys := opt.Device != DeviceCPU
	if !needPhys {
		// CPU preparations stop at binding: the key ignores optimizer
		// inputs so cpu entries don't fragment by vector length or shape.
		deviceClass, maxvl, shapeForced = "cpu", 0, false
	}
	key := optimizer.Fingerprint(sqlText, deviceClass, maxvl, internalShape(opt.Shape), shapeForced)
	// Collect statistics before deriving the token: optimization below
	// consults the catalog anyway, and collecting first keeps the epoch
	// stable between the Get and the Put.
	db.catalog()
	version := db.cacheToken()
	if !opt.DisablePlanCache {
		if cp, ok := db.plans.Get(key, version); ok {
			qs.SetStr("plan_cache", "hit")
			db.countPlanCache(opt.Telemetry, true)
			return cp, nil
		}
	}

	sp := qs.Child("parse")
	stmt, err := sql.Parse(sqlText)
	sp.End()
	if err != nil {
		return optimizer.CachedPlan{}, err
	}
	sp = qs.Child("bind")
	bound, err := plan.Bind(stmt, db.store)
	sp.End()
	if err != nil {
		return optimizer.CachedPlan{}, err
	}
	cp := optimizer.CachedPlan{Bound: bound}
	if needPhys {
		sp = qs.Child("optimize")
		var phys *plan.Physical
		if opt.Shape == ShapeAuto {
			phys, err = optimizer.OptimizeTraced(bound, db.catalog(), maxvl, sp)
		} else {
			phys, err = optimizer.BestWithShapeTraced(bound, db.catalog(), maxvl, internalShape(opt.Shape), sp)
		}
		sp.End()
		if err != nil {
			return optimizer.CachedPlan{}, err
		}
		cp.Phys = phys
	}
	if !opt.DisablePlanCache {
		db.plans.Put(key, version, cp)
		qs.SetStr("plan_cache", "miss")
		db.countPlanCache(opt.Telemetry, false)
	}
	return cp, nil
}

// countPlanCache records a plan-cache outcome on the query's metrics
// registry (nil telemetry costs nothing).
func (db *DB) countPlanCache(tel *Telemetry, hit bool) {
	if tel == nil {
		return
	}
	if hit {
		tel.Metrics().Counter(telemetry.MetricPlanCacheHits, "Prepared-plan cache hits.").Inc()
	} else {
		tel.Metrics().Counter(telemetry.MetricPlanCacheMisses, "Prepared-plan cache misses.").Inc()
	}
}

// PlanCacheStats reports prepared-plan cache effectiveness for this DB.
type PlanCacheStats = optimizer.PlanCacheStats

// PlanCacheStats snapshots the prepared-plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.Stats() }

// Route resolves the concrete device a query would execute on under opt:
// DeviceCAPE and DeviceCPU return themselves; DeviceHybrid consults the
// §7.2 crossover heuristics against the optimized plan. Preparation goes
// through the plan cache, so routing an already-seen statement costs one
// cache lookup — cheap enough for a scheduler to call per request before
// committing an execution resource.
func (db *DB) Route(sqlText string, opt Options) (Device, error) {
	if err := opt.Device.validate(); err != nil {
		return 0, err
	}
	if opt.Device != DeviceHybrid {
		return opt.Device, nil
	}
	cp, err := db.prepare(nil, sqlText, opt, capeConfig(opt).MAXVL)
	if err != nil {
		return 0, err
	}
	if exec.DecideDevice(cp.Phys, db.catalog(), 0, 0) == exec.DeviceCPU {
		return DeviceCPU, nil
	}
	return DeviceCAPE, nil
}

// QueryContext executes SQL with explicit options under a context: a
// canceled or expired ctx stops the simulated work at the next operator
// boundary and returns ctx.Err(). The database stays fully usable after a
// cancellation (each execution runs on its own simulated engine).
func (db *DB) QueryContext(ctx context.Context, sqlText string, opt Options) (*Rows, *Metrics, error) {
	start := time.Now()
	rows, m, err := db.queryContext(ctx, sqlText, opt, start)
	if err != nil && opt.Telemetry != nil {
		// Failed executions still leave a flight record, so /debug/queries
		// shows what was asked and how long the attempt ran before failing.
		status := "error"
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = "deadline"
		case errors.Is(err, context.Canceled):
			status = "canceled"
		}
		wall := time.Since(start).Microseconds()
		opt.Telemetry.Flight().Record(telemetry.FlightRecord{
			SQL:         sqlText,
			Fingerprint: telemetry.FingerprintSQL(sqlText),
			Start:       start,
			WallMicros:  wall,
			Status:      status,
			Error:       err.Error(),
			Phases:      []telemetry.FlightPhase{{Name: "total", Micros: wall}},
		})
	}
	return rows, m, err
}

func (db *DB) queryContext(ctx context.Context, sqlText string, opt Options, start time.Time) (*Rows, *Metrics, error) {
	if err := opt.Device.validate(); err != nil {
		return nil, nil, err
	}
	if err := opt.Placement.validate(); err != nil {
		return nil, nil, err
	}
	if opt.Parallelism < 0 {
		return nil, nil, fmt.Errorf("castle: negative Parallelism %d", opt.Parallelism)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tel := opt.Telemetry
	qs := tel.StartSpan("query")
	defer qs.End()

	cfg := capeConfig(opt)
	cp, err := db.prepare(qs, sqlText, opt, cfg.MAXVL)
	if err != nil {
		return nil, nil, err
	}
	prepEnd := time.Now()

	if opt.Device == DeviceCPU {
		cpu := baseline.New(baseline.DefaultConfig())
		exec.AttachCPUTelemetry(cpu, tel)
		x := exec.NewCPUExec(cpu)
		x.SetParallelism(opt.Parallelism)
		x.SetStreaming(opt.Streaming)
		es := qs.Child("execute")
		x.SetTelemetry(tel, es)
		res, err := x.RunContext(ctx, cp.Bound, db.store)
		es.SetInt("cycles", cpu.Cycles())
		es.SetStr("device", "CPU")
		es.End()
		if err != nil {
			return nil, nil, err
		}
		m := &Metrics{
			Cycles:     cpu.Cycles(),
			Seconds:    cpu.Seconds(),
			BytesMoved: cpu.Mem().BytesMoved(),
			DeviceUsed: "CPU",
			Breakdown:  x.Breakdown(),
			Parallel:   x.ParallelStats(),
		}
		applyStreamStats(m, x.StreamStats())
		// CPU preparations stop at binding, so the prediction runs its own
		// plan-shape pass (planning costs microseconds against a simulation
		// that costs milliseconds; the result is not cached).
		var pred *plan.PlacedPlan
		if physP, perr := optimizer.Optimize(cp.Bound, db.catalog(), cfg.MAXVL); perr == nil {
			pred = optimizer.PredictUniform(physP, db.catalog(), cfg.MAXVL, plan.DeviceCPU)
		}
		db.finishQuery(tel, qs, m, "", pred, sqlText, opt, len(res.Rows), start, prepEnd)
		return db.decode(res), m, nil
	}

	cat := db.catalog()
	phys := cp.Phys

	if opt.Device == DeviceHybrid && opt.Placement == PlacementPerOperator {
		return db.runPlaced(ctx, qs, cp.Phys, cfg, cat, opt, sqlText, start, prepEnd)
	}

	if opt.Device == DeviceHybrid {
		h := exec.NewDefaultHybrid(cfg, cat)
		h.SetParallelism(opt.Parallelism)
		h.SetStreaming(opt.Streaming)
		exec.AttachEngineTelemetry(h.Castle().Engine(), tel)
		exec.AttachCPUTelemetry(h.CPUExec().CPU(), tel)
		es := qs.Child("execute")
		h.SetTelemetry(tel, es)
		res, dev, err := h.RunContext(ctx, phys, db.store)
		if err != nil {
			es.End()
			return nil, nil, err
		}
		m := &Metrics{DeviceUsed: dev.String(), Plan: phys.String()}
		if dev == exec.DeviceCPU {
			cpu := h.CPUExec().CPU()
			m.Cycles, m.Seconds, m.BytesMoved = cpu.Cycles(), cpu.Seconds(), cpu.Mem().BytesMoved()
			m.Breakdown = h.CPUExec().Breakdown()
			m.Parallel = h.CPUExec().ParallelStats()
			applyStreamStats(m, h.CPUExec().StreamStats())
		} else {
			st := h.Castle().Engine().Stats()
			m.Cycles, m.Seconds = st.TotalCycles(), st.Seconds(cfg.ClockHz)
			m.BytesMoved = h.Castle().Engine().Mem().BytesMoved()
			m.Breakdown = h.Castle().Breakdown()
			m.Parallel = h.Castle().ParallelStats()
			applyStreamStats(m, h.Castle().StreamStats())
		}
		es.SetInt("cycles", m.Cycles)
		es.SetStr("device", m.DeviceUsed)
		es.End()
		shape := ""
		pdev := plan.DeviceCAPE
		if dev == exec.DeviceCAPE {
			shape = phys.Shape().String()
		} else {
			pdev = plan.DeviceCPU
		}
		pred := optimizer.PredictUniform(phys, cat, cfg.MAXVL, pdev)
		db.finishQuery(tel, qs, m, shape, pred, sqlText, opt, len(res.Rows), start, prepEnd)
		return db.decode(res), m, nil
	}

	eng := cape.New(cfg)
	exec.AttachEngineTelemetry(eng, tel)
	opts := exec.DefaultCastleOptions()
	opts.Fusion = !opt.DisableFusion
	opts.Parallelism = opt.Parallelism
	cas := exec.NewCastle(eng, cat, opts)
	cas.SetStreaming(opt.Streaming)
	es := qs.Child("execute")
	cas.SetTelemetry(tel, es)
	res, err := cas.RunContext(ctx, phys, db.store)
	st := eng.Stats()
	es.SetInt("cycles", st.TotalCycles())
	es.SetStr("device", "CAPE")
	es.End()
	if err != nil {
		return nil, nil, err
	}

	breakdown := make(map[string]float64, isa.NumClasses)
	share := st.ClassShare()
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		breakdown[c.String()] = share[c]
	}
	m := &Metrics{
		Cycles:       st.TotalCycles(),
		Seconds:      st.Seconds(cfg.ClockHz),
		BytesMoved:   eng.Mem().BytesMoved(),
		Plan:         phys.String(),
		CSBBreakdown: breakdown,
		DeviceUsed:   "CAPE",
		Breakdown:    cas.Breakdown(),
		Parallel:     cas.ParallelStats(),
	}
	applyStreamStats(m, cas.StreamStats())
	pred := optimizer.PredictUniform(phys, cat, cfg.MAXVL, plan.DeviceCAPE)
	db.finishQuery(tel, qs, m, phys.Shape().String(), pred, sqlText, opt, len(res.Rows), start, prepEnd)
	return db.decode(res), m, nil
}

// runPlaced executes a per-operator placed pipeline (DeviceHybrid with
// PlacementPerOperator): the optimizer assigns each physical operator its
// own device and the placed executor runs the split pipeline; a mixed
// placement's metrics combine both engines' cycle accounting, and its
// breakdown rows carry per-operator devices plus explicit "xfer:" rows for
// the crossings.
func (db *DB) runPlaced(ctx context.Context, qs *telemetry.Span, phys *plan.Physical, cfg cape.Config, cat *stats.Catalog, opt Options, sqlText string, start, prepEnd time.Time) (*Rows, *Metrics, error) {
	// Streaming prices crossings with the double-buffered overlap term, so
	// the placement search sees the same transfer costs the executor will
	// realize. Adaptive runs materialize (the checkpoint needs the complete
	// survivor count), so they always place with the materializing model.
	pp := optimizer.PlacePlan(phys, cat, cfg.MAXVL)
	if opt.Streaming && !opt.AdaptivePlacement {
		pp = optimizer.PlacePlanStreaming(phys, cat, cfg.MAXVL)
	}
	tel := opt.Telemetry
	h := exec.NewDefaultHybrid(cfg, cat)
	h.SetParallelism(opt.Parallelism)
	h.SetStreaming(opt.Streaming && !opt.AdaptivePlacement)
	exec.AttachEngineTelemetry(h.Castle().Engine(), tel)
	exec.AttachCPUTelemetry(h.CPUExec().CPU(), tel)
	es := qs.Child("execute")
	h.Placed().SetTelemetry(tel, es)

	var res *exec.Result
	var err error
	var ast exec.AdaptiveStats
	adaptive := opt.AdaptivePlacement
	if adaptive {
		// The replan hook re-runs the tail placement search with the
		// observed cardinality; the plan it returns carries the
		// observed-source estimate annotations the breakdown attaches below.
		finalPP := pp
		aopts := exec.AdaptiveOptions{
			EstSurvivors: pp.EstSurvivors,
			Threshold:    opt.AdaptiveThreshold,
			Replan: func(observed int64) plan.Device {
				np, _ := optimizer.ReplaceTail(pp, cat, cfg.MAXVL, optimizer.DefaultCostModel(), observed)
				finalPP = np
				return np.AggDevice()
			},
		}
		res, ast, err = h.Placed().RunAdaptiveContext(ctx, pp, db.store, aopts)
		if err == nil && ast.Fired {
			pp = finalPP
		}
	} else {
		res, _, err = h.RunPlacedContext(ctx, pp, db.store)
	}
	if err != nil {
		es.End()
		return nil, nil, err
	}
	capeCy, cpuCy := h.Placed().DeviceCycles()
	stream := h.Placed().StreamStats()
	st := h.Castle().Engine().Stats()
	cpu := h.CPUExec().CPU()
	used := "CAPE+CPU"
	if dev, uniform := pp.Uniform(); uniform {
		used = dev.String()
	}
	m := &Metrics{
		// The overlap credit is part of the breakdown's exact partition, so
		// elapsed cycles subtract the transfer time hidden under compute.
		Cycles:     capeCy + cpuCy - stream.OverlapCycles,
		Seconds:    st.Seconds(cfg.ClockHz) + cpu.Seconds(),
		BytesMoved: h.Castle().Engine().Mem().BytesMoved() + cpu.Mem().BytesMoved(),
		Plan:       pp.String(),
		DeviceUsed: used,
		Breakdown:  h.Placed().Breakdown(),
	}
	applyStreamStats(m, stream)
	if adaptive {
		a := ast
		m.Adaptive = &a
		m.Replaced = ast.Replaced
		if ast.Replaced && tel != nil {
			from := plan.DeviceCAPE
			if ast.TailDevice == plan.DeviceCAPE {
				from = plan.DeviceCPU
			}
			tel.Metrics().Counter(telemetry.MetricReplacements,
				"Aggregation tails re-placed mid-query by the adaptive checkpoint.",
				telemetry.L("direction", from.String()+"->"+ast.TailDevice.String())).Inc()
		}
	}
	es.SetInt("cycles", m.Cycles)
	es.SetStr("device", m.DeviceUsed)
	es.SetStr("placement", PlacementPerOperator.String())
	if adaptive {
		es.SetStr("adaptive", fmt.Sprintf("fired=%v replaced=%v", ast.Fired, ast.Replaced))
	}
	es.End()
	shape := ""
	if pp.FactDevice() == plan.DeviceCAPE {
		shape = phys.Shape().String()
	}
	db.finishQuery(tel, qs, m, shape, pp, sqlText, opt, len(res.Rows), start, prepEnd)
	return db.decode(res), m, nil
}

// applyStreamStats copies an executor's streaming accounting into the
// metrics (all zeros for materializing runs).
func applyStreamStats(m *Metrics, st exec.StreamStats) {
	m.StreamBatches = st.Batches
	m.PeakBatchBytes = st.PeakBatchBytes
	m.XferOverlapCycles = st.OverlapCycles
}

// finishQuery is the common tail of every successful execution path: attach
// the cost model's per-operator predictions to the breakdown, record the
// run-level and misestimate metrics, and commit the flight record.
func (db *DB) finishQuery(tel *Telemetry, qs *telemetry.Span, m *Metrics, shape string, pred *plan.PlacedPlan, sqlText string, opt Options, rowCount int, start, prepEnd time.Time) {
	if pred != nil {
		cells := pred.EstimateCells()
		tc := make(map[string]telemetry.EstimateCell, len(cells))
		for k, c := range cells {
			tc[k] = telemetry.EstimateCell{Cycles: c.Cycles, Source: c.Source}
		}
		m.Breakdown.ApplyEstimateCells(tc)
		m.EstCycles = pred.EstCycles()
		m.AltEstCycles = pred.AltEstCycles
		m.AltFeasible = pred.AltFeasible
		qs.SetInt("est_cycles", m.EstCycles)
		db.recordMisestimates(tel, m)
	}
	db.recordQueryMetrics(tel, qs, m, shape)
	m.FlightSeq = db.recordFlight(tel, sqlText, opt, m, rowCount, start, prepEnd)
}

// recordMisestimates feeds the predicted-vs-actual telemetry: a divergence
// histogram per operator kind and device, and the placement-would-flip
// counter when measured cycles overtook the rejected placement's estimate.
func (db *DB) recordMisestimates(tel *Telemetry, m *Metrics) {
	if tel == nil || m.Breakdown == nil {
		return
	}
	reg := tel.Metrics()
	for _, o := range m.Breakdown.Operators {
		if !o.Estimated() {
			continue
		}
		// Symmetric ratio as a percentage: 100 = perfect, 200 = 2x off in
		// either direction. The zero cases are guarded, not floored: both
		// sides zero observes as exact, a one-sided zero has no finite
		// ratio and is skipped.
		div, ok := telemetry.DivergencePct(o.EstCycles, o.Cycles)
		if !ok {
			continue
		}
		dev := o.Device
		if dev == "" {
			dev = m.DeviceUsed
		}
		src := o.EstSource
		if src == "" {
			src = "assumed"
		}
		reg.Histogram(telemetry.MetricEstimateDivergence,
			"Per-operator predicted-vs-actual cycle divergence (percent; 100 = exact).",
			telemetry.L("kind", opKindOfRow(o.Operator)),
			telemetry.L("device", strings.ToLower(dev)),
			telemetry.L("source", src)).Observe(div)
	}
	// Plans with no feasible alternative placement (AltFeasible false) have
	// nothing to flip to; counting them would inflate the signal with
	// decisions no planner could have made differently.
	if m.AltFeasible && m.AltEstCycles > 0 && m.Cycles > m.AltEstCycles {
		reg.Counter(telemetry.MetricPlacementWouldFlip,
			"Queries whose measured cycles exceeded the rejected placement's estimate.",
			telemetry.L("device", strings.ToLower(m.DeviceUsed))).Inc()
	}
}

// opKindOfRow maps a breakdown row name to its operator kind label.
func opKindOfRow(name string) string {
	switch {
	case strings.HasPrefix(name, "prep:"):
		return "dimbuild"
	case strings.HasPrefix(name, "join:"):
		return "joinprobe"
	case strings.HasPrefix(name, "xfer:"), name == "xfer-overlap":
		return "xfer"
	case name == "filter":
		return "filter"
	case name == "aggregate":
		return "aggregate"
	case name == "merge":
		return "merge"
	}
	return "other"
}

// recordFlight commits the flight record of a successful execution. Phases
// cover the facade's view (prepare, execute); the server amends them with
// its queue/lease/exec/serialize lifecycle when the query came through Do.
func (db *DB) recordFlight(tel *Telemetry, sqlText string, opt Options, m *Metrics, rowCount int, start, prepEnd time.Time) uint64 {
	if tel == nil {
		return 0
	}
	prepMicros := prepEnd.Sub(start).Microseconds()
	wall := time.Since(start).Microseconds()
	placement := ""
	if opt.Device == DeviceHybrid {
		placement = opt.Placement.String()
	}
	var ops []telemetry.FlightOp
	if m.Breakdown != nil {
		ops = make([]telemetry.FlightOp, 0, len(m.Breakdown.Operators))
		for _, o := range m.Breakdown.Operators {
			dev := o.Device
			if dev == "" {
				dev = m.Breakdown.Device
			}
			ops = append(ops, telemetry.FlightOp{
				Operator: o.Operator, Device: dev,
				EstCycles: o.EstCycles, Cycles: o.Cycles, Rows: o.Rows,
				EstSource: o.EstSource,
			})
		}
	}
	return tel.Flight().Record(telemetry.FlightRecord{
		SQL:            sqlText,
		Fingerprint:    telemetry.FingerprintSQL(sqlText),
		Start:          start,
		WallMicros:     wall,
		Status:         "ok",
		Device:         m.DeviceUsed,
		Placement:      placement,
		Plan:           m.Plan,
		RowCount:       rowCount,
		Cycles:         m.Cycles,
		EstCycles:      m.EstCycles,
		AltEstCycles:   m.AltEstCycles,
		Replaced:       m.Replaced,
		Batches:        m.StreamBatches,
		PeakBatchBytes: m.PeakBatchBytes,
		Phases: []telemetry.FlightPhase{
			{Name: "prepare", Micros: prepMicros},
			{Name: "execute", Micros: wall - prepMicros},
		},
		Ops: ops,
	})
}

// PlacedExplain describes the per-operator placement chosen for a
// statement: the rendered operator tree (the EXPLAIN surface) plus the
// routing facts a scheduler needs before committing execution resources.
type PlacedExplain struct {
	// Tree is the rendered placed operator tree: one line per operator with
	// its device, estimated rows and cycles, and transfer costs.
	Tree string
	// FactDevice is the device the fused fact stage (scan+filter+probes)
	// runs on — the execution resource that drives the sweep's fan-out.
	FactDevice Device
	// Mixed reports whether the placement spans both devices.
	Mixed bool
	// EstCycles is the cost model's estimate for the whole placed pipeline,
	// transfers included.
	EstCycles int64
}

// ExplainPlacement resolves the per-operator placement for a statement
// under opt's design point without executing it. Preparation goes through
// the plan cache, so explaining an already-seen statement is cheap.
func (db *DB) ExplainPlacement(sqlText string, opt Options) (*PlacedExplain, error) {
	opt.Device = DeviceHybrid
	cfg := capeConfig(opt)
	cp, err := db.prepare(nil, sqlText, opt, cfg.MAXVL)
	if err != nil {
		return nil, err
	}
	pp := optimizer.PlacePlan(cp.Phys, db.catalog(), cfg.MAXVL)
	fd := DeviceCAPE
	if pp.FactDevice() == plan.DeviceCPU {
		fd = DeviceCPU
	}
	return &PlacedExplain{
		Tree:       pp.String(),
		FactDevice: fd,
		Mixed:      pp.Mixed(),
		EstCycles:  pp.EstCycles(),
	}, nil
}

// recordQueryMetrics updates the run-level counters and histograms after a
// query completes, and stamps summary attributes on the root span.
func (db *DB) recordQueryMetrics(tel *Telemetry, qs *telemetry.Span, m *Metrics, shape string) {
	qs.SetInt("cycles", m.Cycles)
	qs.SetStr("device", m.DeviceUsed)
	if tel == nil {
		return
	}
	reg := tel.Metrics()
	dev := strings.ToLower(m.DeviceUsed)
	reg.Counter(telemetry.MetricQueries, "Queries executed.",
		telemetry.L("device", dev)).Inc()
	reg.Counter(telemetry.MetricBytesMoved, "Simulated DRAM bytes moved in both directions.",
		telemetry.L("device", dev)).Add(m.BytesMoved)
	if shape != "" {
		reg.Counter(telemetry.MetricPlanShapes, "Executed physical plan shapes.",
			telemetry.L("shape", shape)).Inc()
	}
	reg.Histogram(telemetry.MetricQueryCycles, "Simulated cycles per query.").
		Observe(float64(m.Cycles))
	reg.Histogram(telemetry.MetricQuerySeconds, "Simulated seconds per query.").
		Observe(m.Seconds)
	if m.XferOverlapCycles > 0 {
		reg.Counter(telemetry.MetricXferOverlapCycles,
			"Transfer cycles hidden under compute by double-buffered streaming.",
			telemetry.L("device", dev)).Add(m.XferOverlapCycles)
	}
	if m.PeakBatchBytes > 0 {
		reg.Gauge(telemetry.MetricPeakBatchBytes,
			"Peak bytes resident in streaming batches (last streamed query).").
			Set(m.PeakBatchBytes)
	}
}

func internalShape(s PlanShape) plan.Shape {
	switch s {
	case ShapeLeftDeep:
		return plan.LeftDeep
	case ShapeRightDeep:
		return plan.RightDeep
	default:
		return plan.ZigZag
	}
}

// PlanChoice describes one candidate plan from Explain.
type PlanChoice struct {
	Shape    string
	Order    []string
	Searches int64
	Chosen   bool
}

// Explain enumerates the optimizer's candidate plans for a query with
// their estimated search counts (Figure 5's cost unit).
func (db *DB) Explain(sqlText string) ([]PlanChoice, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	bound, err := plan.Bind(stmt, db.store)
	if err != nil {
		return nil, err
	}
	cat := db.catalog()
	cfg := cape.DefaultConfig()
	best, err := optimizer.Optimize(bound, cat, cfg.MAXVL)
	if err != nil {
		return nil, err
	}
	var out []PlanChoice
	for _, c := range optimizer.Enumerate(bound, cat, cfg.MAXVL) {
		order := make([]string, len(c.Joins))
		same := c.SwitchAt == best.Switch && len(c.Joins) == len(best.Joins)
		for i, j := range c.Joins {
			order[i] = j.Dim
			if same && best.Joins[i].Dim != j.Dim {
				same = false
			}
		}
		out = append(out, PlanChoice{
			Shape:    c.Shape().String(),
			Order:    order,
			Searches: c.Searches,
			Chosen:   same,
		})
	}
	return out, nil
}

// ExplainAnalyze executes the query and returns the rendered per-operator
// cycle breakdown (the EXPLAIN ANALYZE table) alongside the result rows and
// metrics.
func (db *DB) ExplainAnalyze(sqlText string, opt Options) (*Rows, *Metrics, string, error) {
	rows, m, err := db.QueryWith(sqlText, opt)
	if err != nil {
		return nil, nil, "", err
	}
	return rows, m, m.Breakdown.Format(), nil
}

// decode converts an internal result into the public Rows form.
func (db *DB) decode(res *exec.Result) *Rows {
	out := &Rows{}
	for _, g := range res.GroupBy {
		out.Columns = append(out.Columns, g.String())
	}
	for _, a := range res.AggExprs {
		label := a.String()
		if a.Alias != "" {
			label = a.Alias
		}
		out.Columns = append(out.Columns, label)
	}
	for _, row := range res.Rows {
		raw := RawRow{
			Keys: append([]uint32(nil), row.Keys...),
			Aggs: append([]int64(nil), row.Aggs...),
		}
		out.Raw = append(out.Raw, raw)
		rec := make([]string, 0, len(row.Keys)+len(row.Aggs))
		for i, g := range res.GroupBy {
			col := db.store.MustTable(g.Table).MustColumn(g.Column)
			if col.Dict != nil {
				rec = append(rec, col.Dict.Decode(row.Keys[i]))
			} else {
				rec = append(rec, fmt.Sprintf("%d", row.Keys[i]))
			}
		}
		for _, v := range row.Aggs {
			rec = append(rec, fmt.Sprintf("%d", v))
		}
		out.Data = append(out.Data, rec)
	}
	return out
}
