package mem

import (
	"testing"
	"testing/quick"
)

func TestDDR4Config(t *testing.T) {
	cfg := DDR4()
	if got := cfg.BytesPerCycle(); got < 56 || got > 58 {
		t.Fatalf("BytesPerCycle = %.2f, want ~56.9 (153.6GB/s @ 2.7GHz)", got)
	}
	if cfg.Channels != 8 {
		t.Fatalf("Channels = %d, want 8", cfg.Channels)
	}
	if cfg.CapacityBytes != 64<<30 {
		t.Fatalf("Capacity = %d, want 64GB", cfg.CapacityBytes)
	}
}

func TestStreamReadCost(t *testing.T) {
	s := NewSystem(DDR4())
	// A full CAPE vector: 32768 x 4B = 128KiB. At ~56.9 B/cycle that is
	// ~2300 transfer cycles plus 100 latency.
	c := s.StreamRead(32768 * 4)
	if c < 2300 || c > 2500 {
		t.Fatalf("StreamRead(128KiB) = %d cycles, want ~2400", c)
	}
	if s.BytesRead() != 32768*4 {
		t.Fatalf("BytesRead = %d, want %d", s.BytesRead(), 32768*4)
	}
}

func TestLineRounding(t *testing.T) {
	s := NewSystem(DDR4())
	s.StreamRead(1) // one byte still moves a whole 512B line
	if s.BytesRead() != 512 {
		t.Fatalf("BytesRead = %d, want 512", s.BytesRead())
	}
}

func TestZeroAndNegativeTransfers(t *testing.T) {
	s := NewSystem(DDR4())
	if s.StreamRead(0) != 0 || s.StreamWrite(-5) != 0 || s.RandomRead(0) != 0 {
		t.Fatal("zero/negative transfers should cost nothing")
	}
	if s.BytesMoved() != 0 {
		t.Fatal("zero transfers should move no bytes")
	}
}

func TestRandomReadChargesPerRequestLatency(t *testing.T) {
	s := NewSystem(DDR4())
	r := int64(1000)
	c := s.RandomRead(r)
	minCost := r * s.Config().RequestLatencyCycles
	if c <= minCost {
		t.Fatalf("RandomRead(%d) = %d cycles, want > %d (latency-bound)", r, c, minCost)
	}
	if s.Requests() != r {
		t.Fatalf("Requests = %d, want %d", s.Requests(), r)
	}
}

func TestStreamFasterThanRandomForSameBytes(t *testing.T) {
	s := NewSystem(DDR4())
	lines := int64(4096)
	bytes := lines * int64(s.Config().LineBytes)
	stream := s.StreamRead(bytes)
	random := s.RandomRead(lines)
	if stream >= random {
		t.Fatalf("stream (%d) should be cheaper than random (%d) for same bytes", stream, random)
	}
}

func TestAccounting(t *testing.T) {
	s := NewSystem(DDR4())
	s.AccountRead(1000)
	s.AccountWrite(2000)
	if s.BytesRead() != 1024 { // rounded to 512B lines
		t.Fatalf("BytesRead = %d, want 1024", s.BytesRead())
	}
	if s.BytesWritten() != 2048 {
		t.Fatalf("BytesWritten = %d, want 2048", s.BytesWritten())
	}
	s.Reset()
	if s.BytesMoved() != 0 || s.Requests() != 0 {
		t.Fatal("Reset should clear counters")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid config")
		}
	}()
	NewSystem(Config{})
}

// Property: transfer cost is monotonic in size.
func TestQuickStreamMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a%1<<26), int64(b%1<<26)
		if x > y {
			x, y = y, x
		}
		s := NewSystem(DDR4())
		cx := s.StreamRead(x)
		cy := s.StreamRead(y)
		return cx <= cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes moved are always a whole number of lines and >= requested.
func TestQuickLineAccounting(t *testing.T) {
	f := func(n uint32) bool {
		v := int64(n % 1 << 24)
		s := NewSystem(DDR4())
		s.StreamRead(v)
		moved := s.BytesRead()
		if v == 0 {
			return moved == 0
		}
		return moved >= v && moved%int64(s.Config().LineBytes) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigString(t *testing.T) {
	if s := DDR4().String(); len(s) == 0 {
		t.Fatal("empty config string")
	}
}

func TestStreamWriteCostsAndCounts(t *testing.T) {
	s := NewSystem(DDR4())
	c := s.StreamWrite(1 << 20)
	if c <= 0 {
		t.Fatal("write should cost cycles")
	}
	if s.BytesWritten() != 1<<20 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten())
	}
	if s.BytesMoved() != s.BytesRead()+s.BytesWritten() {
		t.Fatal("BytesMoved must sum directions")
	}
}

func TestConfigAccessor(t *testing.T) {
	s := NewSystem(DDR4())
	if s.Config().Channels != 8 {
		t.Fatal("Config accessor broken")
	}
}
