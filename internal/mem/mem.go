// Package mem models the DDR4 main-memory system shared by the CAPE core and
// the baseline CPU in the paper's experimental setup (Table 2): 64 GB DDR4,
// eight channels, 19.2 GB/s per channel (153.6 GB/s aggregate).
//
// The model is analytic rather than event-driven: a transfer of B bytes
// issued as R requests costs R*Latency + B/BytesPerCycle cycles of memory
// time. Sequential streaming (the dominant access pattern for columnar
// scans and CAPE vector loads) overlaps request latency, so bulk transfers
// charge a single leading latency. The model also keeps byte counters that
// back the paper's data-movement comparison (§6.3).
package mem

import "fmt"

// Config describes a DDR4 memory system.
type Config struct {
	// CapacityBytes is the total memory capacity.
	CapacityBytes int64
	// Channels is the number of DDR4 channels.
	Channels int
	// BandwidthBytesPerSec is the peak aggregate bandwidth.
	BandwidthBytesPerSec float64
	// CoreHz is the clock of the core the cycle costs are expressed in.
	CoreHz float64
	// RequestLatencyCycles is the leading latency of a memory request train,
	// in core cycles (row activation + channel + controller queuing).
	RequestLatencyCycles int64
	// LineBytes is the transfer granularity (cacheline).
	LineBytes int
}

// DDR4 returns the paper's memory configuration (Table 2) expressed against
// a 2.7 GHz core clock with 512-byte lines.
func DDR4() Config {
	return Config{
		CapacityBytes:        64 << 30,
		Channels:             8,
		BandwidthBytesPerSec: 153.6e9,
		CoreHz:               2.7e9,
		RequestLatencyCycles: 100,
		LineBytes:            512,
	}
}

// BytesPerCycle returns the peak bytes deliverable per core cycle.
func (c Config) BytesPerCycle() float64 {
	return c.BandwidthBytesPerSec / c.CoreHz
}

// System is a memory system with traffic accounting.
type System struct {
	cfg Config

	bytesRead    int64
	bytesWritten int64
	requests     int64
}

// NewSystem returns a memory System with the given configuration.
func NewSystem(cfg Config) *System {
	if cfg.LineBytes <= 0 || cfg.BandwidthBytesPerSec <= 0 || cfg.CoreHz <= 0 {
		panic("mem: invalid config")
	}
	return &System{cfg: cfg}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// roundUpToLine rounds n up to a whole number of memory lines. Memory moves
// whole lines; a 4-byte request still occupies a full line of bandwidth.
func (s *System) roundUpToLine(n int64) int64 {
	line := int64(s.cfg.LineBytes)
	return (n + line - 1) / line * line
}

// StreamRead charges a sequential read of n bytes and returns its cost in
// core cycles. Request latency is charged once; the transfer then proceeds
// at peak bandwidth (the paper's VMU saturates DRAM on vector loads).
func (s *System) StreamRead(n int64) int64 {
	if n <= 0 {
		return 0
	}
	moved := s.roundUpToLine(n)
	s.bytesRead += moved
	s.requests++
	return s.cfg.RequestLatencyCycles + ceilDiv(moved, s.cfg.BytesPerCycle())
}

// StreamWrite charges a sequential write of n bytes and returns its cost in
// core cycles.
func (s *System) StreamWrite(n int64) int64 {
	if n <= 0 {
		return 0
	}
	moved := s.roundUpToLine(n)
	s.bytesWritten += moved
	s.requests++
	return s.cfg.RequestLatencyCycles + ceilDiv(moved, s.cfg.BytesPerCycle())
}

// RandomRead charges r independent reads of lineBytes each (no latency
// overlap) and returns the cost in core cycles. Used by the baseline cache
// model for miss traffic with poor locality.
func (s *System) RandomRead(r int64) int64 {
	if r <= 0 {
		return 0
	}
	moved := r * int64(s.cfg.LineBytes)
	s.bytesRead += moved
	s.requests += r
	return r*s.cfg.RequestLatencyCycles + ceilDiv(moved, s.cfg.BytesPerCycle())
}

// AccountRead records n bytes of read traffic without returning a cycle cost.
// Used when the caller computes timing itself but traffic must be counted.
func (s *System) AccountRead(n int64) { s.bytesRead += s.roundUpToLine(n) }

// AccountWrite records n bytes of write traffic.
func (s *System) AccountWrite(n int64) { s.bytesWritten += s.roundUpToLine(n) }

// Absorb folds another system's traffic counters into s without charging any
// cycle cost. Used when per-tile memory systems are merged back into a parent
// after a parallel fact sweep: the tiles already paid their transfer cycles
// as work, and the parent only inherits the byte accounting that backs the
// paper's data-movement comparison (§6.3).
func (s *System) Absorb(o *System) {
	if o == nil {
		return
	}
	s.bytesRead += o.bytesRead
	s.bytesWritten += o.bytesWritten
	s.requests += o.requests
}

// BytesRead returns total bytes read since creation or the last Reset.
func (s *System) BytesRead() int64 { return s.bytesRead }

// BytesWritten returns total bytes written.
func (s *System) BytesWritten() int64 { return s.bytesWritten }

// BytesMoved returns total traffic in both directions.
func (s *System) BytesMoved() int64 { return s.bytesRead + s.bytesWritten }

// Requests returns the number of request trains issued.
func (s *System) Requests() int64 { return s.requests }

// Reset clears the traffic counters.
func (s *System) Reset() {
	s.bytesRead, s.bytesWritten, s.requests = 0, 0, 0
}

// String summarises the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%dGB DDR4, %d channels, %.1fGB/s (%.1f B/cycle @%.1fGHz), %dB lines",
		c.CapacityBytes>>30, c.Channels, c.BandwidthBytesPerSec/1e9,
		c.BytesPerCycle(), c.CoreHz/1e9, c.LineBytes)
}

func ceilDiv(n int64, per float64) int64 {
	cycles := float64(n) / per
	i := int64(cycles)
	if float64(i) < cycles {
		i++
	}
	return i
}
