package server

// cluster_test.go pins the clustered deployment of the service: a server
// booted with ClusterNodes >= 1 routes every query through the
// scatter-gather coordinator, returns bit-identical results, reports the
// shard topology on the response, and attributes wall time to the
// queue/lease/scatter/gather/serialize lifecycle phases exactly.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"castle"
)

func TestServerClustered(t *testing.T) {
	s := newTestServer(t, Config{
		QueueDepth:      64,
		ClusterNodes:    2,
		ClusterReplicas: 2,
	})
	if !strings.Contains(s.String(), "cluster{shards=2 replicas=2") {
		t.Fatalf("topology missing from String(): %s", s)
	}
	for _, q := range castle.SSBQueries() {
		resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
		if err != nil {
			t.Fatalf("%s: %v", q.Flight, err)
		}
		if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
			t.Fatalf("%s: clustered rows diverged from single-node reference", q.Flight)
		}
		if resp.Shards != 2 {
			t.Fatalf("%s: Shards = %d, want 2", q.Flight, resp.Shards)
		}
		if resp.ShuffleBytes <= 0 {
			t.Fatalf("%s: ShuffleBytes = %d, want > 0", q.Flight, resp.ShuffleBytes)
		}
		fr, ok := s.Telemetry().Flight().Get(resp.FlightSeq)
		if !ok {
			t.Fatalf("%s: no flight record %d", q.Flight, resp.FlightSeq)
		}
		names := make([]string, 0, len(fr.Phases))
		var sum int64
		for _, p := range fr.Phases {
			names = append(names, p.Name)
			sum += p.Micros
		}
		if strings.Join(names, ",") != "queue,lease,scatter,gather,serialize" {
			t.Fatalf("%s: phases = %v", q.Flight, names)
		}
		if sum != fr.WallMicros {
			t.Fatalf("%s: phases sum %dµs != wall %dµs", q.Flight, sum, fr.WallMicros)
		}
		// The four-phase Timings shape survives: exec = scatter + gather.
		tm := resp.TimingsMicros
		if tm.QueueMicros+tm.LeaseMicros+tm.ExecMicros+tm.SerializeMicros != resp.WallMicros {
			t.Fatalf("%s: Timings do not partition WallMicros", q.Flight)
		}
		if tm.ExecMicros != fr.PhaseMicros("scatter")+fr.PhaseMicros("gather") {
			t.Fatalf("%s: exec %dµs != scatter %dµs + gather %dµs",
				q.Flight, tm.ExecMicros, fr.PhaseMicros("scatter"), fr.PhaseMicros("gather"))
		}
	}
}

func TestServerClusterConfigValidation(t *testing.T) {
	db := sharedDB(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative nodes", Config{ClusterNodes: -2}, "shard count"},
		{"negative replicas", Config{ClusterNodes: 2, ClusterReplicas: -1}, "replica count"},
		{"bad scheme", Config{ClusterNodes: 2, ClusterPartition: "round-robin"}, "partition scheme"},
		{"bad key", Config{ClusterNodes: 2, ClusterPartitionKey: "lo_missing"}, "partition key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(db, nil, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
