package server

// http.go is the JSON transport over Server.Do: POST /query runs one
// statement, GET /metrics exposes the shared Prometheus registry,
// GET /healthz answers liveness probes, and GET /debug/queries exposes the
// flight recorder (see debug.go). Admission outcomes map onto HTTP status
// codes (429 shed, 503 draining, 504 deadline).

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/queries", s.handleFlightList)
	mux.HandleFunc("/debug/queries/", s.handleFlightDetail)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpStatus maps a Do error onto an HTTP status code.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests // 429: retry with backoff
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable // 503: draining
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504: request deadline hit
	case errors.Is(err, context.Canceled):
		return 499 // client went away (nginx convention)
	case errors.Is(err, ErrEmptySQL):
		return http.StatusBadRequest
	default:
		// Parse, bind and validation failures are client errors; the
		// simulator itself doesn't fail transiently.
		return http.StatusBadRequest
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := s.Do(r.Context(), req)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			// Back-pressure hint: how long the backlog would take to drain
			// at the observed mean execution time. Headers must be set
			// before writeJSON commits the status line.
			w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSeconds(), 10))
		}
		writeJSON(w, httpStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.tel.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
