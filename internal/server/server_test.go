package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"castle"
	"castle/internal/telemetry"
)

var (
	testOnce sync.Once
	testDB   *castle.DB
	// reference holds single-threaded results for every SSB query, the
	// ground truth concurrent executions must reproduce.
	reference map[int][][]string
)

func sharedDB(t *testing.T) *castle.DB {
	t.Helper()
	testOnce.Do(func() {
		testDB = castle.GenerateSSB(0.01, 20260805)
		reference = make(map[int][][]string)
		for _, q := range castle.SSBQueries() {
			rows, _, err := testDB.QueryWith(q.SQL, castle.Options{Device: castle.DeviceHybrid})
			if err != nil {
				panic(fmt.Sprintf("reference %s: %v", q.Flight, err))
			}
			reference[q.Num] = rows.Data
		}
	})
	return testDB
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(sharedDB(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServerConcurrentLoad is the acceptance load test: 8 concurrent
// clients x 50 mixed SSB queries against a running server, every result
// checked against the single-threaded reference. Run with -race.
func TestServerConcurrentLoad(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 512, CAPETiles: 2, CPUSlots: 2})
	queries := castle.SSBQueries()

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c*perClient+i)%len(queries)]
				resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d (%s): %w", c, i, q.Flight, err)
					continue
				}
				if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
					errs <- fmt.Errorf("client %d req %d (%s): rows diverged from reference", c, i, q.Flight)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerRequests, telemetry.L("status", "ok")); got != clients*perClient {
		t.Fatalf("ok requests counter = %d, want %d", got, clients*perClient)
	}
	if st := s.DB().PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("load ran without plan-cache hits: %+v", st)
	}

	// The flight recorder must have committed every request exactly once
	// (no records lost under concurrency) and retain a full, untorn ring.
	fr := s.Telemetry().Flight()
	if fr.Total() != clients*perClient {
		t.Fatalf("flight recorder total = %d, want %d", fr.Total(), clients*perClient)
	}
	snap := fr.Snapshot()
	wantLen := fr.Cap()
	if clients*perClient < wantLen {
		wantLen = clients * perClient
	}
	if len(snap) != wantLen {
		t.Fatalf("flight snapshot len = %d, want %d", len(snap), wantLen)
	}
	for _, r := range snap {
		if r.Status != "ok" {
			t.Fatalf("flight record #%d status = %q: %+v", r.Seq, r.Status, r)
		}
		if r.SQL == "" || r.Fingerprint == "" || r.Cycles <= 0 || r.WallMicros <= 0 {
			t.Fatalf("flight record #%d incomplete: %+v", r.Seq, r)
		}
		// Server-amended records carry the four lifecycle phases and they
		// partition the end-to-end wall time exactly.
		for _, name := range []string{"queue", "lease", "exec", "serialize"} {
			if r.PhaseMicros(name) < 0 {
				t.Fatalf("flight record #%d phase %s negative: %+v", r.Seq, name, r.Phases)
			}
		}
		if len(r.Phases) != 4 {
			t.Fatalf("flight record #%d has %d phases, want 4: %+v", r.Seq, len(r.Phases), r.Phases)
		}
		if got := r.SumPhaseMicros(); got != r.WallMicros {
			t.Fatalf("flight record #%d phases sum to %dµs, wall is %dµs", r.Seq, got, r.WallMicros)
		}
		if len(r.Ops) == 0 {
			t.Fatalf("flight record #%d has no operator table", r.Seq)
		}
	}
}

// TestServerResponseTimings pins the latency-attribution contract: the
// response's phase timings and the flight record's phases both partition
// the reported wall time, and the client-observed latency is never less
// than the wall time the server attributed.
func TestServerResponseTimings(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 16, CAPETiles: 1, CPUSlots: 1})
	for _, q := range castle.SSBQueries() {
		t0 := time.Now()
		resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
		observed := time.Since(t0).Microseconds()
		if err != nil {
			t.Fatalf("%s: %v", q.Flight, err)
		}
		tm := resp.TimingsMicros
		sum := tm.QueueMicros + tm.LeaseMicros + tm.ExecMicros + tm.SerializeMicros
		if sum != resp.WallMicros {
			t.Fatalf("%s: timings sum %dµs != wall %dµs (%+v)", q.Flight, sum, resp.WallMicros, tm)
		}
		if resp.WallMicros > observed {
			t.Fatalf("%s: server wall %dµs exceeds client-observed %dµs", q.Flight, resp.WallMicros, observed)
		}
		if tm.ExecMicros <= 0 {
			t.Fatalf("%s: exec phase is empty: %+v", q.Flight, tm)
		}
		if resp.FlightSeq == 0 {
			t.Fatalf("%s: response carries no flight sequence", q.Flight)
		}
		rec, ok := s.Telemetry().Flight().Get(resp.FlightSeq)
		if !ok {
			t.Fatalf("%s: flight record #%d missing", q.Flight, resp.FlightSeq)
		}
		if rec.SumPhaseMicros() != rec.WallMicros || rec.WallMicros != resp.WallMicros {
			t.Fatalf("%s: flight phases %dµs / wall %dµs vs response wall %dµs",
				q.Flight, rec.SumPhaseMicros(), rec.WallMicros, resp.WallMicros)
		}
		// Predicted-vs-actual: the record and every priced operator carry
		// both sides of the contract.
		if rec.EstCycles <= 0 || resp.EstCycles != rec.EstCycles {
			t.Fatalf("%s: est cycles record=%d response=%d", q.Flight, rec.EstCycles, resp.EstCycles)
		}
		var priced int
		for _, op := range rec.Ops {
			if op.EstCycles > 0 && op.Cycles > 0 {
				priced++
			}
		}
		if priced == 0 {
			t.Fatalf("%s: no operator carries predicted and actual cycles: %+v", q.Flight, rec.Ops)
		}
	}
	// The misestimate telemetry populated alongside the records.
	reg := s.Telemetry().Metrics()
	found := false
	for _, kind := range []string{"filter", "joinprobe", "aggregate", "dimbuild"} {
		for _, dev := range []string{"cape", "cpu"} {
			for _, src := range []string{"assumed", "histogram", "observed"} {
				if h := reg.Histogram(telemetry.MetricEstimateDivergence, "",
					telemetry.L("kind", kind), telemetry.L("device", dev),
					telemetry.L("source", src)); h.Count() > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("estimate-divergence histograms never populated")
	}
}

// pinPools checks out every execution resource so admitted tasks block in
// the scheduler, making overload and deadline behavior deterministic.
func pinPools(t *testing.T, s *Server) (release func()) {
	t.Helper()
	relCAPE, err := s.sched.Acquire(context.Background(), castle.DeviceCAPE)
	if err != nil {
		t.Fatal(err)
	}
	relCPU, err := s.sched.Acquire(context.Background(), castle.DeviceCPU)
	if err != nil {
		t.Fatal(err)
	}
	return func() { relCAPE(); relCPU() }
}

func TestServerShedsWhenOverloaded(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1, CAPETiles: 1, CPUSlots: 1})
	q := castle.SSBQueries()[0].SQL
	release := pinPools(t, s)

	// With both resources pinned, the 2 workers stall on their first tasks
	// and the queue holds 1 more: a burst of 8 admits at most 3 (fewer when
	// sends race ahead of worker dequeues) and sheds the rest immediately.
	const burst = 8
	var wg sync.WaitGroup
	var ok, shed, other int64
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{SQL: q})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				other++
			}
		}()
	}
	// Release the pools once every non-admitted request has been shed.
	reg := s.Telemetry().Metrics()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if reg.CounterValue(telemetry.MetricServerShed, telemetry.L("reason", "queue_full")) >= burst-3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sheds never reached %d", burst-3)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if other != 0 || ok < 1 || ok > 3 || ok+shed != burst {
		t.Fatalf("burst outcomes: ok=%d shed=%d other=%d (want 1..3 admitted, rest shed)", ok, shed, other)
	}
	if got := reg.CounterValue(telemetry.MetricServerShed, telemetry.L("reason", "queue_full")); got != shed {
		t.Fatalf("shed counter = %d, want %d", got, shed)
	}
}

func TestServerRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 8, CAPETiles: 1, CPUSlots: 1})
	release := pinPools(t, s)
	defer release()

	// With the pools pinned, the request's 1ms deadline expires while it
	// waits for a CAPE tile.
	_, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL, TimeoutMillis: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerRequests, telemetry.L("status", "deadline")); got == 0 {
		t.Fatal("deadline outcome not counted")
	}
	// The server keeps serving once resources free up.
	release()
	if _, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL}); err != nil {
		t.Fatalf("post-timeout request: %v", err)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 64, CAPETiles: 1, CPUSlots: 1})
	q := castle.SSBQueries()[0].SQL

	const inflight = 12
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Do(context.Background(), Request{SQL: q}); err != nil {
				errs <- err
			}
		}()
	}
	// Give the burst a moment to be admitted, then drain.
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Admitted requests must complete; only requests that raced Close
		// may see ErrClosed, and nothing else is acceptable.
		if !errors.Is(err, ErrClosed) {
			t.Errorf("drain dropped a request: %v", err)
		}
	}
	if _, err := s.Do(context.Background(), Request{SQL: q}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do: want ErrClosed, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Do(context.Background(), Request{SQL: "   "}); !errors.Is(err, ErrEmptySQL) {
		t.Fatalf("empty sql: %v", err)
	}
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT 1", Device: "gpu"}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT FROM WHERE"}); err == nil {
		t.Fatal("unparseable sql accepted")
	}
}

func TestSchedulerSerializesPerDevice(t *testing.T) {
	reg := telemetry.NewRegistry()
	sched := NewScheduler(1, 1, reg)
	release, err := sched.Acquire(context.Background(), castle.DeviceCAPE)
	if err != nil {
		t.Fatal(err)
	}
	// Second CAPE acquire must block until release; a CPU acquire must not.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sched.Acquire(ctx, castle.DeviceCAPE); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second CAPE acquire: want DeadlineExceeded, got %v", err)
	}
	cpuRelease, err := sched.Acquire(context.Background(), castle.DeviceCPU)
	if err != nil {
		t.Fatalf("CPU acquire blocked by CAPE tile: %v", err)
	}
	cpuRelease()
	release()
	release() // idempotent
	if r2, err := sched.Acquire(context.Background(), castle.DeviceCAPE); err != nil {
		t.Fatalf("acquire after release: %v", err)
	} else {
		r2()
	}
	if _, err := sched.Acquire(context.Background(), castle.DeviceHybrid); err == nil {
		t.Fatal("hybrid acquire must fail: no pool")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 16, CAPETiles: 1, CPUSlots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := castle.SSBQueries()[0]
	body, _ := json.Marshal(Request{SQL: q.SQL})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}
	var qr Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(qr.Rows, reference[q.Num]) || qr.RowCount != len(reference[q.Num]) {
		t.Fatalf("HTTP rows diverged from reference: %+v", qr)
	}

	// Metrics must expose the server families after one request.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		telemetry.MetricServerRequests, telemetry.MetricServerQueueDepth,
		telemetry.MetricServerLatency, telemetry.MetricServerTilesBusy,
		telemetry.MetricQueries, telemetry.MetricPlanCacheMisses,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Liveness.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// Error mapping: bad JSON and GET /query are client errors.
	resp, _ = http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/query")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d", resp.StatusCode)
	}

	// Draining servers answer 503 on both /query and /healthz.
	s.Close()
	resp, _ = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /query after Close = %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after Close = %d", resp.StatusCode)
	}
}

// TestDebugQueriesEndpoints drives the flight-recorder HTTP surface: the
// list, the per-query detail, and the downloadable Chrome trace.
func TestDebugQueriesEndpoints(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 16, CAPETiles: 1, CPUSlots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := castle.SSBQueries()[3]
	body, _ := json.Marshal(Request{SQL: q.SQL})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.FlightSeq == 0 {
		t.Fatal("query response carries no flight sequence")
	}

	// List: the record we just ran must be the newest entry.
	resp, err = http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Capacity int `json:"capacity"`
		Total    int `json:"total"`
		Queries  []struct {
			Seq        uint64                  `json:"seq"`
			SQL        string                  `json:"sql"`
			Status     string                  `json:"status"`
			WallMicros int64                   `json:"wall_micros"`
			Phases     []telemetry.FlightPhase `json:"phases"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Capacity != telemetry.DefaultFlightCapacity || list.Total < 1 || len(list.Queries) < 1 {
		t.Fatalf("list: %+v", list)
	}
	newest := list.Queries[0]
	if newest.Seq != qr.FlightSeq || newest.Status != "ok" || newest.SQL != q.SQL {
		t.Fatalf("newest record: %+v, want seq %d", newest, qr.FlightSeq)
	}
	var phaseSum int64
	for _, p := range newest.Phases {
		if p.Micros < 0 {
			t.Fatalf("negative phase: %+v", newest.Phases)
		}
		phaseSum += p.Micros
	}
	if len(newest.Phases) != 4 || phaseSum != newest.WallMicros {
		t.Fatalf("phases %+v sum %dµs, wall %dµs", newest.Phases, phaseSum, newest.WallMicros)
	}

	// Detail: the full record, with operator table.
	resp, err = http.Get(fmt.Sprintf("%s/debug/queries/%d", ts.URL, qr.FlightSeq))
	if err != nil {
		t.Fatal(err)
	}
	var rec telemetry.FlightRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.Seq != qr.FlightSeq || len(rec.Ops) == 0 || rec.EstCycles <= 0 {
		t.Fatalf("detail: %+v", rec)
	}

	// Trace: a downloadable, well-formed Chrome trace.
	resp, err = http.Get(fmt.Sprintf("%s/debug/queries/%d/trace", ts.URL, qr.FlightSeq))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Disposition"); !strings.Contains(got, "attachment") {
		t.Fatalf("trace Content-Disposition = %q", got)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	resp.Body.Close()
	if len(trace.TraceEvents) < 5 {
		t.Fatalf("trace has %d events, want the query, its phases and operators", len(trace.TraceEvents))
	}

	// Error mapping: missing and malformed sequence numbers.
	resp, _ = http.Get(ts.URL + "/debug/queries/999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing record = %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/debug/queries/nonsense")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seq = %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/debug/queries", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /debug/queries = %d, want 405", resp.StatusCode)
	}
}

// TestServerSlowQueryLog pins the -slow-query-ms surface: with a zero
// threshold every query is slow, so each completion must append one line
// with phase attribution to the configured writer.
func TestServerSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	s := newTestServer(t, Config{
		QueueDepth: 16, CAPETiles: 1, CPUSlots: 1,
		SlowQueryMillis: 1, SlowQueryLog: &buf,
	})
	// Tight threshold: SSB executions at SF 0.01 may finish under 1ms, so
	// force slowness deterministically by logging at the smallest allowed
	// threshold and accepting zero lines only if every query beat it.
	q := castle.SSBQueries()[7]
	resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if resp.WallMicros >= 1000 && !strings.Contains(out, "slow query") {
		t.Fatalf("query took %dµs but no slow-query line was logged: %q", resp.WallMicros, out)
	}
	if out != "" {
		for _, want := range []string{"seq=", "queue=", "exec=", "sql=", "SELECT"} {
			if !strings.Contains(out, want) {
				t.Fatalf("slow-query line missing %q: %q", want, out)
			}
		}
	}
	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerSlowQueries); (got > 0) != (out != "") {
		t.Fatalf("slow counter %d disagrees with log output %q", got, out)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the slow-query logger writes
// from worker goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerPerOperatorPlacement submits SSB queries with per-operator
// placement: results must match the whole-query reference, a grouping-heavy
// flight must report the mixed CAPE+CPU device, and unknown placements must
// be rejected up front.
func TestServerPerOperatorPlacement(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 32, CAPETiles: 1, CPUSlots: 1})

	for _, q := range castle.SSBQueries() {
		resp, err := s.Do(context.Background(), Request{SQL: q.SQL, Placement: "per-operator"})
		if err != nil {
			t.Fatalf("%s: %v", q.Flight, err)
		}
		if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
			t.Errorf("%s: per-operator rows diverged from reference", q.Flight)
		}
		if q.Flight == "Q3.2" && resp.Device != "CAPE+CPU" {
			t.Errorf("%s: device = %q, want CAPE+CPU under per-operator placement", q.Flight, resp.Device)
		}
	}

	if _, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL, Placement: "diagonal"}); err == nil {
		t.Fatal("unknown placement accepted")
	}
}
