package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"castle"
	"castle/internal/telemetry"
)

var (
	testOnce sync.Once
	testDB   *castle.DB
	// reference holds single-threaded results for every SSB query, the
	// ground truth concurrent executions must reproduce.
	reference map[int][][]string
)

func sharedDB(t *testing.T) *castle.DB {
	t.Helper()
	testOnce.Do(func() {
		testDB = castle.GenerateSSB(0.01, 20260805)
		reference = make(map[int][][]string)
		for _, q := range castle.SSBQueries() {
			rows, _, err := testDB.QueryWith(q.SQL, castle.Options{Device: castle.DeviceHybrid})
			if err != nil {
				panic(fmt.Sprintf("reference %s: %v", q.Flight, err))
			}
			reference[q.Num] = rows.Data
		}
	})
	return testDB
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(sharedDB(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServerConcurrentLoad is the acceptance load test: 8 concurrent
// clients x 50 mixed SSB queries against a running server, every result
// checked against the single-threaded reference. Run with -race.
func TestServerConcurrentLoad(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 512, CAPETiles: 2, CPUSlots: 2})
	queries := castle.SSBQueries()

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c*perClient+i)%len(queries)]
				resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d (%s): %w", c, i, q.Flight, err)
					continue
				}
				if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
					errs <- fmt.Errorf("client %d req %d (%s): rows diverged from reference", c, i, q.Flight)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerRequests, telemetry.L("status", "ok")); got != clients*perClient {
		t.Fatalf("ok requests counter = %d, want %d", got, clients*perClient)
	}
	if st := s.DB().PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("load ran without plan-cache hits: %+v", st)
	}
}

// pinPools checks out every execution resource so admitted tasks block in
// the scheduler, making overload and deadline behavior deterministic.
func pinPools(t *testing.T, s *Server) (release func()) {
	t.Helper()
	relCAPE, err := s.sched.Acquire(context.Background(), castle.DeviceCAPE)
	if err != nil {
		t.Fatal(err)
	}
	relCPU, err := s.sched.Acquire(context.Background(), castle.DeviceCPU)
	if err != nil {
		t.Fatal(err)
	}
	return func() { relCAPE(); relCPU() }
}

func TestServerShedsWhenOverloaded(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1, CAPETiles: 1, CPUSlots: 1})
	q := castle.SSBQueries()[0].SQL
	release := pinPools(t, s)

	// With both resources pinned, the 2 workers stall on their first tasks
	// and the queue holds 1 more: a burst of 8 admits at most 3 (fewer when
	// sends race ahead of worker dequeues) and sheds the rest immediately.
	const burst = 8
	var wg sync.WaitGroup
	var ok, shed, other int64
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{SQL: q})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				other++
			}
		}()
	}
	// Release the pools once every non-admitted request has been shed.
	reg := s.Telemetry().Metrics()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if reg.CounterValue(telemetry.MetricServerShed) >= burst-3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sheds never reached %d", burst-3)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if other != 0 || ok < 1 || ok > 3 || ok+shed != burst {
		t.Fatalf("burst outcomes: ok=%d shed=%d other=%d (want 1..3 admitted, rest shed)", ok, shed, other)
	}
	if got := reg.CounterValue(telemetry.MetricServerShed); got != shed {
		t.Fatalf("shed counter = %d, want %d", got, shed)
	}
}

func TestServerRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 8, CAPETiles: 1, CPUSlots: 1})
	release := pinPools(t, s)
	defer release()

	// With the pools pinned, the request's 1ms deadline expires while it
	// waits for a CAPE tile.
	_, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL, TimeoutMillis: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerRequests, telemetry.L("status", "deadline")); got == 0 {
		t.Fatal("deadline outcome not counted")
	}
	// The server keeps serving once resources free up.
	release()
	if _, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL}); err != nil {
		t.Fatalf("post-timeout request: %v", err)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 64, CAPETiles: 1, CPUSlots: 1})
	q := castle.SSBQueries()[0].SQL

	const inflight = 12
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Do(context.Background(), Request{SQL: q}); err != nil {
				errs <- err
			}
		}()
	}
	// Give the burst a moment to be admitted, then drain.
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Admitted requests must complete; only requests that raced Close
		// may see ErrClosed, and nothing else is acceptable.
		if !errors.Is(err, ErrClosed) {
			t.Errorf("drain dropped a request: %v", err)
		}
	}
	if _, err := s.Do(context.Background(), Request{SQL: q}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do: want ErrClosed, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Do(context.Background(), Request{SQL: "   "}); !errors.Is(err, ErrEmptySQL) {
		t.Fatalf("empty sql: %v", err)
	}
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT 1", Device: "gpu"}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT FROM WHERE"}); err == nil {
		t.Fatal("unparseable sql accepted")
	}
}

func TestSchedulerSerializesPerDevice(t *testing.T) {
	reg := telemetry.NewRegistry()
	sched := NewScheduler(1, 1, reg)
	release, err := sched.Acquire(context.Background(), castle.DeviceCAPE)
	if err != nil {
		t.Fatal(err)
	}
	// Second CAPE acquire must block until release; a CPU acquire must not.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sched.Acquire(ctx, castle.DeviceCAPE); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second CAPE acquire: want DeadlineExceeded, got %v", err)
	}
	cpuRelease, err := sched.Acquire(context.Background(), castle.DeviceCPU)
	if err != nil {
		t.Fatalf("CPU acquire blocked by CAPE tile: %v", err)
	}
	cpuRelease()
	release()
	release() // idempotent
	if r2, err := sched.Acquire(context.Background(), castle.DeviceCAPE); err != nil {
		t.Fatalf("acquire after release: %v", err)
	} else {
		r2()
	}
	if _, err := sched.Acquire(context.Background(), castle.DeviceHybrid); err == nil {
		t.Fatal("hybrid acquire must fail: no pool")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 16, CAPETiles: 1, CPUSlots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := castle.SSBQueries()[0]
	body, _ := json.Marshal(Request{SQL: q.SQL})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}
	var qr Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(qr.Rows, reference[q.Num]) || qr.RowCount != len(reference[q.Num]) {
		t.Fatalf("HTTP rows diverged from reference: %+v", qr)
	}

	// Metrics must expose the server families after one request.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		telemetry.MetricServerRequests, telemetry.MetricServerQueueDepth,
		telemetry.MetricServerLatency, telemetry.MetricServerTilesBusy,
		telemetry.MetricQueries, telemetry.MetricPlanCacheMisses,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Liveness.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// Error mapping: bad JSON and GET /query are client errors.
	resp, _ = http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/query")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d", resp.StatusCode)
	}

	// Draining servers answer 503 on both /query and /healthz.
	s.Close()
	resp, _ = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /query after Close = %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after Close = %d", resp.StatusCode)
	}
}

// TestServerPerOperatorPlacement submits SSB queries with per-operator
// placement: results must match the whole-query reference, a grouping-heavy
// flight must report the mixed CAPE+CPU device, and unknown placements must
// be rejected up front.
func TestServerPerOperatorPlacement(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 32, CAPETiles: 1, CPUSlots: 1})

	for _, q := range castle.SSBQueries() {
		resp, err := s.Do(context.Background(), Request{SQL: q.SQL, Placement: "per-operator"})
		if err != nil {
			t.Fatalf("%s: %v", q.Flight, err)
		}
		if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
			t.Errorf("%s: per-operator rows diverged from reference", q.Flight)
		}
		if q.Flight == "Q3.2" && resp.Device != "CAPE+CPU" {
			t.Errorf("%s: device = %q, want CAPE+CPU under per-operator placement", q.Flight, resp.Device)
		}
	}

	if _, err := s.Do(context.Background(), Request{SQL: castle.SSBQueries()[0].SQL, Placement: "diagonal"}); err == nil {
		t.Fatal("unknown placement accepted")
	}
}
