package server

// scheduler.go models CAPE's deployment as schedulable resources: the paper
// places CAPE "along other cores" in a tiled architecture (§7.2), so the
// serving layer sees N CAPE tiles and M CPU slots. Each tile runs one query
// at a time — queries that route to the same device serialize once the
// pool drains, while CAPE- and CPU-bound queries proceed independently.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"castle"
	"castle/internal/telemetry"
)

// Scheduler hands out execution tokens for concrete devices. Tokens are
// tile (or slot) ids; a buffered channel per device makes acquisition
// naturally queue-fair and cancellable.
type Scheduler struct {
	pools  map[castle.Device]chan int
	busy   map[castle.Device]*telemetry.Gauge
	leased map[castle.Device]*telemetry.Gauge
	// acquires counts granted leases (not tiles): a coalesced group of N
	// queries takes exactly one, which tests assert against.
	acquires atomic.Int64
}

// NewScheduler builds pools of capeTiles CAPE tiles and cpuSlots CPU slots
// (minimum one each) and registers the busy gauges so an idle server still
// exposes them at zero.
func NewScheduler(capeTiles, cpuSlots int, reg *telemetry.Registry) *Scheduler {
	if capeTiles < 1 {
		capeTiles = 1
	}
	if cpuSlots < 1 {
		cpuSlots = 1
	}
	s := &Scheduler{
		pools:  make(map[castle.Device]chan int, 2),
		busy:   make(map[castle.Device]*telemetry.Gauge, 2),
		leased: make(map[castle.Device]*telemetry.Gauge, 2),
	}
	for dev, n := range map[castle.Device]int{
		castle.DeviceCAPE: capeTiles,
		castle.DeviceCPU:  cpuSlots,
	} {
		pool := make(chan int, n)
		for i := 0; i < n; i++ {
			pool <- i
		}
		s.pools[dev] = pool
		if reg != nil {
			s.busy[dev] = reg.Gauge(telemetry.MetricServerTilesBusy,
				"Execution resources in use.", telemetry.L("device", dev.String()))
			s.leased[dev] = reg.Gauge(telemetry.MetricServerTilesLeased,
				"Execution resources leased to in-flight queries (elastic leases count every tile).",
				telemetry.L("device", dev.String()))
		}
	}
	return s
}

// Capacity reports the pool size for a device (0 for unknown devices).
func (s *Scheduler) Capacity(dev castle.Device) int {
	return cap(s.pools[dev])
}

// Acquires reports how many leases have been granted over the scheduler's
// lifetime. Leases, not tiles: an elastic lease of K tiles counts once,
// and a coalesced group running under one lease counts once for the whole
// group.
func (s *Scheduler) Acquires() int64 { return s.acquires.Load() }

// Acquire blocks until a tile of the requested concrete device frees up or
// ctx ends. DeviceHybrid has no pool — callers resolve routing first (see
// DB.Route). The returned release is idempotent and must be called.
func (s *Scheduler) Acquire(ctx context.Context, dev castle.Device) (func(), error) {
	lease, err := s.AcquireN(ctx, dev, 1)
	if err != nil {
		return nil, err
	}
	return lease.Release, nil
}

// Lease is a grant of one or more tiles of a single device. Release is
// idempotent and returns every tile to the pool.
type Lease struct {
	release func()
	size    int
}

// Size is the number of tiles the lease holds.
func (l *Lease) Size() int { return l.size }

// Release returns every leased tile to its pool. Idempotent.
func (l *Lease) Release() { l.release() }

// AcquireN grants an elastic lease of up to want tiles of a concrete
// device: the first tile is acquired blocking (so the request queues
// fairly and cannot starve), then up to want-1 more are taken only if they
// are free right now. Because at most one acquisition ever blocks — and a
// query already holding tiles never waits for more — concurrent elastic
// requests cannot deadlock; they simply get smaller leases under
// contention. want < 1 is treated as 1.
func (s *Scheduler) AcquireN(ctx context.Context, dev castle.Device, want int) (*Lease, error) {
	pool, ok := s.pools[dev]
	if !ok {
		return nil, fmt.Errorf("server: no resource pool for device %q (resolve hybrid routing before acquiring)", dev)
	}
	if want < 1 {
		want = 1
	}
	var tiles []int
	select {
	case tile := <-pool:
		tiles = append(tiles, tile)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	for len(tiles) < want {
		select {
		case tile := <-pool:
			tiles = append(tiles, tile)
		default:
			want = len(tiles) // pool drained: run with what we have
		}
	}
	n := len(tiles)
	s.acquires.Add(1)
	// busy counts queries occupying the device; leased counts the tiles
	// they hold (equal while every lease is size one).
	if g := s.busy[dev]; g != nil {
		g.Add(1)
	}
	if g := s.leased[dev]; g != nil {
		g.Add(int64(n))
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			if g := s.busy[dev]; g != nil {
				g.Add(-1)
			}
			if g := s.leased[dev]; g != nil {
				g.Add(-int64(n))
			}
			for _, tile := range tiles {
				pool <- tile
			}
		})
	}
	return &Lease{release: release, size: n}, nil
}
