package server

// debug.go is the flight-recorder HTTP surface: GET /debug/queries lists
// the retained per-query records (newest first), /debug/queries/{seq}
// returns one full post-mortem, and /debug/queries/{seq}/trace downloads a
// self-contained Chrome trace (Perfetto / chrome://tracing) of that query's
// lifecycle phases and operator timeline.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"castle/internal/telemetry"
)

// flightSummary is one row of the /debug/queries list: the record minus its
// operator table and plan text, so the list stays cheap to scan.
type flightSummary struct {
	Seq         uint64                  `json:"seq"`
	SQL         string                  `json:"sql"`
	Fingerprint string                  `json:"fingerprint"`
	Status      string                  `json:"status"`
	Device      string                  `json:"device,omitempty"`
	Placement   string                  `json:"placement,omitempty"`
	RowCount    int                     `json:"row_count"`
	Cycles      int64                   `json:"cycles"`
	EstCycles   int64                   `json:"est_cycles,omitempty"`
	WallMicros  int64                   `json:"wall_micros"`
	Phases      []telemetry.FlightPhase `json:"phases"`
}

func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	recs := s.tel.Flight().Snapshot()
	summaries := make([]flightSummary, 0, len(recs))
	for i := range recs {
		rec := &recs[i]
		summaries = append(summaries, flightSummary{
			Seq:         rec.Seq,
			SQL:         rec.SQL,
			Fingerprint: rec.Fingerprint,
			Status:      rec.Status,
			Device:      rec.Device,
			Placement:   rec.Placement,
			RowCount:    rec.RowCount,
			Cycles:      rec.Cycles,
			EstCycles:   rec.EstCycles,
			WallMicros:  rec.WallMicros,
			Phases:      rec.Phases,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Capacity int             `json:"capacity"`
		Total    uint64          `json:"total"`
		Queries  []flightSummary `json:"queries"`
	}{s.tel.Flight().Cap(), s.tel.Flight().Total(), summaries})
}

// handleFlightDetail serves /debug/queries/{seq} and
// /debug/queries/{seq}/trace.
func (s *Server) handleFlightDetail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/queries/")
	wantTrace := false
	if t := strings.TrimSuffix(rest, "/trace"); t != rest {
		rest, wantTrace = t, true
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad sequence number: " + rest})
		return
	}
	rec, ok := s.tel.Flight().Get(seq)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no flight record #%d (evicted or never recorded)", seq)})
		return
	}
	if wantTrace {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=query-%d-trace.json", seq))
		_ = rec.WriteChromeTrace(w)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
