// Package server is the concurrent query service in front of castle.DB: an
// admission-controlled worker pool that routes each request to a simulated
// execution resource (CAPE tile or CPU slot), runs it with a per-request
// deadline through DB.QueryContext, and exposes the whole lifecycle through
// the telemetry registry. The HTTP layer in http.go is a thin JSON skin
// over Do; embedders can drive Do directly.
//
// Admission is a bounded queue: requests beyond the queue depth are shed
// immediately with ErrOverloaded (HTTP 429) rather than queued without
// bound, so latency under overload stays flat instead of growing with the
// backlog.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"castle"
	"castle/internal/telemetry"
)

// Sentinel errors the service reports for admission decisions.
var (
	// ErrOverloaded means the admission queue was full and the request was
	// shed without queuing.
	ErrOverloaded = errors.New("server: overloaded, request shed")
	// ErrClosed means the server is draining or stopped.
	ErrClosed = errors.New("server: closed")
	// ErrEmptySQL rejects requests with no statement.
	ErrEmptySQL = errors.New("server: empty sql")
)

// Config sizes the service. The zero value picks workable defaults.
type Config struct {
	// Device is the default execution device for requests that don't name
	// one: "cape", "cpu" or "hybrid". Empty selects "hybrid", the paper's
	// deployment model.
	Device string
	// Placement is the default device-assignment granularity for hybrid
	// requests: "whole-query" (empty selects it) or "per-operator", which
	// lets the optimizer split one query's pipeline across both devices.
	Placement string
	// QueueDepth bounds the admission queue (default 64). Requests arriving
	// with the queue full are shed with ErrOverloaded.
	QueueDepth int
	// CAPETiles is the number of CAPE tiles available (default 2).
	CAPETiles int
	// CPUSlots is the number of baseline-CPU slots available (default 2).
	CPUSlots int
	// MaxTilesPerQuery caps the elastic lease one query may hold: the
	// scheduler grants one tile blocking plus up to MaxTilesPerQuery-1 more
	// only when they are idle, and the query's fact sweep fans out across
	// the granted lease (Options.Parallelism is set to the lease size).
	// Values <= 1 keep the one-tile-per-query behaviour.
	MaxTilesPerQuery int
	// DefaultTimeout applies when a request carries no deadline
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 2m).
	MaxTimeout time.Duration
	// SlowQueryMillis, when > 0, logs one line per request whose end-to-end
	// wall time crosses the threshold: fingerprint, device, lifecycle phase
	// attribution and predicted-vs-actual cycles.
	SlowQueryMillis int64
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
	// ClusterNodes, when >= 1, serves queries through a scatter-gather
	// cluster of that many shards instead of the single-node DB (results
	// are bit-identical; the simulated cost model changes). 0 disables
	// clustering.
	ClusterNodes int
	// ClusterReplicas is the replica count per shard (0 selects 1).
	ClusterReplicas int
	// ClusterPartition selects the partitioning scheme: "hash" (default)
	// or "range".
	ClusterPartition string
	// ClusterPartitionKey is the fact column to partition on (empty
	// selects "lo_orderdate"). Must exist in the schema.
	ClusterPartitionKey string
	// ScanSharing enables the coalescing admission window: requests arriving
	// within CoalesceWindow of each other that sweep the same fact table on
	// the same routed device are grouped into one fused shared-scan
	// execution — one queue slot, one device lease, one fact sweep serving
	// every member. Identical-fingerprint members share a single result.
	// Member answers are bit-identical to solo execution. Ignored when the
	// server is clustered.
	ScanSharing bool
	// CoalesceWindow is how long the first request of a prospective group
	// waits for companions before the group flushes (default 2ms when
	// ScanSharing is set). The wait lands in the request's queue phase.
	CoalesceWindow time.Duration
	// MaxGroupSize caps members per coalesced group (default 8); a group
	// reaching the cap flushes immediately without waiting out the window.
	MaxGroupSize int
	// Options is the base query configuration (design point, plan shape).
	// Device, Telemetry and Parallelism are managed by the server (the
	// latter set per query from the elastic lease); a request's NoCache
	// flag overrides DisablePlanCache per call.
	Options castle.Options
}

func (c Config) withDefaults() Config {
	if c.Device == "" {
		c.Device = "hybrid"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CAPETiles <= 0 {
		c.CAPETiles = 2
	}
	if c.CPUSlots <= 0 {
		c.CPUSlots = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.ScanSharing && c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.MaxGroupSize <= 0 {
		c.MaxGroupSize = 8
	}
	return c
}

// Request is one query submission.
type Request struct {
	// SQL is the statement to run.
	SQL string `json:"sql"`
	// Device optionally overrides the server's default device
	// ("cape", "cpu", "hybrid").
	Device string `json:"device,omitempty"`
	// Placement optionally overrides the server's default placement
	// granularity for hybrid execution ("whole-query", "per-operator").
	Placement string `json:"placement,omitempty"`
	// TimeoutMillis optionally sets the request deadline (capped by
	// Config.MaxTimeout; 0 means Config.DefaultTimeout).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the prepared-plan cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Adaptive enables the mid-query re-placement checkpoint for this
	// request (hybrid + per-operator placement only; see
	// castle.Options.AdaptivePlacement). Config.Options.AdaptivePlacement
	// sets the server-wide default; this flag turns it on per request.
	Adaptive bool `json:"adaptive,omitempty"`
}

// Timings is the server-side lifecycle attribution of one request: where
// its wall-clock time went between admission and response. The four phases
// partition WallMicros (within microsecond rounding).
type Timings struct {
	// QueueMicros is time spent in the admission queue before a worker
	// picked the request up.
	QueueMicros int64 `json:"queue_micros"`
	// LeaseMicros covers device routing plus waiting for the execution
	// lease (CAPE tiles or CPU slots).
	LeaseMicros int64 `json:"lease_micros"`
	// ExecMicros is the execution itself (QueryContext).
	ExecMicros int64 `json:"exec_micros"`
	// SerializeMicros covers building and delivering the response.
	SerializeMicros int64 `json:"serialize_micros"`
}

// Response is one query result with its simulation cost.
type Response struct {
	Columns  []string   `json:"columns"`
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	// Device names the engine that executed ("CAPE", "CPU", or "CAPE+CPU"
	// when a per-operator placement mixed devices).
	Device string `json:"device"`
	// Cycles and SimSeconds are the simulated execution cost.
	Cycles     int64   `json:"cycles"`
	SimSeconds float64 `json:"sim_seconds"`
	// EstCycles is the placement cost model's predicted cycle total for the
	// placement that ran (0 when no prediction applied).
	EstCycles int64 `json:"est_cycles,omitempty"`
	// WallMicros is real service time, admission to completion.
	WallMicros int64 `json:"wall_micros"`
	// TimingsMicros attributes WallMicros to lifecycle phases, so clients
	// can report server-side attribution rather than just end-to-end p50/p99.
	TimingsMicros Timings `json:"timings_micros"`
	// Replaced reports that the adaptive checkpoint moved the aggregation
	// tail to a different device mid-query.
	Replaced bool `json:"replaced,omitempty"`
	// FlightSeq is the flight-record sequence number for this request;
	// /debug/queries/{seq} returns the full post-mortem.
	FlightSeq uint64 `json:"flight_seq,omitempty"`
	// Shards is the cluster shard count when the server is clustered
	// (0 on single-node deployments).
	Shards int `json:"shards,omitempty"`
	// ShardsPruned counts shards skipped by partition-key pruning for this
	// query (range partitioning only).
	ShardsPruned int `json:"shards_pruned,omitempty"`
	// ShuffleBytes is the simulated cross-node shuffle traffic of this
	// query's gather phase.
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// GroupID identifies the fused shared-scan group that served this
	// request (0 when it executed solo). Cycles then reports this member's
	// attributed share of the fused run.
	GroupID uint64 `json:"group_id,omitempty"`
	// GroupSize is the fused group's member count (0 when solo).
	GroupSize int `json:"group_size,omitempty"`
}

// Server is the admission controller plus worker pool. Create with New,
// submit with Do (or the HTTP handler), stop with Close.
type Server struct {
	db        *castle.DB
	cfg       Config
	device    castle.Device    // resolved Config.Device
	placement castle.Placement // resolved Config.Placement
	tel       *castle.Telemetry
	sched     *Scheduler
	cluster   *castle.Cluster // non-nil when Config.ClusterNodes >= 1
	queue     chan *task

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool
	wg     sync.WaitGroup

	coal *coalescer // non-nil when the coalescing window is enabled

	depth      *telemetry.Gauge
	inFlight   *telemetry.Gauge
	shedFull   *telemetry.Counter // shed: admission queue full at arrival
	shedFlush  *telemetry.Counter // shed: queue full when a coalesced group flushed
	slowCount  *telemetry.Counter
	dedupCount *telemetry.Counter
	latency    *telemetry.Histogram
	queueWait  *telemetry.Histogram
	leaseSize  *telemetry.Histogram
	coalWait   *telemetry.Histogram
	phaseHists map[string]*telemetry.Histogram
	slowLog    *log.Logger
	slowThresh time.Duration
}

type task struct {
	ctx       context.Context
	req       Request
	device    castle.Device
	placement castle.Placement
	enqueued  time.Time
	done      chan taskResult // buffered: workers never block on delivery

	// Lifecycle timestamps, filled as the task advances: worker pickup,
	// lease grant, execution end. Together with the enqueue and completion
	// instants they partition the request's wall time into the
	// queue/lease/exec/serialize phases. Cluster executions additionally
	// record the scatter/gather boundary, splitting exec into
	// scatter/gather phases.
	pickup     time.Time
	leased     time.Time
	execDone   time.Time
	scatterEnd time.Time

	// Coalescing identity, resolved before the task enters a window: the
	// fact table it sweeps, its routed concrete device, and the normalized
	// statement fingerprint (identical-fingerprint members of one group
	// share a single execution's result).
	fact     string
	fp       string
	groupDev castle.Device
	// members, when non-nil, marks a fused group task: the worker executes
	// every member against one shared fact sweep under one lease, then
	// delivers to each member's own done channel. A group occupies one
	// admission-queue slot.
	members []*task
}

type taskResult struct {
	resp *Response
	err  error
}

// New builds a server over db. The telemetry sink is shared by every
// request (the registry and trace recorder are thread-safe and bounded);
// pass nil to have the server create one. Workers are started immediately —
// one per execution resource, so the pools can saturate.
func New(db *castle.DB, tel *castle.Telemetry, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	device, err := castle.ParseDevice(cfg.Device)
	if err != nil {
		return nil, err
	}
	placement, err := castle.ParsePlacement(cfg.Placement)
	if err != nil {
		return nil, err
	}
	if tel == nil {
		tel = castle.NewTelemetry()
	}
	reg := tel.Metrics()
	s := &Server{
		db:        db,
		cfg:       cfg,
		device:    device,
		placement: placement,
		tel:       tel,
		sched:     NewScheduler(cfg.CAPETiles, cfg.CPUSlots, reg),
		queue:     make(chan *task, cfg.QueueDepth),
		depth: reg.Gauge(telemetry.MetricServerQueueDepth,
			"Requests waiting in the admission queue."),
		inFlight: reg.Gauge(telemetry.MetricServerInFlight,
			"Requests admitted but not yet completed (queued or executing)."),
		shedFull: reg.Counter(telemetry.MetricServerShed,
			"Requests shed, by reason.", telemetry.L("reason", "queue_full")),
		shedFlush: reg.Counter(telemetry.MetricServerShed,
			"Requests shed, by reason.", telemetry.L("reason", "window_flush")),
		slowCount: reg.Counter(telemetry.MetricServerSlowQueries,
			"Requests whose wall time crossed the slow-query threshold."),
		dedupCount: reg.Counter(telemetry.MetricCoalescedQueries,
			"Member queries served by fused shared-scan executions.",
			telemetry.L("kind", "deduped")),
		latency: reg.Histogram(telemetry.MetricServerLatency,
			"End-to-end request wall time in microseconds."),
		queueWait: reg.Histogram(telemetry.MetricServerQueueWait,
			"Queue wait before a worker picked the request up, in microseconds."),
		leaseSize: reg.Histogram(telemetry.MetricServerLeaseSize,
			"Tiles leased per query (elastic-lease fan-out granted)."),
		coalWait: reg.Histogram(telemetry.MetricCoalesceWait,
			"Wait in the coalescing window before the group flushed, in microseconds."),
		phaseHists: make(map[string]*telemetry.Histogram, 4),
		slowThresh: time.Duration(cfg.SlowQueryMillis) * time.Millisecond,
	}
	phases := []string{"queue", "lease", "exec", "serialize"}
	// Non-zero shard counts (including invalid negative ones) flow through
	// cluster construction so topology errors surface descriptively here
	// rather than as a silently single-node server.
	if cfg.ClusterNodes != 0 {
		cl, err := db.Cluster(castle.ClusterOptions{
			Nodes:        cfg.ClusterNodes,
			Replicas:     cfg.ClusterReplicas,
			Partition:    cfg.ClusterPartition,
			PartitionKey: cfg.ClusterPartitionKey,
			Telemetry:    tel,
		})
		if err != nil {
			return nil, err
		}
		s.cluster = cl
		phases = append(phases, "scatter", "gather")
	}
	for _, phase := range phases {
		s.phaseHists[phase] = reg.Histogram(telemetry.MetricServerPhaseMicros,
			"Per-request lifecycle phase durations in microseconds.",
			telemetry.L("phase", phase))
	}
	if cfg.SlowQueryMillis > 0 {
		w := cfg.SlowQueryLog
		if w == nil {
			w = os.Stderr
		}
		s.slowLog = log.New(w, "", log.LstdFlags|log.Lmicroseconds)
	}
	// Pre-register the per-status request counters so /metrics shows the
	// full vocabulary at zero before the first request lands.
	for _, status := range []string{"ok", "error", "deadline", "canceled", "shed", "closed"} {
		s.requests(status)
	}
	reg.Counter(telemetry.MetricPlanCacheHits, "Prepared-plan cache hits.")
	reg.Counter(telemetry.MetricPlanCacheMisses, "Prepared-plan cache misses.")
	if cfg.ScanSharing && s.cluster == nil {
		s.coal = newCoalescer(s, cfg.CoalesceWindow, cfg.MaxGroupSize)
		// Pre-register the shared-scan vocabulary so /metrics shows it at
		// zero before the first group fuses.
		for _, dev := range []string{"cape", "cpu"} {
			reg.Counter(telemetry.MetricSharedSweeps,
				"Fused shared-scan executions (one per coalesced group).",
				telemetry.L("device", dev))
		}
		reg.Counter(telemetry.MetricCoalescedQueries,
			"Member queries served by fused shared-scan executions.",
			telemetry.L("kind", "fused"))
	}
	workers := cfg.CAPETiles + cfg.CPUSlots
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Telemetry returns the server's shared telemetry sink (backs /metrics).
func (s *Server) Telemetry() *castle.Telemetry { return s.tel }

// DB returns the database the server fronts.
func (s *Server) DB() *castle.DB { return s.db }

// maxTiles normalizes Config.MaxTilesPerQuery (values <= 1 mean one tile).
func (s *Server) maxTiles() int {
	if s.cfg.MaxTilesPerQuery < 1 {
		return 1
	}
	return s.cfg.MaxTilesPerQuery
}

func (s *Server) requests(status string) *telemetry.Counter {
	return s.tel.Metrics().Counter(telemetry.MetricServerRequests,
		"Completed requests by outcome.", telemetry.L("status", status))
}

// retryAfterSeconds derives the Retry-After hint attached to 429 sheds:
// the current queue backlog (plus the shed request itself) times the
// observed mean execution phase, rounded up to whole seconds with a
// one-second floor. Before any request has completed the hint is the floor.
func (s *Server) retryAfterSeconds() int64 {
	depth := s.depth.Value()
	if depth < 0 {
		depth = 0
	}
	var meanExec float64
	if h := s.phaseHists["exec"]; h != nil {
		if n := h.Count(); n > 0 {
			meanExec = h.Sum() / float64(n)
		}
	}
	secs := int64(math.Ceil(float64(depth+1) * meanExec / 1e6))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// statusOf maps a Do outcome to its metrics label.
func statusOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// Do admits, schedules and executes one request, honoring both the caller's
// ctx and the request deadline. It returns ErrOverloaded without blocking
// when the queue is full.
func (s *Server) Do(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	resp, err := s.do(ctx, req, start)
	s.requests(statusOf(err)).Inc()
	if err == nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.latency.Observe(float64(time.Since(start).Microseconds()))
	}
	return resp, err
}

func (s *Server) do(ctx context.Context, req Request, start time.Time) (*Response, error) {
	if strings.TrimSpace(req.SQL) == "" {
		return nil, ErrEmptySQL
	}
	device := s.device
	if req.Device != "" {
		var err error
		if device, err = castle.ParseDevice(req.Device); err != nil {
			return nil, err
		}
	}
	placement := s.placement
	if req.Placement != "" {
		var err error
		if placement, err = castle.ParsePlacement(req.Placement); err != nil {
			return nil, err
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	t := &task{
		ctx:       ctx,
		req:       req,
		device:    device,
		placement: placement,
		enqueued:  start,
		done:      make(chan taskResult, 1),
	}

	if resp, err, coalesced := s.tryCoalesce(t, start); coalesced {
		return resp, err
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- t:
		s.mu.RUnlock()
		s.depth.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
	default:
		s.mu.RUnlock()
		s.shedFull.Inc()
		return nil, ErrOverloaded
	}

	select {
	case r := <-t.done:
		if r.resp != nil {
			s.finishTimings(t, r.resp, start)
		}
		return r.resp, r.err
	case <-ctx.Done():
		// The worker that eventually dequeues this task sees the dead ctx
		// and drops it; done is buffered so it never blocks.
		return nil, ctx.Err()
	}
}

// finishTimings closes the books on a successful request: the enqueue,
// pickup, lease and execution-end instants partition the wall time into
// queue/lease/exec/serialize phases that sum exactly to WallMicros (each
// boundary is rounded to microseconds once, so the telescoping differences
// cannot drift). The phases land on the response, the phase histograms, the
// request's flight record, and — past the threshold — the slow-query log.
func (s *Server) finishTimings(t *task, resp *Response, start time.Time) {
	end := time.Now()
	wall := end.Sub(start).Microseconds()
	p1 := t.pickup.Sub(start).Microseconds()
	p2 := t.leased.Sub(start).Microseconds()
	p3 := t.execDone.Sub(start).Microseconds()
	tm := Timings{
		QueueMicros:     p1,
		LeaseMicros:     p2 - p1,
		ExecMicros:      p3 - p2,
		SerializeMicros: wall - p3,
	}
	resp.WallMicros = wall
	resp.TimingsMicros = tm
	s.phaseHists["queue"].Observe(float64(tm.QueueMicros))
	s.phaseHists["lease"].Observe(float64(tm.LeaseMicros))
	s.phaseHists["serialize"].Observe(float64(tm.SerializeMicros))
	var phases []telemetry.FlightPhase
	if s.cluster != nil && !t.scatterEnd.IsZero() {
		// Clustered executions split exec at the scatter/gather boundary the
		// coordinator recorded; the Timings struct keeps the four-phase shape
		// (exec = scatter + gather) for response compatibility.
		pS := t.scatterEnd.Sub(start).Microseconds()
		scatter, gather := pS-p2, p3-pS
		s.phaseHists["scatter"].Observe(float64(scatter))
		s.phaseHists["gather"].Observe(float64(gather))
		phases = []telemetry.FlightPhase{
			{Name: "queue", Micros: tm.QueueMicros},
			{Name: "lease", Micros: tm.LeaseMicros},
			{Name: "scatter", Micros: scatter},
			{Name: "gather", Micros: gather},
			{Name: "serialize", Micros: tm.SerializeMicros},
		}
	} else {
		s.phaseHists["exec"].Observe(float64(tm.ExecMicros))
		phases = []telemetry.FlightPhase{
			{Name: "queue", Micros: tm.QueueMicros},
			{Name: "lease", Micros: tm.LeaseMicros},
			{Name: "exec", Micros: tm.ExecMicros},
			{Name: "serialize", Micros: tm.SerializeMicros},
		}
	}
	s.tel.Flight().Amend(resp.FlightSeq, func(fr *telemetry.FlightRecord) {
		fr.WallMicros = wall
		fr.Phases = phases
	})
	if s.slowLog != nil && end.Sub(start) >= s.slowThresh {
		s.slowCount.Inc()
		s.slowLog.Printf("slow query (%.1fms): seq=%d fp=%s device=%s cycles=%d est=%d queue=%dµs lease=%dµs exec=%dµs serialize=%dµs sql=%q",
			float64(wall)/1e3, resp.FlightSeq, telemetry.FingerprintSQL(t.req.SQL),
			resp.Device, resp.Cycles, resp.EstCycles,
			tm.QueueMicros, tm.LeaseMicros, tm.ExecMicros, tm.SerializeMicros, t.req.SQL)
	}
}

// worker drains the admission queue until Close closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		t.pickup = time.Now()
		s.depth.Add(-1)
		if t.members != nil {
			s.runGroup(t)
			continue
		}
		s.queueWait.Observe(float64(t.pickup.Sub(t.enqueued).Microseconds()))
		resp, err := s.run(t)
		t.done <- taskResult{resp: resp, err: err}
	}
}

// run executes one admitted task: resolve hybrid routing, acquire the
// device resource, execute under the request ctx.
func (s *Server) run(t *task) (*Response, error) {
	if err := t.ctx.Err(); err != nil {
		return nil, err
	}
	opt := s.cfg.Options
	opt.Telemetry = s.tel
	if t.req.NoCache {
		opt.DisablePlanCache = true
	}
	if t.req.Adaptive {
		opt.AdaptivePlacement = true
	}
	if s.cluster != nil {
		return s.runCluster(t, opt)
	}

	opt.Device = t.device
	var dev castle.Device
	if t.device == castle.DeviceHybrid && t.placement == castle.PlacementPerOperator {
		// Per-operator placement: the fact stage's device drives the fan-out,
		// so that's the resource to lease; execution stays on DeviceHybrid so
		// the placed pipeline (possibly spanning both devices) runs.
		pe, err := s.db.ExplainPlacement(t.req.SQL, opt)
		if err != nil {
			return nil, err
		}
		dev = pe.FactDevice
		opt.Placement = castle.PlacementPerOperator
	} else {
		var err error
		dev, err = s.db.Route(t.req.SQL, opt)
		if err != nil {
			return nil, err
		}
		opt.Device = dev
	}
	lease, err := s.sched.AcquireN(t.ctx, dev, s.maxTiles())
	if err != nil {
		return nil, err
	}
	defer lease.Release()
	t.leased = time.Now()
	s.leaseSize.Observe(float64(lease.Size()))

	opt.Parallelism = lease.Size()
	rows, m, err := s.db.QueryContext(t.ctx, t.req.SQL, opt)
	t.execDone = time.Now()
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Columns:    rows.Columns,
		Rows:       rows.Data,
		RowCount:   len(rows.Data),
		Device:     m.DeviceUsed,
		Cycles:     m.Cycles,
		SimSeconds: m.Seconds,
		EstCycles:  m.EstCycles,
		Replaced:   m.Replaced,
		FlightSeq:  m.FlightSeq,
	}
	return resp, nil
}

// runCluster executes one admitted task across the sharded cluster. The
// per-node queues and semaphores model the execution resources, so this
// path skips the single-node scheduler lease (the lease timestamp still
// lands, as a zero-width phase, so the lifecycle telescopes); every node
// fans its fact sweep out across the full per-query tile budget.
func (s *Server) runCluster(t *task, opt castle.Options) (*Response, error) {
	opt.Device = t.device
	opt.Placement = t.placement
	opt.Parallelism = s.maxTiles()
	t.leased = time.Now()
	rows, m, err := s.cluster.QueryContext(t.ctx, t.req.SQL, opt)
	t.execDone = time.Now()
	if err != nil {
		return nil, err
	}
	t.scatterEnd = m.Cluster.ScatterEnd
	return &Response{
		Columns:      rows.Columns,
		Rows:         rows.Data,
		RowCount:     len(rows.Data),
		Device:       m.DeviceUsed,
		Cycles:       m.Cycles,
		SimSeconds:   m.Seconds,
		EstCycles:    m.EstCycles,
		FlightSeq:    m.FlightSeq,
		Shards:       m.Cluster.Shards,
		ShardsPruned: m.Cluster.PrunedShards,
		ShuffleBytes: m.Cluster.ShuffleBytes,
	}, nil
}

// Close drains the server: no new requests are admitted, queued and
// in-flight requests run to completion, then the workers exit. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Flush pending coalescing windows before closing the queue: their
	// members were admitted and run to completion like queued requests.
	// stopAndFlush also prevents any later timer from touching the queue.
	if s.coal != nil {
		s.coal.stopAndFlush()
	}
	close(s.queue)
	s.wg.Wait()
	return nil
}

// String describes the service sizing (for startup logs).
func (s *Server) String() string {
	base := fmt.Sprintf("server{device=%s placement=%s queue=%d cape_tiles=%d cpu_slots=%d max_tiles_per_query=%d timeout=%s}",
		s.cfg.Device, s.placement, cap(s.queue), s.sched.Capacity(castle.DeviceCAPE),
		s.sched.Capacity(castle.DeviceCPU), s.maxTiles(), s.cfg.DefaultTimeout)
	if s.cluster != nil {
		return base + " " + s.cluster.String()
	}
	return base
}
