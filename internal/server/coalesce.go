package server

// coalesce.go is the scan-sharing admission layer: requests arriving within
// a small window of each other that sweep the same fact table on the same
// routed device are held briefly and flushed as one fused group — one
// admission-queue slot, one device lease, one shared fact sweep serving
// every member through DB.QueryGroupContext. Identical-fingerprint members
// share a single execution's result. The window wait lands in each
// member's queue phase, so the four-phase lifecycle attribution still
// telescopes exactly per request.

import (
	"context"
	"sync"
	"time"

	"castle"
)

// coalescer holds the pending windows, keyed by (fact table, routed
// device). The first request of a key opens a window; companions join until
// the window timer fires or the group reaches the size cap.
type coalescer struct {
	s       *Server
	window  time.Duration
	maxSize int

	mu      sync.Mutex
	stopped bool
	pending map[string]*pendingGroup
}

type pendingGroup struct {
	key     string
	members []*task
	timer   *time.Timer
	flushed bool
}

func newCoalescer(s *Server, window time.Duration, maxSize int) *coalescer {
	return &coalescer{s: s, window: window, maxSize: maxSize,
		pending: make(map[string]*pendingGroup)}
}

// add places t into its (fact, device) window, opening one if needed. A
// group reaching the size cap flushes immediately. Returns false when the
// coalescer has been stopped (server closing).
func (c *coalescer) add(t *task) bool {
	key := t.fact + "|" + t.groupDev.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return false
	}
	g := c.pending[key]
	if g == nil {
		g = &pendingGroup{key: key}
		c.pending[key] = g
		g.timer = time.AfterFunc(c.window, func() { c.flush(g) })
	}
	g.members = append(g.members, t)
	if len(g.members) >= c.maxSize {
		c.flushLocked(g)
	}
	return true
}

func (c *coalescer) flush(g *pendingGroup) {
	c.mu.Lock()
	c.flushLocked(g)
	c.mu.Unlock()
}

// flushLocked hands a window's members to the admission queue as one group
// task (one slot). The non-blocking enqueue happens under the coalescer
// lock so stopAndFlush cannot return while a timer-driven flush is
// mid-send — the queue is never closed under an in-progress send.
func (c *coalescer) flushLocked(g *pendingGroup) {
	if g.flushed {
		return
	}
	g.flushed = true
	if c.pending[g.key] == g {
		delete(c.pending, g.key)
	}
	if g.timer != nil {
		g.timer.Stop()
	}
	now := time.Now()
	for _, m := range g.members {
		c.s.coalWait.Observe(float64(now.Sub(m.enqueued).Microseconds()))
	}
	c.s.enqueueGroup(g.members)
}

// stopAndFlush flushes every pending window and prevents any future add or
// timer flush from touching the server's queue. Called by Close before the
// queue is closed, so admitted window members still run to completion.
func (c *coalescer) stopAndFlush() {
	c.mu.Lock()
	c.stopped = true
	for _, g := range c.pending {
		c.flushLocked(g)
	}
	c.mu.Unlock()
}

// tryCoalesce routes an eligible request through the coalescing window.
// The third return reports whether the request was handled here; false
// means the caller should run the ordinary solo admission path.
// Per-operator placements and adaptive executions keep their solo path
// (fused execution runs whole-query on the routed device), and statements
// that fail classification fall through so the solo path surfaces the
// error with its usual mapping.
func (s *Server) tryCoalesce(t *task, start time.Time) (*Response, error, bool) {
	if s.coal == nil || t.req.Adaptive || s.cfg.Options.AdaptivePlacement ||
		(t.device == castle.DeviceHybrid && t.placement == castle.PlacementPerOperator) {
		return nil, nil, false
	}
	opt := s.cfg.Options
	opt.Device = t.device
	opt.Telemetry = s.tel
	if t.req.NoCache {
		opt.DisablePlanCache = true
	}
	class, err := s.db.ScanClassOf(t.req.SQL, opt)
	if err != nil {
		return nil, nil, false
	}
	t.fact, t.fp, t.groupDev = class.Fact, class.Fingerprint, class.Device

	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed, true
	}
	if !s.coal.add(t) {
		return nil, ErrClosed, true
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	select {
	case r := <-t.done:
		if r.resp != nil {
			s.finishTimings(t, r.resp, start)
		}
		return r.resp, r.err, true
	case <-t.ctx.Done():
		return nil, t.ctx.Err(), true
	}
}

// enqueueGroup admits a flushed window into the queue: one slot whether the
// group holds one member or the cap. A full queue sheds every member.
func (s *Server) enqueueGroup(members []*task) {
	gt := members[0]
	if len(members) > 1 {
		gt = &task{members: members, enqueued: members[0].enqueued}
	}
	select {
	case s.queue <- gt:
		s.depth.Add(1)
	default:
		for _, m := range members {
			s.shedFlush.Inc()
			m.done <- taskResult{err: ErrOverloaded}
		}
	}
}

// runGroup executes a fused group task on a worker: one device lease for
// the whole group, one shared-sweep execution, and per-member responses.
// Every member's lifecycle timestamps are stamped from the shared pickup,
// lease and exec instants, so each member's queue/lease/exec/serialize
// phases still telescope to its own wall time exactly (the window wait is
// part of the queue phase).
func (s *Server) runGroup(gt *task) {
	members := gt.members
	live := make([]*task, 0, len(members))
	var latest time.Time
	for _, m := range members {
		m.pickup = gt.pickup
		s.queueWait.Observe(float64(gt.pickup.Sub(m.enqueued).Microseconds()))
		if err := m.ctx.Err(); err != nil {
			m.done <- taskResult{err: err}
			continue
		}
		if dl, ok := m.ctx.Deadline(); ok && dl.After(latest) {
			latest = dl
		}
		live = append(live, m)
	}
	if len(live) == 0 {
		return
	}
	// One context serves the fused execution, bounded by the latest member
	// deadline. An individual member's cancellation no longer stops the
	// shared sweep — its result is dropped on the buffered done channel.
	gctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if !latest.IsZero() {
		gctx, cancel = context.WithDeadline(gctx, latest)
	}
	defer cancel()

	dev := live[0].groupDev
	lease, err := s.sched.AcquireN(gctx, dev, s.maxTiles())
	if err != nil {
		for _, m := range live {
			m.done <- taskResult{err: err}
		}
		return
	}
	defer lease.Release()
	s.leaseSize.Observe(float64(lease.Size()))
	leased := time.Now()
	for _, m := range live {
		m.leased = leased
	}

	// Identical fingerprints share one execution slot in the batch; the
	// duplicates are served the representative's result.
	slot := make([]int, len(live))
	rep := make(map[string]int, len(live))
	var sqls []string
	for i, m := range live {
		if j, ok := rep[m.fp]; ok {
			slot[i] = j
			continue
		}
		rep[m.fp] = len(sqls)
		slot[i] = len(sqls)
		sqls = append(sqls, m.req.SQL)
	}
	if dups := len(live) - len(sqls); dups > 0 {
		s.dedupCount.Add(int64(dups))
	}

	opt := s.cfg.Options
	opt.Telemetry = s.tel
	opt.Device = dev
	opt.ScanSharing = true
	opt.Parallelism = lease.Size()
	rows, mets, err := s.db.QueryGroupContext(gctx, sqls, opt)
	done := time.Now()
	for _, m := range live {
		m.execDone = done
	}
	if err != nil {
		for _, m := range live {
			m.done <- taskResult{err: err}
		}
		return
	}
	for i, m := range live {
		r, mt := rows[slot[i]], mets[slot[i]]
		m.done <- taskResult{resp: &Response{
			Columns:    r.Columns,
			Rows:       r.Data,
			RowCount:   len(r.Data),
			Device:     mt.DeviceUsed,
			Cycles:     mt.Cycles,
			SimSeconds: mt.Seconds,
			EstCycles:  mt.EstCycles,
			FlightSeq:  mt.FlightSeq,
			GroupID:    mt.GroupID,
			GroupSize:  mt.GroupSize,
		}}
	}
}
