package server

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"castle"
	"castle/internal/telemetry"
)

// TestElasticLeases exercises AcquireN's contract: the first tile blocks,
// extras are best-effort, leases shrink under contention, and the gauges
// track tiles (leased) separately from queries (busy).
func TestElasticLeases(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	sched := NewScheduler(4, 1, reg)
	leased := func() int64 {
		return reg.Gauge(telemetry.MetricServerTilesLeased,
			"", telemetry.L("device", "cape")).Value()
	}

	l1, err := sched.AcquireN(ctx, castle.DeviceCAPE, 3)
	if err != nil || l1.Size() != 3 {
		t.Fatalf("first AcquireN(3) = size %d, %v; want 3 tiles", l1.Size(), err)
	}
	if got := leased(); got != 3 {
		t.Fatalf("leased gauge = %d, want 3", got)
	}

	// Only one tile is left: an elastic request for 3 shrinks to 1 and must
	// not block (blocking here is the deadlock the design rules out).
	l2, err := sched.AcquireN(ctx, castle.DeviceCAPE, 3)
	if err != nil || l2.Size() != 1 {
		t.Fatalf("contended AcquireN(3) = size %d, %v; want 1 tile", l2.Size(), err)
	}
	if got := leased(); got != 4 {
		t.Fatalf("leased gauge = %d, want 4", got)
	}

	// Pool drained: the blocking first acquire respects the context.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := sched.AcquireN(shortCtx, castle.DeviceCAPE, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drained AcquireN: want DeadlineExceeded, got %v", err)
	}

	l2.Release()
	l2.Release() // idempotent: must not double-return tiles
	l1.Release()
	if got := leased(); got != 0 {
		t.Fatalf("leased gauge after release = %d, want 0", got)
	}

	// Oversized requests clamp to the pool.
	l3, err := sched.AcquireN(ctx, castle.DeviceCAPE, 10)
	if err != nil || l3.Size() != 4 {
		t.Fatalf("AcquireN(10) = size %d, %v; want the whole pool of 4", l3.Size(), err)
	}
	l3.Release()

	// want < 1 normalizes to one tile; unknown devices fail fast.
	l4, err := sched.AcquireN(ctx, castle.DeviceCAPE, 0)
	if err != nil || l4.Size() != 1 {
		t.Fatalf("AcquireN(0) = size %d, %v; want 1", l4.Size(), err)
	}
	l4.Release()
	if _, err := sched.AcquireN(ctx, castle.DeviceHybrid, 2); err == nil {
		t.Fatal("hybrid AcquireN must fail: no pool")
	}
}

// TestServerElasticSaturation is the load test under elastic leases: with
// MaxTilesPerQuery above the pool size, saturating concurrent clients must
// neither deadlock nor shed, and every result must match the reference.
func TestServerElasticSaturation(t *testing.T) {
	s := newTestServer(t, Config{
		QueueDepth: 512, CAPETiles: 2, CPUSlots: 2, MaxTilesPerQuery: 4,
	})
	queries := castle.SSBQueries()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c*perClient+i)%len(queries)]
				resp, err := s.Do(context.Background(), Request{SQL: q.SQL})
				if err != nil {
					errs <- err
					continue
				}
				if !reflect.DeepEqual(resp.Rows, reference[q.Num]) {
					errs <- errors.New(q.Flight + ": rows diverged from reference under elastic leases")
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricServerRequests, telemetry.L("status", "ok")); got != clients*perClient {
		t.Fatalf("ok requests = %d, want %d (sheds or errors under elastic leases)", got, clients*perClient)
	}
	if shed := reg.CounterValue(telemetry.MetricServerShed, telemetry.L("reason", "queue_full")); shed != 0 {
		t.Fatalf("elastic leases shed %d requests with a deep queue", shed)
	}
	// All tiles are back home, and the lease-size histogram surfaced on the
	// metrics endpoint.
	for _, dev := range []string{"cape", "cpu"} {
		if got := reg.Gauge(telemetry.MetricServerTilesLeased, "", telemetry.L("device", dev)).Value(); got != 0 {
			t.Fatalf("%s leased gauge = %d after drain, want 0", dev, got)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{telemetry.MetricServerLeaseSize, telemetry.MetricServerTilesLeased, telemetry.MetricServerQueueWait} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
