package server

// coalesce_test.go pins the scan-sharing admission layer: a coalesced
// group takes exactly one scheduler lease (no per-member lease churn), the
// lease-size histogram reflects the single grant, identical-fingerprint
// members share one result, member answers stay bit-identical to the solo
// reference, and the 429 shed path carries a Retry-After hint. Run with
// -race: members, workers and the window timer all touch the group state.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"castle"
	"castle/internal/telemetry"
)

// TestCoalescedGroupSingleLease fires six distinct same-fact queries into
// one coalescing window and asserts the group ran under exactly one
// elastic lease with fused shared-scan execution.
func TestCoalescedGroupSingleLease(t *testing.T) {
	s := newTestServer(t, Config{
		QueueDepth: 64, CAPETiles: 2, CPUSlots: 2,
		Device:      "cpu", // same routed device for every member
		ScanSharing: true, CoalesceWindow: 250 * time.Millisecond, MaxGroupSize: 8,
	})
	queries := castle.SSBQueries()[:6]

	before := s.sched.Acquires()
	var wg sync.WaitGroup
	resps := make([]*Response, len(queries))
	errs := make([]error, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Do(context.Background(), Request{SQL: queries[i].SQL})
		}(i)
	}
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("%s: %v", q.Flight, errs[i])
		}
		if !reflect.DeepEqual(resps[i].Rows, reference[q.Num]) {
			t.Fatalf("%s: coalesced rows diverged from solo reference", q.Flight)
		}
		tm := resps[i].TimingsMicros
		if sum := tm.QueueMicros + tm.LeaseMicros + tm.ExecMicros + tm.SerializeMicros; sum != resps[i].WallMicros {
			t.Fatalf("%s: member phases sum %dµs != wall %dµs", q.Flight, sum, resps[i].WallMicros)
		}
	}

	// Exactly one lease for the whole group: no per-member lease churn.
	if got := s.sched.Acquires() - before; got != 1 {
		t.Fatalf("group of %d took %d leases, want 1", len(queries), got)
	}
	reg := s.Telemetry().Metrics()
	if n := reg.Histogram(telemetry.MetricServerLeaseSize, "").Count(); n != 1 {
		t.Fatalf("lease-size histogram holds %d grants, want 1", n)
	}
	if got := reg.CounterValue(telemetry.MetricSharedSweeps, telemetry.L("device", "cpu")); got != 1 {
		t.Fatalf("shared sweeps = %d, want 1", got)
	}
	if got := reg.CounterValue(telemetry.MetricCoalescedQueries, telemetry.L("kind", "fused")); got != int64(len(queries)) {
		t.Fatalf("fused members = %d, want %d", got, len(queries))
	}
	if n := reg.Histogram(telemetry.MetricCoalesceWait, "").Count(); n != int64(len(queries)) {
		t.Fatalf("coalesce-wait observations = %d, want %d", n, len(queries))
	}

	// Group identity is shared and sized correctly on every member.
	gid := resps[0].GroupID
	if gid == 0 {
		t.Fatal("fused member reports no group id")
	}
	for i, r := range resps {
		if r.GroupID != gid || r.GroupSize != len(queries) {
			t.Fatalf("member %d group identity = (%d, %d), want (%d, %d)",
				i, r.GroupID, r.GroupSize, gid, len(queries))
		}
	}
}

// TestCoalescedDedupSharesResult fires five textually identical queries
// into one window: one execution serves all five.
func TestCoalescedDedupSharesResult(t *testing.T) {
	s := newTestServer(t, Config{
		QueueDepth: 64, CAPETiles: 1, CPUSlots: 1,
		Device:      "cpu",
		ScanSharing: true, CoalesceWindow: 250 * time.Millisecond, MaxGroupSize: 8,
	})
	q := castle.SSBQueries()[2]

	before := s.sched.Acquires()
	const dup = 5
	var wg sync.WaitGroup
	resps := make([]*Response, dup)
	errs := make([]error, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Do(context.Background(), Request{SQL: q.SQL})
		}(i)
	}
	wg.Wait()

	for i := 0; i < dup; i++ {
		if errs[i] != nil {
			t.Fatalf("dup %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(resps[i].Rows, reference[q.Num]) {
			t.Fatalf("dup %d: rows diverged from reference", i)
		}
		if resps[i].FlightSeq != resps[0].FlightSeq {
			t.Fatalf("dup %d: flight seq %d, want shared %d (one execution serves all)",
				i, resps[i].FlightSeq, resps[0].FlightSeq)
		}
	}
	if got := s.sched.Acquires() - before; got != 1 {
		t.Fatalf("deduped group took %d leases, want 1", got)
	}
	reg := s.Telemetry().Metrics()
	if got := reg.CounterValue(telemetry.MetricCoalescedQueries, telemetry.L("kind", "deduped")); got != dup-1 {
		t.Fatalf("deduped members = %d, want %d", got, dup-1)
	}
}

// TestRetryAfterHeader pins the 429 back-pressure hint: shed responses
// carry a Retry-After of at least one second.
func TestRetryAfterHeader(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1, CAPETiles: 1, CPUSlots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := pinPools(t, s)
	defer release()

	q := castle.SSBQueries()[0].SQL
	body, _ := json.Marshal(Request{SQL: q})
	// With both pools pinned and a one-slot queue, a concurrent burst
	// overflows admission: accepted requests park on the scheduler while
	// the rest shed synchronously with 429.
	const burst = 12
	retries := make(chan string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // client timeout while parked: not a shed
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				retries <- resp.Header.Get("Retry-After")
			}
		}()
	}
	wg.Wait()
	close(retries)
	shed := 0
	for retry := range retries {
		shed++
		if retry == "" || retry == "0" {
			t.Fatalf("429 without usable Retry-After (%q)", retry)
		}
	}
	if shed == 0 {
		t.Fatal("burst never shed")
	}
}
