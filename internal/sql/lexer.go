// Package sql implements Castle's declarative front end: a lexer and
// recursive-descent parser for the SQL subset the Star Schema Benchmark
// uses — SELECT with SUM aggregates and arithmetic, multi-table FROM,
// WHERE conjunctions with =, <>, ordering comparisons, BETWEEN, IN and
// parenthesized OR groups, GROUP BY and ORDER BY.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp // = <> < <= > >= + - * /
	TokComma
	TokLParen
	TokRParen
	TokSemi
	TokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"GROUP": true, "ORDER": true, "BY": true, "AS": true, "BETWEEN": true,
	"IN": true, "ASC": true, "DESC": true, "SUM": true, "COUNT": true,
	"MIN": true, "MAX": true, "AVG": true, "LIMIT": true, "DISTINCT": true,
	"NOT": true,
}

// Token is one lexical element. Text of keywords is upper-cased; identifier
// text preserves the original spelling lower-cased (SSB column names are
// lower-case).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Lex tokenizes the input, returning an error for unexpected characters or
// unterminated strings.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", i})
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string at position %d", i)
			}
			toks = append(toks, Token{TokString, input[i+1 : j], i})
			i = j + 1
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokOp, "<=", i})
				i += 2
			} else if i+1 < n && input[i+1] == '>' {
				toks = append(toks, Token{TokOp, "<>", i})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, ">", i})
				i++
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, Token{TokOp, string(c), i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < n && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, Token{TokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, i})
			} else {
				toks = append(toks, Token{TokIdent, strings.ToLower(word), i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#'
}
