package sql

import (
	"fmt"
	"strconv"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSemi {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != kw {
		return fmt.Errorf("sql: expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("sql: expected table name, got %s", t)
		}
		ref := TableRef{Name: t.Text}
		if p.atKeyword("AS") {
			p.next()
			a := p.next()
			if a.Kind != TokIdent {
				return nil, fmt.Errorf("sql: expected alias, got %s", a)
			}
			ref.Alias = a.Text
		} else if p.peek().Kind == TokIdent {
			ref.Alias = p.next().Text
		}
		stmt.Tables = append(stmt.Tables, ref)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.atKeyword("WHERE") {
		p.next()
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.Kind != TokIdent {
				return nil, fmt.Errorf("sql: expected group-by column, got %s", t)
			}
			stmt.GroupBy = append(stmt.GroupBy, t.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.Kind != TokIdent {
				return nil, fmt.Errorf("sql: expected order-by column, got %s", t)
			}
			item := OrderItem{Col: t.Text}
			if p.atKeyword("ASC") {
				p.next()
			} else if p.atKeyword("DESC") {
				p.next()
				item.Desc = true
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		t := p.next()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count, got %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %s", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.Kind == TokKeyword && isAggKeyword(t.Text) {
		p.next()
		if n := p.next(); n.Kind != TokLParen {
			return SelectItem{}, fmt.Errorf("sql: expected ( after %s, got %s", t.Text, n)
		}
		distinct := false
		if p.atKeyword("DISTINCT") {
			if t.Text != "COUNT" {
				return SelectItem{}, fmt.Errorf("sql: DISTINCT is only supported inside COUNT")
			}
			p.next()
			distinct = true
		}
		e, err := p.arith()
		if err != nil {
			return SelectItem{}, err
		}
		if n := p.next(); n.Kind != TokRParen {
			return SelectItem{}, fmt.Errorf("sql: expected ) closing %s, got %s", t.Text, n)
		}
		item := SelectItem{Agg: t.Text, Distinct: distinct, Expr: e}
		if p.atKeyword("AS") {
			p.next()
			a := p.next()
			if a.Kind != TokIdent {
				return SelectItem{}, fmt.Errorf("sql: expected alias, got %s", a)
			}
			item.Alias = a.Text
		}
		return item, nil
	}
	if t.Kind == TokIdent {
		p.next()
		item := SelectItem{Expr: ColRef{Name: t.Text}}
		if p.atKeyword("AS") {
			p.next()
			a := p.next()
			if a.Kind != TokIdent {
				return SelectItem{}, fmt.Errorf("sql: expected alias, got %s", a)
			}
			item.Alias = a.Text
		}
		return item, nil
	}
	return SelectItem{}, fmt.Errorf("sql: expected select item, got %s", t)
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

// andExpr := predicate (AND predicate)*
func (p *parser) andExpr() (Expr, error) {
	left, err := p.predicate()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		right, err := p.predicate()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

// predicate := '(' orExpr ')' | arith (cmp arith | BETWEEN a AND b | IN list)
func (p *parser) predicate() (Expr, error) {
	if p.peek().Kind == TokLParen {
		// Could be a parenthesized boolean group or a parenthesized
		// arithmetic operand; try boolean first by lookahead reparse.
		save := p.pos
		p.next()
		inner, err := p.orExpr()
		if err == nil && p.peek().Kind == TokRParen {
			p.next()
			return inner, nil
		}
		p.pos = save
	}
	left, err := p.arith()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.Kind == TokOp && isCmp(t.Text):
		p.next()
		right, err := p.arith()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: t.Text, L: left, R: right}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.arith()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.arith()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{Operand: left, Lo: lo, Hi: hi}, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if n := p.next(); n.Kind != TokLParen {
			return nil, fmt.Errorf("sql: expected ( after IN, got %s", n)
		}
		var list []Expr
		for {
			e, err := p.arith()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if n := p.next(); n.Kind != TokRParen {
			return nil, fmt.Errorf("sql: expected ) closing IN list, got %s", n)
		}
		return InExpr{Operand: left, List: list}, nil
	}
	return nil, fmt.Errorf("sql: expected comparison, BETWEEN or IN, got %s", t)
}

func isAggKeyword(kw string) bool {
	switch kw {
	case "SUM", "COUNT", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func isCmp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// arith := term (('+'|'-') term)*
func (p *parser) arith() (Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			right, err := p.term()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

// term := factor (('*'|'/') factor)*
func (p *parser) term() (Expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
			p.next()
			right, err := p.factor()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

// factor := ident | number | string | '(' arith ')'
func (p *parser) factor() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokIdent:
		return ColRef{Name: t.Text}, nil
	case TokNumber:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %s: %v", t.Text, err)
		}
		return IntLit{V: v}, nil
	case TokString:
		return StrLit{V: t.Text}, nil
	case TokLParen:
		e, err := p.arith()
		if err != nil {
			return nil, err
		}
		if n := p.next(); n.Kind != TokRParen {
			return nil, fmt.Errorf("sql: expected ), got %s", n)
		}
		return e, nil
	}
	return nil, fmt.Errorf("sql: expected operand, got %s", t)
}
