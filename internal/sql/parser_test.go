package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestParseSSBQ11(t *testing.T) {
	s := mustParse(t, `
		SELECT SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 1993
		  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;`)
	if len(s.Items) != 1 || s.Items[0].Agg != "SUM" || s.Items[0].Alias != "revenue" {
		t.Fatalf("items: %+v", s.Items)
	}
	mul, ok := s.Items[0].Expr.(BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("agg expr = %v", s.Items[0].Expr)
	}
	if len(s.Tables) != 2 || s.Tables[0].Name != "lineorder" || s.Tables[1].Name != "date" {
		t.Fatalf("tables: %+v", s.Tables)
	}
	// WHERE is a left-deep AND chain of 4 conjuncts.
	conjuncts := flattenAnd(s.Where)
	if len(conjuncts) != 4 {
		t.Fatalf("conjuncts = %d, want 4: %v", len(conjuncts), s.Where)
	}
	if _, ok := conjuncts[2].(BetweenExpr); !ok {
		t.Fatalf("third conjunct should be BETWEEN: %v", conjuncts[2])
	}
}

func flattenAnd(e Expr) []Expr {
	if b, ok := e.(BinaryExpr); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

func TestParseGroupByAndOrderBy(t *testing.T) {
	s := mustParse(t, `
		SELECT SUM(lo_revenue), d_year, p_brand1
		FROM lineorder, date, part, supplier
		WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
		  AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12'
		  AND s_region = 'AMERICA'
		GROUP BY d_year, p_brand1
		ORDER BY d_year, p_brand1`)
	if len(s.GroupBy) != 2 || s.GroupBy[0] != "d_year" || s.GroupBy[1] != "p_brand1" {
		t.Fatalf("group by: %v", s.GroupBy)
	}
	if len(s.OrderBy) != 2 || s.OrderBy[0].Col != "d_year" || s.OrderBy[0].Desc {
		t.Fatalf("order by: %v", s.OrderBy)
	}
	if len(s.Tables) != 4 {
		t.Fatalf("tables: %v", s.Tables)
	}
	// String literal predicate.
	found := false
	for _, c := range flattenAnd(s.Where) {
		if b, ok := c.(BinaryExpr); ok && b.Op == "=" {
			if lit, ok := b.R.(StrLit); ok && lit.V == "MFGR#12" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("string literal MFGR#12 not parsed")
	}
}

func TestParseParenthesizedOr(t *testing.T) {
	s := mustParse(t, `
		SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
		FROM date, customer, supplier, part, lineorder
		WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
		  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
		  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
		  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
		GROUP BY d_year, c_nation`)
	conjuncts := flattenAnd(s.Where)
	if len(conjuncts) != 7 {
		t.Fatalf("conjuncts = %d, want 7", len(conjuncts))
	}
	last := conjuncts[6]
	or, ok := last.(BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("last conjunct should be OR group: %v", last)
	}
	// sum(a - b)
	var agg *SelectItem
	for i := range s.Items {
		if s.Items[i].Agg == "SUM" {
			agg = &s.Items[i]
		}
	}
	if agg == nil {
		t.Fatal("no SUM item")
	}
	sub, ok := agg.Expr.(BinaryExpr)
	if !ok || sub.Op != "-" {
		t.Fatalf("SUM expr = %v", agg.Expr)
	}
}

func TestParseInList(t *testing.T) {
	s := mustParse(t, `SELECT c_city FROM customer WHERE c_city IN ('UNITED KI1', 'UNITED KI5')`)
	in, ok := s.Where.(InExpr)
	if !ok || len(in.List) != 2 {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseTableAliases(t *testing.T) {
	s := mustParse(t, `SELECT x FROM fact AS f, dimension1 d1 WHERE x = 1`)
	if s.Tables[0].Alias != "f" || s.Tables[1].Alias != "d1" {
		t.Fatalf("aliases: %+v", s.Tables)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		s := mustParse(t, "SELECT x FROM t WHERE x "+op+" 5")
		b, ok := s.Where.(BinaryExpr)
		if !ok || b.Op != op {
			t.Fatalf("op %s: got %v", op, s.Where)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t WHERE x",
		"SELECT x FROM t WHERE x = ",
		"SELECT x FROM t WHERE x BETWEEN 1",
		"SELECT x FROM t WHERE x IN 1",
		"SELECT x FROM t WHERE x IN (1",
		"SELECT SUM(x FROM t",
		"SELECT x FROM t GROUP",
		"SELECT x FROM t ORDER",
		"SELECT x FROM t trailing junk here",
		"SELECT x FROM t WHERE x = 'unterminated",
		"SELECT x FROM t WHERE x = 99999999999999999999",
		"SELECT x FROM t WHERE x ? 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseSemicolonOptional(t *testing.T) {
	mustParse(t, "SELECT x FROM t WHERE x = 1")
	mustParse(t, "SELECT x FROM t WHERE x = 1;")
}

func TestStmtStringRoundTrips(t *testing.T) {
	q := `SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year >= 1992 GROUP BY d_year ORDER BY d_year DESC`
	s1 := mustParse(t, q)
	s2 := mustParse(t, s1.String())
	if s1.String() != s2.String() {
		t.Fatalf("String not stable:\n%s\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), "DESC") {
		t.Fatal("DESC lost")
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := Lex("SELECT x, 42 <= 'str' ( ) ;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokComma, TokNumber, TokOp, TokString, TokLParen, TokRParen, TokSemi, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexerCaseInsensitiveKeywords(t *testing.T) {
	s := mustParse(t, "select X from T where X = 1 group by X")
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "x" {
		t.Fatalf("group by: %v", s.GroupBy)
	}
	if s.Tables[0].Name != "t" {
		t.Fatalf("table: %v", s.Tables)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("@ should fail lexing")
	}
	if _, err := Lex("'open"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestExprStrings(t *testing.T) {
	exprs := []Expr{
		ColRef{"a"},
		IntLit{5},
		StrLit{"x"},
		BinaryExpr{"=", ColRef{"a"}, IntLit{1}},
		BetweenExpr{ColRef{"a"}, IntLit{1}, IntLit{2}},
		InExpr{ColRef{"a"}, []Expr{IntLit{1}, IntLit{2}}},
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Errorf("%T has empty String", e)
		}
	}
}

func TestParseLimitAndCountDistinct(t *testing.T) {
	s := mustParse(t, `SELECT COUNT(DISTINCT x), SUM(y) FROM t WHERE y > 1 ORDER BY x LIMIT 5`)
	if s.Limit != 5 {
		t.Fatalf("limit = %d", s.Limit)
	}
	if !s.Items[0].Distinct || s.Items[0].Agg != "COUNT" {
		t.Fatalf("items: %+v", s.Items)
	}
	if s.Items[1].Distinct {
		t.Fatal("SUM should not be distinct")
	}
	// Round trip.
	s2 := mustParse(t, s.String())
	if s2.Limit != 5 || !s2.Items[0].Distinct {
		t.Fatalf("round trip lost features: %s", s.String())
	}
	for _, bad := range []string{
		"SELECT x FROM t LIMIT",
		"SELECT x FROM t LIMIT 0",
		"SELECT x FROM t LIMIT abc",
		"SELECT SUM(DISTINCT x) FROM t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
