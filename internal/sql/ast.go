package sql

import (
	"fmt"
	"strings"
)

// Expr is a parsed expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column by (lower-cased) name; SSB column names are
// globally unique so qualification is unnecessary.
type ColRef struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// BinaryExpr covers arithmetic (+ - * /), comparisons (= <> < <= > >=) and
// boolean connectives (AND OR). Op is the lexeme, upper-cased for
// connectives.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// BetweenExpr is `col BETWEEN lo AND hi` (inclusive).
type BetweenExpr struct {
	Operand Expr
	Lo, Hi  Expr
}

// InExpr is `col IN (v1, v2, ...)`.
type InExpr struct {
	Operand Expr
	List    []Expr
}

func (ColRef) exprNode()      {}
func (IntLit) exprNode()      {}
func (StrLit) exprNode()      {}
func (BinaryExpr) exprNode()  {}
func (BetweenExpr) exprNode() {}
func (InExpr) exprNode()      {}

func (e ColRef) String() string { return e.Name }
func (e IntLit) String() string { return fmt.Sprintf("%d", e.V) }
func (e StrLit) String() string { return fmt.Sprintf("'%s'", e.V) }
func (e BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", e.Operand, e.Lo, e.Hi)
}
func (e InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.Operand, strings.Join(parts, ", "))
}

// SelectItem is one output of the SELECT list: either a plain column or an
// aggregate over an arithmetic expression.
type SelectItem struct {
	Agg string // "" for a plain column, else SUM/COUNT/MIN/MAX/AVG
	// Distinct marks COUNT(DISTINCT col).
	Distinct bool
	Expr     Expr
	Alias    string
}

func (s SelectItem) String() string {
	out := s.Expr.String()
	if s.Distinct {
		out = "DISTINCT " + out
	}
	if s.Agg != "" {
		out = fmt.Sprintf("%s(%s)", s.Agg, out)
	}
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// TableRef names a FROM relation with an optional alias.
type TableRef struct {
	Name, Alias string
}

// OrderItem is one ORDER BY column.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Items   []SelectItem
	Tables  []TableRef
	Where   Expr // nil when absent
	GroupBy []string
	OrderBy []OrderItem
	// Limit caps the result rows; 0 means no limit.
	Limit int
}

// String reconstructs a canonical form of the statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" AS " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(s.GroupBy, ", "))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
