package isa

import (
	"testing"
	"testing/quick"
)

// TestTable1Formulas pins the published cost model (Table 1) at n=32.
func TestTable1Formulas(t *testing.T) {
	cases := []struct {
		op   Op
		n    int
		want int64
	}{
		{OpVAddVV, 32, 8*32 + 2},
		{OpVSubVV, 32, 8*32 + 2},
		{OpVMulVV, 32, 4*32*32 + 4*32},
		{OpVRedSum, 32, 32},
		{OpVAndVV, 32, 3},
		{OpVOrVV, 32, 3},
		{OpVXorVV, 32, 4},
		{OpVMSeqVX, 32, 33},
		{OpVMSeqVV, 32, 36},
		{OpVMSltVV, 32, 3*32 + 6},
	}
	for _, c := range cases {
		if got := Steps(c.op, c.n); got != c.want {
			t.Errorf("Steps(%v, %d) = %d, want %d", c.op, c.n, got, c.want)
		}
	}
}

// TestABAMultiplyExample pins the §5.1 worked example: ABA reduces a 32-bit
// multiplication from 4,224 cycles to 80 when both operands fit in 4 bits.
func TestABAMultiplyExample(t *testing.T) {
	if got := MulSteps(32, 32); got != 4224 {
		t.Errorf("MulSteps(32,32) = %d, want 4224", got)
	}
	if got := MulSteps(4, 4); got != 80 {
		t.Errorf("MulSteps(4,4) = %d, want 80", got)
	}
	// Mixed width: far cheaper than full width, far costlier than 4x4.
	mixed := MulSteps(4, 32)
	if mixed <= 80 || mixed >= 4224 {
		t.Errorf("MulSteps(4,32) = %d, want between 80 and 4224", mixed)
	}
}

func TestSearchCosts(t *testing.T) {
	if got := SearchSteps(32); got != 33 {
		t.Errorf("GP search = %d, want 33 (paper: 33 cycles on a 32-bit configuration)", got)
	}
	if SearchStepsCAM != 3 {
		t.Errorf("CAM search = %d, want 3", SearchStepsCAM)
	}
}

func TestVMKSCost(t *testing.T) {
	// §5.3: Cycles(vmks) = M + numkeys + 2; the CSB-side part is numkeys+2.
	if got := VMKSSteps(128); got != 130 {
		t.Errorf("VMKSSteps(128) = %d, want 130", got)
	}
}

func TestConfigInstructionCosts(t *testing.T) {
	if Steps(OpVSetDL, 32) != 1 {
		t.Error("vsetdl must cost 1 cycle (§5.2)")
	}
	if Steps(OpVRelayout, 32) != 2 {
		t.Error("vrelayout must cost 2 cycles (§5.2)")
	}
}

// TestFig7Classes checks the instruction-class taxonomy used for the
// Figure 7 breakdown.
func TestFig7Classes(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpVMSeqVX, ClassSearch},
		{OpVMKS, ClassSearch},
		{OpVMSgeVX, ClassSearch},
		{OpVAndVV, ClassLogical},
		{OpVMXor, ClassLogical},
		{OpVMSeqVV, ClassComparison},
		{OpVMSltVV, ClassComparison},
		{OpVAddVV, ClassArithmetic},
		{OpVMulVV, ClassArithmetic},
		{OpVRedSum, ClassArithmetic},
		{OpVLoad, ClassOther},
		{OpVMFirst, ClassOther},
		{OpVSetDL, ClassOther},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestComputeModes(t *testing.T) {
	// Table 1: arithmetic and comparisons are bit-serial; logic is
	// bit-parallel.
	bitSerial := []Op{OpVAddVV, OpVSubVV, OpVMulVV, OpVMSeqVX, OpVMSeqVV, OpVMSltVV}
	for _, op := range bitSerial {
		if op.ComputeMode() != BitSerial {
			t.Errorf("%v should be bit-serial", op)
		}
	}
	bitParallel := []Op{OpVAndVV, OpVOrVV, OpVXorVV}
	for _, op := range bitParallel {
		if op.ComputeMode() != BitParallel {
			t.Errorf("%v should be bit-parallel", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for o := Op(0); int(o) < NumOps(); o++ {
		if s := o.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Errorf("op %d has no mnemonic", int(o))
		}
	}
	if Op(-1).String() == "" || Op(999).String() == "" {
		t.Error("out-of-range ops should still render")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", int(c))
		}
	}
	if BitSerial.String() != "bit-serial" || BitParallel.String() != "bit-parallel" {
		t.Error("mode strings wrong")
	}
}

// Property: every defined op has a class and a non-negative GP cost.
func TestQuickAllOpsCosted(t *testing.T) {
	for o := Op(0); int(o) < NumOps(); o++ {
		if c := o.Class(); c < 0 || c >= NumClasses {
			t.Errorf("%v has invalid class %v", o, c)
		}
		if s := Steps(o, 32); s < 0 {
			t.Errorf("Steps(%v, 32) = %d < 0", o, s)
		}
	}
}

// Property: bit-serial costs are monotonically non-decreasing in bitwidth.
func TestQuickCostsMonotonicInBitwidth(t *testing.T) {
	ops := []Op{OpVAddVV, OpVSubVV, OpVMulVV, OpVRedSum, OpVMSeqVX, OpVMSeqVV, OpVMSltVV}
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%32) + 1
		b := int(bRaw%32) + 1
		if a > b {
			a, b = b, a
		}
		for _, op := range ops {
			if Steps(op, a) > Steps(op, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ABA can only reduce multiply cost (narrower never costs more).
func TestQuickMulStepsMonotonic(t *testing.T) {
	f := func(a1, b1, a2, b2 uint8) bool {
		w1a, w1b := int(a1%32)+1, int(b1%32)+1
		w2a, w2b := w1a+int(a2%8), w1b+int(b2%8)
		return MulSteps(w1a, w1b) <= MulSteps(w2a, w2b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
