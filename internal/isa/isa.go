// Package isa defines the RISC-V-vector-style instruction vocabulary that
// Castle issues to the CAPE core, together with the associative cost model
// published in the paper (Table 1) that the CAPE VCU uses to sequence
// search/update microoperations.
//
// Castle does not assemble real RISC-V binaries; it drives the CAPE
// simulator with typed instruction records. Each opcode carries:
//
//   - a functional meaning (implemented in internal/cape), and
//   - a cycle cost in CSB steps, parameterised by the operating bitwidth n
//     (Table 1) and by the active data layout (GP vs CAM mode, §5.2).
//
// The Class taxonomy mirrors Figure 7's breakdown categories: search,
// vv logical, vv comparison, vv arithmetic, and others.
package isa

import "fmt"

// Op identifies a vector (or CAPE configuration) instruction.
type Op int

// The instruction vocabulary. Names follow the RISC-V vector extension where
// an equivalent exists (vadd.vv, vmseq.vx, ...); vsetdl, vrelayout and vmks
// are the paper's proposed extensions (§5.2, §5.3).
const (
	// Arithmetic (bit-serial).
	OpVAddVV  Op = iota // vadd.vv: element-wise addition
	OpVSubVV            // vsub.vv: element-wise subtraction
	OpVMulVV            // vmul.vv: element-wise multiplication
	OpVRedSum           // vredsum.vs: predicated reduction sum
	OpVRedMax           // vredmax.vs: predicated reduction maximum
	OpVRedMin           // vredmin.vs: predicated reduction minimum

	// Logic (bit-parallel).
	OpVAndVV // vand.vv
	OpVOrVV  // vor.vv
	OpVXorVV // vxor.vv
	OpVNotV  // vnot.v (vxor with all-ones)

	// Mask-register logical ops (operate on 1-bit mask operands).
	OpVMAnd // vmand.mm
	OpVMOr  // vmor.mm
	OpVMXor // vmxor.mm

	// Comparison.
	OpVMSeqVX // vmseq.vx: SEARCH — compare all elements against a scalar key
	OpVMSeqVV // vmseq.vv: element-wise vector-vector equality
	OpVMSltVV // vmslt.vv: element-wise vector-vector less-than (inequality)
	OpVMSltVX // vmslt.vx: vector-scalar less-than
	OpVMSleVX // vmsle.vx: vector-scalar less-or-equal
	OpVMSgtVX // vmsgt.vx: vector-scalar greater-than
	OpVMSgeVX // vmsge.vx: vector-scalar greater-or-equal

	// Data movement and element access.
	OpVLoad    // vle32.v: load a vector from main memory via the VMU
	OpVStore   // vse32.v: store a vector to main memory via the VMU
	OpVMvVX    // vmv.v.x: broadcast a scalar into a vector (bulk update)
	OpVMergeVX // vmerge.vxm: predicated broadcast (update masked elements)
	OpVExtract // single-element read from the CSB (e.g. GCol[idx])

	// Mask queries.
	OpVMFirst // vfirst.m: index of first set mask bit (priority encoder)
	OpVMPopc  // vcpop.m: population count of a mask

	// Configuration.
	OpVSetVL    // vsetvl: set the active vector length
	OpVSetDL    // vsetdl: switch data layout GP<->CAM (§5.2)
	OpVRelayout // vrelayout: carry a mask across a layout switch (§5.2)

	// Proposed join acceleration.
	OpVMKS // vmks: multi-key search (§5.3)

	numOps
)

var opNames = [...]string{
	OpVAddVV: "vadd.vv", OpVSubVV: "vsub.vv", OpVMulVV: "vmul.vv",
	OpVRedSum: "vredsum.vs", OpVRedMax: "vredmax.vs", OpVRedMin: "vredmin.vs",
	OpVAndVV: "vand.vv", OpVOrVV: "vor.vv", OpVXorVV: "vxor.vv", OpVNotV: "vnot.v",
	OpVMAnd: "vmand.mm", OpVMOr: "vmor.mm", OpVMXor: "vmxor.mm",
	OpVMSeqVX: "vmseq.vx", OpVMSeqVV: "vmseq.vv", OpVMSltVV: "vmslt.vv",
	OpVMSltVX: "vmslt.vx", OpVMSleVX: "vmsle.vx", OpVMSgtVX: "vmsgt.vx", OpVMSgeVX: "vmsge.vx",
	OpVLoad: "vle32.v", OpVStore: "vse32.v", OpVMvVX: "vmv.v.x", OpVMergeVX: "vmerge.vxm",
	OpVExtract: "vextract", OpVMFirst: "vfirst.m", OpVMPopc: "vcpop.m",
	OpVSetVL: "vsetvl", OpVSetDL: "vsetdl", OpVRelayout: "vrelayout",
	OpVMKS: "vmks",
}

// String returns the assembly-style mnemonic.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) || opNames[o] == "" {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// NumOps returns the number of defined opcodes.
func NumOps() int { return int(numOps) }

// Class groups opcodes into Figure 7's breakdown categories.
type Class int

// Figure 7 instruction classes.
const (
	ClassSearch     Class = iota // vector-scalar searches (vmseq.vx, vmks, vs compares)
	ClassLogical                 // vv logical (vand/vor/vxor and mask ops)
	ClassComparison              // vv comparison (vmseq.vv, vmslt.vv)
	ClassArithmetic              // vv arithmetic (add, sub, mul, reductions)
	ClassOther                   // loads, stores, broadcasts, config, mask queries
	NumClasses
)

var classNames = [...]string{
	ClassSearch:     "search",
	ClassLogical:    "vv logical",
	ClassComparison: "vv comparison",
	ClassArithmetic: "vv arithmetic",
	ClassOther:      "others",
}

// String returns the Figure 7 label for the class.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Class returns the breakdown category of the opcode.
func (o Op) Class() Class {
	switch o {
	case OpVMSeqVX, OpVMSltVX, OpVMSleVX, OpVMSgtVX, OpVMSgeVX, OpVMKS:
		return ClassSearch
	case OpVAndVV, OpVOrVV, OpVXorVV, OpVNotV, OpVMAnd, OpVMOr, OpVMXor:
		return ClassLogical
	case OpVMSeqVV, OpVMSltVV:
		return ClassComparison
	case OpVAddVV, OpVSubVV, OpVMulVV, OpVRedSum, OpVRedMax, OpVRedMin:
		return ClassArithmetic
	default:
		return ClassOther
	}
}

// Mode identifies which compute mode an operation runs in (Table 1).
type Mode int

// Compute modes.
const (
	BitSerial Mode = iota
	BitParallel
)

func (m Mode) String() string {
	if m == BitSerial {
		return "bit-serial"
	}
	return "bit-parallel"
}

// ComputeMode returns whether the opcode's associative algorithm is
// bit-serial or bit-parallel (Table 1).
func (o Op) ComputeMode() Mode {
	switch o {
	case OpVAndVV, OpVOrVV, OpVXorVV, OpVNotV, OpVMAnd, OpVMOr, OpVMXor,
		OpVMvVX, OpVMergeVX:
		return BitParallel
	default:
		return BitSerial
	}
}

// Table 1 cost model. All counts are CSB steps (cycles) for an operand
// bitwidth of n, executing in the default bitsliced (GP-mode) layout.

// AddSteps returns the cost of vv add/sub: 8n+2.
func AddSteps(n int) int64 { return 8*int64(n) + 2 }

// MulSteps returns the cost of vv multiplication for operand bitwidths a and
// b. For uniform width n (a == b == n) this is Table 1's 4n^2+4n. With mixed
// widths under ABA (§5.1) the serial partial-product loop runs over the
// narrower operand while each addition pass spans the wider one:
// 4*a*b + 4*max(a,b).
func MulSteps(a, b int) int64 {
	mx := a
	if b > mx {
		mx = b
	}
	return 4*int64(a)*int64(b) + 4*int64(mx)
}

// RedSumSteps returns the cost of a predicated reduction sum: ~n (hardware
// reduction tree, one pass per bit position).
func RedSumSteps(n int) int64 { return int64(n) }

// RedMinMaxSteps returns the cost of a predicated reduction min/max: a
// bit-serial candidate-narrowing scan from the most significant bit — one
// search per bit plus two steps to extract the survivor (n+2).
func RedMinMaxSteps(n int) int64 { return int64(n) + 2 }

// Logical op costs (bit-parallel, independent of n).
const (
	AndSteps = 3 // vv logical and
	OrSteps  = 3 // vv logical or
	XorSteps = 4 // vv logical xor
)

// SearchSteps returns the cost of a vector-scalar equality search in the
// bitsliced GP layout: n+1 (bit-serial tag accumulation across subarrays).
func SearchSteps(n int) int64 { return int64(n) + 1 }

// SearchStepsCAM is the cost of a search in CAM mode (§5.2): one cycle to
// search the contiguous value subarray, one to copy the tags to the chain
// register, one to transfer into the mask subarray.
const SearchStepsCAM = 3

// EqVVSteps returns the cost of vv equality: n+4.
func EqVVSteps(n int) int64 { return int64(n) + 4 }

// IneqVVSteps returns the cost of vv inequality (less-than etc.): 3n+6.
func IneqVVSteps(n int) int64 { return 3*int64(n) + 6 }

// IneqVXSteps returns the cost of a vector-scalar inequality. A vs ordering
// comparison is performed as a bit-serial magnitude scan like its vv
// counterpart but with one operand held in the key register; we model it at
// the same 3n+6 step count.
func IneqVXSteps(n int) int64 { return 3*int64(n) + 6 }

// Fixed costs for the remaining operations.
const (
	MFirstSteps    = 2 // priority-encoder tree lookup
	PopcSteps      = 2 // population-count tree
	BroadcastSteps = 2 // bulk update of all elements with one value
	MergeSteps     = 2 // predicated bulk update
	ExtractSteps   = 4 // single-element read from a subarray
	SetVLSteps     = 1 // CSR write
	SetDLSteps     = 1 // layout-mode CSR write (§5.2)
	RelayoutSteps  = 2 // mask relayout across modes (§5.2)
	MaskOpSteps    = 1 // vmand/vmor/vmxor on 1-bit mask operands
)

// VMKSSteps returns the CSB-side cost of a multi-key search once its keys
// are resident in the VMU buffer: numkeys distribution+search cycles plus
// two cycles to move the combined mask to the destination vector (§5.3).
// The leading memory latency M is charged by the VMU.
func VMKSSteps(numkeys int) int64 { return int64(numkeys) + 2 }

// Steps returns the GP-mode CSB step count for op at bitwidth n. Mixed-width
// and key-count-dependent opcodes (vmul with ABA, vmks) have dedicated
// helpers; Steps uses uniform width for them.
func Steps(o Op, n int) int64 {
	switch o {
	case OpVAddVV, OpVSubVV:
		return AddSteps(n)
	case OpVMulVV:
		return MulSteps(n, n)
	case OpVRedSum:
		return RedSumSteps(n)
	case OpVRedMax, OpVRedMin:
		return RedMinMaxSteps(n)
	case OpVAndVV, OpVOrVV:
		return AndSteps
	case OpVXorVV, OpVNotV:
		return XorSteps
	case OpVMAnd, OpVMOr, OpVMXor:
		return MaskOpSteps
	case OpVMSeqVX:
		return SearchSteps(n)
	case OpVMSeqVV:
		return EqVVSteps(n)
	case OpVMSltVV:
		return IneqVVSteps(n)
	case OpVMSltVX, OpVMSleVX, OpVMSgtVX, OpVMSgeVX:
		return IneqVXSteps(n)
	case OpVMFirst:
		return MFirstSteps
	case OpVMPopc:
		return PopcSteps
	case OpVMvVX:
		return BroadcastSteps
	case OpVMergeVX:
		return MergeSteps
	case OpVExtract:
		return ExtractSteps
	case OpVSetVL:
		return SetVLSteps
	case OpVSetDL:
		return SetDLSteps
	case OpVRelayout:
		return RelayoutSteps
	case OpVMKS:
		return VMKSSteps(1)
	case OpVLoad, OpVStore:
		return 0 // memory-bound; the VMU charges the transfer
	default:
		panic(fmt.Sprintf("isa: no cost model for %v", o))
	}
}
