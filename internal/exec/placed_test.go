package exec

// placed_test.go pins the tentpole correctness contract: per-operator
// placements — uniform, auto-chosen, and every forced mixed split — must
// return results bit-identical to the scalar reference on all thirteen SSB
// queries at every fan-out degree, and a mixed run's operator rows must
// partition the combined two-device cycle total exactly.

import (
	"fmt"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

func newPlacedHarness(cat *stats.Catalog) *Placed {
	castle := NewCastle(cape.New(smallCape()), cat, DefaultCastleOptions())
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig()))
	return NewPlaced(castle, cpu, cat)
}

// forcedPlacements enumerates the mixed splits the executor supports for a
// plan: both fact/agg directions, with the dimensions all on the fact's
// device and all on the opposite device.
func forcedPlacements(p *plan.Physical) []*plan.PlacedPlan {
	var out []*plan.PlacedPlan
	for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		aggDev := plan.DeviceCPU
		if factDev == plan.DeviceCPU {
			aggDev = plan.DeviceCAPE
		}
		for _, dimOpposite := range []bool{false, true} {
			dimDev := make(map[string]plan.Device, len(p.Joins))
			for _, e := range p.Joins {
				if dimOpposite {
					dimDev[e.Dim] = aggDev
				} else {
					dimDev[e.Dim] = factDev
				}
			}
			out = append(out, plan.Compile(p, factDev).Place(factDev, aggDev, dimDev))
		}
	}
	return out
}

func checkPlacedBooks(t *testing.T, x *Placed, label string) {
	t.Helper()
	bd := x.Breakdown()
	if bd == nil {
		t.Fatalf("%s: no breakdown published", label)
	}
	capeCy, cpuCy := x.DeviceCycles()
	if got := capeCy + cpuCy; bd.TotalCycles != got {
		t.Errorf("%s: breakdown total %d, device deltas sum to %d", label, bd.TotalCycles, got)
	}
	if sum := bd.SumCycles(); sum != bd.TotalCycles {
		t.Errorf("%s: operator rows sum to %d cycles, total is %d", label, sum, bd.TotalCycles)
	}
	if bd.Device != "CAPE+CPU" {
		t.Errorf("%s: breakdown device = %q, want CAPE+CPU", label, bd.Device)
	}
	for _, op := range bd.Operators {
		if op.Device == "" {
			t.Errorf("%s: operator %s has no device", label, op.Operator)
		}
	}
}

// TestPlacedForcedMixedMatchesReference forces every supported mixed split
// of every SSB query through the placed executor at K in {1,2,4} and
// demands bit-identical results plus exactly-partitioned books.
func TestPlacedForcedMixedMatchesReference(t *testing.T) {
	database, cat := db(t)
	for _, qq := range ssb.Queries() {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		want := Reference(q, database)
		for pi, pp := range forcedPlacements(p) {
			if !pp.Mixed() {
				t.Fatalf("%s: forced placement %d is uniform", qq.Flight, pi)
			}
			for _, k := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s placement=%d fact=%s k=%d", qq.Flight, pi, pp.FactDevice(), k)
				x := newPlacedHarness(cat)
				x.SetParallelism(k)
				res, err := x.Run(pp, database)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !want.Equal(res) {
					t.Errorf("%s: diverged from reference\nwant:\n%s\ngot:\n%s",
						label, want.Format(database), res.Format(database))
					continue
				}
				checkPlacedBooks(t, x, label)
			}
		}
	}
}

// TestPlacedAutoMatchesReference runs every SSB query under the optimizer's
// chosen placement (which mixes devices for the grouping-heavy flights at
// this scale) and checks results against the reference.
func TestPlacedAutoMatchesReference(t *testing.T) {
	database, cat := db(t)
	mixed := 0
	for _, qq := range ssb.Queries() {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		pp := optimizer.PlacePlan(p, cat, smallCape().MAXVL)
		want := Reference(q, database)
		if pp.Mixed() {
			mixed++
		}
		for _, k := range []int{1, 2, 4} {
			x := newPlacedHarness(cat)
			x.SetParallelism(k)
			res, err := x.Run(pp, database)
			if err != nil {
				t.Fatalf("%s k=%d: %v", qq.Flight, k, err)
			}
			if !want.Equal(res) {
				t.Errorf("%s k=%d (%s): diverged from reference", qq.Flight, k, pp.String())
			}
		}
	}
	if mixed == 0 {
		t.Error("optimizer chose no mixed placement on any SSB query at this scale")
	}
}

// TestPlacedUniformDelegates checks that uniform placements through the
// placed executor reproduce the single-device executors bit for bit and
// republish their breakdowns.
func TestPlacedUniformDelegates(t *testing.T) {
	database, cat := db(t)
	for _, qq := range ssb.Queries()[:4] {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		want := Reference(q, database)
		for _, dev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
			pp := plan.Compile(p, dev)
			x := newPlacedHarness(cat)
			x.SetParallelism(2)
			res, err := x.Run(pp, database)
			if err != nil {
				t.Fatalf("%s %s: %v", qq.Flight, dev, err)
			}
			if !want.Equal(res) {
				t.Errorf("%s uniform %s diverged from reference", qq.Flight, dev)
			}
			if bd := x.Breakdown(); bd == nil || bd.SumCycles() != bd.TotalCycles {
				t.Errorf("%s uniform %s: breakdown missing or unbalanced", qq.Flight, dev)
			}
			capeCy, cpuCy := x.DeviceCycles()
			if dev == plan.DeviceCAPE && cpuCy != 0 {
				t.Errorf("%s uniform CAPE touched the CPU for %d cycles", qq.Flight, cpuCy)
			}
			if dev == plan.DeviceCPU && capeCy != 0 {
				t.Errorf("%s uniform CPU touched CAPE for %d cycles", qq.Flight, capeCy)
			}
		}
	}
}

var _ = storage.Database{} // keep import balanced with helper signatures
