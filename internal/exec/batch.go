package exec

// batch.go is the streaming execution layer: the pipeline's unit of work
// (Batch), the pull contract operators produce batches through
// (BatchSource), and the double-buffered transfer channel that accounts a
// CAPE<->CPU crossing when execution streams instead of materializing.
//
// The cycle model is classic double buffering. The producer emits batch i
// with compute cycles C_i, then exports it with transfer cycles T_i into
// one of two buffers while the consumer drains the other. Batch 1's compute
// is the fill edge and batch n's transfer is the drain edge — neither can
// hide — but every interior transfer overlaps the next batch's compute:
//
//	elapsed = C_1 + sum_{i=1..n-1} max(T_i, C_{i+1}) + T_n
//
// Both engines still charge every cycle of work (the books are work
// accounting), so the breakdown reports the hidden portion as an explicit
// negative "xfer-overlap" credit row:
//
//	credit = sum_{i=1..n-1} min(T_i, C_{i+1})
//
// which is zero for 0 or 1 batches (pure fill + drain) and min(T_1, C_2)
// for two. The rows still partition the streamed TotalCycles exactly.

import (
	"context"

	"castle/internal/plan"
)

// Batch is one MAXVL-sized unit of survivor tuples flowing through a
// streaming pipeline: absolute fact-row indices in ascending order plus the
// dimension-attribute values the aggregation tail needs (keyed "dim.attr",
// aligned with Rows). The materializing path uses the same shape as its
// per-lane shipment; streaming discards each batch after consumption, which
// is what bounds peak memory at O(K·MAXVL).
type Batch struct {
	// Base is the first fact row of the partition this batch was produced
	// from (survivor rows are >= Base).
	Base  int
	Rows  []int
	Attrs map[string][]uint32
}

// NewBatch returns an empty batch carrying the given attribute keys.
func NewBatch(base int, attrKeys []string) *Batch {
	b := &Batch{Base: base, Attrs: make(map[string][]uint32, len(attrKeys))}
	for _, k := range attrKeys {
		b.Attrs[k] = nil
	}
	return b
}

// Len returns the number of survivor tuples in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// ShipBytes is the batch's wire size across a device crossing: one 4-byte
// field per shipped tuple column (row identifier plus carried attributes).
func (b *Batch) ShipBytes(shipCols int) int64 {
	return int64(4 * len(b.Rows) * shipCols)
}

// BatchSource is the pull half of the streaming pipeline: each Next call
// runs the producer far enough to emit one batch. A nil batch with a nil
// error means the stream is drained. Next checks ctx before producing, so
// cancellation lands between batches, not just between operators.
type BatchSource interface {
	Next(ctx context.Context) (*Batch, error)
}

// ShipTupleFields returns the width of one shipped survivor tuple in 4-byte
// fields for a query (the row identifier plus every non-fact group-by
// attribute) — the factor behind the O(K·MAXVL) peak-memory bound.
func ShipTupleFields(q *plan.Query) int {
	_, cols := shipTailCols(q)
	return cols
}

// xferChannel is the double-buffered transfer channel accountant for one
// producer lane. record is called once per batch with the batch's compute
// cycles, its transfer cycles, and its resident bytes; the channel folds the
// overlap credit incrementally: batch i-1's transfer hides under batch i's
// compute, so each call credits min(prevXfer, compute).
type xferChannel struct {
	batches    int64
	credit     int64
	xferCycles int64

	prevXfer  int64
	prevBytes int64
	peakBytes int64
}

// record accounts one produced batch. compute and xfer are the lane's cycle
// deltas for producing and exporting the batch; bytes is the batch's wire
// size. Peak residency is the double-buffer high-water mark: the previous
// batch (being drained) plus this one (being filled).
func (ch *xferChannel) record(compute, xfer, bytes int64) {
	if ch.batches > 0 {
		hidden := ch.prevXfer
		if compute < hidden {
			hidden = compute
		}
		ch.credit += hidden
	}
	if resident := ch.prevBytes + bytes; resident > ch.peakBytes {
		ch.peakBytes = resident
	}
	ch.prevXfer = xfer
	ch.prevBytes = bytes
	ch.xferCycles += xfer
	ch.batches++
}

// StreamStats summarizes one streaming run: batches produced across all
// lanes, transfer cycles hidden under compute (the xfer-overlap credit), and
// the peak resident batch bytes (summed across lanes — each lane holds at
// most two buffers).
type StreamStats struct {
	Batches        int64
	OverlapCycles  int64
	PeakBatchBytes int64
}

// overlapElapsedCredit converts per-lane work cycles and per-lane overlap
// credits into the run-level elapsed credit for a fan-out: the engines
// already advanced by the critical lane's full work, but with overlap each
// lane's effective elapsed is cy_t - credit_t, so the run saves the
// difference between the two critical paths. Never negative.
func overlapElapsedCredit(laneCycles, laneCredits []int64) int64 {
	var maxWork, maxEffective int64
	for t := range laneCycles {
		if laneCycles[t] > maxWork {
			maxWork = laneCycles[t]
		}
		if eff := laneCycles[t] - laneCredits[t]; eff > maxEffective {
			maxEffective = eff
		}
	}
	if c := maxWork - maxEffective; c > 0 {
		return c
	}
	return 0
}
