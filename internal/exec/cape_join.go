package exec

// cape_join.go holds the CAPE JoinProbe kernels: the right-deep direction
// (filtered dimension keys probe the resident fact partition, Algorithm 1
// with the probe side swapped) and the left-deep direction (surviving fact
// rows probe CSB-resident dimension partitions).

import (
	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/storage"
)

// mksThreshold returns the minimum batch size worth a vmks.
func (s *tileSweep) mksThreshold() int {
	if s.opts.MKSMinKeys > 0 {
		return s.opts.MKSMinKeys
	}
	// One cacheline of keys: smaller fetches waste bandwidth (§6.2).
	return s.eng.Config().Mem.LineBytes / 4
}

// probeFactWithDim probes the resident fact FK column with every qualifying
// key of a filtered dimension, returning the semi-join mask and
// materializing needed attributes via bulk updates.
func (s *tileSweep) probeFactWithDim(fkReg cape.VReg, d dimSide, regs *regAlloc, attrRegs map[string]cape.VReg) *bitvec.Vector {
	eng := s.eng
	useMKS := eng.Config().EnableMKS

	// Attribute target vectors, zero-initialised per partition.
	targets := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i, a := range d.edge.NeedAttrs {
		key := d.edge.Dim + "." + a
		r, ok := attrRegs[key]
		if !ok {
			r = regs.fresh()
			attrRegs[key] = r
		}
		eng.Broadcast(r, 0)
		targets[i] = r
	}

	searchKeys := func(keys []uint32) *bitvec.Vector {
		if useMKS && len(keys) >= s.mksThreshold() {
			eng.Scalar(4)
			return eng.MultiKeySearch(fkReg, keys)
		}
		eng.Scalar(int64(3 * len(keys))) // key load + loop control per vmseq.vx
		return eng.SearchBatch(fkReg, keys)
	}

	if len(d.edge.NeedAttrs) == 0 {
		return searchKeys(d.keys)
	}
	// Group-aware probing: all keys sharing an attribute tuple probe as
	// one batch, then a single predicated bulk update per attribute
	// materializes the tuple into the fact-aligned vectors.
	var join *bitvec.Vector
	for _, g := range d.groups {
		m := searchKeys(g.keys)
		for i, r := range targets {
			eng.Merge(r, m, g.attrVals[i])
		}
		if join == nil {
			join = m
		} else {
			join = eng.MaskOr(join, m)
		}
	}
	if join == nil {
		return eng.MaskInit(false)
	}
	return join
}

// probeDimWithRows implements the left-deep direction: each surviving fact
// row's foreign key probes CSB-resident partitions of the filtered
// dimension; rows without a match are cleared from the row mask, and needed
// attributes are fetched via vfirst+extract.
func (s *tileSweep) probeDimWithRows(fact *storage.Table, d dimSide, base, factVL int,
	rowMask *bitvec.Vector, regs *regAlloc, attrRegs map[string]cape.VReg) *bitvec.Vector {

	eng := s.eng
	maxvl := eng.Config().MAXVL
	fkData := fact.MustColumn(d.edge.FactFK).Data

	// Compact the surviving rows to a CP-side values array (Figure 4).
	survivors := rowMask.Indices()
	eng.Scalar(int64(2 * len(survivors))) // compaction bookkeeping
	eng.ChargeStreamWrite(int64(4 * len(survivors)))

	keyReg := regs.fresh()
	attrSrc := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i := range d.edge.NeedAttrs {
		attrSrc[i] = regs.fresh()
	}
	targets := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i, a := range d.edge.NeedAttrs {
		key := d.edge.Dim + "." + a
		r, ok := attrRegs[key]
		if !ok {
			r = regs.fresh()
			attrRegs[key] = r
			eng.SetVL(factVL)
			eng.Broadcast(r, 0)
		}
		targets[i] = r
	}

	matched := bitvec.New(factVL)
	rowAttr := make(map[int][]uint32, len(survivors))

	for off := 0; off < len(d.keys) || off == 0; off += maxvl {
		dvl := len(d.keys) - off
		if dvl > maxvl {
			dvl = maxvl
		}
		if dvl <= 0 {
			break
		}
		eng.SetVL(dvl)
		eng.Load(keyReg, d.keys[off:off+dvl], 0)
		for i := range attrSrc {
			eng.Load(attrSrc[i], d.attrs[i][off:off+dvl], 0)
		}
		for _, row := range survivors {
			fk := fkData[base+row]
			eng.Scalar(3)
			idx := eng.SearchFirst(keyReg, fk)
			if idx == -1 {
				continue
			}
			matched.Set(row)
			if len(attrSrc) > 0 {
				vals := make([]uint32, len(attrSrc))
				for i, r := range attrSrc {
					vals[i] = eng.Extract(r, idx)
				}
				rowAttr[row] = vals
			}
		}
	}

	eng.SetVL(factVL)
	newMask := rowMask.Clone().And(matched)
	eng.Scalar(2)

	// Materialize fetched attributes into the fact-aligned vectors with
	// single-row bulk updates.
	for row, vals := range rowAttr {
		if !newMask.Get(row) {
			continue
		}
		single := bitvec.New(factVL)
		single.Set(row)
		for i, r := range targets {
			eng.Merge(r, single, vals[i])
		}
	}
	return newMask
}
