package exec

// cape_filter.go is the CAPE Filter kernel: predicate evaluation over a
// CSB-resident column (Figure 4's selection masks).

import (
	"fmt"

	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/plan"
)

// predMask evaluates one predicate on a loaded column.
func predMask(eng *cape.Engine, r cape.VReg, pr plan.Predicate) *bitvec.Vector {
	if pr.Never {
		return eng.MaskInit(false)
	}
	switch pr.Op {
	case plan.PredEQ:
		return eng.Search(r, pr.Value)
	case plan.PredNE:
		return eng.MaskNot(eng.Search(r, pr.Value))
	case plan.PredLT:
		return eng.Compare(cape.CmpLT, r, pr.Value)
	case plan.PredLE:
		return eng.Compare(cape.CmpLE, r, pr.Value)
	case plan.PredGT:
		return eng.Compare(cape.CmpGT, r, pr.Value)
	case plan.PredGE:
		return eng.Compare(cape.CmpGE, r, pr.Value)
	case plan.PredBetween:
		lo := eng.Compare(cape.CmpGE, r, pr.Lo)
		hi := eng.Compare(cape.CmpLE, r, pr.Hi)
		return eng.MaskAnd(lo, hi)
	case plan.PredIn:
		// A disjunction of searches (Figure 4's m1 OR m2).
		var m *bitvec.Vector
		for _, v := range pr.Values {
			sm := eng.Search(r, v)
			if m == nil {
				m = sm
			} else {
				m = eng.MaskOr(m, sm)
			}
		}
		if m == nil {
			return eng.MaskInit(false)
		}
		return m
	}
	panic(fmt.Sprintf("exec: unhandled predicate %v", pr))
}
