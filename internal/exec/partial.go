package exec

// partial.go exports the deterministic partial-aggregate accumulator to
// callers outside exec. The morsel-parallel sweeps merge per-tile partials
// through groupAcc; the scatter-gather coordinator needs the exact same
// merge semantics for per-shard partials, so it gets the same accumulator
// behind a thin exported face rather than a reimplementation that could
// drift.

import "castle/internal/plan"

// PartialAcc accumulates per-group partial aggregates across shards (or any
// other disjoint partitioning of the fact table) and finalizes them with
// the single-node semantics: sums/counts/AVG numerators add, MIN/MAX take
// the extremum, AVG divides by the merged row count with integer floor, and
// COUNT(DISTINCT) counts the union of the per-partition value sets. Merging
// is associative and commutative and Result normalizes row order, so the
// final relation is bit-identical to a single-node run regardless of how
// rows were partitioned — callers should still feed partials in a fixed
// partition order so internal insertion order is deterministic too.
type PartialAcc struct {
	q   *plan.Query
	acc *groupAcc
}

// NewPartialAcc returns an accumulator finalizing with q's aggregate kinds,
// ORDER BY and LIMIT. Grand aggregates (no GROUP BY) have their zero row
// materialized immediately, matching single-node semantics even when no
// partition contributes any rows (for example when every shard was pruned).
func NewPartialAcc(q *plan.Query) *PartialAcc {
	p := &PartialAcc{q: q, acc: newGroupAcc(q.Aggs)}
	if len(q.GroupBy) == 0 {
		p.acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	return p
}

// Add merges one partial row: vals[i] is the partial of q.Aggs[i] over rows
// source rows. Calls with rows == 0 only materialize the group.
func (p *PartialAcc) Add(keys []uint32, vals []int64, rows int64) {
	p.acc.add(keys, vals, rows)
}

// AddDistinct merges raw values into a COUNT(DISTINCT) slot's union set for
// a group key.
func (p *PartialAcc) AddDistinct(keys []uint32, slot int, values []uint32) {
	p.acc.addDistinct(keys, slot, values)
}

// Groups returns the number of distinct group keys accumulated so far.
func (p *PartialAcc) Groups() int { return len(p.acc.order) }

// Result finalizes the accumulated groups: AVG division, distinct counts,
// normalization, ORDER BY and LIMIT.
func (p *PartialAcc) Result() *Result { return p.acc.result(p.q) }
