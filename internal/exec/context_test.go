package exec

// context_test.go verifies cancellation semantics: a context canceled while
// the simulated engines are mid-query surfaces context.Canceled at the next
// operator boundary, and the executors stay usable afterwards.

import (
	"context"
	"errors"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/isa"
)

const ctxTestQuery = `SELECT SUM(lo_revenue), d_year, p_brand1
FROM lineorder, date, part, supplier
WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA'
GROUP BY d_year, p_brand1`

// cancelHook cancels a context after the first cycle charge, simulating a
// client that goes away while the engine is busy.
type cancelHook struct {
	cancel context.CancelFunc
}

func (h *cancelHook) CSBCycles(isa.Class, int64) { h.cancel() }
func (h *cancelHook) CPCycles(int64)             { h.cancel() }
func (h *cancelHook) MemCycles(int64)            { h.cancel() }

func TestCastleRunContextCanceledMidQuery(t *testing.T) {
	database, cat := db(t)
	p := optimize(t, bindQuery(t, database, ctxTestQuery), cat, 4096)

	eng := cape.New(smallCape().WithEnhancements())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.AttachCycleHook(&cancelHook{cancel: cancel})

	c := NewCastle(eng, cat, DefaultCastleOptions())
	res, err := c.RunContext(ctx, p, database)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%v err=%v", res, err)
	}

	// A fresh engine and live context must still produce the query result:
	// cancellation leaves no shared state behind.
	eng2 := cape.New(smallCape().WithEnhancements())
	c2 := NewCastle(eng2, cat, DefaultCastleOptions())
	res2, err := c2.RunContext(context.Background(), p, database)
	if err != nil || len(res2.Rows) == 0 {
		t.Fatalf("post-cancel rerun: rows=%v err=%v", res2, err)
	}
}

func TestCPURunContextCanceledMidQuery(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ctxTestQuery)

	cpu := baseline.New(baseline.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cpu.AttachCycleHook(func(float64) { cancel() })

	x := NewCPUExec(cpu)
	res, err := x.RunContext(ctx, q, database)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%v err=%v", res, err)
	}

	x2 := NewCPUExec(baseline.New(baseline.DefaultConfig()))
	res2, err := x2.RunContext(context.Background(), q, database)
	if err != nil || len(res2.Rows) == 0 {
		t.Fatalf("post-cancel rerun: rows=%v err=%v", res2, err)
	}
	_ = cat
}

func TestRunContextPreCanceled(t *testing.T) {
	database, cat := db(t)
	p := optimize(t, bindQuery(t, database, ctxTestQuery), cat, 4096)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	c := NewCastle(cape.New(smallCape()), cat, DefaultCastleOptions())
	if _, err := c.RunContext(ctx, p, database); !errors.Is(err, context.Canceled) {
		t.Fatalf("castle: want context.Canceled, got %v", err)
	}
	x := NewCPUExec(baseline.New(baseline.DefaultConfig()))
	if _, err := x.RunContext(ctx, p.Query, database); !errors.Is(err, context.Canceled) {
		t.Fatalf("cpu: want context.Canceled, got %v", err)
	}
	h := NewDefaultHybrid(smallCape(), cat)
	if _, _, err := h.RunContext(ctx, p, database); !errors.Is(err, context.Canceled) {
		t.Fatalf("hybrid: want context.Canceled, got %v", err)
	}
}

func TestDecideDeviceThresholds(t *testing.T) {
	database, cat := db(t)
	// Group by d_year only (~7 groups): CAPE territory at the defaults.
	small := optimize(t, bindQuery(t, database, `SELECT SUM(lo_revenue), d_year
FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year`), cat, 4096)
	if dev := DecideDevice(small, cat, 0, 0); dev != DeviceCAPE {
		t.Fatalf("default thresholds: want CAPE, got %v", dev)
	}
	if dev := DecideDevice(small, cat, 1, 0); dev != DeviceCPU {
		t.Fatalf("groupThreshold=1: want CPU, got %v", dev)
	}
	if dev := DecideDevice(small, cat, 0, 1); dev != DeviceCPU {
		t.Fatalf("dimThreshold=1: want CPU, got %v", dev)
	}
	// Q2.1 estimates ~7000 groups (7 years x ~1000 brands), past the
	// Figure 12 crossover: hybrid routing sends it to the CPU.
	big := optimize(t, bindQuery(t, database, ctxTestQuery), cat, 4096)
	if dev := DecideDevice(big, cat, 0, 0); dev != DeviceCPU {
		t.Fatalf("large-group query: want CPU, got %v", dev)
	}
}
