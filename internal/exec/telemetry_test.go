package exec

import (
	"strings"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/isa"
	"castle/internal/ssb"
	"castle/internal/telemetry"
)

// ssbQ4SQL is a 3-join, grouped SSB query (Q2.1) — the fixed query the
// telemetry acceptance checks run against.
func ssbQ4SQL(t *testing.T) string {
	t.Helper()
	for _, q := range ssb.Queries() {
		if q.Num == 4 {
			return q.SQL
		}
	}
	t.Fatal("SSB query 4 missing")
	return ""
}

// TestEngineHookMatchesStatsExactly is the metrics-exactness gate: after a
// full SSB query the Prometheus class-cycle counters must equal the
// engine's own Stats pools cycle-for-cycle, because both are fed by the
// same centralized charge paths.
func TestEngineHookMatchesStatsExactly(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ssbQ4SQL(t))
	cfg := smallCape().WithEnhancements()
	p := optimize(t, q, cat, cfg.MAXVL)

	tel := telemetry.New()
	eng := cape.New(cfg)
	AttachEngineTelemetry(eng, tel)
	c := NewCastle(eng, cat, DefaultCastleOptions())
	root := tel.StartSpan("query")
	c.SetTelemetry(tel, root)
	c.Run(p, database)
	root.End()

	st := eng.Stats()
	reg := tel.Metrics()
	var hookCSB int64
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		got := reg.CounterValue(telemetry.MetricCSBCycles, telemetry.L("class", cl.String()))
		if got != st.CSBCyclesByClass[cl] {
			t.Errorf("class %v: counter %d != stats %d", cl, got, st.CSBCyclesByClass[cl])
		}
		hookCSB += got
	}
	if hookCSB != st.CSBCycles {
		t.Errorf("summed class counters %d != CSBCycles %d", hookCSB, st.CSBCycles)
	}
	if got := reg.CounterValue(telemetry.MetricCPCycles); got != st.CPCycles {
		t.Errorf("CP counter %d != stats %d", got, st.CPCycles)
	}
	if got := reg.CounterValue(telemetry.MetricMemCycles); got != st.MemCycles {
		t.Errorf("mem counter %d != stats %d", got, st.MemCycles)
	}

	// The breakdown's books must close: operator rows partition the total.
	b := c.Breakdown()
	if b == nil || b.Device != "CAPE" {
		t.Fatalf("breakdown missing: %+v", b)
	}
	if b.TotalCycles != st.TotalCycles() {
		t.Errorf("breakdown total %d != stats total %d", b.TotalCycles, st.TotalCycles())
	}
	if b.SumCycles() != b.TotalCycles {
		t.Errorf("operator cycles sum %d != total %d\n%s", b.SumCycles(), b.TotalCycles, b.Format())
	}

	// Per-join cycles must agree with the join operator rows, and the
	// accessor must hand out a defensive copy.
	pj := c.PerJoinCycles()
	for _, o := range b.Operators {
		if dim, ok := strings.CutPrefix(o.Operator, "join:"); ok {
			if pj[dim] != o.Cycles {
				t.Errorf("join %s: per-join %d != breakdown %d", dim, pj[dim], o.Cycles)
			}
		}
	}
	pj["date"] = -1
	if c.PerJoinCycles()["date"] == -1 {
		t.Error("PerJoinCycles aliases internal state")
	}
}

// TestCastleSpanTree pins the shape of the executor's span tree for a fixed
// SSB query: prep spans per dimension, a fact-sweep with per-partition
// filter/join/aggregate children, all rooted under the caller's span.
func TestCastleSpanTree(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ssbQ4SQL(t))
	cfg := smallCape().WithEnhancements()
	p := optimize(t, q, cat, cfg.MAXVL)

	tel := telemetry.New()
	eng := cape.New(cfg)
	c := NewCastle(eng, cat, DefaultCastleOptions())
	root := tel.StartSpan("query")
	c.SetTelemetry(tel, root)
	c.Run(p, database)
	root.End()

	spans := tel.Trace().Spans()
	byName := map[string][]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	rootRec := byName["query"][0]
	for _, e := range p.Joins {
		prep, ok := byName["prep:"+e.Dim]
		if !ok || prep[0].Parent != rootRec.ID {
			t.Fatalf("prep span for %s missing or misparented", e.Dim)
		}
		if _, ok := prep[0].Int("cycles"); !ok {
			t.Errorf("prep:%s missing cycles attr", e.Dim)
		}
		joins := byName["join:"+e.Dim]
		if len(joins) == 0 {
			t.Fatalf("no join spans for %s", e.Dim)
		}
		if joins[0].Root != rootRec.ID {
			t.Errorf("join:%s not in the query tree", e.Dim)
		}
	}
	sweeps := byName["fact-sweep"]
	if len(sweeps) != 1 || sweeps[0].Parent != rootRec.ID {
		t.Fatalf("fact-sweep span wrong: %+v", sweeps)
	}
	// Multiple partitions at MAXVL=4096 ⇒ one filter/aggregate span each.
	parts, _ := sweeps[0].Int("partitions")
	if parts < 2 {
		t.Fatalf("expected multiple partitions, got %d", parts)
	}
	if int64(len(byName["filter"])) != parts || int64(len(byName["aggregate"])) != parts {
		t.Fatalf("filter=%d aggregate=%d spans, want %d each",
			len(byName["filter"]), len(byName["aggregate"]), parts)
	}
	for _, f := range byName["filter"] {
		if f.Parent != sweeps[0].ID {
			t.Fatal("filter span misparented")
		}
	}
}

// TestCPUTelemetry checks the baseline executor's mirror instrumentation:
// the cycle counter tracks cpu.Cycles() (whole-cycle accumulation of the
// fractional charges) and the breakdown reconciles.
func TestCPUTelemetry(t *testing.T) {
	database, _ := db(t)
	q := bindQuery(t, database, ssbQ4SQL(t))

	tel := telemetry.New()
	cpu := baseline.New(baseline.DefaultConfig())
	AttachCPUTelemetry(cpu, tel)
	x := NewCPUExec(cpu)
	root := tel.StartSpan("query")
	x.SetTelemetry(tel, root)
	x.Run(q, database)
	root.End()

	got := tel.Metrics().CounterValue(telemetry.MetricCPUCycles)
	if diff := cpu.Cycles() - got; diff < 0 || diff > 1 {
		t.Errorf("cpu counter %d vs cycles %d (diff %d)", got, cpu.Cycles(), diff)
	}

	b := x.Breakdown()
	if b == nil || b.Device != "CPU" {
		t.Fatalf("breakdown missing: %+v", b)
	}
	if b.SumCycles() != b.TotalCycles || b.TotalCycles != cpu.Cycles() {
		t.Errorf("sum=%d total=%d cycles=%d\n%s", b.SumCycles(), b.TotalCycles, cpu.Cycles(), b.Format())
	}

	// Span-for-span comparison with CAPE: same operator vocabulary.
	names := map[string]bool{}
	for _, s := range tel.Trace().Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"filter", "aggregate"} {
		if !names[want] {
			t.Errorf("missing %s span", want)
		}
	}
	for _, e := range q.Joins {
		if !names["prep:"+e.Dim] || !names["join:"+e.Dim] {
			t.Errorf("missing prep/join spans for %s", e.Dim)
		}
	}

	pj := x.PerJoinCycles()
	pj["date"] = -1
	if x.PerJoinCycles()["date"] == -1 {
		t.Error("PerJoinCycles aliases internal state")
	}
}

// TestTelemetryDisabledIsInert: with no telemetry attached the executors
// still produce correct results and a breakdown, and nothing panics.
func TestTelemetryDisabledIsInert(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ssbQ4SQL(t))
	cfg := smallCape().WithEnhancements()
	p := optimize(t, q, cat, cfg.MAXVL)

	eng := cape.New(cfg)
	AttachEngineTelemetry(eng, nil) // explicit detach path
	c := NewCastle(eng, cat, DefaultCastleOptions())
	c.SetTelemetry(nil, nil)
	res := c.Run(p, database)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if b := c.Breakdown(); b == nil || b.SumCycles() != b.TotalCycles {
		t.Fatalf("breakdown should reconcile without telemetry: %+v", b)
	}

	cpu := baseline.New(baseline.DefaultConfig())
	AttachCPUTelemetry(cpu, nil)
	x := NewCPUExec(cpu)
	res = x.Run(q, database)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if b := x.Breakdown(); b == nil || b.SumCycles() != b.TotalCycles {
		t.Fatalf("cpu breakdown should reconcile without telemetry: %+v", b)
	}
}

// TestHybridTelemetryForwards: the hybrid wrapper forwards the sink to both
// executors so whichever engine runs emits the same span vocabulary.
func TestHybridTelemetryForwards(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ssbQ4SQL(t))
	cfg := smallCape().WithEnhancements()
	p := optimize(t, q, cat, cfg.MAXVL)

	tel := telemetry.New()
	h := NewDefaultHybrid(cfg, cat)
	AttachEngineTelemetry(h.Castle().Engine(), tel)
	AttachCPUTelemetry(h.CPUExec().CPU(), tel)
	root := tel.StartSpan("query")
	h.SetTelemetry(tel, root)
	_, dev := h.Run(p, database)
	root.End()

	var b *telemetry.Breakdown
	if dev == DeviceCPU {
		b = h.CPUExec().Breakdown()
	} else {
		b = h.Castle().Breakdown()
	}
	if b == nil || b.SumCycles() != b.TotalCycles {
		t.Fatalf("hybrid breakdown (%v) should reconcile: %+v", dev, b)
	}
	found := false
	for _, s := range tel.Trace().Spans() {
		if s.Name == "aggregate" {
			found = true
		}
	}
	if !found {
		t.Fatal("no operator spans recorded through the hybrid path")
	}
}
