package exec

// cpu_sweep.go drives the CPU fact stage over one row range: SIMD selection
// scans, then the pipelined probe pass. cpuSweep is the per-core kernel
// context; the serial path runs one over the executor's own core, the
// parallel path one per forked core, and exec.Placed reuses the filter/probe
// half when the aggregation tail is placed on CAPE.

import (
	"context"

	"castle/internal/baseline"
	"castle/internal/bitvec"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// cpuSweep is one core's share of the fact sweep and its accounting: the
// serial path runs a single sweep over the executor's own core; the
// parallel path runs one per forked core, each on its own goroutine. A
// sweep only reads shared state (storage, prepared dimensions, prebuilt
// hash tables) and writes its own fields, which is what makes the fan-out
// race-free.
type cpuSweep struct {
	cpu *baseline.CPU
	acc *groupAcc

	// resident marks a sweep whose fact columns were already streamed by a
	// shared fused scan (shared_cpu.go): kernels charge their compute and
	// random accesses but skip re-streaming the columns. Functional results
	// are unchanged.
	resident bool

	perJoin      map[string]int64
	filterCycles int64
	aggCycles    int64

	// span hosts the per-operator child spans: the run's parent span when
	// serial, this core's "coreN" span when parallel.
	span *telemetry.Span
}

// run executes the fact-side pipeline over rows [base, end): SIMD selection
// scans, the pipelined probe pass, and the aggregation visit. With tables
// nil (serial) each join builds its hash table inline on this core; with
// tables set (parallel) the prebuilt read-only tables are probed. All row
// indexing is range-local, so every column is sliced once up front.
func (s *cpuSweep) run(ctx context.Context, q *plan.Query, db *storage.Database,
	joins []dimJoin, tables []joinTable, base, end int) error {

	sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, tables, base, end)
	if err != nil {
		return err
	}
	return s.runAggregate(ctx, q, db, sel, attrCols, base, end)
}

// runFilterJoins executes the range's Scan+Filter+JoinProbe operators (the
// fact stage up to, but not including, aggregation) and returns the
// surviving selection mask (nil = all rows) plus the materialized
// range-aligned dimension-attribute columns keyed "dim.attr".
func (s *cpuSweep) runFilterJoins(ctx context.Context, q *plan.Query, db *storage.Database,
	joins []dimJoin, tables []joinTable, base, end int) (*bitvec.Vector, map[string][]uint32, error) {

	cpu := s.cpu
	fact := db.MustTable(q.Fact)
	n := end - base

	// Fact selections: SIMD scans, masks ANDed.
	spf := s.span.Child("filter")
	filterStart := cpu.Cycles()
	var sel *bitvec.Vector
	for _, pr := range q.FactPreds {
		col := fact.MustColumn(pr.Column).Data[base:end]
		pr := pr
		var m *bitvec.Vector
		if s.resident {
			m = cpu.SelectionScanResident(col, func(v uint32) bool { return pr.Matches(v) })
		} else {
			m = cpu.SelectionScan(col, func(v uint32) bool { return pr.Matches(v) })
		}
		if sel == nil {
			sel = m
		} else {
			sel.And(m)
			cpu.ChargeCompute(float64(n) / 64) // word-wise mask AND
		}
	}
	s.filterCycles += cpu.Cycles() - filterStart
	spf.SetInt("cycles", cpu.Cycles()-filterStart)
	spf.SetInt("rows", int64(n))
	spf.End()

	// Pipelined probe pass: joins that feed group-by columns materialize
	// the attribute; pure filters stay semi-joins.
	attrCols := make(map[string][]uint32) // "dim.attr" -> range-aligned values
	for ji, j := range joins {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		e := j.edge
		spj := s.span.Child("join:" + e.Dim)
		joinStart := cpu.Cycles()
		fkCol := fact.MustColumn(e.FactFK).Data[base:end]

		switch len(e.NeedAttrs) {
		case 0:
			var m *bitvec.Vector
			switch {
			case tables == nil:
				m = cpu.HashJoinSemi(fkCol, j.keys, sel)
			case s.resident:
				m = cpu.ProbeSemiResident(fkCol, tables[ji].semi, sel)
			default:
				m = cpu.ProbeSemi(fkCol, tables[ji].semi, sel)
			}
			sel = intersect(sel, m)
		default:
			// One probe pass per needed attribute re-uses the same probe
			// pattern; the first probe prunes the selection mask.
			for ai, attr := range e.NeedAttrs {
				var m *bitvec.Vector
				var mat []uint32
				switch {
				case tables == nil:
					m, mat = cpu.HashJoinMap(fkCol, j.keys, j.vals[ai], sel)
				case s.resident:
					m, mat = cpu.ProbeMapResident(fkCol, tables[ji].attr[ai], sel)
				default:
					m, mat = cpu.ProbeMap(fkCol, tables[ji].attr[ai], sel)
				}
				attrCols[e.Dim+"."+attr] = mat
				if ai == 0 {
					sel = intersect(sel, m)
				}
			}
		}
		cy := cpu.Cycles() - joinStart
		s.perJoin[e.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("build_keys", int64(len(j.keys)))
		spj.End()
	}
	return sel, attrCols, nil
}

// intersect ANDs a nullable selection mask with a new mask.
func intersect(sel, m *bitvec.Vector) *bitvec.Vector {
	if sel == nil {
		return m
	}
	return sel.And(m)
}
