package exec

// parallel_test.go covers the morsel-driven parallel fact sweep: golden
// determinism across devices and fan-out degrees, the two cycle views
// (elapsed vs work), breakdown exactness, executor reentrancy under -race,
// and the K=4 scaling acceptance bar.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/telemetry"
)

// workOverheadBound is the documented fission/merge overhead: summed tile
// work cycles may exceed the serial run's cycles by per-tile dispatch
// (cape.ForkScalarsPerTile), the partial-accumulator merge, and per-range
// operator setup (one extra vector charge per predicate per extra range on
// the CPU; per-tile CP accesses on smaller working sets on CAPE). Across
// the SSB suite at SF 0.01 the measured overhead is under 2%; the bound
// leaves headroom without ever hiding a duplicated sweep (which would show
// up as ~K x serial).
const workOverheadBound = 0.10

// runCapeParallel executes one bound query on a fresh CAPE engine at the
// given fan-out, returning the formatted result, elapsed cycles, and the
// run's ParallelStats.
func runCapeParallel(t *testing.T, qsql string, k, maxvl int) (string, int64, ParallelStats) {
	t.Helper()
	database, cat := db(t)
	bound := bindQuery(t, database, qsql)
	cfg := withFlags(cape.DefaultConfig(), true, true, true)
	cfg.MAXVL = maxvl
	p := optimize(t, bound, cat, cfg.MAXVL)
	eng := cape.New(cfg)
	c := NewCastle(eng, cat, DefaultCastleOptions())
	c.SetParallelism(k)
	res, err := c.RunContext(context.Background(), p, database)
	if err != nil {
		t.Fatal(err)
	}
	return res.Format(database), eng.Stats().TotalCycles(), c.ParallelStats()
}

// runCPUParallel is runCapeParallel's baseline counterpart.
func runCPUParallel(t *testing.T, qsql string, k int) (string, int64, ParallelStats) {
	t.Helper()
	database, _ := db(t)
	bound := bindQuery(t, database, qsql)
	cpu := baseline.New(baseline.DefaultConfig())
	x := NewCPUExec(cpu)
	x.SetParallelism(k)
	res, err := x.RunContext(context.Background(), bound, database)
	if err != nil {
		t.Fatal(err)
	}
	return res.Format(database), cpu.Cycles(), x.ParallelStats()
}

// TestParallelGoldenAcrossDevices is the determinism gate: every SSB query
// must produce byte-identical results at K=2 and K=4 on both devices, and
// the summed tile work cycles must match the serial run within the
// documented fission/merge overhead bound.
func TestParallelGoldenAcrossDevices(t *testing.T) {
	const maxvl = 4096 // ~15 morsels at SF 0.01: a real 4-way fan-out
	for _, q := range ssb.Queries() {
		serialOut, serialCycles, _ := runCapeParallel(t, q.SQL, 1, maxvl)
		cpuSerialOut, cpuSerialCycles, _ := runCPUParallel(t, q.SQL, 1)
		for _, k := range []int{2, 4} {
			out, elapsed, ps := runCapeParallel(t, q.SQL, k, maxvl)
			if out != serialOut {
				t.Fatalf("%s CAPE K=%d: rows differ from serial\nserial:\n%s\nK=%d:\n%s",
					q.Flight, k, serialOut, k, out)
			}
			checkWorkBound(t, q.Flight+" CAPE", k, serialCycles, elapsed, ps)

			out, elapsed, ps = runCPUParallel(t, q.SQL, k)
			if out != cpuSerialOut {
				t.Fatalf("%s CPU K=%d: rows differ from serial\nserial:\n%s\nK=%d:\n%s",
					q.Flight, k, cpuSerialOut, k, out)
			}
			checkWorkBound(t, q.Flight+" CPU", k, cpuSerialCycles, elapsed, ps)
		}
	}
}

func checkWorkBound(t *testing.T, label string, k int, serial, elapsed int64, ps ParallelStats) {
	t.Helper()
	if ps.Tiles < 2 {
		t.Fatalf("%s K=%d: sweep did not parallelise (tiles=%d)", label, k, ps.Tiles)
	}
	if ps.ElapsedCycles != elapsed {
		t.Fatalf("%s K=%d: ParallelStats elapsed %d != engine %d", label, k, ps.ElapsedCycles, elapsed)
	}
	if elapsed >= serial {
		t.Errorf("%s K=%d: parallel elapsed %d not below serial %d", label, k, elapsed, serial)
	}
	if ps.WorkCycles < elapsed {
		t.Fatalf("%s K=%d: work %d below elapsed %d", label, k, ps.WorkCycles, elapsed)
	}
	if over := float64(ps.WorkCycles-serial) / float64(serial); over > workOverheadBound {
		t.Errorf("%s K=%d: work cycles %d exceed serial %d by %.1f%% (bound %.0f%%)",
			label, k, ps.WorkCycles, serial, 100*over, 100*workOverheadBound)
	}
}

// TestParallelBreakdownPartitionsTotal: the EXPLAIN ANALYZE rows of a
// parallel run — per-tile sweeps, the negative overlap credit, and the
// merge — must still sum exactly to the engine's TotalCycles.
func TestParallelBreakdownPartitionsTotal(t *testing.T) {
	database, cat := db(t)
	q := ssb.Queries()[3] // Q2.1: three joins, grouped aggregate
	bound := bindQuery(t, database, q.SQL)

	cfg := withFlags(cape.DefaultConfig(), true, true, true)
	cfg.MAXVL = 4096
	p := optimize(t, bound, cat, cfg.MAXVL)
	eng := cape.New(cfg)
	c := NewCastle(eng, cat, DefaultCastleOptions())
	c.SetParallelism(4)
	c.Run(p, database)
	checkParallelBreakdown(t, c.Breakdown(), eng.Stats().TotalCycles())

	cpu := baseline.New(baseline.DefaultConfig())
	x := NewCPUExec(cpu)
	x.SetParallelism(4)
	x.Run(bound, database)
	checkParallelBreakdown(t, x.Breakdown(), cpu.Cycles())
}

func checkParallelBreakdown(t *testing.T, b *telemetry.Breakdown, total int64) {
	t.Helper()
	if b == nil {
		t.Fatal("no breakdown recorded")
	}
	if b.TotalCycles != total {
		t.Fatalf("%s breakdown total %d != engine %d", b.Device, b.TotalCycles, total)
	}
	if got := b.SumCycles(); got != b.TotalCycles {
		t.Fatalf("%s breakdown rows sum to %d, want %d exactly:\n%s",
			b.Device, got, b.TotalCycles, b.Format())
	}
	for _, want := range []string{"sweep[0]", "sweep[3]", "parallel-overlap", "merge"} {
		found := false
		for _, o := range b.Operators {
			if o.Operator == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s breakdown missing %q row:\n%s", b.Device, want, b.Format())
		}
	}
	for _, o := range b.Operators {
		if strings.HasPrefix(o.Operator, "sweep[") && o.Cycles <= 0 {
			t.Errorf("%s breakdown: %s has non-positive cycles %d", b.Device, o.Operator, o.Cycles)
		}
		if o.Operator == "overhead" && o.Cycles < 0 {
			t.Errorf("%s breakdown: negative overhead %d", b.Device, o.Cycles)
		}
	}
}

// TestParallelismOneMatchesDefault: requesting K=1 must take the exact
// serial code path — identical rows and identical cycle counts to an
// executor that never heard of parallelism.
func TestParallelismOneMatchesDefault(t *testing.T) {
	database, cat := db(t)
	q := ssb.Queries()[10] // Q4.1: four joins
	bound := bindQuery(t, database, q.SQL)

	cfg := smallCape()
	p := optimize(t, bound, cat, cfg.MAXVL)
	engA := cape.New(cfg)
	defaultRes := NewCastle(engA, cat, DefaultCastleOptions()).Run(p, database)
	engB := cape.New(cfg)
	cB := NewCastle(engB, cat, DefaultCastleOptions())
	cB.SetParallelism(1)
	k1Res := cB.Run(p, database)
	if a, b := engA.Stats().TotalCycles(), engB.Stats().TotalCycles(); a != b {
		t.Fatalf("CAPE K=1 cycles %d != default-path cycles %d", b, a)
	}
	if !defaultRes.Equal(k1Res) {
		t.Fatal("CAPE K=1 rows differ from default path")
	}

	cpuA := baseline.New(baseline.DefaultConfig())
	NewCPUExec(cpuA).Run(bound, database)
	cpuB := baseline.New(baseline.DefaultConfig())
	xB := NewCPUExec(cpuB)
	xB.SetParallelism(1)
	xB.Run(bound, database)
	if a, b := cpuA.Cycles(), cpuB.Cycles(); a != b {
		t.Fatalf("CPU K=1 cycles %d != default-path cycles %d", b, a)
	}
}

// TestParallelScalingSpeedup is the acceptance bar: geomean elapsed cycles
// over the 13 SSB queries must improve at least 2x from K=1 to K=4 on both
// devices. CAPE runs at MAXVL 8192 so SF 0.01 yields enough morsels to
// occupy four tiles (the default 32,768 leaves only two).
func TestParallelScalingSpeedup(t *testing.T) {
	geomean := func(run func(qsql string) int64) float64 {
		sum := 0.0
		for _, q := range ssb.Queries() {
			sum += math.Log(float64(run(q.SQL)))
		}
		return math.Exp(sum / 13)
	}

	for _, dev := range []string{"CAPE", "CPU"} {
		run := func(k int) float64 {
			return geomean(func(qsql string) int64 {
				if dev == "CAPE" {
					_, cycles, _ := runCapeParallel(t, qsql, k, 8192)
					return cycles
				}
				_, cycles, _ := runCPUParallel(t, qsql, k)
				return cycles
			})
		}
		k1, k4 := run(1), run(4)
		if speedup := k1 / k4; speedup < 2.0 {
			t.Errorf("%s: K=4 geomean speedup %.2fx (k1=%.0f k4=%.0f), want >= 2x",
				dev, speedup, k1, k4)
		} else {
			t.Logf("%s: K=4 geomean speedup %.2fx", dev, speedup)
		}
	}
}

// TestExecutorsReentrant runs concurrent RunContext calls on separate
// engine instances — the refactor's guarantee is that executors carry no
// cross-run mutable state, so one engine per in-flight query is the only
// sharing rule. Run with -race.
func TestExecutorsReentrant(t *testing.T) {
	database, cat := db(t)
	q1 := bindQuery(t, database, ssb.Queries()[0].SQL)
	q2 := bindQuery(t, database, ssb.Queries()[7].SQL)
	wantQ1 := Reference(q1, database)
	wantQ2 := Reference(q2, database)

	cfg := smallCape()
	p1 := optimize(t, q1, cat, cfg.MAXVL)
	p2 := optimize(t, q2, cat, cfg.MAXVL)

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, 4*rounds)
	for r := 0; r < rounds; r++ {
		k := 1 + r%3
		for _, job := range []struct {
			p    *plan.Physical
			q    *plan.Query
			want *Result
		}{{p1, q1, wantQ1}, {p2, q2, wantQ2}} {
			wg.Add(2)
			go func(p *plan.Physical, want *Result) {
				defer wg.Done()
				c := NewCastle(cape.New(cfg), cat, DefaultCastleOptions())
				c.SetParallelism(k)
				res, err := c.RunContext(context.Background(), p, database)
				if err != nil {
					errs <- err
					return
				}
				if !want.Equal(res) {
					errs <- fmt.Errorf("concurrent CAPE run (K=%d) diverged", k)
				}
				// Accessors must serve this run's books, not another's.
				if b := c.Breakdown(); b.SumCycles() != b.TotalCycles {
					errs <- fmt.Errorf("concurrent CAPE breakdown unbalanced (K=%d)", k)
				}
			}(job.p, job.want)
			go func(q *plan.Query, want *Result) {
				defer wg.Done()
				x := NewCPUExec(baseline.New(baseline.DefaultConfig()))
				x.SetParallelism(k)
				res, err := x.RunContext(context.Background(), q, database)
				if err != nil {
					errs <- err
					return
				}
				if !want.Equal(res) {
					errs <- fmt.Errorf("concurrent CPU run (K=%d) diverged", k)
				}
				if b := x.Breakdown(); b.SumCycles() != b.TotalCycles {
					errs <- fmt.Errorf("concurrent CPU breakdown unbalanced (K=%d)", k)
				}
			}(job.q, job.want)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// FuzzParallelEnginesAgree is the native fuzz target: random star schemas
// and queries (reusing the generator from fuzz_test.go) must produce
// identical relations from the reference engine, the parallel CPU
// executor, and the parallel Castle executor at an arbitrary fan-out.
//
// Run continuously with: go test -fuzz=FuzzParallelEnginesAgree ./internal/exec
func FuzzParallelEnginesAgree(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(0xCA57), uint8(4))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-7), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8) {
		k := int(kRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		s := genSchema(rng)
		qsql := genQuery(rng, s)

		stmt, err := sql.Parse(qsql)
		if err != nil {
			t.Fatalf("generator emitted unparseable SQL %q: %v", qsql, err)
		}
		bound, err := plan.Bind(stmt, s.db)
		if err != nil {
			t.Fatalf("generator emitted unbindable SQL %q: %v", qsql, err)
		}
		want := Reference(bound, s.db)

		x := NewCPUExec(baseline.New(baseline.DefaultConfig()))
		x.SetParallelism(k)
		if got := x.Run(bound, s.db); !want.Equal(got) {
			t.Fatalf("parallel CPU (K=%d) differs on %q\nref:\n%s\ncpu:\n%s",
				k, qsql, want.Format(s.db), got.Format(s.db))
		}

		cat := stats.Collect(s.db)
		cfg := randCapeConfig(rng)
		p, err := optimizer.Optimize(bound, cat, cfg.MAXVL)
		if err != nil {
			t.Fatalf("optimize %q: %v", qsql, err)
		}
		c := NewCastle(cape.New(cfg), cat, DefaultCastleOptions())
		c.SetParallelism(k)
		if got := c.Run(p, s.db); !want.Equal(got) {
			t.Fatalf("parallel Castle (K=%d, cfg %v) differs on %q\nref:\n%s\ncastle:\n%s",
				k, cfg, qsql, want.Format(s.db), got.Format(s.db))
		}
	})
}
