package exec

// cape_dimbuild.go is the CAPE DimBuild kernel: filter one dimension on the
// AP and compact the qualifying keys plus needed attributes into values
// arrays (Figure 4), grouped by attribute tuple for batched probing.

import (
	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
)

// dimSide is a filtered dimension prepared for probing.
type dimSide struct {
	edge plan.JoinEdge
	// keys are the qualifying dimension keys.
	keys []uint32
	// attrs[i] are the attribute tuples aligned with keys (one slice per
	// NeedAttrs entry).
	attrs [][]uint32
	// groups batch keys by attribute tuple so a whole group can probe with
	// one vmks and materialize with one vmerge per attribute.
	groups []attrGroup
	// totalRows is the dimension's unfiltered cardinality.
	totalRows int
}

type attrGroup struct {
	attrVals []uint32
	keys     []uint32
}

// capePrepareDim filters one dimension on CAPE and compacts the qualifying
// keys plus needed attributes into values arrays (Figure 4), grouped by
// attribute tuple for batched probing. Prep always runs on a run's primary
// engine — it is charged once per run, not per tile.
func capePrepareDim(eng *cape.Engine, cat *stats.Catalog, q *plan.Query, e plan.JoinEdge,
	db *storage.Database) dimSide {

	dim := db.MustTable(e.Dim)
	maxvl := eng.Config().MAXVL
	preds := q.DimPreds[e.Dim]

	d := dimSide{edge: e, totalRows: dim.Rows(), attrs: make([][]uint32, len(e.NeedAttrs))}
	keyData := dim.MustColumn(e.DimKey).Data
	attrData := make([][]uint32, len(e.NeedAttrs))
	for i, a := range e.NeedAttrs {
		attrData[i] = dim.MustColumn(a).Data
	}

	// Unfiltered dimensions need no CAPE pass: the key (and attribute)
	// columns are the values arrays already.
	if len(preds) == 0 {
		d.keys = keyData
		copy(d.attrs, attrData)
		eng.Scalar(8)
		d.buildGroups(e)
		if len(e.NeedAttrs) > 0 {
			eng.Scalar(int64(4 * len(d.keys)))
		}
		return d
	}

	for base := 0; base < dim.Rows(); base += maxvl {
		vl := dim.Rows() - base
		if vl > maxvl {
			vl = maxvl
		}
		eng.SetVL(vl)
		regs := newRegAlloc(eng.Config().NumVRegs)
		var mask *bitvec.Vector
		for _, pr := range preds {
			r, cached := regs.forCol(pr.Column)
			if !cached {
				eng.Load(r, dim.MustColumn(pr.Column).Data[base:base+vl], colWidth(cat, e.Dim, pr.Column))
			}
			m := predMask(eng, r, pr)
			if mask == nil {
				mask = m
			} else {
				mask = eng.MaskAnd(mask, m)
			}
		}
		if mask == nil {
			mask = eng.MaskInit(true)
		}
		// Compact to a values array: matched keys and attributes stream
		// back to memory (Figure 4's "values array").
		n := eng.MPopc(mask)
		eng.Scalar(int64(3 * n))
		eng.ChargeStreamWrite(int64(4 * n * (1 + len(e.NeedAttrs))))
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			d.keys = append(d.keys, keyData[base+i])
			for ai := range attrData {
				d.attrs[ai] = append(d.attrs[ai], attrData[ai][base+i])
			}
		}
	}

	// Batch keys by attribute tuple for group-aware probing.
	d.buildGroups(e)
	if len(e.NeedAttrs) > 0 {
		eng.Scalar(int64(4 * len(d.keys)))
	}
	return d
}

// buildGroups batches the filtered keys by attribute tuple.
func (d *dimSide) buildGroups(e plan.JoinEdge) {
	if len(e.NeedAttrs) == 0 {
		return
	}
	idx := make(map[string]int)
	for r := range d.keys {
		tuple := make([]uint32, len(e.NeedAttrs))
		for ai := range tuple {
			tuple[ai] = d.attrs[ai][r]
		}
		ks := groupKeyString(tuple)
		gi, ok := idx[ks]
		if !ok {
			gi = len(d.groups)
			idx[ks] = gi
			d.groups = append(d.groups, attrGroup{attrVals: tuple})
		}
		d.groups[gi].keys = append(d.groups[gi].keys, d.keys[r])
	}
}
