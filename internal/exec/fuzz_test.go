package exec

// fuzz_test.go generates random star schemas and random SQL queries over
// them, then requires the reference engine, the baseline CPU executor, and
// the Castle/CAPE executor (under randomized CAPE configurations and plan
// shapes) to return identical relations. This drives the whole pipeline —
// lexer, parser, binder, optimizer, executors — through input shapes the
// SSB suite does not cover.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/stats"
	"castle/internal/storage"
)

type fuzzSchema struct {
	db   *storage.Database
	dims []fuzzDim
	// fact columns by role
	fks      []string // fk column i joins dims[i]
	intCols  []string // small-valued measure columns
	wideCols []string // wider-valued measure columns
}

type fuzzDim struct {
	name    string
	keyCol  string
	intAttr string
	strAttr string
	rows    int
}

var fuzzStrings = []string{"ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON", "ZETA"}

func genSchema(rng *rand.Rand) fuzzSchema {
	db := storage.NewDatabase()
	nDims := 1 + rng.Intn(3)
	s := fuzzSchema{db: db}

	for d := 0; d < nDims; d++ {
		rows := 1 + rng.Intn(60)
		name := fmt.Sprintf("dim%d", d)
		keys := make([]uint32, rows)
		intAttr := make([]uint32, rows)
		strAttr := make([]string, rows)
		for i := range keys {
			keys[i] = uint32(i + 1)
			intAttr[i] = uint32(rng.Intn(8))
			strAttr[i] = fuzzStrings[rng.Intn(len(fuzzStrings))]
		}
		t := storage.NewTable(name)
		kc := fmt.Sprintf("d%d_key", d)
		ic := fmt.Sprintf("d%d_class", d)
		sc := fmt.Sprintf("d%d_label", d)
		t.AddIntColumn(kc, keys)
		t.AddIntColumn(ic, intAttr)
		t.AddStringColumn(sc, strAttr)
		db.Add(t)
		s.dims = append(s.dims, fuzzDim{name: name, keyCol: kc, intAttr: ic, strAttr: sc, rows: rows})
	}

	factRows := 200 + rng.Intn(3000)
	fact := storage.NewTable("fact")
	for d, dim := range s.dims {
		// Some schemas include dangling foreign keys (values with no
		// dimension row); inner-join semantics must drop those rows.
		keyRange := dim.rows
		if rng.Intn(3) == 0 {
			keyRange += 1 + rng.Intn(10)
		}
		fk := make([]uint32, factRows)
		for i := range fk {
			fk[i] = uint32(1 + rng.Intn(keyRange))
		}
		col := fmt.Sprintf("f_fk%d", d)
		fact.AddIntColumn(col, fk)
		s.fks = append(s.fks, col)
	}
	for m := 0; m < 2; m++ {
		small := make([]uint32, factRows)
		wide := make([]uint32, factRows)
		for i := range small {
			small[i] = uint32(rng.Intn(1 << 10)) // products stay in 32 bits
			wide[i] = uint32(rng.Intn(1 << 20))
		}
		sc := fmt.Sprintf("f_small%d", m)
		wc := fmt.Sprintf("f_wide%d", m)
		fact.AddIntColumn(sc, small)
		fact.AddIntColumn(wc, wide)
		s.intCols = append(s.intCols, sc)
		s.wideCols = append(s.wideCols, wc)
	}
	db.Add(fact)
	return s
}

// genQuery builds a random SQL query over the schema. joined reports which
// dimensions participate.
func genQuery(rng *rand.Rand, s fuzzSchema) string {
	nJoin := rng.Intn(len(s.dims) + 1)
	joined := rng.Perm(len(s.dims))[:nJoin]

	var sel []string
	var groupBy []string
	var where []string
	tables := []string{"fact"}

	for _, d := range joined {
		dim := s.dims[d]
		tables = append(tables, dim.name)
		where = append(where, fmt.Sprintf("%s = %s", s.fks[d], dim.keyCol))
		// Dimension predicates.
		switch rng.Intn(4) {
		case 0:
			where = append(where, fmt.Sprintf("%s = %d", dim.intAttr, rng.Intn(10)))
		case 1:
			where = append(where, fmt.Sprintf("%s = '%s'", dim.strAttr, randFuzzString(rng)))
		case 2:
			where = append(where, fmt.Sprintf("(%s = '%s' OR %s = '%s')",
				dim.strAttr, randFuzzString(rng), dim.strAttr, randFuzzString(rng)))
		}
		// Group by a dimension attribute sometimes.
		if rng.Intn(2) == 0 && len(groupBy) < 2 {
			col := dim.intAttr
			if rng.Intn(2) == 0 {
				col = dim.strAttr
			}
			groupBy = append(groupBy, col)
			sel = append(sel, col)
		}
	}

	// Fact predicates.
	for i := 0; i < rng.Intn(3); i++ {
		col := s.wideCols[rng.Intn(len(s.wideCols))]
		switch rng.Intn(4) {
		case 0:
			where = append(where, fmt.Sprintf("%s < %d", col, rng.Intn(1<<20)))
		case 1:
			where = append(where, fmt.Sprintf("%s >= %d", col, rng.Intn(1<<20)))
		case 2:
			lo := rng.Intn(1 << 19)
			where = append(where, fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+rng.Intn(1<<19)))
		case 3:
			where = append(where, fmt.Sprintf("%s IN (%d, %d, %d)",
				col, rng.Intn(1<<20), rng.Intn(1<<20), rng.Intn(1<<20)))
		}
	}

	// Aggregates.
	switch rng.Intn(8) {
	case 0:
		sel = append(sel, fmt.Sprintf("SUM(%s)", s.wideCols[0]))
	case 1:
		sel = append(sel, fmt.Sprintf("SUM(%s * %s)", s.intCols[0], s.intCols[1]))
		if len(groupBy) > 0 {
			// GROUP BY with vv-arithmetic aggregates is outside the
			// supported (and SSB's) shape; fall back to a plain sum.
			sel[len(sel)-1] = fmt.Sprintf("SUM(%s)", s.intCols[0])
		}
	case 2:
		sel = append(sel, fmt.Sprintf("SUM(%s - %s)", s.wideCols[0], s.wideCols[0]))
	case 3:
		sel = append(sel, fmt.Sprintf("COUNT(%s)", s.wideCols[0]))
	case 4:
		sel = append(sel, fmt.Sprintf("MIN(%s)", s.wideCols[rng.Intn(len(s.wideCols))]))
	case 5:
		sel = append(sel, fmt.Sprintf("MAX(%s)", s.wideCols[rng.Intn(len(s.wideCols))]))
	case 6:
		sel = append(sel, fmt.Sprintf("AVG(%s)", s.wideCols[rng.Intn(len(s.wideCols))]))
	case 7:
		sel = append(sel, fmt.Sprintf("COUNT(DISTINCT %s)", s.intCols[rng.Intn(len(s.intCols))]))
	}

	q := "SELECT " + strings.Join(sel, ", ") + " FROM " + strings.Join(tables, ", ")
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	if len(groupBy) > 0 {
		q += " GROUP BY " + strings.Join(groupBy, ", ")
		if rng.Intn(4) == 0 {
			q += fmt.Sprintf(" ORDER BY %s LIMIT %d", groupBy[0], 1+rng.Intn(5))
		}
	}
	return q
}

func randFuzzString(rng *rand.Rand) string {
	// Occasionally a value that is absent from every dictionary, to
	// exercise Never predicates.
	if rng.Intn(5) == 0 {
		return "NO_SUCH_VALUE"
	}
	return fuzzStrings[rng.Intn(len(fuzzStrings))]
}

func randCapeConfig(rng *rand.Rand) cape.Config {
	cfg := cape.DefaultConfig()
	cfg.MAXVL = []int{256, 1024, 4096}[rng.Intn(3)]
	cfg.EnableADL = rng.Intn(2) == 0
	cfg.EnableMKS = cfg.EnableADL && rng.Intn(2) == 0
	cfg.EnableABA = rng.Intn(2) == 0
	cfg.MKSBufferBytes = []int{64, 512, 2048}[rng.Intn(3)]
	return cfg
}

func TestFuzzEnginesAgree(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	rng := rand.New(rand.NewSource(0xCA57))
	for i := 0; i < iters; i++ {
		s := genSchema(rng)
		qsql := genQuery(rng, s)
		t.Run(fmt.Sprintf("q%02d", i), func(t *testing.T) {
			stmt, err := sql.Parse(qsql)
			if err != nil {
				t.Fatalf("parse %q: %v", qsql, err)
			}
			bound, err := plan.Bind(stmt, s.db)
			if err != nil {
				t.Fatalf("bind %q: %v", qsql, err)
			}

			want := Reference(bound, s.db)

			cpuRes := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, s.db)
			if !want.Equal(cpuRes) {
				t.Fatalf("baseline differs on %q\nref:\n%s\ncpu:\n%s",
					qsql, want.Format(s.db), cpuRes.Format(s.db))
			}

			cat := stats.Collect(s.db)
			for variant := 0; variant < 2; variant++ {
				cfg := randCapeConfig(rng)
				p, err := optimizer.Optimize(bound, cat, cfg.MAXVL)
				if err != nil {
					t.Fatalf("optimize %q: %v", qsql, err)
				}
				opts := DefaultCastleOptions()
				opts.Fusion = rng.Intn(2) == 0
				opts.NoBulkAggFastPath = rng.Intn(2) == 0
				eng := cape.New(cfg)
				got := NewCastle(eng, cat, opts).Run(p, s.db)
				if !want.Equal(got) {
					t.Fatalf("castle differs on %q (cfg %v, plan %v)\nref:\n%s\ncastle:\n%s",
						qsql, cfg, p, want.Format(s.db), got.Format(s.db))
				}
			}
		})
	}
}
