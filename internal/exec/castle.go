package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// CastleOptions tune the CAPE executor.
type CastleOptions struct {
	// Fusion enables operator fusion (§7.4): consecutive operators process
	// a CSB-resident partition back to back instead of materializing masks
	// through main memory between operator sweeps.
	Fusion bool
	// MKSMinKeys is the minimum probe-key batch size for which vmks is
	// emitted; smaller batches use vmseq.vx (§6.2: sub-cacheline batches
	// waste memory bandwidth). Zero selects the cacheline-derived default.
	MKSMinKeys int
	// NoBulkAggFastPath forces the literal per-group Algorithm 2 loop even
	// for single-column group-bys. The fast path computes identical
	// results and bills identical cycles; this switch exists so tests can
	// assert that equivalence.
	NoBulkAggFastPath bool
	// Parallelism is the initial number of CAPE tiles the fact sweep may
	// fan out across (§7.2's tiled deployment). Values <= 1 run the sweep
	// serially on the executor's engine; K > 1 forks K tile engines,
	// dispatches MAXVL-sized morsels round-robin, and merges the partial
	// group accumulators in fixed tile order, so results are bit-identical
	// to serial execution. Adjust later runs with SetParallelism.
	Parallelism int
}

// DefaultCastleOptions returns the paper's configuration.
func DefaultCastleOptions() CastleOptions {
	return CastleOptions{Fusion: true}
}

// mergeScalarsPerRow is the CP cost of folding one partial group row into
// the merged result table — the same append/merge instruction count the
// serial Algorithm 2 loop bills per group.
const mergeScalarsPerRow = 12

// Castle executes physical plans on a CAPE core.
//
// All mutable per-run accounting lives in a run-scoped book that is
// published atomically when a run finishes, so the executor itself is
// reentrant: nothing on the receiver is written mid-run. The underlying
// cape.Engine still executes one run at a time — use one engine (and one
// Castle) per in-flight query, as the server's tile pool does.
type Castle struct {
	eng  *cape.Engine
	cat  *stats.Catalog
	opts CastleOptions

	// par is the fan-out degree for subsequent runs. It lives in an atomic
	// (not in opts) because SetParallelism is documented safe to call
	// concurrently with RunContext: a run loads the value exactly once at
	// entry.
	par atomic.Int32

	// streaming only toggles stream accounting here: the CAPE sweep is
	// already a pipeline of MAXVL partitions (the fused fact sweep never
	// materializes an operator's full output), so "streaming" a pure-CAPE
	// run changes no work — it just reports each partition as a batch and
	// the CSB-resident partition footprint as the peak.
	streaming atomic.Bool

	// tel and parent carry the observability pipeline: operator spans nest
	// under parent (the caller's "execute" span). Both may be nil; span
	// calls on nil receivers are no-ops, so a disabled pipeline costs only
	// nil checks.
	tel    *telemetry.Telemetry
	parent *telemetry.Span

	// last is the most recent run's closed books (nil before the first
	// run). Accessors snapshot from here.
	last atomic.Pointer[runBooks]
}

// runBooks is the run-scoped accounting of one RunContext invocation: the
// per-join attribution, per-phase cycle tallies, and the finished
// breakdown. Exactly one run writes a given runBooks; it is published to
// Castle.last only after the run completes.
type runBooks struct {
	perJoin      map[string]int64
	prepCycles   map[string]int64
	prepRows     map[string]int64
	filterCycles int64
	aggCycles    int64

	// Parallel-sweep accounting (tileCycles nil for serial runs).
	tiles       int
	tileCycles  []int64
	tileRows    []int64
	mergeCycles int64
	elapsed     int64

	stream StreamStats

	breakdown *telemetry.Breakdown
}

// ParallelStats describes how the last run's fact sweep executed: how many
// tiles it occupied, each tile's work, and the two cycle views — elapsed
// (prep + max over tiles + merge) versus work (every tile cycle counts,
// the energy/§6.3 view).
type ParallelStats struct {
	// Tiles is the number of tile engines the sweep used (1 = serial).
	Tiles int
	// TileCycles is each tile's sweep work in tile order (nil when serial).
	TileCycles []int64
	// TileRows is the fact rows each tile processed (nil when serial).
	TileRows []int64
	// MergeCycles is the CP-side merge of the partial group accumulators.
	MergeCycles int64
	// ElapsedCycles is the run's simulated elapsed time (what the engine's
	// Stats advanced by).
	ElapsedCycles int64
	// WorkCycles is the total work: elapsed plus the overlapped tile
	// cycles hidden under the critical tile. Equals ElapsedCycles for
	// serial runs.
	WorkCycles int64
}

// NewCastle wraps a CAPE engine. The statistics catalog supplies column
// bitwidths to ABA (§5.1); pass nil to force embedded bitwidth discovery.
func NewCastle(eng *cape.Engine, cat *stats.Catalog, opts CastleOptions) *Castle {
	c := &Castle{eng: eng, cat: cat, opts: opts}
	c.par.Store(int32(opts.Parallelism))
	return c
}

// Engine returns the underlying CAPE engine (for cycle/traffic inspection).
func (c *Castle) Engine() *cape.Engine { return c.eng }

// SetParallelism sets how many tiles subsequent Runs' fact sweeps may fan
// out across (see CastleOptions.Parallelism). Safe to call concurrently
// with RunContext: an in-flight run keeps the degree it observed at entry;
// later runs observe the new value.
func (c *Castle) SetParallelism(k int) { c.par.Store(int32(k)) }

// SetStreaming toggles stream accounting for subsequent runs (see the
// streaming field: pure-CAPE execution is already partition-pipelined, so
// this changes reporting, not work). Safe to call concurrently with
// RunContext.
func (c *Castle) SetStreaming(on bool) { c.streaming.Store(on) }

// StreamStats returns the last run's streaming summary: one batch per
// MAXVL fact partition and the peak CSB-resident partition bytes across
// the K concurrent tiles. Zero for runs with streaming off.
func (c *Castle) StreamStats() StreamStats {
	b := c.last.Load()
	if b == nil {
		return StreamStats{}
	}
	return b.stream
}

// PerJoinCycles returns the cycles attributed to each join edge of the
// last Run, keyed by dimension name (§7.2's per-join analysis; join-edge
// work only — selections, aggregation and dimension prep are excluded).
// For parallel runs the attribution sums work across tiles. The map is a
// defensive copy: callers cannot alias the executor's live accounting
// across runs.
func (c *Castle) PerJoinCycles() map[string]int64 {
	b := c.last.Load()
	if b == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(b.perJoin))
	for k, v := range b.perJoin {
		out[k] = v
	}
	return out
}

// SetTelemetry attaches an observability pipeline for subsequent Runs:
// operator spans nest under parent (typically the caller's "execute"
// span), and run-level metrics are recorded into tel. Pass nils to detach.
// Not safe to call while a run is in flight.
func (c *Castle) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	c.tel = tel
	c.parent = parent
}

// Breakdown returns the last Run's per-operator cycle breakdown (the
// EXPLAIN ANALYZE surface). The operator rows partition the run's total
// cycles exactly; parallel runs report per-tile sweep work plus an
// explicit negative "parallel-overlap" credit for the cycles hidden under
// the critical tile. Returns a copy; nil before the first Run.
func (c *Castle) Breakdown() *telemetry.Breakdown {
	b := c.last.Load()
	if b == nil {
		return nil
	}
	return b.breakdown.Clone()
}

// ParallelStats returns the last run's sweep execution profile (zero value
// before the first run). Slices are defensive copies.
func (c *Castle) ParallelStats() ParallelStats {
	b := c.last.Load()
	if b == nil {
		return ParallelStats{}
	}
	var sum, max int64
	for _, cy := range b.tileCycles {
		sum += cy
		if cy > max {
			max = cy
		}
	}
	return ParallelStats{
		Tiles:         b.tiles,
		TileCycles:    append([]int64(nil), b.tileCycles...),
		TileRows:      append([]int64(nil), b.tileRows...),
		MergeCycles:   b.mergeCycles,
		ElapsedCycles: b.elapsed,
		WorkCycles:    b.elapsed + (sum - max),
	}
}

// Run executes a physical plan and returns the result relation. Cycle and
// traffic accounting accumulates on the engine; callers snapshot
// eng.Stats() around Run.
func (c *Castle) Run(p *plan.Physical, db *storage.Database) *Result {
	res, _ := c.RunContext(context.Background(), p, db)
	return res
}

// RunContext is Run with cancellation: ctx is checked at operator
// boundaries (each dimension prep, each fact partition, and each operator
// within a partition), so a canceled or expired context stops the
// simulated work promptly and returns ctx.Err(). The engine keeps the
// cycles it charged before the cancellation point; abandoned runs simply
// stop accruing.
//
// With parallelism > 1 the fact sweep runs morsel-parallel: the engine
// forks into K tile engines, partition m executes on tile m%K, and the
// partial group accumulators merge in fixed tile order. Results are
// bit-identical to serial execution; the engine's Stats advance by the
// elapsed view (prep + max tile + merge) while per-tile work remains
// visible through ParallelStats and the breakdown.
func (c *Castle) RunContext(ctx context.Context, p *plan.Physical, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q := p.Query
	eng := c.eng
	cfg := eng.Config()
	run := &runBooks{
		perJoin:    make(map[string]int64, len(p.Joins)),
		prepCycles: make(map[string]int64, len(p.Joins)),
		prepRows:   make(map[string]int64, len(p.Joins)),
	}
	runStart := eng.TotalCycles()

	camCapable := cfg.EnableADL
	// Queries whose aggregates need vv arithmetic (SUM(a*b)) run their
	// aggregation phase in GP mode; everything else stays in one layout.
	needGPArith := false
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			needGPArith = true
		}
	}

	// Phase 0: filter dimensions on CAPE and compact qualifying keys and
	// attributes to values arrays (Figure 4).
	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}
	dims := make([]dimSide, len(p.Joins))
	for i, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := c.parent.Child("prep:" + e.Dim)
		before := eng.TotalCycles()
		dims[i] = capePrepareDim(eng, c.cat, q, e, db)
		cy := eng.TotalCycles() - before
		run.prepCycles[e.Dim] = cy
		run.prepRows[e.Dim] = int64(len(dims[i].keys))
		sp.SetInt("cycles", cy)
		sp.SetInt("rows_out", int64(len(dims[i].keys)))
		sp.SetInt("rows_in", int64(dims[i].totalRows))
		sp.End()
	}

	// Fact sweep: serial on this engine, or morsel-parallel across forked
	// tiles.
	fact := db.MustTable(q.Fact)
	factRows := fact.Rows()
	maxvl := cfg.MAXVL
	parts := (factRows + maxvl - 1) / maxvl

	k := int(c.par.Load())
	if k < 1 || parts < 1 {
		k = 1
	}
	if k > parts && parts > 0 {
		// Never fork more tiles than there are morsels to run on them.
		k = parts
	}
	run.tiles = k

	acc := newGroupAcc(q.Aggs)

	sweep := c.parent.Child("fact-sweep")
	sweepStart := eng.TotalCycles()
	if k == 1 {
		s := &tileSweep{cat: c.cat, opts: c.opts, eng: eng, acc: acc, perJoin: run.perJoin, span: sweep}
		for base := 0; base < factRows; base += maxvl {
			vl := factRows - base
			if vl > maxvl {
				vl = maxvl
			}
			if err := s.runPartition(ctx, p, db, dims, base, vl, needGPArith, camCapable); err != nil {
				return nil, err
			}
			if camCapable {
				// Next partition returns to CAM mode for selections/joins.
				eng.SetLayout(cape.CAMMode)
			}
		}
		if !c.opts.Fusion {
			s.chargeFissionOverhead(p, parts, maxvl)
		}
		run.filterCycles, run.aggCycles = s.filterCycles, s.aggCycles
	} else {
		if err := c.runParallelSweep(ctx, run, p, db, dims, factRows, parts, maxvl, k,
			needGPArith, camCapable, acc, sweep); err != nil {
			return nil, err
		}
	}
	sweep.SetInt("cycles", eng.TotalCycles()-sweepStart)
	sweep.SetInt("rows", int64(factRows))
	sweep.SetInt("partitions", int64(parts))
	sweep.SetInt("tiles", int64(k))
	sweep.End()

	if c.streaming.Load() && factRows > 0 {
		resident := factRows
		if resident > maxvl {
			resident = maxvl
		}
		run.stream = StreamStats{
			Batches:        int64(parts),
			PeakBatchBytes: int64(k) * int64(4*resident*factSweepCols(q)),
		}
	}

	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	res := acc.result(q)
	run.elapsed = eng.TotalCycles() - runStart
	c.finishBreakdown(run, p, int64(factRows), int64(len(res.Rows)))
	c.recordRunMetrics(p, db, int64(factRows))
	c.last.Store(run)
	return res, nil
}

// runParallelSweep forks the engine into k tiles and executes the fact
// sweep morsel-parallel: partition m runs on tile m%k (a static assignment
// keeps every tile's charge sequence deterministic), each tile accumulates
// into its own partial groupAcc, and the partials merge into acc in fixed
// tile order on the primary engine's CP. After the sweep the parent engine
// absorbs the critical tile's Stats (elapsed view) and every tile's memory
// traffic (work view).
func (c *Castle) runParallelSweep(ctx context.Context, run *runBooks, p *plan.Physical,
	db *storage.Database, dims []dimSide, factRows, parts, maxvl, k int,
	needGPArith, camCapable bool, acc *groupAcc, sweep *telemetry.Span) error {

	eng := c.eng
	q := p.Query
	group := eng.Fork(k)

	sweeps := make([]*tileSweep, k)
	for i, t := range group.Tiles() {
		if c.tel != nil {
			// Tile hooks stream live, so telemetry counters accumulate
			// work cycles (the sum over tiles), not elapsed.
			AttachEngineTelemetry(t, c.tel)
		}
		sweeps[i] = &tileSweep{
			cat:     c.cat,
			opts:    c.opts,
			eng:     t,
			acc:     newGroupAcc(q.Aggs),
			perJoin: make(map[string]int64, len(p.Joins)),
			span:    sweep.Child(fmt.Sprintf("tile%d", i)),
		}
	}

	rows := make([]int64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			s := sweeps[ti]
			defer s.span.End()
			for pi := ti; pi < parts; pi += k {
				base := pi * maxvl
				vl := factRows - base
				if vl > maxvl {
					vl = maxvl
				}
				if err := s.runPartition(ctx, p, db, dims, base, vl, needGPArith, camCapable); err != nil {
					errs[ti] = err
					return
				}
				if camCapable {
					s.eng.SetLayout(cape.CAMMode)
				}
				rows[ti] += int64(vl)
			}
			if !c.opts.Fusion {
				s.chargeFissionOverhead(p, (parts-ti+k-1)/k, maxvl)
			}
			s.span.SetInt("cycles", s.eng.TotalCycles())
			s.span.SetInt("rows", rows[ti])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Fold the tiles back into the parent: elapsed advances by the
	// critical tile, traffic by the sum.
	run.tileCycles = group.Merge()
	run.tileRows = rows
	for _, s := range sweeps {
		for d, cy := range s.perJoin {
			run.perJoin[d] += cy
		}
		run.filterCycles += s.filterCycles
		run.aggCycles += s.aggCycles
	}

	// CP-side merge of the per-tile partial group tables, in fixed tile
	// order so the accumulated result is deterministic.
	msp := sweep.Child("merge")
	mergeStart := eng.TotalCycles()
	var partialRows int64
	for _, s := range sweeps {
		acc.merge(s.acc)
		partialRows += int64(len(s.acc.order))
	}
	eng.Scalar(mergeScalarsPerRow * partialRows)
	eng.CPAccess(partialRows, int64(len(acc.order))*16)
	run.mergeCycles = eng.TotalCycles() - mergeStart
	msp.SetInt("cycles", run.mergeCycles)
	msp.SetInt("rows", partialRows)
	msp.End()
	return nil
}

// finishBreakdown closes the per-operator books for the last Run. The
// rows partition the total exactly: whatever the phase regions did not
// cover (layout switches, vsetvl, fork dispatch, inter-phase scalars)
// lands in an explicit "overhead" row. Parallel runs replace the serial
// filter/join/aggregate rows with per-tile sweep work plus a negative
// "parallel-overlap" credit — tiles run concurrently, so only the critical
// tile's cycles are elapsed time — and a "merge" row.
func (c *Castle) finishBreakdown(run *runBooks, p *plan.Physical, factRows, groups int64) {
	b := &telemetry.Breakdown{Device: "CAPE", TotalCycles: run.elapsed}
	var covered int64
	for _, e := range p.Joins {
		cy := run.prepCycles[e.Dim]
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "prep:" + e.Dim, Device: "CAPE", Cycles: cy, Rows: run.prepRows[e.Dim]})
		covered += cy
	}
	if run.tileCycles == nil {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "filter", Device: "CAPE", Cycles: run.filterCycles, Rows: factRows})
		covered += run.filterCycles
		for _, e := range p.Joins {
			cy := run.perJoin[e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "join:" + e.Dim, Device: "CAPE", Cycles: cy, Rows: run.prepRows[e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "aggregate", Device: "CAPE", Cycles: run.aggCycles, Rows: groups})
		covered += run.aggCycles
	} else {
		var sum, max int64
		for t, cy := range run.tileCycles {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: fmt.Sprintf("sweep[%d]", t), Device: "CAPE", Cycles: cy, Rows: run.tileRows[t]})
			sum += cy
			if cy > max {
				max = cy
			}
			covered += cy
		}
		// The tiles overlapped: only the critical tile is elapsed time, so
		// credit the hidden work back with an explicit negative row.
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "parallel-overlap", Device: "CAPE", Cycles: max - sum, Rows: -1})
		covered += max - sum
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "merge", Device: "CAPE", Cycles: run.mergeCycles, Rows: groups})
		covered += run.mergeCycles
	}
	b.Operators = append(b.Operators, telemetry.OperatorStats{
		Operator: "overhead", Device: "CAPE", Cycles: run.elapsed - covered, Rows: -1})
	run.breakdown = b
}

// recordRunMetrics updates run-level counters (rows scanned) on the
// attached registry; class-cycle counters stream live via the engine hook.
func (c *Castle) recordRunMetrics(p *plan.Physical, db *storage.Database, factRows int64) {
	if c.tel == nil {
		return
	}
	scanned := factRows
	for _, e := range p.Joins {
		scanned += int64(db.MustTable(e.Dim).Rows())
	}
	c.tel.Metrics().Counter(telemetry.MetricRowsScanned,
		"Rows scanned across fact and dimension tables.",
		telemetry.L("device", "cape")).Add(scanned)
}

// factSweepCols counts the distinct fact-aligned vectors one partition
// keeps CSB-resident during the fused sweep: predicate and foreign-key
// columns, fact group-by columns, aggregate inputs, and the materialized
// dimension attributes each join produces.
func factSweepCols(q *plan.Query) int {
	seen := make(map[string]bool)
	for _, pr := range q.FactPreds {
		seen[pr.Column] = true
	}
	for _, e := range q.Joins {
		seen[e.FactFK] = true
		for _, a := range e.NeedAttrs {
			seen[e.Dim+"."+a] = true
		}
	}
	for _, g := range q.GroupBy {
		if g.Table == q.Fact {
			seen[g.Column] = true
		}
	}
	for _, a := range q.Aggs {
		if a.A != "" {
			seen[a.A] = true
		}
		if a.B != "" {
			seen[a.B] = true
		}
	}
	return len(seen)
}

// colWidth returns the ABA bitwidth for a column from catalog statistics
// (0 = unknown, triggering embedded discovery).
func colWidth(cat *stats.Catalog, table, col string) int {
	if cat == nil {
		return 0
	}
	if cs, ok := cat.Column(table, col); ok {
		return cs.BitWidth
	}
	return 0
}
