package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/isa"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// CastleOptions tune the CAPE executor.
type CastleOptions struct {
	// Fusion enables operator fusion (§7.4): consecutive operators process
	// a CSB-resident partition back to back instead of materializing masks
	// through main memory between operator sweeps.
	Fusion bool
	// MKSMinKeys is the minimum probe-key batch size for which vmks is
	// emitted; smaller batches use vmseq.vx (§6.2: sub-cacheline batches
	// waste memory bandwidth). Zero selects the cacheline-derived default.
	MKSMinKeys int
	// NoBulkAggFastPath forces the literal per-group Algorithm 2 loop even
	// for single-column group-bys. The fast path computes identical
	// results and bills identical cycles; this switch exists so tests can
	// assert that equivalence.
	NoBulkAggFastPath bool
	// Parallelism is the number of CAPE tiles the fact sweep may fan out
	// across (§7.2's tiled deployment). Values <= 1 run the sweep serially
	// on the executor's engine; K > 1 forks K tile engines, dispatches
	// MAXVL-sized morsels round-robin, and merges the partial group
	// accumulators in fixed tile order, so results are bit-identical to
	// serial execution.
	Parallelism int
}

// DefaultCastleOptions returns the paper's configuration.
func DefaultCastleOptions() CastleOptions {
	return CastleOptions{Fusion: true}
}

// mergeScalarsPerRow is the CP cost of folding one partial group row into
// the merged result table — the same append/merge instruction count the
// serial Algorithm 2 loop bills per group.
const mergeScalarsPerRow = 12

// Castle executes physical plans on a CAPE core.
//
// All mutable per-run accounting lives in a run-scoped book that is
// published atomically when a run finishes, so the executor itself is
// reentrant: nothing on the receiver is written mid-run. The underlying
// cape.Engine still executes one run at a time — use one engine (and one
// Castle) per in-flight query, as the server's tile pool does.
type Castle struct {
	eng  *cape.Engine
	cat  *stats.Catalog
	opts CastleOptions

	// tel and parent carry the observability pipeline: operator spans nest
	// under parent (the caller's "execute" span). Both may be nil; span
	// calls on nil receivers are no-ops, so a disabled pipeline costs only
	// nil checks.
	tel    *telemetry.Telemetry
	parent *telemetry.Span

	// last is the most recent run's closed books (nil before the first
	// run). Accessors snapshot from here.
	last atomic.Pointer[runBooks]
}

// runBooks is the run-scoped accounting of one RunContext invocation: the
// per-join attribution, per-phase cycle tallies, and the finished
// breakdown. Exactly one run writes a given runBooks; it is published to
// Castle.last only after the run completes.
type runBooks struct {
	perJoin      map[string]int64
	prepCycles   map[string]int64
	prepRows     map[string]int64
	filterCycles int64
	aggCycles    int64

	// Parallel-sweep accounting (tileCycles nil for serial runs).
	tiles       int
	tileCycles  []int64
	tileRows    []int64
	mergeCycles int64
	elapsed     int64

	breakdown *telemetry.Breakdown
}

// ParallelStats describes how the last run's fact sweep executed: how many
// tiles it occupied, each tile's work, and the two cycle views — elapsed
// (prep + max over tiles + merge) versus work (every tile cycle counts,
// the energy/§6.3 view).
type ParallelStats struct {
	// Tiles is the number of tile engines the sweep used (1 = serial).
	Tiles int
	// TileCycles is each tile's sweep work in tile order (nil when serial).
	TileCycles []int64
	// TileRows is the fact rows each tile processed (nil when serial).
	TileRows []int64
	// MergeCycles is the CP-side merge of the partial group accumulators.
	MergeCycles int64
	// ElapsedCycles is the run's simulated elapsed time (what the engine's
	// Stats advanced by).
	ElapsedCycles int64
	// WorkCycles is the total work: elapsed plus the overlapped tile
	// cycles hidden under the critical tile. Equals ElapsedCycles for
	// serial runs.
	WorkCycles int64
}

// NewCastle wraps a CAPE engine. The statistics catalog supplies column
// bitwidths to ABA (§5.1); pass nil to force embedded bitwidth discovery.
func NewCastle(eng *cape.Engine, cat *stats.Catalog, opts CastleOptions) *Castle {
	return &Castle{eng: eng, cat: cat, opts: opts}
}

// Engine returns the underlying CAPE engine (for cycle/traffic inspection).
func (c *Castle) Engine() *cape.Engine { return c.eng }

// SetParallelism sets how many tiles subsequent Runs' fact sweeps may fan
// out across (see CastleOptions.Parallelism). Not safe to call while a run
// is in flight.
func (c *Castle) SetParallelism(k int) { c.opts.Parallelism = k }

// PerJoinCycles returns the cycles attributed to each join edge of the
// last Run, keyed by dimension name (§7.2's per-join analysis; join-edge
// work only — selections, aggregation and dimension prep are excluded).
// For parallel runs the attribution sums work across tiles. The map is a
// defensive copy: callers cannot alias the executor's live accounting
// across runs.
func (c *Castle) PerJoinCycles() map[string]int64 {
	b := c.last.Load()
	if b == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(b.perJoin))
	for k, v := range b.perJoin {
		out[k] = v
	}
	return out
}

// SetTelemetry attaches an observability pipeline for subsequent Runs:
// operator spans nest under parent (typically the caller's "execute"
// span), and run-level metrics are recorded into tel. Pass nils to detach.
// Not safe to call while a run is in flight.
func (c *Castle) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	c.tel = tel
	c.parent = parent
}

// Breakdown returns the last Run's per-operator cycle breakdown (the
// EXPLAIN ANALYZE surface). The operator rows partition the run's total
// cycles exactly; parallel runs report per-tile sweep work plus an
// explicit negative "parallel-overlap" credit for the cycles hidden under
// the critical tile. Returns a copy; nil before the first Run.
func (c *Castle) Breakdown() *telemetry.Breakdown {
	b := c.last.Load()
	if b == nil {
		return nil
	}
	return b.breakdown.Clone()
}

// ParallelStats returns the last run's sweep execution profile (zero value
// before the first run). Slices are defensive copies.
func (c *Castle) ParallelStats() ParallelStats {
	b := c.last.Load()
	if b == nil {
		return ParallelStats{}
	}
	var sum, max int64
	for _, cy := range b.tileCycles {
		sum += cy
		if cy > max {
			max = cy
		}
	}
	return ParallelStats{
		Tiles:         b.tiles,
		TileCycles:    append([]int64(nil), b.tileCycles...),
		TileRows:      append([]int64(nil), b.tileRows...),
		MergeCycles:   b.mergeCycles,
		ElapsedCycles: b.elapsed,
		WorkCycles:    b.elapsed + (sum - max),
	}
}

// dimSide is a filtered dimension prepared for probing.
type dimSide struct {
	edge plan.JoinEdge
	// keys are the qualifying dimension keys.
	keys []uint32
	// attrs[i] are the attribute tuples aligned with keys (one slice per
	// NeedAttrs entry).
	attrs [][]uint32
	// groups batch keys by attribute tuple so a whole group can probe with
	// one vmks and materialize with one vmerge per attribute.
	groups []attrGroup
	// totalRows is the dimension's unfiltered cardinality.
	totalRows int
}

type attrGroup struct {
	attrVals []uint32
	keys     []uint32
}

// Run executes a physical plan and returns the result relation. Cycle and
// traffic accounting accumulates on the engine; callers snapshot
// eng.Stats() around Run.
func (c *Castle) Run(p *plan.Physical, db *storage.Database) *Result {
	res, _ := c.RunContext(context.Background(), p, db)
	return res
}

// RunContext is Run with cancellation: ctx is checked at operator
// boundaries (each dimension prep, each fact partition, and each operator
// within a partition), so a canceled or expired context stops the
// simulated work promptly and returns ctx.Err(). The engine keeps the
// cycles it charged before the cancellation point; abandoned runs simply
// stop accruing.
//
// With opts.Parallelism > 1 the fact sweep runs morsel-parallel: the
// engine forks into K tile engines, partition m executes on tile m%K, and
// the partial group accumulators merge in fixed tile order. Results are
// bit-identical to serial execution; the engine's Stats advance by the
// elapsed view (prep + max tile + merge) while per-tile work remains
// visible through ParallelStats and the breakdown.
func (c *Castle) RunContext(ctx context.Context, p *plan.Physical, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q := p.Query
	eng := c.eng
	cfg := eng.Config()
	run := &runBooks{
		perJoin:    make(map[string]int64, len(p.Joins)),
		prepCycles: make(map[string]int64, len(p.Joins)),
		prepRows:   make(map[string]int64, len(p.Joins)),
	}
	runStart := eng.TotalCycles()

	camCapable := cfg.EnableADL
	// Queries whose aggregates need vv arithmetic (SUM(a*b)) run their
	// aggregation phase in GP mode; everything else stays in one layout.
	needGPArith := false
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			needGPArith = true
		}
	}

	// Phase 0: filter dimensions on CAPE and compact qualifying keys and
	// attributes to values arrays (Figure 4).
	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}
	dims := make([]dimSide, len(p.Joins))
	for i, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := c.parent.Child("prep:" + e.Dim)
		before := eng.TotalCycles()
		dims[i] = c.prepareDim(q, e, db)
		cy := eng.TotalCycles() - before
		run.prepCycles[e.Dim] = cy
		run.prepRows[e.Dim] = int64(len(dims[i].keys))
		sp.SetInt("cycles", cy)
		sp.SetInt("rows_out", int64(len(dims[i].keys)))
		sp.SetInt("rows_in", int64(dims[i].totalRows))
		sp.End()
	}

	// Fact sweep: serial on this engine, or morsel-parallel across forked
	// tiles.
	fact := db.MustTable(q.Fact)
	factRows := fact.Rows()
	maxvl := cfg.MAXVL
	parts := (factRows + maxvl - 1) / maxvl

	k := c.opts.Parallelism
	if k < 1 || parts < 1 {
		k = 1
	}
	if k > parts && parts > 0 {
		// Never fork more tiles than there are morsels to run on them.
		k = parts
	}
	run.tiles = k

	acc := newGroupAcc(q.Aggs)

	sweep := c.parent.Child("fact-sweep")
	sweepStart := eng.TotalCycles()
	if k == 1 {
		s := &tileSweep{c: c, eng: eng, acc: acc, perJoin: run.perJoin, span: sweep}
		for base := 0; base < factRows; base += maxvl {
			vl := factRows - base
			if vl > maxvl {
				vl = maxvl
			}
			if err := s.runPartition(ctx, p, db, dims, base, vl, needGPArith, camCapable); err != nil {
				return nil, err
			}
			if camCapable {
				// Next partition returns to CAM mode for selections/joins.
				eng.SetLayout(cape.CAMMode)
			}
		}
		if !c.opts.Fusion {
			s.chargeFissionOverhead(p, parts, maxvl)
		}
		run.filterCycles, run.aggCycles = s.filterCycles, s.aggCycles
	} else {
		if err := c.runParallelSweep(ctx, run, p, db, dims, factRows, parts, maxvl, k,
			needGPArith, camCapable, acc, sweep); err != nil {
			return nil, err
		}
	}
	sweep.SetInt("cycles", eng.TotalCycles()-sweepStart)
	sweep.SetInt("rows", int64(factRows))
	sweep.SetInt("partitions", int64(parts))
	sweep.SetInt("tiles", int64(k))
	sweep.End()

	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	res := acc.result(q)
	run.elapsed = eng.TotalCycles() - runStart
	c.finishBreakdown(run, p, int64(factRows), int64(len(res.Rows)))
	c.recordRunMetrics(p, db, int64(factRows))
	c.last.Store(run)
	return res, nil
}

// runParallelSweep forks the engine into k tiles and executes the fact
// sweep morsel-parallel: partition m runs on tile m%k (a static assignment
// keeps every tile's charge sequence deterministic), each tile accumulates
// into its own partial groupAcc, and the partials merge into acc in fixed
// tile order on the primary engine's CP. After the sweep the parent engine
// absorbs the critical tile's Stats (elapsed view) and every tile's memory
// traffic (work view).
func (c *Castle) runParallelSweep(ctx context.Context, run *runBooks, p *plan.Physical,
	db *storage.Database, dims []dimSide, factRows, parts, maxvl, k int,
	needGPArith, camCapable bool, acc *groupAcc, sweep *telemetry.Span) error {

	eng := c.eng
	q := p.Query
	group := eng.Fork(k)

	sweeps := make([]*tileSweep, k)
	for i, t := range group.Tiles() {
		if c.tel != nil {
			// Tile hooks stream live, so telemetry counters accumulate
			// work cycles (the sum over tiles), not elapsed.
			AttachEngineTelemetry(t, c.tel)
		}
		sweeps[i] = &tileSweep{
			c:       c,
			eng:     t,
			acc:     newGroupAcc(q.Aggs),
			perJoin: make(map[string]int64, len(p.Joins)),
			span:    sweep.Child(fmt.Sprintf("tile%d", i)),
		}
	}

	rows := make([]int64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			s := sweeps[ti]
			defer s.span.End()
			for pi := ti; pi < parts; pi += k {
				base := pi * maxvl
				vl := factRows - base
				if vl > maxvl {
					vl = maxvl
				}
				if err := s.runPartition(ctx, p, db, dims, base, vl, needGPArith, camCapable); err != nil {
					errs[ti] = err
					return
				}
				if camCapable {
					s.eng.SetLayout(cape.CAMMode)
				}
				rows[ti] += int64(vl)
			}
			if !c.opts.Fusion {
				s.chargeFissionOverhead(p, (parts-ti+k-1)/k, maxvl)
			}
			s.span.SetInt("cycles", s.eng.TotalCycles())
			s.span.SetInt("rows", rows[ti])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Fold the tiles back into the parent: elapsed advances by the
	// critical tile, traffic by the sum.
	run.tileCycles = group.Merge()
	run.tileRows = rows
	for _, s := range sweeps {
		for d, cy := range s.perJoin {
			run.perJoin[d] += cy
		}
		run.filterCycles += s.filterCycles
		run.aggCycles += s.aggCycles
	}

	// CP-side merge of the per-tile partial group tables, in fixed tile
	// order so the accumulated result is deterministic.
	msp := sweep.Child("merge")
	mergeStart := eng.TotalCycles()
	var partialRows int64
	for _, s := range sweeps {
		acc.merge(s.acc)
		partialRows += int64(len(s.acc.order))
	}
	eng.Scalar(mergeScalarsPerRow * partialRows)
	eng.CPAccess(partialRows, int64(len(acc.order))*16)
	run.mergeCycles = eng.TotalCycles() - mergeStart
	msp.SetInt("cycles", run.mergeCycles)
	msp.SetInt("rows", partialRows)
	msp.End()
	return nil
}

// finishBreakdown closes the per-operator books for the last Run. The
// rows partition the total exactly: whatever the phase regions did not
// cover (layout switches, vsetvl, fork dispatch, inter-phase scalars)
// lands in an explicit "overhead" row. Parallel runs replace the serial
// filter/join/aggregate rows with per-tile sweep work plus a negative
// "parallel-overlap" credit — tiles run concurrently, so only the critical
// tile's cycles are elapsed time — and a "merge" row.
func (c *Castle) finishBreakdown(run *runBooks, p *plan.Physical, factRows, groups int64) {
	b := &telemetry.Breakdown{Device: "CAPE", TotalCycles: run.elapsed}
	var covered int64
	for _, e := range p.Joins {
		cy := run.prepCycles[e.Dim]
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "prep:" + e.Dim, Cycles: cy, Rows: run.prepRows[e.Dim]})
		covered += cy
	}
	if run.tileCycles == nil {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "filter", Cycles: run.filterCycles, Rows: factRows})
		covered += run.filterCycles
		for _, e := range p.Joins {
			cy := run.perJoin[e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "join:" + e.Dim, Cycles: cy, Rows: run.prepRows[e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "aggregate", Cycles: run.aggCycles, Rows: groups})
		covered += run.aggCycles
	} else {
		var sum, max int64
		for t, cy := range run.tileCycles {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: fmt.Sprintf("sweep[%d]", t), Cycles: cy, Rows: run.tileRows[t]})
			sum += cy
			if cy > max {
				max = cy
			}
			covered += cy
		}
		// The tiles overlapped: only the critical tile is elapsed time, so
		// credit the hidden work back with an explicit negative row.
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "parallel-overlap", Cycles: max - sum, Rows: -1})
		covered += max - sum
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "merge", Cycles: run.mergeCycles, Rows: groups})
		covered += run.mergeCycles
	}
	b.Operators = append(b.Operators, telemetry.OperatorStats{
		Operator: "overhead", Cycles: run.elapsed - covered, Rows: -1})
	run.breakdown = b
}

// recordRunMetrics updates run-level counters (rows scanned) on the
// attached registry; class-cycle counters stream live via the engine hook.
func (c *Castle) recordRunMetrics(p *plan.Physical, db *storage.Database, factRows int64) {
	if c.tel == nil {
		return
	}
	scanned := factRows
	for _, e := range p.Joins {
		scanned += int64(db.MustTable(e.Dim).Rows())
	}
	c.tel.Metrics().Counter(telemetry.MetricRowsScanned,
		"Rows scanned across fact and dimension tables.",
		telemetry.L("device", "cape")).Add(scanned)
}

// regAlloc hands out CSB vector registers.
type regAlloc struct {
	next  int
	max   int
	byCol map[string]cape.VReg
}

func newRegAlloc(n int) *regAlloc {
	return &regAlloc{max: n, byCol: make(map[string]cape.VReg)}
}

func (r *regAlloc) fresh() cape.VReg {
	if r.next >= r.max {
		panic(fmt.Sprintf("exec: out of CSB vector registers (%d)", r.max))
	}
	v := cape.VReg(r.next)
	r.next++
	return v
}

func (r *regAlloc) forCol(name string) (cape.VReg, bool) {
	if v, ok := r.byCol[name]; ok {
		return v, true
	}
	v := r.fresh()
	r.byCol[name] = v
	return v, false
}

// tileSweep is one engine's share of the fact sweep and its accounting: the
// serial path runs a single sweep over the executor's own engine; the
// parallel path runs one per forked tile, each on its own goroutine. A
// sweep only reads shared state (catalog, options, storage, prepared
// dimensions) and writes its own fields, which is what makes the fan-out
// race-free.
type tileSweep struct {
	c   *Castle
	eng *cape.Engine
	acc *groupAcc

	perJoin      map[string]int64
	filterCycles int64
	aggCycles    int64

	// span hosts the per-operator child spans: the "fact-sweep" span when
	// serial, this tile's "tileN" span when parallel.
	span *telemetry.Span
}

// runPartition executes the fused operator pipeline over one fact
// partition: selections -> joins (right-deep then left-deep segments) ->
// aggregation (Algorithm 2). Cancellation is checked at every operator
// boundary within the partition.
func (s *tileSweep) runPartition(ctx context.Context, p *plan.Physical, db *storage.Database,
	dims []dimSide, base, vl int, needGPArith, camCapable bool) error {

	q := p.Query
	eng := s.eng
	fact := db.MustTable(q.Fact)
	eng.SetVL(vl)

	regs := newRegAlloc(eng.Config().NumVRegs)
	loadFactCol := func(name string) cape.VReg {
		r, cached := regs.forCol(name)
		if !cached {
			col := fact.MustColumn(name)
			eng.Load(r, col.Data[base:base+vl], s.c.colWidth(q.Fact, name))
		}
		return r
	}

	// --- Selections (Figure 4): per-predicate masks combined with mask ops.
	spf := s.span.Child("filter")
	before := eng.TotalCycles()
	eng.Scalar(8) // loop setup
	var rowMask *bitvec.Vector
	for _, pr := range q.FactPreds {
		m := predMask(eng, loadFactCol(pr.Column), pr)
		if rowMask == nil {
			rowMask = m
		} else {
			rowMask = eng.MaskAnd(rowMask, m)
		}
	}
	if rowMask == nil {
		rowMask = eng.MaskInit(true)
	}
	cy := eng.TotalCycles() - before
	s.filterCycles += cy
	spf.SetInt("cycles", cy)
	spf.SetInt("rows", int64(vl))
	spf.End()

	// --- Right-deep joins: filtered dimensions probe the resident fact
	// partition (Algorithm 1 with the probe side swapped, §3.2).
	attrRegs := make(map[string]cape.VReg) // "dim.attr" -> fact-aligned vector
	for di := 0; di < p.Switch; di++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := dims[di]
		spj := s.span.Child("join:" + d.edge.Dim)
		before := eng.TotalCycles()
		fkReg := loadFactCol(d.edge.FactFK)
		joinMask := s.probeFactWithDim(fkReg, d, regs, attrRegs)
		rowMask = eng.MaskAnd(rowMask, joinMask)
		cy := eng.TotalCycles() - before
		s.perJoin[d.edge.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("probe_keys", int64(len(d.keys)))
		spj.End()
	}

	// --- Left-deep segment: surviving intermediate rows probe
	// CSB-resident dimension partitions.
	for di := p.Switch; di < len(p.Joins); di++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := dims[di]
		spj := s.span.Child("join:" + d.edge.Dim)
		before := eng.TotalCycles()
		loadFactCol(d.edge.FactFK) // FK column resident for the CP to read
		rowMask = s.probeDimWithRows(fact, d, base, vl, rowMask, regs, attrRegs)
		cy := eng.TotalCycles() - before
		s.perJoin[d.edge.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("dim_rows", int64(len(d.keys)))
		spj.End()
	}

	// --- Aggregation (Algorithm 2), fused on the partition's rowMask.
	if err := ctx.Err(); err != nil {
		return err
	}
	spa := s.span.Child("aggregate")
	before = eng.TotalCycles()
	if needGPArith && camCapable {
		// Bit-serial vv arithmetic requires the bitsliced layout: switch,
		// carry the row mask across with vrelayout, and reload the
		// aggregate input columns in GP layout (§5.2).
		eng.SetLayout(cape.GPMode)
		rowMask = eng.Relayout(rowMask)
		regs = newRegAlloc(eng.Config().NumVRegs)
		if len(q.GroupBy) > 0 {
			panic("exec: GROUP BY with vv-arithmetic aggregates is outside SSB's shape")
		}
	}

	if len(q.GroupBy) == 0 {
		s.aggregateScalar(q, fact, base, vl, rowMask, regs)
	} else {
		s.aggregateGroups(q, fact, base, vl, rowMask, regs, attrRegs, loadFactCol)
	}
	cy = eng.TotalCycles() - before
	s.aggCycles += cy
	spa.SetInt("cycles", cy)
	spa.End()
	return nil
}

// chargeDistinctLoop bills the nested Algorithm-2-style loop that counts a
// column's distinct values under a mask on the AP: per distinct value one
// vfirst, one vextract, one search, and one mask XOR retire the value's
// rows (plus loop scalars); one final vfirst finds the exhausted mask.
func (s *tileSweep) chargeDistinctLoop(distinct int64, width int) {
	eng := s.eng
	eng.Charge(isa.OpVMFirst, 32, distinct+1)
	eng.Charge(isa.OpVExtract, 32, distinct)
	eng.Charge(isa.OpVMSeqVX, width, distinct)
	eng.Charge(isa.OpVMXor, 32, distinct)
	eng.Scalar(6 * distinct)
}

// distinctUnder gathers the distinct values of a fact column among the
// masked rows of the current partition (the functional result of the
// charged loop above). The result is sorted ascending: a canonical order
// that does not depend on row order within the partition, so repeated runs
// and different partitionings hand identical value lists downstream.
func distinctUnder(col []uint32, base int, mask *bitvec.Vector) []uint32 {
	seen := make(map[uint32]struct{})
	out := make([]uint32, 0, 16)
	for i := mask.First(); i != -1; i = mask.NextAfter(i) {
		v := col[base+i]
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// colWidth returns the ABA bitwidth for a column from catalog statistics
// (0 = unknown, triggering embedded discovery).
func (c *Castle) colWidth(table, col string) int {
	if c.cat == nil {
		return 0
	}
	if cs, ok := c.cat.Column(table, col); ok {
		return cs.BitWidth
	}
	return 0
}

// predMask evaluates one predicate on a loaded column.
func predMask(eng *cape.Engine, r cape.VReg, pr plan.Predicate) *bitvec.Vector {
	if pr.Never {
		return eng.MaskInit(false)
	}
	switch pr.Op {
	case plan.PredEQ:
		return eng.Search(r, pr.Value)
	case plan.PredNE:
		return eng.MaskNot(eng.Search(r, pr.Value))
	case plan.PredLT:
		return eng.Compare(cape.CmpLT, r, pr.Value)
	case plan.PredLE:
		return eng.Compare(cape.CmpLE, r, pr.Value)
	case plan.PredGT:
		return eng.Compare(cape.CmpGT, r, pr.Value)
	case plan.PredGE:
		return eng.Compare(cape.CmpGE, r, pr.Value)
	case plan.PredBetween:
		lo := eng.Compare(cape.CmpGE, r, pr.Lo)
		hi := eng.Compare(cape.CmpLE, r, pr.Hi)
		return eng.MaskAnd(lo, hi)
	case plan.PredIn:
		// A disjunction of searches (Figure 4's m1 OR m2).
		var m *bitvec.Vector
		for _, v := range pr.Values {
			sm := eng.Search(r, v)
			if m == nil {
				m = sm
			} else {
				m = eng.MaskOr(m, sm)
			}
		}
		if m == nil {
			return eng.MaskInit(false)
		}
		return m
	}
	panic(fmt.Sprintf("exec: unhandled predicate %v", pr))
}

// mksThreshold returns the minimum batch size worth a vmks.
func (s *tileSweep) mksThreshold() int {
	if s.c.opts.MKSMinKeys > 0 {
		return s.c.opts.MKSMinKeys
	}
	// One cacheline of keys: smaller fetches waste bandwidth (§6.2).
	return s.eng.Config().Mem.LineBytes / 4
}

// probeFactWithDim probes the resident fact FK column with every qualifying
// key of a filtered dimension, returning the semi-join mask and
// materializing needed attributes via bulk updates.
func (s *tileSweep) probeFactWithDim(fkReg cape.VReg, d dimSide, regs *regAlloc, attrRegs map[string]cape.VReg) *bitvec.Vector {
	eng := s.eng
	useMKS := eng.Config().EnableMKS

	// Attribute target vectors, zero-initialised per partition.
	targets := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i, a := range d.edge.NeedAttrs {
		key := d.edge.Dim + "." + a
		r, ok := attrRegs[key]
		if !ok {
			r = regs.fresh()
			attrRegs[key] = r
		}
		eng.Broadcast(r, 0)
		targets[i] = r
	}

	searchKeys := func(keys []uint32) *bitvec.Vector {
		if useMKS && len(keys) >= s.mksThreshold() {
			eng.Scalar(4)
			return eng.MultiKeySearch(fkReg, keys)
		}
		eng.Scalar(int64(3 * len(keys))) // key load + loop control per vmseq.vx
		return eng.SearchBatch(fkReg, keys)
	}

	if len(d.edge.NeedAttrs) == 0 {
		return searchKeys(d.keys)
	}
	// Group-aware probing: all keys sharing an attribute tuple probe as
	// one batch, then a single predicated bulk update per attribute
	// materializes the tuple into the fact-aligned vectors.
	var join *bitvec.Vector
	for _, g := range d.groups {
		m := searchKeys(g.keys)
		for i, r := range targets {
			eng.Merge(r, m, g.attrVals[i])
		}
		if join == nil {
			join = m
		} else {
			join = eng.MaskOr(join, m)
		}
	}
	if join == nil {
		return eng.MaskInit(false)
	}
	return join
}

// probeDimWithRows implements the left-deep direction: each surviving fact
// row's foreign key probes CSB-resident partitions of the filtered
// dimension; rows without a match are cleared from the row mask, and needed
// attributes are fetched via vfirst+extract.
func (s *tileSweep) probeDimWithRows(fact *storage.Table, d dimSide, base, factVL int,
	rowMask *bitvec.Vector, regs *regAlloc, attrRegs map[string]cape.VReg) *bitvec.Vector {

	eng := s.eng
	maxvl := eng.Config().MAXVL
	fkData := fact.MustColumn(d.edge.FactFK).Data

	// Compact the surviving rows to a CP-side values array (Figure 4).
	survivors := rowMask.Indices()
	eng.Scalar(int64(2 * len(survivors))) // compaction bookkeeping
	eng.ChargeStreamWrite(int64(4 * len(survivors)))

	keyReg := regs.fresh()
	attrSrc := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i := range d.edge.NeedAttrs {
		attrSrc[i] = regs.fresh()
	}
	targets := make([]cape.VReg, len(d.edge.NeedAttrs))
	for i, a := range d.edge.NeedAttrs {
		key := d.edge.Dim + "." + a
		r, ok := attrRegs[key]
		if !ok {
			r = regs.fresh()
			attrRegs[key] = r
			eng.SetVL(factVL)
			eng.Broadcast(r, 0)
		}
		targets[i] = r
	}

	matched := bitvec.New(factVL)
	rowAttr := make(map[int][]uint32, len(survivors))

	for off := 0; off < len(d.keys) || off == 0; off += maxvl {
		dvl := len(d.keys) - off
		if dvl > maxvl {
			dvl = maxvl
		}
		if dvl <= 0 {
			break
		}
		eng.SetVL(dvl)
		eng.Load(keyReg, d.keys[off:off+dvl], 0)
		for i := range attrSrc {
			eng.Load(attrSrc[i], d.attrs[i][off:off+dvl], 0)
		}
		for _, row := range survivors {
			fk := fkData[base+row]
			eng.Scalar(3)
			idx := eng.SearchFirst(keyReg, fk)
			if idx == -1 {
				continue
			}
			matched.Set(row)
			if len(attrSrc) > 0 {
				vals := make([]uint32, len(attrSrc))
				for i, r := range attrSrc {
					vals[i] = eng.Extract(r, idx)
				}
				rowAttr[row] = vals
			}
		}
	}

	eng.SetVL(factVL)
	newMask := rowMask.Clone().And(matched)
	eng.Scalar(2)

	// Materialize fetched attributes into the fact-aligned vectors with
	// single-row bulk updates.
	for row, vals := range rowAttr {
		if !newMask.Get(row) {
			continue
		}
		single := bitvec.New(factVL)
		single.Set(row)
		for i, r := range targets {
			eng.Merge(r, single, vals[i])
		}
	}
	return newMask
}

// aggregateScalar handles queries without GROUP BY: per-partition partial
// reductions merge into the CP-side accumulator.
func (s *tileSweep) aggregateScalar(q *plan.Query, fact *storage.Table, base, vl int,
	rowMask *bitvec.Vector, regs *regAlloc) {

	eng := s.eng
	acc := s.acc
	rows := int64(eng.MPopc(rowMask))
	if rows == 0 {
		return
	}
	loadCol := func(name string) cape.VReg {
		r, cached := regs.forCol(name)
		if !cached {
			eng.Load(r, fact.MustColumn(name).Data[base:base+vl], s.c.colWidth(q.Fact, name))
		}
		return r
	}
	vals := make([]int64, len(q.Aggs))
	for i, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggAvg:
			vals[i] = eng.RedSum(loadCol(a.A), rowMask)
		case plan.AggSumMul:
			ra, rb := loadCol(a.A), loadCol(a.B)
			tmp := regs.fresh()
			eng.MulVV(tmp, ra, rb)
			vals[i] = eng.RedSum(tmp, rowMask)
		case plan.AggSumSub:
			// sum(a-b) = sum(a) - sum(b): two predicated reductions and a
			// scalar subtract, avoiding bit-serial vv subtraction.
			vals[i] = eng.RedSum(loadCol(a.A), rowMask) - eng.RedSum(loadCol(a.B), rowMask)
			eng.Scalar(1)
		case plan.AggCount:
			vals[i] = rows
		case plan.AggMin:
			v, _ := eng.RedMin(loadCol(a.A), rowMask)
			vals[i] = int64(v)
		case plan.AggMax:
			v, _ := eng.RedMax(loadCol(a.A), rowMask)
			vals[i] = int64(v)
		case plan.AggCountDistinct:
			r := loadCol(a.A)
			values := distinctUnder(fact.MustColumn(a.A).Data, base, rowMask)
			s.chargeDistinctLoop(int64(len(values)), eng.RegWidth(r))
			acc.addDistinct(nil, i, values)
		}
		eng.Scalar(4)
	}
	acc.add(nil, vals, rows)
}

// aggregateGroups is Algorithm 2 generalised to composite group keys: the
// first unprocessed row identifies a group; one search per group column
// (ANDed) recovers all of the group's rows; predicated reductions compute
// the aggregates; XOR retires the group.
func (s *tileSweep) aggregateGroups(q *plan.Query, fact *storage.Table, base, vl int,
	rowMask *bitvec.Vector, regs *regAlloc, attrRegs map[string]cape.VReg,
	loadFactCol func(string) cape.VReg) {

	eng := s.eng
	acc := s.acc

	groupRegs := make([]cape.VReg, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			groupRegs[i] = loadFactCol(g.Column)
			continue
		}
		r, ok := attrRegs[g.Table+"."+g.Column]
		if !ok {
			panic("exec: group-by attribute " + g.String() + " was not materialized by any join")
		}
		groupRegs[i] = r
	}
	aggRegs := make([][2]cape.VReg, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			aggRegs[i][0] = loadFactCol(a.A)
		}
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggRegs[i][1] = loadFactCol(a.B)
		}
	}

	if len(groupRegs) == 1 && !s.c.opts.NoBulkAggFastPath &&
		s.bulkGroupLoop(q, groupRegs[0], aggRegs, rowMask) {
		return
	}

	remaining := rowMask
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	for {
		idx := eng.MFirst(remaining)
		if idx == -1 {
			break
		}
		groupMask := remaining
		for i, r := range groupRegs {
			keys[i] = eng.Extract(r, idx)
			groupMask = eng.MaskAnd(groupMask, eng.Search(r, keys[i]))
		}
		groupRows := int64(eng.MPopc(groupMask))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask)
			case plan.AggSumSub:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask) - eng.RedSum(aggRegs[i][1], groupMask)
				eng.Scalar(1)
			case plan.AggSumMul:
				tmp := regs.fresh()
				eng.MulVV(tmp, aggRegs[i][0], aggRegs[i][1])
				aggs[i] = eng.RedSum(tmp, groupMask)
			case plan.AggCount:
				aggs[i] = groupRows
			case plan.AggMin:
				v, _ := eng.RedMin(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggCountDistinct:
				values := distinctUnder(fact.MustColumn(a.A).Data, base, groupMask)
				s.chargeDistinctLoop(int64(len(values)), eng.RegWidth(aggRegs[i][0]))
				acc.addDistinct(keys, i, values)
				aggs[i] = 0
			}
		}
		acc.add(keys, aggs, groupRows)
		eng.Scalar(12) // CP-side result append/merge instructions
		// Merging into the CP-side result table is data-dependent: its
		// working set is the accumulated group set.
		eng.CPAccess(1, int64(len(acc.order))*16)
		remaining = eng.MaskXor(remaining, groupMask)
	}
}

// bulkGroupLoop is a simulator fast path for Algorithm 2 with a single
// group column: it computes every group's aggregates in one pass over the
// partition and bills the exact per-group instruction sequence the
// iterative loop would issue (vfirst + extract + search + mask AND +
// predicated reductions + mask XOR + CP bookkeeping). Returns false when an
// aggregate shape is unsupported, falling back to the literal loop.
func (s *tileSweep) bulkGroupLoop(q *plan.Query, groupReg cape.VReg, aggRegs [][2]cape.VReg,
	rowMask *bitvec.Vector) bool {

	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggCountDistinct {
			return false // the literal loop handles these shapes
		}
	}
	eng := s.eng
	acc := s.acc
	gdata := eng.Peek(groupReg)
	adata := make([][2][]uint32, len(q.Aggs))
	widths := make([][2]int, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			adata[i][0] = eng.Peek(aggRegs[i][0])
			widths[i][0] = eng.RegWidth(aggRegs[i][0])
		}
		if a.Kind == plan.AggSumSub {
			adata[i][1] = eng.Peek(aggRegs[i][1])
			widths[i][1] = eng.RegWidth(aggRegs[i][1])
		}
	}

	type gacc struct {
		sums  []int64
		count int64
	}
	groups := make(map[uint32]*gacc)
	order := make([]uint32, 0, 64)
	for i := rowMask.First(); i != -1; i = rowMask.NextAfter(i) {
		k := gdata[i]
		g := groups[k]
		if g == nil {
			g = &gacc{sums: make([]int64, len(q.Aggs))}
			for ai, a := range q.Aggs {
				if a.Kind == plan.AggMin || a.Kind == plan.AggMax {
					g.sums[ai] = int64(adata[ai][0][i])
				}
			}
			groups[k] = g
			order = append(order, k)
		}
		g.count++
		for ai, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				g.sums[ai] += int64(adata[ai][0][i])
			case plan.AggSumSub:
				g.sums[ai] += int64(adata[ai][0][i]) - int64(adata[ai][1][i])
			case plan.AggCount:
				g.sums[ai]++
			case plan.AggMin:
				if v := int64(adata[ai][0][i]); v < g.sums[ai] {
					g.sums[ai] = v
				}
			case plan.AggMax:
				if v := int64(adata[ai][0][i]); v > g.sums[ai] {
					g.sums[ai] = v
				}
			}
		}
	}

	// Bill the instruction stream the iterative loop would have issued.
	n := int64(len(order))
	gw := 32
	if eng.Layout() == cape.GPMode {
		// GP-mode searches are bit-serial at the register's ABA width;
		// CAM-mode searches cost 3 cycles regardless, with no width
		// discovery.
		gw = eng.RegWidth(groupReg)
	}
	eng.Charge(isa.OpVMFirst, 32, n+1) // one extra probe finds the empty mask
	eng.Charge(isa.OpVExtract, 32, n)
	eng.Charge(isa.OpVMSeqVX, gw, n)
	eng.Charge(isa.OpVMAnd, 32, n)
	eng.Charge(isa.OpVMXor, 32, n)
	eng.Charge(isa.OpVMPopc, 32, n) // per-group row count
	for ai, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggAvg:
			eng.Charge(isa.OpVRedSum, widths[ai][0], n)
		case plan.AggSumSub:
			eng.Charge(isa.OpVRedSum, widths[ai][0], n)
			eng.Charge(isa.OpVRedSum, widths[ai][1], n)
			eng.Scalar(n)
		case plan.AggCount:
			// counted by the shared vcpop above
		case plan.AggMin:
			eng.Charge(isa.OpVRedMin, widths[ai][0], n)
		case plan.AggMax:
			eng.Charge(isa.OpVRedMax, widths[ai][0], n)
		}
	}
	eng.Scalar(12 * n)

	key := make([]uint32, 1)
	for _, k := range order {
		key[0] = k
		acc.add(key, groups[k].sums, groups[k].count)
		eng.CPAccess(1, int64(len(acc.order))*16)
	}
	return true
}

// prepareDim filters one dimension on CAPE and compacts the qualifying keys
// plus needed attributes into values arrays (Figure 4), grouped by
// attribute tuple for batched probing. Prep always runs on the executor's
// primary engine — it is charged once per run, not per tile.
func (c *Castle) prepareDim(q *plan.Query, e plan.JoinEdge, db *storage.Database) dimSide {
	eng := c.eng
	dim := db.MustTable(e.Dim)
	maxvl := eng.Config().MAXVL
	preds := q.DimPreds[e.Dim]

	d := dimSide{edge: e, totalRows: dim.Rows(), attrs: make([][]uint32, len(e.NeedAttrs))}
	keyData := dim.MustColumn(e.DimKey).Data
	attrData := make([][]uint32, len(e.NeedAttrs))
	for i, a := range e.NeedAttrs {
		attrData[i] = dim.MustColumn(a).Data
	}

	// Unfiltered dimensions need no CAPE pass: the key (and attribute)
	// columns are the values arrays already.
	if len(preds) == 0 {
		d.keys = keyData
		copy(d.attrs, attrData)
		eng.Scalar(8)
		d.buildGroups(e)
		if len(e.NeedAttrs) > 0 {
			eng.Scalar(int64(4 * len(d.keys)))
		}
		return d
	}

	for base := 0; base < dim.Rows(); base += maxvl {
		vl := dim.Rows() - base
		if vl > maxvl {
			vl = maxvl
		}
		eng.SetVL(vl)
		regs := newRegAlloc(eng.Config().NumVRegs)
		var mask *bitvec.Vector
		for _, pr := range preds {
			r, cached := regs.forCol(pr.Column)
			if !cached {
				eng.Load(r, dim.MustColumn(pr.Column).Data[base:base+vl], c.colWidth(e.Dim, pr.Column))
			}
			m := predMask(eng, r, pr)
			if mask == nil {
				mask = m
			} else {
				mask = eng.MaskAnd(mask, m)
			}
		}
		if mask == nil {
			mask = eng.MaskInit(true)
		}
		// Compact to a values array: matched keys and attributes stream
		// back to memory (Figure 4's "values array").
		n := eng.MPopc(mask)
		eng.Scalar(int64(3 * n))
		eng.ChargeStreamWrite(int64(4 * n * (1 + len(e.NeedAttrs))))
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			d.keys = append(d.keys, keyData[base+i])
			for ai := range attrData {
				d.attrs[ai] = append(d.attrs[ai], attrData[ai][base+i])
			}
		}
	}

	// Batch keys by attribute tuple for group-aware probing.
	d.buildGroups(e)
	if len(e.NeedAttrs) > 0 {
		eng.Scalar(int64(4 * len(d.keys)))
	}
	return d
}

// buildGroups batches the filtered keys by attribute tuple.
func (d *dimSide) buildGroups(e plan.JoinEdge) {
	if len(e.NeedAttrs) == 0 {
		return
	}
	idx := make(map[string]int)
	for r := range d.keys {
		tuple := make([]uint32, len(e.NeedAttrs))
		for ai := range tuple {
			tuple[ai] = d.attrs[ai][r]
		}
		ks := groupKeyString(tuple)
		gi, ok := idx[ks]
		if !ok {
			gi = len(d.groups)
			idx[ks] = gi
			d.groups = append(d.groups, attrGroup{attrVals: tuple})
		}
		d.groups[gi].keys = append(d.groups[gi].keys, d.keys[r])
	}
}

// chargeFissionOverhead models disabling operator fusion (§7.4): each
// operator boundary materializes its output mask through main memory once
// per partition instead of keeping it resident in the CSB. parts is the
// number of partitions this sweep executed (a tile charges only its own
// share).
func (s *tileSweep) chargeFissionOverhead(p *plan.Physical, parts, maxvl int) {
	eng := s.eng
	boundaries := 1 + len(p.Joins) // selections | joins... | aggregation
	maskBytes := int64((maxvl + 7) / 8)
	for i := 0; i < parts*boundaries; i++ {
		eng.ChargeStreamWrite(maskBytes)
		eng.ChargeStreamRead(maskBytes)
		eng.Scalar(40) // per-sweep loop re-setup
	}
}
