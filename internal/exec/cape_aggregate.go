package exec

// cape_aggregate.go holds the CAPE Aggregate kernels: Algorithm 2's
// per-group search loop (generalised to composite keys), the scalar
// no-GROUP-BY reductions, the single-group-column bulk fast path, and the
// COUNT(DISTINCT) nested loop.

import (
	"sort"

	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/isa"
	"castle/internal/plan"
	"castle/internal/storage"
)

// chargeDistinctLoop bills the nested Algorithm-2-style loop that counts a
// column's distinct values under a mask on the AP: per distinct value one
// vfirst, one vextract, one search, and one mask XOR retire the value's
// rows (plus loop scalars); one final vfirst finds the exhausted mask.
func (s *tileSweep) chargeDistinctLoop(distinct int64, width int) {
	eng := s.eng
	eng.Charge(isa.OpVMFirst, 32, distinct+1)
	eng.Charge(isa.OpVExtract, 32, distinct)
	eng.Charge(isa.OpVMSeqVX, width, distinct)
	eng.Charge(isa.OpVMXor, 32, distinct)
	eng.Scalar(6 * distinct)
}

// distinctUnder gathers the distinct values of a fact column among the
// masked rows of the current partition (the functional result of the
// charged loop above). The result is sorted ascending: a canonical order
// that does not depend on row order within the partition, so repeated runs
// and different partitionings hand identical value lists downstream.
func distinctUnder(col []uint32, base int, mask *bitvec.Vector) []uint32 {
	seen := make(map[uint32]struct{})
	out := make([]uint32, 0, 16)
	for i := mask.First(); i != -1; i = mask.NextAfter(i) {
		v := col[base+i]
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// aggregateScalar handles queries without GROUP BY: per-partition partial
// reductions merge into the CP-side accumulator.
func (s *tileSweep) aggregateScalar(q *plan.Query, fact *storage.Table, base, vl int,
	rowMask *bitvec.Vector, regs *regAlloc) {

	eng := s.eng
	acc := s.acc
	rows := int64(eng.MPopc(rowMask))
	if rows == 0 {
		return
	}
	loadCol := func(name string) cape.VReg {
		r, cached := regs.forCol(name)
		if !cached {
			eng.Load(r, fact.MustColumn(name).Data[base:base+vl], colWidth(s.cat, q.Fact, name))
		}
		return r
	}
	vals := make([]int64, len(q.Aggs))
	for i, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggAvg:
			vals[i] = eng.RedSum(loadCol(a.A), rowMask)
		case plan.AggSumMul:
			ra, rb := loadCol(a.A), loadCol(a.B)
			tmp := regs.fresh()
			eng.MulVV(tmp, ra, rb)
			vals[i] = eng.RedSum(tmp, rowMask)
		case plan.AggSumSub:
			// sum(a-b) = sum(a) - sum(b): two predicated reductions and a
			// scalar subtract, avoiding bit-serial vv subtraction.
			vals[i] = eng.RedSum(loadCol(a.A), rowMask) - eng.RedSum(loadCol(a.B), rowMask)
			eng.Scalar(1)
		case plan.AggCount:
			vals[i] = rows
		case plan.AggMin:
			v, _ := eng.RedMin(loadCol(a.A), rowMask)
			vals[i] = int64(v)
		case plan.AggMax:
			v, _ := eng.RedMax(loadCol(a.A), rowMask)
			vals[i] = int64(v)
		case plan.AggCountDistinct:
			r := loadCol(a.A)
			values := distinctUnder(fact.MustColumn(a.A).Data, base, rowMask)
			s.chargeDistinctLoop(int64(len(values)), eng.RegWidth(r))
			acc.addDistinct(nil, i, values)
		}
		eng.Scalar(4)
	}
	acc.add(nil, vals, rows)
}

// aggregateGroups is Algorithm 2 generalised to composite group keys: the
// first unprocessed row identifies a group; one search per group column
// (ANDed) recovers all of the group's rows; predicated reductions compute
// the aggregates; XOR retires the group.
func (s *tileSweep) aggregateGroups(q *plan.Query, fact *storage.Table, base, vl int,
	rowMask *bitvec.Vector, regs *regAlloc, attrRegs map[string]cape.VReg,
	loadFactCol func(string) cape.VReg) {

	eng := s.eng
	acc := s.acc

	groupRegs := make([]cape.VReg, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			groupRegs[i] = loadFactCol(g.Column)
			continue
		}
		r, ok := attrRegs[g.Table+"."+g.Column]
		if !ok {
			panic("exec: group-by attribute " + g.String() + " was not materialized by any join")
		}
		groupRegs[i] = r
	}
	aggRegs := make([][2]cape.VReg, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			aggRegs[i][0] = loadFactCol(a.A)
		}
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggRegs[i][1] = loadFactCol(a.B)
		}
	}

	if len(groupRegs) == 1 && !s.opts.NoBulkAggFastPath &&
		s.bulkGroupLoop(q, groupRegs[0], aggRegs, rowMask) {
		return
	}

	remaining := rowMask
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	for {
		idx := eng.MFirst(remaining)
		if idx == -1 {
			break
		}
		groupMask := remaining
		for i, r := range groupRegs {
			keys[i] = eng.Extract(r, idx)
			groupMask = eng.MaskAnd(groupMask, eng.Search(r, keys[i]))
		}
		groupRows := int64(eng.MPopc(groupMask))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask)
			case plan.AggSumSub:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask) - eng.RedSum(aggRegs[i][1], groupMask)
				eng.Scalar(1)
			case plan.AggSumMul:
				tmp := regs.fresh()
				eng.MulVV(tmp, aggRegs[i][0], aggRegs[i][1])
				aggs[i] = eng.RedSum(tmp, groupMask)
			case plan.AggCount:
				aggs[i] = groupRows
			case plan.AggMin:
				v, _ := eng.RedMin(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggCountDistinct:
				values := distinctUnder(fact.MustColumn(a.A).Data, base, groupMask)
				s.chargeDistinctLoop(int64(len(values)), eng.RegWidth(aggRegs[i][0]))
				acc.addDistinct(keys, i, values)
				aggs[i] = 0
			}
		}
		acc.add(keys, aggs, groupRows)
		eng.Scalar(12) // CP-side result append/merge instructions
		// Merging into the CP-side result table is data-dependent: its
		// working set is the accumulated group set.
		eng.CPAccess(1, int64(len(acc.order))*16)
		remaining = eng.MaskXor(remaining, groupMask)
	}
}

// bulkGroupLoop is a simulator fast path for Algorithm 2 with a single
// group column: it computes every group's aggregates in one pass over the
// partition and bills the exact per-group instruction sequence the
// iterative loop would issue (vfirst + extract + search + mask AND +
// predicated reductions + mask XOR + CP bookkeeping). Returns false when an
// aggregate shape is unsupported, falling back to the literal loop.
func (s *tileSweep) bulkGroupLoop(q *plan.Query, groupReg cape.VReg, aggRegs [][2]cape.VReg,
	rowMask *bitvec.Vector) bool {

	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggCountDistinct {
			return false // the literal loop handles these shapes
		}
	}
	eng := s.eng
	acc := s.acc
	gdata := eng.Peek(groupReg)
	adata := make([][2][]uint32, len(q.Aggs))
	widths := make([][2]int, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			adata[i][0] = eng.Peek(aggRegs[i][0])
			widths[i][0] = eng.RegWidth(aggRegs[i][0])
		}
		if a.Kind == plan.AggSumSub {
			adata[i][1] = eng.Peek(aggRegs[i][1])
			widths[i][1] = eng.RegWidth(aggRegs[i][1])
		}
	}

	type gacc struct {
		sums  []int64
		count int64
	}
	groups := make(map[uint32]*gacc)
	order := make([]uint32, 0, 64)
	for i := rowMask.First(); i != -1; i = rowMask.NextAfter(i) {
		k := gdata[i]
		g := groups[k]
		if g == nil {
			g = &gacc{sums: make([]int64, len(q.Aggs))}
			for ai, a := range q.Aggs {
				if a.Kind == plan.AggMin || a.Kind == plan.AggMax {
					g.sums[ai] = int64(adata[ai][0][i])
				}
			}
			groups[k] = g
			order = append(order, k)
		}
		g.count++
		for ai, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				g.sums[ai] += int64(adata[ai][0][i])
			case plan.AggSumSub:
				g.sums[ai] += int64(adata[ai][0][i]) - int64(adata[ai][1][i])
			case plan.AggCount:
				g.sums[ai]++
			case plan.AggMin:
				if v := int64(adata[ai][0][i]); v < g.sums[ai] {
					g.sums[ai] = v
				}
			case plan.AggMax:
				if v := int64(adata[ai][0][i]); v > g.sums[ai] {
					g.sums[ai] = v
				}
			}
		}
	}

	// Bill the instruction stream the iterative loop would have issued.
	n := int64(len(order))
	gw := 32
	if eng.Layout() == cape.GPMode {
		// GP-mode searches are bit-serial at the register's ABA width;
		// CAM-mode searches cost 3 cycles regardless, with no width
		// discovery.
		gw = eng.RegWidth(groupReg)
	}
	eng.Charge(isa.OpVMFirst, 32, n+1) // one extra probe finds the empty mask
	eng.Charge(isa.OpVExtract, 32, n)
	eng.Charge(isa.OpVMSeqVX, gw, n)
	eng.Charge(isa.OpVMAnd, 32, n)
	eng.Charge(isa.OpVMXor, 32, n)
	eng.Charge(isa.OpVMPopc, 32, n) // per-group row count
	for ai, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggAvg:
			eng.Charge(isa.OpVRedSum, widths[ai][0], n)
		case plan.AggSumSub:
			eng.Charge(isa.OpVRedSum, widths[ai][0], n)
			eng.Charge(isa.OpVRedSum, widths[ai][1], n)
			eng.Scalar(n)
		case plan.AggCount:
			// counted by the shared vcpop above
		case plan.AggMin:
			eng.Charge(isa.OpVRedMin, widths[ai][0], n)
		case plan.AggMax:
			eng.Charge(isa.OpVRedMax, widths[ai][0], n)
		}
	}
	eng.Scalar(12 * n)

	key := make([]uint32, 1)
	for _, k := range order {
		key[0] = k
		acc.add(key, groups[k].sums, groups[k].count)
		eng.CPAccess(1, int64(len(acc.order))*16)
	}
	return true
}
