package exec

// shared_cape.go runs a multi-query shared scan (plan.SharedScan) on one
// CAPE engine: each MAXVL fact morsel is loaded into the CSB once — the
// union of every member's fact columns — and then evaluated against every
// member's predicate sets, joins and aggregation tail before the sweep
// advances. Member results are bit-identical to solo execution because each
// member runs its unmodified operator pipeline; only the column loads are
// shared. The shared load cycles are charged once and attributed pro-rata
// across members with a largest-remainder split, so per-member cycle totals
// still partition the engine's group total exactly.

import (
	"context"
	"fmt"

	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// SharedMemberResult is one member query's outcome of a fused group run:
// its result relation (bit-identical to solo execution), its attributed
// cycle total, and a per-operator breakdown whose rows partition Cycles
// exactly (including an explicit "shared-scan" row for this member's share
// of the fused column loads).
type SharedMemberResult struct {
	Result    *Result
	Cycles    int64
	Breakdown *telemetry.Breakdown
}

// SharedStats summarizes a fused group run. SharedScanCycles is the fused
// column-load work charged once for the whole group; TotalCycles is the
// engine's end-to-end delta, which equals the sum of the members' attributed
// Cycles exactly.
type SharedStats struct {
	SharedScanCycles int64
	TotalCycles      int64
	Members          int
}

// CAPESharedEligible reports whether the member plans can run as one fused
// CAPE sweep: every member sweeps the same fact table, no member needs
// GP-mode vv arithmetic (SUM(a*b) relayouts the CSB mid-partition, which
// would invalidate the shared resident columns), and the union of member
// columns plus the widest member's scratch registers fits the CSB register
// file. A nil error means the group may fuse; callers fall back to solo
// execution otherwise.
func CAPESharedEligible(plans []*plan.Physical, cfg cape.Config) error {
	ss, err := plan.NewSharedScan(plans)
	if err != nil {
		return err
	}
	for i, p := range plans {
		for _, a := range p.Query.Aggs {
			if a.Kind == plan.AggSumMul {
				return fmt.Errorf("exec: shared CAPE sweep: member %d needs GP-mode arithmetic (%s)", i, a)
			}
		}
	}
	union := len(ss.SharedColumns())
	maxScratch := 0
	for _, p := range plans {
		scratch := 0
		for di, e := range p.Joins {
			if di < p.Switch {
				// Right-deep probe: one fact-aligned target per needed attr.
				scratch += len(e.NeedAttrs)
			} else {
				// Left-deep probe: key register + per-attr source and target.
				scratch += 1 + 2*len(e.NeedAttrs)
			}
		}
		if scratch > maxScratch {
			maxScratch = scratch
		}
	}
	if union+maxScratch > cfg.NumVRegs {
		return fmt.Errorf("exec: shared CAPE sweep: %d union columns + %d scratch registers exceed %d CSB registers",
			union, maxScratch, cfg.NumVRegs)
	}
	return nil
}

// RunSharedCAPE executes the member plans as one fused fact sweep on eng.
// The group runs serially on the single engine (a group already amortizes
// the scan; it takes one device lease, not N). Cancellation is checked at
// every member-phase boundary within each morsel.
func RunSharedCAPE(ctx context.Context, eng *cape.Engine, cat *stats.Catalog, opts CastleOptions,
	plans []*plan.Physical, db *storage.Database) ([]SharedMemberResult, SharedStats, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	ss, err := plan.NewSharedScan(plans)
	if err != nil {
		return nil, SharedStats{}, err
	}
	if err := CAPESharedEligible(plans, eng.Config()); err != nil {
		return nil, SharedStats{}, err
	}

	n := len(plans)
	cfg := eng.Config()
	camCapable := cfg.EnableADL
	runStart := eng.TotalCycles()
	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}

	// Per-member sweep books share the one engine; each member's accumulator,
	// per-join attribution and exclusive-cycle tally stay separate.
	sweeps := make([]*tileSweep, n)
	dims := make([][]dimSide, n)
	prepCycles := make([]map[string]int64, n)
	prepRows := make([]map[string]int64, n)
	exclusive := make([]int64, n)
	for i, p := range plans {
		q := p.Query
		sweeps[i] = &tileSweep{cat: cat, opts: opts, eng: eng, acc: newGroupAcc(q.Aggs),
			perJoin: make(map[string]int64, len(p.Joins))}
		dims[i] = make([]dimSide, len(p.Joins))
		prepCycles[i] = make(map[string]int64, len(p.Joins))
		prepRows[i] = make(map[string]int64, len(p.Joins))
		for j, e := range p.Joins {
			if err := ctx.Err(); err != nil {
				return nil, SharedStats{}, err
			}
			before := eng.TotalCycles()
			dims[i][j] = capePrepareDim(eng, cat, q, e, db)
			prepCycles[i][e.Dim] = eng.TotalCycles() - before
			prepRows[i][e.Dim] = int64(len(dims[i][j].keys))
			exclusive[i] += eng.TotalCycles() - before
		}
	}

	fact := db.MustTable(ss.Fact)
	factRows := fact.Rows()
	maxvl := cfg.MAXVL
	parts := (factRows + maxvl - 1) / maxvl
	cols := ss.SharedColumns()

	var sharedCycles int64
	for base := 0; base < factRows; base += maxvl {
		if err := ctx.Err(); err != nil {
			return nil, SharedStats{}, err
		}
		vl := factRows - base
		if vl > maxvl {
			vl = maxvl
		}
		eng.SetVL(vl)

		// Fused scan: load the member union of fact columns once per morsel.
		regs := newRegAlloc(cfg.NumVRegs)
		sharedBefore := eng.TotalCycles()
		for _, name := range cols {
			r, cached := regs.forCol(name)
			if !cached {
				col := fact.MustColumn(name)
				eng.Load(r, col.Data[base:base+vl], colWidth(cat, ss.Fact, name))
			}
		}
		sharedCycles += eng.TotalCycles() - sharedBefore
		mark := regs.next
		loadFactCol := func(name string) cape.VReg {
			r, cached := regs.forCol(name)
			if !cached {
				panic("exec: shared sweep column not preloaded: " + ss.Fact + "." + name)
			}
			return r
		}

		// Evaluate every member against the resident morsel. Each member's
		// scratch registers (join attribute vectors, probe keys) allocate past
		// the preloaded union and are released afterwards — member phases never
		// add byCol entries, since every member column load hits the union.
		for i, p := range plans {
			s := sweeps[i]
			before := eng.TotalCycles()
			rowMask, attrRegs, err := s.runFilterJoinsWith(ctx, p, db, dims[i], base, vl, regs, loadFactCol)
			if err != nil {
				return nil, SharedStats{}, err
			}
			if err := s.runAggregate(ctx, p, db, base, vl, rowMask, regs, attrRegs,
				loadFactCol, false, camCapable); err != nil {
				return nil, SharedStats{}, err
			}
			exclusive[i] += eng.TotalCycles() - before
			regs.next = mark
		}
		if camCapable {
			eng.SetLayout(cape.CAMMode)
		}
	}

	if !opts.Fusion {
		for i, p := range plans {
			before := eng.TotalCycles()
			sweeps[i].chargeFissionOverhead(p, parts, maxvl)
			exclusive[i] += eng.TotalCycles() - before
		}
	}

	total := eng.TotalCycles() - runStart
	var sumExclusive int64
	for _, e := range exclusive {
		sumExclusive += e
	}
	// Residual: layout switches, vsetvl, inter-phase scalars — everything
	// outside the shared-load and member-exclusive regions. Attributed
	// pro-rata like the shared scan so member totals partition the group run.
	residual := total - sharedCycles - sumExclusive

	// share splits a group-level cycle term across members exactly (largest
	// remainder by member index): the first total%n members get one extra.
	share := func(t int64, i int) int64 {
		s := t / int64(n)
		if int64(i) < t%int64(n) {
			s++
		}
		return s
	}

	out := make([]SharedMemberResult, n)
	for i, p := range plans {
		q := p.Query
		s := sweeps[i]
		if len(q.GroupBy) == 0 && len(s.acc.order) == 0 {
			s.acc.add(nil, make([]int64, len(q.Aggs)), 0)
		}
		res := s.acc.result(q)
		cycles := exclusive[i] + share(sharedCycles, i) + share(residual, i)

		b := &telemetry.Breakdown{Device: "CAPE", TotalCycles: cycles}
		var covered int64
		for _, e := range p.Joins {
			cy := prepCycles[i][e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "prep:" + e.Dim, Device: "CAPE", Cycles: cy, Rows: prepRows[i][e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "shared-scan", Device: "CAPE", Cycles: share(sharedCycles, i), Rows: int64(factRows)})
		covered += share(sharedCycles, i)
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "filter", Device: "CAPE", Cycles: s.filterCycles, Rows: int64(factRows)})
		covered += s.filterCycles
		for _, e := range p.Joins {
			cy := s.perJoin[e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "join:" + e.Dim, Device: "CAPE", Cycles: cy, Rows: prepRows[i][e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "aggregate", Device: "CAPE", Cycles: s.aggCycles, Rows: int64(len(res.Rows))})
		covered += s.aggCycles
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "overhead", Device: "CAPE", Cycles: cycles - covered, Rows: -1})

		out[i] = SharedMemberResult{Result: res, Cycles: cycles, Breakdown: b}
	}
	return out, SharedStats{SharedScanCycles: sharedCycles, TotalCycles: total, Members: n}, nil
}
