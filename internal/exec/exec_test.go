package exec

import (
	"strings"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

var (
	testDB  *storage.Database
	testCat *stats.Catalog
)

func db(t *testing.T) (*storage.Database, *stats.Catalog) {
	t.Helper()
	if testDB == nil {
		testDB = ssb.Generate(ssb.Config{SF: 0.01, Seed: 20260704})
		testCat = stats.Collect(testDB)
	}
	return testDB, testCat
}

func bindQuery(t *testing.T, database *storage.Database, qsql string) *plan.Query {
	t.Helper()
	stmt, err := sql.Parse(qsql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := plan.Bind(stmt, database)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return q
}

func optimize(t *testing.T, q *plan.Query, cat *stats.Catalog, maxvl int) *plan.Physical {
	t.Helper()
	p, err := optimizer.Optimize(q, cat, maxvl)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// smallCape returns a CAPE config with a small MAXVL so tests exercise the
// partition loop (multiple partitions at SF 0.01).
func smallCape() cape.Config {
	cfg := cape.DefaultConfig()
	cfg.MAXVL = 4096
	return cfg
}

func runCastle(t *testing.T, cfg cape.Config, p *plan.Physical, database *storage.Database, cat *stats.Catalog, opts CastleOptions) *Result {
	t.Helper()
	eng := cape.New(cfg)
	c := NewCastle(eng, cat, opts)
	return c.Run(p, database)
}

// TestAllSSBQueriesAgreeAcrossEngines is the central correctness gate: all
// thirteen SSB queries must return identical relations from the reference
// engine, the baseline CPU executor, and the Castle/CAPE executor — the
// latter under every microarchitectural configuration and plan shape.
func TestAllSSBQueriesAgreeAcrossEngines(t *testing.T) {
	database, cat := db(t)

	capeConfigs := map[string]cape.Config{
		"base":     smallCape(),
		"adl":      withFlags(smallCape(), true, false, false),
		"mks":      withFlags(smallCape(), true, true, false),
		"aba":      withFlags(smallCape(), false, false, true),
		"enhanced": withFlags(smallCape(), true, true, true),
	}

	for _, q := range ssb.Queries() {
		bound := bindQuery(t, database, q.SQL)
		want := Reference(bound, database)

		gotCPU := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
		if !want.Equal(gotCPU) {
			t.Fatalf("%s: baseline CPU result differs from reference\nref:\n%s\ncpu:\n%s",
				q.Flight, want.Format(database), gotCPU.Format(database))
		}

		for name, cfg := range capeConfigs {
			p := optimize(t, bound, cat, cfg.MAXVL)
			got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
			if !want.Equal(got) {
				t.Fatalf("%s [%s, %v]: Castle result differs from reference\nref:\n%s\ncastle:\n%s",
					q.Flight, name, p.Shape(), want.Format(database), got.Format(database))
			}
		}
	}
}

func withFlags(cfg cape.Config, adl, mks, aba bool) cape.Config {
	cfg.EnableADL = adl
	cfg.EnableMKS = mks
	cfg.EnableABA = aba
	return cfg
}

// TestAllPlanShapesAgree runs a representative multi-join query under every
// plan shape; results must be identical (plans change cost, never answers).
func TestAllPlanShapesAgree(t *testing.T) {
	database, cat := db(t)
	q := ssb.Queries()[3] // Q2.1: three joins, group-by over two dims
	bound := bindQuery(t, database, q.SQL)
	want := Reference(bound, database)
	cfg := withFlags(smallCape(), true, true, true)

	for _, shape := range []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		p, err := optimizer.BestWithShape(bound, cat, cfg.MAXVL, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
		if !want.Equal(got) {
			t.Fatalf("shape %v: wrong result\nref:\n%s\ngot:\n%s",
				shape, want.Format(database), got.Format(database))
		}
	}
}

// TestFusionOffStillCorrect checks the §7.4 ablation keeps answers intact
// and strictly increases cost.
func TestFusionOffStillCorrect(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[6].SQL) // Q3.1
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)

	engFused := cape.New(cfg)
	fused := NewCastle(engFused, cat, CastleOptions{Fusion: true}).Run(p, database)
	engSplit := cape.New(cfg)
	split := NewCastle(engSplit, cat, CastleOptions{Fusion: false}).Run(p, database)

	if !fused.Equal(split) {
		t.Fatal("fusion must not change results")
	}
	if engSplit.Stats().TotalCycles() <= engFused.Stats().TotalCycles() {
		t.Fatalf("unfused execution (%d cycles) should cost more than fused (%d)",
			engSplit.Stats().TotalCycles(), engFused.Stats().TotalCycles())
	}
}

// TestADLReducesCycles: the adaptive data layout must speed up a
// search-dominated query (§5.2).
func TestADLReducesCycles(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[3].SQL) // Q2.1, search-heavy
	base := smallCape()
	p := optimize(t, bound, cat, base.MAXVL)

	engBase := cape.New(base)
	NewCastle(engBase, cat, DefaultCastleOptions()).Run(p, database)
	engADL := cape.New(withFlags(base, true, false, false))
	NewCastle(engADL, cat, DefaultCastleOptions()).Run(p, database)

	if engADL.Stats().TotalCycles() >= engBase.Stats().TotalCycles() {
		t.Fatalf("ADL should reduce cycles: %d (ADL) vs %d (base)",
			engADL.Stats().TotalCycles(), engBase.Stats().TotalCycles())
	}
}

// TestABAReducesCyclesOnArithmeticQuery: Q1.1 is dominated by the
// sum(extendedprice*discount) multiply; ABA must shrink it (§5.1).
func TestABAReducesCyclesOnArithmeticQuery(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[0].SQL) // Q1.1
	base := smallCape()
	p := optimize(t, bound, cat, base.MAXVL)

	engBase := cape.New(base)
	NewCastle(engBase, cat, DefaultCastleOptions()).Run(p, database)
	engABA := cape.New(withFlags(base, false, false, true))
	NewCastle(engABA, cat, DefaultCastleOptions()).Run(p, database)

	if engABA.Stats().TotalCycles() >= engBase.Stats().TotalCycles() {
		t.Fatalf("ABA should reduce cycles on Q1.1: %d (ABA) vs %d (base)",
			engABA.Stats().TotalCycles(), engBase.Stats().TotalCycles())
	}
}

// TestOptimizedPlanFasterThanLeftDeep reproduces the core §4.2 finding at
// test scale: CAPE-aware plan shapes beat the traditional left-deep shape.
func TestOptimizedPlanFasterThanLeftDeep(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[3].SQL) // Q2.1
	cfg := smallCape()

	best := optimize(t, bound, cat, cfg.MAXVL)
	ld, err := optimizer.BestWithShape(bound, cat, cfg.MAXVL, plan.LeftDeep)
	if err != nil {
		t.Fatal(err)
	}
	if best.Shape() == plan.LeftDeep {
		t.Skip("optimizer picked left-deep at this scale; nothing to compare")
	}

	engBest := cape.New(cfg)
	NewCastle(engBest, cat, DefaultCastleOptions()).Run(best, database)
	engLD := cape.New(cfg)
	NewCastle(engLD, cat, DefaultCastleOptions()).Run(ld, database)

	if engBest.Stats().TotalCycles() >= engLD.Stats().TotalCycles() {
		t.Fatalf("optimized plan (%d cycles, %v) should beat left-deep (%d cycles)",
			engBest.Stats().TotalCycles(), best.Shape(), engLD.Stats().TotalCycles())
	}
}

// TestResultNormalizeAndEqual covers the result plumbing.
func TestResultNormalizeAndEqual(t *testing.T) {
	a := &Result{Rows: []Row{
		{Keys: []uint32{2, 1}, Aggs: []int64{10}},
		{Keys: []uint32{1, 5}, Aggs: []int64{20}},
	}}
	a.Normalize()
	if a.Rows[0].Keys[0] != 1 {
		t.Fatal("Normalize should sort by keys")
	}
	b := &Result{Rows: []Row{
		{Keys: []uint32{1, 5}, Aggs: []int64{20}},
		{Keys: []uint32{2, 1}, Aggs: []int64{10}},
	}}
	b.Normalize()
	if !a.Equal(b) {
		t.Fatal("equal results should compare equal")
	}
	b.Rows[0].Aggs[0] = 99
	if a.Equal(b) {
		t.Fatal("different aggregates should not compare equal")
	}
	c := &Result{}
	if a.Equal(c) {
		t.Fatal("different row counts should not compare equal")
	}
}

func TestGroupAcc(t *testing.T) {
	aggs := []plan.AggExpr{
		{Kind: plan.AggSumCol, A: "x"},
		{Kind: plan.AggMin, A: "x"},
		{Kind: plan.AggMax, A: "x"},
		{Kind: plan.AggAvg, A: "x"},
		{Kind: plan.AggCount},
	}
	acc := newGroupAcc(aggs)
	acc.add([]uint32{1}, []int64{10, 10, 10, 10, 1}, 1)
	acc.add([]uint32{2}, []int64{5, 5, 5, 5, 1}, 1)
	acc.add([]uint32{1}, []int64{7, 7, 7, 7, 1}, 1)
	res := acc.result(&plan.Query{
		GroupBy: []plan.ColRef{{Table: "t", Column: "c"}},
		Aggs:    aggs,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	g1 := res.Rows[0]
	if g1.Keys[0] != 1 {
		t.Fatalf("group 1 = %+v", g1)
	}
	want := []int64{17, 7, 10, 8, 2} // sum, min, max, floor(17/2), count
	for i, w := range want {
		if g1.Aggs[i] != w {
			t.Fatalf("group 1 agg %d = %d, want %d (all: %v)", i, g1.Aggs[i], w, g1.Aggs)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {6, 3, 2}, {-6, 3, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestMinMaxAvgAcrossEngines drives the extended aggregate vocabulary
// through all three engines on SSB data.
func TestMinMaxAvgAcrossEngines(t *testing.T) {
	database, cat := db(t)
	for _, qsql := range []string{
		`SELECT MIN(lo_revenue), MAX(lo_revenue), AVG(lo_revenue), COUNT(lo_revenue)
		 FROM lineorder WHERE lo_quantity < 10`,
		`SELECT d_year, MIN(lo_discount), MAX(lo_extendedprice), AVG(lo_quantity)
		 FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year`,
		`SELECT MAX(lo_revenue) FROM lineorder WHERE lo_quantity > 100`, // empty match
	} {
		bound := bindQuery(t, database, qsql)
		want := Reference(bound, database)
		cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
		if !want.Equal(cpu) {
			t.Fatalf("%s: baseline differs\nref:\n%s\ncpu:\n%s", qsql, want.Format(database), cpu.Format(database))
		}
		for _, cfg := range []cape.Config{smallCape(), withFlags(smallCape(), true, true, true)} {
			p := optimize(t, bound, cat, cfg.MAXVL)
			got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
			if !want.Equal(got) {
				t.Fatalf("%s: castle differs\nref:\n%s\ncastle:\n%s", qsql, want.Format(database), got.Format(database))
			}
			lit := runCastle(t, cfg, p, database, cat, CastleOptions{Fusion: true, NoBulkAggFastPath: true})
			if !want.Equal(lit) {
				t.Fatalf("%s: castle literal loop differs", qsql)
			}
		}
	}
}

func TestReferenceQ11HandComputed(t *testing.T) {
	// A tiny hand-checkable database.
	database := storage.NewDatabase()
	d := storage.NewTable("dim")
	d.AddIntColumn("d_key", []uint32{1, 2})
	d.AddIntColumn("d_year", []uint32{1993, 1994})
	database.Add(d)
	f := storage.NewTable("facts")
	f.AddIntColumn("f_dk", []uint32{1, 1, 2, 2})
	f.AddIntColumn("f_price", []uint32{100, 200, 300, 400})
	f.AddIntColumn("f_disc", []uint32{1, 2, 3, 4})
	database.Add(f)

	bound := bindQuery(t, database, `
		SELECT SUM(f_price * f_disc) FROM facts, dim
		WHERE f_dk = d_key AND d_year = 1993`)
	res := Reference(bound, database)
	if len(res.Rows) != 1 || res.Rows[0].Aggs[0] != 100*1+200*2 {
		t.Fatalf("result = %+v, want 500", res.Rows)
	}

	// Castle agrees on the same tiny input.
	cat := stats.Collect(database)
	cfg := cape.DefaultConfig().WithEnhancements()
	p := optimize(t, bound, cat, cfg.MAXVL)
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	if !res.Equal(got) {
		t.Fatalf("castle = %+v, want %+v", got.Rows, res.Rows)
	}

	// Baseline agrees too.
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
	if !res.Equal(cpu) {
		t.Fatalf("cpu = %+v, want %+v", cpu.Rows, res.Rows)
	}
}

func TestEmptyResultQueries(t *testing.T) {
	database, cat := db(t)
	// A dimension filter that matches nothing.
	bound := bindQuery(t, database, `
		SELECT SUM(lo_revenue), d_year
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 2050
		GROUP BY d_year`)
	want := Reference(bound, database)
	if len(want.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(want.Rows))
	}
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	if !want.Equal(got) {
		t.Fatal("castle should return an empty result")
	}
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
	if !want.Equal(cpu) {
		t.Fatal("cpu should return an empty result")
	}
}

func TestNoGroupByEmptyMatchStillOneRow(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, `
		SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity > 100`)
	want := Reference(bound, database)
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
	if len(want.Rows) != 1 || want.Rows[0].Aggs[0] != 0 {
		t.Fatalf("reference = %+v, want single zero row", want.Rows)
	}
	if !want.Equal(got) || !want.Equal(cpu) {
		t.Fatalf("engines disagree on empty aggregate: ref=%v castle=%v cpu=%v",
			want.Rows, got.Rows, cpu.Rows)
	}
}

func TestCountAggregate(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, `
		SELECT COUNT(lo_revenue), d_year
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 1995
		GROUP BY d_year`)
	want := Reference(bound, database)
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
	if !want.Equal(got) || !want.Equal(cpu) {
		t.Fatalf("count disagrees: ref=%v castle=%v cpu=%v", want.Rows, got.Rows, cpu.Rows)
	}
}

// TestBulkGroupLoopMatchesLiteralLoop asserts the single-group-column fast
// path bills the same cycles and returns the same rows as the literal
// Algorithm 2 loop it replaces.
func TestBulkGroupLoopMatchesLiteralLoop(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, `
		SELECT d_year, SUM(lo_revenue)
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year`)
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)

	engFast := cape.New(cfg)
	fast := NewCastle(engFast, cat, CastleOptions{Fusion: true}).Run(p, database)
	engLit := cape.New(cfg)
	lit := NewCastle(engLit, cat, CastleOptions{Fusion: true, NoBulkAggFastPath: true}).Run(p, database)

	if !fast.Equal(lit) {
		t.Fatal("fast path changed results")
	}
	fc, lc := engFast.Stats().TotalCycles(), engLit.Stats().TotalCycles()
	if fc != lc {
		t.Fatalf("fast path billed %d cycles, literal loop %d", fc, lc)
	}
	fs, ls := engFast.Stats(), engLit.Stats()
	for c := range fs.CSBCyclesByClass {
		if fs.CSBCyclesByClass[c] != ls.CSBCyclesByClass[c] {
			t.Fatalf("class %d cycles differ: %d vs %d", c, fs.CSBCyclesByClass[c], ls.CSBCyclesByClass[c])
		}
	}
}

// TestOrderByAcrossEngines verifies ORDER BY (including DESC on an
// aggregate alias) produces the same ordered relation from every engine.
func TestOrderByAcrossEngines(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, `
		SELECT d_year, SUM(lo_revenue) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year
		ORDER BY revenue DESC`)
	want := Reference(bound, database)
	// Descending aggregate order.
	for i := 1; i < len(want.Rows); i++ {
		if want.Rows[i].Aggs[0] > want.Rows[i-1].Aggs[0] {
			t.Fatalf("reference rows not in DESC aggregate order: %v", want.Rows)
		}
	}
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
	if !want.Equal(got) || !want.Equal(cpu) {
		t.Fatal("ordered results disagree across engines")
	}
}

// TestScalarCodebaseSlower reproduces the §4.1 relationship: the AVX-512
// codebase beats the scalar codebase.
func TestScalarCodebaseSlower(t *testing.T) {
	database, _ := db(t)
	bound := bindQuery(t, database, ssb.Queries()[3].SQL)
	avx := baseline.New(baseline.DefaultConfig())
	NewCPUExec(avx).Run(bound, database)
	scalar := baseline.New(baseline.ScalarConfig())
	NewCPUExec(scalar).Run(bound, database)
	if scalar.Cycles() <= avx.Cycles() {
		t.Fatalf("scalar codebase (%d cycles) should be slower than AVX-512 (%d)",
			scalar.Cycles(), avx.Cycles())
	}
}

// TestInstructionTraceOfSimpleQuery pins the instruction stream the
// executor emits for a one-join query on the enhanced design point: a
// vsetdl into CAM mode, per-partition column loads, one search per probe
// key folded with vmor, and Algorithm 2's group loop.
func TestInstructionTraceOfSimpleQuery(t *testing.T) {
	database := storage.NewDatabase()
	d := storage.NewTable("dim")
	d.AddIntColumn("d_key", []uint32{1, 2, 3})
	d.AddIntColumn("d_cat", []uint32{7, 7, 9})
	database.Add(d)
	f := storage.NewTable("facts")
	f.AddIntColumn("f_fk", []uint32{1, 2, 3, 1, 2, 3, 1, 2})
	f.AddIntColumn("f_v", []uint32{1, 2, 3, 4, 5, 6, 7, 8})
	database.Add(f)
	cat := stats.Collect(database)

	bound := bindQuery(t, database, `
		SELECT d_cat, SUM(f_v) FROM facts, dim
		WHERE f_fk = d_key GROUP BY d_cat`)
	cfg := cape.DefaultConfig().WithEnhancements()
	p := optimize(t, bound, cat, cfg.MAXVL)

	eng := cape.New(cfg)
	tr := cape.NewTracer(256)
	eng.AttachTracer(tr)
	// Force the literal Algorithm 2 loop so the group instructions appear
	// individually in the trace.
	res := NewCastle(eng, cat, CastleOptions{Fusion: true, NoBulkAggFastPath: true}).Run(p, database)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}

	counts := map[string]int64{}
	var order []string
	for _, e := range tr.Entries() {
		counts[e.Op.String()] += e.Count
		order = append(order, e.Op.String())
	}
	if counts["vsetdl"] == 0 {
		t.Errorf("trace missing vsetdl (ADL mode switch): %v", order)
	}
	// The unfiltered dimension needs no CAPE pass (its key column is the
	// values array already), so only the two fact columns load.
	if counts["vle32.v"] != 2 {
		t.Errorf("expected 2 fact column loads, got %d", counts["vle32.v"])
	}
	// Probing: 3 dimension keys grouped by d_cat into 2 attribute groups
	// -> 3 searches; Algorithm 2: one search per discovered group (2).
	if counts["vmseq.vx"] != 5 {
		t.Errorf("searches = %d, want 5 (3 probe + 2 group): %v", counts["vmseq.vx"], order)
	}
	if counts["vmerge.vxm"] != 2 {
		t.Errorf("merges = %d, want 2 (one per attribute group)", counts["vmerge.vxm"])
	}
	if counts["vredsum.vs"] != 2 {
		t.Errorf("reductions = %d, want 2 (one per group)", counts["vredsum.vs"])
	}
	// vfirst: 2 groups + 1 terminating probe.
	if counts["vfirst.m"] != 3 {
		t.Errorf("vfirst = %d, want 3", counts["vfirst.m"])
	}
	if tr.Dropped() != 0 {
		t.Errorf("trace dropped %d instructions", tr.Dropped())
	}
}

func TestAccessorsAndFormat(t *testing.T) {
	database, cat := db(t)
	cfg := smallCape()
	eng := cape.New(cfg)
	c := NewCastle(eng, cat, DefaultCastleOptions())
	if c.Engine() != eng {
		t.Fatal("Engine accessor broken")
	}
	cpu := baseline.New(baseline.DefaultConfig())
	x := NewCPUExec(cpu)
	if x.CPU() != cpu {
		t.Fatal("CPU accessor broken")
	}
	bound := bindQuery(t, database, `SELECT d_year, SUM(lo_revenue) FROM lineorder, date
		WHERE lo_orderdate = d_datekey GROUP BY d_year`)
	res := Reference(bound, database)
	out := res.Format(database)
	if !strings.Contains(out, "d_year") || !strings.Contains(out, "SUM(lo_revenue)") {
		t.Fatalf("Format output missing headers:\n%s", out)
	}
}

func TestCastleWithNilCatalogAndCustomMKSThreshold(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[6].SQL) // Q3.1
	cfg := withFlags(smallCape(), true, true, true)
	p := optimize(t, bound, cat, cfg.MAXVL)
	want := Reference(bound, database)

	// nil catalog forces embedded ABA discovery; low MKS threshold forces
	// vmks on small batches.
	eng := cape.New(cfg)
	got := NewCastle(eng, nil, CastleOptions{Fusion: true, MKSMinKeys: 2}).Run(p, database)
	if !want.Equal(got) {
		t.Fatal("nil-catalog execution changed results")
	}
}

func TestApplyOrderMultiKeyWithTies(t *testing.T) {
	r := &Result{Rows: []Row{
		{Keys: []uint32{1, 9}, Aggs: []int64{5}},
		{Keys: []uint32{1, 3}, Aggs: []int64{5}},
		{Keys: []uint32{2, 1}, Aggs: []int64{9}},
	}}
	r.Normalize()
	r.ApplyOrder([]plan.OrderTerm{
		{KeyIdx: -1, AggIdx: 0, Desc: false}, // by agg asc
		{KeyIdx: 1, AggIdx: -1, Desc: true},  // tie-break by key[1] desc
	})
	if r.Rows[0].Keys[1] != 9 || r.Rows[1].Keys[1] != 3 || r.Rows[2].Aggs[0] != 9 {
		t.Fatalf("order wrong: %+v", r.Rows)
	}
}

// TestLeftDeepMultiPartitionDimension exercises left-deep probing where the
// stored dimension spans several CSB partitions (|filtered dim| > MAXVL),
// including attribute fetches from every partition.
func TestLeftDeepMultiPartitionDimension(t *testing.T) {
	const dimRows, factRows = 10000, 30000
	database := storage.NewDatabase()
	d := storage.NewTable("dim")
	keys := make([]uint32, dimRows)
	attrs := make([]uint32, dimRows)
	for i := range keys {
		keys[i] = uint32(i + 1)
		attrs[i] = uint32(i % 17)
	}
	d.AddIntColumn("d_key", keys)
	d.AddIntColumn("d_attr", attrs)
	database.Add(d)

	f := storage.NewTable("facts")
	fk := make([]uint32, factRows)
	vals := make([]uint32, factRows)
	for i := range fk {
		fk[i] = uint32(1 + (i*7)%dimRows)
		vals[i] = uint32(i % 100)
	}
	f.AddIntColumn("f_fk", fk)
	f.AddIntColumn("f_val", vals)
	database.Add(f)
	cat := stats.Collect(database)

	bound := bindQuery(t, database, `
		SELECT d_attr, SUM(f_val) FROM facts, dim
		WHERE f_fk = d_key GROUP BY d_attr`)
	want := Reference(bound, database)

	cfg := withFlags(cape.DefaultConfig(), true, true, true)
	cfg.MAXVL = 1024 // dim spans 10 partitions, fact spans 5
	p, err := optimizer.BestWithShape(bound, cat, cfg.MAXVL, plan.LeftDeep)
	if err != nil {
		t.Fatal(err)
	}
	got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
	if !want.Equal(got) {
		t.Fatalf("multi-partition left-deep join wrong\nref:\n%s\ngot:\n%s",
			want.Format(database), got.Format(database))
	}
}

// TestCountDistinctAndLimitAcrossEngines covers the COUNT(DISTINCT) and
// LIMIT features end to end on all three engines.
func TestCountDistinctAndLimitAcrossEngines(t *testing.T) {
	database, cat := db(t)
	for _, qsql := range []string{
		`SELECT COUNT(DISTINCT lo_custkey) FROM lineorder WHERE lo_quantity < 10`,
		`SELECT d_year, COUNT(DISTINCT lo_suppkey), SUM(lo_revenue)
		 FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year`,
		`SELECT d_year, SUM(lo_revenue) AS revenue
		 FROM lineorder, date WHERE lo_orderdate = d_datekey
		 GROUP BY d_year ORDER BY revenue DESC LIMIT 3`,
	} {
		bound := bindQuery(t, database, qsql)
		want := Reference(bound, database)
		cpu := NewCPUExec(baseline.New(baseline.DefaultConfig())).Run(bound, database)
		if !want.Equal(cpu) {
			t.Fatalf("%s: baseline differs\nref:\n%s\ncpu:\n%s", qsql, want.Format(database), cpu.Format(database))
		}
		for _, cfg := range []cape.Config{smallCape(), withFlags(smallCape(), true, true, true)} {
			p := optimize(t, bound, cat, cfg.MAXVL)
			got := runCastle(t, cfg, p, database, cat, DefaultCastleOptions())
			if !want.Equal(got) {
				t.Fatalf("%s: castle differs\nref:\n%s\ncastle:\n%s", qsql, want.Format(database), got.Format(database))
			}
		}
	}
	// LIMIT actually limits.
	bound := bindQuery(t, database, `SELECT d_year, SUM(lo_revenue)
		FROM lineorder, date WHERE lo_orderdate = d_datekey
		GROUP BY d_year LIMIT 2`)
	if got := Reference(bound, database); len(got.Rows) != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", len(got.Rows))
	}
	// Distinct count is correct on a hand-checkable input.
	tiny := storage.NewDatabase()
	f := storage.NewTable("facts")
	f.AddIntColumn("f_g", []uint32{1, 1, 1, 2, 2})
	f.AddIntColumn("f_v", []uint32{7, 7, 8, 9, 9})
	tiny.Add(f)
	b2 := bindQuery(t, tiny, `SELECT f_g, COUNT(DISTINCT f_v) FROM facts GROUP BY f_g`)
	res := Reference(b2, tiny)
	if len(res.Rows) != 2 || res.Rows[0].Aggs[0] != 2 || res.Rows[1].Aggs[0] != 1 {
		t.Fatalf("distinct counts wrong: %+v", res.Rows)
	}
	tcat := stats.Collect(tiny)
	p2, err := optimizer.Optimize(b2, tcat, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg := withFlags(smallCape(), true, true, true)
	got2 := runCastle(t, cfg, p2, tiny, tcat, DefaultCastleOptions())
	if !res.Equal(got2) {
		t.Fatalf("castle distinct wrong: %+v", got2.Rows)
	}
}

// TestHybridRouting checks the §7.2/§7.3 dynamic-dispatch heuristics: small
// aggregations and joins run on CAPE, large-group aggregations and
// huge-dimension joins fall back to the CPU — and both paths return the
// reference answer.
func TestHybridRouting(t *testing.T) {
	database, cat := db(t)
	cfg := withFlags(smallCape(), true, true, true)

	// Small group count -> CAPE.
	bound := bindQuery(t, database, `
		SELECT d_year, SUM(lo_revenue) FROM lineorder, date
		WHERE lo_orderdate = d_datekey GROUP BY d_year`)
	p := optimize(t, bound, cat, cfg.MAXVL)
	h := NewDefaultHybrid(cfg, cat)
	res, dev := h.Run(p, database)
	if dev != DeviceCAPE {
		t.Fatalf("7-group aggregation routed to %v, want CAPE", dev)
	}
	if !Reference(bound, database).Equal(res) {
		t.Fatal("hybrid CAPE path wrong result")
	}
	if h.Cycles(dev) <= 0 {
		t.Fatal("no cycles recorded")
	}

	// Group by a high-cardinality fact column -> CPU (Figure 12).
	bound2 := bindQuery(t, database, `
		SELECT lo_orderkey, SUM(lo_revenue) FROM lineorder GROUP BY lo_orderkey`)
	p2 := optimize(t, bound2, cat, cfg.MAXVL)
	if g := h.EstimateGroups(bound2); g <= 5000 {
		t.Fatalf("estimated groups = %d, want > 5000", g)
	}
	res2, dev2 := h.Run(p2, database)
	if dev2 != DeviceCPU {
		t.Fatalf("15K-group aggregation routed to %v, want CPU", dev2)
	}
	if !Reference(bound2, database).Equal(res2) {
		t.Fatal("hybrid CPU path wrong result")
	}
	if h.Cycles(dev2) <= 0 {
		t.Fatal("no cycles recorded on CPU path")
	}

	// Lowering the dimension threshold flips a join query to the CPU.
	h.DimThreshold = 1
	bound3 := bindQuery(t, database, `
		SELECT SUM(lo_revenue) FROM lineorder, supplier WHERE lo_suppkey = s_suppkey`)
	p3 := optimize(t, bound3, cat, cfg.MAXVL)
	if d := h.Decide(p3); d != DeviceCPU {
		t.Fatalf("oversized dimension routed to %v, want CPU", d)
	}
	if h.Castle() == nil || h.CPUExec() == nil || DeviceCAPE.String() == "" || DeviceCPU.String() == "" {
		t.Fatal("accessors broken")
	}
}
