package exec

import (
	"context"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// Hybrid routes each query to the better engine, implementing the paper's
// deployment model: "CAPE being closely integrated in a tiled architecture
// along other cores allows for a software architecture in which such
// decisions are made dynamically" (§7.2). The heuristics come straight
// from the microbenchmark crossovers:
//
//   - aggregations with more than ~5,000 estimated groups run on the CPU
//     (Figure 12: "such aggregates are better evaluated on the CPU");
//   - joins whose filtered probe side exceeds ~250K rows run on the CPU
//     (Figure 11: parity near 250K-row dimensions);
//   - everything else runs on CAPE.
type Hybrid struct {
	castle *Castle
	cpu    *CPUExec
	cat    *stats.Catalog
	placed *Placed

	// GroupThreshold and DimThreshold override the paper's crossovers
	// (zero selects the defaults).
	GroupThreshold int
	DimThreshold   int
}

// NewHybrid couples a Castle executor and a baseline executor.
func NewHybrid(castle *Castle, cpu *CPUExec, cat *stats.Catalog) *Hybrid {
	h := &Hybrid{castle: castle, cpu: cpu, cat: cat}
	h.placed = NewPlaced(castle, cpu, cat)
	return h
}

// SetParallelism propagates a fact-sweep fan-out degree to both engines, so
// whichever device the routing heuristics pick honours it. Not safe to call
// while a run is in flight.
func (h *Hybrid) SetParallelism(k int) {
	h.castle.SetParallelism(k)
	h.cpu.SetParallelism(k)
	h.placed.SetParallelism(k)
}

// SetStreaming propagates the streaming toggle to every executor this
// hybrid routes to, so whichever device (or mixed placement) a query lands
// on runs the pull-based batch pipeline. Safe to call concurrently with a
// run; in-flight runs keep the mode they observed at entry.
func (h *Hybrid) SetStreaming(on bool) {
	h.castle.SetStreaming(on)
	h.cpu.SetStreaming(on)
	h.placed.SetStreaming(on)
}

// Device names the engine a hybrid decision selected. It aliases
// plan.Device so whole-query routing decisions and per-operator placements
// (plan.PlacedPlan) speak the same vocabulary.
type Device = plan.Device

// Devices.
const (
	DeviceCAPE = plan.DeviceCAPE
	DeviceCPU  = plan.DeviceCPU
)

// EstimateGroups predicts the number of result groups: the product of the
// group columns' distinct counts, capped by the fact cardinality.
func (h *Hybrid) EstimateGroups(q *plan.Query) int {
	return estimateGroups(q, h.cat)
}

func estimateGroups(q *plan.Query, cat *stats.Catalog) int {
	if len(q.GroupBy) == 0 {
		return 1
	}
	groups := 1
	for _, g := range q.GroupBy {
		if cs, ok := cat.Column(g.Table, g.Column); ok && cs.Distinct > 0 {
			if groups > 1<<30/cs.Distinct {
				groups = 1 << 30
				break
			}
			groups *= cs.Distinct
		}
	}
	if rows := cat.MustTable(q.Fact).Rows; groups > rows {
		groups = rows
	}
	return groups
}

// Decide returns the engine the heuristics select for a plan.
func (h *Hybrid) Decide(p *plan.Physical) Device {
	return DecideDevice(p, h.cat, h.GroupThreshold, h.DimThreshold)
}

// DecideDevice applies the §7.2 crossover heuristics to a plan without
// needing executor (or engine) instances — the serving layer routes
// DeviceHybrid requests with it before acquiring a CAPE tile or CPU slot.
// Zero thresholds select the paper's crossover defaults.
func DecideDevice(p *plan.Physical, cat *stats.Catalog, groupThreshold, dimThreshold int) Device {
	if groupThreshold <= 0 {
		groupThreshold = 5000
	}
	if dimThreshold <= 0 {
		dimThreshold = 250_000
	}
	q := p.Query
	if estimateGroups(q, cat) > groupThreshold {
		return DeviceCPU
	}
	for _, j := range q.Joins {
		// Filtered probe-side size (right-deep direction probes with the
		// filtered dimension).
		total := float64(cat.MustTable(j.Dim).Rows)
		sel := 1.0
		for _, pr := range q.DimPreds[j.Dim] {
			sel *= predSelectivity(cat, pr)
		}
		if int(total*sel) > dimThreshold {
			return DeviceCPU
		}
	}
	return DeviceCAPE
}

// predSelectivity mirrors the optimizer's estimate without importing it
// (avoiding an exec -> optimizer dependency cycle).
func predSelectivity(cat *stats.Catalog, p plan.Predicate) float64 {
	if p.Never {
		return 0
	}
	cs, ok := cat.Column(p.Table, p.Column)
	if !ok {
		return 1
	}
	switch p.Op {
	case plan.PredEQ:
		return cs.EqSelectivity()
	case plan.PredNE:
		return 1 - cs.EqSelectivity()
	case plan.PredLT, plan.PredLE:
		return cs.RangeSelectivity(cs.Min, p.Value)
	case plan.PredGT, plan.PredGE:
		return cs.RangeSelectivity(p.Value, cs.Max)
	case plan.PredBetween:
		return cs.RangeSelectivity(p.Lo, p.Hi)
	case plan.PredIn:
		return cs.InSelectivity(len(p.Values))
	}
	return 1
}

// Run executes the plan on the selected engine and reports which one ran.
func (h *Hybrid) Run(p *plan.Physical, db *storage.Database) (*Result, Device) {
	res, dev, _ := h.RunContext(context.Background(), p, db)
	return res, dev
}

// RunContext is Run with cancellation forwarded to whichever engine the
// crossover heuristics select.
func (h *Hybrid) RunContext(ctx context.Context, p *plan.Physical, db *storage.Database) (*Result, Device, error) {
	if h.Decide(p) == DeviceCPU {
		res, err := h.cpu.RunContext(ctx, p.Query, db)
		return res, DeviceCPU, err
	}
	res, err := h.castle.RunContext(ctx, p, db)
	return res, DeviceCAPE, err
}

// Placed returns the per-operator placement executor sharing this hybrid's
// engines (mixed placements interleave both devices' cycle accounting).
func (h *Hybrid) Placed() *Placed { return h.placed }

// RunPlacedContext executes a per-operator placed pipeline (the tentpole
// path behind Options.Placement): uniform placements delegate to the owning
// single-device executor, mixed placements split the fused fact stage and
// the aggregation tail across the devices. Returns the fact-stage device as
// the headline device; DeviceCycles/Breakdown on Placed carry the split.
func (h *Hybrid) RunPlacedContext(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, Device, error) {
	res, err := h.placed.RunContext(ctx, pp, db)
	return res, pp.FactDevice(), err
}

// Cycles returns the cycle count of whichever engine ran last under the
// given decision (callers snapshot engines around Run for finer control).
func (h *Hybrid) Cycles(d Device) int64 {
	if d == DeviceCPU {
		return h.cpu.CPU().Cycles()
	}
	return h.castle.Engine().Stats().TotalCycles()
}

// SetTelemetry forwards a telemetry sink and parent span to both
// underlying executors (either argument may be nil).
func (h *Hybrid) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	h.castle.SetTelemetry(tel, parent)
	h.cpu.SetTelemetry(tel, parent)
}

// Castle returns the CAPE-side executor.
func (h *Hybrid) Castle() *Castle { return h.castle }

// CPUExec returns the baseline-side executor.
func (h *Hybrid) CPUExec() *CPUExec { return h.cpu }

// NewDefaultHybrid builds a hybrid with fresh engines at the paper's design
// points.
func NewDefaultHybrid(capeCfg cape.Config, cat *stats.Catalog) *Hybrid {
	castle := NewCastle(cape.New(capeCfg), cat, DefaultCastleOptions())
	cpu := NewCPUExec(baseline.New(baseline.DefaultConfig()))
	return NewHybrid(castle, cpu, cat)
}
