package exec

// stream_test.go pins the streaming pipeline's contract: bit-identical
// results to materializing at every placement and fan-out, books that still
// partition the total exactly once the xfer-overlap credit row is included,
// the double-buffer accounting identities at 0/1/2 batches, O(K·MAXVL) peak
// residency, zero-row and partial final batches, and cancellation landing
// between batches.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/ssb"
)

func newCPUHarness() *CPUExec {
	return NewCPUExec(baseline.New(baseline.DefaultConfig()))
}

// capeFactPlacement forces the fact stage (and dimension builds) onto CAPE
// with the aggregation tail on the CPU — the crossing the double-buffered
// channel accelerates.
func capeFactPlacement(p *plan.Physical) *plan.PlacedPlan {
	dimDev := make(map[string]plan.Device, len(p.Joins))
	for _, e := range p.Joins {
		dimDev[e.Dim] = plan.DeviceCAPE
	}
	return plan.Compile(p, plan.DeviceCAPE).Place(plan.DeviceCAPE, plan.DeviceCPU, dimDev)
}

func checkStreamedBooks(t *testing.T, x *Placed, label string) {
	t.Helper()
	bd := x.Breakdown()
	if bd == nil {
		t.Fatalf("%s: no breakdown published", label)
	}
	capeCy, cpuCy := x.DeviceCycles()
	st := x.StreamStats()
	if st.OverlapCycles < 0 {
		t.Errorf("%s: negative overlap credit %d", label, st.OverlapCycles)
	}
	if want := capeCy + cpuCy - st.OverlapCycles; bd.TotalCycles != want {
		t.Errorf("%s: breakdown total %d, want CAPE %d + CPU %d - overlap %d = %d",
			label, bd.TotalCycles, capeCy, cpuCy, st.OverlapCycles, want)
	}
	if sum := bd.SumCycles(); sum != bd.TotalCycles {
		t.Errorf("%s: operator rows sum to %d cycles, total is %d", label, sum, bd.TotalCycles)
	}
}

// TestXferChannelFillDrain pins the double-buffer identities at batch
// counts 0, 1 and 2: no credit without an interior edge, credit
// min(T_1, C_2) at two batches, and peak residency covering both in-flight
// buffers.
func TestXferChannelFillDrain(t *testing.T) {
	var ch xferChannel
	if ch.batches != 0 || ch.credit != 0 || ch.peakBytes != 0 || ch.xferCycles != 0 {
		t.Fatalf("zero channel not zero: %+v", ch)
	}

	// One batch: pure fill + drain, nothing hides.
	ch = xferChannel{}
	ch.record(100, 50, 64)
	if ch.credit != 0 {
		t.Errorf("1 batch: credit %d, want 0 (fill+drain only)", ch.credit)
	}
	if ch.xferCycles != 50 || ch.peakBytes != 64 || ch.batches != 1 {
		t.Errorf("1 batch: xfer=%d peak=%d batches=%d, want 50/64/1", ch.xferCycles, ch.peakBytes, ch.batches)
	}

	// Two batches, transfer-bound interior edge: batch 1's transfer (50)
	// hides under batch 2's compute (80) → credit 50; both buffers resident.
	ch = xferChannel{}
	ch.record(100, 50, 64)
	ch.record(80, 30, 32)
	if ch.credit != 50 {
		t.Errorf("2 batches: credit %d, want min(T1=50, C2=80) = 50", ch.credit)
	}
	if ch.peakBytes != 96 {
		t.Errorf("2 batches: peak %d, want 64+32 = 96", ch.peakBytes)
	}
	if ch.xferCycles != 80 {
		t.Errorf("2 batches: xferCycles %d, want 80", ch.xferCycles)
	}

	// Compute-bound interior edge: only C_2 of T_1 hides.
	ch = xferChannel{}
	ch.record(10, 50, 8)
	ch.record(20, 60, 8)
	if ch.credit != 20 {
		t.Errorf("compute-bound: credit %d, want min(T1=50, C2=20) = 20", ch.credit)
	}
}

func TestOverlapElapsedCredit(t *testing.T) {
	// Critical lane shifts: work-critical lane 0 (100), effective-critical
	// stays lane 0 (70 vs 70) → elapsed saves 30.
	if got := overlapElapsedCredit([]int64{100, 80}, []int64{30, 10}); got != 30 {
		t.Errorf("credit = %d, want 30", got)
	}
	// No credits → no saving.
	if got := overlapElapsedCredit([]int64{100}, []int64{0}); got != 0 {
		t.Errorf("credit = %d, want 0", got)
	}
	// Empty fan-out degenerates to zero.
	if got := overlapElapsedCredit(nil, nil); got != 0 {
		t.Errorf("credit = %d, want 0", got)
	}
}

// TestStreamingMatchesMaterializingSSB is the tentpole gate: every SSB
// query, every forced mixed split, every fan-out in {1,2,4} — streaming
// must return results bit-identical to the materializing run (both are held
// to the scalar reference), with balanced books and peak batch residency
// inside the double-buffer bound.
func TestStreamingMatchesMaterializingSSB(t *testing.T) {
	database, cat := db(t)
	for _, qq := range ssb.Queries() {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		want := Reference(q, database)
		bound := int64(4 * ShipTupleFields(q))
		for pi, pp := range forcedPlacements(p) {
			for _, k := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s placement=%d fact=%s k=%d", qq.Flight, pi, pp.FactDevice(), k)
				x := newPlacedHarness(cat)
				x.SetParallelism(k)
				x.SetStreaming(true)
				res, err := x.Run(pp, database)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !want.Equal(res) {
					t.Errorf("%s: streaming diverged from reference\nwant:\n%s\ngot:\n%s",
						label, want.Format(database), res.Format(database))
					continue
				}
				checkStreamedBooks(t, x, label)
				st := x.StreamStats()
				if st.Batches == 0 {
					t.Errorf("%s: streaming run pulled no batches", label)
				}
				if max := int64(2*k*smallCape().MAXVL) * bound; st.PeakBatchBytes > max {
					t.Errorf("%s: peak batch bytes %d exceed double-buffer bound %d", label, st.PeakBatchBytes, max)
				}
			}
		}
	}
}

// TestStreamingUniformMatchesMaterializing covers the single-device
// executors: the CPU chunked sweep and the CAPE partition pipeline must be
// bit-identical to their materializing runs on all SSB queries.
func TestStreamingUniformMatchesMaterializing(t *testing.T) {
	database, cat := db(t)
	for _, qq := range ssb.Queries() {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		want := Reference(q, database)
		for _, k := range []int{1, 2, 4} {
			cx := newCPUHarness()
			cx.SetParallelism(k)
			cx.SetStreaming(true)
			res, err := cx.RunContext(context.Background(), q, database)
			if err != nil {
				t.Fatalf("%s cpu k=%d: %v", qq.Flight, k, err)
			}
			if !want.Equal(res) {
				t.Errorf("%s cpu k=%d: streaming diverged from reference", qq.Flight, k)
			}
			if st := cx.StreamStats(); st.Batches == 0 {
				t.Errorf("%s cpu k=%d: no batches recorded", qq.Flight, k)
			}

			x := newPlacedHarness(cat)
			x.castle.SetParallelism(k)
			x.castle.SetStreaming(true)
			cres := x.castle.Run(p, database)
			if !want.Equal(cres) {
				t.Errorf("%s cape k=%d: streaming diverged from reference", qq.Flight, k)
			}
			if st := x.castle.StreamStats(); st.Batches == 0 {
				t.Errorf("%s cape k=%d: no batches recorded", qq.Flight, k)
			}
		}
	}
}

// TestStreamedEqualsMaterializedMinusCredit pins the strongest accounting
// identity the CAPE-fact→CPU-agg split offers: consumption is charge-neutral
// (per-batch folding costs exactly what the bulk pass would), so the
// streamed elapsed total equals the materialized total minus the overlap
// credit — cycle for cycle, at every fan-out.
func TestStreamedEqualsMaterializedMinusCredit(t *testing.T) {
	database, cat := db(t)
	for _, qq := range ssb.Queries() {
		q := bindQuery(t, database, qq.SQL)
		p := optimize(t, q, cat, smallCape().MAXVL)
		pp := capeFactPlacement(p)
		for _, k := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s k=%d", qq.Flight, k)

			xm := newPlacedHarness(cat)
			xm.SetParallelism(k)
			if _, err := xm.Run(pp, database); err != nil {
				t.Fatalf("%s materializing: %v", label, err)
			}
			mat := xm.Breakdown().TotalCycles

			xs := newPlacedHarness(cat)
			xs.SetParallelism(k)
			xs.SetStreaming(true)
			if _, err := xs.Run(pp, database); err != nil {
				t.Fatalf("%s streaming: %v", label, err)
			}
			str := xs.Breakdown().TotalCycles
			credit := xs.StreamStats().OverlapCycles

			if str != mat-credit {
				t.Errorf("%s: streamed total %d != materialized %d - credit %d = %d",
					label, str, mat, credit, mat-credit)
			}
		}
	}
}

// TestStreamingZeroRowBatches drives a needle-in-haystack predicate through
// the streamed crossing: almost every batch carries zero survivors, yet all
// partitions are pulled and the answer matches the reference.
func TestStreamingZeroRowBatches(t *testing.T) {
	database, cat := db(t)
	lo := database.MustTable("lineorder")
	key := lo.MustColumn("lo_orderkey").Data[lo.Rows()/2]
	q := bindQuery(t, database, fmt.Sprintf(`
		SELECT SUM(lo_revenue) AS r
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND lo_orderkey = %d`, key))
	cfg := smallCape()
	cfg.MAXVL = 512
	p := optimize(t, q, cat, cfg.MAXVL)
	pp := capeFactPlacement(p)
	want := Reference(q, database)

	x := NewPlaced(NewCastle(cape.New(cfg), cat, DefaultCastleOptions()), newCPUHarness(), cat)
	x.SetStreaming(true)
	res, err := x.Run(pp, database)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(res) {
		t.Fatalf("sparse streamed query diverged from reference\nwant:\n%s\ngot:\n%s",
			want.Format(database), res.Format(database))
	}
	st := x.StreamStats()
	wantBatches := int64((lo.Rows() + cfg.MAXVL - 1) / cfg.MAXVL)
	if st.Batches != wantBatches {
		t.Errorf("batches = %d, want every partition pulled = %d", st.Batches, wantBatches)
	}
	if wantBatches < 10 {
		t.Fatalf("corpus too small to force zero-row batches: only %d partitions", wantBatches)
	}
	checkStreamedBooks(t, x, "sparse")
}

// TestStreamingFinalPartialBatch checks the drain edge when the fact table
// does not divide evenly into MAXVL partitions: the final short batch still
// flows and the batch count is the ceiling, not the floor.
func TestStreamingFinalPartialBatch(t *testing.T) {
	database, cat := db(t)
	rows := database.MustTable("lineorder").Rows()
	cfg := smallCape()
	if rows%cfg.MAXVL == 0 {
		// The partial-batch edge needs a remainder; nudge the vector length.
		cfg.MAXVL--
	}
	q := bindQuery(t, database, ssb.Queries()[0].SQL)
	p := optimize(t, q, cat, cfg.MAXVL)
	pp := capeFactPlacement(p)

	x := NewPlaced(NewCastle(cape.New(cfg), cat, DefaultCastleOptions()), newCPUHarness(), cat)
	x.SetStreaming(true)
	if _, err := x.Run(pp, database); err != nil {
		t.Fatal(err)
	}
	want := int64((rows + cfg.MAXVL - 1) / cfg.MAXVL)
	if got := x.StreamStats().Batches; got != want {
		t.Errorf("batches = %d, want ceil(%d/%d) = %d", got, rows, cfg.MAXVL, want)
	}
}

// flipCtx reports healthy for the first limit Err checks, then cancelled —
// landing the cancellation between batches rather than at entry.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// TestStreamingCancellationBetweenBatches verifies the per-batch context
// checkpoint: a context that flips to cancelled mid-stream aborts the run
// with context.Canceled instead of draining the remaining partitions.
func TestStreamingCancellationBetweenBatches(t *testing.T) {
	database, cat := db(t)
	q := bindQuery(t, database, ssb.Queries()[0].SQL)
	p := optimize(t, q, cat, smallCape().MAXVL)
	pp := capeFactPlacement(p)

	x := newPlacedHarness(cat)
	x.SetStreaming(true)
	ctx := &flipCtx{Context: context.Background(), limit: 5}
	_, err := x.RunContext(ctx, pp, database)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from a mid-stream checkpoint", err)
	}
	if ctx.calls.Load() <= ctx.limit {
		t.Fatalf("context checked only %d times; cancellation never landed", ctx.calls.Load())
	}

	// The CPU chunk loop honours the same checkpoint.
	cx := newCPUHarness()
	cx.SetStreaming(true)
	cctx := &flipCtx{Context: context.Background(), limit: 3}
	if _, err := cx.RunContext(cctx, q, database); !errors.Is(err, context.Canceled) {
		t.Fatalf("cpu err = %v, want context.Canceled", err)
	}
}
