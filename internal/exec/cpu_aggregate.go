package exec

// cpu_aggregate.go is the CPU Aggregate kernel: the per-row visit loop
// feeding the kind-aware group accumulator, plus the hash-aggregation
// charge model (streamed aggregate inputs, per-row hash+update, random
// accesses over the group table and distinct sets).

import (
	"context"

	"castle/internal/bitvec"
	"castle/internal/plan"
	"castle/internal/storage"
)

// cancelCheckRows is how many aggregation-visit rows pass between context
// checks; checking per row would put a mutexed Err() read in the inner loop.
const cancelCheckRows = 1 << 16

// runAggregate executes the range's Aggregate operator over the selection
// mask and materialized attribute columns runFilterJoins produced.
func (s *cpuSweep) runAggregate(ctx context.Context, q *plan.Query, db *storage.Database,
	sel *bitvec.Vector, attrCols map[string][]uint32, base, end int) error {

	if err := ctx.Err(); err != nil {
		return err
	}
	cpu := s.cpu
	fact := db.MustTable(q.Fact)
	n := end - base

	// Aggregate input columns. Per-row values feed the kind-aware group
	// accumulator (MIN/MAX take extrema, the rest add).
	spa := s.span.Child("aggregate")
	aggStart := cpu.Cycles()
	valueOf := make([]func(i int) int64, len(q.Aggs))
	type distinctSlot struct {
		slot int
		col  []uint32
	}
	var distinctSlots []distinctSlot
	for ai, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggMin, plan.AggMax, plan.AggAvg:
			col := fact.MustColumn(a.A).Data[base:end]
			valueOf[ai] = func(i int) int64 { return int64(col[i]) }
		case plan.AggSumMul:
			ca, cb := fact.MustColumn(a.A).Data[base:end], fact.MustColumn(a.B).Data[base:end]
			valueOf[ai] = func(i int) int64 { return int64(ca[i]) * int64(cb[i]) }
		case plan.AggSumSub:
			ca, cb := fact.MustColumn(a.A).Data[base:end], fact.MustColumn(a.B).Data[base:end]
			valueOf[ai] = func(i int) int64 { return int64(ca[i]) - int64(cb[i]) }
		case plan.AggCount:
			valueOf[ai] = func(i int) int64 { return 1 }
		case plan.AggCountDistinct:
			col := fact.MustColumn(a.A).Data[base:end]
			valueOf[ai] = func(i int) int64 { return 0 }
			distinctSlots = append(distinctSlots, distinctSlot{slot: ai, col: col})
		}
	}

	// Group-key sources.
	keySrc := make([]func(i int) uint32, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		if g.Table == q.Fact {
			col := fact.MustColumn(g.Column).Data[base:end]
			keySrc[gi] = func(i int) uint32 { return col[i] }
			continue
		}
		col := attrCols[g.Table+"."+g.Column]
		if col == nil {
			panic("exec: group-by attribute " + g.String() + " was not materialized")
		}
		c := col
		keySrc[gi] = func(i int) uint32 { return c[i] }
	}

	acc := s.acc
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	visit := func(i int) {
		for gi := range keySrc {
			keys[gi] = keySrc[gi](i)
		}
		for ai := range valueOf {
			aggs[ai] = valueOf[ai](i)
		}
		acc.add(keys, aggs, 1)
		for _, d := range distinctSlots {
			acc.addDistinct(keys, d.slot, []uint32{d.col[i]})
		}
	}
	matched := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if i%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			visit(i)
		}
		matched = n
	} else {
		for i := sel.First(); i != -1; i = sel.NextAfter(i) {
			if matched%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			visit(i)
			matched++
		}
	}

	// Aggregation timing: the aggregate input columns stream in full
	// (scattered qualifying rows still touch nearly every line of a
	// columnar layout); Q1-style global reductions are SIMD streams,
	// group-bys pay the hash-aggregation model per qualifying row.
	aggCols := 0
	for _, a := range q.Aggs {
		aggCols++
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggCols++
		}
	}
	// The group-by pass re-reads the materialized group-key columns as
	// well as the aggregate inputs.
	aggBytes := int64(n) * 4 * int64(aggCols+len(q.GroupBy))
	k := cpu.Config().Kernels
	if s.resident {
		// Shared fused sweep (shared_cpu.go): the aggregate inputs were
		// streamed once for the whole group, so only the per-row compute is
		// billed here; random accesses below are member-private and stay.
		if len(q.GroupBy) == 0 {
			cpu.ChargeCompute(float64(matched) * 0.4)
		} else {
			cpu.ChargeCompute(float64(matched) * (k.HashCyclesPerKey + k.AggUpdateCyclesPerRow))
			cpu.ChargeRandomAccesses(int64(matched), int64(len(acc.order))*32)
		}
	} else if len(q.GroupBy) == 0 {
		cpu.ChargeStream(float64(matched)*0.4, aggBytes)
	} else {
		groups := int64(len(acc.order))
		cpu.ChargeStream(float64(matched)*(k.HashCyclesPerKey+k.AggUpdateCyclesPerRow), aggBytes)
		cpu.ChargeRandomAccesses(int64(matched), groups*32)
	}
	// COUNT(DISTINCT) maintains per-group hash sets: one extra hash+probe
	// per qualifying row per distinct slot over the sets' working set.
	if len(distinctSlots) > 0 {
		var setEntries int64
		for _, r := range acc.rows {
			for _, set := range r.sets {
				setEntries += int64(len(set))
			}
		}
		for range distinctSlots {
			cpu.ChargeCompute(float64(matched) * k.HashCyclesPerKey)
			cpu.ChargeRandomAccesses(int64(matched), setEntries*16)
		}
	}
	// A single global group always yields one output row (the zero rows
	// merge into one at accumulator level when the sweep is parallel).
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	s.aggCycles += cpu.Cycles() - aggStart
	spa.SetInt("cycles", cpu.Cycles()-aggStart)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()
	return nil
}
