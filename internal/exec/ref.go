package exec

import (
	"castle/internal/plan"
	"castle/internal/storage"
)

// Reference executes a bound query with a naive row-at-a-time strategy:
// hash maps for dimensions, a single scan of the fact relation, and a Go
// map for aggregation. It has no timing model — it exists purely as the
// correctness oracle for the CAPE and baseline executors. It is fast
// enough for the microbenchmark cross-checks (hash joins make it
// O(fact + dim)); the differential fuzz harness additionally checks it
// against internal/reference, a share-nothing scalar interpreter with
// linear-scan joins, so the two oracles guard each other (see
// docs/ARCHITECTURE.md §9).
func Reference(q *plan.Query, db *storage.Database) *Result {
	fact := db.MustTable(q.Fact)

	// Dimension lookup: key -> attribute values (nil slice when the row
	// fails the dimension's selections).
	type dimLookup struct {
		edge  plan.JoinEdge
		pass  map[uint32][]uint32
		fkCol []uint32
	}
	dims := make([]dimLookup, 0, len(q.Joins))
	for _, e := range q.Joins {
		dim := db.MustTable(e.Dim)
		keyCol := dim.MustColumn(e.DimKey).Data
		preds := q.DimPreds[e.Dim]
		attrCols := make([][]uint32, len(e.NeedAttrs))
		for i, a := range e.NeedAttrs {
			attrCols[i] = dim.MustColumn(a).Data
		}
		predCols := make([][]uint32, len(preds))
		for i, p := range preds {
			predCols[i] = dim.MustColumn(p.Column).Data
		}
		lk := dimLookup{edge: e, pass: make(map[uint32][]uint32), fkCol: fact.MustColumn(e.FactFK).Data}
		for r := 0; r < dim.Rows(); r++ {
			ok := true
			for i, p := range preds {
				if !p.Matches(predCols[i][r]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			attrs := make([]uint32, len(attrCols))
			for i := range attrCols {
				attrs[i] = attrCols[i][r]
			}
			lk.pass[keyCol[r]] = attrs
		}
		dims = append(dims, lk)
	}

	factPredCols := make([][]uint32, len(q.FactPreds))
	for i, p := range q.FactPreds {
		factPredCols[i] = fact.MustColumn(p.Column).Data
	}

	// Group-key extraction: each group column is either a fact column or a
	// dimension attribute reachable through a join edge.
	type keySource struct {
		factCol []uint32 // non-nil for fact columns
		dimIdx  int      // index into dims
		attrIdx int      // index into NeedAttrs
	}
	sources := make([]keySource, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			sources[i] = keySource{factCol: fact.MustColumn(g.Column).Data}
			continue
		}
		found := false
		for di, d := range dims {
			if d.edge.Dim != g.Table {
				continue
			}
			for ai, a := range d.edge.NeedAttrs {
				if a == g.Column {
					sources[i] = keySource{dimIdx: di, attrIdx: ai}
					found = true
				}
			}
		}
		if !found {
			panic("exec: group-by column " + g.String() + " unreachable")
		}
	}

	aggA := make([][]uint32, len(q.Aggs))
	aggB := make([][]uint32, len(q.Aggs))
	var distinctSlots []int
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			aggA[i] = fact.MustColumn(a.A).Data
		}
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggB[i] = fact.MustColumn(a.B).Data
		}
		if a.Kind == plan.AggCountDistinct {
			distinctSlots = append(distinctSlots, i)
		}
	}

	acc := newGroupAcc(q.Aggs)
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	attrRow := make([][]uint32, len(dims))

rowLoop:
	for r := 0; r < fact.Rows(); r++ {
		for i, p := range q.FactPreds {
			if !p.Matches(factPredCols[i][r]) {
				continue rowLoop
			}
		}
		for di := range dims {
			attrs, ok := dims[di].pass[dims[di].fkCol[r]]
			if !ok {
				continue rowLoop
			}
			attrRow[di] = attrs
		}
		for i, s := range sources {
			if s.factCol != nil {
				keys[i] = s.factCol[r]
			} else {
				keys[i] = attrRow[s.dimIdx][s.attrIdx]
			}
		}
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggMin, plan.AggMax, plan.AggAvg:
				aggs[i] = int64(aggA[i][r])
			case plan.AggSumMul:
				aggs[i] = int64(aggA[i][r]) * int64(aggB[i][r])
			case plan.AggSumSub:
				aggs[i] = int64(aggA[i][r]) - int64(aggB[i][r])
			case plan.AggCount, plan.AggCountDistinct:
				aggs[i] = 1
			}
		}
		acc.add(keys, aggs, 1)
		for _, slot := range distinctSlots {
			acc.addDistinct(keys, slot, []uint32{aggA[slot][r]})
		}
	}
	// Grand aggregates always produce one row (zeros when nothing matched;
	// this engine does not model SQL NULL).
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	return acc.result(q)
}
