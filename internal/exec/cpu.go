package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"castle/internal/baseline"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// CPUExec executes bound queries on the baseline AVX-512 core using the
// strategy of the paper's highly-optimized reference codebase (§4.1):
// selections as branchless SIMD scans, dimension hash tables built on the
// filtered dimensions, a pipelined left-deep probe pass over the fact
// relation, and hash aggregation.
//
// Like Castle, all mutable per-run accounting lives in a run-scoped book
// published atomically at run end, so the executor is reentrant; the
// underlying baseline.CPU still executes one run at a time — use one CPU
// (and one CPUExec) per in-flight query, as the server's core pool does.
type CPUExec struct {
	cpu *baseline.CPU

	// par is the number of cores the fact sweep may fan out across (<= 1
	// runs serially). Mirrors Castle.par: an atomic because SetParallelism
	// is safe to call concurrently with RunContext — a run loads the value
	// exactly once at entry.
	par atomic.Int32

	// streaming sweeps the fact table in bounded row chunks instead of one
	// whole-range pass: hash tables build once up front, then each chunk
	// filters, probes and folds into the accumulator before the next chunk
	// starts, bounding the working set (materialized attribute columns and
	// selection bitmap) at O(K·batch) rows. Results are bit-identical.
	streaming atomic.Bool
	// batchRows is the streaming chunk size in fact rows (<= 0 selects
	// defaultStreamBatchRows).
	batchRows atomic.Int32

	tel    *telemetry.Telemetry
	parent *telemetry.Span

	// last is the most recent run's closed books (nil before the first run).
	last atomic.Pointer[cpuRunBooks]
}

// cpuRunBooks is the run-scoped accounting of one RunContext invocation.
type cpuRunBooks struct {
	perJoin     map[string]int64
	prepCycles  map[string]int64
	prepRows    map[string]int64
	buildCycles map[string]int64

	filterCycles int64
	aggCycles    int64

	// Parallel-sweep accounting (coreCycles nil for serial runs).
	cores       int
	coreCycles  []int64
	coreRows    []int64
	mergeCycles int64
	elapsed     int64

	stream StreamStats

	breakdown *telemetry.Breakdown
}

// defaultStreamBatchRows is the CPU streaming chunk size: large enough to
// amortize per-chunk overhead, small enough that the per-core working set
// stays cache-resident.
const defaultStreamBatchRows = 32768

// NewCPUExec wraps a baseline CPU.
func NewCPUExec(cpu *baseline.CPU) *CPUExec { return &CPUExec{cpu: cpu} }

// CPU returns the underlying core (for cycle/traffic inspection).
func (x *CPUExec) CPU() *baseline.CPU { return x.cpu }

// SetParallelism sets how many cores subsequent Runs' fact sweeps may fan
// out across. Values <= 1 run serially; K > 1 forks K sibling cores (shared
// last-level cache split K ways), assigns each a contiguous fact-row range,
// and merges the per-core partial group accumulators in fixed core order, so
// results are bit-identical to serial execution. Safe to call concurrently
// with RunContext: an in-flight run keeps the degree it observed at entry;
// later runs observe the new value.
func (x *CPUExec) SetParallelism(k int) { x.par.Store(int32(k)) }

// SetStreaming toggles chunked fact sweeps for subsequent Runs. Safe to
// call concurrently with RunContext; an in-flight run keeps the mode it
// observed at entry.
func (x *CPUExec) SetStreaming(on bool) { x.streaming.Store(on) }

// SetStreamBatchRows sets the streaming chunk size in fact rows (values
// <= 0 restore the default).
func (x *CPUExec) SetStreamBatchRows(n int) { x.batchRows.Store(int32(n)) }

// StreamStats returns the last run's streaming summary (batches swept and
// peak resident chunk bytes; OverlapCycles is always zero on a single
// device — there is no crossing to hide). Zero for materializing runs.
func (x *CPUExec) StreamStats() StreamStats {
	b := x.last.Load()
	if b == nil {
		return StreamStats{}
	}
	return b.stream
}

// PerJoinCycles returns cycles attributed to each join edge of the last
// Run, keyed by dimension name (build + probe; for parallel runs the build
// on the primary core plus probe work summed across cores). The map is a
// copy; callers may mutate it freely.
func (x *CPUExec) PerJoinCycles() map[string]int64 {
	b := x.last.Load()
	if b == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(b.perJoin))
	for k, v := range b.perJoin {
		out[k] = v
	}
	return out
}

// SetTelemetry attaches a telemetry sink and the span Run's operator spans
// should nest under. Both may be nil (telemetry off). Not safe to call
// while a run is in flight.
func (x *CPUExec) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	x.tel = tel
	x.parent = parent
}

// Breakdown returns the per-operator cycle breakdown of the last Run. The
// rows partition TotalCycles exactly; parallel runs report per-core sweep
// work plus an explicit negative "parallel-overlap" credit for cycles
// hidden under the critical core. Returns a copy; nil before the first Run.
func (x *CPUExec) Breakdown() *telemetry.Breakdown {
	b := x.last.Load()
	if b == nil {
		return nil
	}
	return b.breakdown.Clone()
}

// ParallelStats returns the last run's sweep execution profile (zero value
// before the first run). Tiles counts cores on this device; slices are
// defensive copies.
func (x *CPUExec) ParallelStats() ParallelStats {
	b := x.last.Load()
	if b == nil {
		return ParallelStats{}
	}
	var sum, max int64
	for _, cy := range b.coreCycles {
		sum += cy
		if cy > max {
			max = cy
		}
	}
	return ParallelStats{
		Tiles:         b.cores,
		TileCycles:    append([]int64(nil), b.coreCycles...),
		TileRows:      append([]int64(nil), b.coreRows...),
		MergeCycles:   b.mergeCycles,
		ElapsedCycles: b.elapsed,
		WorkCycles:    b.elapsed + (sum - max),
	}
}

// Run executes a bound query and returns its result relation.
func (x *CPUExec) Run(q *plan.Query, db *storage.Database) *Result {
	res, _ := x.RunContext(context.Background(), q, db)
	return res
}

// RunContext is Run with cancellation: ctx is checked at operator
// boundaries (each dimension prep, each join, aggregation) and periodically
// inside the aggregation visit loop, so a canceled or expired context stops
// the simulated work promptly and returns ctx.Err().
//
// With parallelism > 1 the fact sweep runs morsel-parallel: dimension prep
// and hash-table builds stay on the primary core, then K forked cores each
// filter, probe and aggregate a contiguous fact-row range, and the partial
// group accumulators merge in fixed core order. Results are bit-identical
// to serial execution; the primary core's cycles advance by the elapsed
// view (prep + builds + max core + merge) while per-core work remains
// visible through ParallelStats and the breakdown.
func (x *CPUExec) RunContext(ctx context.Context, q *plan.Query, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cpu := x.cpu
	fact := db.MustTable(q.Fact)
	rows := fact.Rows()
	run := &cpuRunBooks{
		perJoin:     make(map[string]int64, len(q.Joins)),
		prepCycles:  make(map[string]int64, len(q.Joins)),
		prepRows:    make(map[string]int64, len(q.Joins)),
		buildCycles: make(map[string]int64, len(q.Joins)),
	}
	runStart := cpu.Cycles()

	k := int(x.par.Load())
	if k < 1 {
		k = 1
	}
	if k > rows {
		// Never fork more cores than there are fact rows to split.
		k = rows
	}
	if k < 1 {
		k = 1
	}
	run.cores = k

	// Dimension prep on the primary core: selection scans plus key and
	// attribute-value collection (collection is functional only; the scans
	// carry the cycle cost).
	joins := make([]dimJoin, 0, len(q.Joins))
	for _, e := range q.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spp := x.parent.Child("prep:" + e.Dim)
		prepStart := cpu.Cycles()
		j := cpuPrepareDim(cpu, q, e, db)
		joins = append(joins, j)
		run.prepCycles[e.Dim] = cpu.Cycles() - prepStart
		run.prepRows[e.Dim] = int64(len(j.keys))
		spp.SetInt("cycles", run.prepCycles[e.Dim])
		spp.SetInt("rows_in", int64(db.MustTable(e.Dim).Rows()))
		spp.SetInt("rows_out", int64(len(j.keys)))
		spp.End()
	}
	// The optimized codebase probes the most selective dimension first so
	// later probes see fewer rows.
	sort.SliceStable(joins, func(i, j int) bool { return joins[i].fraction < joins[j].fraction })

	acc := newGroupAcc(q.Aggs)
	streaming := x.streaming.Load()
	if k == 1 {
		s := &cpuSweep{cpu: cpu, acc: acc, perJoin: run.perJoin, span: x.parent}
		if streaming {
			// Streaming: hash tables build once (their cycles fold into the
			// same per-join books the inline builds would), then the fact
			// range sweeps in bounded chunks, each folded into acc before
			// the next starts.
			tables, err := x.buildJoinTables(ctx, run, joins)
			if err != nil {
				return nil, err
			}
			step := x.streamStep()
			attrCount := streamAttrCount(joins)
			for base := 0; base < rows; base += step {
				end := base + step
				if end > rows {
					end = rows
				}
				if err := s.run(ctx, q, db, joins, tables, base, end); err != nil {
					return nil, err
				}
				run.stream.Batches++
				if b := streamResidentBytes(end-base, attrCount); b > run.stream.PeakBatchBytes {
					run.stream.PeakBatchBytes = b
				}
			}
		} else {
			// Serial: one sweep over the whole fact range on the primary
			// core, building each join's hash table inline (charge order
			// identical to the pipelined build-probe-build-probe sequence).
			if err := s.run(ctx, q, db, joins, nil, 0, rows); err != nil {
				return nil, err
			}
		}
		run.filterCycles, run.aggCycles = s.filterCycles, s.aggCycles
	} else {
		if err := x.runParallelSweep(ctx, run, q, db, joins, rows, k, acc, streaming); err != nil {
			return nil, err
		}
	}

	run.elapsed = cpu.Cycles() - runStart
	x.finishBreakdown(run, q, int64(rows), int64(len(acc.order)))
	if x.tel != nil {
		scanned := int64(rows)
		for _, e := range q.Joins {
			scanned += int64(db.MustTable(e.Dim).Rows())
		}
		x.tel.Metrics().Counter(telemetry.MetricRowsScanned, "Rows scanned across fact and dimension tables.",
			telemetry.L("device", "cpu")).Add(scanned)
	}
	x.last.Store(run)
	return acc.result(q), nil
}

// runParallelSweep builds every join's hash tables once on the primary
// core, forks k sibling cores, and sweeps contiguous fact-row ranges on
// them concurrently. The primary core absorbs the critical (max-cycle)
// core's elapsed time and every core's memory traffic, then pays a merge
// pass that folds the per-core partial group tables together in fixed core
// order.
func (x *CPUExec) runParallelSweep(ctx context.Context, run *cpuRunBooks, q *plan.Query,
	db *storage.Database, joins []dimJoin, rows, k int, acc *groupAcc, streaming bool) error {

	cpu := x.cpu

	tables, err := x.buildJoinTables(ctx, run, joins)
	if err != nil {
		return err
	}

	cores := cpu.Fork(k)
	sweep := x.parent.Child("fact-sweep")
	sweepStart := cpu.Cycles()
	sweeps := make([]*cpuSweep, k)
	for i, core := range cores {
		if x.tel != nil {
			// Per-core hooks stream live, so telemetry counters accumulate
			// work cycles (the sum over cores), not elapsed. Each core needs
			// its own bridge closure — the bridge keeps local state.
			AttachCPUTelemetry(core, x.tel)
		}
		sweeps[i] = &cpuSweep{
			cpu:     core,
			acc:     newGroupAcc(q.Aggs),
			perJoin: make(map[string]int64, len(joins)),
			span:    sweep.Child(fmt.Sprintf("core%d", i)),
		}
	}

	run.coreRows = make([]int64, k)
	step := x.streamStep()
	attrCount := streamAttrCount(joins)
	laneBatches := make([]int64, k)
	lanePeak := make([]int64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range sweeps {
		base, end := i*rows/k, (i+1)*rows/k
		wg.Add(1)
		go func(ti, base, end int) {
			defer wg.Done()
			s := sweeps[ti]
			defer s.span.End()
			if streaming {
				for lo := base; lo < end && errs[ti] == nil; lo += step {
					hi := lo + step
					if hi > end {
						hi = end
					}
					errs[ti] = s.run(ctx, q, db, joins, tables, lo, hi)
					laneBatches[ti]++
					if b := streamResidentBytes(hi-lo, attrCount); b > lanePeak[ti] {
						lanePeak[ti] = b
					}
				}
			} else {
				errs[ti] = s.run(ctx, q, db, joins, tables, base, end)
			}
			s.span.SetInt("cycles", s.cpu.Cycles())
			s.span.SetInt("rows", int64(end-base))
		}(i, base, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if streaming {
		// Lanes run concurrently, so peak residency is the sum of per-lane
		// chunk high-water marks.
		for i := range laneBatches {
			run.stream.Batches += laneBatches[i]
			run.stream.PeakBatchBytes += lanePeak[i]
		}
	}

	// Fold the cores back into the primary: elapsed advances by the critical
	// core (raw cycles, so sub-cycle differences cannot flip the choice),
	// traffic by the sum.
	run.coreCycles = make([]int64, k)
	var maxRaw float64
	for i, s := range sweeps {
		run.coreCycles[i] = s.cpu.Cycles()
		run.coreRows[i] = int64((i+1)*rows/k - i*rows/k)
		if raw := s.cpu.RawCycles(); raw > maxRaw {
			maxRaw = raw
		}
		for d, cy := range s.perJoin {
			run.perJoin[d] += cy
		}
		run.filterCycles += s.filterCycles
		run.aggCycles += s.aggCycles
	}
	cpu.AbsorbElapsed(maxRaw)
	for _, core := range cores {
		cpu.AbsorbTraffic(core)
	}

	// Merge the per-core partial group tables on the primary core, in fixed
	// core order so the accumulated result is deterministic: one hash+update
	// per partial row into a table sized by the merged group count.
	msp := sweep.Child("merge")
	mergeStart := cpu.Cycles()
	var partialRows int64
	for _, s := range sweeps {
		acc.merge(s.acc)
		partialRows += int64(len(s.acc.order))
	}
	kc := cpu.Config().Kernels
	cpu.ChargeCompute(float64(partialRows) * (kc.HashCyclesPerKey + kc.AggUpdateCyclesPerRow))
	cpu.ChargeRandomAccesses(partialRows, int64(len(acc.order))*32)
	run.mergeCycles = cpu.Cycles() - mergeStart
	msp.SetInt("cycles", run.mergeCycles)
	msp.SetInt("rows", partialRows)
	msp.End()

	sweep.SetInt("cycles", cpu.Cycles()-sweepStart)
	sweep.SetInt("rows", int64(rows))
	sweep.SetInt("cores", int64(k))
	sweep.End()
	return nil
}

// buildJoinTables builds every join's hash table once on the primary core,
// in probe order, folding the build cycles into both the per-join and
// per-build books (serial streaming reports them inside "join:" rows,
// parallel runs as explicit "build:" rows).
func (x *CPUExec) buildJoinTables(ctx context.Context, run *cpuRunBooks, joins []dimJoin) ([]joinTable, error) {
	cpu := x.cpu
	tables := make([]joinTable, len(joins))
	for ji, j := range joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spb := x.parent.Child("build:" + j.edge.Dim)
		buildStart := cpu.Cycles()
		if len(j.edge.NeedAttrs) == 0 {
			tables[ji].semi = cpu.BuildHashSemi(j.keys)
		} else {
			tables[ji].attr = make([]*baseline.HashTable, len(j.edge.NeedAttrs))
			for ai := range j.edge.NeedAttrs {
				tables[ji].attr[ai] = cpu.BuildHashMap(j.keys, j.vals[ai])
			}
		}
		cy := cpu.Cycles() - buildStart
		run.buildCycles[j.edge.Dim] = cy
		run.perJoin[j.edge.Dim] += cy
		spb.SetInt("cycles", cy)
		spb.SetInt("build_keys", int64(len(j.keys)))
		spb.End()
	}
	return tables, nil
}

// streamStep returns the configured streaming chunk size in fact rows.
func (x *CPUExec) streamStep() int {
	if n := int(x.batchRows.Load()); n > 0 {
		return n
	}
	return defaultStreamBatchRows
}

// streamAttrCount counts the dimension-attribute columns a sweep
// materializes per chunk — the dominant term of the chunk working set.
func streamAttrCount(joins []dimJoin) int {
	n := 0
	for _, j := range joins {
		n += len(j.edge.NeedAttrs)
	}
	return n
}

// streamResidentBytes models one chunk's resident working set: 4-byte
// materialized attribute values per surviving probe plus the selection
// bitmap.
func streamResidentBytes(rows, attrCount int) int64 {
	return int64(4*rows*attrCount) + int64(rows+7)/8
}

// finishBreakdown closes the per-operator books for the last Run; the rows
// partition TotalCycles exactly, with an explicit "overhead" remainder.
// Parallel runs replace the serial filter/join/aggregate rows with build
// rows, per-core sweep work, a negative "parallel-overlap" credit (cores
// run concurrently, so only the critical core's cycles are elapsed time)
// and a "merge" row.
func (x *CPUExec) finishBreakdown(run *cpuRunBooks, q *plan.Query, factRows, groups int64) {
	b := &telemetry.Breakdown{Device: "CPU", TotalCycles: run.elapsed}
	var covered int64
	for _, e := range q.Joins {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "prep:" + e.Dim, Device: "CPU", Cycles: run.prepCycles[e.Dim], Rows: run.prepRows[e.Dim],
		})
		covered += run.prepCycles[e.Dim]
	}
	if run.coreCycles == nil {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "filter", Device: "CPU", Cycles: run.filterCycles, Rows: factRows,
		})
		covered += run.filterCycles
		for _, e := range q.Joins {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "join:" + e.Dim, Device: "CPU", Cycles: run.perJoin[e.Dim], Rows: -1,
			})
			covered += run.perJoin[e.Dim]
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "aggregate", Device: "CPU", Cycles: run.aggCycles, Rows: groups,
		})
		covered += run.aggCycles
	} else {
		for _, e := range q.Joins {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "build:" + e.Dim, Device: "CPU", Cycles: run.buildCycles[e.Dim], Rows: run.prepRows[e.Dim],
			})
			covered += run.buildCycles[e.Dim]
		}
		var sum, max int64
		for t, cy := range run.coreCycles {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: fmt.Sprintf("sweep[%d]", t), Device: "CPU", Cycles: cy, Rows: run.coreRows[t],
			})
			sum += cy
			if cy > max {
				max = cy
			}
			covered += cy
		}
		// The cores overlapped: only the critical core is elapsed time, so
		// credit the hidden work back with an explicit negative row.
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "parallel-overlap", Device: "CPU", Cycles: max - sum, Rows: -1,
		})
		covered += max - sum
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "merge", Device: "CPU", Cycles: run.mergeCycles, Rows: groups,
		})
		covered += run.mergeCycles
	}
	if oh := run.elapsed - covered; oh != 0 {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "overhead", Device: "CPU", Cycles: oh, Rows: -1,
		})
	}
	run.breakdown = b
}
