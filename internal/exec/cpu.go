package exec

import (
	"context"
	"sort"

	"castle/internal/baseline"
	"castle/internal/bitvec"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// CPUExec executes bound queries on the baseline AVX-512 core using the
// strategy of the paper's highly-optimized reference codebase (§4.1):
// selections as branchless SIMD scans, dimension hash tables built on the
// filtered dimensions, a pipelined left-deep probe pass over the fact
// relation, and hash aggregation.
type CPUExec struct {
	cpu *baseline.CPU

	perJoin map[string]int64

	tel       *telemetry.Telemetry
	parent    *telemetry.Span
	breakdown *telemetry.Breakdown
}

// NewCPUExec wraps a baseline CPU.
func NewCPUExec(cpu *baseline.CPU) *CPUExec { return &CPUExec{cpu: cpu} }

// CPU returns the underlying core (for cycle/traffic inspection).
func (x *CPUExec) CPU() *baseline.CPU { return x.cpu }

// PerJoinCycles returns cycles attributed to each join edge of the last
// Run, keyed by dimension name (dimension filter + build + probe). The map
// is a copy; callers may mutate it freely.
func (x *CPUExec) PerJoinCycles() map[string]int64 {
	out := make(map[string]int64, len(x.perJoin))
	for k, v := range x.perJoin {
		out[k] = v
	}
	return out
}

// SetTelemetry attaches a telemetry sink and the span Run's operator spans
// should nest under. Both may be nil (telemetry off).
func (x *CPUExec) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	x.tel = tel
	x.parent = parent
}

// Breakdown returns the per-operator cycle breakdown of the last Run.
func (x *CPUExec) Breakdown() *telemetry.Breakdown { return x.breakdown.Clone() }

// Run executes a bound query and returns its result relation.
func (x *CPUExec) Run(q *plan.Query, db *storage.Database) *Result {
	res, _ := x.RunContext(context.Background(), q, db)
	return res
}

// cancelCheckRows is how many aggregation-visit rows pass between context
// checks; checking per row would put a mutexed Err() read in the inner loop.
const cancelCheckRows = 1 << 16

// RunContext is Run with cancellation: ctx is checked at operator
// boundaries (filter, each dimension prep, each join, aggregation) and
// periodically inside the aggregation visit loop, so a canceled or expired
// context stops the simulated work promptly and returns ctx.Err().
func (x *CPUExec) RunContext(ctx context.Context, q *plan.Query, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cpu := x.cpu
	fact := db.MustTable(q.Fact)
	rows := fact.Rows()
	runStart := cpu.Cycles()
	prepCycles := make(map[string]int64, len(q.Joins))
	prepRows := make(map[string]int64, len(q.Joins))

	// Fact selections: SIMD scans, masks ANDed.
	spf := x.parent.Child("filter")
	filterStart := cpu.Cycles()
	var sel *bitvec.Vector
	for _, pr := range q.FactPreds {
		col := fact.MustColumn(pr.Column)
		pr := pr
		m := cpu.SelectionScan(col.Data, func(v uint32) bool { return pr.Matches(v) })
		if sel == nil {
			sel = m
		} else {
			sel.And(m)
			cpu.ChargeCompute(float64(rows) / 64) // word-wise mask AND
		}
	}
	filterCycles := cpu.Cycles() - filterStart
	spf.SetInt("cycles", filterCycles)
	spf.SetInt("rows", int64(rows))
	spf.End()

	// Pipelined left-deep joins: filter each dimension (scan), build a
	// hash table, probe with the surviving fact rows. The optimized
	// codebase probes the most selective dimension first so later probes
	// see fewer rows. Joins that feed group-by columns materialize the
	// attribute; pure filters stay semi-joins.
	type dimJoin struct {
		edge     plan.JoinEdge
		dimMask  *bitvec.Vector
		keys     []uint32
		fraction float64
	}
	joins := make([]dimJoin, 0, len(q.Joins))
	for _, e := range q.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dim := db.MustTable(e.Dim)
		preds := q.DimPreds[e.Dim]

		spp := x.parent.Child("prep:" + e.Dim)
		prepStart := cpu.Cycles()

		// Dimension selection scan.
		var dimMask *bitvec.Vector
		for _, pr := range preds {
			col := dim.MustColumn(pr.Column)
			pr := pr
			m := cpu.SelectionScan(col.Data, func(v uint32) bool { return pr.Matches(v) })
			if dimMask == nil {
				dimMask = m
			} else {
				dimMask.And(m)
				cpu.ChargeCompute(float64(dim.Rows()) / 64)
			}
		}

		keyCol := dim.MustColumn(e.DimKey).Data
		var keys []uint32
		collect := func(i int) { keys = append(keys, keyCol[i]) }
		if dimMask == nil {
			for i := range keyCol {
				collect(i)
			}
		} else {
			for i := dimMask.First(); i != -1; i = dimMask.NextAfter(i) {
				collect(i)
			}
		}
		frac := 1.0
		if dim.Rows() > 0 {
			frac = float64(len(keys)) / float64(dim.Rows())
		}
		joins = append(joins, dimJoin{edge: e, dimMask: dimMask, keys: keys, fraction: frac})

		prepCycles[e.Dim] = cpu.Cycles() - prepStart
		prepRows[e.Dim] = int64(len(keys))
		spp.SetInt("cycles", prepCycles[e.Dim])
		spp.SetInt("rows_in", int64(dim.Rows()))
		spp.SetInt("rows_out", int64(len(keys)))
		spp.End()
	}
	sort.SliceStable(joins, func(i, j int) bool { return joins[i].fraction < joins[j].fraction })

	x.perJoin = make(map[string]int64, len(joins))
	attrCols := make(map[string][]uint32) // "dim.attr" -> fact-aligned values
	for _, j := range joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := j.edge
		spj := x.parent.Child("join:" + e.Dim)
		joinStart := cpu.Cycles()
		dim := db.MustTable(e.Dim)
		dimMask, keys := j.dimMask, j.keys
		keyCol := dim.MustColumn(e.DimKey).Data
		fkCol := fact.MustColumn(e.FactFK).Data

		switch len(e.NeedAttrs) {
		case 0:
			m := cpu.HashJoinSemi(fkCol, keys, sel)
			sel = intersect(sel, m)
		default:
			// One build pass per needed attribute re-uses the same probe
			// pattern; the first probe prunes the selection mask.
			for ai, attr := range e.NeedAttrs {
				attrCol := dim.MustColumn(attr).Data
				vals := make([]uint32, 0, len(keys))
				appendVal := func(i int) { vals = append(vals, attrCol[i]) }
				if dimMask == nil {
					for i := range keyCol {
						appendVal(i)
					}
				} else {
					for i := dimMask.First(); i != -1; i = dimMask.NextAfter(i) {
						appendVal(i)
					}
				}
				m, mat := cpu.HashJoinMap(fkCol, keys, vals, sel)
				attrCols[e.Dim+"."+attr] = mat
				if ai == 0 {
					sel = intersect(sel, m)
				}
			}
		}
		cy := cpu.Cycles() - joinStart
		x.perJoin[e.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("build_keys", int64(len(keys)))
		spj.End()
	}

	// Aggregate input columns. Per-row values feed the kind-aware group
	// accumulator (MIN/MAX take extrema, the rest add).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spa := x.parent.Child("aggregate")
	aggStart := cpu.Cycles()
	valueOf := make([]func(i int) int64, len(q.Aggs))
	type distinctSlot struct {
		slot int
		col  []uint32
	}
	var distinctSlots []distinctSlot
	for ai, a := range q.Aggs {
		switch a.Kind {
		case plan.AggSumCol, plan.AggMin, plan.AggMax, plan.AggAvg:
			col := fact.MustColumn(a.A).Data
			valueOf[ai] = func(i int) int64 { return int64(col[i]) }
		case plan.AggSumMul:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			valueOf[ai] = func(i int) int64 { return int64(ca[i]) * int64(cb[i]) }
		case plan.AggSumSub:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			valueOf[ai] = func(i int) int64 { return int64(ca[i]) - int64(cb[i]) }
		case plan.AggCount:
			valueOf[ai] = func(i int) int64 { return 1 }
		case plan.AggCountDistinct:
			col := fact.MustColumn(a.A).Data
			valueOf[ai] = func(i int) int64 { return 0 }
			distinctSlots = append(distinctSlots, distinctSlot{slot: ai, col: col})
		}
	}

	// Group-key sources.
	keySrc := make([]func(i int) uint32, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		if g.Table == q.Fact {
			col := fact.MustColumn(g.Column).Data
			keySrc[gi] = func(i int) uint32 { return col[i] }
			continue
		}
		col := attrCols[g.Table+"."+g.Column]
		if col == nil {
			panic("exec: group-by attribute " + g.String() + " was not materialized")
		}
		c := col
		keySrc[gi] = func(i int) uint32 { return c[i] }
	}

	acc := newGroupAcc(q.Aggs)
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	visit := func(i int) {
		for gi := range keySrc {
			keys[gi] = keySrc[gi](i)
		}
		for ai := range valueOf {
			aggs[ai] = valueOf[ai](i)
		}
		acc.add(keys, aggs, 1)
		for _, d := range distinctSlots {
			acc.addDistinct(keys, d.slot, []uint32{d.col[i]})
		}
	}
	matched := 0
	if sel == nil {
		for i := 0; i < rows; i++ {
			if i%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			visit(i)
		}
		matched = rows
	} else {
		for i := sel.First(); i != -1; i = sel.NextAfter(i) {
			if matched%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			visit(i)
			matched++
		}
	}

	// Aggregation timing: the aggregate input columns stream in full
	// (scattered qualifying rows still touch nearly every line of a
	// columnar layout); Q1-style global reductions are SIMD streams,
	// group-bys pay the hash-aggregation model per qualifying row.
	aggCols := 0
	for _, a := range q.Aggs {
		aggCols++
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggCols++
		}
	}
	// The group-by pass re-reads the materialized group-key columns as
	// well as the aggregate inputs.
	aggBytes := int64(rows) * 4 * int64(aggCols+len(q.GroupBy))
	k := cpu.Config().Kernels
	if len(q.GroupBy) == 0 {
		cpu.ChargeStream(float64(matched)*0.4, aggBytes)
	} else {
		groups := int64(len(acc.order))
		cpu.ChargeStream(float64(matched)*(k.HashCyclesPerKey+k.AggUpdateCyclesPerRow), aggBytes)
		cpu.ChargeRandomAccesses(int64(matched), groups*32)
	}
	// COUNT(DISTINCT) maintains per-group hash sets: one extra hash+probe
	// per qualifying row per distinct slot over the sets' working set.
	if len(distinctSlots) > 0 {
		var setEntries int64
		for _, r := range acc.rows {
			for _, s := range r.sets {
				setEntries += int64(len(s))
			}
		}
		for range distinctSlots {
			cpu.ChargeCompute(float64(matched) * k.HashCyclesPerKey)
			cpu.ChargeRandomAccesses(int64(matched), setEntries*16)
		}
	}
	// A single global group always yields one output row.
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	aggCycles := cpu.Cycles() - aggStart
	spa.SetInt("cycles", aggCycles)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	total := cpu.Cycles() - runStart
	b := &telemetry.Breakdown{Device: "CPU", TotalCycles: total}
	var covered int64
	for _, e := range q.Joins {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "prep:" + e.Dim, Cycles: prepCycles[e.Dim], Rows: prepRows[e.Dim],
		})
		covered += prepCycles[e.Dim]
	}
	b.Operators = append(b.Operators, telemetry.OperatorStats{
		Operator: "filter", Cycles: filterCycles, Rows: int64(rows),
	})
	covered += filterCycles
	for _, e := range q.Joins {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "join:" + e.Dim, Cycles: x.perJoin[e.Dim], Rows: -1,
		})
		covered += x.perJoin[e.Dim]
	}
	b.Operators = append(b.Operators, telemetry.OperatorStats{
		Operator: "aggregate", Cycles: aggCycles, Rows: int64(len(acc.order)),
	})
	covered += aggCycles
	if oh := total - covered; oh != 0 {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "overhead", Cycles: oh, Rows: -1,
		})
	}
	x.breakdown = b

	if x.tel != nil {
		scanned := int64(rows)
		for _, e := range q.Joins {
			scanned += int64(db.MustTable(e.Dim).Rows())
		}
		reg := x.tel.Metrics()
		reg.Counter(telemetry.MetricRowsScanned, "Rows scanned across fact and dimension tables.",
			telemetry.L("device", "cpu")).Add(scanned)
	}
	return acc.result(q), nil
}

// intersect ANDs a nullable selection mask with a new mask.
func intersect(sel, m *bitvec.Vector) *bitvec.Vector {
	if sel == nil {
		return m
	}
	return sel.And(m)
}
