package exec

import (
	"reflect"
	"testing"

	"castle/internal/bitvec"
)

// TestDistinctUnderCanonicalOrder: the distinct-value list must come back
// in a canonical (ascending) order that is independent of row order, so
// repeated runs and different sweep partitionings are bit-identical.
func TestDistinctUnderCanonicalOrder(t *testing.T) {
	col := []uint32{9, 3, 9, 7, 3, 1, 7, 1, 5}
	mask := bitvec.New(len(col))
	for i := range col {
		mask.Set(i)
	}
	got := distinctUnder(col, 0, mask)
	want := []uint32{1, 3, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distinctUnder = %v, want %v", got, want)
	}

	// Same values encountered in a different order produce the same list.
	rev := []uint32{5, 1, 7, 1, 3, 7, 9, 3, 9}
	if got2 := distinctUnder(rev, 0, mask); !reflect.DeepEqual(got2, want) {
		t.Fatalf("row order leaked into output: %v vs %v", got2, want)
	}
}

// TestDistinctUnderRespectsMaskAndBase: only masked rows of the addressed
// partition contribute.
func TestDistinctUnderRespectsMaskAndBase(t *testing.T) {
	col := []uint32{100, 100, 4, 2, 4, 8}
	base := 2 // partition starts at col[2]
	mask := bitvec.New(4)
	mask.Set(0) // col[2] = 4
	mask.Set(1) // col[3] = 2
	mask.Set(3) // col[5] = 8
	got := distinctUnder(col, base, mask)
	want := []uint32{2, 4, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distinctUnder = %v, want %v", got, want)
	}
}
