package exec

// adaptive.go adds the mid-query re-placement checkpoint to the placed
// executor. The fact stage runs exactly as a materializing mixed run does —
// dimension builds on their placed devices, the fused Scan+Filter+JoinProbe
// sweep on the fact device, survivors gathered into ship batches — and then
// pauses: the observed survivor count is compared against the optimizer's
// estimate, and if the symmetric ratio exceeds the threshold the caller's
// replan hook re-runs the placement search for the unexecuted aggregation
// tail with the observed cardinality. The tail then runs on whichever
// device won — the ship path already handles either direction, and both
// tails consume identical survivor batches in identical order, so
// adaptation can change cycle counts but never answers.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// DefaultAdaptiveThreshold is the symmetric divergence ratio above which
// the checkpoint re-plans the tail: 2 means the observed survivor count
// must be off by more than 2x in either direction before the placement
// search re-runs. Small misestimates never flip the Figure-12 crossover,
// so re-planning under the threshold would be pure overhead.
const DefaultAdaptiveThreshold = 2.0

// AdaptiveOptions configures one adaptive run.
type AdaptiveOptions struct {
	// EstSurvivors is the planner's fact-stage survivor estimate the
	// checkpoint compares against (plan.PlacedPlan.EstSurvivors).
	EstSurvivors int64
	// Threshold is the symmetric divergence ratio that triggers a re-plan
	// (<= 0 selects DefaultAdaptiveThreshold). A ratio, not a percentage:
	// 2 fires when estimate and observation disagree by more than 2x.
	Threshold float64
	// Replan maps the observed survivor count to the aggregation tail's
	// device — typically a closure over optimizer.ReplaceTail. Nil keeps
	// the planned tail device (checkpoint fires are still reported).
	Replan func(observed int64) plan.Device
}

// AdaptiveStats reports what the checkpoint saw and did.
type AdaptiveStats struct {
	// EstSurvivors / Observed are the compared cardinalities.
	EstSurvivors int64
	Observed     int64
	// DivergencePct is the symmetric ratio as a percentage (100 = exact)
	// when defined; 0 when exactly one side was zero (no finite ratio —
	// see telemetry.DivergencePct).
	DivergencePct float64
	// Fired reports whether the divergence exceeded the threshold (or was
	// a zero-vs-nonzero split, which always fires).
	Fired bool
	// Replaced reports whether the tail actually moved to a different
	// device than planned.
	Replaced bool
	// TailDevice is where the aggregation tail ultimately ran.
	TailDevice plan.Device
}

// groupedVVArith mirrors plan-level feasibility: a grouped SUM(a*b) tail
// cannot run on CAPE (setAggLayout panics), so the checkpoint must never
// move such a tail there whatever the replan hook answers.
func groupedVVArith(q *plan.Query) bool {
	if len(q.GroupBy) == 0 {
		return false
	}
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			return true
		}
	}
	return false
}

// RunAdaptiveContext executes pp with the mid-query re-placement
// checkpoint. The fact stage always materializes its survivor batches (the
// checkpoint needs the complete observed count before the tail commits to
// a device), so streaming mode does not apply to adaptive runs.
func (x *Placed) RunAdaptiveContext(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database,
	opts AdaptiveOptions) (*Result, AdaptiveStats, error) {

	st := AdaptiveStats{EstSurvivors: opts.EstSurvivors, TailDevice: pp.AggDevice()}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := pp.Validate(); err != nil {
		return nil, st, err
	}

	q := pp.Phys.Query
	fact := db.MustTable(q.Fact)
	bk := newPlacedBreakdown()
	capeStart := x.castle.eng.TotalCycles()
	cpuStart := x.cpu.cpu.Cycles()

	var ships []*Batch
	var err error
	if pp.FactDevice() == plan.DeviceCAPE {
		ships, err = x.adaptiveCAPEFact(ctx, pp, db, bk)
	} else {
		ships, err = x.adaptiveCPUFact(ctx, pp, db, bk)
	}
	if err != nil {
		return nil, st, err
	}

	// --- Checkpoint: compare the observed survivor count against the
	// planner's estimate; past the threshold, re-run the tail placement
	// with the observation.
	for _, b := range ships {
		if b != nil {
			st.Observed += int64(len(b.Rows))
		}
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultAdaptiveThreshold
	}
	var defined bool
	st.DivergencePct, defined = telemetry.DivergencePct(st.EstSurvivors, st.Observed)
	// A zero-vs-nonzero split has no finite ratio but is by definition a
	// gross misestimate: it always fires.
	st.Fired = !defined || st.DivergencePct > 100*threshold
	tailDev := pp.AggDevice()
	if st.Fired && opts.Replan != nil {
		tailDev = opts.Replan(st.Observed)
	}
	if tailDev == plan.DeviceCAPE && groupedVVArith(q) {
		tailDev = plan.DeviceCPU
	}
	st.Replaced = tailDev != pp.AggDevice()
	st.TailDevice = tailDev

	// --- Aggregation tail on the (possibly re-placed) device, consuming
	// the identical ship batches in identical order either way.
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	_, shipCols := shipTailCols(q)
	acc := newGroupAcc(q.Aggs)
	spa := x.parent.Child("aggregate")
	if tailDev == plan.DeviceCPU {
		a0 := x.cpu.cpu.Cycles()
		if _, err := cpuAggregateShipments(ctx, x.cpu.cpu, q, fact, ships, acc, shipCols); err != nil {
			return nil, st, err
		}
		if len(q.GroupBy) == 0 && len(acc.order) == 0 {
			acc.add(nil, make([]int64, len(q.Aggs)), 0)
		}
		bk.row("aggregate", "CPU", x.cpu.cpu.Cycles()-a0, int64(len(acc.order)))
	} else {
		a0 := x.castle.eng.TotalCycles()
		if err := x.capeAggregateShipments(ctx, q, fact, ships, acc, x.castle.eng.Config().EnableADL); err != nil {
			return nil, st, err
		}
		if len(q.GroupBy) == 0 && len(acc.order) == 0 {
			acc.add(nil, make([]int64, len(q.Aggs)), 0)
		}
		bk.row("aggregate", "CAPE", x.castle.eng.TotalCycles()-a0, int64(len(acc.order)))
	}
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	res := acc.result(q)
	x.publish(bk, x.castle.eng.TotalCycles()-capeStart, x.cpu.cpu.Cycles()-cpuStart, StreamStats{})
	return res, st, nil
}

// adaptiveCAPEFact runs the materializing CAPE fact stage of an adaptive
// run: dimension builds on their placed devices (CPU-built dims ship their
// values arrays in), then the fused sweep over every MAXVL partition,
// survivors exported into per-lane batches. Identical kernels and charges
// to runCAPEFactCPUAgg's materializing path.
func (x *Placed) adaptiveCAPEFact(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database,
	bk *placedBreakdown) ([]*Batch, error) {

	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	camCapable := eng.Config().EnableADL
	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}

	dims := make([]dimSide, len(p.Joins))
	for i, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		if dev == plan.DeviceCAPE {
			dims[i] = capePrepareDim(eng, x.cat, q, e, db)
		} else {
			j := cpuPrepareDim(cpu, q, e, db)
			dims[i] = dimSide{edge: e, keys: j.keys, attrs: j.vals, totalRows: db.MustTable(e.Dim).Rows()}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(dims[i].keys)))
		if dev == plan.DeviceCPU {
			bytes := int64(4 * len(dims[i].keys) * (1 + len(e.NeedAttrs)))
			cpu.ChargeStreamWrite(0, bytes)
			eng.ChargeStreamRead(bytes)
			dims[i].buildGroups(e)
			if len(e.NeedAttrs) > 0 {
				eng.Scalar(int64(4 * len(dims[i].keys)))
			}
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(dims[i].keys)))
		}
		sp.SetInt("rows_out", int64(len(dims[i].keys)))
		sp.End()
	}

	factRows := db.MustTable(q.Fact).Rows()
	maxvl := eng.Config().MAXVL
	parts := (factRows + maxvl - 1) / maxvl
	k := int(x.par.Load())
	if k < 1 || parts < 1 {
		k = 1
	}
	if k > parts && parts > 0 {
		k = parts
	}
	attrKeys, shipCols := shipTailCols(q)
	sweep := x.parent.Child("fact-sweep")
	ships := make([]*Batch, k)
	laneRows := make([]int64, k)

	if k == 1 {
		s := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, perJoin: bk.perJoin, span: sweep}
		ships[0] = NewBatch(0, attrKeys)
		var exportCycles int64
		for base := 0; base < factRows; base += maxvl {
			vl := factRows - base
			if vl > maxvl {
				vl = maxvl
			}
			rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
			if err != nil {
				return nil, err
			}
			e0 := eng.TotalCycles()
			exportSurvivors(eng, ships[0], rowMask, base, attrKeys, attrRegs, shipCols)
			exportCycles += eng.TotalCycles() - e0
			if camCapable {
				eng.SetLayout(cape.CAMMode)
			}
		}
		bk.row("filter", "CAPE", s.filterCycles, int64(factRows))
		for _, e := range p.Joins {
			bk.row("join:"+e.Dim, "CAPE", bk.perJoin[e.Dim], -1)
		}
		bk.row("xfer:aggregate", "CAPE+CPU", exportCycles, int64(len(ships[0].Rows)))
	} else {
		group := eng.Fork(k)
		sweeps := make([]*tileSweep, k)
		for i, t := range group.Tiles() {
			if x.tel != nil {
				AttachEngineTelemetry(t, x.tel)
			}
			sweeps[i] = &tileSweep{cat: x.cat, opts: x.castle.opts, eng: t,
				perJoin: make(map[string]int64, len(p.Joins)),
				span:    sweep.Child(fmt.Sprintf("tile%d", i))}
			ships[i] = NewBatch(0, attrKeys)
		}
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				for pi := ti; pi < parts; pi += k {
					base := pi * maxvl
					vl := factRows - base
					if vl > maxvl {
						vl = maxvl
					}
					rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
					if err != nil {
						errs[ti] = err
						return
					}
					exportSurvivors(s.eng, ships[ti], rowMask, base, attrKeys, attrRegs, shipCols)
					if camCapable {
						s.eng.SetLayout(cape.CAMMode)
					}
					laneRows[ti] += int64(vl)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		tileCycles := group.Merge()
		var sum, max int64
		for t, cy := range tileCycles {
			bk.row(fmt.Sprintf("sweep[%d]", t), "CAPE", cy, laneRows[t])
			sum += cy
			if cy > max {
				max = cy
			}
		}
		bk.row("parallel-overlap", "CAPE", max-sum, -1)
		for _, s := range sweeps {
			for d, cy := range s.perJoin {
				bk.perJoin[d] += cy
			}
		}
	}
	sweep.SetInt("tiles", int64(k))
	sweep.End()
	return ships, nil
}

// adaptiveCPUFact runs the materializing CPU fact stage of an adaptive
// run: dimension builds on their placed devices (CAPE-built dims ship
// out), the filter+probe pass over the fact rows, survivors gathered into
// per-lane batches. Identical kernels and charges to runCPUFactCAPEAgg's
// materializing path.
func (x *Placed) adaptiveCPUFact(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database,
	bk *placedBreakdown) ([]*Batch, error) {

	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	camCapable := eng.Config().EnableADL

	joins := make([]dimJoin, 0, len(p.Joins))
	for _, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		var j dimJoin
		if dev == plan.DeviceCPU {
			j = cpuPrepareDim(cpu, q, e, db)
		} else {
			if camCapable {
				eng.SetLayout(cape.CAMMode)
			}
			d := capePrepareDim(eng, x.cat, q, e, db)
			j = dimJoin{edge: e, keys: d.keys, vals: d.attrs, fraction: 1}
			if d.totalRows > 0 {
				j.fraction = float64(len(d.keys)) / float64(d.totalRows)
			}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(j.keys)))
		if dev == plan.DeviceCAPE {
			bytes := int64(4 * len(j.keys) * (1 + len(e.NeedAttrs)))
			eng.ChargeStreamWrite(bytes)
			cpu.ChargeStream(0, bytes)
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(j.keys)))
		}
		joins = append(joins, j)
		sp.SetInt("rows_out", int64(len(j.keys)))
		sp.End()
	}
	sort.SliceStable(joins, func(i, j int) bool { return joins[i].fraction < joins[j].fraction })

	rows := db.MustTable(q.Fact).Rows()
	k := int(x.par.Load())
	if k < 1 {
		k = 1
	}
	if k > rows {
		k = rows
	}
	if k < 1 {
		k = 1
	}
	attrKeys, shipCols := shipTailCols(q)
	sweep := x.parent.Child("fact-sweep")
	ships := make([]*Batch, k)
	laneRows := make([]int64, k)

	if k == 1 {
		s := &cpuSweep{cpu: cpu, perJoin: bk.perJoin, span: sweep}
		sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, nil, 0, rows)
		if err != nil {
			return nil, err
		}
		x0 := cpu.Cycles()
		ships[0] = gatherCPUSurvivors(cpu, sel, attrCols, attrKeys, 0, rows, shipCols)
		bk.row("filter", "CPU", s.filterCycles, int64(rows))
		for _, e := range p.Joins {
			bk.row("join:"+e.Dim, "CPU", bk.perJoin[e.Dim], -1)
		}
		bk.row("xfer:aggregate", "CAPE+CPU", cpu.Cycles()-x0, int64(len(ships[0].Rows)))
	} else {
		tables, err := x.buildShipTables(ctx, cpu, joins, bk)
		if err != nil {
			return nil, err
		}
		cores := cpu.Fork(k)
		sweeps := make([]*cpuSweep, k)
		for i, core := range cores {
			if x.tel != nil {
				AttachCPUTelemetry(core, x.tel)
			}
			sweeps[i] = &cpuSweep{cpu: core,
				perJoin: make(map[string]int64, len(joins)),
				span:    sweep.Child(fmt.Sprintf("core%d", i))}
		}
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			base, end := i*rows/k, (i+1)*rows/k
			wg.Add(1)
			go func(ti, base, end int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, tables, base, end)
				if err != nil {
					errs[ti] = err
					return
				}
				ships[ti] = gatherCPUSurvivors(s.cpu, sel, attrCols, attrKeys, base, end, shipCols)
				laneRows[ti] = int64(end - base)
			}(i, base, end)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var maxRaw float64
		var sum, max int64
		for i, s := range sweeps {
			cy := s.cpu.Cycles()
			bk.row(fmt.Sprintf("sweep[%d]", i), "CPU", cy, laneRows[i])
			sum += cy
			if cy > max {
				max = cy
			}
			if raw := s.cpu.RawCycles(); raw > maxRaw {
				maxRaw = raw
			}
			for d, cyj := range s.perJoin {
				bk.perJoin[d] += cyj
			}
		}
		bk.row("parallel-overlap", "CPU", max-sum, -1)
		cpu.AbsorbElapsed(maxRaw)
		for _, core := range cores {
			cpu.AbsorbTraffic(core)
		}
	}
	sweep.SetInt("cores", int64(k))
	sweep.End()
	return ships, nil
}
