package exec

// shared_cpu.go runs a multi-query shared scan on one baseline CPU core:
// the fact table sweeps in bounded row chunks; each chunk's union of member
// fact columns streams from memory once, then every member's predicate
// sets, probes and aggregation visit run against the now-resident chunk
// with resident kernel variants that bill compute and random accesses but
// not a second column stream. Member results are bit-identical to solo
// execution — the functional kernels are unchanged, only the charge model
// knows the columns are shared. Shared stream cycles are attributed
// pro-rata (largest remainder) so member totals partition the group run
// exactly, mirroring shared_cape.go.

import (
	"context"
	"fmt"
	"sort"

	"castle/internal/baseline"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// CPUSharedEligible reports whether the member queries can run as one fused
// CPU sweep: they must sweep the same fact table. (Unlike CAPE there is no
// register budget and SUM(a*b) members are fine — the visit loop computes
// products row-at-a-time.)
func CPUSharedEligible(queries []*plan.Query) error {
	if len(queries) == 0 {
		return fmt.Errorf("exec: shared CPU sweep needs at least one member")
	}
	fact := queries[0].Fact
	for i, q := range queries {
		if q == nil {
			return fmt.Errorf("exec: shared CPU sweep: member %d is nil", i)
		}
		if q.Fact != fact {
			return fmt.Errorf("exec: shared CPU sweep: member %d sweeps %q, group sweeps %q", i, q.Fact, fact)
		}
	}
	return nil
}

// sharedQueryCols returns the union of fact-storage columns the fused CPU
// sweep streams once per chunk, in first-use order (the CPU twin of
// plan.SharedScan.SharedColumns, keyed off bound queries rather than
// physical plans).
func sharedQueryCols(queries []*plan.Query) []string {
	seen := make(map[string]struct{})
	var cols []string
	add := func(name string) {
		if name == "" {
			return
		}
		if _, dup := seen[name]; dup {
			return
		}
		seen[name] = struct{}{}
		cols = append(cols, name)
	}
	for _, q := range queries {
		for _, p := range q.FactPreds {
			add(p.Column)
		}
		for _, j := range q.Joins {
			add(j.FactFK)
		}
		for _, a := range q.Aggs {
			if a.Kind != plan.AggCount {
				add(a.A)
			}
			if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
				add(a.B)
			}
		}
		for _, g := range q.GroupBy {
			if g.Table == q.Fact {
				add(g.Column)
			}
		}
	}
	return cols
}

// RunSharedCPU executes the member queries as one fused chunked fact sweep
// on cpu. batchRows is the chunk size in fact rows (<= 0 selects
// defaultStreamBatchRows). The group runs serially on the single core — a
// group takes one device lease, not N. Cancellation is checked at every
// member-phase boundary within each chunk.
func RunSharedCPU(ctx context.Context, cpu *baseline.CPU, queries []*plan.Query,
	db *storage.Database, batchRows int) ([]SharedMemberResult, SharedStats, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := CPUSharedEligible(queries); err != nil {
		return nil, SharedStats{}, err
	}
	n := len(queries)
	factName := queries[0].Fact
	fact := db.MustTable(factName)
	rows := fact.Rows()
	if batchRows <= 0 {
		batchRows = defaultStreamBatchRows
	}
	runStart := cpu.Cycles()

	// Per-member prep on the shared core: dimension filters, probe-order
	// sort and prebuilt hash tables, all charged exclusively to the member.
	sweeps := make([]*cpuSweep, n)
	joins := make([][]dimJoin, n)
	tables := make([][]joinTable, n)
	prepCycles := make([]map[string]int64, n)
	prepRows := make([]map[string]int64, n)
	buildCycles := make([]int64, n)
	exclusive := make([]int64, n)
	for i, q := range queries {
		sweeps[i] = &cpuSweep{cpu: cpu, acc: newGroupAcc(q.Aggs), resident: true,
			perJoin: make(map[string]int64, len(q.Joins))}
		prepCycles[i] = make(map[string]int64, len(q.Joins))
		prepRows[i] = make(map[string]int64, len(q.Joins))
		joins[i] = make([]dimJoin, 0, len(q.Joins))
		for _, e := range q.Joins {
			if err := ctx.Err(); err != nil {
				return nil, SharedStats{}, err
			}
			before := cpu.Cycles()
			j := cpuPrepareDim(cpu, q, e, db)
			joins[i] = append(joins[i], j)
			prepCycles[i][e.Dim] = cpu.Cycles() - before
			prepRows[i][e.Dim] = int64(len(j.keys))
			exclusive[i] += cpu.Cycles() - before
		}
		sort.SliceStable(joins[i], func(a, b int) bool { return joins[i][a].fraction < joins[i][b].fraction })

		buildStart := cpu.Cycles()
		tables[i] = make([]joinTable, len(joins[i]))
		for ji, j := range joins[i] {
			before := cpu.Cycles()
			if len(j.edge.NeedAttrs) == 0 {
				tables[i][ji].semi = cpu.BuildHashSemi(j.keys)
			} else {
				tables[i][ji].attr = make([]*baseline.HashTable, len(j.edge.NeedAttrs))
				for ai := range j.edge.NeedAttrs {
					tables[i][ji].attr[ai] = cpu.BuildHashMap(j.keys, j.vals[ai])
				}
			}
			// Builds report inside the member's "join:" rows, like the solo
			// streaming path.
			sweeps[i].perJoin[j.edge.Dim] += cpu.Cycles() - before
		}
		buildCycles[i] = cpu.Cycles() - buildStart
		exclusive[i] += buildCycles[i]
	}

	cols := sharedQueryCols(queries)

	// Fused chunked sweep: stream the union columns once per chunk, then run
	// every member's resident pipeline over the chunk before advancing.
	var sharedCycles int64
	for base := 0; base < rows; base += batchRows {
		if err := ctx.Err(); err != nil {
			return nil, SharedStats{}, err
		}
		end := base + batchRows
		if end > rows {
			end = rows
		}
		sharedBefore := cpu.Cycles()
		for range cols {
			cpu.ChargeStream(0, int64(end-base)*4)
		}
		sharedCycles += cpu.Cycles() - sharedBefore

		for i, q := range queries {
			before := cpu.Cycles()
			if err := sweeps[i].run(ctx, q, db, joins[i], tables[i], base, end); err != nil {
				return nil, SharedStats{}, err
			}
			exclusive[i] += cpu.Cycles() - before
		}
	}

	total := cpu.Cycles() - runStart
	var sumExclusive int64
	for _, e := range exclusive {
		sumExclusive += e
	}
	residual := total - sharedCycles - sumExclusive
	share := func(t int64, i int) int64 {
		s := t / int64(n)
		if int64(i) < t%int64(n) {
			s++
		}
		return s
	}

	out := make([]SharedMemberResult, n)
	for i, q := range queries {
		s := sweeps[i]
		if len(q.GroupBy) == 0 && len(s.acc.order) == 0 {
			s.acc.add(nil, make([]int64, len(q.Aggs)), 0)
		}
		res := s.acc.result(q)
		cycles := exclusive[i] + share(sharedCycles, i) + share(residual, i)

		b := &telemetry.Breakdown{Device: "CPU", TotalCycles: cycles}
		var covered int64
		for _, e := range q.Joins {
			cy := prepCycles[i][e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "prep:" + e.Dim, Device: "CPU", Cycles: cy, Rows: prepRows[i][e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "shared-scan", Device: "CPU", Cycles: share(sharedCycles, i), Rows: int64(rows)})
		covered += share(sharedCycles, i)
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "filter", Device: "CPU", Cycles: s.filterCycles, Rows: int64(rows)})
		covered += s.filterCycles
		for _, e := range q.Joins {
			cy := s.perJoin[e.Dim]
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: "join:" + e.Dim, Device: "CPU", Cycles: cy, Rows: prepRows[i][e.Dim]})
			covered += cy
		}
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "aggregate", Device: "CPU", Cycles: s.aggCycles, Rows: int64(len(res.Rows))})
		covered += s.aggCycles
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "overhead", Device: "CPU", Cycles: cycles - covered, Rows: -1})

		out[i] = SharedMemberResult{Result: res, Cycles: cycles, Breakdown: b}
	}
	return out, SharedStats{SharedScanCycles: sharedCycles, TotalCycles: total, Members: n}, nil
}
