package exec

// cape_sweep.go drives the fused CAPE fact stage over one partition: Scan
// (CSB loads) -> Filter -> JoinProbe per edge -> Aggregate. tileSweep is the
// per-engine kernel context; the serial path runs one over the executor's
// engine, the parallel path one per forked tile, and exec.Placed reuses the
// filter/join half when the aggregation tail is placed on the CPU.

import (
	"context"
	"fmt"

	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// regAlloc hands out CSB vector registers.
type regAlloc struct {
	next  int
	max   int
	byCol map[string]cape.VReg
}

func newRegAlloc(n int) *regAlloc {
	return &regAlloc{max: n, byCol: make(map[string]cape.VReg)}
}

func (r *regAlloc) fresh() cape.VReg {
	if r.next >= r.max {
		panic(fmt.Sprintf("exec: out of CSB vector registers (%d)", r.max))
	}
	v := cape.VReg(r.next)
	r.next++
	return v
}

func (r *regAlloc) forCol(name string) (cape.VReg, bool) {
	if v, ok := r.byCol[name]; ok {
		return v, true
	}
	v := r.fresh()
	r.byCol[name] = v
	return v, false
}

// tileSweep is one engine's share of the fact sweep and its accounting: the
// serial path runs a single sweep over the executor's own engine; the
// parallel path runs one per forked tile, each on its own goroutine. A
// sweep only reads shared state (catalog, options, storage, prepared
// dimensions) and writes its own fields, which is what makes the fan-out
// race-free.
type tileSweep struct {
	cat  *stats.Catalog
	opts CastleOptions
	eng  *cape.Engine
	acc  *groupAcc

	perJoin      map[string]int64
	filterCycles int64
	aggCycles    int64

	// span hosts the per-operator child spans: the "fact-sweep" span when
	// serial, this tile's "tileN" span when parallel.
	span *telemetry.Span
}

// runPartition executes the fused operator pipeline over one fact
// partition: selections -> joins (right-deep then left-deep segments) ->
// aggregation (Algorithm 2). Cancellation is checked at every operator
// boundary within the partition.
func (s *tileSweep) runPartition(ctx context.Context, p *plan.Physical, db *storage.Database,
	dims []dimSide, base, vl int, needGPArith, camCapable bool) error {

	rowMask, regs, attrRegs, loadFactCol, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
	if err != nil {
		return err
	}
	return s.runAggregate(ctx, p, db, base, vl, rowMask, regs, attrRegs, loadFactCol,
		needGPArith, camCapable)
}

// runFilterJoins executes the partition's Scan+Filter+JoinProbe operators
// (the fused fact stage up to, but not including, aggregation) and returns
// the surviving row mask plus the register state the aggregation tail needs:
// the allocator, the materialized dimension-attribute vectors, and the
// memoising fact-column loader.
func (s *tileSweep) runFilterJoins(ctx context.Context, p *plan.Physical, db *storage.Database,
	dims []dimSide, base, vl int) (*bitvec.Vector, *regAlloc, map[string]cape.VReg, func(string) cape.VReg, error) {

	q := p.Query
	eng := s.eng
	fact := db.MustTable(q.Fact)
	eng.SetVL(vl)

	regs := newRegAlloc(eng.Config().NumVRegs)
	loadFactCol := func(name string) cape.VReg {
		r, cached := regs.forCol(name)
		if !cached {
			col := fact.MustColumn(name)
			eng.Load(r, col.Data[base:base+vl], colWidth(s.cat, q.Fact, name))
		}
		return r
	}
	rowMask, attrRegs, err := s.runFilterJoinsWith(ctx, p, db, dims, base, vl, regs, loadFactCol)
	return rowMask, regs, attrRegs, loadFactCol, err
}

// runFilterJoinsWith is runFilterJoins over caller-supplied register state:
// the shared fused sweep (shared_cape.go) preloads the member union of fact
// columns into one allocator and runs each member's filter+join pipeline
// against it, so every column is loaded once per morsel regardless of how
// many member queries read it. The caller is responsible for eng.SetVL.
func (s *tileSweep) runFilterJoinsWith(ctx context.Context, p *plan.Physical, db *storage.Database,
	dims []dimSide, base, vl int, regs *regAlloc,
	loadFactCol func(string) cape.VReg) (*bitvec.Vector, map[string]cape.VReg, error) {

	q := p.Query
	eng := s.eng
	fact := db.MustTable(q.Fact)

	// --- Selections (Figure 4): per-predicate masks combined with mask ops.
	spf := s.span.Child("filter")
	before := eng.TotalCycles()
	eng.Scalar(8) // loop setup
	var rowMask *bitvec.Vector
	for _, pr := range q.FactPreds {
		m := predMask(eng, loadFactCol(pr.Column), pr)
		if rowMask == nil {
			rowMask = m
		} else {
			rowMask = eng.MaskAnd(rowMask, m)
		}
	}
	if rowMask == nil {
		rowMask = eng.MaskInit(true)
	}
	cy := eng.TotalCycles() - before
	s.filterCycles += cy
	spf.SetInt("cycles", cy)
	spf.SetInt("rows", int64(vl))
	spf.End()

	// --- Right-deep joins: filtered dimensions probe the resident fact
	// partition (Algorithm 1 with the probe side swapped, §3.2).
	attrRegs := make(map[string]cape.VReg) // "dim.attr" -> fact-aligned vector
	for di := 0; di < p.Switch; di++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		d := dims[di]
		spj := s.span.Child("join:" + d.edge.Dim)
		before := eng.TotalCycles()
		fkReg := loadFactCol(d.edge.FactFK)
		joinMask := s.probeFactWithDim(fkReg, d, regs, attrRegs)
		rowMask = eng.MaskAnd(rowMask, joinMask)
		cy := eng.TotalCycles() - before
		s.perJoin[d.edge.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("probe_keys", int64(len(d.keys)))
		spj.End()
	}

	// --- Left-deep segment: surviving intermediate rows probe
	// CSB-resident dimension partitions.
	for di := p.Switch; di < len(p.Joins); di++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		d := dims[di]
		spj := s.span.Child("join:" + d.edge.Dim)
		before := eng.TotalCycles()
		loadFactCol(d.edge.FactFK) // FK column resident for the CP to read
		rowMask = s.probeDimWithRows(fact, d, base, vl, rowMask, regs, attrRegs)
		cy := eng.TotalCycles() - before
		s.perJoin[d.edge.Dim] += cy
		spj.SetInt("cycles", cy)
		spj.SetInt("dim_rows", int64(len(d.keys)))
		spj.End()
	}
	return rowMask, attrRegs, nil
}

// runAggregate executes the partition's Aggregate operator (Algorithm 2),
// fused on the row mask runFilterJoins produced.
func (s *tileSweep) runAggregate(ctx context.Context, p *plan.Physical, db *storage.Database,
	base, vl int, rowMask *bitvec.Vector, regs *regAlloc, attrRegs map[string]cape.VReg,
	loadFactCol func(string) cape.VReg, needGPArith, camCapable bool) error {

	if err := ctx.Err(); err != nil {
		return err
	}
	q := p.Query
	eng := s.eng
	fact := db.MustTable(q.Fact)
	spa := s.span.Child("aggregate")
	before := eng.TotalCycles()
	if needGPArith && camCapable {
		// Bit-serial vv arithmetic requires the bitsliced layout: switch,
		// carry the row mask across with vrelayout, and reload the
		// aggregate input columns in GP layout (§5.2).
		eng.SetLayout(cape.GPMode)
		rowMask = eng.Relayout(rowMask)
		regs = newRegAlloc(eng.Config().NumVRegs)
		if len(q.GroupBy) > 0 {
			panic("exec: GROUP BY with vv-arithmetic aggregates is outside SSB's shape")
		}
	}

	if len(q.GroupBy) == 0 {
		s.aggregateScalar(q, fact, base, vl, rowMask, regs)
	} else {
		s.aggregateGroups(q, fact, base, vl, rowMask, regs, attrRegs, loadFactCol)
	}
	cy := eng.TotalCycles() - before
	s.aggCycles += cy
	spa.SetInt("cycles", cy)
	spa.End()
	return nil
}

// chargeFissionOverhead models disabling operator fusion (§7.4): each
// operator boundary materializes its output mask through main memory once
// per partition instead of keeping it resident in the CSB. parts is the
// number of partitions this sweep executed (a tile charges only its own
// share).
func (s *tileSweep) chargeFissionOverhead(p *plan.Physical, parts, maxvl int) {
	eng := s.eng
	boundaries := 1 + len(p.Joins) // selections | joins... | aggregation
	maskBytes := int64((maxvl + 7) / 8)
	for i := 0; i < parts*boundaries; i++ {
		eng.ChargeStreamWrite(maskBytes)
		eng.ChargeStreamRead(maskBytes)
		eng.Scalar(40) // per-sweep loop re-setup
	}
}
