package exec

import (
	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/isa"
	"castle/internal/telemetry"
)

// engineHook bridges cape.CycleHook onto the metrics registry: every CSB
// charge increments the per-class cycle counter, so after a run the
// castle_csb_cycles_total series match cape.Stats.CSBCyclesByClass exactly
// (both sides are fed by the same charge paths).
type engineHook struct {
	csb [isa.NumClasses]*telemetry.Counter
	cp  *telemetry.Counter
	mem *telemetry.Counter
}

func (h *engineHook) CSBCycles(class isa.Class, cycles int64) { h.csb[class].Add(cycles) }
func (h *engineHook) CPCycles(cycles int64)                   { h.cp.Add(cycles) }
func (h *engineHook) MemCycles(cycles int64)                  { h.mem.Add(cycles) }

// AttachEngineTelemetry streams a CAPE engine's cycle charges into tel's
// class-cycle counters. A nil tel detaches any previous hook.
func AttachEngineTelemetry(eng *cape.Engine, tel *telemetry.Telemetry) {
	if tel == nil {
		eng.AttachCycleHook(nil)
		return
	}
	reg := tel.Metrics()
	h := &engineHook{
		cp:  reg.Counter(telemetry.MetricCPCycles, "Simulated CAPE control-processor cycles."),
		mem: reg.Counter(telemetry.MetricMemCycles, "Simulated CAPE VMU/memory transfer cycles."),
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		h.csb[c] = reg.Counter(telemetry.MetricCSBCycles,
			"Simulated CSB cycles by Figure 7 instruction class.",
			telemetry.L("class", c.String()))
	}
	eng.AttachCycleHook(h)
}

// AttachCPUTelemetry streams a baseline CPU's cycle charges into tel. The
// timing model bills fractional cycles; the bridge accumulates them and
// forwards whole-cycle deltas so the counter tracks cpu.Cycles().
func AttachCPUTelemetry(cpu *baseline.CPU, tel *telemetry.Telemetry) {
	if tel == nil {
		cpu.AttachCycleHook(nil)
		return
	}
	ctr := tel.Metrics().Counter(telemetry.MetricCPUCycles, "Simulated baseline-CPU cycles.")
	var acc float64
	var billed int64
	cpu.AttachCycleHook(func(cycles float64) {
		acc += cycles
		if d := int64(acc) - billed; d > 0 {
			ctr.Add(d)
			billed += d
		}
	})
}
