package exec

// race_test.go pins the SetParallelism contract: both executors document
// that the fan-out degree may be retargeted concurrently with an in-flight
// RunContext (an in-flight run keeps the degree it observed at entry).
// Under -race the old implementations — a plain int mutated on the receiver
// — fail here; the atomic ones must not.

import (
	"context"
	"sync"
	"testing"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/ssb"
)

func TestSetParallelismConcurrentWithRuns(t *testing.T) {
	database, cat := db(t)
	bound := bindQuery(t, database, ssb.Queries()[3].SQL)
	cfg := smallCape()
	p := optimize(t, bound, cat, cfg.MAXVL)
	want := Reference(bound, database)

	c := NewCastle(cape.New(cfg), cat, DefaultCastleOptions())
	x := NewCPUExec(baseline.New(baseline.DefaultConfig()))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetParallelism(1 + k%4)
			x.SetParallelism(1 + k%4)
		}
	}()

	// The engines run one query at a time; the races under test are the
	// executor-level option writes against the run's own reads.
	for i := 0; i < 6; i++ {
		res, err := c.RunContext(context.Background(), p, database)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(res) {
			t.Fatalf("CAPE run %d diverged while parallelism was retargeted", i)
		}
		cres, err := x.RunContext(context.Background(), bound, database)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(cres) {
			t.Fatalf("CPU run %d diverged while parallelism was retargeted", i)
		}
	}
	close(stop)
	wg.Wait()
}
