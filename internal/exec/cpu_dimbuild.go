package exec

// cpu_dimbuild.go is the CPU DimBuild kernel: branchless SIMD selection
// scans over one dimension plus key/attribute-value collection, feeding
// either inline hash-table builds (serial sweeps) or the prebuilt read-only
// tables the parallel probe pass shares.

import (
	"castle/internal/baseline"
	"castle/internal/bitvec"
	"castle/internal/plan"
	"castle/internal/storage"
)

// dimJoin is a filtered dimension prepared for the probe pass: qualifying
// keys, the attribute values aligned with them (one slice per NeedAttrs
// entry), and the survival fraction that orders the pipeline.
type dimJoin struct {
	edge     plan.JoinEdge
	keys     []uint32
	vals     [][]uint32
	fraction float64
}

// joinTable holds the hash tables of one join edge when they are prebuilt
// on the primary core (parallel runs): the semi-join table, or one map
// table per needed attribute. Tables are read-only after build, so forked
// cores probe them concurrently.
type joinTable struct {
	semi *baseline.HashTable
	attr []*baseline.HashTable
}

// cpuPrepareDim filters one dimension on a core: selection scans carry the
// cycle cost, key and attribute-value collection is functional only. Prep
// always runs on a run's primary core — it is charged once per run, not
// per forked core.
func cpuPrepareDim(cpu *baseline.CPU, q *plan.Query, e plan.JoinEdge, db *storage.Database) dimJoin {
	dim := db.MustTable(e.Dim)
	preds := q.DimPreds[e.Dim]

	var dimMask *bitvec.Vector
	for _, pr := range preds {
		col := dim.MustColumn(pr.Column)
		pr := pr
		m := cpu.SelectionScan(col.Data, func(v uint32) bool { return pr.Matches(v) })
		if dimMask == nil {
			dimMask = m
		} else {
			dimMask.And(m)
			cpu.ChargeCompute(float64(dim.Rows()) / 64)
		}
	}

	keyCol := dim.MustColumn(e.DimKey).Data
	attrData := make([][]uint32, len(e.NeedAttrs))
	for ai, a := range e.NeedAttrs {
		attrData[ai] = dim.MustColumn(a).Data
	}
	j := dimJoin{edge: e, vals: make([][]uint32, len(e.NeedAttrs))}
	collect := func(i int) {
		j.keys = append(j.keys, keyCol[i])
		for ai := range attrData {
			j.vals[ai] = append(j.vals[ai], attrData[ai][i])
		}
	}
	if dimMask == nil {
		for i := range keyCol {
			collect(i)
		}
	} else {
		for i := dimMask.First(); i != -1; i = dimMask.NextAfter(i) {
			collect(i)
		}
	}
	j.fraction = 1.0
	if dim.Rows() > 0 {
		j.fraction = float64(len(j.keys)) / float64(dim.Rows())
	}
	return j
}
