// Package exec contains Castle's physical execution engines: the CAPE
// executor (associative selection, Algorithm 1 joins, Algorithm 2
// aggregation, with operator fusion and the ADL/MKS/ABA fast paths), the
// baseline AVX-512 CPU executor (pipelined left-deep hash joins), and a
// naive row-at-a-time reference engine used to cross-check both.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"castle/internal/plan"
	"castle/internal/storage"
)

// Row is one group of a query result: the group-key values (encoded) and
// one aggregate value per aggregate expression.
type Row struct {
	Keys []uint32
	Aggs []int64
}

// Result is a query result relation.
type Result struct {
	GroupBy  []plan.ColRef
	AggExprs []plan.AggExpr
	Rows     []Row
}

// Normalize sorts rows by group key so results from different engines
// compare deterministically (the paper omits the final ORDER BY; sorting
// here is only for comparison).
func (r *Result) Normalize() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i].Keys, r.Rows[j].Keys
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Equal reports whether two normalized results are identical.
func (r *Result) Equal(o *Result) bool {
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		a, b := r.Rows[i], o.Rows[i]
		if len(a.Keys) != len(b.Keys) || len(a.Aggs) != len(b.Aggs) {
			return false
		}
		for k := range a.Keys {
			if a.Keys[k] != b.Keys[k] {
				return false
			}
		}
		for k := range a.Aggs {
			if a.Aggs[k] != b.Aggs[k] {
				return false
			}
		}
	}
	return true
}

// Format renders the result with dictionary-encoded keys decoded.
func (r *Result) Format(db *storage.Database) string {
	var b strings.Builder
	for _, g := range r.GroupBy {
		fmt.Fprintf(&b, "%-24s", g.String())
	}
	for _, a := range r.AggExprs {
		fmt.Fprintf(&b, "%20s", a.String())
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, g := range r.GroupBy {
			col := db.MustTable(g.Table).MustColumn(g.Column)
			if col.Dict != nil {
				fmt.Fprintf(&b, "%-24s", col.Dict.Decode(row.Keys[i]))
			} else {
				fmt.Fprintf(&b, "%-24d", row.Keys[i])
			}
		}
		for _, v := range row.Aggs {
			fmt.Fprintf(&b, "%20d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// groupAcc accumulates per-group aggregate values across partitions and
// engines. Partial values merge per aggregate kind: sums, counts and
// averages (sum side) add; MIN/MAX take the extremum. Row counts are
// tracked for AVG's final division.
type groupAcc struct {
	aggs  []plan.AggExpr
	order []string
	rows  map[string]*accRow
}

type accRow struct {
	keys  []uint32
	vals  []int64
	count int64
	// sets holds the value sets of COUNT(DISTINCT) slots (nil elsewhere).
	sets []map[uint32]struct{}
}

func newGroupAcc(aggs []plan.AggExpr) *groupAcc {
	return &groupAcc{aggs: aggs, rows: make(map[string]*accRow)}
}

func groupKeyString(keys []uint32) string {
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d|", k)
	}
	return b.String()
}

// add merges partial aggregate values for a group key. vals[i] is the
// partial result of aggs[i] over rows source rows (the raw value for a
// single row, or a per-partition partial). Calls with rows == 0 only
// materialize the group (used for the grand-aggregate zero row).
func (g *groupAcc) add(keys []uint32, vals []int64, rows int64) {
	r, first := g.row(keys, rows)
	if rows == 0 || r == nil {
		return
	}
	for i, v := range vals {
		switch g.aggs[i].Kind {
		case plan.AggMin:
			if first || v < r.vals[i] {
				r.vals[i] = v
			}
		case plan.AggMax:
			if first || v > r.vals[i] {
				r.vals[i] = v
			}
		case plan.AggCountDistinct:
			// Merged through addDistinct; the scalar slot is derived at
			// result time.
		default: // sums, counts, averages (sum side)
			r.vals[i] += v
		}
	}
}

// row fetches or creates the accumulator row; the bool reports whether
// this call contributes the row's first source rows (so MIN/MAX initialize
// rather than compare). Returns nil when rows == 0 (the row is still
// materialized, for the grand-aggregate zero row).
func (g *groupAcc) row(keys []uint32, rows int64) (*accRow, bool) {
	ks := groupKeyString(keys)
	r, ok := g.rows[ks]
	if !ok {
		r = &accRow{keys: append([]uint32(nil), keys...), vals: make([]int64, len(g.aggs))}
		g.rows[ks] = r
		g.order = append(g.order, ks)
	}
	if rows == 0 {
		return nil, false
	}
	first := r.count == 0
	r.count += rows
	return r, first
}

// addDistinct merges raw values into a COUNT(DISTINCT) slot's set. Call it
// alongside add (in either order) with the same group key.
func (g *groupAcc) addDistinct(keys []uint32, slot int, values []uint32) {
	ks := groupKeyString(keys)
	r, ok := g.rows[ks]
	if !ok {
		r = &accRow{keys: append([]uint32(nil), keys...), vals: make([]int64, len(g.aggs))}
		g.rows[ks] = r
		g.order = append(g.order, ks)
	}
	if r.sets == nil {
		r.sets = make([]map[uint32]struct{}, len(g.aggs))
	}
	if r.sets[slot] == nil {
		r.sets[slot] = make(map[uint32]struct{}, len(values))
	}
	for _, v := range values {
		r.sets[slot][v] = struct{}{}
	}
}

// merge folds a partial accumulator (one tile's or one core's share of a
// parallel sweep) into g by replaying each partial row through add and
// addDistinct. Sums, counts and extrema are associative and commutative,
// and result() normalizes row order, so the merged result is bit-identical
// to a serial run regardless of how the rows were partitioned — callers
// still merge partials in fixed tile order so the accumulator's internal
// insertion order is deterministic too.
func (g *groupAcc) merge(o *groupAcc) {
	for _, ks := range o.order {
		r := o.rows[ks]
		g.add(r.keys, r.vals, r.count)
		if r.sets == nil {
			continue
		}
		for slot, set := range r.sets {
			if set == nil {
				continue
			}
			values := make([]uint32, 0, len(set))
			for v := range set {
				values = append(values, v)
			}
			g.addDistinct(r.keys, slot, values)
		}
	}
}

// result materializes the accumulated groups, resolves AVG's final
// division (integer floor; zero when no rows contributed), normalizes the
// rows, and applies the query's ORDER BY (a stable re-sort on top of the
// normalized order, so ties remain deterministic across engines).
func (g *groupAcc) result(q *plan.Query) *Result {
	res := &Result{GroupBy: q.GroupBy, AggExprs: q.Aggs}
	for _, ks := range g.order {
		r := g.rows[ks]
		row := Row{Keys: r.keys, Aggs: append([]int64(nil), r.vals...)}
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggAvg:
				if r.count > 0 {
					row.Aggs[i] = floorDiv(r.vals[i], r.count)
				} else {
					row.Aggs[i] = 0
				}
			case plan.AggCountDistinct:
				if r.sets != nil && r.sets[i] != nil {
					row.Aggs[i] = int64(len(r.sets[i]))
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Normalize()
	res.ApplyOrder(q.OrderBy)
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res
}

// floorDiv divides toward negative infinity (AVG over subtraction results
// can be negative).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ApplyOrder stably sorts rows by the ORDER BY terms.
func (r *Result) ApplyOrder(terms []plan.OrderTerm) {
	if len(terms) == 0 {
		return
	}
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for _, t := range terms {
			var cmp int
			if t.KeyIdx >= 0 {
				ka, kb := a.Keys[t.KeyIdx], b.Keys[t.KeyIdx]
				switch {
				case ka < kb:
					cmp = -1
				case ka > kb:
					cmp = 1
				}
			} else {
				va, vb := a.Aggs[t.AggIdx], b.Aggs[t.AggIdx]
				switch {
				case va < vb:
					cmp = -1
				case va > vb:
					cmp = 1
				}
			}
			if t.Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}
