package exec

// placed.go executes plans whose operator pipeline spans both devices — the
// paper's §7.2 hybrid case with per-operator granularity. The fused fact
// stage (Scan+Filter+JoinProbe) runs on one device using the same kernels
// the single-device executors run (tileSweep / cpuSweep), each DimBuild runs
// on its placed device (paying an explicit transfer when it feeds the other
// side), and the aggregation tail runs on its placed device over the
// survivor tuples the fact stage ships across.
//
// Results are bit-identical to the single-device engines: the fact stage
// computes the same survivor set either way, survivors are consumed in
// ascending row order lane by lane, and each aggregation kernel keeps its
// device's exact arithmetic (which agree on every supported shape).

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"castle/internal/baseline"
	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// Placed executes placed operator pipelines (plan.PlacedPlan) across a CAPE
// engine and a baseline core. Uniform placements delegate to the
// single-device executors; mixed placements run the split pipeline here.
type Placed struct {
	castle *Castle
	cpu    *CPUExec
	cat    *stats.Catalog

	// par mirrors Castle.par: the fact-stage fan-out degree for subsequent
	// runs, atomically retargetable while a run is in flight.
	par atomic.Int32

	tel    *telemetry.Telemetry
	parent *telemetry.Span

	last atomic.Pointer[placedBooks]
}

// placedBooks is the closed accounting of one placed run.
type placedBooks struct {
	capeCycles int64
	cpuCycles  int64
	breakdown  *telemetry.Breakdown
}

// NewPlaced couples the two single-device executors into a placed-pipeline
// executor. The executors' engines are shared: cycle accounting accumulates
// on them exactly as single-device runs do.
func NewPlaced(castle *Castle, cpu *CPUExec, cat *stats.Catalog) *Placed {
	return &Placed{castle: castle, cpu: cpu, cat: cat}
}

// SetParallelism sets the fact-stage fan-out degree for subsequent runs
// (tiles when the fact stage is on CAPE, cores when on the CPU). The
// aggregation tail of a mixed placement always runs on its device's primary
// engine — it is a pipeline consumer fed by every lane, merged in fixed
// lane order so results stay bit-identical. Safe to call concurrently with
// RunContext; an in-flight run keeps the degree it observed at entry.
func (x *Placed) SetParallelism(k int) { x.par.Store(int32(k)) }

// SetTelemetry attaches a telemetry sink and parent span for subsequent
// runs (either may be nil). Not safe to call while a run is in flight.
func (x *Placed) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	x.tel = tel
	x.parent = parent
	x.castle.SetTelemetry(tel, parent)
	x.cpu.SetTelemetry(tel, parent)
}

// Breakdown returns the last run's per-operator cycle breakdown. For mixed
// runs every row carries the device it ran on, device crossings appear as
// explicit "xfer:" rows, and the rows partition the combined two-device
// total exactly. Returns a copy; nil before the first run.
func (x *Placed) Breakdown() *telemetry.Breakdown {
	b := x.last.Load()
	if b == nil {
		return nil
	}
	return b.breakdown.Clone()
}

// DeviceCycles returns the last run's per-device cycle split (CAPE, CPU);
// both zero before the first run.
func (x *Placed) DeviceCycles() (int64, int64) {
	b := x.last.Load()
	if b == nil {
		return 0, 0
	}
	return b.capeCycles, b.cpuCycles
}

// Run executes a placed plan. See RunContext.
func (x *Placed) Run(pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	return x.RunContext(context.Background(), pp, db)
}

// RunContext executes a placed operator pipeline. Uniform placements
// delegate to the owning single-device executor (identical results,
// identical accounting); mixed placements run the fact stage on its device
// — morsel-parallel across K lanes when parallelism is set — ship the
// survivor tuples across the device boundary, and run the aggregation tail
// on the other device. A mixed run's TotalCycles is the sum of both
// devices' advances: the tail consumes the fact stage's output, so the
// phases serialize across the boundary.
func (x *Placed) RunContext(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if dev, uniform := pp.Uniform(); uniform {
		return x.runUniform(ctx, pp, db, dev)
	}
	if pp.FactDevice() == plan.DeviceCAPE {
		return x.runCAPEFactCPUAgg(ctx, pp, db)
	}
	return x.runCPUFactCAPEAgg(ctx, pp, db)
}

// runUniform delegates a single-device placement to the owning executor and
// republishes its books.
func (x *Placed) runUniform(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database, dev plan.Device) (*Result, error) {
	capeStart := x.castle.eng.TotalCycles()
	cpuStart := x.cpu.cpu.Cycles()
	var res *Result
	var err error
	if dev == plan.DeviceCPU {
		x.cpu.SetParallelism(int(x.par.Load()))
		res, err = x.cpu.RunContext(ctx, pp.Phys.Query, db)
	} else {
		x.castle.SetParallelism(int(x.par.Load()))
		res, err = x.castle.RunContext(ctx, pp.Phys, db)
	}
	if err != nil {
		return nil, err
	}
	books := &placedBooks{
		capeCycles: x.castle.eng.TotalCycles() - capeStart,
		cpuCycles:  x.cpu.cpu.Cycles() - cpuStart,
	}
	if dev == plan.DeviceCPU {
		books.breakdown = x.cpu.Breakdown()
	} else {
		books.breakdown = x.castle.Breakdown()
	}
	x.last.Store(books)
	return res, nil
}

// placedBreakdown accumulates the operator rows of a mixed run.
type placedBreakdown struct {
	ops     []telemetry.OperatorStats
	perJoin map[string]int64
}

func newPlacedBreakdown() *placedBreakdown {
	return &placedBreakdown{perJoin: make(map[string]int64)}
}

func (b *placedBreakdown) row(op, dev string, cycles, rows int64) {
	b.ops = append(b.ops, telemetry.OperatorStats{Operator: op, Device: dev, Cycles: cycles, Rows: rows})
}

// publish closes a mixed run's books: the operator rows plus an explicit
// "overhead" remainder partition the combined total exactly.
func (x *Placed) publish(bk *placedBreakdown, capeCycles, cpuCycles int64) {
	total := capeCycles + cpuCycles
	var covered int64
	for _, o := range bk.ops {
		covered += o.Cycles
	}
	bk.ops = append(bk.ops, telemetry.OperatorStats{
		Operator: "overhead", Device: "CAPE+CPU", Cycles: total - covered, Rows: -1})
	x.last.Store(&placedBooks{
		capeCycles: capeCycles,
		cpuCycles:  cpuCycles,
		breakdown:  &telemetry.Breakdown{Device: "CAPE+CPU", Operators: bk.ops, TotalCycles: total},
	})
}

// shipTailCols lists the dimension attributes ("dim.attr") a device
// crossing before aggregation must carry, and the width of one shipped
// tuple in 4-byte fields: the row identifier plus those attributes (fact
// columns are re-read by the consumer from shared memory).
func shipTailCols(q *plan.Query) (attrKeys []string, cols int) {
	for _, g := range q.GroupBy {
		if g.Table != q.Fact {
			attrKeys = append(attrKeys, g.Table+"."+g.Column)
		}
	}
	return attrKeys, 1 + len(attrKeys)
}

// shipment is one fact-stage lane's survivor tuples, in ascending row
// order: absolute fact-row indices plus the dimension-attribute values the
// aggregation tail needs (keyed "dim.attr", aligned with rows).
type shipment struct {
	rows  []int
	attrs map[string][]uint32
}

func newShipment(attrKeys []string) *shipment {
	s := &shipment{attrs: make(map[string][]uint32, len(attrKeys))}
	for _, k := range attrKeys {
		s.attrs[k] = nil
	}
	return s
}

// ---------------------------------------------------------------------------
// CAPE fact stage -> CPU aggregation tail (the paper's hybrid direction:
// selective fact filtering on the AP, high-cardinality aggregation on the
// CPU).
// ---------------------------------------------------------------------------

func (x *Placed) runCAPEFactCPUAgg(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	cfg := eng.Config()
	camCapable := cfg.EnableADL

	capeStart := eng.TotalCycles()
	cpuStart := cpu.Cycles()
	bk := newPlacedBreakdown()

	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}

	// --- DimBuild per edge, on its placed device; CPU-built dimensions ship
	// their values arrays into CAPE.
	dims := make([]dimSide, len(p.Joins))
	for i, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		if dev == plan.DeviceCAPE {
			dims[i] = capePrepareDim(eng, x.cat, q, e, db)
		} else {
			j := cpuPrepareDim(cpu, q, e, db)
			dims[i] = dimSide{edge: e, keys: j.keys, attrs: j.vals, totalRows: db.MustTable(e.Dim).Rows()}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(dims[i].keys)))
		if dev == plan.DeviceCPU {
			// Ship the values array across: the core streams it out, the AP
			// streams it in, and the CP rebuilds the attribute grouping an
			// on-device prep would have built.
			bytes := int64(4 * len(dims[i].keys) * (1 + len(e.NeedAttrs)))
			cpu.ChargeStreamWrite(0, bytes)
			eng.ChargeStreamRead(bytes)
			dims[i].buildGroups(e)
			if len(e.NeedAttrs) > 0 {
				eng.Scalar(int64(4 * len(dims[i].keys)))
			}
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(dims[i].keys)))
		}
		sp.SetInt("rows_out", int64(len(dims[i].keys)))
		sp.End()
	}

	// --- Fact stage on CAPE: Scan+Filter+JoinProbe per partition, gathering
	// survivor tuples instead of aggregating.
	fact := db.MustTable(q.Fact)
	factRows := fact.Rows()
	maxvl := cfg.MAXVL
	parts := (factRows + maxvl - 1) / maxvl
	k := int(x.par.Load())
	if k < 1 || parts < 1 {
		k = 1
	}
	if k > parts && parts > 0 {
		k = parts
	}

	attrKeys, shipCols := shipTailCols(q)
	sweep := x.parent.Child("fact-sweep")
	sweepStart := eng.TotalCycles()
	ships := make([]*shipment, k)

	if k == 1 {
		s := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, perJoin: bk.perJoin, span: sweep}
		ships[0] = newShipment(attrKeys)
		var exportCycles int64
		for base := 0; base < factRows; base += maxvl {
			vl := factRows - base
			if vl > maxvl {
				vl = maxvl
			}
			rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
			if err != nil {
				return nil, err
			}
			e0 := eng.TotalCycles()
			exportSurvivors(eng, ships[0], rowMask, base, attrKeys, attrRegs, shipCols)
			exportCycles += eng.TotalCycles() - e0
			if camCapable {
				eng.SetLayout(cape.CAMMode)
			}
		}
		bk.row("filter", "CAPE", s.filterCycles, int64(factRows))
		for _, e := range p.Joins {
			bk.row("join:"+e.Dim, "CAPE", bk.perJoin[e.Dim], -1)
		}
		bk.row("xfer:aggregate", "CAPE+CPU", exportCycles, int64(len(ships[0].rows)))
	} else {
		group := eng.Fork(k)
		sweeps := make([]*tileSweep, k)
		for i, t := range group.Tiles() {
			if x.tel != nil {
				AttachEngineTelemetry(t, x.tel)
			}
			sweeps[i] = &tileSweep{cat: x.cat, opts: x.castle.opts, eng: t,
				perJoin: make(map[string]int64, len(p.Joins)),
				span:    sweep.Child(fmt.Sprintf("tile%d", i))}
			ships[i] = newShipment(attrKeys)
		}
		laneRows := make([]int64, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				for pi := ti; pi < parts; pi += k {
					base := pi * maxvl
					vl := factRows - base
					if vl > maxvl {
						vl = maxvl
					}
					rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
					if err != nil {
						errs[ti] = err
						return
					}
					exportSurvivors(s.eng, ships[ti], rowMask, base, attrKeys, attrRegs, shipCols)
					if camCapable {
						s.eng.SetLayout(cape.CAMMode)
					}
					laneRows[ti] += int64(vl)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Elapsed advances by the critical tile; per-tile work (including
		// each tile's export charges) shows as sweep rows with the hidden
		// overlap credited back, as in the single-device executors.
		tileCycles := group.Merge()
		var sum, max int64
		for t, cy := range tileCycles {
			bk.row(fmt.Sprintf("sweep[%d]", t), "CAPE", cy, laneRows[t])
			sum += cy
			if cy > max {
				max = cy
			}
		}
		bk.row("parallel-overlap", "CAPE", max-sum, -1)
		for _, s := range sweeps {
			for d, cy := range s.perJoin {
				bk.perJoin[d] += cy
			}
		}
	}
	sweep.SetInt("cycles", eng.TotalCycles()-sweepStart)
	sweep.SetInt("tiles", int64(k))
	sweep.End()

	// --- Aggregation tail on the CPU's primary core: lanes consumed in
	// fixed order, per-row hash aggregation with the cpu_aggregate charge
	// model over the shipped tuples plus the fact columns they reference.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spa := x.parent.Child("aggregate")
	a0 := cpu.Cycles()
	acc := newGroupAcc(q.Aggs)
	matched, err := cpuAggregateShipments(ctx, cpu, q, fact, ships, acc, shipCols)
	if err != nil {
		return nil, err
	}
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	aggCycles := cpu.Cycles() - a0
	bk.row("aggregate", "CPU", aggCycles, int64(len(acc.order)))
	spa.SetInt("cycles", aggCycles)
	spa.SetInt("rows", matched)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	res := acc.result(q)
	x.publish(bk, eng.TotalCycles()-capeStart, cpu.Cycles()-cpuStart)
	return res, nil
}

// exportSurvivors gathers one partition's surviving rows into the lane's
// shipment and bills the CAPE side of the crossing: a CP gather loop over
// the survivors plus the streamed tuple bytes.
func exportSurvivors(eng *cape.Engine, ship *shipment, rowMask *bitvec.Vector, base int,
	attrKeys []string, attrRegs map[string]cape.VReg, shipCols int) {

	attrData := make([][]uint32, len(attrKeys))
	for ai, key := range attrKeys {
		r, ok := attrRegs[key]
		if !ok {
			panic("exec: shipped attribute " + key + " was not materialized by any join")
		}
		attrData[ai] = eng.Peek(r)
	}
	var n int64
	for i := rowMask.First(); i != -1; i = rowMask.NextAfter(i) {
		ship.rows = append(ship.rows, base+i)
		for ai, key := range attrKeys {
			ship.attrs[key] = append(ship.attrs[key], attrData[ai][i])
		}
		n++
	}
	eng.Scalar(2 * n)
	eng.ChargeStreamWrite(4 * n * int64(shipCols))
}

// cpuAggregateShipments folds every lane's survivor tuples into acc with
// the CPU's exact aggregation semantics, then pays the hash-aggregation
// charge model over the tuple bytes plus the fact-column fields each row
// gathers.
func cpuAggregateShipments(ctx context.Context, cpu *baseline.CPU, q *plan.Query,
	fact *storage.Table, ships []*shipment, acc *groupAcc, shipCols int) (int64, error) {

	valueOf := make([]func(row int) int64, len(q.Aggs))
	type distinctSlot struct {
		slot int
		col  []uint32
	}
	var distinctSlots []distinctSlot
	aggCols := 0
	for ai, a := range q.Aggs {
		aggCols++
		switch a.Kind {
		case plan.AggSumCol, plan.AggMin, plan.AggMax, plan.AggAvg:
			col := fact.MustColumn(a.A).Data
			valueOf[ai] = func(r int) int64 { return int64(col[r]) }
		case plan.AggSumMul:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			valueOf[ai] = func(r int) int64 { return int64(ca[r]) * int64(cb[r]) }
			aggCols++
		case plan.AggSumSub:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			valueOf[ai] = func(r int) int64 { return int64(ca[r]) - int64(cb[r]) }
			aggCols++
		case plan.AggCount:
			valueOf[ai] = func(r int) int64 { return 1 }
		case plan.AggCountDistinct:
			col := fact.MustColumn(a.A).Data
			valueOf[ai] = func(r int) int64 { return 0 }
			distinctSlots = append(distinctSlots, distinctSlot{slot: ai, col: col})
		}
	}
	factGroupCols := 0
	keySrc := make([]func(s *shipment, si, row int) uint32, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		if g.Table == q.Fact {
			col := fact.MustColumn(g.Column).Data
			keySrc[gi] = func(_ *shipment, _ int, r int) uint32 { return col[r] }
			factGroupCols++
			continue
		}
		key := g.Table + "." + g.Column
		keySrc[gi] = func(s *shipment, si int, _ int) uint32 { return s.attrs[key][si] }
	}

	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	var matched int64
	for _, ship := range ships {
		for si, row := range ship.rows {
			if matched%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			for gi := range keySrc {
				keys[gi] = keySrc[gi](ship, si, row)
			}
			for ai := range valueOf {
				aggs[ai] = valueOf[ai](row)
			}
			acc.add(keys, aggs, 1)
			for _, d := range distinctSlots {
				acc.addDistinct(keys, d.slot, []uint32{d.col[row]})
			}
			matched++
		}
	}

	// Charge model: the shipped tuples stream in, each row gathers its fact
	// fields and pays the hash-aggregation constants (cpuSweep.runAggregate
	// with the full-column stream replaced by the tuple + gathered fields).
	touchedBytes := matched * 4 * int64(shipCols+aggCols+factGroupCols)
	k := cpu.Config().Kernels
	if len(q.GroupBy) == 0 {
		cpu.ChargeStream(float64(matched)*0.4, touchedBytes)
	} else {
		cpu.ChargeStream(float64(matched)*(k.HashCyclesPerKey+k.AggUpdateCyclesPerRow), touchedBytes)
		cpu.ChargeRandomAccesses(matched, int64(len(acc.order))*32)
	}
	if len(distinctSlots) > 0 {
		var setEntries int64
		for _, r := range acc.rows {
			for _, set := range r.sets {
				setEntries += int64(len(set))
			}
		}
		for range distinctSlots {
			cpu.ChargeCompute(float64(matched) * k.HashCyclesPerKey)
			cpu.ChargeRandomAccesses(matched, setEntries*16)
		}
	}
	return matched, nil
}

// ---------------------------------------------------------------------------
// CPU fact stage -> CAPE aggregation tail (the reverse crossing; rarely
// chosen by the cost model but fully supported, and exercised by the
// forced-placement differential columns).
// ---------------------------------------------------------------------------

func (x *Placed) runCPUFactCAPEAgg(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	camCapable := eng.Config().EnableADL

	capeStart := eng.TotalCycles()
	cpuStart := cpu.Cycles()
	bk := newPlacedBreakdown()

	// --- DimBuild per edge; CAPE-built dimensions ship their values arrays
	// to the CPU.
	joins := make([]dimJoin, 0, len(p.Joins))
	for _, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		var j dimJoin
		if dev == plan.DeviceCPU {
			j = cpuPrepareDim(cpu, q, e, db)
		} else {
			if camCapable {
				eng.SetLayout(cape.CAMMode)
			}
			d := capePrepareDim(eng, x.cat, q, e, db)
			j = dimJoin{edge: e, keys: d.keys, vals: d.attrs, fraction: 1}
			if d.totalRows > 0 {
				j.fraction = float64(len(d.keys)) / float64(d.totalRows)
			}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(j.keys)))
		if dev == plan.DeviceCAPE {
			bytes := int64(4 * len(j.keys) * (1 + len(e.NeedAttrs)))
			eng.ChargeStreamWrite(bytes)
			cpu.ChargeStream(0, bytes)
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(j.keys)))
		}
		joins = append(joins, j)
		sp.SetInt("rows_out", int64(len(j.keys)))
		sp.End()
	}
	// Probe the most selective dimension first, exactly as CPUExec does.
	sort.SliceStable(joins, func(i, j int) bool { return joins[i].fraction < joins[j].fraction })

	// --- Fact stage on the CPU: filter + probe pass, gathering survivor
	// tuples.
	fact := db.MustTable(q.Fact)
	rows := fact.Rows()
	k := int(x.par.Load())
	if k < 1 {
		k = 1
	}
	if k > rows {
		k = rows
	}
	if k < 1 {
		k = 1
	}

	attrKeys, shipCols := shipTailCols(q)
	sweep := x.parent.Child("fact-sweep")
	sweepStart := cpu.Cycles()
	ships := make([]*shipment, k)

	if k == 1 {
		s := &cpuSweep{cpu: cpu, perJoin: bk.perJoin, span: sweep}
		sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, nil, 0, rows)
		if err != nil {
			return nil, err
		}
		x0 := cpu.Cycles()
		ships[0] = gatherCPUSurvivors(cpu, sel, attrCols, attrKeys, 0, rows, shipCols)
		bk.row("filter", "CPU", s.filterCycles, int64(rows))
		for _, e := range p.Joins {
			bk.row("join:"+e.Dim, "CPU", bk.perJoin[e.Dim], -1)
		}
		bk.row("xfer:aggregate", "CAPE+CPU", cpu.Cycles()-x0, int64(len(ships[0].rows)))
	} else {
		// Hash tables build once on the primary core, as in CPUExec.
		tables := make([]joinTable, len(joins))
		for ji, j := range joins {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b0 := cpu.Cycles()
			if len(j.edge.NeedAttrs) == 0 {
				tables[ji].semi = cpu.BuildHashSemi(j.keys)
			} else {
				tables[ji].attr = make([]*baseline.HashTable, len(j.edge.NeedAttrs))
				for ai := range j.edge.NeedAttrs {
					tables[ji].attr[ai] = cpu.BuildHashMap(j.keys, j.vals[ai])
				}
			}
			cy := cpu.Cycles() - b0
			bk.row("build:"+j.edge.Dim, "CPU", cy, int64(len(j.keys)))
			bk.perJoin[j.edge.Dim] += cy
		}

		cores := cpu.Fork(k)
		sweeps := make([]*cpuSweep, k)
		for i, core := range cores {
			if x.tel != nil {
				AttachCPUTelemetry(core, x.tel)
			}
			sweeps[i] = &cpuSweep{cpu: core,
				perJoin: make(map[string]int64, len(joins)),
				span:    sweep.Child(fmt.Sprintf("core%d", i))}
		}
		laneRows := make([]int64, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			base, end := i*rows/k, (i+1)*rows/k
			wg.Add(1)
			go func(ti, base, end int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, tables, base, end)
				if err != nil {
					errs[ti] = err
					return
				}
				ships[ti] = gatherCPUSurvivors(s.cpu, sel, attrCols, attrKeys, base, end, shipCols)
				laneRows[ti] = int64(end - base)
			}(i, base, end)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var maxRaw float64
		var sum, max int64
		for i, s := range sweeps {
			cy := s.cpu.Cycles()
			bk.row(fmt.Sprintf("sweep[%d]", i), "CPU", cy, laneRows[i])
			sum += cy
			if cy > max {
				max = cy
			}
			if raw := s.cpu.RawCycles(); raw > maxRaw {
				maxRaw = raw
			}
			for d, cyj := range s.perJoin {
				bk.perJoin[d] += cyj
			}
		}
		bk.row("parallel-overlap", "CPU", max-sum, -1)
		cpu.AbsorbElapsed(maxRaw)
		for _, core := range cores {
			cpu.AbsorbTraffic(core)
		}
	}
	sweep.SetInt("cycles", cpu.Cycles()-sweepStart)
	sweep.SetInt("cores", int64(k))
	sweep.End()

	// --- Aggregation tail on the CAPE primary engine: shipped tuples load
	// into the CSB in MAXVL chunks (the loads' stream reads bill the
	// transfer's read side) and Algorithm 2 runs over each chunk.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spa := x.parent.Child("aggregate")
	a0 := eng.TotalCycles()
	acc := newGroupAcc(q.Aggs)
	if err := x.capeAggregateShipments(ctx, q, fact, ships, acc, camCapable); err != nil {
		return nil, err
	}
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	aggCycles := eng.TotalCycles() - a0
	bk.row("aggregate", "CAPE", aggCycles, int64(len(acc.order)))
	spa.SetInt("cycles", aggCycles)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	res := acc.result(q)
	x.publish(bk, eng.TotalCycles()-capeStart, cpu.Cycles()-cpuStart)
	return res, nil
}

// gatherCPUSurvivors collects a lane's surviving rows (and the tail's
// dimension attributes) into a shipment and bills the CPU side of the
// crossing: a gather loop plus the streamed tuple bytes.
func gatherCPUSurvivors(cpu *baseline.CPU, sel *bitvec.Vector, attrCols map[string][]uint32,
	attrKeys []string, base, end, shipCols int) *shipment {

	ship := newShipment(attrKeys)
	collect := func(i int) { // i is range-local
		ship.rows = append(ship.rows, base+i)
		for _, key := range attrKeys {
			col := attrCols[key]
			if col == nil {
				panic("exec: shipped attribute " + key + " was not materialized by any join")
			}
			ship.attrs[key] = append(ship.attrs[key], col[i])
		}
	}
	if sel == nil {
		for i := 0; i < end-base; i++ {
			collect(i)
		}
	} else {
		for i := sel.First(); i != -1; i = sel.NextAfter(i) {
			collect(i)
		}
	}
	n := len(ship.rows)
	cpu.ChargeStreamWrite(float64(2*n), int64(4*n*shipCols))
	return ship
}

// capeAggregateShipments runs the CAPE aggregation kernels over shipped
// survivor tuples: each lane's tuples are processed in fixed order, loaded
// into the CSB in MAXVL chunks as gathered columns, and folded with the
// exact instruction billing of the on-device Algorithm 2 loop.
func (x *Placed) capeAggregateShipments(ctx context.Context, q *plan.Query, fact *storage.Table,
	ships []*shipment, acc *groupAcc, camCapable bool) error {

	eng := x.castle.eng
	maxvl := eng.Config().MAXVL

	needGPArith := false
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			needGPArith = true
		}
	}
	if needGPArith && len(q.GroupBy) > 0 {
		panic("exec: GROUP BY with vv-arithmetic aggregates is outside SSB's shape")
	}
	if camCapable {
		if needGPArith {
			eng.SetLayout(cape.GPMode)
		} else {
			eng.SetLayout(cape.CAMMode)
		}
	}
	// The charged loop helpers live on tileSweep; borrow one bound to the
	// primary engine.
	ts := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, acc: acc}

	for _, ship := range ships {
		for lo := 0; lo < len(ship.rows); lo += maxvl {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + maxvl
			if hi > len(ship.rows) {
				hi = len(ship.rows)
			}
			x.capeAggregateChunk(q, fact, ship, lo, hi, ts)
		}
	}
	return nil
}

// capeAggregateChunk loads one chunk of shipped tuples into the CSB and
// aggregates it: gathered fact columns and shipped attributes become CSB
// vectors (loads bill the stream reads), then the scalar reductions or the
// literal per-group Algorithm 2 loop run with on-device billing.
func (x *Placed) capeAggregateChunk(q *plan.Query, fact *storage.Table,
	ship *shipment, lo, hi int, ts *tileSweep) {

	eng := x.castle.eng
	acc := ts.acc
	n := hi - lo
	eng.SetVL(n)
	regs := newRegAlloc(eng.Config().NumVRegs)

	gatherFact := func(name string) []uint32 {
		col := fact.MustColumn(name).Data
		out := make([]uint32, n)
		for i, row := range ship.rows[lo:hi] {
			out[i] = col[row]
		}
		return out
	}
	loaded := make(map[string]cape.VReg)
	loadGathered := func(key string, data []uint32, table, col string) cape.VReg {
		if r, ok := loaded[key]; ok {
			return r
		}
		r := regs.fresh()
		eng.Load(r, data, colWidth(x.cat, table, col))
		loaded[key] = r
		return r
	}
	loadFact := func(name string) cape.VReg {
		if r, ok := loaded[name]; ok {
			return r
		}
		return loadGathered(name, gatherFact(name), q.Fact, name)
	}

	rowMask := eng.MaskInit(true)

	// --- Scalar tail (no GROUP BY): predicated reductions per aggregate.
	if len(q.GroupBy) == 0 {
		rows := int64(eng.MPopc(rowMask))
		if rows == 0 {
			return
		}
		vals := make([]int64, len(q.Aggs))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				vals[i] = eng.RedSum(loadFact(a.A), rowMask)
			case plan.AggSumMul:
				ra, rb := loadFact(a.A), loadFact(a.B)
				tmp := regs.fresh()
				eng.MulVV(tmp, ra, rb)
				vals[i] = eng.RedSum(tmp, rowMask)
			case plan.AggSumSub:
				vals[i] = eng.RedSum(loadFact(a.A), rowMask) - eng.RedSum(loadFact(a.B), rowMask)
				eng.Scalar(1)
			case plan.AggCount:
				vals[i] = rows
			case plan.AggMin:
				v, _ := eng.RedMin(loadFact(a.A), rowMask)
				vals[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(loadFact(a.A), rowMask)
				vals[i] = int64(v)
			case plan.AggCountDistinct:
				data := gatherFact(a.A)
				r := loadGathered(a.A, data, q.Fact, a.A)
				values := distinctUnder(data, 0, rowMask)
				ts.chargeDistinctLoop(int64(len(values)), eng.RegWidth(r))
				acc.addDistinct(nil, i, values)
			}
			eng.Scalar(4)
		}
		acc.add(nil, vals, rows)
		return
	}

	// --- Grouped tail: the literal Algorithm 2 loop over the chunk.
	groupRegs := make([]cape.VReg, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			groupRegs[i] = loadFact(g.Column)
			continue
		}
		key := g.Table + "." + g.Column
		data := ship.attrs[key][lo:hi]
		groupRegs[i] = loadGathered(key, data, g.Table, g.Column)
	}
	aggRegs := make([][2]cape.VReg, len(q.Aggs))
	distinctData := make([][]uint32, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind == plan.AggCountDistinct {
			distinctData[i] = gatherFact(a.A)
			aggRegs[i][0] = loadGathered(a.A, distinctData[i], q.Fact, a.A)
			continue
		}
		if a.Kind != plan.AggCount {
			aggRegs[i][0] = loadFact(a.A)
		}
		if a.Kind == plan.AggSumSub {
			aggRegs[i][1] = loadFact(a.B)
		}
	}

	remaining := rowMask
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	for {
		idx := eng.MFirst(remaining)
		if idx == -1 {
			break
		}
		groupMask := remaining
		for i, r := range groupRegs {
			keys[i] = eng.Extract(r, idx)
			groupMask = eng.MaskAnd(groupMask, eng.Search(r, keys[i]))
		}
		groupRows := int64(eng.MPopc(groupMask))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask)
			case plan.AggSumSub:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask) - eng.RedSum(aggRegs[i][1], groupMask)
				eng.Scalar(1)
			case plan.AggCount:
				aggs[i] = groupRows
			case plan.AggMin:
				v, _ := eng.RedMin(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggCountDistinct:
				values := distinctUnder(distinctData[i], 0, groupMask)
				ts.chargeDistinctLoop(int64(len(values)), eng.RegWidth(aggRegs[i][0]))
				acc.addDistinct(keys, i, values)
				aggs[i] = 0
			}
		}
		acc.add(keys, aggs, groupRows)
		eng.Scalar(12)
		eng.CPAccess(1, int64(len(acc.order))*16)
		remaining = eng.MaskXor(remaining, groupMask)
	}
}
