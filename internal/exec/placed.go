package exec

// placed.go executes plans whose operator pipeline spans both devices — the
// paper's §7.2 hybrid case with per-operator granularity. The fused fact
// stage (Scan+Filter+JoinProbe) runs on one device using the same kernels
// the single-device executors run (tileSweep / cpuSweep), each DimBuild runs
// on its placed device (paying an explicit transfer when it feeds the other
// side), and the aggregation tail runs on its placed device over the
// survivor tuples the fact stage ships across.
//
// Results are bit-identical to the single-device engines: the fact stage
// computes the same survivor set either way, survivors are consumed in
// ascending row order lane by lane, and each aggregation kernel keeps its
// device's exact arithmetic (which agree on every supported shape).

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"castle/internal/baseline"
	"castle/internal/bitvec"
	"castle/internal/cape"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// Placed executes placed operator pipelines (plan.PlacedPlan) across a CAPE
// engine and a baseline core. Uniform placements delegate to the
// single-device executors; mixed placements run the split pipeline here.
type Placed struct {
	castle *Castle
	cpu    *CPUExec
	cat    *stats.Catalog

	// par mirrors Castle.par: the fact-stage fan-out degree for subsequent
	// runs, atomically retargetable while a run is in flight.
	par atomic.Int32

	// streaming selects the pull-based batch pipeline for mixed runs: the
	// fact stage produces MAXVL-sized batches through a BatchSource, the
	// tail consumes each batch immediately (peak memory O(K·MAXVL) instead
	// of O(table)), and the device crossing is double-buffered so interior
	// transfers hide under the next batch's compute. Results are
	// bit-identical to materializing.
	streaming atomic.Bool

	tel    *telemetry.Telemetry
	parent *telemetry.Span

	last atomic.Pointer[placedBooks]
}

// placedBooks is the closed accounting of one placed run.
type placedBooks struct {
	capeCycles int64
	cpuCycles  int64
	stream     StreamStats
	breakdown  *telemetry.Breakdown
}

// NewPlaced couples the two single-device executors into a placed-pipeline
// executor. The executors' engines are shared: cycle accounting accumulates
// on them exactly as single-device runs do.
func NewPlaced(castle *Castle, cpu *CPUExec, cat *stats.Catalog) *Placed {
	return &Placed{castle: castle, cpu: cpu, cat: cat}
}

// SetParallelism sets the fact-stage fan-out degree for subsequent runs
// (tiles when the fact stage is on CAPE, cores when on the CPU). The
// aggregation tail of a mixed placement always runs on its device's primary
// engine — it is a pipeline consumer fed by every lane, merged in fixed
// lane order so results stay bit-identical. Safe to call concurrently with
// RunContext; an in-flight run keeps the degree it observed at entry.
func (x *Placed) SetParallelism(k int) { x.par.Store(int32(k)) }

// SetStreaming toggles the pull-based batch pipeline for subsequent mixed
// runs. Uniform placements are unaffected here (the single-device executors
// own their streaming switches). Safe to call concurrently with RunContext;
// an in-flight run keeps the mode it observed at entry.
func (x *Placed) SetStreaming(on bool) { x.streaming.Store(on) }

// StreamStats returns the last run's streaming summary: batches produced,
// transfer cycles hidden under compute, and peak resident batch bytes. All
// zero for materializing runs and before the first run.
func (x *Placed) StreamStats() StreamStats {
	b := x.last.Load()
	if b == nil {
		return StreamStats{}
	}
	return b.stream
}

// SetTelemetry attaches a telemetry sink and parent span for subsequent
// runs (either may be nil). Not safe to call while a run is in flight.
func (x *Placed) SetTelemetry(tel *telemetry.Telemetry, parent *telemetry.Span) {
	x.tel = tel
	x.parent = parent
	x.castle.SetTelemetry(tel, parent)
	x.cpu.SetTelemetry(tel, parent)
}

// Breakdown returns the last run's per-operator cycle breakdown. For mixed
// runs every row carries the device it ran on, device crossings appear as
// explicit "xfer:" rows, and the rows partition the combined two-device
// total exactly. Returns a copy; nil before the first run.
func (x *Placed) Breakdown() *telemetry.Breakdown {
	b := x.last.Load()
	if b == nil {
		return nil
	}
	return b.breakdown.Clone()
}

// DeviceCycles returns the last run's per-device cycle split (CAPE, CPU);
// both zero before the first run.
func (x *Placed) DeviceCycles() (int64, int64) {
	b := x.last.Load()
	if b == nil {
		return 0, 0
	}
	return b.capeCycles, b.cpuCycles
}

// Run executes a placed plan. See RunContext.
func (x *Placed) Run(pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	return x.RunContext(context.Background(), pp, db)
}

// RunContext executes a placed operator pipeline. Uniform placements
// delegate to the owning single-device executor (identical results,
// identical accounting); mixed placements run the fact stage on its device
// — morsel-parallel across K lanes when parallelism is set — ship the
// survivor tuples across the device boundary, and run the aggregation tail
// on the other device. A mixed run's TotalCycles is the sum of both
// devices' advances: the tail consumes the fact stage's output, so the
// phases serialize across the boundary.
func (x *Placed) RunContext(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if dev, uniform := pp.Uniform(); uniform {
		return x.runUniform(ctx, pp, db, dev)
	}
	if pp.FactDevice() == plan.DeviceCAPE {
		return x.runCAPEFactCPUAgg(ctx, pp, db)
	}
	return x.runCPUFactCAPEAgg(ctx, pp, db)
}

// runUniform delegates a single-device placement to the owning executor and
// republishes its books.
func (x *Placed) runUniform(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database, dev plan.Device) (*Result, error) {
	capeStart := x.castle.eng.TotalCycles()
	cpuStart := x.cpu.cpu.Cycles()
	var res *Result
	var err error
	if dev == plan.DeviceCPU {
		x.cpu.SetParallelism(int(x.par.Load()))
		x.cpu.SetStreaming(x.streaming.Load())
		res, err = x.cpu.RunContext(ctx, pp.Phys.Query, db)
	} else {
		x.castle.SetParallelism(int(x.par.Load()))
		x.castle.SetStreaming(x.streaming.Load())
		res, err = x.castle.RunContext(ctx, pp.Phys, db)
	}
	if err != nil {
		return nil, err
	}
	books := &placedBooks{
		capeCycles: x.castle.eng.TotalCycles() - capeStart,
		cpuCycles:  x.cpu.cpu.Cycles() - cpuStart,
	}
	if dev == plan.DeviceCPU {
		books.breakdown = x.cpu.Breakdown()
		books.stream = x.cpu.StreamStats()
	} else {
		books.breakdown = x.castle.Breakdown()
		books.stream = x.castle.StreamStats()
	}
	x.last.Store(books)
	return res, nil
}

// placedBreakdown accumulates the operator rows of a mixed run.
type placedBreakdown struct {
	ops     []telemetry.OperatorStats
	perJoin map[string]int64
}

func newPlacedBreakdown() *placedBreakdown {
	return &placedBreakdown{perJoin: make(map[string]int64)}
}

func (b *placedBreakdown) row(op, dev string, cycles, rows int64) {
	b.ops = append(b.ops, telemetry.OperatorStats{Operator: op, Device: dev, Cycles: cycles, Rows: rows})
}

// publish closes a mixed run's books: the operator rows plus an explicit
// "overhead" remainder partition the total exactly. For streaming runs the
// total is the elapsed view — both devices' work minus the transfer cycles
// that hid under the next batch's compute — and the hidden portion appears
// as an explicit negative "xfer-overlap" credit row so the rows still
// partition TotalCycles exactly.
func (x *Placed) publish(bk *placedBreakdown, capeCycles, cpuCycles int64, stream StreamStats) {
	if stream.OverlapCycles != 0 {
		bk.row("xfer-overlap", "CAPE+CPU", -stream.OverlapCycles, -1)
	}
	total := capeCycles + cpuCycles - stream.OverlapCycles
	var covered int64
	for _, o := range bk.ops {
		covered += o.Cycles
	}
	bk.ops = append(bk.ops, telemetry.OperatorStats{
		Operator: "overhead", Device: "CAPE+CPU", Cycles: total - covered, Rows: -1})
	x.last.Store(&placedBooks{
		capeCycles: capeCycles,
		cpuCycles:  cpuCycles,
		stream:     stream,
		breakdown:  &telemetry.Breakdown{Device: "CAPE+CPU", Operators: bk.ops, TotalCycles: total},
	})
}

// shipTailCols lists the dimension attributes ("dim.attr") a device
// crossing before aggregation must carry, and the width of one shipped
// tuple in 4-byte fields: the row identifier plus those attributes (fact
// columns are re-read by the consumer from shared memory).
func shipTailCols(q *plan.Query) (attrKeys []string, cols int) {
	for _, g := range q.GroupBy {
		if g.Table != q.Fact {
			attrKeys = append(attrKeys, g.Table+"."+g.Column)
		}
	}
	return attrKeys, 1 + len(attrKeys)
}

// ---------------------------------------------------------------------------
// CAPE fact stage -> CPU aggregation tail (the paper's hybrid direction:
// selective fact filtering on the AP, high-cardinality aggregation on the
// CPU).
// ---------------------------------------------------------------------------

func (x *Placed) runCAPEFactCPUAgg(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	cfg := eng.Config()
	camCapable := cfg.EnableADL

	capeStart := eng.TotalCycles()
	cpuStart := cpu.Cycles()
	bk := newPlacedBreakdown()

	if camCapable {
		eng.SetLayout(cape.CAMMode)
	}

	// --- DimBuild per edge, on its placed device; CPU-built dimensions ship
	// their values arrays into CAPE.
	dims := make([]dimSide, len(p.Joins))
	for i, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		if dev == plan.DeviceCAPE {
			dims[i] = capePrepareDim(eng, x.cat, q, e, db)
		} else {
			j := cpuPrepareDim(cpu, q, e, db)
			dims[i] = dimSide{edge: e, keys: j.keys, attrs: j.vals, totalRows: db.MustTable(e.Dim).Rows()}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(dims[i].keys)))
		if dev == plan.DeviceCPU {
			// Ship the values array across: the core streams it out, the AP
			// streams it in, and the CP rebuilds the attribute grouping an
			// on-device prep would have built.
			bytes := int64(4 * len(dims[i].keys) * (1 + len(e.NeedAttrs)))
			cpu.ChargeStreamWrite(0, bytes)
			eng.ChargeStreamRead(bytes)
			dims[i].buildGroups(e)
			if len(e.NeedAttrs) > 0 {
				eng.Scalar(int64(4 * len(dims[i].keys)))
			}
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(dims[i].keys)))
		}
		sp.SetInt("rows_out", int64(len(dims[i].keys)))
		sp.End()
	}

	// --- Fact stage on CAPE: Scan+Filter+JoinProbe per partition, gathering
	// survivor tuples instead of aggregating.
	fact := db.MustTable(q.Fact)
	factRows := fact.Rows()
	maxvl := cfg.MAXVL
	parts := (factRows + maxvl - 1) / maxvl
	k := int(x.par.Load())
	if k < 1 || parts < 1 {
		k = 1
	}
	if k > parts && parts > 0 {
		k = parts
	}

	attrKeys, shipCols := shipTailCols(q)
	streaming := x.streaming.Load()
	sweep := x.parent.Child("fact-sweep")
	sweepStart := eng.TotalCycles()
	ships := make([]*Batch, k)

	// The accumulator and its consumer exist up front so the streaming path
	// can fold each batch the moment it lands; the materializing path feeds
	// the same consumer with whole-lane batches at the end. Either way the
	// bulk CPU charge at the tail is computed from identical totals, so the
	// two paths' CPU cycles match exactly.
	acc := newGroupAcc(q.Aggs)
	cons := newCPUAggConsumer(q, fact, acc)
	var laneAccs []*groupAcc
	var laneCons []*cpuAggConsumer
	var stream StreamStats
	laneRows := make([]int64, k)

	if k == 1 {
		s := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, perJoin: bk.perJoin, span: sweep}
		if streaming {
			ch := &xferChannel{}
			src := &capeFactSource{s: s, p: p, db: db, dims: dims,
				attrKeys: attrKeys, shipCols: shipCols, camCapable: camCapable,
				factRows: factRows, maxvl: maxvl, next: 0, stride: 1, ch: ch}
			for {
				b, err := src.Next(ctx)
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
				if err := cons.consume(ctx, b); err != nil {
					return nil, err
				}
			}
			stream = StreamStats{Batches: ch.batches, OverlapCycles: ch.credit, PeakBatchBytes: ch.peakBytes}
			bk.row("filter", "CAPE", s.filterCycles, int64(factRows))
			for _, e := range p.Joins {
				bk.row("join:"+e.Dim, "CAPE", bk.perJoin[e.Dim], -1)
			}
			bk.row("xfer:aggregate", "CAPE+CPU", ch.xferCycles, cons.matched)
		} else {
			ships[0] = NewBatch(0, attrKeys)
			var exportCycles int64
			for base := 0; base < factRows; base += maxvl {
				vl := factRows - base
				if vl > maxvl {
					vl = maxvl
				}
				rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
				if err != nil {
					return nil, err
				}
				e0 := eng.TotalCycles()
				exportSurvivors(eng, ships[0], rowMask, base, attrKeys, attrRegs, shipCols)
				exportCycles += eng.TotalCycles() - e0
				if camCapable {
					eng.SetLayout(cape.CAMMode)
				}
			}
			bk.row("filter", "CAPE", s.filterCycles, int64(factRows))
			for _, e := range p.Joins {
				bk.row("join:"+e.Dim, "CAPE", bk.perJoin[e.Dim], -1)
			}
			bk.row("xfer:aggregate", "CAPE+CPU", exportCycles, int64(len(ships[0].Rows)))
		}
	} else {
		group := eng.Fork(k)
		sweeps := make([]*tileSweep, k)
		for i, t := range group.Tiles() {
			if x.tel != nil {
				AttachEngineTelemetry(t, x.tel)
			}
			sweeps[i] = &tileSweep{cat: x.cat, opts: x.castle.opts, eng: t,
				perJoin: make(map[string]int64, len(p.Joins)),
				span:    sweep.Child(fmt.Sprintf("tile%d", i))}
		}
		var chans []*xferChannel
		if streaming {
			chans = make([]*xferChannel, k)
			laneAccs = make([]*groupAcc, k)
			laneCons = make([]*cpuAggConsumer, k)
			for i := range chans {
				chans[i] = &xferChannel{}
				laneAccs[i] = newGroupAcc(q.Aggs)
				laneCons[i] = newCPUAggConsumer(q, fact, laneAccs[i])
			}
		} else {
			for i := range sweeps {
				ships[i] = NewBatch(0, attrKeys)
			}
		}
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				if streaming {
					src := &capeFactSource{s: s, p: p, db: db, dims: dims,
						attrKeys: attrKeys, shipCols: shipCols, camCapable: camCapable,
						factRows: factRows, maxvl: maxvl, next: ti, stride: k, ch: chans[ti]}
					for {
						b, err := src.Next(ctx)
						if err != nil {
							errs[ti] = err
							return
						}
						if b == nil {
							break
						}
						if err := laneCons[ti].consume(ctx, b); err != nil {
							errs[ti] = err
							return
						}
					}
					laneRows[ti] = src.rowsIn
					return
				}
				for pi := ti; pi < parts; pi += k {
					base := pi * maxvl
					vl := factRows - base
					if vl > maxvl {
						vl = maxvl
					}
					rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, p, db, dims, base, vl)
					if err != nil {
						errs[ti] = err
						return
					}
					exportSurvivors(s.eng, ships[ti], rowMask, base, attrKeys, attrRegs, shipCols)
					if camCapable {
						s.eng.SetLayout(cape.CAMMode)
					}
					laneRows[ti] += int64(vl)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Elapsed advances by the critical tile; per-tile work (including
		// each tile's export charges) shows as sweep rows with the hidden
		// overlap credited back, as in the single-device executors.
		tileCycles := group.Merge()
		var sum, max int64
		for t, cy := range tileCycles {
			bk.row(fmt.Sprintf("sweep[%d]", t), "CAPE", cy, laneRows[t])
			sum += cy
			if cy > max {
				max = cy
			}
		}
		bk.row("parallel-overlap", "CAPE", max-sum, -1)
		for _, s := range sweeps {
			for d, cy := range s.perJoin {
				bk.perJoin[d] += cy
			}
		}
		if streaming {
			// The run-level credit is bounded by the critical lane: the tiles
			// already overlap each other, so only the transfer cycles that
			// shorten the critical path count.
			credits := make([]int64, k)
			for i, ch := range chans {
				credits[i] = ch.credit
				stream.Batches += ch.batches
				stream.PeakBatchBytes += ch.peakBytes
			}
			stream.OverlapCycles = overlapElapsedCredit(tileCycles, credits)
		}
	}
	sweep.SetInt("cycles", eng.TotalCycles()-sweepStart)
	sweep.SetInt("tiles", int64(k))
	sweep.End()

	// --- Aggregation tail on the CPU's primary core: lanes consumed in
	// fixed order, per-row hash aggregation with the cpu_aggregate charge
	// model over the shipped tuples plus the fact columns they reference.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spa := x.parent.Child("aggregate")
	a0 := cpu.Cycles()
	var matched int64
	if streaming {
		// Batches were folded as they streamed (per-lane accumulators when
		// fanned out, merged here in fixed lane order); the deferred bulk
		// charge prices the identical totals the materializing path would,
		// so CPU cycles match it exactly.
		for i, la := range laneAccs {
			acc.merge(la)
			cons.matched += laneCons[i].matched
		}
		matched = cons.matched
		cons.charge(cpu, shipCols, acc, matched)
	} else {
		var err error
		matched, err = cpuAggregateShipments(ctx, cpu, q, fact, ships, acc, shipCols)
		if err != nil {
			return nil, err
		}
	}
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	aggCycles := cpu.Cycles() - a0
	bk.row("aggregate", "CPU", aggCycles, int64(len(acc.order)))
	spa.SetInt("cycles", aggCycles)
	spa.SetInt("rows", matched)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	res := acc.result(q)
	x.publish(bk, eng.TotalCycles()-capeStart, cpu.Cycles()-cpuStart, stream)
	return res, nil
}

// capeFactSource is the CAPE-side batch producer for one lane of a streaming
// mixed run: each Next runs the fused Scan+Filter+JoinProbe kernels over the
// lane's next MAXVL partition, exports the survivors as a batch, and records
// the (compute, transfer) split into the lane's double-buffered channel.
type capeFactSource struct {
	s          *tileSweep
	p          *plan.Physical
	db         *storage.Database
	dims       []dimSide
	attrKeys   []string
	shipCols   int
	camCapable bool

	factRows int
	maxvl    int
	next     int // partition index of the next batch
	stride   int // partition stride between this lane's batches

	ch     *xferChannel
	rowsIn int64
}

func (src *capeFactSource) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base := src.next * src.maxvl
	if src.maxvl <= 0 || base >= src.factRows {
		return nil, nil
	}
	vl := src.factRows - base
	if vl > src.maxvl {
		vl = src.maxvl
	}
	s := src.s
	c0 := s.eng.TotalCycles()
	rowMask, _, attrRegs, _, err := s.runFilterJoins(ctx, src.p, src.db, src.dims, base, vl)
	if err != nil {
		return nil, err
	}
	compute := s.eng.TotalCycles() - c0
	b := NewBatch(base, src.attrKeys)
	e0 := s.eng.TotalCycles()
	exportSurvivors(s.eng, b, rowMask, base, src.attrKeys, attrRegs, src.shipCols)
	xfer := s.eng.TotalCycles() - e0
	if src.camCapable {
		s.eng.SetLayout(cape.CAMMode)
	}
	src.ch.record(compute, xfer, b.ShipBytes(src.shipCols))
	src.rowsIn += int64(vl)
	src.next += src.stride
	return b, nil
}

// exportSurvivors gathers one partition's surviving rows into the lane's
// batch and bills the CAPE side of the crossing: a CP gather loop over the
// survivors plus the streamed tuple bytes.
func exportSurvivors(eng *cape.Engine, b *Batch, rowMask *bitvec.Vector, base int,
	attrKeys []string, attrRegs map[string]cape.VReg, shipCols int) {

	attrData := make([][]uint32, len(attrKeys))
	for ai, key := range attrKeys {
		r, ok := attrRegs[key]
		if !ok {
			panic("exec: shipped attribute " + key + " was not materialized by any join")
		}
		attrData[ai] = eng.Peek(r)
	}
	var n int64
	for i := rowMask.First(); i != -1; i = rowMask.NextAfter(i) {
		b.Rows = append(b.Rows, base+i)
		for ai, key := range attrKeys {
			b.Attrs[key] = append(b.Attrs[key], attrData[ai][i])
		}
		n++
	}
	eng.Scalar(2 * n)
	eng.ChargeStreamWrite(4 * n * int64(shipCols))
}

// cpuAggConsumer folds shipped survivor tuples into a groupAcc with the
// CPU's exact aggregation semantics. Consumption is pure bookkeeping — the
// hash-aggregation charge model is paid once, in bulk, by charge, from
// totals that are identical whether the tuples arrived as whole-lane
// shipments or as a stream of batches. That split is what keeps streaming
// CPU cycles bit-identical to materializing.
type cpuAggConsumer struct {
	q    *plan.Query
	fact *storage.Table
	acc  *groupAcc

	valueOf       []func(row int) int64
	distinctSlots []distinctSlot
	keySrc        []func(b *Batch, si, row int) uint32
	aggCols       int
	factGroupCols int

	keys    []uint32
	aggs    []int64
	matched int64
}

type distinctSlot struct {
	slot int
	col  []uint32
}

func newCPUAggConsumer(q *plan.Query, fact *storage.Table, acc *groupAcc) *cpuAggConsumer {
	cc := &cpuAggConsumer{q: q, fact: fact, acc: acc,
		keys: make([]uint32, len(q.GroupBy)), aggs: make([]int64, len(q.Aggs))}
	cc.valueOf = make([]func(row int) int64, len(q.Aggs))
	for ai, a := range q.Aggs {
		cc.aggCols++
		switch a.Kind {
		case plan.AggSumCol, plan.AggMin, plan.AggMax, plan.AggAvg:
			col := fact.MustColumn(a.A).Data
			cc.valueOf[ai] = func(r int) int64 { return int64(col[r]) }
		case plan.AggSumMul:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			cc.valueOf[ai] = func(r int) int64 { return int64(ca[r]) * int64(cb[r]) }
			cc.aggCols++
		case plan.AggSumSub:
			ca, cb := fact.MustColumn(a.A).Data, fact.MustColumn(a.B).Data
			cc.valueOf[ai] = func(r int) int64 { return int64(ca[r]) - int64(cb[r]) }
			cc.aggCols++
		case plan.AggCount:
			cc.valueOf[ai] = func(r int) int64 { return 1 }
		case plan.AggCountDistinct:
			col := fact.MustColumn(a.A).Data
			cc.valueOf[ai] = func(r int) int64 { return 0 }
			cc.distinctSlots = append(cc.distinctSlots, distinctSlot{slot: ai, col: col})
		}
	}
	cc.keySrc = make([]func(b *Batch, si, row int) uint32, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		if g.Table == q.Fact {
			col := fact.MustColumn(g.Column).Data
			cc.keySrc[gi] = func(_ *Batch, _ int, r int) uint32 { return col[r] }
			cc.factGroupCols++
			continue
		}
		key := g.Table + "." + g.Column
		cc.keySrc[gi] = func(b *Batch, si int, _ int) uint32 { return b.Attrs[key][si] }
	}
	return cc
}

// consume folds one batch into the accumulator, checkpointing ctx every
// cancelCheckRows matched rows.
func (cc *cpuAggConsumer) consume(ctx context.Context, b *Batch) error {
	for si, row := range b.Rows {
		if cc.matched%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for gi := range cc.keySrc {
			cc.keys[gi] = cc.keySrc[gi](b, si, row)
		}
		for ai := range cc.valueOf {
			cc.aggs[ai] = cc.valueOf[ai](row)
		}
		cc.acc.add(cc.keys, cc.aggs, 1)
		for _, d := range cc.distinctSlots {
			cc.acc.addDistinct(cc.keys, d.slot, []uint32{d.col[row]})
		}
		cc.matched++
	}
	return nil
}

// charge pays the bulk hash-aggregation charge model: the shipped tuples
// stream in, each row gathers its fact fields and pays the hash-aggregation
// constants (cpuSweep.runAggregate with the full-column stream replaced by
// the tuple + gathered fields). acc and matched are passed explicitly so a
// fanned-out run can charge once over its merged accumulator.
func (cc *cpuAggConsumer) charge(cpu *baseline.CPU, shipCols int, acc *groupAcc, matched int64) {
	touchedBytes := matched * 4 * int64(shipCols+cc.aggCols+cc.factGroupCols)
	k := cpu.Config().Kernels
	if len(cc.q.GroupBy) == 0 {
		cpu.ChargeStream(float64(matched)*0.4, touchedBytes)
	} else {
		cpu.ChargeStream(float64(matched)*(k.HashCyclesPerKey+k.AggUpdateCyclesPerRow), touchedBytes)
		cpu.ChargeRandomAccesses(matched, int64(len(acc.order))*32)
	}
	if len(cc.distinctSlots) > 0 {
		var setEntries int64
		for _, r := range acc.rows {
			for _, set := range r.sets {
				setEntries += int64(len(set))
			}
		}
		for range cc.distinctSlots {
			cpu.ChargeCompute(float64(matched) * k.HashCyclesPerKey)
			cpu.ChargeRandomAccesses(matched, setEntries*16)
		}
	}
}

// cpuAggregateShipments is the materializing tail: every lane's survivor
// tuples fold into acc in fixed lane order, then the bulk charge is paid.
func cpuAggregateShipments(ctx context.Context, cpu *baseline.CPU, q *plan.Query,
	fact *storage.Table, ships []*Batch, acc *groupAcc, shipCols int) (int64, error) {

	cons := newCPUAggConsumer(q, fact, acc)
	for _, ship := range ships {
		if ship == nil {
			continue
		}
		if err := cons.consume(ctx, ship); err != nil {
			return 0, err
		}
	}
	cons.charge(cpu, shipCols, acc, cons.matched)
	return cons.matched, nil
}

// ---------------------------------------------------------------------------
// CPU fact stage -> CAPE aggregation tail (the reverse crossing; rarely
// chosen by the cost model but fully supported, and exercised by the
// forced-placement differential columns).
// ---------------------------------------------------------------------------

func (x *Placed) runCPUFactCAPEAgg(ctx context.Context, pp *plan.PlacedPlan, db *storage.Database) (*Result, error) {
	p := pp.Phys
	q := p.Query
	eng := x.castle.eng
	cpu := x.cpu.cpu
	camCapable := eng.Config().EnableADL

	capeStart := eng.TotalCycles()
	cpuStart := cpu.Cycles()
	bk := newPlacedBreakdown()

	// --- DimBuild per edge; CAPE-built dimensions ship their values arrays
	// to the CPU.
	joins := make([]dimJoin, 0, len(p.Joins))
	for _, e := range p.Joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dev := pp.DimDevice(e.Dim)
		sp := x.parent.Child("prep:" + e.Dim)
		c0, u0 := eng.TotalCycles(), cpu.Cycles()
		var j dimJoin
		if dev == plan.DeviceCPU {
			j = cpuPrepareDim(cpu, q, e, db)
		} else {
			if camCapable {
				eng.SetLayout(cape.CAMMode)
			}
			d := capePrepareDim(eng, x.cat, q, e, db)
			j = dimJoin{edge: e, keys: d.keys, vals: d.attrs, fraction: 1}
			if d.totalRows > 0 {
				j.fraction = float64(len(d.keys)) / float64(d.totalRows)
			}
		}
		c1, u1 := eng.TotalCycles(), cpu.Cycles()
		bk.row("prep:"+e.Dim, dev.String(), (c1-c0)+(u1-u0), int64(len(j.keys)))
		if dev == plan.DeviceCAPE {
			bytes := int64(4 * len(j.keys) * (1 + len(e.NeedAttrs)))
			eng.ChargeStreamWrite(bytes)
			cpu.ChargeStream(0, bytes)
			c2, u2 := eng.TotalCycles(), cpu.Cycles()
			bk.row("xfer:"+e.Dim, "CAPE+CPU", (c2-c1)+(u2-u1), int64(len(j.keys)))
		}
		joins = append(joins, j)
		sp.SetInt("rows_out", int64(len(j.keys)))
		sp.End()
	}
	// Probe the most selective dimension first, exactly as CPUExec does.
	sort.SliceStable(joins, func(i, j int) bool { return joins[i].fraction < joins[j].fraction })

	// --- Fact stage on the CPU: filter + probe pass, gathering survivor
	// tuples.
	fact := db.MustTable(q.Fact)
	rows := fact.Rows()
	k := int(x.par.Load())
	if k < 1 {
		k = 1
	}
	if k > rows {
		k = rows
	}
	if k < 1 {
		k = 1
	}

	attrKeys, shipCols := shipTailCols(q)
	streaming := x.streaming.Load()
	maxvl := eng.Config().MAXVL
	sweep := x.parent.Child("fact-sweep")
	sweepStart := cpu.Cycles()
	ships := make([]*Batch, k)

	acc := newGroupAcc(q.Aggs)
	var stream StreamStats
	var aggCycles int64 // CAPE consumption cycles accumulated by the streaming path
	laneRows := make([]int64, k)

	// Streaming consumes each batch into the CAPE tail the moment it lands,
	// so the aggregation layout must be pinned before the first batch (the
	// CPU-side producer never touches the engine between chunks), and the
	// hash tables build once up front — probing chunk by chunk would
	// otherwise rebuild them per batch.
	var streamTS *tileSweep
	if streaming {
		a0 := eng.TotalCycles()
		x.setAggLayout(q, camCapable)
		aggCycles += eng.TotalCycles() - a0
		streamTS = &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, acc: acc}
	}

	if k == 1 {
		s := &cpuSweep{cpu: cpu, perJoin: bk.perJoin, span: sweep}
		if streaming {
			tables, err := x.buildShipTables(ctx, cpu, joins, bk)
			if err != nil {
				return nil, err
			}
			ch := &xferChannel{}
			src := &cpuFactSource{s: s, q: q, db: db, joins: joins, tables: tables,
				attrKeys: attrKeys, shipCols: shipCols, base: 0, end: rows, step: maxvl, ch: ch}
			var matched int64
			for {
				b, err := src.Next(ctx)
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
				if b.Len() > 0 {
					a0 := eng.TotalCycles()
					x.capeAggregateChunk(q, fact, b, 0, b.Len(), streamTS)
					aggCycles += eng.TotalCycles() - a0
					matched += int64(b.Len())
				}
			}
			stream = StreamStats{Batches: ch.batches, OverlapCycles: ch.credit, PeakBatchBytes: ch.peakBytes}
			bk.row("filter", "CPU", s.filterCycles, int64(rows))
			for _, e := range p.Joins {
				bk.row("join:"+e.Dim, "CPU", bk.perJoin[e.Dim], -1)
			}
			bk.row("xfer:aggregate", "CAPE+CPU", ch.xferCycles, matched)
		} else {
			sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, nil, 0, rows)
			if err != nil {
				return nil, err
			}
			x0 := cpu.Cycles()
			ships[0] = gatherCPUSurvivors(cpu, sel, attrCols, attrKeys, 0, rows, shipCols)
			bk.row("filter", "CPU", s.filterCycles, int64(rows))
			for _, e := range p.Joins {
				bk.row("join:"+e.Dim, "CPU", bk.perJoin[e.Dim], -1)
			}
			bk.row("xfer:aggregate", "CAPE+CPU", cpu.Cycles()-x0, int64(len(ships[0].Rows)))
		}
	} else {
		// Hash tables build once on the primary core, as in CPUExec.
		tables, err := x.buildShipTables(ctx, cpu, joins, bk)
		if err != nil {
			return nil, err
		}

		cores := cpu.Fork(k)
		sweeps := make([]*cpuSweep, k)
		for i, core := range cores {
			if x.tel != nil {
				AttachCPUTelemetry(core, x.tel)
			}
			sweeps[i] = &cpuSweep{cpu: core,
				perJoin: make(map[string]int64, len(joins)),
				span:    sweep.Child(fmt.Sprintf("core%d", i))}
		}
		var chans []*xferChannel
		var laneAccs []*groupAcc
		var laneAgg []int64
		var engMu sync.Mutex
		if streaming {
			chans = make([]*xferChannel, k)
			laneAccs = make([]*groupAcc, k)
			laneAgg = make([]int64, k)
			for i := range chans {
				chans[i] = &xferChannel{}
				laneAccs[i] = newGroupAcc(q.Aggs)
			}
		}
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := range sweeps {
			base, end := i*rows/k, (i+1)*rows/k
			wg.Add(1)
			go func(ti, base, end int) {
				defer wg.Done()
				s := sweeps[ti]
				defer s.span.End()
				if streaming {
					// The tail's engine is shared: lanes serialize chunk
					// consumption under a mutex into per-lane accumulators
					// (merged in lane order below), so the engine's additive
					// charges and the results stay deterministic.
					lts := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, acc: laneAccs[ti]}
					src := &cpuFactSource{s: s, q: q, db: db, joins: joins, tables: tables,
						attrKeys: attrKeys, shipCols: shipCols, base: base, end: end, step: maxvl, ch: chans[ti]}
					for {
						b, err := src.Next(ctx)
						if err != nil {
							errs[ti] = err
							return
						}
						if b == nil {
							break
						}
						if b.Len() > 0 {
							engMu.Lock()
							a0 := eng.TotalCycles()
							x.capeAggregateChunk(q, fact, b, 0, b.Len(), lts)
							laneAgg[ti] += eng.TotalCycles() - a0
							engMu.Unlock()
						}
					}
					laneRows[ti] = src.rowsIn
					return
				}
				sel, attrCols, err := s.runFilterJoins(ctx, q, db, joins, tables, base, end)
				if err != nil {
					errs[ti] = err
					return
				}
				ships[ti] = gatherCPUSurvivors(s.cpu, sel, attrCols, attrKeys, base, end, shipCols)
				laneRows[ti] = int64(end - base)
			}(i, base, end)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var maxRaw float64
		var sum, max int64
		laneCycles := make([]int64, k)
		for i, s := range sweeps {
			cy := s.cpu.Cycles()
			laneCycles[i] = cy
			bk.row(fmt.Sprintf("sweep[%d]", i), "CPU", cy, laneRows[i])
			sum += cy
			if cy > max {
				max = cy
			}
			if raw := s.cpu.RawCycles(); raw > maxRaw {
				maxRaw = raw
			}
			for d, cyj := range s.perJoin {
				bk.perJoin[d] += cyj
			}
		}
		bk.row("parallel-overlap", "CPU", max-sum, -1)
		cpu.AbsorbElapsed(maxRaw)
		for _, core := range cores {
			cpu.AbsorbTraffic(core)
		}
		if streaming {
			credits := make([]int64, k)
			for i, ch := range chans {
				credits[i] = ch.credit
				stream.Batches += ch.batches
				stream.PeakBatchBytes += ch.peakBytes
			}
			stream.OverlapCycles = overlapElapsedCredit(laneCycles, credits)
			// Merge the per-lane accumulators in fixed lane order — the same
			// consumption order the materializing tail uses.
			for _, la := range laneAccs {
				acc.merge(la)
			}
			for _, cy := range laneAgg {
				aggCycles += cy
			}
		}
	}
	sweep.SetInt("cycles", cpu.Cycles()-sweepStart)
	sweep.SetInt("cores", int64(k))
	sweep.End()

	// --- Aggregation tail on the CAPE primary engine: shipped tuples load
	// into the CSB in MAXVL chunks (the loads' stream reads bill the
	// transfer's read side) and Algorithm 2 runs over each chunk. The
	// streaming path already consumed every batch above; only the close-out
	// remains.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spa := x.parent.Child("aggregate")
	if !streaming {
		a0 := eng.TotalCycles()
		if err := x.capeAggregateShipments(ctx, q, fact, ships, acc, camCapable); err != nil {
			return nil, err
		}
		aggCycles = eng.TotalCycles() - a0
	}
	if len(q.GroupBy) == 0 && len(acc.order) == 0 {
		acc.add(nil, make([]int64, len(q.Aggs)), 0)
	}
	bk.row("aggregate", "CAPE", aggCycles, int64(len(acc.order)))
	spa.SetInt("cycles", aggCycles)
	spa.SetInt("groups", int64(len(acc.order)))
	spa.End()

	res := acc.result(q)
	x.publish(bk, eng.TotalCycles()-capeStart, cpu.Cycles()-cpuStart, stream)
	return res, nil
}

// buildShipTables builds the probe-side hash tables once on the primary
// core, emitting a "build:" row per dimension. Probe cycles accumulate
// separately (per-lane perJoin), so build rows never double-count.
func (x *Placed) buildShipTables(ctx context.Context, cpu *baseline.CPU, joins []dimJoin,
	bk *placedBreakdown) ([]joinTable, error) {

	tables := make([]joinTable, len(joins))
	for ji, j := range joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b0 := cpu.Cycles()
		if len(j.edge.NeedAttrs) == 0 {
			tables[ji].semi = cpu.BuildHashSemi(j.keys)
		} else {
			tables[ji].attr = make([]*baseline.HashTable, len(j.edge.NeedAttrs))
			for ai := range j.edge.NeedAttrs {
				tables[ji].attr[ai] = cpu.BuildHashMap(j.keys, j.vals[ai])
			}
		}
		bk.row("build:"+j.edge.Dim, "CPU", cpu.Cycles()-b0, int64(len(j.keys)))
	}
	return tables, nil
}

// cpuFactSource is the CPU-side batch producer for one lane of a streaming
// mixed run: each Next runs the filter+probe pass over the lane's next
// MAXVL-row chunk, gathers the survivors as a batch, and records the
// (compute, transfer) split into the lane's double-buffered channel.
type cpuFactSource struct {
	s        *cpuSweep
	q        *plan.Query
	db       *storage.Database
	joins    []dimJoin
	tables   []joinTable
	attrKeys []string
	shipCols int

	base, end, step int

	ch     *xferChannel
	rowsIn int64
}

func (src *cpuFactSource) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src.step <= 0 || src.base >= src.end {
		return nil, nil
	}
	lo, hi := src.base, src.base+src.step
	if hi > src.end {
		hi = src.end
	}
	core := src.s.cpu
	c0 := core.Cycles()
	sel, attrCols, err := src.s.runFilterJoins(ctx, src.q, src.db, src.joins, src.tables, lo, hi)
	if err != nil {
		return nil, err
	}
	compute := core.Cycles() - c0
	x0 := core.Cycles()
	b := gatherCPUSurvivors(core, sel, attrCols, src.attrKeys, lo, hi, src.shipCols)
	xfer := core.Cycles() - x0
	src.ch.record(compute, xfer, b.ShipBytes(src.shipCols))
	src.rowsIn += int64(hi - lo)
	src.base = hi
	return b, nil
}

// gatherCPUSurvivors collects a lane's surviving rows (and the tail's
// dimension attributes) into a batch and bills the CPU side of the
// crossing: a gather loop plus the streamed tuple bytes.
func gatherCPUSurvivors(cpu *baseline.CPU, sel *bitvec.Vector, attrCols map[string][]uint32,
	attrKeys []string, base, end, shipCols int) *Batch {

	b := NewBatch(base, attrKeys)
	collect := func(i int) { // i is range-local
		b.Rows = append(b.Rows, base+i)
		for _, key := range attrKeys {
			col := attrCols[key]
			if col == nil {
				panic("exec: shipped attribute " + key + " was not materialized by any join")
			}
			b.Attrs[key] = append(b.Attrs[key], col[i])
		}
	}
	if sel == nil {
		for i := 0; i < end-base; i++ {
			collect(i)
		}
	} else {
		for i := sel.First(); i != -1; i = sel.NextAfter(i) {
			collect(i)
		}
	}
	n := len(b.Rows)
	cpu.ChargeStreamWrite(float64(2*n), int64(4*n*shipCols))
	return b
}

// setAggLayout pins the CSB layout the CAPE aggregation tail needs:
// GP mode when a vector-vector arithmetic aggregate must run, CAM mode
// otherwise. Grouped vv-arithmetic is outside the supported shape.
func (x *Placed) setAggLayout(q *plan.Query, camCapable bool) {
	needGPArith := false
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			needGPArith = true
		}
	}
	if needGPArith && len(q.GroupBy) > 0 {
		panic("exec: GROUP BY with vv-arithmetic aggregates is outside SSB's shape")
	}
	if camCapable {
		if needGPArith {
			x.castle.eng.SetLayout(cape.GPMode)
		} else {
			x.castle.eng.SetLayout(cape.CAMMode)
		}
	}
}

// capeAggregateShipments runs the CAPE aggregation kernels over shipped
// survivor tuples: each lane's tuples are processed in fixed order, loaded
// into the CSB in MAXVL chunks as gathered columns, and folded with the
// exact instruction billing of the on-device Algorithm 2 loop.
func (x *Placed) capeAggregateShipments(ctx context.Context, q *plan.Query, fact *storage.Table,
	ships []*Batch, acc *groupAcc, camCapable bool) error {

	eng := x.castle.eng
	maxvl := eng.Config().MAXVL

	x.setAggLayout(q, camCapable)
	// The charged loop helpers live on tileSweep; borrow one bound to the
	// primary engine.
	ts := &tileSweep{cat: x.cat, opts: x.castle.opts, eng: eng, acc: acc}

	for _, ship := range ships {
		if ship == nil {
			continue
		}
		for lo := 0; lo < len(ship.Rows); lo += maxvl {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + maxvl
			if hi > len(ship.Rows) {
				hi = len(ship.Rows)
			}
			x.capeAggregateChunk(q, fact, ship, lo, hi, ts)
		}
	}
	return nil
}

// capeAggregateChunk loads one chunk of shipped tuples into the CSB and
// aggregates it: gathered fact columns and shipped attributes become CSB
// vectors (loads bill the stream reads), then the scalar reductions or the
// literal per-group Algorithm 2 loop run with on-device billing.
func (x *Placed) capeAggregateChunk(q *plan.Query, fact *storage.Table,
	ship *Batch, lo, hi int, ts *tileSweep) {

	eng := x.castle.eng
	acc := ts.acc
	n := hi - lo
	eng.SetVL(n)
	regs := newRegAlloc(eng.Config().NumVRegs)

	gatherFact := func(name string) []uint32 {
		col := fact.MustColumn(name).Data
		out := make([]uint32, n)
		for i, row := range ship.Rows[lo:hi] {
			out[i] = col[row]
		}
		return out
	}
	loaded := make(map[string]cape.VReg)
	loadGathered := func(key string, data []uint32, table, col string) cape.VReg {
		if r, ok := loaded[key]; ok {
			return r
		}
		r := regs.fresh()
		eng.Load(r, data, colWidth(x.cat, table, col))
		loaded[key] = r
		return r
	}
	loadFact := func(name string) cape.VReg {
		if r, ok := loaded[name]; ok {
			return r
		}
		return loadGathered(name, gatherFact(name), q.Fact, name)
	}

	rowMask := eng.MaskInit(true)

	// --- Scalar tail (no GROUP BY): predicated reductions per aggregate.
	if len(q.GroupBy) == 0 {
		rows := int64(eng.MPopc(rowMask))
		if rows == 0 {
			return
		}
		vals := make([]int64, len(q.Aggs))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				vals[i] = eng.RedSum(loadFact(a.A), rowMask)
			case plan.AggSumMul:
				ra, rb := loadFact(a.A), loadFact(a.B)
				tmp := regs.fresh()
				eng.MulVV(tmp, ra, rb)
				vals[i] = eng.RedSum(tmp, rowMask)
			case plan.AggSumSub:
				vals[i] = eng.RedSum(loadFact(a.A), rowMask) - eng.RedSum(loadFact(a.B), rowMask)
				eng.Scalar(1)
			case plan.AggCount:
				vals[i] = rows
			case plan.AggMin:
				v, _ := eng.RedMin(loadFact(a.A), rowMask)
				vals[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(loadFact(a.A), rowMask)
				vals[i] = int64(v)
			case plan.AggCountDistinct:
				data := gatherFact(a.A)
				r := loadGathered(a.A, data, q.Fact, a.A)
				values := distinctUnder(data, 0, rowMask)
				ts.chargeDistinctLoop(int64(len(values)), eng.RegWidth(r))
				acc.addDistinct(nil, i, values)
			}
			eng.Scalar(4)
		}
		acc.add(nil, vals, rows)
		return
	}

	// --- Grouped tail: the literal Algorithm 2 loop over the chunk.
	groupRegs := make([]cape.VReg, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			groupRegs[i] = loadFact(g.Column)
			continue
		}
		key := g.Table + "." + g.Column
		data := ship.Attrs[key][lo:hi]
		groupRegs[i] = loadGathered(key, data, g.Table, g.Column)
	}
	aggRegs := make([][2]cape.VReg, len(q.Aggs))
	distinctData := make([][]uint32, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind == plan.AggCountDistinct {
			distinctData[i] = gatherFact(a.A)
			aggRegs[i][0] = loadGathered(a.A, distinctData[i], q.Fact, a.A)
			continue
		}
		if a.Kind != plan.AggCount {
			aggRegs[i][0] = loadFact(a.A)
		}
		if a.Kind == plan.AggSumSub {
			aggRegs[i][1] = loadFact(a.B)
		}
	}

	remaining := rowMask
	keys := make([]uint32, len(q.GroupBy))
	aggs := make([]int64, len(q.Aggs))
	for {
		idx := eng.MFirst(remaining)
		if idx == -1 {
			break
		}
		groupMask := remaining
		for i, r := range groupRegs {
			keys[i] = eng.Extract(r, idx)
			groupMask = eng.MaskAnd(groupMask, eng.Search(r, keys[i]))
		}
		groupRows := int64(eng.MPopc(groupMask))
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask)
			case plan.AggSumSub:
				aggs[i] = eng.RedSum(aggRegs[i][0], groupMask) - eng.RedSum(aggRegs[i][1], groupMask)
				eng.Scalar(1)
			case plan.AggCount:
				aggs[i] = groupRows
			case plan.AggMin:
				v, _ := eng.RedMin(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggMax:
				v, _ := eng.RedMax(aggRegs[i][0], groupMask)
				aggs[i] = int64(v)
			case plan.AggCountDistinct:
				values := distinctUnder(distinctData[i], 0, groupMask)
				ts.chargeDistinctLoop(int64(len(values)), eng.RegWidth(aggRegs[i][0]))
				acc.addDistinct(keys, i, values)
				aggs[i] = 0
			}
		}
		acc.add(keys, aggs, groupRows)
		eng.Scalar(12)
		eng.CPAccess(1, int64(len(acc.order))*16)
		remaining = eng.MaskXor(remaining, groupMask)
	}
}
