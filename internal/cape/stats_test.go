package cape

import (
	"testing"

	"castle/internal/isa"
)

func TestStatsAddAccumulates(t *testing.T) {
	var s Stats
	o := Stats{
		CSBCycles:    100,
		CPCycles:     10,
		MemCycles:    5,
		VectorInstrs: 3,
		ScalarInstrs: 2,
		InstrsByOp:   map[isa.Op]int64{isa.OpVMSeqVX: 3},
	}
	o.CSBCyclesByClass[isa.ClassSearch] = 100
	s.Add(o)
	s.Add(o)
	if s.CSBCycles != 200 || s.CPCycles != 20 || s.MemCycles != 10 {
		t.Fatalf("cycle sums wrong: %+v", s)
	}
	if s.CSBCyclesByClass[isa.ClassSearch] != 200 {
		t.Fatalf("class cycles = %d, want 200", s.CSBCyclesByClass[isa.ClassSearch])
	}
	if s.TotalCycles() != 230 {
		t.Fatalf("TotalCycles = %d, want 230", s.TotalCycles())
	}
	if s.InstrsByOp[isa.OpVMSeqVX] != 6 {
		t.Fatalf("InstrsByOp = %v", s.InstrsByOp)
	}
}

func TestStatsAddNilInstrsByOp(t *testing.T) {
	// Adding a Stats with a nil op map must not allocate one on the
	// receiver or panic; adding into a nil receiver map must allocate.
	var s Stats
	s.Add(Stats{CSBCycles: 1})
	if s.InstrsByOp != nil {
		t.Fatalf("InstrsByOp should stay nil, got %v", s.InstrsByOp)
	}
	s.Add(Stats{InstrsByOp: map[isa.Op]int64{isa.OpVAddVV: 4}})
	if s.InstrsByOp[isa.OpVAddVV] != 4 {
		t.Fatalf("InstrsByOp = %v", s.InstrsByOp)
	}
}

func TestClassShareZeroCycles(t *testing.T) {
	var s Stats
	share := s.ClassShare()
	for c, f := range share {
		if f != 0 {
			t.Fatalf("class %v share = %v for zero CSB cycles", isa.Class(c), f)
		}
	}
	// String must not divide by zero either.
	if got := s.String(); got == "" {
		t.Fatal("String empty")
	}
}

func TestClassShareSumsToOne(t *testing.T) {
	var s Stats
	s.CSBCycles = 40
	s.CSBCyclesByClass[isa.ClassSearch] = 10
	s.CSBCyclesByClass[isa.ClassArithmetic] = 30
	share := s.ClassShare()
	var total float64
	for _, f := range share {
		total += f
	}
	if total != 1.0 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
	if share[isa.ClassSearch] != 0.25 {
		t.Fatalf("search share = %v, want 0.25", share[isa.ClassSearch])
	}
}

func TestTracerCoalesceAccounting(t *testing.T) {
	tr := NewTracer(2)
	e := TraceEntry{Op: isa.OpVMSeqVX, Steps: 4, VL: 64, Count: 1}
	for i := 0; i < 5; i++ {
		tr.record(e)
	}
	// Five identical instructions coalesce into one entry, none dropped.
	if got := len(tr.Entries()); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	if tr.Instructions() != 5 || tr.Dropped() != 0 {
		t.Fatalf("instructions=%d dropped=%d", tr.Instructions(), tr.Dropped())
	}
	// A different op starts entry 2; the next different op overflows and is
	// counted as dropped, not silently lost.
	tr.record(TraceEntry{Op: isa.OpVAddVV, Steps: 32, VL: 64, Count: 1})
	tr.record(TraceEntry{Op: isa.OpVMFirst, Steps: 1, VL: 64, Count: 7})
	if got := len(tr.Entries()); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerEntriesIsACopy(t *testing.T) {
	tr := NewTracer(4)
	tr.record(TraceEntry{Op: isa.OpVMSeqVX, Steps: 4, VL: 64, Count: 1})
	got := tr.Entries()
	got[0].Count = 999
	if tr.Entries()[0].Count == 999 {
		t.Fatal("Entries aliases the live buffer")
	}
}
