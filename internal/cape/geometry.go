package cape

import "fmt"

// Geometry describes the CSB's physical organisation (§2.2): the CSB is
// built from chains of 32x32-bit SRAM subarrays operating in lockstep. In
// GP mode, subarray i of a chain holds bit i of every vector register for
// the chain's 32 elements (bitslicing guarantees operand locality); in CAM
// mode a subarray holds 32 contiguous 32-bit values of one register, with
// one subarray per chain reserved for masks (§5.2, Figure 8).
type Geometry struct {
	// SubarrayRows and SubarrayCols are one subarray's dimensions in bits.
	SubarrayRows, SubarrayCols int
	// SubarraysPerChain is the chain length (32 bit positions in GP mode).
	SubarraysPerChain int
	// Chains is the number of lockstep chains.
	Chains int
}

// GeometryFor derives the CSB organisation from a configuration: each
// chain serves SubarrayRows vector elements, so MAXVL/32 chains; each
// chain has one subarray per bit of the element width.
func GeometryFor(cfg Config) Geometry {
	g := Geometry{
		SubarrayRows:      32,
		SubarrayCols:      32,
		SubarraysPerChain: 32,
	}
	g.Chains = (cfg.MAXVL + g.SubarrayRows - 1) / g.SubarrayRows
	return g
}

// Subarrays returns the total subarray count ("tens of thousands", §2.2).
func (g Geometry) Subarrays() int { return g.Chains * g.SubarraysPerChain }

// SubarrayBits returns one subarray's capacity in bits.
func (g Geometry) SubarrayBits() int { return g.SubarrayRows * g.SubarrayCols }

// BitsPerChainRegister returns the bits a chain stores for one vector
// register (its 32 elements x 32 bits).
func (g Geometry) BitsPerChainRegister() int { return g.SubarrayRows * 32 }

// CapacityBytes returns the CSB capacity implied by the geometry when all
// subarrays store register data. In GP mode the 32 subarrays of a chain
// collectively hold bit-planes for the chain's 32 elements across all 32
// registers: 32 subarrays x 1024 bits = 4 KiB per chain.
func (g Geometry) CapacityBytes() int { return g.Subarrays() * g.SubarrayBits() / 8 }

// CAMValueSubarrays returns, per chain, the subarrays available for value
// storage in CAM mode: one subarray per chain is logically reserved for
// masks (§5.2, Figure 8).
func (g Geometry) CAMValueSubarrays() int { return g.SubarraysPerChain - 1 }

// CAMValuesPerChain returns how many 32-bit values one chain can hold in
// CAM mode (each value subarray stores 32 contiguous values).
func (g Geometry) CAMValuesPerChain() int { return g.CAMValueSubarrays() * g.SubarrayRows }

// RenameCAMBytes returns the size of the register-renaming CAM that maps
// vector register names to physical subarrays in CAM mode (§5.2 reports a
// small 64-byte CAM).
func (g Geometry) RenameCAMBytes() int { return 64 }

// String summarises the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%d chains x %d subarrays (%dx%d bits each) = %d subarrays, %.1f MB CSB",
		g.Chains, g.SubarraysPerChain, g.SubarrayRows, g.SubarrayCols,
		g.Subarrays(), float64(g.CapacityBytes())/(1<<20))
}
