package cape

import "testing"

func TestForkMergeCycleViews(t *testing.T) {
	eng := New(DefaultConfig())
	eng.Scalar(100)
	prep := eng.TotalCycles()

	g := eng.Fork(3)
	forked := eng.TotalCycles()
	if forked <= prep {
		t.Fatal("Fork must charge the parent for morsel dispatch")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	for i, tile := range g.Tiles() {
		if tile.TotalCycles() != 0 {
			t.Fatalf("tile %d starts with %d cycles, want fresh Stats", i, tile.TotalCycles())
		}
		if tile.Config().MAXVL != eng.Config().MAXVL {
			t.Fatalf("tile %d config diverged from parent", i)
		}
	}

	// Unequal work: tile 1 is the critical one, and tile 0 also moves memory.
	g.Tile(0).Scalar(10)
	g.Tile(0).ChargeStreamRead(1 << 16)
	g.Tile(1).Scalar(5000)
	g.Tile(2).Scalar(30)

	if got := g.CriticalTile(); got != 1 {
		t.Fatalf("CriticalTile = %d, want 1", got)
	}
	cyc := g.TileCycles()
	sum := cyc[0] + cyc[1] + cyc[2]
	if got := g.WorkCycles(); got != sum {
		t.Fatalf("WorkCycles = %d, want sum of tiles %d", got, sum)
	}
	if got := g.WorkStats().TotalCycles(); got != sum {
		t.Fatalf("WorkStats cycles = %d, want %d", got, sum)
	}

	tileTraffic := g.Tile(0).Mem().BytesMoved()
	if tileTraffic == 0 {
		t.Fatal("tile stream read accounted no traffic")
	}
	baseTraffic := eng.Mem().BytesMoved()

	merged := g.Merge()
	for i := range merged {
		if merged[i] != cyc[i] {
			t.Fatalf("Merge returned %v, want tile cycles %v", merged, cyc)
		}
	}
	// Elapsed view: the parent advances by exactly the critical tile.
	if got, want := eng.TotalCycles(), forked+cyc[1]; got != want {
		t.Fatalf("parent after Merge = %d, want prep+fork+max(tiles) = %d", got, want)
	}
	// Work view: every tile's traffic folds into the parent.
	if got, want := eng.Mem().BytesMoved(), baseTraffic+tileTraffic; got != want {
		t.Fatalf("parent traffic after Merge = %d, want %d", got, want)
	}
}

func TestForkMergeTwicePanics(t *testing.T) {
	g := New(DefaultConfig()).Fork(2)
	g.Merge()
	defer func() {
		if recover() == nil {
			t.Fatal("second Merge must panic")
		}
	}()
	g.Merge()
}

func TestForkInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fork(0) must panic")
		}
	}()
	New(DefaultConfig()).Fork(0)
}
