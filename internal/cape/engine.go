package cape

import (
	"fmt"

	"castle/internal/bitvec"
	"castle/internal/isa"
	"castle/internal/mem"
)

// VReg identifies an architectural vector register (v0..v31).
type VReg int

// Engine is a functional, cycle-cost simulator of one CAPE core.
//
// Vector registers hold 32-bit elements; mask values are produced and
// consumed as *bitvec.Vector (the RISC-V vector extension stores masks in
// vector registers, but a dedicated Go type keeps the operator code
// readable; every mask-producing or mask-consuming instruction still charges
// its architectural cost).
//
// All instruction methods execute functionally and charge cycles. The three
// cycle pools — control processor, CSB, and VMU/memory — are modelled as
// serialized (a vector instruction commits only after it completes in the
// CSB, §2.2), which is the paper's conservative instruction-level model.
type Engine struct {
	cfg Config
	mm  *mem.System

	vl     int
	layout Layout

	regs []vreg

	tracer *Tracer
	hook   CycleHook

	st Stats
}

// CycleHook observes cycle charges as the engine bills them, mirroring the
// three Stats pools (CSB attributed by Figure 7 class, control processor,
// VMU/memory). It runs inline on the charge paths alongside the Tracer, so
// a telemetry bridge sees exactly the cycles Stats accumulates — the sums
// match Stats() to the cycle.
type CycleHook interface {
	// CSBCycles is called for every CSB charge with its instruction class.
	CSBCycles(class isa.Class, cycles int64)
	// CPCycles is called for control-processor occupancy charges.
	CPCycles(cycles int64)
	// MemCycles is called for VMU transfer charges.
	MemCycles(cycles int64)
}

// AttachCycleHook starts streaming cycle charges into h (nil detaches).
func (e *Engine) AttachCycleHook(h CycleHook) { e.hook = h }

// addCSB centralizes CSB cycle attribution: every charge path (instruction
// issue, bulk billing, ABA discovery/extension) funnels through here so
// Stats and the CycleHook cannot diverge.
func (e *Engine) addCSB(class isa.Class, cycles int64) {
	e.st.CSBCycles += cycles
	e.st.CSBCyclesByClass[class] += cycles
	if e.hook != nil {
		e.hook.CSBCycles(class, cycles)
	}
}

// addCP centralizes control-processor cycle charges.
func (e *Engine) addCP(cycles int64) {
	e.st.CPCycles += cycles
	if e.hook != nil {
		e.hook.CPCycles(cycles)
	}
}

type vreg struct {
	data  []uint32
	width int  // known operating bitwidth (ABA); 32 when unknown
	known bool // width provided by DB statistics or discovered
	valid bool // contents survive only within one layout epoch

	// index lazily maps value -> element positions so the functional side
	// of searches costs O(matches) instead of O(VL). It is a simulator
	// acceleration only — cycle charging is unaffected. Any write to the
	// register drops it; the next search rebuilds it.
	index   map[uint32][]int32
	indexVL int
}

// invalidateIndex drops the search acceleration index after a write.
func (v *vreg) invalidateIndex() { v.index = nil }

// buildIndex (re)builds the value->positions map over the first vl elements.
func (v *vreg) buildIndex(vl int) {
	v.index = make(map[uint32][]int32, vl)
	for i, x := range v.data[:vl] {
		v.index[x] = append(v.index[x], int32(i))
	}
	v.indexVL = vl
}

// lookup returns the positions of key among the first vl elements.
func (v *vreg) lookup(key uint32, vl int) []int32 {
	if v.index == nil || v.indexVL != vl {
		v.buildIndex(vl)
	}
	return v.index[key]
}

// New returns an Engine for the given configuration.
func New(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:    cfg,
		mm:     mem.NewSystem(cfg.Mem),
		vl:     cfg.MAXVL,
		layout: GPMode,
		regs:   make([]vreg, cfg.NumVRegs),
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Mem exposes the memory system (for traffic accounting in experiments).
func (e *Engine) Mem() *mem.System { return e.mm }

// VL returns the active vector length.
func (e *Engine) VL() int { return e.vl }

// Layout returns the active data layout.
func (e *Engine) Layout() Layout { return e.layout }

// SetVL executes vsetvl: the active vector length becomes min(req, MAXVL)
// and the granted length is returned (RISC-V vector-length agnostic code
// requests the remaining input length and receives the hardware grant).
func (e *Engine) SetVL(req int) int {
	if req < 0 {
		panic("cape: negative vector length")
	}
	e.chargeCSB(isa.OpVSetVL, isa.SetVLSteps)
	if req > e.cfg.MAXVL {
		req = e.cfg.MAXVL
	}
	e.vl = req
	return req
}

// SetLayout executes vsetdl (§5.2). When ADL is disabled the instruction
// decodes to a no-op and the engine stays in GP mode. Switching layouts
// invalidates all vector register contents (the bits are reinterpreted in
// the new layout); masks survive only through Relayout.
func (e *Engine) SetLayout(l Layout) {
	e.chargeCSB(isa.OpVSetDL, isa.SetDLSteps)
	if !e.cfg.EnableADL {
		return
	}
	if l == e.layout {
		return
	}
	e.layout = l
	for i := range e.regs {
		e.regs[i].valid = false
	}
}

// Relayout executes vrelayout (§5.2): it carries a mask across a layout
// switch for two cycles. The returned mask is usable in the new layout.
func (e *Engine) Relayout(m *bitvec.Vector) *bitvec.Vector {
	e.chargeCSB(isa.OpVRelayout, isa.RelayoutSteps)
	return m.Clone()
}

// ChargeStreamRead bills a VMU read of n bytes that is not tied to a
// register load (e.g. probe-key streams, spilled masks).
func (e *Engine) ChargeStreamRead(n int64) { e.chargeMem(e.mm.StreamRead(n)) }

// ChargeStreamWrite bills a VMU write of n bytes (compacted values arrays,
// spilled masks, materialized results).
func (e *Engine) ChargeStreamWrite(n int64) { e.chargeMem(e.mm.StreamWrite(n)) }

// Scalar charges n scalar control-processor instructions (loop control,
// address generation, branches around the vector stream).
func (e *Engine) Scalar(n int64) {
	e.addCP(int64(float64(n)*e.cfg.ScalarCPI + 0.5))
	e.st.ScalarInstrs += n
}

// CPAccess charges n data-dependent CP memory accesses over a working set
// of wsBytes (e.g. the CP-side hash of group results that merges Algorithm
// 2's per-partition output). With few groups this is an L1 hit per access;
// once the result set outgrows the CP's caches, the in-order core stalls —
// the effect behind the baseline overtaking Castle at very large group
// counts (Figure 12).
func (e *Engine) CPAccess(n int64, wsBytes int64) {
	if n <= 0 {
		return
	}
	e.addCP(int64(float64(n) * e.cfg.CPHierarchy.ExpectedAccessCycles(wsBytes)))
}

func (e *Engine) reg(r VReg) *vreg {
	if int(r) < 0 || int(r) >= len(e.regs) {
		panic(fmt.Sprintf("cape: vector register v%d out of range", int(r)))
	}
	return &e.regs[r]
}

func (e *Engine) validReg(r VReg) *vreg {
	v := e.reg(r)
	if !v.valid {
		panic(fmt.Sprintf("cape: v%d read while invalid (stale across a layout switch, or never loaded)", int(r)))
	}
	if len(v.data) < e.vl {
		panic(fmt.Sprintf("cape: v%d holds %d elements but VL is %d", int(r), len(v.data), e.vl))
	}
	return v
}

// chargeCSB records a vector instruction: CP issue occupancy plus the CSB
// step count, attributed to the opcode's Figure 7 class.
func (e *Engine) chargeCSB(op isa.Op, steps int64) {
	steps = int64(float64(steps)*e.cfg.stepMultiplier() + 0.5)
	e.st.VectorInstrs++
	e.addCP(int64(e.cfg.CPIssuePerVectorInstr))
	e.addCSB(op.Class(), steps)
	if e.st.InstrsByOp == nil {
		e.st.InstrsByOp = make(map[isa.Op]int64)
	}
	e.st.InstrsByOp[op]++
	e.trace(op, steps, 1)
}

// chargeMem records VMU transfer cycles.
func (e *Engine) chargeMem(cycles int64) {
	e.st.MemCycles += cycles
	if e.hook != nil {
		e.hook.MemCycles(cycles)
	}
}

// width returns the operating bitwidth for a register under ABA. Without
// ABA everything runs at the full 32-bit representation. With ABA, a width
// provided by the database (column min/max statistics) is used directly;
// otherwise the engine embeds a discovery phase in the instruction,
// searching the {4, 8, 16, 32}-bit guesses (§5.1).
func (e *Engine) width(v *vreg) int {
	if !e.cfg.EnableABA {
		return 32
	}
	if v.known {
		return v.width
	}
	// Embedded discovery: one masked all-zeroes/all-ones search pair per
	// guess, walking down from 32 bits.
	guesses := []int{16, 8, 4}
	w := 32
	need := v.neededWidth(e.vl)
	for _, g := range guesses {
		e.addCSB(isa.ClassOther, 2) // search all-0s + all-1s above bit g
		if need > g {
			break
		}
		w = g
	}
	v.width, v.known = w, true
	return w
}

// neededWidth computes the minimal bitwidth that represents every element.
func (v *vreg) neededWidth(vl int) int {
	var max uint32
	for _, x := range v.data[:vl] {
		if x > max {
			max = x
		}
	}
	w := 0
	for max != 0 {
		w++
		max >>= 1
	}
	if w == 0 {
		w = 1
	}
	return w
}

// snapWidth rounds a bitwidth up to the ABA guess set {4, 8, 16, 32}.
func snapWidth(w int) int {
	switch {
	case w <= 4:
		return 4
	case w <= 8:
		return 8
	case w <= 16:
		return 16
	default:
		return 32
	}
}

// abaExtend charges the bit-serial sign/zero-extension pass that restores
// the full representation after a reduced-width bit-serial operation (§5.1:
// "up to 16 cycles on instructions that take hundreds or thousands").
func (e *Engine) abaExtend(w int) {
	if w < 32 {
		ext := int64(32 - w)
		if ext > 16 {
			ext = 16
		}
		e.addCSB(isa.ClassOther, ext)
	}
}
