package cape

import (
	"fmt"
	"io"

	"castle/internal/isa"
)

// TraceEntry records one issued vector instruction (or, for bulk-billed
// fast paths, a run of identical instructions).
type TraceEntry struct {
	Op     isa.Op
	Steps  int64 // CSB steps per instruction
	Count  int64 // identical instructions represented by this entry
	VL     int
	Layout Layout
}

func (e TraceEntry) String() string {
	if e.Count > 1 {
		return fmt.Sprintf("%-12v x%-8d %4d steps  vl=%-6d %v", e.Op, e.Count, e.Steps, e.VL, e.Layout)
	}
	return fmt.Sprintf("%-12v           %4d steps  vl=%-6d %v", e.Op, e.Steps, e.VL, e.Layout)
}

// Tracer captures the engine's instruction stream for debugging and for
// inspecting the microcode sequences an operator emits. It keeps at most
// max entries; further instructions are counted but not stored.
type Tracer struct {
	max     int
	entries []TraceEntry
	dropped int64
}

// NewTracer returns a Tracer storing up to max entries (<=0 means 4096).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{max: max}
}

func (t *Tracer) record(e TraceEntry) {
	// Coalesce runs of identical instructions (e.g. the per-key searches
	// of a join probe loop).
	if n := len(t.entries); n > 0 {
		last := &t.entries[n-1]
		if last.Op == e.Op && last.Steps == e.Steps && last.VL == e.VL && last.Layout == e.Layout {
			last.Count += e.Count
			return
		}
	}
	if len(t.entries) >= t.max {
		t.dropped += e.Count
		return
	}
	t.entries = append(t.entries, e)
}

// Entries returns a copy of the captured entries (callers cannot alias the
// live buffer, which later instructions still coalesce into).
func (t *Tracer) Entries() []TraceEntry {
	return append([]TraceEntry(nil), t.entries...)
}

// Dropped returns how many instructions arrived after the buffer filled.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Instructions returns the total instruction count captured (including
// coalesced runs, excluding dropped).
func (t *Tracer) Instructions() int64 {
	var n int64
	for _, e := range t.entries {
		n += e.Count
	}
	return n
}

// Reset clears the trace.
func (t *Tracer) Reset() {
	t.entries = t.entries[:0]
	t.dropped = 0
}

// Dump writes the trace in program order.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.entries {
		fmt.Fprintln(w, e)
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "... %d further instructions dropped (buffer full)\n", t.dropped)
	}
}

// AttachTracer starts recording the engine's instruction stream into tr.
// Pass nil to stop tracing.
func (e *Engine) AttachTracer(tr *Tracer) { e.tracer = tr }

// trace is called from the charge paths.
func (e *Engine) trace(op isa.Op, steps, count int64) {
	if e.tracer == nil {
		return
	}
	e.tracer.record(TraceEntry{Op: op, Steps: steps, Count: count, VL: e.vl, Layout: e.layout})
}
