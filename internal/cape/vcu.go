package cape

// vcu.go models the Vector Control Unit's microcode sequencer: the
// component that expands each vector instruction into the search/update
// microoperation sequence the CSB executes (§2.2: "the sequence of
// operations that implement the increment instruction needs to be 'stored'
// somewhere — e.g., the micro-memory of a sequencer"; §5.1: ABA
// "configures CAPE's microcode sequencer to use the new discovered
// bitwidth").
//
// Microprogram returns the abstract step sequence for an opcode at a given
// operand width; its length equals the Table 1 cost model by construction,
// which TestMicroprogramLengthsMatchCostModel asserts against isa.Steps.

import (
	"fmt"

	"castle/internal/isa"
)

// MicroOpKind classifies one sequencer step.
type MicroOpKind int

// Sequencer step kinds.
const (
	// MicroSearch is an element-parallel compare producing tag bits.
	MicroSearch MicroOpKind = iota
	// MicroUpdate is a predicated bulk write of tagged elements.
	MicroUpdate
	// MicroBroadcast is an unconditioned bulk write (e.g. carry init).
	MicroBroadcast
	// MicroTagMove transfers tag bits through the chain logic (mask
	// deposits, CAM-mode result moves).
	MicroTagMove
	// MicroReduce is one pass of the hardware reduction tree.
	MicroReduce
	// MicroControl is a CSR/configuration step (vsetvl, vsetdl).
	MicroControl
)

func (k MicroOpKind) String() string {
	switch k {
	case MicroSearch:
		return "search"
	case MicroUpdate:
		return "update"
	case MicroBroadcast:
		return "broadcast"
	case MicroTagMove:
		return "tagmove"
	case MicroReduce:
		return "reduce"
	case MicroControl:
		return "control"
	}
	return fmt.Sprintf("microop(%d)", int(k))
}

// MicroOp is one sequencer step. Bit is the operand bit position the step
// addresses (-1 for whole-operand steps).
type MicroOp struct {
	Kind MicroOpKind
	Bit  int
	Note string
}

// Microprogram expands op at the given operand width into its microop
// sequence in the default bitsliced (GP-mode) layout. Ops whose microcode
// is not bit-serial (loads, stores) return nil — they are handled by the
// VMU, not the sequencer.
func Microprogram(op isa.Op, width int) []MicroOp {
	n := width
	switch op {
	case isa.OpVAddVV, isa.OpVSubVV:
		// Full adder/subtractor: 4 search/update pairs per bit, plus
		// carry init and carry clear (8n+2).
		prog := []MicroOp{{MicroBroadcast, -1, "carry <- 0"}}
		for b := 0; b < n; b++ {
			for pair := 0; pair < 4; pair++ {
				prog = append(prog,
					MicroOp{MicroSearch, b, "truth-table row"},
					MicroOp{MicroUpdate, b, "write sum+carry"})
			}
		}
		return append(prog, MicroOp{MicroBroadcast, -1, "carry clear"})
	case isa.OpVMulVV:
		// Shift-add partial products: 4 steps per bit pair plus a final
		// pass per bit (4n^2 + 4n).
		var prog []MicroOp
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				prog = append(prog,
					MicroOp{MicroSearch, j, "partial product"},
					MicroOp{MicroUpdate, j, "accumulate"},
					MicroOp{MicroSearch, j, "carry"},
					MicroOp{MicroUpdate, j, "carry"})
			}
			prog = append(prog,
				MicroOp{MicroSearch, i, "shift"},
				MicroOp{MicroUpdate, i, "shift"},
				MicroOp{MicroSearch, i, "sign"},
				MicroOp{MicroUpdate, i, "sign"})
		}
		return prog
	case isa.OpVRedSum:
		prog := make([]MicroOp, 0, n)
		for b := 0; b < n; b++ {
			prog = append(prog, MicroOp{MicroReduce, b, "tree pass"})
		}
		return prog
	case isa.OpVRedMax, isa.OpVRedMin:
		prog := make([]MicroOp, 0, n+2)
		for b := n - 1; b >= 0; b-- {
			prog = append(prog, MicroOp{MicroSearch, b, "candidate narrowing"})
		}
		return append(prog,
			MicroOp{MicroTagMove, -1, "survivor tags"},
			MicroOp{MicroTagMove, -1, "extract value"})
	case isa.OpVAndVV, isa.OpVOrVV:
		return []MicroOp{
			{MicroSearch, -1, "operand a (bit-parallel)"},
			{MicroSearch, -1, "operand b (bit-parallel)"},
			{MicroUpdate, -1, "write result"},
		}
	case isa.OpVXorVV, isa.OpVNotV:
		return []MicroOp{
			{MicroSearch, -1, "operand a (bit-parallel)"},
			{MicroSearch, -1, "operand b (bit-parallel)"},
			{MicroSearch, -1, "difference tags"},
			{MicroUpdate, -1, "write result"},
		}
	case isa.OpVMAnd, isa.OpVMOr, isa.OpVMXor:
		return []MicroOp{{MicroUpdate, -1, "mask combine"}}
	case isa.OpVMSeqVX:
		// GP-mode search: bit-serial tag accumulation plus one deposit
		// (n+1; CAM mode collapses this to 3 — see MicroprogramCAMSearch).
		prog := make([]MicroOp, 0, n+1)
		for b := 0; b < n; b++ {
			prog = append(prog, MicroOp{MicroSearch, b, "key bit compare"})
		}
		return append(prog, MicroOp{MicroTagMove, -1, "deposit mask"})
	case isa.OpVMSeqVV:
		prog := make([]MicroOp, 0, n+4)
		prog = append(prog, MicroOp{MicroBroadcast, -1, "mismatch clear"})
		for b := 0; b < n; b++ {
			prog = append(prog, MicroOp{MicroSearch, b, "plane compare"})
		}
		return append(prog,
			MicroOp{MicroTagMove, -1, "invert"},
			MicroOp{MicroTagMove, -1, "accumulate"},
			MicroOp{MicroUpdate, -1, "deposit mask"})
	case isa.OpVMSltVV, isa.OpVMSltVX, isa.OpVMSleVX, isa.OpVMSgtVX, isa.OpVMSgeVX:
		// Magnitude scan: two searches + one update per bit, plus six
		// fixed steps (3n+6).
		prog := []MicroOp{
			{MicroBroadcast, -1, "undecided <- 1"},
			{MicroBroadcast, -1, "result <- 0"},
		}
		for b := n - 1; b >= 0; b-- {
			prog = append(prog,
				MicroOp{MicroSearch, b, "a<b at bit"},
				MicroOp{MicroSearch, b, "a>b at bit"},
				MicroOp{MicroUpdate, b, "decide"})
		}
		return append(prog,
			MicroOp{MicroUpdate, -1, "clear scratch"},
			MicroOp{MicroUpdate, -1, "clear scratch"},
			MicroOp{MicroUpdate, -1, "deposit mask"},
			MicroOp{MicroBroadcast, -1, "release"})
	case isa.OpVMvVX, isa.OpVMergeVX:
		return []MicroOp{
			{MicroSearch, -1, "select lanes"},
			{MicroUpdate, -1, "bulk write"},
		}
	case isa.OpVMFirst, isa.OpVMPopc:
		return []MicroOp{
			{MicroReduce, -1, "encoder tree"},
			{MicroTagMove, -1, "result out"},
		}
	case isa.OpVExtract:
		return []MicroOp{
			{MicroSearch, -1, "row select"},
			{MicroTagMove, -1, "bitline read"},
			{MicroTagMove, -1, "bitline read"},
			{MicroTagMove, -1, "result out"},
		}
	case isa.OpVSetVL, isa.OpVSetDL:
		return []MicroOp{{MicroControl, -1, "CSR write"}}
	case isa.OpVRelayout:
		return []MicroOp{
			{MicroSearch, -1, "echo mask to tags"},
			{MicroUpdate, -1, "deposit in new layout"},
		}
	default:
		return nil
	}
}

// MicroprogramCAMSearch is the CAM-mode search sequence (§5.2): one search
// in the contiguous value subarray, one copy to the chain register, one
// transfer into the mask subarray — 3 steps at any width.
func MicroprogramCAMSearch() []MicroOp {
	return []MicroOp{
		{MicroSearch, -1, "contiguous value compare"},
		{MicroTagMove, -1, "tags -> chain register"},
		{MicroTagMove, -1, "chain -> mask subarray"},
	}
}
