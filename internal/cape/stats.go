package cape

import (
	"fmt"
	"strings"

	"castle/internal/isa"
)

// Stats accumulates the engine's cycle and instruction accounting.
type Stats struct {
	// CSBCycles is the total cycles the compute-storage block was busy.
	CSBCycles int64
	// CSBCyclesByClass breaks CSBCycles down by Figure 7 instruction class.
	CSBCyclesByClass [isa.NumClasses]int64
	// CPCycles is control-processor occupancy (issue + scalar work).
	CPCycles int64
	// MemCycles is VMU transfer time (loads, stores, vmks key fetches).
	MemCycles int64

	// VectorInstrs counts vector instructions issued.
	VectorInstrs int64
	// ScalarInstrs counts scalar CP instructions charged.
	ScalarInstrs int64
	// InstrsByOp counts vector instructions per opcode.
	InstrsByOp map[isa.Op]int64
}

// TotalCycles returns the end-to-end cycle count under the serialized
// instruction-level model (a vector instruction commits only after the CSB
// completes it; VMU transfers do not overlap CSB compute).
func (s Stats) TotalCycles() int64 { return s.CSBCycles + s.CPCycles + s.MemCycles }

// Seconds converts TotalCycles to wall time at the given clock.
func (s Stats) Seconds(clockHz float64) float64 {
	return float64(s.TotalCycles()) / clockHz
}

// ClassShare returns each class's fraction of CSB cycles (Figure 7).
func (s Stats) ClassShare() [isa.NumClasses]float64 {
	var out [isa.NumClasses]float64
	if s.CSBCycles == 0 {
		return out
	}
	for c := range out {
		out[c] = float64(s.CSBCyclesByClass[c]) / float64(s.CSBCycles)
	}
	return out
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.CSBCycles += o.CSBCycles
	for c := range s.CSBCyclesByClass {
		s.CSBCyclesByClass[c] += o.CSBCyclesByClass[c]
	}
	s.CPCycles += o.CPCycles
	s.MemCycles += o.MemCycles
	s.VectorInstrs += o.VectorInstrs
	s.ScalarInstrs += o.ScalarInstrs
	if o.InstrsByOp != nil {
		if s.InstrsByOp == nil {
			s.InstrsByOp = make(map[isa.Op]int64)
		}
		for op, n := range o.InstrsByOp {
			s.InstrsByOp[op] += n
		}
	}
}

// String renders a human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d cycles (CSB=%d CP=%d mem=%d), %d vector / %d scalar instrs",
		s.TotalCycles(), s.CSBCycles, s.CPCycles, s.MemCycles, s.VectorInstrs, s.ScalarInstrs)
	if s.CSBCycles > 0 {
		share := s.ClassShare()
		b.WriteString("\nCSB breakdown:")
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			fmt.Fprintf(&b, " %s=%.1f%%", c, 100*share[c])
		}
	}
	return b.String()
}

// TotalCycles returns the engine's current end-to-end cycle count without
// copying the full Stats (the executors snapshot this around operator
// regions, so it must stay allocation-free).
func (e *Engine) TotalCycles() int64 { return e.st.TotalCycles() }

// Stats returns a copy of the engine's accumulated statistics.
func (e *Engine) Stats() Stats {
	out := e.st
	out.InstrsByOp = make(map[isa.Op]int64, len(e.st.InstrsByOp))
	for op, n := range e.st.InstrsByOp {
		out.InstrsByOp[op] = n
	}
	return out
}

// ResetStats clears cycle and instruction counters (register contents and
// memory-traffic counters are preserved; reset those via Mem().Reset()).
func (e *Engine) ResetStats() {
	e.st = Stats{}
}
