package cape

import (
	"fmt"

	"castle/internal/bitvec"
	"castle/internal/isa"
)

// CmpOp selects a vector-scalar comparison predicate.
type CmpOp int

// Comparison predicates.
const (
	CmpEQ CmpOp = iota
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return fmt.Sprintf("cmp(%d)", int(c))
}

// Load executes vle32.v: it streams vl 32-bit elements from main memory into
// register r through the VMU. width is the column's known operating bitwidth
// from database statistics (§5.1); pass 0 when unknown (ABA will embed a
// discovery phase in the first bit-serial instruction that touches r).
func (e *Engine) Load(r VReg, data []uint32, width int) {
	if len(data) < e.vl {
		panic(fmt.Sprintf("cape: Load of %d elements with VL %d", len(data), e.vl))
	}
	v := e.reg(r)
	v.data = append(v.data[:0], data[:e.vl]...)
	v.valid = true
	v.invalidateIndex()
	if width > 0 {
		v.width, v.known = snapWidth(width), true
	} else {
		v.width, v.known = 32, false
	}
	e.chargeCSB(isa.OpVLoad, 0)
	e.chargeMem(e.mm.StreamRead(int64(e.vl) * 4))
}

// Put places data into register r without charging a memory transfer. It
// models results produced in-situ (bulk-updated join outputs, copies between
// registers) and is also the hook tests use to set up register state.
func (e *Engine) Put(r VReg, data []uint32, width int) {
	if len(data) < e.vl {
		panic(fmt.Sprintf("cape: Put of %d elements with VL %d", len(data), e.vl))
	}
	v := e.reg(r)
	v.data = append(v.data[:0], data[:e.vl]...)
	v.valid = true
	v.invalidateIndex()
	if width > 0 {
		v.width, v.known = snapWidth(width), true
	} else {
		v.width, v.known = 32, false
	}
}

// Store executes vse32.v: it streams register r back to main memory.
func (e *Engine) Store(r VReg) []uint32 {
	v := e.validReg(r)
	out := make([]uint32, e.vl)
	copy(out, v.data[:e.vl])
	e.chargeCSB(isa.OpVStore, 0)
	e.chargeMem(e.mm.StreamWrite(int64(e.vl) * 4))
	return out
}

// Peek returns the register contents without charging anything (test and
// result-inspection hook; a real program would Store).
func (e *Engine) Peek(r VReg) []uint32 {
	v := e.validReg(r)
	out := make([]uint32, e.vl)
	copy(out, v.data[:e.vl])
	return out
}

// Broadcast executes vmv.v.x: every element of r becomes val (a single bulk
// update).
func (e *Engine) Broadcast(r VReg, val uint32) {
	v := e.reg(r)
	if cap(v.data) < e.vl {
		v.data = make([]uint32, e.vl)
	}
	v.data = v.data[:e.vl]
	for i := range v.data {
		v.data[i] = val
	}
	v.valid = true
	v.invalidateIndex()
	w := 0
	for x := val; x != 0; x >>= 1 {
		w++
	}
	if w == 0 {
		w = 1
	}
	v.width, v.known = snapWidth(w), true
	e.chargeCSB(isa.OpVMvVX, isa.BroadcastSteps)
}

// Merge executes vmerge.vxm: elements of r selected by mask become val (a
// predicated bulk update). Castle's join uses this to materialize dimension
// attributes into fact-aligned vectors.
func (e *Engine) Merge(r VReg, mask *bitvec.Vector, val uint32) {
	v := e.validReg(r)
	e.checkMask(mask)
	for i := mask.First(); i != -1 && i < e.vl; i = mask.NextAfter(i) {
		v.data[i] = val
	}
	v.known = false // width may have grown; rediscover lazily under ABA
	v.invalidateIndex()
	e.chargeCSB(isa.OpVMergeVX, isa.MergeSteps)
}

func (e *Engine) checkMask(m *bitvec.Vector) {
	if m.Len() != e.vl {
		panic(fmt.Sprintf("cape: mask length %d != VL %d", m.Len(), e.vl))
	}
}

// Search executes vmseq.vx — the associative search primitive. In GP mode
// the bitsliced layout requires bit-serial tag accumulation (n+1 cycles); in
// CAM mode the contiguous layout completes in 3 cycles (§5.2).
func (e *Engine) Search(r VReg, key uint32) *bitvec.Vector {
	v := e.validReg(r)
	var steps int64
	if e.layout == CAMMode {
		steps = isa.SearchStepsCAM
	} else {
		steps = isa.SearchSteps(e.width(v))
	}
	e.chargeCSB(isa.OpVMSeqVX, steps)
	m := bitvec.New(e.vl)
	for _, i := range v.lookup(key, e.vl) {
		m.Set(int(i))
	}
	return m
}

// Charge bills count instances of an instruction without executing it
// functionally. It is the accounting twin of the functional methods, used
// by executor fast paths that compute a whole loop's results in bulk (e.g.
// Algorithm 2's group loop over tens of thousands of groups) but must still
// bill the exact per-group instruction sequence. Searches are layout-aware;
// bit-serial costs use the given operand width (pass 32 when unknown).
func (e *Engine) Charge(op isa.Op, width int, count int64) {
	if count <= 0 {
		return
	}
	var steps int64
	if op == isa.OpVMSeqVX && e.layout == CAMMode {
		steps = isa.SearchStepsCAM
	} else {
		steps = isa.Steps(op, width)
	}
	steps = int64(float64(steps)*e.cfg.stepMultiplier() + 0.5)
	e.st.VectorInstrs += count
	e.addCP(int64(e.cfg.CPIssuePerVectorInstr) * count)
	e.addCSB(op.Class(), steps*count)
	if e.st.InstrsByOp == nil {
		e.st.InstrsByOp = make(map[isa.Op]int64)
	}
	e.st.InstrsByOp[op] += count
	e.trace(op, steps, count)
}

// RegWidth returns the effective ABA operand width of a register (32 when
// ABA is disabled), performing embedded discovery if the width is unknown.
func (e *Engine) RegWidth(r VReg) int {
	return e.width(e.validReg(r))
}

// SearchFirst executes a fused vmseq.vx + vfirst.m: it searches r for key
// and returns the index of the first matching element, or -1. Castle's
// left-deep join probes use this to test one probe key against a resident
// dimension partition without materializing the full mask.
func (e *Engine) SearchFirst(r VReg, key uint32) int {
	v := e.validReg(r)
	var steps int64
	if e.layout == CAMMode {
		steps = isa.SearchStepsCAM
	} else {
		steps = isa.SearchSteps(e.width(v))
	}
	e.chargeCSB(isa.OpVMSeqVX, steps)
	e.chargeCSB(isa.OpVMFirst, isa.MFirstSteps)
	hits := v.lookup(key, e.vl)
	if len(hits) == 0 {
		return -1
	}
	return int(hits[0])
}

// SearchBatch executes one vmseq.vx per key plus a vmor.mm per key to fold
// the matches into a single running mask — the instruction stream of
// Algorithm 1's probe loop without vmks. The returned mask is the union of
// the per-key matches.
func (e *Engine) SearchBatch(r VReg, keys []uint32) *bitvec.Vector {
	v := e.validReg(r)
	var steps int64
	if e.layout == CAMMode {
		steps = isa.SearchStepsCAM
	} else {
		steps = isa.SearchSteps(e.width(v))
	}
	out := bitvec.New(e.vl)
	for _, k := range keys {
		e.chargeCSB(isa.OpVMSeqVX, steps)
		e.chargeCSB(isa.OpVMOr, isa.MaskOpSteps)
		for _, i := range v.lookup(k, e.vl) {
			out.Set(int(i))
		}
	}
	return out
}

// MultiKeySearch executes vmks (§5.3): it fetches up to the buffer capacity
// of keys from memory, searches them back-to-back in the CSB, ORs the
// per-key tag results in-situ, and deposits one combined mask.
//
// Cost per buffer fill: M (memory request latency) + numkeys (one
// distribution+search cycle per key) + 2 (move the combined tags out). The
// memory side moves whole cachelines, so sub-cacheline buffers waste
// bandwidth. Panics if MKS is disabled (the database system must not emit
// vmks on cores without it).
func (e *Engine) MultiKeySearch(r VReg, keys []uint32) *bitvec.Vector {
	if !e.cfg.EnableMKS {
		panic("cape: vmks issued but MKS is disabled")
	}
	v := e.validReg(r)
	if e.layout != CAMMode {
		// vmks performs searches the same way as ADL's CAM mode (§6.1);
		// in GP mode each buffered key still pays the bit-serial
		// accumulation, eroding the benefit.
		return e.multiKeySearchGP(v, keys)
	}
	out := bitvec.New(e.vl)
	bufKeys := e.cfg.MKSBufferKeys()
	for off := 0; off < len(keys); off += bufKeys {
		n := len(keys) - off
		if n > bufKeys {
			n = bufKeys
		}
		// Key fetch: one request train of numkeys*4 bytes (line-rounded).
		e.chargeMem(e.mm.StreamRead(int64(n) * 4))
		e.chargeCSB(isa.OpVMKS, isa.VMKSSteps(n))
		for _, k := range keys[off : off+n] {
			for _, i := range v.lookup(k, e.vl) {
				out.Set(int(i))
			}
		}
	}
	return out
}

func (e *Engine) multiKeySearchGP(v *vreg, keys []uint32) *bitvec.Vector {
	out := bitvec.New(e.vl)
	bufKeys := e.cfg.MKSBufferKeys()
	n32 := e.width(v)
	for off := 0; off < len(keys); off += bufKeys {
		n := len(keys) - off
		if n > bufKeys {
			n = bufKeys
		}
		e.chargeMem(e.mm.StreamRead(int64(n) * 4))
		e.chargeCSB(isa.OpVMKS, int64(n)*isa.SearchSteps(n32)+2)
		for _, k := range keys[off : off+n] {
			for _, i := range v.lookup(k, e.vl) {
				out.Set(int(i))
			}
		}
	}
	return out
}

// Compare executes a vector-scalar comparison (vmseq/vmslt/vmsle/vmsgt/
// vmsge .vx) and returns the match mask. Equality uses the search cost
// model; ordering comparisons are bit-serial magnitude scans (3n+6) in
// either layout (CAM mode only accelerates equality pattern matches).
func (e *Engine) Compare(op CmpOp, r VReg, key uint32) *bitvec.Vector {
	if op == CmpEQ {
		return e.Search(r, key)
	}
	v := e.validReg(r)
	n := e.width(v)
	var iop isa.Op
	switch op {
	case CmpLT:
		iop = isa.OpVMSltVX
	case CmpLE:
		iop = isa.OpVMSleVX
	case CmpGT:
		iop = isa.OpVMSgtVX
	case CmpGE:
		iop = isa.OpVMSgeVX
	default:
		panic(fmt.Sprintf("cape: unknown comparison %v", op))
	}
	e.chargeCSB(iop, isa.IneqVXSteps(n))
	m := bitvec.New(e.vl)
	for i, x := range v.data[:e.vl] {
		var hit bool
		switch op {
		case CmpLT:
			hit = x < key
		case CmpLE:
			hit = x <= key
		case CmpGT:
			hit = x > key
		case CmpGE:
			hit = x >= key
		}
		if hit {
			m.Set(i)
		}
	}
	return m
}

// CompareVV executes vmseq.vv / vmslt.vv element-wise between two registers.
func (e *Engine) CompareVV(op CmpOp, a, b VReg) *bitvec.Vector {
	va, vb := e.validReg(a), e.validReg(b)
	n := maxInt(e.width(va), e.width(vb))
	m := bitvec.New(e.vl)
	switch op {
	case CmpEQ:
		e.chargeCSB(isa.OpVMSeqVV, isa.EqVVSteps(n))
		for i := 0; i < e.vl; i++ {
			if va.data[i] == vb.data[i] {
				m.Set(i)
			}
		}
	case CmpLT:
		e.chargeCSB(isa.OpVMSltVV, isa.IneqVVSteps(n))
		for i := 0; i < e.vl; i++ {
			if va.data[i] < vb.data[i] {
				m.Set(i)
			}
		}
	default:
		panic(fmt.Sprintf("cape: CompareVV supports == and <, got %v", op))
	}
	return m
}

func (e *Engine) requireGP(what string) {
	if e.layout != GPMode {
		panic(fmt.Sprintf("cape: %s requires GP mode (bitsliced operand locality); current layout is CAM", what))
	}
}

// AddVV executes vadd.vv: dst = a + b (bit-serial, 8n+2 cycles, GP mode
// only — CAM mode lacks operand locality for vv arithmetic, §5.2).
func (e *Engine) AddVV(dst, a, b VReg) {
	e.arithVV(isa.OpVAddVV, dst, a, b, func(x, y uint32) uint32 { return x + y })
}

// SubVV executes vsub.vv: dst = a - b.
func (e *Engine) SubVV(dst, a, b VReg) {
	e.arithVV(isa.OpVSubVV, dst, a, b, func(x, y uint32) uint32 { return x - y })
}

func (e *Engine) arithVV(op isa.Op, dst, a, b VReg, f func(x, y uint32) uint32) {
	e.requireGP(op.String())
	va, vb := e.validReg(a), e.validReg(b)
	n := maxInt(e.width(va), e.width(vb)) + 1 // one growth bit for carries
	if n > 32 {
		n = 32
	}
	e.chargeCSB(op, isa.AddSteps(n))
	e.abaExtend(n)
	vd := e.reg(dst)
	if cap(vd.data) < e.vl {
		vd.data = make([]uint32, e.vl)
	}
	vd.data = vd.data[:e.vl]
	for i := 0; i < e.vl; i++ {
		vd.data[i] = f(va.data[i], vb.data[i])
	}
	vd.valid, vd.known = true, false
	vd.invalidateIndex()
}

// MulVV executes vmul.vv: dst = a * b (bit-serial, 4n²+4n at uniform width;
// mixed ABA widths reduce the partial-product loop, §5.1).
func (e *Engine) MulVV(dst, a, b VReg) {
	e.requireGP("vmul.vv")
	va, vb := e.validReg(a), e.validReg(b)
	wa, wb := e.width(va), e.width(vb)
	e.chargeCSB(isa.OpVMulVV, isa.MulSteps(wa, wb))
	e.abaExtend(maxInt(wa, wb))
	vd := e.reg(dst)
	if cap(vd.data) < e.vl {
		vd.data = make([]uint32, e.vl)
	}
	vd.data = vd.data[:e.vl]
	for i := 0; i < e.vl; i++ {
		vd.data[i] = va.data[i] * vb.data[i]
	}
	vd.valid, vd.known = true, false
	vd.invalidateIndex()
}

// Logical vv operations (bit-parallel; available in both layouts because
// they operate plane-wise).

// AndVV executes vand.vv.
func (e *Engine) AndVV(dst, a, b VReg) {
	e.logicalVV(isa.OpVAndVV, dst, a, b, func(x, y uint32) uint32 { return x & y })
}

// OrVV executes vor.vv.
func (e *Engine) OrVV(dst, a, b VReg) {
	e.logicalVV(isa.OpVOrVV, dst, a, b, func(x, y uint32) uint32 { return x | y })
}

// XorVV executes vxor.vv.
func (e *Engine) XorVV(dst, a, b VReg) {
	e.logicalVV(isa.OpVXorVV, dst, a, b, func(x, y uint32) uint32 { return x ^ y })
}

func (e *Engine) logicalVV(op isa.Op, dst, a, b VReg, f func(x, y uint32) uint32) {
	va, vb := e.validReg(a), e.validReg(b)
	e.chargeCSB(op, isa.Steps(op, 32))
	vd := e.reg(dst)
	if cap(vd.data) < e.vl {
		vd.data = make([]uint32, e.vl)
	}
	vd.data = vd.data[:e.vl]
	for i := 0; i < e.vl; i++ {
		vd.data[i] = f(va.data[i], vb.data[i])
	}
	vd.valid, vd.known = true, false
	vd.invalidateIndex()
}

// Mask-register operations (vmand.mm / vmor.mm / vmxor.mm): single-cycle
// bit-parallel combinations of 1-bit operands.

// MaskAnd returns a AND b, charging one mask-op cycle.
func (e *Engine) MaskAnd(a, b *bitvec.Vector) *bitvec.Vector {
	e.checkMask(a)
	e.checkMask(b)
	e.chargeCSB(isa.OpVMAnd, isa.MaskOpSteps)
	return a.Clone().And(b)
}

// MaskOr returns a OR b.
func (e *Engine) MaskOr(a, b *bitvec.Vector) *bitvec.Vector {
	e.checkMask(a)
	e.checkMask(b)
	e.chargeCSB(isa.OpVMOr, isa.MaskOpSteps)
	return a.Clone().Or(b)
}

// MaskXor returns a XOR b (Algorithm 2 uses this to retire processed
// groups from the input mask).
func (e *Engine) MaskXor(a, b *bitvec.Vector) *bitvec.Vector {
	e.checkMask(a)
	e.checkMask(b)
	e.chargeCSB(isa.OpVMXor, isa.MaskOpSteps)
	return a.Clone().Xor(b)
}

// MaskNot returns the complement of a mask.
func (e *Engine) MaskNot(a *bitvec.Vector) *bitvec.Vector {
	e.checkMask(a)
	e.chargeCSB(isa.OpVMXor, isa.MaskOpSteps)
	return a.Clone().Not()
}

// MaskInit returns a mask with every lane set (set=true) or clear,
// replicated by a single bulk update (Algorithm 2's mask_init).
func (e *Engine) MaskInit(set bool) *bitvec.Vector {
	e.chargeCSB(isa.OpVMvVX, isa.BroadcastSteps)
	if set {
		return bitvec.NewSet(e.vl)
	}
	return bitvec.New(e.vl)
}

// MFirst executes vfirst.m: the index of the first set mask bit via the
// priority-encoder tree, or -1 if none.
func (e *Engine) MFirst(m *bitvec.Vector) int {
	e.checkMask(m)
	e.chargeCSB(isa.OpVMFirst, isa.MFirstSteps)
	return m.First()
}

// MPopc executes vcpop.m: the number of set mask bits.
func (e *Engine) MPopc(m *bitvec.Vector) int {
	e.checkMask(m)
	e.chargeCSB(isa.OpVMPopc, isa.PopcSteps)
	return m.Count()
}

// Extract reads a single element from a register (Algorithm 2's
// GCol[idx]).
func (e *Engine) Extract(r VReg, idx int) uint32 {
	v := e.validReg(r)
	if idx < 0 || idx >= e.vl {
		panic(fmt.Sprintf("cape: Extract index %d out of VL %d", idx, e.vl))
	}
	e.chargeCSB(isa.OpVExtract, isa.ExtractSteps)
	return v.data[idx]
}

// RedSum executes a predicated vredsum.vs: the sum of the elements of r
// selected by mask, via the hardware reduction tree (~n cycles). The result
// is widened to int64 (the reduction tree carries more than 32 bits).
// Unlike vv arithmetic, the reduction tree is dedicated logic outside the
// subarrays [15], so it operates on either data layout; this is what lets
// Castle fuse CAM-mode group discovery with per-group sums (Algorithm 2).
func (e *Engine) RedSum(r VReg, mask *bitvec.Vector) int64 {
	v := e.validReg(r)
	e.checkMask(mask)
	e.chargeCSB(isa.OpVRedSum, isa.RedSumSteps(e.width(v)))
	var sum int64
	for i := mask.First(); i != -1 && i < e.vl; i = mask.NextAfter(i) {
		sum += int64(v.data[i])
	}
	return sum
}

// RedMax executes a predicated vredmax.vs: the maximum of the elements of
// r selected by mask, via a bit-serial candidate-narrowing scan (n+2
// steps). ok is false when the mask selects nothing.
func (e *Engine) RedMax(r VReg, mask *bitvec.Vector) (uint32, bool) {
	return e.redExtreme(isa.OpVRedMax, r, mask, func(a, b uint32) bool { return a > b })
}

// RedMin executes a predicated vredmin.vs (n+2 steps).
func (e *Engine) RedMin(r VReg, mask *bitvec.Vector) (uint32, bool) {
	return e.redExtreme(isa.OpVRedMin, r, mask, func(a, b uint32) bool { return a < b })
}

func (e *Engine) redExtreme(op isa.Op, r VReg, mask *bitvec.Vector, better func(a, b uint32) bool) (uint32, bool) {
	v := e.validReg(r)
	e.checkMask(mask)
	e.chargeCSB(op, isa.RedMinMaxSteps(e.width(v)))
	var best uint32
	found := false
	for i := mask.First(); i != -1 && i < e.vl; i = mask.NextAfter(i) {
		if !found || better(v.data[i], best) {
			best = v.data[i]
			found = true
		}
	}
	return best, found
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
