package cape

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"castle/internal/isa"
)

func newTestEngine(cfg Config, vl int) *Engine {
	e := New(cfg)
	e.SetVL(vl)
	e.ResetStats()
	return e
}

func seq(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.MAXVL = 0
	if bad.Validate() == nil {
		t.Error("MAXVL=0 should be invalid")
	}
	bad = DefaultConfig()
	bad.NumVRegs = 33
	if bad.Validate() == nil {
		t.Error("NumVRegs=33 should be invalid")
	}
	bad = DefaultConfig().WithEnhancements()
	bad.MKSBufferBytes = 0
	if bad.Validate() == nil {
		t.Error("MKS with zero buffer should be invalid")
	}
}

func TestCSBCapacity(t *testing.T) {
	// §4.1: 4 MB effective capacity (32 vectors of 32,768 32-bit elements).
	if got := DefaultConfig().CSBBytes(); got != 4<<20 {
		t.Fatalf("CSBBytes = %d, want 4MB", got)
	}
}

func TestSetVLClampsToMAXVL(t *testing.T) {
	e := New(DefaultConfig())
	if got := e.SetVL(1 << 20); got != e.Config().MAXVL {
		t.Fatalf("SetVL granted %d, want MAXVL %d", got, e.Config().MAXVL)
	}
	if got := e.SetVL(100); got != 100 {
		t.Fatalf("SetVL granted %d, want 100", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 1000)
	data := seq(1000)
	e.Load(0, data, 0)
	got := e.Store(0)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], data[i])
		}
	}
	st := e.Stats()
	if st.MemCycles == 0 {
		t.Error("load+store should charge memory cycles")
	}
	if e.Mem().BytesRead() == 0 || e.Mem().BytesWritten() == 0 {
		t.Error("load+store should count memory traffic")
	}
}

func TestSearchFunctional(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 100)
	data := make([]uint32, 100)
	for i := range data {
		data[i] = uint32(i % 7)
	}
	e.Put(0, data, 0)
	m := e.Search(0, 3)
	for i := range data {
		if m.Get(i) != (data[i] == 3) {
			t.Fatalf("search mask wrong at %d", i)
		}
	}
}

func TestSearchCostGPvsCAM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	e := newTestEngine(cfg, 64)
	e.Put(0, seq(64), 0)

	e.ResetStats()
	e.Search(0, 1)
	gp := e.Stats().CSBCyclesByClass[isa.ClassSearch]
	if gp != 33 {
		t.Fatalf("GP search cost %d cycles, want 33 (32-bit configuration)", gp)
	}

	e.SetLayout(CAMMode)
	e.Put(0, seq(64), 0) // reload after layout switch
	e.ResetStats()
	e.Search(0, 1)
	cam := e.Stats().CSBCyclesByClass[isa.ClassSearch]
	if cam != 3 {
		t.Fatalf("CAM search cost %d cycles, want 3", cam)
	}
}

func TestSetLayoutNoOpWithoutADL(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64) // ADL disabled
	e.Put(0, seq(64), 0)
	e.SetLayout(CAMMode)
	if e.Layout() != GPMode {
		t.Fatal("vsetdl must decode to a no-op when ADL is unsupported (§5.2)")
	}
	// Register contents survive because no switch happened.
	if got := e.Peek(0); got[5] != 5 {
		t.Fatal("register should be intact")
	}
}

func TestLayoutSwitchInvalidatesRegisters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	e := newTestEngine(cfg, 64)
	e.Put(0, seq(64), 0)
	e.SetLayout(CAMMode)
	defer func() {
		if recover() == nil {
			t.Fatal("reading a register across a layout switch must panic (corrupted data, §5.2)")
		}
	}()
	e.Search(0, 1)
}

func TestRelayoutCarriesMask(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	e := newTestEngine(cfg, 64)
	e.Put(0, seq(64), 0)
	m := e.Search(0, 7)
	e.ResetStats()
	e.SetLayout(CAMMode)
	m2 := e.Relayout(m)
	if !m2.Get(7) || m2.Count() != 1 {
		t.Fatal("relayout must preserve mask contents")
	}
	st := e.Stats()
	// vsetdl (1) + vrelayout (2) cycles.
	if got := st.CSBCycles; got != 3 {
		t.Fatalf("setdl+relayout cost %d CSB cycles, want 3", got)
	}
}

func TestArithmeticFunctional(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 256)
	rng := rand.New(rand.NewSource(7))
	a := make([]uint32, 256)
	b := make([]uint32, 256)
	for i := range a {
		a[i] = rng.Uint32() % 10000
		b[i] = rng.Uint32() % 10000
	}
	e.Put(1, a, 0)
	e.Put(2, b, 0)
	e.AddVV(3, 1, 2)
	e.SubVV(4, 1, 2)
	e.MulVV(5, 1, 2)
	add, sub, mul := e.Peek(3), e.Peek(4), e.Peek(5)
	for i := range a {
		if add[i] != a[i]+b[i] || sub[i] != a[i]-b[i] || mul[i] != a[i]*b[i] {
			t.Fatalf("arith mismatch at %d", i)
		}
	}
}

func TestArithmeticRequiresGPMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	e := newTestEngine(cfg, 64)
	e.SetLayout(CAMMode)
	e.Put(1, seq(64), 0)
	e.Put(2, seq(64), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("vv arithmetic must panic in CAM mode")
		}
	}()
	e.AddVV(3, 1, 2)
}

func TestABAReducesMultiplyCost(t *testing.T) {
	run := func(aba bool, width int) int64 {
		cfg := DefaultConfig()
		cfg.EnableABA = aba
		e := newTestEngine(cfg, 128)
		data := make([]uint32, 128)
		for i := range data {
			data[i] = uint32(i % 10) // fits in 4 bits
		}
		e.Put(1, data, width)
		e.Put(2, data, width)
		e.ResetStats()
		e.MulVV(3, 1, 2)
		return e.Stats().CSBCycles
	}
	full := run(false, 0)
	if full != 4224 {
		t.Fatalf("32-bit multiply = %d cycles, want 4224", full)
	}
	// ABA with DB-provided width 4: multiply at 80 cycles + sign extension.
	reduced := run(true, 4)
	if reduced >= full/10 {
		t.Fatalf("ABA multiply = %d cycles, want far below %d", reduced, full)
	}
	if reduced < 80 {
		t.Fatalf("ABA multiply = %d cycles, cannot beat the 4x4 floor of 80", reduced)
	}
}

func TestABADiscoveryWhenWidthUnknown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableABA = true
	e := newTestEngine(cfg, 128)
	data := make([]uint32, 128)
	for i := range data {
		data[i] = uint32(i % 13) // needs 4 bits
	}
	e.Put(1, data, 0) // width unknown: discovery embedded in the instruction
	e.Put(2, data, 0)
	e.ResetStats()
	e.MulVV(3, 1, 2)
	c := e.Stats().CSBCycles
	if c >= 4224 {
		t.Fatalf("discovery multiply = %d cycles, should be far below 4224", c)
	}
	got := e.Peek(3)
	for i := range data {
		if got[i] != data[i]*data[i] {
			t.Fatal("ABA must not change results (exact, no precision loss)")
		}
	}
}

func TestMultiKeySearchFunctionalAndCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	cfg.EnableMKS = true
	e := newTestEngine(cfg, 1024)
	data := make([]uint32, 1024)
	for i := range data {
		data[i] = uint32(i % 300)
	}
	e.SetLayout(CAMMode)
	e.Put(0, data, 0)
	keys := []uint32{5, 17, 250}
	e.ResetStats()
	m := e.MultiKeySearch(0, keys)
	for i := range data {
		want := data[i] == 5 || data[i] == 17 || data[i] == 250
		if m.Get(i) != want {
			t.Fatalf("vmks mask wrong at %d", i)
		}
	}
	// CSB side: numkeys + 2 = 5 cycles for one buffer fill.
	if got := e.Stats().CSBCyclesByClass[isa.ClassSearch]; got != 5 {
		t.Fatalf("vmks CSB cost %d, want 5", got)
	}
	if e.Stats().MemCycles == 0 {
		t.Error("vmks must charge the key fetch")
	}
}

func TestMultiKeySearchSplitsAcrossBufferFills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	cfg.EnableMKS = true
	cfg.MKSBufferBytes = 64 // 16 keys per fill
	e := newTestEngine(cfg, 256)
	e.SetLayout(CAMMode)
	e.Put(0, seq(256), 0)
	keys := make([]uint32, 40) // 3 buffer fills: 16+16+8
	for i := range keys {
		keys[i] = uint32(i)
	}
	e.ResetStats()
	m := e.MultiKeySearch(0, keys)
	if m.Count() != 40 {
		t.Fatalf("vmks found %d matches, want 40", m.Count())
	}
	// CSB: (16+2)+(16+2)+(8+2) = 46.
	if got := e.Stats().CSBCyclesByClass[isa.ClassSearch]; got != 46 {
		t.Fatalf("vmks CSB cost %d, want 46", got)
	}
	if got := e.Stats().InstrsByOp[isa.OpVMKS]; got != 3 {
		t.Fatalf("vmks issued %d times, want 3", got)
	}
}

func TestMKSDisabledPanics(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	e.Put(0, seq(64), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("vmks on a core without MKS must panic")
		}
	}()
	e.MultiKeySearch(0, []uint32{1})
}

func TestCompareOps(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 100)
	e.Put(0, seq(100), 0)
	cases := []struct {
		op   CmpOp
		key  uint32
		want func(x uint32) bool
	}{
		{CmpLT, 50, func(x uint32) bool { return x < 50 }},
		{CmpLE, 50, func(x uint32) bool { return x <= 50 }},
		{CmpGT, 50, func(x uint32) bool { return x > 50 }},
		{CmpGE, 50, func(x uint32) bool { return x >= 50 }},
		{CmpEQ, 50, func(x uint32) bool { return x == 50 }},
	}
	for _, c := range cases {
		m := e.Compare(c.op, 0, c.key)
		for i := 0; i < 100; i++ {
			if m.Get(i) != c.want(uint32(i)) {
				t.Fatalf("%v %d: wrong at %d", c.op, c.key, i)
			}
		}
	}
}

func TestCompareVV(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	a, b := seq(64), make([]uint32, 64)
	for i := range b {
		b[i] = 32
	}
	e.Put(0, a, 0)
	e.Put(1, b, 0)
	eq := e.CompareVV(CmpEQ, 0, 1)
	lt := e.CompareVV(CmpLT, 0, 1)
	for i := 0; i < 64; i++ {
		if eq.Get(i) != (uint32(i) == 32) || lt.Get(i) != (uint32(i) < 32) {
			t.Fatalf("CompareVV wrong at %d", i)
		}
	}
}

func TestMaskOpsAndAggregationPrimitives(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	gcol := make([]uint32, 64)
	scol := make([]uint32, 64)
	for i := range gcol {
		gcol[i] = uint32(i % 4)
		scol[i] = uint32(i)
	}
	e.Put(0, gcol, 0)
	e.Put(1, scol, 0)

	// Algorithm 2's inner loop for one group.
	input := e.MaskInit(true)
	idx := e.MFirst(input)
	if idx != 0 {
		t.Fatalf("MFirst = %d, want 0", idx)
	}
	key := e.Extract(0, idx)
	groupMask := e.Search(0, key)
	sum := e.RedSum(1, groupMask)
	want := int64(0)
	for i := range gcol {
		if gcol[i] == key {
			want += int64(scol[i])
		}
	}
	if sum != want {
		t.Fatalf("RedSum = %d, want %d", sum, want)
	}
	input = e.MaskXor(input, groupMask)
	if input.Count() != 48 {
		t.Fatalf("after retiring group 0, %d rows remain, want 48", input.Count())
	}
	if got := e.MPopc(groupMask); got != 16 {
		t.Fatalf("MPopc = %d, want 16", got)
	}
}

func TestMergeMaterializesAttribute(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	fk := make([]uint32, 64)
	for i := range fk {
		fk[i] = uint32(i % 8)
	}
	e.Put(0, fk, 0)
	e.Broadcast(1, 0)
	// Map dimension key 3 -> attribute 1995.
	m := e.Search(0, 3)
	e.Merge(1, m, 1995)
	got := e.Peek(1)
	for i := range fk {
		want := uint32(0)
		if fk[i] == 3 {
			want = 1995
		}
		if got[i] != want {
			t.Fatalf("merge wrong at %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestStatsBreakdownAndString(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	e.Put(0, seq(64), 0)
	e.Put(1, seq(64), 0)
	e.Search(0, 1)
	e.AddVV(2, 0, 1)
	st := e.Stats()
	if st.CSBCyclesByClass[isa.ClassSearch] == 0 {
		t.Error("search class cycles missing")
	}
	if st.CSBCyclesByClass[isa.ClassArithmetic] == 0 {
		t.Error("arithmetic class cycles missing")
	}
	share := st.ClassShare()
	var total float64
	for _, s := range share {
		total += s
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("class shares sum to %.3f, want 1.0", total)
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
	var agg Stats
	agg.Add(st)
	agg.Add(st)
	if agg.CSBCycles != 2*st.CSBCycles || agg.VectorInstrs != 2*st.VectorInstrs {
		t.Error("Stats.Add broken")
	}
}

func TestScalarCharging(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	e.Scalar(100)
	st := e.Stats()
	if st.ScalarInstrs != 100 {
		t.Fatalf("ScalarInstrs = %d, want 100", st.ScalarInstrs)
	}
	if st.CPCycles != 75 { // 100 * 0.75 CPI
		t.Fatalf("CPCycles = %d, want 75", st.CPCycles)
	}
}

// Property: search mask matches a straightforward scan for arbitrary data.
func TestQuickSearchMatchesScan(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64, keyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vl := rng.Intn(500) + 1
		e := newTestEngine(cfg, vl)
		data := make([]uint32, vl)
		for i := range data {
			data[i] = uint32(rng.Intn(32))
		}
		key := uint32(keyRaw % 32)
		e.Put(0, data, 0)
		m := e.Search(0, key)
		for i := range data {
			if m.Get(i) != (data[i] == key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ABA never changes arithmetic results (exactness, §5.1).
func TestQuickABAExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vl := rng.Intn(300) + 1
		a := make([]uint32, vl)
		b := make([]uint32, vl)
		for i := range a {
			a[i] = uint32(rng.Intn(1 << 12))
			b[i] = uint32(rng.Intn(1 << 12))
		}
		run := func(aba bool) []uint32 {
			cfg := DefaultConfig()
			cfg.EnableABA = aba
			e := newTestEngine(cfg, vl)
			e.Put(0, a, 0)
			e.Put(1, b, 0)
			e.MulVV(2, 0, 1)
			return e.Peek(2)
		}
		x, y := run(false), run(true)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: vmks result equals the OR of individual searches.
func TestQuickVMKSEqualsSearchOr(t *testing.T) {
	cfg := DefaultConfig().WithEnhancements()
	f := func(seed int64, nKeysRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vl := rng.Intn(400) + 1
		nKeys := int(nKeysRaw%20) + 1
		data := make([]uint32, vl)
		for i := range data {
			data[i] = uint32(rng.Intn(64))
		}
		keys := make([]uint32, nKeys)
		for i := range keys {
			keys[i] = uint32(rng.Intn(64))
		}
		e := newTestEngine(cfg, vl)
		e.SetLayout(CAMMode)
		e.Put(0, data, 0)
		got := e.MultiKeySearch(0, keys)
		want := e.MaskInit(false)
		for _, k := range keys {
			want.Or(e.Search(0, k))
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchGPMode(b *testing.B) {
	e := newTestEngine(DefaultConfig(), 32768)
	e.Put(0, seq(32768), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(0, uint32(i%32768))
	}
}

func BenchmarkMultiKeySearchCAM(b *testing.B) {
	cfg := DefaultConfig().WithEnhancements()
	e := newTestEngine(cfg, 32768)
	e.SetLayout(CAMMode)
	e.Put(0, seq(32768), 0)
	keys := seq(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MultiKeySearch(0, keys)
	}
}

func TestTracerCapturesInstructionStream(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	tr := NewTracer(100)
	e.AttachTracer(tr)
	e.Put(0, seq(64), 0)
	e.Search(0, 1)
	e.Search(0, 2)
	e.Search(0, 3)
	e.MaskInit(true)
	if got := tr.Instructions(); got != 4 {
		t.Fatalf("traced %d instructions, want 4", got)
	}
	// Three identical searches coalesce into one entry.
	entries := tr.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (coalesced searches + broadcast): %v", len(entries), entries)
	}
	if entries[0].Count != 3 || entries[0].Op.String() != "vmseq.vx" {
		t.Fatalf("first entry: %+v", entries[0])
	}
	var buf strings.Builder
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "vmseq.vx") {
		t.Fatal("dump missing mnemonic")
	}
	tr.Reset()
	if tr.Instructions() != 0 || len(tr.Entries()) != 0 {
		t.Fatal("Reset should clear the trace")
	}
}

func TestTracerDropsWhenFull(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 16)
	tr := NewTracer(2)
	e.AttachTracer(tr)
	e.Put(0, seq(16), 0)
	e.Search(0, 1)   // entry 1
	e.MaskInit(true) // entry 2
	e.MPopc(e.MaskInit(false))
	if tr.Dropped() == 0 {
		t.Fatal("expected dropped instructions")
	}
	var buf strings.Builder
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "dropped") {
		t.Fatal("dump should report drops")
	}
}

func TestChargeBulkTracesAndBills(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 64)
	tr := NewTracer(10)
	e.AttachTracer(tr)
	e.Charge(isa.OpVMFirst, 32, 5)
	st := e.Stats()
	if st.InstrsByOp[isa.OpVMFirst] != 5 {
		t.Fatalf("bulk charge billed %d instrs", st.InstrsByOp[isa.OpVMFirst])
	}
	if st.CSBCycles != 5*isa.MFirstSteps {
		t.Fatalf("bulk charge billed %d cycles", st.CSBCycles)
	}
	if tr.Instructions() != 5 {
		t.Fatalf("trace recorded %d", tr.Instructions())
	}
	// Zero and negative counts are no-ops.
	e.Charge(isa.OpVMFirst, 32, 0)
	e.Charge(isa.OpVMFirst, 32, -3)
	if e.Stats().InstrsByOp[isa.OpVMFirst] != 5 {
		t.Fatal("zero/negative counts must not bill")
	}
}

func TestSearchFirstAndSearchBatch(t *testing.T) {
	e := newTestEngine(DefaultConfig(), 100)
	data := make([]uint32, 100)
	for i := range data {
		data[i] = uint32(i % 10)
	}
	e.Put(0, data, 0)
	if idx := e.SearchFirst(0, 7); idx != 7 {
		t.Fatalf("SearchFirst = %d, want 7", idx)
	}
	if idx := e.SearchFirst(0, 99); idx != -1 {
		t.Fatalf("SearchFirst(miss) = %d, want -1", idx)
	}
	m := e.SearchBatch(0, []uint32{1, 3})
	for i := range data {
		want := data[i] == 1 || data[i] == 3
		if m.Get(i) != want {
			t.Fatalf("SearchBatch wrong at %d", i)
		}
	}
	// Cost: 2 searches + 2 mask ORs.
	e.ResetStats()
	e.SearchBatch(0, []uint32{1, 3})
	st := e.Stats()
	if st.InstrsByOp[isa.OpVMSeqVX] != 2 || st.InstrsByOp[isa.OpVMOr] != 2 {
		t.Fatalf("SearchBatch instruction mix wrong: %v", st.InstrsByOp)
	}
}

func TestRegWidthAndCPAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableABA = true
	e := newTestEngine(cfg, 64)
	e.Put(0, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0)
	if w := e.RegWidth(0); w != 4 {
		t.Fatalf("RegWidth = %d, want 4 (max value 15)", w)
	}
	before := e.Stats().CPCycles
	e.CPAccess(100, 16<<10) // L1-resident: ~1 cycle each
	after := e.Stats().CPCycles
	if d := after - before; d < 90 || d > 110 {
		t.Fatalf("CPAccess charged %d cycles, want ~100", d)
	}
	e.CPAccess(0, 1000) // no-op
}

func TestStoreAndRelayoutCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableADL = true
	e := newTestEngine(cfg, 128)
	e.Put(0, seq(128), 0)
	out := e.Store(0)
	if out[100] != 100 {
		t.Fatal("Store contents wrong")
	}
	if e.Mem().BytesWritten() == 0 {
		t.Fatal("Store must write memory")
	}
}

func TestPIMConfigStepMultiplier(t *testing.T) {
	pim := PIMConfig()
	if pim.CSBStepMultiplier != 3 {
		t.Fatalf("PIM step multiplier = %f", pim.CSBStepMultiplier)
	}
	if pim.Mem.BandwidthBytesPerSec <= DefaultConfig().Mem.BandwidthBytesPerSec*7 {
		t.Fatal("PIM internal bandwidth should be much higher")
	}
	// A CAM search costs 3x more CSB cycles under PIM.
	pim.MAXVL = 1024
	e := New(pim)
	e.SetVL(64)
	e.SetLayout(CAMMode)
	e.Put(0, seq(64), 0)
	e.ResetStats()
	e.Search(0, 1)
	if got := e.Stats().CSBCyclesByClass[isa.ClassSearch]; got != 9 {
		t.Fatalf("PIM CAM search = %d cycles, want 9 (3 steps x 3)", got)
	}
	// Loads are ~8x cheaper.
	sram := DefaultConfig()
	sram.MAXVL = 1024
	es := New(sram)
	es.SetVL(1024)
	es.Put(1, seq(1024), 0)
	es.ResetStats()
	es.Load(2, seq(1024), 0)
	sramMem := es.Stats().MemCycles
	e.SetVL(1024)
	e.ResetStats()
	e.Load(2, seq(1024), 0)
	pimMem := e.Stats().MemCycles
	if pimMem >= sramMem {
		t.Fatalf("PIM load (%d cycles) should be cheaper than SRAM load (%d)", pimMem, sramMem)
	}
}
