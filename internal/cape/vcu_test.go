package cape

import (
	"testing"

	"castle/internal/isa"
)

// TestMicroprogramLengthsMatchCostModel is the sequencer's contract: the
// expanded microop sequence of every opcode has exactly the Table 1 step
// count at every ABA width.
func TestMicroprogramLengthsMatchCostModel(t *testing.T) {
	ops := []isa.Op{
		isa.OpVAddVV, isa.OpVSubVV, isa.OpVMulVV, isa.OpVRedSum,
		isa.OpVRedMax, isa.OpVRedMin,
		isa.OpVAndVV, isa.OpVOrVV, isa.OpVXorVV, isa.OpVNotV,
		isa.OpVMAnd, isa.OpVMOr, isa.OpVMXor,
		isa.OpVMSeqVX, isa.OpVMSeqVV, isa.OpVMSltVV,
		isa.OpVMSltVX, isa.OpVMSleVX, isa.OpVMSgtVX, isa.OpVMSgeVX,
		isa.OpVMvVX, isa.OpVMergeVX, isa.OpVExtract,
		isa.OpVMFirst, isa.OpVMPopc,
		isa.OpVSetVL, isa.OpVSetDL, isa.OpVRelayout,
	}
	for _, op := range ops {
		for _, w := range []int{4, 8, 16, 32} {
			prog := Microprogram(op, w)
			if got, want := int64(len(prog)), isa.Steps(op, w); got != want {
				t.Errorf("%v at width %d: microprogram has %d steps, cost model says %d",
					op, w, got, want)
			}
		}
	}
}

func TestMicroprogramCAMSearch(t *testing.T) {
	prog := MicroprogramCAMSearch()
	if int64(len(prog)) != isa.SearchStepsCAM {
		t.Fatalf("CAM search microprogram has %d steps, want %d", len(prog), isa.SearchStepsCAM)
	}
	if prog[0].Kind != MicroSearch {
		t.Fatal("CAM search must begin with a search step")
	}
}

func TestMicroprogramLoadsHandledByVMU(t *testing.T) {
	if Microprogram(isa.OpVLoad, 32) != nil || Microprogram(isa.OpVStore, 32) != nil {
		t.Fatal("memory instructions have no sequencer microcode (VMU path)")
	}
	if Microprogram(isa.OpVMKS, 32) != nil {
		t.Fatal("vmks is sequenced by the VMU key buffer, not the VCU table")
	}
}

func TestMicroprogramStructure(t *testing.T) {
	// The add microprogram alternates search/update inside each bit.
	prog := Microprogram(isa.OpVAddVV, 4)
	if prog[0].Kind != MicroBroadcast || prog[len(prog)-1].Kind != MicroBroadcast {
		t.Fatal("add must be bracketed by carry broadcasts")
	}
	searches, updates := 0, 0
	for _, m := range prog[1 : len(prog)-1] {
		switch m.Kind {
		case MicroSearch:
			searches++
		case MicroUpdate:
			updates++
		default:
			t.Fatalf("unexpected %v inside add body", m.Kind)
		}
	}
	if searches != updates || searches != 4*4 {
		t.Fatalf("add body: %d searches / %d updates, want 16/16", searches, updates)
	}
	// GP search: n key-bit compares then one deposit.
	sp := Microprogram(isa.OpVMSeqVX, 32)
	if sp[len(sp)-1].Kind != MicroTagMove {
		t.Fatal("search must end with a tag deposit")
	}
}

func TestMicroOpKindStrings(t *testing.T) {
	for k := MicroSearch; k <= MicroControl; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if MicroOpKind(99).String() == "" {
		t.Error("out-of-range kind should render")
	}
}

func TestGeometry(t *testing.T) {
	g := GeometryFor(DefaultConfig())
	// MAXVL 32768 at 32 elements per chain = 1024 chains of 32 subarrays.
	if g.Chains != 1024 {
		t.Fatalf("chains = %d, want 1024", g.Chains)
	}
	if g.Subarrays() != 32768 {
		t.Fatalf("subarrays = %d, want 32768 ('tens of thousands', §2.2)", g.Subarrays())
	}
	// Geometry capacity equals the configured CSB capacity (4 MB).
	if g.CapacityBytes() != DefaultConfig().CSBBytes() {
		t.Fatalf("geometry capacity %d != config capacity %d",
			g.CapacityBytes(), DefaultConfig().CSBBytes())
	}
	if g.CAMValueSubarrays() != 31 {
		t.Fatalf("CAM value subarrays = %d, want 31 (one reserved for masks)", g.CAMValueSubarrays())
	}
	if g.CAMValuesPerChain() != 31*32 {
		t.Fatalf("CAM values per chain = %d", g.CAMValuesPerChain())
	}
	if g.RenameCAMBytes() != 64 {
		t.Fatalf("rename CAM = %d bytes, paper says 64", g.RenameCAMBytes())
	}
	if g.String() == "" {
		t.Fatal("empty geometry string")
	}
}

func TestGeometryScalesWithMAXVL(t *testing.T) {
	small := DefaultConfig()
	small.MAXVL = 4096
	g := GeometryFor(small)
	if g.Chains != 128 {
		t.Fatalf("chains = %d, want 128", g.Chains)
	}
}
