// Package cape simulates the Content-Addressable Processing Engine: a
// general-purpose associative-processor core programmed through RISC-V-style
// vector instructions (Caminal et al., HPCA 2021), extended with the three
// database-aware microarchitectural enhancements of the ISCA 2022 paper:
// adaptive bitwidth arithmetic (ABA, §5.1), adaptive data layout (ADL, §5.2)
// and multi-key search (MKS, §5.3).
//
// The simulator is functional plus cycle-cost: every instruction computes
// its real result on Go slices while charging the cycle cost the paper's
// instruction-level model assigns to it (Table 1 for CSB steps, a DDR4
// bandwidth model for VMU transfers, and a small in-order control-processor
// overhead per instruction). Cycle totals are broken down by instruction
// class to regenerate Figure 7.
package cape

import (
	"fmt"

	"castle/internal/cache"
	"castle/internal/mem"
)

// Layout identifies the CSB data layout (§5.2).
type Layout int

// Data layouts.
const (
	// GPMode bitslices vector elements across subarrays: operand locality
	// for bit-serial arithmetic, but searches cost n+1 cycles.
	GPMode Layout = iota
	// CAMMode stores each value contiguously in one subarray: searches
	// complete in 3 cycles, but bit-serial vv arithmetic is unavailable
	// until switching back.
	CAMMode
)

func (l Layout) String() string {
	if l == GPMode {
		return "GP"
	}
	return "CAM"
}

// Config describes a CAPE core.
type Config struct {
	// MAXVL is the maximum vector length in 32-bit elements (the CSB's
	// data-parallelism degree). The paper evaluates 32,768.
	MAXVL int
	// NumVRegs is the number of architectural vector registers.
	NumVRegs int
	// ClockHz is the core clock.
	ClockHz float64
	// Mem configures the DDR4 system behind the VMU.
	Mem mem.Config
	// CPIssuePerVectorInstr is the control-processor pipeline occupancy
	// charged per vector instruction (fetch/decode/issue on the dual-issue
	// in-order CP).
	CPIssuePerVectorInstr float64
	// ScalarCPI is the average cycles per scalar CP instruction.
	ScalarCPI float64
	// CPHierarchy models the control processor's caches (Table 2: 32 KB
	// L1, 1 MB L2, no L3). Data-dependent CP accesses — e.g. merging
	// Algorithm 2's per-partition group results — pay the expected access
	// cost over their working set. The in-order MinorCPU overlaps little,
	// so the effective MLP is low.
	CPHierarchy cache.Hierarchy

	// EnableADL turns on the adaptive data layout (vsetdl/vrelayout).
	// When off, vsetdl decodes to a no-op and CAPE stays in GP mode (§5.2).
	EnableADL bool
	// EnableMKS turns on the multi-key search instruction (vmks).
	EnableMKS bool
	// MKSBufferBytes is the VMU key-buffer capacity (64, 512 or 2048 in
	// the paper's sweep; 512 matches the cacheline and is the default).
	MKSBufferBytes int
	// EnableABA turns on adaptive bitwidth arithmetic.
	EnableABA bool

	// CSBStepMultiplier scales every CSB step's latency relative to the
	// 2.7 GHz core clock. The SRAM design point is 1; the PIM exploration
	// (§8 leaves processing-in-memory flavors to future work) uses a
	// slower in-DRAM array in exchange for internal bandwidth. Zero means 1.
	CSBStepMultiplier float64
}

// DefaultConfig returns the paper's CAPE design point (§4.1, Table 2) with
// all microarchitectural enhancements disabled (the "unmodified CAPE" of
// Section 4). Enable ADL/MKS/ABA individually or via WithEnhancements.
func DefaultConfig() Config {
	return Config{
		MAXVL:                 32768,
		NumVRegs:              32,
		ClockHz:               2.7e9,
		Mem:                   mem.DDR4(),
		CPIssuePerVectorInstr: 2,
		ScalarCPI:             0.75, // dual-issue in-order, imperfect pairing
		CPHierarchy: cache.Hierarchy{
			Levels: []cache.Level{
				{Name: "L1", CapacityBytes: 32 << 10, LatencyCycles: 1},
				{Name: "L2", CapacityBytes: 1 << 20, LatencyCycles: 12},
			},
			DRAMLatencyCycles: 180,
			MLP:               2,
			LineBytes:         64,
		},
		MKSBufferBytes: 512,
	}
}

// WithEnhancements returns the configuration with all three database-aware
// microarchitectural enhancements enabled (the Section 6 design point).
func (c Config) WithEnhancements() Config {
	c.EnableADL = true
	c.EnableMKS = true
	c.EnableABA = true
	return c
}

// PIMConfig returns a processing-in-memory design point for the future-work
// exploration the paper's §8 sketches: the CSB is built in DRAM-adjacent
// arrays instead of SRAM, so each associative step is ~3x slower, but the
// VMU streams resident columns over internal bank bandwidth (~8x the DDR4
// channel peak). Everything else matches the enhanced SRAM design point.
func PIMConfig() Config {
	cfg := DefaultConfig().WithEnhancements()
	cfg.CSBStepMultiplier = 3
	cfg.Mem.BandwidthBytesPerSec *= 8
	return cfg
}

// stepMultiplier returns the effective CSB step scaling.
func (c Config) stepMultiplier() float64 {
	if c.CSBStepMultiplier <= 0 {
		return 1
	}
	return c.CSBStepMultiplier
}

// MKSBufferKeys returns the number of 32-bit keys the VMU buffer holds.
func (c Config) MKSBufferKeys() int { return c.MKSBufferBytes / 4 }

// CSBBytes returns the effective CSB capacity: NumVRegs vectors of MAXVL
// 32-bit elements (4 MB at the default design point).
func (c Config) CSBBytes() int { return c.NumVRegs * c.MAXVL * 4 }

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.MAXVL <= 0 {
		return fmt.Errorf("cape: MAXVL must be positive, got %d", c.MAXVL)
	}
	if c.NumVRegs <= 0 || c.NumVRegs > 32 {
		return fmt.Errorf("cape: NumVRegs must be in (0,32], got %d", c.NumVRegs)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("cape: ClockHz must be positive")
	}
	if c.EnableMKS && c.MKSBufferBytes < 4 {
		return fmt.Errorf("cape: MKS enabled with buffer of %d bytes", c.MKSBufferBytes)
	}
	return nil
}

// String summarises the design point.
func (c Config) String() string {
	return fmt.Sprintf("CAPE MAXVL=%d (%d vregs, %.0f MB CSB) @%.1fGHz ADL=%v MKS=%v(%dB) ABA=%v",
		c.MAXVL, c.NumVRegs, float64(c.CSBBytes())/(1<<20), c.ClockHz/1e9,
		c.EnableADL, c.EnableMKS, c.MKSBufferBytes, c.EnableABA)
}
