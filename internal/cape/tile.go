package cape

import (
	"fmt"

	"castle/internal/mem"
)

// ForkScalarsPerTile is the control-processor cost, in scalar instructions,
// of dispatching one tile at fork time: broadcasting the morsel descriptor
// (base/limit/layout) and the register-file configuration to the tile's CP.
const ForkScalarsPerTile = 32

// TileGroup is a set of engines forked from one parent for a morsel-parallel
// fact sweep (§7.2 places CAPE tiles "alongside other cores"; the server
// already schedules N tiles — the group is how one query occupies K of them).
//
// Cycle semantics follow the two views the paper needs:
//
//   - Simulated elapsed time: the tiles run concurrently, so the sweep takes
//     max(tile cycles). Merge folds exactly the critical tile's Stats into
//     the parent, making parent TotalCycles = prep + max(tiles) + merge.
//   - Work (energy, §6.3 byte accounting): every cycle and byte on every
//     tile counts. WorkStats sums over tiles, and Merge absorbs *all* tiles'
//     memory traffic into the parent so BytesMoved stays a work metric.
//
// Tiles carry independent Stats and no CycleHook or Tracer; callers that
// want telemetry attach a hook per tile (hooks then observe work cycles,
// not elapsed).
type TileGroup struct {
	parent *Engine
	tiles  []*Engine
	merged bool
}

// Fork clones the engine into k tile engines that share its configuration
// (including ADL/ABA enablement) and current data layout, each with a fresh
// register file, Stats, and memory-traffic accounting. The parent is charged
// ForkScalarsPerTile scalar instructions per tile for morsel dispatch.
//
// Fork does not copy register contents: a tile begins a morsel by loading
// its own partitions, exactly as the serial loop reloads per partition.
func (e *Engine) Fork(k int) *TileGroup {
	if k < 1 {
		panic(fmt.Sprintf("cape: Fork(%d): need at least one tile", k))
	}
	tiles := make([]*Engine, k)
	for i := range tiles {
		tiles[i] = &Engine{
			cfg:    e.cfg,
			mm:     mem.NewSystem(e.cfg.Mem),
			vl:     e.cfg.MAXVL,
			layout: e.layout,
			regs:   make([]vreg, e.cfg.NumVRegs),
		}
	}
	e.Scalar(ForkScalarsPerTile * int64(k))
	return &TileGroup{parent: e, tiles: tiles}
}

// Tiles returns the tile engines in fixed tile order.
func (g *TileGroup) Tiles() []*Engine { return g.tiles }

// Tile returns tile i.
func (g *TileGroup) Tile(i int) *Engine { return g.tiles[i] }

// Len returns the number of tiles.
func (g *TileGroup) Len() int { return len(g.tiles) }

// TileCycles returns each tile's accumulated cycles, in tile order.
func (g *TileGroup) TileCycles() []int64 {
	out := make([]int64, len(g.tiles))
	for i, t := range g.tiles {
		out[i] = t.TotalCycles()
	}
	return out
}

// CriticalTile returns the index of the slowest tile — the one whose cycles
// bound the sweep's simulated elapsed time. Ties resolve to the lowest index
// so the merge is deterministic.
func (g *TileGroup) CriticalTile() int {
	crit, max := 0, int64(-1)
	for i, t := range g.tiles {
		if c := t.TotalCycles(); c > max {
			crit, max = i, c
		}
	}
	return crit
}

// WorkStats sums Stats over every tile: the energy/byte-accounting view in
// which all tile cycles count regardless of overlap.
func (g *TileGroup) WorkStats() Stats {
	var sum Stats
	for _, t := range g.tiles {
		sum.Add(t.st)
	}
	return sum
}

// WorkCycles returns the summed cycles across tiles.
func (g *TileGroup) WorkCycles() int64 {
	var sum int64
	for _, t := range g.tiles {
		sum += t.TotalCycles()
	}
	return sum
}

// Merge folds the group back into the parent and returns the per-tile cycle
// vector. The parent absorbs the critical tile's Stats — so its TotalCycles
// advances by max(tile cycles), the elapsed-time view — and every tile's
// memory traffic, the work view. The absorption deliberately bypasses the
// parent's CycleHook: hooks attached to the tiles already streamed those
// charges as they happened, and elapsed absorption must not double-count
// them.
//
// Merge is idempotent-hostile by design: calling it twice panics, because a
// second absorption would corrupt the elapsed model.
func (g *TileGroup) Merge() []int64 {
	if g.merged {
		panic("cape: TileGroup.Merge called twice")
	}
	g.merged = true
	cycles := g.TileCycles()
	g.parent.st.Add(g.tiles[g.CriticalTile()].st)
	for _, t := range g.tiles {
		g.parent.mm.Absorb(t.mm)
	}
	return cycles
}
