// Package micro implements genuine bit-serial associative algorithms as
// sequences of search/update microoperations over bit-sliced storage, the
// computational model of an associative processor (§2.1, Figure 2).
//
// A vector register is stored as bit planes: plane i holds bit i of every
// element. A search microop compares, element-parallel, a per-plane pattern
// against selected planes (all other planes are masked out, the "X" entries
// of Figure 2) and produces tag bits. An update microop writes constant bits
// into selected planes of the tagged elements in bulk.
//
// The package exists to validate the CAPE cost model: the algorithms here
// perform exactly the search/update sequences the paper's VCU microcode
// sequencer would generate, so their counted microop totals can be checked
// against Table 1 (vv add = 8n+2 steps, vs equality = n+1, ...) while their
// functional results are checked against ordinary Go arithmetic.
package micro

import (
	"fmt"

	"castle/internal/bitvec"
)

// Array is a bit-sliced vector register: Width bit planes of VL elements.
type Array struct {
	vl     int
	width  int
	planes []*bitvec.Vector
}

// NewArray allocates a zeroed bit-sliced array of vl elements of the given
// bit width (1..32).
func NewArray(vl, width int) *Array {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("micro: width %d out of range [1,32]", width))
	}
	if vl < 0 {
		panic("micro: negative vector length")
	}
	a := &Array{vl: vl, width: width, planes: make([]*bitvec.Vector, width)}
	for i := range a.planes {
		a.planes[i] = bitvec.New(vl)
	}
	return a
}

// Load fills the array from a word slice (len must equal VL). Values are
// truncated to the array width.
func (a *Array) Load(words []uint32) {
	if len(words) != a.vl {
		panic(fmt.Sprintf("micro: Load length %d != VL %d", len(words), a.vl))
	}
	for i := range a.planes {
		a.planes[i].ClearAll()
	}
	for e, w := range words {
		for b := 0; b < a.width; b++ {
			if w&(1<<uint(b)) != 0 {
				a.planes[b].Set(e)
			}
		}
	}
}

// Words reads the array back as a word slice (elements zero-extended).
func (a *Array) Words() []uint32 {
	out := make([]uint32, a.vl)
	for b := 0; b < a.width; b++ {
		p := a.planes[b]
		for i := p.First(); i != -1; i = p.NextAfter(i) {
			out[i] |= 1 << uint(b)
		}
	}
	return out
}

// VL returns the number of elements.
func (a *Array) VL() int { return a.vl }

// Width returns the bit width.
func (a *Array) Width() int { return a.width }

// Plane returns bit plane b (for use as a search/update operand).
func (a *Array) Plane(b int) *bitvec.Vector {
	if b < 0 || b >= a.width {
		panic(fmt.Sprintf("micro: plane %d out of range [0,%d)", b, a.width))
	}
	return a.planes[b]
}

// Stats counts executed microoperations. In the AP model each search and
// each update is one CSB step, so Searches+Updates+Broadcasts is directly
// comparable with Table 1 step counts.
type Stats struct {
	Searches   int64
	Updates    int64
	Broadcasts int64 // bulk updates unconditioned on tags (e.g. carry init)
}

// Steps returns the total number of CSB steps executed.
func (s Stats) Steps() int64 { return s.Searches + s.Updates + s.Broadcasts }

// Engine executes search/update microoperations and counts them.
type Engine struct {
	vl    int
	stats Stats
}

// NewEngine returns an Engine for vectors of length vl.
func NewEngine(vl int) *Engine { return &Engine{vl: vl} }

// Stats returns the microop counters.
func (e *Engine) Stats() Stats { return s(e) }

func s(e *Engine) Stats { return e.stats }

// ResetStats clears the microop counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Cond is one plane/value term of a search pattern. Planes not mentioned in
// a search are don't-care ("X" in Figure 2).
type Cond struct {
	Plane *bitvec.Vector
	Want  bool
}

// Search performs one element-parallel search microoperation: it returns tag
// bits set for every element whose mentioned planes all match the pattern.
func (e *Engine) Search(conds ...Cond) *bitvec.Vector {
	e.stats.Searches++
	tags := bitvec.NewSet(e.vl)
	for _, c := range conds {
		if c.Want {
			tags.And(c.Plane)
		} else {
			tags.AndNot(c.Plane)
		}
	}
	return tags
}

// Assign is one plane/value term of an update.
type Assign struct {
	Plane *bitvec.Vector
	Value bool
}

// Update performs one bulk-update microoperation: for every tagged element,
// the mentioned planes are set to the given constant values.
func (e *Engine) Update(tags *bitvec.Vector, assigns ...Assign) {
	e.stats.Updates++
	for _, a := range assigns {
		if a.Value {
			a.Plane.Or(tags)
		} else {
			a.Plane.AndNot(tags)
		}
	}
}

// Broadcast performs an unconditioned bulk update (all elements).
func (e *Engine) Broadcast(assigns ...Assign) {
	e.stats.Broadcasts++
	all := bitvec.NewSet(e.vl)
	for _, a := range assigns {
		if a.Value {
			a.Plane.Or(all)
		} else {
			a.Plane.AndNot(all)
		}
	}
}

func (e *Engine) checkVL(a *Array) {
	if a.vl != e.vl {
		panic(fmt.Sprintf("micro: array VL %d != engine VL %d", a.vl, e.vl))
	}
}

// Increment adds 1 to every element of a, exactly as in Figure 2: the carry
// column is initialised to 1 with a single broadcast, then for each bit
// position two search/update pairs apply the half-adder truth table (the two
// rows whose outputs differ from their inputs); iteration stops early once
// no carries remain. A final broadcast clears the scratch carry column.
func (e *Engine) Increment(a *Array) {
	e.checkVL(a)
	carry := bitvec.New(e.vl)
	e.Broadcast(Assign{carry, true}) // carry <- 1 (as seen in [15], Figure 2)
	for b := 0; b < a.width; b++ {
		if carry.None() {
			break
		}
		bit := a.planes[b]
		// Pair 1: bit=0, carry=1  ->  bit=1, carry=0.
		t0 := e.Search(Cond{bit, false}, Cond{carry, true})
		e.Update(t0, Assign{bit, true}, Assign{carry, false})
		// Pair 2: bit=1, carry=1  ->  bit=0, carry=1 (carry propagates).
		// Elements updated by pair 1 now have carry=0 and cannot match.
		t1 := e.Search(Cond{bit, true}, Cond{carry, true})
		e.Update(t1, Assign{bit, false}, Assign{carry, true})
	}
	e.Broadcast(Assign{carry, false})
}

// AddInPlace computes dst += src element-wise using the full-adder truth
// table. Per bit position there are exactly four input combinations whose
// (sum, carry-out) differ from (bit, carry-in); each needs one search/update
// pair, giving 8 steps per bit. With the leading carry-initialisation
// broadcast and the trailing carry-clear broadcast the total is Table 1's
// 8n+2 steps.
func (e *Engine) AddInPlace(dst, src *Array) {
	e.checkVL(dst)
	e.checkVL(src)
	if dst.width != src.width {
		panic("micro: AddInPlace width mismatch")
	}
	carry := bitvec.New(e.vl)
	e.Broadcast(Assign{carry, false})
	for b := 0; b < dst.width; b++ {
		d, sp := dst.planes[b], src.planes[b]
		// Search all four changing combinations first (against the
		// pre-update state), then apply the four updates. Combos
		// (d,s,c) -> (sum, c_out) that change (d, c):
		//   0,0,1 -> 1,0    0,1,0 -> 1,0    1,0,1 -> 0,1    1,1,0 -> 0,1
		t001 := e.Search(Cond{d, false}, Cond{sp, false}, Cond{carry, true})
		t010 := e.Search(Cond{d, false}, Cond{sp, true}, Cond{carry, false})
		t101 := e.Search(Cond{d, true}, Cond{sp, false}, Cond{carry, true})
		t110 := e.Search(Cond{d, true}, Cond{sp, true}, Cond{carry, false})
		e.Update(t001, Assign{d, true}, Assign{carry, false})
		e.Update(t010, Assign{d, true}, Assign{carry, false})
		e.Update(t101, Assign{d, false}, Assign{carry, true})
		e.Update(t110, Assign{d, false}, Assign{carry, true})
	}
	e.Broadcast(Assign{carry, false})
}

// SubInPlace computes dst -= src element-wise using the full-subtractor
// truth table (borrow instead of carry); like addition it costs 8n+2 steps.
func (e *Engine) SubInPlace(dst, src *Array) {
	e.checkVL(dst)
	e.checkVL(src)
	if dst.width != src.width {
		panic("micro: SubInPlace width mismatch")
	}
	borrow := bitvec.New(e.vl)
	e.Broadcast(Assign{borrow, false})
	for b := 0; b < dst.width; b++ {
		d, sp := dst.planes[b], src.planes[b]
		// diff = d ^ s ^ bin; b_out = (!d & (s | bin)) | (s & bin).
		// Changing combos (d,s,bin) -> (diff, b_out) with (d,bin) delta:
		//   0,0,1 -> 1,1    0,1,0 -> 1,1    1,0,1 -> 0,0    1,1,0 -> 0,0
		t001 := e.Search(Cond{d, false}, Cond{sp, false}, Cond{borrow, true})
		t010 := e.Search(Cond{d, false}, Cond{sp, true}, Cond{borrow, false})
		t101 := e.Search(Cond{d, true}, Cond{sp, false}, Cond{borrow, true})
		t110 := e.Search(Cond{d, true}, Cond{sp, true}, Cond{borrow, false})
		e.Update(t001, Assign{d, true}, Assign{borrow, true})
		e.Update(t010, Assign{d, true}, Assign{borrow, true})
		e.Update(t101, Assign{d, false}, Assign{borrow, false})
		e.Update(t110, Assign{d, false}, Assign{borrow, false})
	}
	e.Broadcast(Assign{borrow, false})
}

// SearchEqual performs the vector-scalar equality search (vmseq.vx): one
// search per bit plane ANDed into a running tag accumulator, plus one step
// to deposit the final mask — Table 1's n+1 steps.
func (e *Engine) SearchEqual(a *Array, key uint32) *bitvec.Vector {
	e.checkVL(a)
	tags := bitvec.NewSet(e.vl)
	for b := 0; b < a.width; b++ {
		want := key&(1<<uint(b)) != 0
		tags.And(e.Search(Cond{a.planes[b], want}))
	}
	// Final mask deposit into the destination (one update step).
	dst := bitvec.New(e.vl)
	e.Update(tags, Assign{dst, true})
	return dst
}

// EqualVV performs element-wise vector-vector equality: one search/update
// pair cannot compare two stored planes directly, so per bit the engine
// marks mismatching elements via two searches (d=0&s=1, d=1&s=0) — but an
// associative machine folds these into one pass per plane using the chain
// XOR trick, costing n steps, plus 4 fixed steps for accumulator
// init/invert/deposit — Table 1's n+4.
func (e *Engine) EqualVV(a, b *Array) *bitvec.Vector {
	e.checkVL(a)
	e.checkVL(b)
	if a.width != b.width {
		panic("micro: EqualVV width mismatch")
	}
	mismatch := bitvec.New(e.vl)
	e.Broadcast(Assign{mismatch, false})
	for bit := 0; bit < a.width; bit++ {
		// One combined pass per plane: tag elements whose bits differ.
		d := a.planes[bit].Clone().Xor(b.planes[bit])
		e.stats.Searches++ // one chained search step per plane
		mismatch.Or(d)
	}
	eq := bitvec.New(e.vl)
	e.Update(mismatch.Clone().Not(), Assign{eq, true})
	e.stats.Updates += 2 // accumulator invert + copy-out
	return eq
}

// LessThanVV performs element-wise unsigned a < b. The associative
// algorithm scans from the most significant bit maintaining "undecided"
// tags; each plane needs three steps (two searches against the undecided
// set, one update), plus six fixed steps — Table 1's 3n+6.
func (e *Engine) LessThanVV(a, b *Array) *bitvec.Vector {
	e.checkVL(a)
	e.checkVL(b)
	if a.width != b.width {
		panic("micro: LessThanVV width mismatch")
	}
	undecided := bitvec.NewSet(e.vl)
	result := bitvec.New(e.vl)
	e.Broadcast(Assign{undecided, true})
	e.Broadcast(Assign{result, false})
	for bit := a.width - 1; bit >= 0; bit-- {
		ap, bp := a.planes[bit], b.planes[bit]
		// a_bit=0 & b_bit=1 among undecided: a<b decided true.
		lt := e.Search(Cond{ap, false}, Cond{bp, true})
		lt.And(undecided)
		// a_bit=1 & b_bit=0 among undecided: a<b decided false.
		gt := e.Search(Cond{ap, true}, Cond{bp, false})
		gt.And(undecided)
		e.Update(lt, Assign{result, true})
		undecided.AndNot(lt)
		undecided.AndNot(gt)
	}
	// Four trailing steps: clear scratch columns and deposit the mask.
	e.stats.Updates += 3
	e.stats.Broadcasts++
	return result
}

// ReduceMax returns the maximum element value among those selected by
// mask, using the classic bit-serial candidate narrowing: starting from
// the most significant bit, search whether any candidate has the bit set;
// if so, restrict the candidates to those elements. One search per bit
// plus two extraction steps (Table 1 extension: n+2). ok is false when the
// mask selects nothing.
func (e *Engine) ReduceMax(a *Array, mask *bitvec.Vector) (uint32, bool) {
	e.checkVL(a)
	candidates := mask.Clone()
	if candidates.None() {
		return 0, false
	}
	var val uint32
	for b := a.width - 1; b >= 0; b-- {
		ones := e.Search(Cond{a.planes[b], true})
		ones.And(candidates)
		if ones.Any() {
			candidates = ones
			val |= 1 << uint(b)
		}
	}
	e.stats.Updates += 2 // extract the surviving value
	return val, true
}

// ReduceMin is the dual of ReduceMax: it narrows candidates toward zero
// bits (preferring elements whose current bit is clear).
func (e *Engine) ReduceMin(a *Array, mask *bitvec.Vector) (uint32, bool) {
	e.checkVL(a)
	candidates := mask.Clone()
	if candidates.None() {
		return 0, false
	}
	var val uint32
	for b := a.width - 1; b >= 0; b-- {
		zeros := e.Search(Cond{a.planes[b], false})
		zeros.And(candidates)
		if zeros.Any() {
			candidates = zeros
		} else {
			val |= 1 << uint(b)
		}
	}
	e.stats.Updates += 2
	return val, true
}

// Xor computes dst = a ^ b bit-parallel: all planes are processed in the
// same pass (the CSB's array geometry lets logical associative algorithms
// run bit-parallel, Table 1), at a fixed cost of 4 steps.
func (e *Engine) Xor(dst, a, b *Array) {
	e.logical(dst, a, b, func(x, y *bitvec.Vector) *bitvec.Vector {
		return x.Clone().Xor(y)
	}, 4)
}

// And computes dst = a & b bit-parallel at a fixed cost of 3 steps.
func (e *Engine) And(dst, a, b *Array) {
	e.logical(dst, a, b, func(x, y *bitvec.Vector) *bitvec.Vector {
		return x.Clone().And(y)
	}, 3)
}

// Or computes dst = a | b bit-parallel at a fixed cost of 3 steps.
func (e *Engine) Or(dst, a, b *Array) {
	e.logical(dst, a, b, func(x, y *bitvec.Vector) *bitvec.Vector {
		return x.Clone().Or(y)
	}, 3)
}

func (e *Engine) logical(dst, a, b *Array, f func(x, y *bitvec.Vector) *bitvec.Vector, steps int64) {
	e.checkVL(dst)
	e.checkVL(a)
	e.checkVL(b)
	if dst.width != a.width || a.width != b.width {
		panic("micro: logical width mismatch")
	}
	for bit := 0; bit < a.width; bit++ {
		dst.planes[bit].CopyFrom(f(a.planes[bit], b.planes[bit]))
	}
	e.stats.Searches += steps - 1
	e.stats.Updates++
}
