package micro

import (
	"math/rand"
	"testing"
	"testing/quick"

	"castle/internal/bitvec"
	"castle/internal/isa"
)

func loadArray(vl, width int, words []uint32) *Array {
	a := NewArray(vl, width)
	a.Load(words)
	return a
}

func randWords(rng *rand.Rand, vl, width int) []uint32 {
	mask := uint32(1)<<uint(width) - 1
	if width == 32 {
		mask = ^uint32(0)
	}
	w := make([]uint32, vl)
	for i := range w {
		w[i] = rng.Uint32() & mask
	}
	return w
}

func TestArrayRoundTrip(t *testing.T) {
	words := []uint32{0, 1, 2, 3, 0xFF, 0xFFFFFFFF}
	a := loadArray(len(words), 32, words)
	got := a.Words()
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], words[i])
		}
	}
	if a.VL() != len(words) || a.Width() != 32 {
		t.Fatal("VL/Width wrong")
	}
}

func TestArrayTruncatesToWidth(t *testing.T) {
	a := loadArray(2, 4, []uint32{0x1F, 0x10})
	got := a.Words()
	if got[0] != 0xF || got[1] != 0 {
		t.Fatalf("got %v, want [15 0]", got)
	}
}

func TestNewArrayValidation(t *testing.T) {
	for _, w := range []int{0, 33, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArray width %d should panic", w)
				}
			}()
			NewArray(4, w)
		}()
	}
}

// TestIncrementFigure2 replays the worked example of Figure 2: a vector of
// three two-bit elements is incremented (with wraparound).
func TestIncrementFigure2(t *testing.T) {
	e := NewEngine(3)
	a := loadArray(3, 2, []uint32{0, 1, 3})
	e.Increment(a)
	got := a.Words()
	want := []uint32{1, 2, 0} // 3 wraps to 0 in two bits
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("increment: got %v, want %v", got, want)
		}
	}
}

// TestIncrement32BitCost checks the paper's claim (§2.1) that "even a
// relatively simple increment instruction on a 32-bit value requires over
// 100 such operations".
func TestIncrement32BitCost(t *testing.T) {
	e := NewEngine(4)
	// Use an element that carries through all 32 bits to defeat the
	// early-out: 0xFFFFFFFF.
	a := loadArray(4, 32, []uint32{0xFFFFFFFF, 0, 1, 7})
	e.Increment(a)
	if steps := e.Stats().Steps(); steps <= 100 {
		t.Fatalf("32-bit increment took %d steps, paper says over 100", steps)
	}
	got := a.Words()
	want := []uint32{0, 1, 2, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("increment: got %v, want %v", got, want)
		}
	}
}

func TestAddMatchesTable1StepCount(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		e := NewEngine(8)
		rng := rand.New(rand.NewSource(int64(n)))
		a := loadArray(8, n, randWords(rng, 8, n))
		b := loadArray(8, n, randWords(rng, 8, n))
		e.AddInPlace(a, b)
		want := isa.AddSteps(n)
		if got := e.Stats().Steps(); got != want {
			t.Errorf("n=%d: add executed %d steps, Table 1 says %d", n, got, want)
		}
	}
}

func TestSubMatchesTable1StepCount(t *testing.T) {
	e := NewEngine(8)
	rng := rand.New(rand.NewSource(1))
	a := loadArray(8, 32, randWords(rng, 8, 32))
	b := loadArray(8, 32, randWords(rng, 8, 32))
	e.SubInPlace(a, b)
	if got, want := e.Stats().Steps(), isa.AddSteps(32); got != want {
		t.Errorf("sub executed %d steps, Table 1 says %d", got, want)
	}
}

func TestSearchEqualMatchesTable1StepCount(t *testing.T) {
	for _, n := range []int{4, 16, 32} {
		e := NewEngine(16)
		a := NewArray(16, n)
		e.SearchEqual(a, 0)
		if got, want := e.Stats().Steps(), isa.SearchSteps(n); got != want {
			t.Errorf("n=%d: search executed %d steps, Table 1 says %d", n, got, want)
		}
	}
}

func TestEqualVVMatchesTable1StepCount(t *testing.T) {
	e := NewEngine(8)
	a, b := NewArray(8, 32), NewArray(8, 32)
	e.EqualVV(a, b)
	if got, want := e.Stats().Steps(), isa.EqVVSteps(32); got != want {
		t.Errorf("vv equality executed %d steps, Table 1 says %d", got, want)
	}
}

func TestLessThanMatchesTable1StepCount(t *testing.T) {
	e := NewEngine(8)
	a, b := NewArray(8, 32), NewArray(8, 32)
	e.LessThanVV(a, b)
	if got, want := e.Stats().Steps(), isa.IneqVVSteps(32); got != want {
		t.Errorf("vv inequality executed %d steps, Table 1 says %d", got, want)
	}
}

func TestLogicalStepCounts(t *testing.T) {
	e := NewEngine(4)
	d, a, b := NewArray(4, 32), NewArray(4, 32), NewArray(4, 32)
	e.Xor(d, a, b)
	if got := e.Stats().Steps(); got != isa.XorSteps {
		t.Errorf("xor executed %d steps, Table 1 says %d", got, isa.XorSteps)
	}
	e.ResetStats()
	e.And(d, a, b)
	if got := e.Stats().Steps(); got != int64(isa.AndSteps) {
		t.Errorf("and executed %d steps, Table 1 says %d", got, isa.AndSteps)
	}
	e.ResetStats()
	e.Or(d, a, b)
	if got := e.Stats().Steps(); got != int64(isa.OrSteps) {
		t.Errorf("or executed %d steps, Table 1 says %d", got, isa.OrSteps)
	}
}

// Property: bit-serial AddInPlace agrees with native uint32 addition.
func TestQuickAddFunctional(t *testing.T) {
	f := func(seed int64, vlRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		aw := randWords(rng, vl, 32)
		bw := randWords(rng, vl, 32)
		e := NewEngine(vl)
		a := loadArray(vl, 32, aw)
		b := loadArray(vl, 32, bw)
		e.AddInPlace(a, b)
		got := a.Words()
		for i := range aw {
			if got[i] != aw[i]+bw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bit-serial SubInPlace agrees with native uint32 subtraction.
func TestQuickSubFunctional(t *testing.T) {
	f := func(seed int64, vlRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		aw := randWords(rng, vl, 32)
		bw := randWords(rng, vl, 32)
		e := NewEngine(vl)
		a := loadArray(vl, 32, aw)
		b := loadArray(vl, 32, bw)
		e.SubInPlace(a, b)
		got := a.Words()
		for i := range aw {
			if got[i] != aw[i]-bw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: increment agrees with native +1 at several widths.
func TestQuickIncrementFunctional(t *testing.T) {
	f := func(seed int64, vlRaw, widthRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		width := int(widthRaw%32) + 1
		mask := uint32(1)<<uint(width) - 1
		if width == 32 {
			mask = ^uint32(0)
		}
		rng := rand.New(rand.NewSource(seed))
		w := randWords(rng, vl, width)
		e := NewEngine(vl)
		a := loadArray(vl, width, w)
		e.Increment(a)
		got := a.Words()
		for i := range w {
			if got[i] != (w[i]+1)&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SearchEqual tags exactly the matching elements.
func TestQuickSearchEqualFunctional(t *testing.T) {
	f := func(seed int64, vlRaw uint8, key uint32) bool {
		vl := int(vlRaw%128) + 1
		rng := rand.New(rand.NewSource(seed))
		// Narrow value range so matches actually occur.
		w := make([]uint32, vl)
		for i := range w {
			w[i] = uint32(rng.Intn(8))
		}
		key %= 8
		e := NewEngine(vl)
		a := loadArray(vl, 32, w)
		mask := e.SearchEqual(a, key)
		for i := range w {
			if mask.Get(i) != (w[i] == key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EqualVV and LessThanVV agree with native comparisons.
func TestQuickComparesFunctional(t *testing.T) {
	f := func(seed int64, vlRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		// Mix of equal and unequal elements.
		aw := randWords(rng, vl, 8)
		bw := make([]uint32, vl)
		for i := range bw {
			if rng.Intn(2) == 0 {
				bw[i] = aw[i]
			} else {
				bw[i] = uint32(rng.Intn(256))
			}
		}
		e := NewEngine(vl)
		a := loadArray(vl, 32, aw)
		b := loadArray(vl, 32, bw)
		eq := e.EqualVV(a, b)
		lt := e.LessThanVV(a, b)
		for i := range aw {
			if eq.Get(i) != (aw[i] == bw[i]) {
				return false
			}
			if lt.Get(i) != (aw[i] < bw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: logical ops agree with native operators.
func TestQuickLogicalFunctional(t *testing.T) {
	f := func(seed int64, vlRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		aw := randWords(rng, vl, 32)
		bw := randWords(rng, vl, 32)
		e := NewEngine(vl)
		a := loadArray(vl, 32, aw)
		b := loadArray(vl, 32, bw)
		d := NewArray(vl, 32)
		e.Xor(d, a, b)
		xw := d.Words()
		e.And(d, a, b)
		nw := d.Words()
		e.Or(d, a, b)
		ow := d.Words()
		for i := range aw {
			if xw[i] != aw[i]^bw[i] || nw[i] != aw[i]&bw[i] || ow[i] != aw[i]|bw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineVLMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on VL mismatch")
		}
	}()
	NewEngine(8).Increment(NewArray(4, 8))
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	e := NewEngine(4)
	e.AddInPlace(NewArray(4, 8), NewArray(4, 16))
}

func BenchmarkBitSerialAdd32(b *testing.B) {
	const vl = 32768
	rng := rand.New(rand.NewSource(42))
	aw := randWords(rng, vl, 32)
	bw := randWords(rng, vl, 32)
	e := NewEngine(vl)
	x := loadArray(vl, 32, aw)
	y := loadArray(vl, 32, bw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AddInPlace(x, y)
	}
}

func BenchmarkBitSerialSearch32(b *testing.B) {
	const vl = 32768
	rng := rand.New(rand.NewSource(42))
	e := NewEngine(vl)
	x := loadArray(vl, 32, randWords(rng, vl, 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SearchEqual(x, uint32(i))
	}
}

func TestReduceMaxMinFunctionalAndCost(t *testing.T) {
	e := NewEngine(8)
	a := loadArray(8, 32, []uint32{5, 99, 3, 42, 7, 99, 1, 0})
	full := bitvec.NewSet(8)
	v, ok := e.ReduceMax(a, full)
	if !ok || v != 99 {
		t.Fatalf("ReduceMax = %d,%v, want 99", v, ok)
	}
	// Cost: one search per bit + 2 extraction steps = n+2.
	if got, want := e.Stats().Steps(), isa.RedMinMaxSteps(32); got != want {
		t.Fatalf("ReduceMax executed %d steps, want %d", got, want)
	}
	e.ResetStats()
	v, ok = e.ReduceMin(a, full)
	if !ok || v != 0 {
		t.Fatalf("ReduceMin = %d,%v, want 0", v, ok)
	}
	if got, want := e.Stats().Steps(), isa.RedMinMaxSteps(32); got != want {
		t.Fatalf("ReduceMin executed %d steps, want %d", got, want)
	}

	// Masked: only odd positions participate.
	mask := bitvec.FromIndices(8, []int{1, 3, 5, 7})
	if v, _ := e.ReduceMax(a, mask); v != 99 {
		t.Fatalf("masked max = %d", v)
	}
	if v, _ := e.ReduceMin(a, mask); v != 0 {
		t.Fatalf("masked min = %d", v)
	}
	// Empty mask.
	if _, ok := e.ReduceMax(a, bitvec.New(8)); ok {
		t.Fatal("empty-mask max should report !ok")
	}
	if _, ok := e.ReduceMin(a, bitvec.New(8)); ok {
		t.Fatal("empty-mask min should report !ok")
	}
}

// Property: bit-serial reduce max/min agree with plain scans.
func TestQuickReduceMaxMin(t *testing.T) {
	f := func(seed int64, vlRaw uint8) bool {
		vl := int(vlRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		w := randWords(rng, vl, 32)
		mask := bitvec.New(vl)
		for i := 0; i < vl; i++ {
			if rng.Intn(2) == 0 {
				mask.Set(i)
			}
		}
		e := NewEngine(vl)
		a := loadArray(vl, 32, w)
		gotMax, okMax := e.ReduceMax(a, mask)
		gotMin, okMin := e.ReduceMin(a, mask)
		var wantMax, wantMin uint32
		found := false
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			if !found {
				wantMax, wantMin, found = w[i], w[i], true
			} else {
				if w[i] > wantMax {
					wantMax = w[i]
				}
				if w[i] < wantMin {
					wantMin = w[i]
				}
			}
		}
		if !found {
			return !okMax && !okMin
		}
		return okMax && okMin && gotMax == wantMax && gotMin == wantMin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
