package experiments

// bench.go produces the machine-readable benchmark artifact CI archives on
// every run (BENCH_PR3.json): the waterfall geomean, per-query cycle
// counts, a K=1..4 morsel-parallel scaling curve for both devices, and the
// serving layer's latency distribution under concurrent load.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"castle"
	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/cluster"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/server"
)

// BenchScalingMAXVL is the CAPE vector length used for the scaling curve.
// At small scale factors the default 32,768 leaves too few MAXVL-sized
// morsels to occupy four tiles (SF 0.01 has ~60K fact rows = 2 morsels), so
// the curve measures fan-out at a vector length that yields >= 4 morsels.
const BenchScalingMAXVL = 8192

// BenchReport is the schema of the benchmark JSON artifact.
type BenchReport struct {
	SF             float64          `json:"sf"`
	GeomeanSpeedup float64          `json:"geomean_speedup"` // full system vs AVX-512 baseline
	Queries        []BenchQuery     `json:"queries"`
	Scaling        []ScalingPoint   `json:"scaling"`   // K=1..4 per device
	Cluster        []ClusterPoint   `json:"cluster"`   // N=1..4 scale-out
	Streaming      []StreamingPoint `json:"streaming"` // streaming vs materializing, mixed placement
	// Misestimates compares per-operator estimate divergence under the
	// histogram estimator vs the fixed-constant model; Adaptive is the
	// static-vs-checkpoint curve per SSB query.
	Misestimates []MisestimateModel `json:"misestimates"`
	Adaptive     []AdaptivePoint    `json:"adaptive"`
	Server       ServerBench        `json:"server"`
	// SharedServing contrasts the same skewed multi-tenant offered load with
	// scan sharing off and on: p50/p99 under identical arrivals plus the
	// fraction of answers served by fused groups.
	SharedServing []SharedServingPoint `json:"shared_serving"`
}

// BenchQuery is one SSB query's cycle accounting.
type BenchQuery struct {
	Num            int     `json:"num"`
	Flight         string  `json:"flight"`
	BaselineCycles int64   `json:"baseline_cycles"`
	CastleCycles   int64   `json:"castle_cycles"`
	Speedup        float64 `json:"speedup"`
}

// ScalingPoint is one (device, K) cell of the parallel-scaling curve.
type ScalingPoint struct {
	Device string `json:"device"`
	K      int    `json:"k"`
	// GeomeanCycles is the geometric mean of elapsed cycles over the 13
	// queries; GeomeanWork uses the summed-over-tiles work view.
	GeomeanCycles float64 `json:"geomean_cycles"`
	GeomeanWork   float64 `json:"geomean_work_cycles"`
	// SpeedupVsK1 is geomean(K=1 cycles / this K's cycles).
	SpeedupVsK1 float64 `json:"speedup_vs_k1"`
}

// ClusterPoint is one node-count cell of the scatter-gather scale-out
// curve: the coordinator's critical-path (elapsed) and total-work cycle
// views over the 13 queries, plus the cross-node shuffle traffic the
// gather phase paid.
type ClusterPoint struct {
	Scheme        string  `json:"scheme"`
	Nodes         int     `json:"nodes"`
	GeomeanCycles float64 `json:"geomean_cycles"`
	GeomeanWork   float64 `json:"geomean_work_cycles"`
	// SpeedupVsN1 is geomean(N=1 elapsed / this N's elapsed).
	SpeedupVsN1 float64 `json:"speedup_vs_n1"`
	// ShuffleBytes totals the partial-aggregate traffic over all 13 queries.
	ShuffleBytes int64 `json:"shuffle_bytes_total"`
}

// StreamingPoint is one (query, K) cell of the streaming-vs-materializing
// comparison: the same forced mixed placement (fact stage on CAPE,
// aggregation tail on the CPU) run both ways. StreamedCycles subtracts the
// double-buffered overlap credit, so the delta is the transfer time the
// pipeline hid under compute; PeakBatchBytes shows the O(K·MAXVL)
// intermediate footprint.
type StreamingPoint struct {
	Num                int     `json:"num"`
	Flight             string  `json:"flight"`
	K                  int     `json:"k"`
	MaterializedCycles int64   `json:"materialized_cycles"`
	StreamedCycles     int64   `json:"streamed_cycles"`
	OverlapCycles      int64   `json:"overlap_cycles"`
	Batches            int64   `json:"batches"`
	PeakBatchBytes     int64   `json:"peak_batch_bytes"`
	Speedup            float64 `json:"speedup"` // materialized / streamed
}

// ServerBench is the serving-layer load result. Beyond the end-to-end
// latency distribution it reports server-side attribution: mean
// microseconds per request spent in each lifecycle phase
// (queue/lease/exec/serialize, from Response.TimingsMicros).
type ServerBench struct {
	Clients             int     `json:"clients"`
	Requests            int     `json:"requests"`
	P50Micros           int64   `json:"p50_micros"`
	P99Micros           int64   `json:"p99_micros"`
	Throughput          float64 `json:"throughput_rps"`
	QueueMeanMicros     int64   `json:"queue_mean_micros"`
	LeaseMeanMicros     int64   `json:"lease_mean_micros"`
	ExecMeanMicros      int64   `json:"exec_mean_micros"`
	SerializeMeanMicros int64   `json:"serialize_mean_micros"`
}

// RunBench assembles the full benchmark report at one scale factor.
func RunBench(sf float64) *BenchReport {
	r := NewRunner(sf)
	results := r.RunSuite()

	rep := &BenchReport{SF: sf, GeomeanSpeedup: GeoMean(results, TierABA)}
	for _, q := range results {
		rep.Queries = append(rep.Queries, BenchQuery{
			Num:            q.Num,
			Flight:         q.Flight,
			BaselineCycles: q.BaselineCycles,
			CastleCycles:   q.Tiers[TierABA].Cycles,
			Speedup:        q.Speedup(TierABA),
		})
	}

	ks := []int{1, 2, 3, 4}
	rep.Scaling = append(rep.Scaling, r.ScalingCurve("cape", ks)...)
	rep.Scaling = append(rep.Scaling, r.ScalingCurve("cpu", ks)...)
	rep.Cluster = r.ClusterCurve("hash", []int{1, 2, 3, 4})
	rep.Streaming = r.StreamingCurve([]int{1, 2})
	rep.Misestimates = r.MisestimateSummary()
	rep.Adaptive = RunAdaptiveCurve(sf)
	rep.Server = RunServerBench(sf, 8, 104)
	rep.SharedServing = RunMixedTenantBench(sf, 8, 250, 4*time.Second)
	return rep
}

// StreamingCurve runs all 13 queries through the forced mixed placement
// (fact stage on CAPE at BenchScalingMAXVL, aggregation tail on the CPU)
// both materializing and streaming at each fan-out K. The placement is
// forced rather than optimized so every cell actually crosses the device
// boundary — the crossing is what double buffering accelerates.
func (r *Runner) StreamingCurve(ks []int) []StreamingPoint {
	maxvl := BenchScalingMAXVL
	cfg := TierABA.config(maxvl)
	var out []StreamingPoint
	for _, k := range ks {
		for num := 1; num <= 13; num++ {
			q := r.bind(querySQL(num))
			p, err := optimizer.Optimize(q, r.Cat, maxvl)
			if err != nil {
				panic(err)
			}
			dimDev := make(map[string]plan.Device, len(p.Joins))
			for _, e := range p.Joins {
				dimDev[e.Dim] = plan.DeviceCAPE
			}
			pp := plan.Compile(p, plan.DeviceCAPE).Place(plan.DeviceCAPE, plan.DeviceCPU, dimDev)
			run := func(streaming bool) (int64, exec.StreamStats) {
				castle := exec.NewCastle(cape.New(cfg), r.Cat, exec.DefaultCastleOptions())
				cpuex := exec.NewCPUExec(baseline.New(baseline.DefaultConfig()))
				x := exec.NewPlaced(castle, cpuex, r.Cat)
				x.SetParallelism(k)
				x.SetStreaming(streaming)
				if _, err := x.Run(pp, r.DB); err != nil {
					panic(fmt.Sprintf("experiments: streaming bench Q%d k=%d: %v", num, k, err))
				}
				return x.Breakdown().TotalCycles, x.StreamStats()
			}
			mat, _ := run(false)
			str, st := run(true)
			sp := StreamingPoint{
				Num:                num,
				Flight:             queryMeta(num).Flight,
				K:                  k,
				MaterializedCycles: mat,
				StreamedCycles:     str,
				OverlapCycles:      st.OverlapCycles,
				Batches:            st.Batches,
				PeakBatchBytes:     st.PeakBatchBytes,
			}
			if str > 0 {
				sp.Speedup = float64(mat) / float64(str)
			}
			out = append(out, sp)
		}
	}
	return out
}

// ClusterCurve measures scatter-gather scale-out: all 13 queries through a
// coordinator at each node count (CAPE engines at BenchScalingMAXVL on
// every node), reporting the coordinator's elapsed and work cycle views.
func (r *Runner) ClusterCurve(scheme string, ns []int) []ClusterPoint {
	sch, err := cluster.ParseScheme(scheme)
	if err != nil {
		panic(err)
	}
	cfg := TierABA.config(BenchScalingMAXVL)
	base := make([]float64, 0, 13)
	var out []ClusterPoint
	for _, n := range ns {
		coord, err := cluster.New(r.DB, cluster.Config{Nodes: n, Scheme: sch})
		if err != nil {
			panic(err)
		}
		elapsed, work := make([]float64, 13), make([]float64, 13)
		var shuffle int64
		for num := 1; num <= 13; num++ {
			q := r.bind(querySQL(num))
			_, rep, err := coord.Run(context.Background(), q,
				cluster.ExecOptions{Device: "cape", Config: cfg, Parallelism: 1})
			if err != nil {
				panic(fmt.Sprintf("experiments: cluster bench Q%d n=%d: %v", num, n, err))
			}
			elapsed[num-1] = float64(rep.Stats.ElapsedCycles)
			work[num-1] = float64(rep.Stats.WorkCycles)
			shuffle += rep.Stats.ShuffleBytes
		}
		if n == ns[0] {
			base = elapsed
		}
		cp := ClusterPoint{
			Scheme:        scheme,
			Nodes:         n,
			GeomeanCycles: geomeanF(elapsed),
			GeomeanWork:   geomeanF(work),
			ShuffleBytes:  shuffle,
		}
		ratios := make([]float64, len(elapsed))
		for i := range elapsed {
			ratios[i] = base[i] / elapsed[i]
		}
		cp.SpeedupVsN1 = geomeanF(ratios)
		out = append(out, cp)
	}
	return out
}

// ScalingCurve measures elapsed and work cycles for all 13 queries at each
// requested fan-out K. device is "cape" (at BenchScalingMAXVL, see above)
// or "cpu" (core count is the only knob).
func (r *Runner) ScalingCurve(device string, ks []int) []ScalingPoint {
	base := make([]float64, 0, len(ks))
	var out []ScalingPoint
	for _, k := range ks {
		elapsed, work := make([]float64, 13), make([]float64, 13)
		for n := 1; n <= 13; n++ {
			e, w := r.runScaled(device, n, k)
			elapsed[n-1], work[n-1] = float64(e), float64(w)
		}
		if k == ks[0] {
			base = elapsed
		}
		sp := ScalingPoint{
			Device:        device,
			K:             k,
			GeomeanCycles: geomeanF(elapsed),
			GeomeanWork:   geomeanF(work),
		}
		ratios := make([]float64, len(elapsed))
		for i := range elapsed {
			ratios[i] = base[i] / elapsed[i]
		}
		sp.SpeedupVsK1 = geomeanF(ratios)
		out = append(out, sp)
	}
	return out
}

// runScaled executes one SSB query at fan-out k and returns (elapsed, work)
// cycles.
func (r *Runner) runScaled(device string, num, k int) (int64, int64) {
	q := r.bind(querySQL(num))
	if device == "cpu" {
		cpu := baseline.New(baseline.DefaultConfig())
		x := exec.NewCPUExec(cpu)
		x.SetParallelism(k)
		x.Run(q, r.DB)
		return cpu.Cycles(), x.ParallelStats().WorkCycles
	}
	maxvl := BenchScalingMAXVL
	cfg := TierABA.config(maxvl)
	p, err := optimizer.Optimize(q, r.Cat, maxvl)
	if err != nil {
		panic(err)
	}
	eng := cape.New(cfg)
	cas := exec.NewCastle(eng, r.Cat, exec.DefaultCastleOptions())
	cas.SetParallelism(k)
	cas.Run(p, r.DB)
	return eng.Stats().TotalCycles(), cas.ParallelStats().WorkCycles
}

// RunServerBench drives the full serving path (admission queue, hybrid
// routing, elastic device leases, plan cache) with nClients concurrent
// clients issuing total requests, and reports the latency distribution.
func RunServerBench(sf float64, nClients, total int) ServerBench {
	db := castle.GenerateSSB(sf, 1)
	svc, err := server.New(db, nil, server.Config{
		QueueDepth: 1024, CAPETiles: 2, CPUSlots: 2, MaxTilesPerQuery: 2,
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	queries := castle.SSBQueries()
	lat := make([]int64, total)
	timings := make([]server.Timings, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < total; i += nClients {
				q := queries[i%len(queries)]
				t0 := time.Now()
				resp, err := svc.Do(context.Background(), server.Request{SQL: q.SQL})
				if err != nil {
					panic(fmt.Sprintf("experiments: server bench request: %v", err))
				}
				lat[i] = time.Since(t0).Microseconds()
				timings[i] = resp.TimingsMicros
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sum server.Timings
	for _, tm := range timings {
		sum.QueueMicros += tm.QueueMicros
		sum.LeaseMicros += tm.LeaseMicros
		sum.ExecMicros += tm.ExecMicros
		sum.SerializeMicros += tm.SerializeMicros
	}
	n := int64(total)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 { return lat[int(p*float64(len(lat)-1))] }
	return ServerBench{
		Clients:             nClients,
		Requests:            total,
		P50Micros:           pct(0.50),
		P99Micros:           pct(0.99),
		Throughput:          float64(total) / elapsed.Seconds(),
		QueueMeanMicros:     sum.QueueMicros / n,
		LeaseMeanMicros:     sum.LeaseMicros / n,
		ExecMeanMicros:      sum.ExecMicros / n,
		SerializeMeanMicros: sum.SerializeMicros / n,
	}
}

// SharedServingPoint is one mode of the mixed-tenant comparison: the same
// skewed arrival process with scan sharing off or on.
type SharedServingPoint struct {
	Sharing              bool    `json:"sharing"`
	CoalesceWindowMicros int64   `json:"coalesce_window_micros"`
	Clients              int     `json:"clients"`
	OfferedRPS           float64 `json:"offered_rps"`
	AchievedRPS          float64 `json:"achieved_rps"`
	OK                   int     `json:"ok"`
	Shed                 int     `json:"shed"`
	P50Micros            int64   `json:"p50_micros"`
	P99Micros            int64   `json:"p99_micros"`
	// SharedHitRate is the fraction of successful answers served by a fused
	// shared-scan group (0 when sharing is off).
	SharedHitRate float64 `json:"shared_hit_rate"`
}

// RunMixedTenantBench offers the same skewed multi-tenant workload twice —
// scan sharing disabled, then enabled with a 2ms coalescing window — at a
// fixed open-loop rate, and reports both latency distributions side by
// side. Hot dashboard fingerprints dominate arrivals (the regime the
// coalescer exists for); the full SSB tail fills the rest.
func RunMixedTenantBench(sf float64, nClients int, rate float64, dur time.Duration) []SharedServingPoint {
	db := castle.GenerateSSB(sf, 1)
	queries := castle.SSBQueries()
	weights := make([]int, len(queries))
	for i := range weights {
		weights[i] = 1
	}
	weights[3], weights[8], weights[0] = 8, 6, 4
	var pick []int
	for qi, w := range weights {
		for j := 0; j < w; j++ {
			pick = append(pick, qi)
		}
	}
	interval := time.Duration(float64(nClients) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}

	var out []SharedServingPoint
	for _, sharing := range []bool{false, true} {
		window := 2 * time.Millisecond
		svc, err := server.New(db, nil, server.Config{
			QueueDepth: 1024, CAPETiles: 2, CPUSlots: 2, MaxTilesPerQuery: 2,
			ScanSharing: sharing, CoalesceWindow: window, MaxGroupSize: 8,
		})
		if err != nil {
			panic(err)
		}

		type tally struct {
			ok, shed, shared int
			lat              []int64
		}
		tallies := make([]tally, nClients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tick := time.NewTicker(interval)
				defer tick.Stop()
				deadline := start.Add(dur)
				for seq := 0; time.Now().Before(deadline); seq++ {
					q := queries[pick[(c*7919+seq*104729)%len(pick)]]
					t0 := time.Now()
					resp, err := svc.Do(context.Background(), server.Request{SQL: q.SQL})
					tl := &tallies[c]
					if err != nil {
						// At fixed offered load a shed is an outcome to
						// count, not a bench failure.
						tl.shed++
					} else {
						tl.ok++
						tl.lat = append(tl.lat, time.Since(t0).Microseconds())
						if resp.GroupSize > 1 {
							tl.shared++
						}
					}
					select {
					case <-tick.C:
					default:
						<-tick.C // behind schedule: fire immediately
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := svc.Close(); err != nil {
			panic(err)
		}

		var all tally
		for _, tl := range tallies {
			all.ok += tl.ok
			all.shed += tl.shed
			all.shared += tl.shared
			all.lat = append(all.lat, tl.lat...)
		}
		sort.Slice(all.lat, func(i, j int) bool { return all.lat[i] < all.lat[j] })
		pct := func(p float64) int64 {
			if len(all.lat) == 0 {
				return 0
			}
			return all.lat[int(p*float64(len(all.lat)-1))]
		}
		pt := SharedServingPoint{
			Sharing:     sharing,
			Clients:     nClients,
			OfferedRPS:  rate,
			AchievedRPS: float64(all.ok) / elapsed.Seconds(),
			OK:          all.ok,
			Shed:        all.shed,
			P50Micros:   pct(0.50),
			P99Micros:   pct(0.99),
		}
		if sharing {
			pt.CoalesceWindowMicros = window.Microseconds()
		}
		if all.ok > 0 {
			pt.SharedHitRate = float64(all.shared) / float64(all.ok)
		}
		out = append(out, pt)
	}
	return out
}

// WriteBenchJSON renders the report as indented JSON.
func (rep *BenchReport) WriteBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadBenchJSON parses a benchmark artifact previously written by
// WriteBenchJSON (e.g. a committed baseline).
func ReadBenchJSON(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	return &rep, nil
}

// CompareGeomean gates rep against a committed baseline: it returns an
// error when the waterfall geomean speedup regressed by more than tol
// (fractional, 0.02 = 2%). Improvements and within-tolerance noise pass.
// Both reports must be at the same scale factor — cycle counts are not
// comparable across SF.
func (rep *BenchReport) CompareGeomean(base *BenchReport, tol float64) error {
	if base.SF != rep.SF {
		return fmt.Errorf("bench baseline: SF mismatch (baseline %.3f vs run %.3f)", base.SF, rep.SF)
	}
	if base.GeomeanSpeedup <= 0 {
		return fmt.Errorf("bench baseline: geomean %.4f is not positive", base.GeomeanSpeedup)
	}
	floor := base.GeomeanSpeedup * (1 - tol)
	if rep.GeomeanSpeedup < floor {
		return fmt.Errorf("geomean speedup regressed: %.3fx vs baseline %.3fx (floor %.3fx at %.1f%% tolerance)",
			rep.GeomeanSpeedup, base.GeomeanSpeedup, floor, tol*100)
	}
	return nil
}

// geomeanF is the geometric mean of positive values.
func geomeanF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
