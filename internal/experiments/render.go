package experiments

import (
	"fmt"
	"io"
	"strings"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/isa"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/power"
	"castle/internal/stats"
	"castle/internal/storage"
)

// RenderFig1 prints the waterfall of Figure 1: the speedup geomean at the
// three headline tiers (operators only / +query optimization / +microarch).
func RenderFig1(w io.Writer, results []QueryResult) {
	fmt.Fprintln(w, "Figure 1 — speedup geomean over the AVX-512 baseline (waterfall)")
	fmt.Fprintln(w, "  paper:    CAPE operators 0.3x -> +query optimization 5.3x -> +microarch 10.8x")
	fmt.Fprintf(w, "  measured: CAPE operators %.1fx -> +query optimization %.1fx -> +microarch %.1fx\n",
		GeoMean(results, TierOps), GeoMean(results, TierQO), GeoMean(results, TierABA))
}

// RenderFig5 prints the Figure 5 worked example: plan-shape costs in
// searches for a 6M-row fact joined with two dimensions.
func RenderFig5(w io.Writer) {
	q, cat := Fig5Query()
	est := optimizer.Estimator{Cat: cat}
	d1 := *q.JoinFor("d1")
	d2 := *q.JoinFor("d2")
	order := []plan.JoinEdge{d1, d2}
	ld := optimizer.Cost(q, est, 32768, order, 0)
	rd := optimizer.Cost(q, est, 32768, order, 2)
	zz := optimizer.Cost(q, est, 32768, order, 1)
	fmt.Fprintln(w, "Figure 5 — plan-shape costs (searches), |f|=6M |d1'|=3K |d2|=20K |f⋈d1|=200K, MAXVL=32768")
	fmt.Fprintf(w, "  %-12s paper ~6M    measured %d\n", "left-deep:", ld)
	fmt.Fprintf(w, "  %-12s paper ~4M    measured %d\n", "right-deep:", rd)
	fmt.Fprintf(w, "  %-12s paper ~600K  measured %d\n", "zig-zag:", zz)
	best, err := optimizer.Optimize(q, cat, 32768)
	if err == nil {
		fmt.Fprintf(w, "  optimizer picks: %v\n", best.Shape())
	}
}

// RenderFig6 prints the per-query speedups of Figure 6 (operators-only vs
// +CAPE-aware query optimization).
func RenderFig6(w io.Writer, results []QueryResult) {
	fmt.Fprintln(w, "Figure 6 — per-query speedup, SSB: CAPE operators vs +AP-aware query optimization")
	fmt.Fprintf(w, "  %-4s %-6s %12s %12s  %s\n", "Q", "flight", "ops-only", "+queryopt", "chosen shape")
	for _, q := range results {
		fmt.Fprintf(w, "  %-4d %-6s %11.2fx %11.2fx  %v\n",
			q.Num, q.Flight, q.Speedup(TierOps), q.Speedup(TierQO), q.Tiers[TierQO].PlanShape)
	}
	fmt.Fprintf(w, "  geomean: ops-only %.2fx (paper 0.3x), +queryopt %.2fx (paper 5.3x)\n",
		GeoMean(results, TierOps), GeoMean(results, TierQO))
}

// RenderFig7 prints the CSB cycle breakdown per instruction class
// (Figure 7), measured at the query-optimized tier of Section 4.
func RenderFig7(w io.Writer, results []QueryResult) {
	fmt.Fprintln(w, "Figure 7 — CSB cycle breakdown by instruction class (query-optimized Castle)")
	fmt.Fprintf(w, "  %-4s %-6s", "Q", "flight")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, q := range results {
		var total int64
		for _, v := range q.Tiers[TierQO].CSBByClass {
			total += v
		}
		fmt.Fprintf(w, "  %-4d %-6s", q.Num, q.Flight)
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(q.Tiers[TierQO].CSBByClass[c]) / float64(total)
			}
			fmt.Fprintf(w, " %13.1f%%", pct)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  paper: queries 2-3 dominated by arithmetic+comparison; 1 and 4-13 by searches")
}

// RenderFig10 prints the cumulative microarchitectural waterfall of
// Figure 10 (Ops+QO, +ADL, +MKS, +ABA).
func RenderFig10(w io.Writer, results []QueryResult) {
	fmt.Fprintln(w, "Figure 10 — per-query speedup with microarchitectural enhancements (cumulative)")
	fmt.Fprintf(w, "  %-4s %-6s %10s %10s %10s %10s\n", "Q", "flight", "ops+QO", "+ADL", "+MKS", "+ABA")
	for _, q := range results {
		fmt.Fprintf(w, "  %-4d %-6s %9.2fx %9.2fx %9.2fx %9.2fx\n",
			q.Num, q.Flight, q.Speedup(TierQO), q.Speedup(TierADL), q.Speedup(TierMKS), q.Speedup(TierABA))
	}
	fmt.Fprintf(w, "  geomean: %.2fx -> %.2fx -> %.2fx -> %.2fx (paper: 5.3 -> 8.3 -> 10.5 -> 10.8)\n",
		GeoMean(results, TierQO), GeoMean(results, TierADL),
		GeoMean(results, TierMKS), GeoMean(results, TierABA))
}

// RenderFig11 prints the join microbenchmark (Figure 11).
func RenderFig11(w io.Writer, series map[int][]MicroPoint) {
	fmt.Fprintln(w, "Figure 11 — Castle join speedup vs dimension size (semi-join)")
	fmt.Fprintf(w, "  %-10s %-12s %12s %16s\n", "fact", "dim", "optimized", "not-optimized")
	for _, fact := range sortedKeys(series) {
		for _, p := range series[fact] {
			fmt.Fprintf(w, "  %-10d %-12d %11.2fx %15.2fx\n",
				p.Series, p.X, p.Speedup(), p.SpeedupNoOpt())
		}
	}
	fmt.Fprintln(w, "  paper: 79.1x at small dims falling to ~0.5x at 1M-row dims; ~5x gap to not-optimized;")
	fmt.Fprintln(w, "         parity near 250K-row dimensions")
}

// RenderFig12 prints the aggregation microbenchmark (Figure 12).
func RenderFig12(w io.Writer, series map[int][]MicroPoint) {
	fmt.Fprintln(w, "Figure 12 — Castle aggregation speedup vs number of unique groups")
	fmt.Fprintf(w, "  %-10s %-12s %12s\n", "rows", "groups", "speedup")
	for _, rows := range sortedKeys(series) {
		for _, p := range series[rows] {
			fmt.Fprintf(w, "  %-10d %-12d %11.2fx\n", p.Series, p.X, p.Speedup())
		}
	}
	fmt.Fprintln(w, "  paper: 62.8x at 10 groups falling through ~1x near 5K groups to 0.2-0.3x at 1M groups")
}

// RenderSelection prints the §7.1 selection sweep.
func RenderSelection(w io.Writer, points []MicroPoint) {
	fmt.Fprintln(w, "Selection microbenchmark (§7.1) — equality predicate, bitmask output")
	fmt.Fprintf(w, "  %-12s %-14s %12s\n", "rows", "selectivity", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "  %-12d %13d%% %11.2fx\n", p.X, p.Series, p.Speedup())
	}
	fmt.Fprintln(w, "  paper: 13x-22x, increasing with input size and selectivity")
}

// RenderMKSBuffer prints the §6.1 buffer sweep.
func RenderMKSBuffer(w io.Writer, points []MKSBufferPoint) {
	fmt.Fprintln(w, "MKS buffer sensitivity (§6.1) — SSB total, relative to the 512 B buffer")
	for _, p := range points {
		fmt.Fprintf(w, "  %5d B: %.2fx relative (total %d cycles)\n", p.BufferBytes, p.Relative, p.TotalCycles)
	}
	fmt.Fprintln(w, "  paper: 64 B = 0.8x, 512 B = 1x, 2 KB = 2.0x")
}

// RenderDataMovement prints the §6.3 comparison.
func RenderDataMovement(w io.Writer, d DataMovement) {
	fmt.Fprintln(w, "Data movement (§6.3) — bytes moved to/from DRAM across the 13 SSB queries")
	fmt.Fprintf(w, "  baseline: %d bytes, Castle: %d bytes, ratio %.2fx (paper: 1.51x)\n",
		d.BaselineBytes, d.CastleBytes, d.Ratio())
}

// RenderFusion prints the §7.4 fusion ablation.
func RenderFusion(w io.Writer, points []FusionAblation) {
	fmt.Fprintln(w, "Operator fusion ablation (§7.4) — cost of materializing masks between operators")
	for _, p := range points {
		fmt.Fprintf(w, "  Q%-3d fused %12d cycles, unfused %12d cycles (%.2fx penalty)\n",
			p.Num, p.FusedCycles, p.SplitCycles, p.Penalty())
	}
}

// RenderABADiscovery prints the §5.1 discovery-mode ablation.
func RenderABADiscovery(w io.Writer, points []ABADiscoveryAblation) {
	fmt.Fprintln(w, "ABA bitwidth source ablation (§5.1) — DB statistics vs embedded discovery")
	for _, p := range points {
		fmt.Fprintf(w, "  Q%-3d stats-provided %12d cycles, embedded discovery %12d cycles (%.3fx)\n",
			p.Num, p.StatsCycles, p.DiscoveryCycles,
			float64(p.DiscoveryCycles)/float64(p.StatsCycles))
	}
}

// RenderTable1 prints the associative cost model (Table 1).
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — associative operation cost model (CSB steps for n-bit operands)")
	fmt.Fprintf(w, "  %-24s %-12s %10s %10s %10s %10s\n", "instruction", "mode", "n=4", "n=8", "n=16", "n=32")
	rows := []struct {
		name string
		op   isa.Op
	}{
		{"vv add", isa.OpVAddVV},
		{"vv subtraction", isa.OpVSubVV},
		{"vv multiplication", isa.OpVMulVV},
		{"vv reduction sum", isa.OpVRedSum},
		{"vv logical and", isa.OpVAndVV},
		{"vv logical or", isa.OpVOrVV},
		{"vv logical xor", isa.OpVXorVV},
		{"vs equality (search)", isa.OpVMSeqVX},
		{"vv equality", isa.OpVMSeqVV},
		{"vv inequality", isa.OpVMSltVV},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %-12s", r.name, r.op.ComputeMode())
		for _, n := range []int{4, 8, 16, 32} {
			fmt.Fprintf(w, " %10d", isa.Steps(r.op, n))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  CAM-mode search (ADL, §5.2): %d steps regardless of width\n", isa.SearchStepsCAM)
	fmt.Fprintf(w, "  vmks (§5.3): M + numkeys + 2 (CSB side for 128 keys: %d)\n", isa.VMKSSteps(128))
}

// RenderTable2 prints the experimental configuration (Table 2).
func RenderTable2(w io.Writer) {
	capeCfg := cape.DefaultConfig().WithEnhancements()
	cpuCfg := baseline.DefaultConfig()
	fmt.Fprintln(w, "Table 2 — experimental setup")
	fmt.Fprintf(w, "  CAPE:     %v\n", capeCfg)
	fmt.Fprintf(w, "  Memory:   %v\n", capeCfg.Mem)
	fmt.Fprintf(w, "  Baseline: %v\n", cpuCfg)
}

// Fig5Query builds the Figure 5 worked example: a 6M-row fact with a
// dimension filtering to 3K rows (join fraction 1/30 -> 200K intermediate)
// and a 20K-row unfiltered dimension.
func Fig5Query() (*plan.Query, *stats.Catalog) {
	db := storage.NewDatabase()

	const d1Rows = 90000
	d1Key := make([]uint32, d1Rows)
	d1Attr := make([]uint32, d1Rows)
	for i := range d1Key {
		d1Key[i] = uint32(i)
		d1Attr[i] = uint32(i % 30)
	}
	d1 := storage.NewTable("d1")
	d1.AddIntColumn("d1_key", d1Key)
	d1.AddIntColumn("d1_attr", d1Attr)
	db.Add(d1)

	const d2Rows = 20000
	d2Key := make([]uint32, d2Rows)
	for i := range d2Key {
		d2Key[i] = uint32(i)
	}
	d2 := storage.NewTable("d2")
	d2.AddIntColumn("d2_key", d2Key)
	db.Add(d2)

	const fRows = 6000000
	c1 := make([]uint32, fRows)
	c2 := make([]uint32, fRows)
	rev := make([]uint32, fRows)
	for i := range c1 {
		c1[i] = uint32(i % d1Rows)
		c2[i] = uint32(i % d2Rows)
	}
	f := storage.NewTable("fact")
	f.AddIntColumn("f_c1", c1)
	f.AddIntColumn("f_c2", c2)
	f.AddIntColumn("f_rev", rev)
	db.Add(f)

	q := mustBind(db, `SELECT SUM(f_rev) FROM fact, d1, d2
		WHERE f_c1 = d1_key AND f_c2 = d2_key AND d1_attr = 0`)
	return q, stats.Collect(db)
}

func sortedKeys(m map[int][]MicroPoint) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// RenderSuiteSummary prints the per-query cycles and shapes table used by
// the CLI's default output.
func RenderSuiteSummary(w io.Writer, sf float64, results []QueryResult) {
	fmt.Fprintf(w, "SSB suite at SF=%.2f (cycles at 2.7 GHz; speedups vs AVX-512 baseline)\n", sf)
	fmt.Fprintf(w, "  %-4s %-6s %14s | %9s %9s %9s %9s %9s | %s\n",
		"Q", "flight", "baseline", "ops", "+QO", "+ADL", "+MKS", "+ABA", "plan")
	for _, q := range results {
		fmt.Fprintf(w, "  %-4d %-6s %14d | %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx | %v\n",
			q.Num, q.Flight, q.BaselineCycles,
			q.Speedup(TierOps), q.Speedup(TierQO), q.Speedup(TierADL),
			q.Speedup(TierMKS), q.Speedup(TierABA), q.Tiers[TierABA].PlanShape)
	}
	fmt.Fprintf(w, "  geomean: %.2fx %.2fx %.2fx %.2fx %.2fx\n",
		GeoMean(results, TierOps), GeoMean(results, TierQO), GeoMean(results, TierADL),
		GeoMean(results, TierMKS), GeoMean(results, TierABA))
	fmt.Fprintln(w, strings.Repeat("-", 100))
}

// RenderCodebases prints the §4.1 reference-codebase validation.
func RenderCodebases(w io.Writer, c CodebaseComparison) {
	fmt.Fprintln(w, "Reference codebases (§4.1) — scalar vs AVX-512 vectorized, SSB total")
	fmt.Fprintf(w, "  scalar: %d cycles, AVX-512: %d cycles -> vectorized is %.2fx faster\n",
		c.ScalarCycles, c.AVXCycles, c.Ratio())
	fmt.Fprintln(w, "  paper: scalar = 2.1x MonetDB, AVX-512 = 3.8x MonetDB -> ~1.8x apart")
}

// RenderPower prints the §6.1 power/energy comparison.
func RenderPower(w io.Writer, points []PowerComparison) {
	fmt.Fprintln(w, "Power & energy (§6.1) — CAPE TDP vs baseline TDP, per-query energy")
	fmt.Fprintf(w, "  CAPE TDP %.2f W vs baseline %.2f W (ratio %.2fx; paper: 16.39 W, 5.63 W, 'less than 3x')\n",
		power.CAPETDPWatts(), power.BaselineTDPWatts, power.TDPRatio())
	for _, p := range points {
		fmt.Fprintf(w, "  Q%-3d %v\n", p.Num, p.Comparison)
	}
}

// RenderPIM prints the §8 future-work exploration.
func RenderPIM(w io.Writer, points []PIMPoint) {
	fmt.Fprintln(w, "PIM exploration (§8 future work) — SRAM CAPE vs in-DRAM CAPE (3x slower steps, 8x load bandwidth)")
	for _, p := range points {
		verdict := "SRAM wins"
		if p.Ratio() > 1 {
			verdict = "PIM wins"
		}
		fmt.Fprintf(w, "  Q%-3d SRAM %12d cycles, PIM %12d cycles (%.2fx, %s)\n",
			p.Num, p.SRAMCycles, p.PIMCycles, p.Ratio(), verdict)
	}
	fmt.Fprintln(w, "  load-bound queries benefit from internal bandwidth; search-bound queries pay the slower arrays")
}

// RenderPerJoin prints the §7.2 per-join analysis.
func RenderPerJoin(w io.Writer, num int, points []PerJoinPoint, overall float64) {
	fmt.Fprintf(w, "Per-join speedups within SSB query %d (§7.2)\n", num)
	for i, p := range points {
		fmt.Fprintf(w, "  join %d (%s): Castle %d cycles, baseline %d cycles -> %.1fx\n",
			i+1, p.Dim, p.CastleCycles, p.CPUCycles, p.Speedup())
	}
	fmt.Fprintf(w, "  overall query speedup: %.1fx\n", overall)
	fmt.Fprintln(w, "  paper (query 10): 2.4x, 56x, 77x per join; 16x overall — each probe-side size differs")
}

// RenderOrderSensitivity prints the §3.4 robustness result.
func RenderOrderSensitivity(w io.Writer, num int, points []OrderSensitivity) {
	fmt.Fprintf(w, "Join-order sensitivity of executed cycles, SSB query %d (§3.4)\n", num)
	for _, p := range points {
		fmt.Fprintf(w, "  %-11v best %12d cycles, worst %12d cycles (spread %.2fx)\n",
			p.Shape, p.BestCycles, p.Worst, p.Spread())
	}
	fmt.Fprintln(w, "  paper: a right-deep plan's cost is independent of join order, so bad cardinality")
	fmt.Fprintln(w, "  estimates cannot produce a bad right-deep plan; left-deep plans have no such safety")
}
