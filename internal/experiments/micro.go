package experiments

import (
	"fmt"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/stats"
	"castle/internal/storage"
)

// MicroPoint is one point of a microbenchmark sweep.
type MicroPoint struct {
	// Sweep coordinates (meaning depends on the benchmark).
	X, Series int
	// CastleCycles / BaselineCycles at the point; CastleNoOptCycles is the
	// Figure 11 dashed line (no §5 microarchitectural optimizations).
	CastleCycles      int64
	CastleNoOptCycles int64
	BaselineCycles    int64
	// HybridCycles is the dynamically routed engine's cost (0 when the
	// sweep does not evaluate the hybrid), and HybridDevice names its
	// choice.
	HybridCycles int64
	HybridDevice string
}

// HybridSpeedup is baseline/hybrid.
func (p MicroPoint) HybridSpeedup() float64 {
	if p.HybridCycles == 0 {
		return 0
	}
	return float64(p.BaselineCycles) / float64(p.HybridCycles)
}

// Speedup is baseline/castle.
func (p MicroPoint) Speedup() float64 {
	if p.CastleCycles == 0 {
		return 0
	}
	return float64(p.BaselineCycles) / float64(p.CastleCycles)
}

// SpeedupNoOpt is baseline/castle without the §5 optimizations.
func (p MicroPoint) SpeedupNoOpt() float64 {
	if p.CastleNoOptCycles == 0 {
		return 0
	}
	return float64(p.BaselineCycles) / float64(p.CastleNoOptCycles)
}

// microDB builds a two-table star database for the join and aggregation
// microbenchmarks. Fact foreign keys are uniform over the dimension keys.
func microDB(factRows, dimRows int, seed uint64) *storage.Database {
	db := storage.NewDatabase()

	dimKey := make([]uint32, dimRows)
	for i := range dimKey {
		dimKey[i] = uint32(i + 1)
	}
	dim := storage.NewTable("dim")
	dim.AddIntColumn("d_key", dimKey)
	db.Add(dim)

	r := microRNG(seed)
	fk := make([]uint32, factRows)
	val := make([]uint32, factRows)
	for i := range fk {
		fk[i] = uint32(1 + r.intn(dimRows))
		val[i] = uint32(r.intn(1000))
	}
	fact := storage.NewTable("fact")
	fact.AddIntColumn("f_key", fk)
	fact.AddIntColumn("f_val", val)
	db.Add(fact)
	return db
}

type microRand struct{ s uint64 }

func microRNG(seed uint64) *microRand { return &microRand{s: seed | 1} }

func (r *microRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *microRand) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// JoinMicro reproduces Figure 11: a semi-join of fact and dimension with
// the dimension size swept. Series = fact rows; X = dimension rows. The
// optimized Castle uses the full §5 feature set; the non-optimized Castle
// is unmodified CAPE (GP-mode searches, no vmks); both use the AP-aware
// plan. The baseline is the optimized hash semi-join.
func JoinMicro(factRows int, dimRows []int) []MicroPoint {
	out := make([]MicroPoint, 0, len(dimRows))
	for _, dr := range dimRows {
		db := microDB(factRows, dr, uint64(factRows)*31+uint64(dr))
		cat := stats.Collect(db)
		q := mustBind(db, `SELECT COUNT(f_val) FROM fact, dim WHERE f_key = d_key`)
		p, err := optimizer.Optimize(q, cat, 32768)
		if err != nil {
			panic(err)
		}

		run := func(cfg cape.Config) (int64, *exec.Result) {
			eng := cape.New(cfg)
			res := exec.NewCastle(eng, cat, exec.DefaultCastleOptions()).Run(p, db)
			return eng.Stats().TotalCycles(), res
		}
		opt, optRes := run(cape.DefaultConfig().WithEnhancements())
		noopt, nooptRes := run(cape.DefaultConfig())

		cpu := baseline.New(baseline.DefaultConfig())
		cpuRes := exec.NewCPUExec(cpu).Run(q, db)

		ref := exec.Reference(q, db)
		if !ref.Equal(optRes) || !ref.Equal(nooptRes) || !ref.Equal(cpuRes) {
			panic(fmt.Sprintf("join micro: result mismatch at fact=%d dim=%d", factRows, dr))
		}
		out = append(out, MicroPoint{
			X: dr, Series: factRows,
			CastleCycles:      opt,
			CastleNoOptCycles: noopt,
			BaselineCycles:    cpu.Cycles(),
		})
	}
	return out
}

// aggMicroDB builds a single-table database with a controlled number of
// distinct groups.
func aggMicroDB(rows, groups int, seed uint64) *storage.Database {
	db := storage.NewDatabase()
	r := microRNG(seed)
	g := make([]uint32, rows)
	v := make([]uint32, rows)
	for i := range g {
		g[i] = uint32(r.intn(groups))
		v[i] = uint32(r.intn(100))
	}
	t := storage.NewTable("fact")
	t.AddIntColumn("f_group", g)
	t.AddIntColumn("f_val", v)
	db.Add(t)
	return db
}

// AggregationMicro reproduces Figure 12: a grouped sum with the number of
// unique groups swept. Series = input rows; X = groups.
func AggregationMicro(rows int, groups []int) []MicroPoint {
	out := make([]MicroPoint, 0, len(groups))
	for _, g := range groups {
		db := aggMicroDB(rows, g, uint64(rows)*7+uint64(g))
		cat := stats.Collect(db)
		q := mustBind(db, `SELECT f_group, SUM(f_val) FROM fact GROUP BY f_group`)
		p, err := optimizer.Optimize(q, cat, 32768)
		if err != nil {
			panic(err)
		}

		eng := cape.New(cape.DefaultConfig().WithEnhancements())
		castleRes := exec.NewCastle(eng, cat, exec.DefaultCastleOptions()).Run(p, db)

		cpu := baseline.New(baseline.DefaultConfig())
		cpuRes := exec.NewCPUExec(cpu).Run(q, db)

		if !castleRes.Equal(cpuRes) {
			panic(fmt.Sprintf("aggregation micro: result mismatch at rows=%d groups=%d", rows, g))
		}

		// The hybrid router (§7.3: "such aggregates are better evaluated
		// on the CPU") picks per point.
		hybrid := exec.NewDefaultHybrid(cape.DefaultConfig().WithEnhancements(), cat)
		hybridRes, dev := hybrid.Run(p, db)
		if !hybridRes.Equal(cpuRes) {
			panic("aggregation micro: hybrid result mismatch")
		}
		out = append(out, MicroPoint{
			X: g, Series: rows,
			CastleCycles:   eng.Stats().TotalCycles(),
			BaselineCycles: cpu.Cycles(),
			HybridCycles:   hybrid.Cycles(dev),
			HybridDevice:   dev.String(),
		})
	}
	return out
}

// SelectionMicro reproduces the §7.1 sweep: an equality selection over a
// 32-bit column, varying input size and selectivity. X = rows; Series =
// selectivity in percent. Both engines produce a bitmask.
func SelectionMicro(rows []int, selectivityPct []int) []MicroPoint {
	var out []MicroPoint
	for _, n := range rows {
		for _, sel := range selectivityPct {
			// A column where `value == 0` matches sel% of rows.
			r := microRNG(uint64(n)*13 + uint64(sel))
			col := make([]uint32, n)
			for i := range col {
				if r.intn(100) < sel {
					col[i] = 0
				} else {
					col[i] = uint32(1 + r.intn(1000))
				}
			}

			// Castle: per-partition load + search, mask written back.
			cfg := cape.DefaultConfig().WithEnhancements()
			eng := cape.New(cfg)
			eng.SetLayout(cape.CAMMode)
			matches := 0
			for base := 0; base < n; base += cfg.MAXVL {
				vl := n - base
				if vl > cfg.MAXVL {
					vl = cfg.MAXVL
				}
				eng.SetVL(vl)
				eng.Load(0, col[base:base+vl], 0)
				m := eng.Search(0, 0)
				matches += m.Count()
				eng.ChargeStreamWrite(int64((vl + 7) / 8)) // result bitmask
				eng.Scalar(6)
			}

			cpu := baseline.New(baseline.DefaultConfig())
			cm := cpu.SelectionScan(col, func(v uint32) bool { return v == 0 })
			if cm.Count() != matches {
				panic("selection micro: result mismatch")
			}
			out = append(out, MicroPoint{
				X: n, Series: sel,
				CastleCycles:   eng.Stats().TotalCycles(),
				BaselineCycles: cpu.Cycles(),
			})
		}
	}
	return out
}

func mustBind(db *storage.Database, qsql string) *plan.Query {
	stmt, err := sql.Parse(qsql)
	if err != nil {
		panic(err)
	}
	q, err := plan.Bind(stmt, db)
	if err != nil {
		panic(err)
	}
	return q
}
