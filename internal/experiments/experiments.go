// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 1 waterfall, the per-query speedups of Figures 6
// and 10, the Figure 7 CSB cycle breakdown, the Figure 5 plan-shape costs,
// the join/aggregation/selection microbenchmarks of Section 7 (Figures 11
// and 12), the MKS buffer sweep and data-movement comparison of Section 6,
// and the configuration/cost-model tables (Tables 1 and 2).
//
// Experiments report speedups (CAPE cycles vs baseline cycles at the same
// 2.7 GHz clock); EXPERIMENTS.md records these against the paper's values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/isa"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

// Tier identifies a cumulative Castle configuration tier, matching the
// waterfall structure of Figures 1, 6 and 10.
type Tier int

// Tiers in waterfall order.
const (
	// TierOps: CAPE database operators only — unmodified CAPE, traditional
	// (left-deep) query optimization.
	TierOps Tier = iota
	// TierQO: + CAPE-aware query optimization (right-deep/zig-zag shapes).
	TierQO
	// TierADL: + adaptive data layout (§5.2).
	TierADL
	// TierMKS: + multi-key search (§5.3).
	TierMKS
	// TierABA: + adaptive bitwidth arithmetic (§5.1) — the full system.
	TierABA
	NumTiers
)

func (t Tier) String() string {
	switch t {
	case TierOps:
		return "CAPE operators"
	case TierQO:
		return "+query optimization"
	case TierADL:
		return "+ADL"
	case TierMKS:
		return "+MKS"
	case TierABA:
		return "+ABA"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// config returns the CAPE configuration for a tier.
func (t Tier) config(maxvl int) cape.Config {
	cfg := cape.DefaultConfig()
	cfg.MAXVL = maxvl
	switch t {
	case TierOps, TierQO:
	case TierADL:
		cfg.EnableADL = true
	case TierMKS:
		cfg.EnableADL, cfg.EnableMKS = true, true
	case TierABA:
		cfg.EnableADL, cfg.EnableMKS, cfg.EnableABA = true, true, true
	}
	return cfg
}

// Runner executes experiments against one generated SSB database.
type Runner struct {
	SF    float64
	MAXVL int
	DB    *storage.Database
	Cat   *stats.Catalog
}

// NewRunner generates the SSB database at the given scale factor. MAXVL
// defaults to the paper's 32,768.
func NewRunner(sf float64) *Runner {
	db := ssb.Generate(ssb.Config{SF: sf, Seed: 3527435}) // the paper's DOI suffix
	return &Runner{SF: sf, MAXVL: 32768, DB: db, Cat: stats.Collect(db)}
}

// QueryRun is the outcome of one SSB query at one tier.
type QueryRun struct {
	Cycles     int64
	CSBByClass [isa.NumClasses]int64
	BytesMoved int64
	PlanShape  plan.Shape
	Searches   int64 // optimizer estimate
}

// QueryResult aggregates one query across the baseline and all tiers.
type QueryResult struct {
	Num            int
	Flight         string
	BaselineCycles int64
	BaselineBytes  int64
	Tiers          [NumTiers]QueryRun
}

// Speedup returns baseline/castle cycle ratio at a tier.
func (q QueryResult) Speedup(t Tier) float64 {
	c := q.Tiers[t].Cycles
	if c == 0 {
		return 0
	}
	return float64(q.BaselineCycles) / float64(c)
}

func (r *Runner) bind(qsql string) *plan.Query {
	stmt, err := sql.Parse(qsql)
	if err != nil {
		panic(err)
	}
	q, err := plan.Bind(stmt, r.DB)
	if err != nil {
		panic(err)
	}
	return q
}

// planFor picks the physical plan a tier's optimizer would emit: TierOps
// uses the traditional left-deep shape; all others use the AP-aware
// optimizer.
func (r *Runner) planFor(q *plan.Query, t Tier) *plan.Physical {
	if t == TierOps {
		p, err := optimizer.BestWithShape(q, r.Cat, r.MAXVL, plan.LeftDeep)
		if err == nil {
			return p
		}
		// Joinless queries have a single trivial plan.
	}
	p, err := optimizer.Optimize(q, r.Cat, r.MAXVL)
	if err != nil {
		panic(err)
	}
	return p
}

// RunQueryTier executes one SSB query at one tier and returns its run
// metrics together with the result relation (for cross-checking).
func (r *Runner) RunQueryTier(num int, t Tier) (QueryRun, *exec.Result) {
	q := r.bind(querySQL(num))
	p := r.planFor(q, t)
	eng := cape.New(t.config(r.MAXVL))
	castle := exec.NewCastle(eng, r.Cat, exec.DefaultCastleOptions())
	res := castle.Run(p, r.DB)
	st := eng.Stats()
	return QueryRun{
		Cycles:     st.TotalCycles(),
		CSBByClass: st.CSBCyclesByClass,
		BytesMoved: eng.Mem().BytesMoved(),
		PlanShape:  p.Shape(),
		Searches:   p.EstimatedSearches,
	}, res
}

// RunBaseline executes one SSB query on the AVX-512 baseline.
func (r *Runner) RunBaseline(num int) (int64, int64, *exec.Result) {
	q := r.bind(querySQL(num))
	cpu := baseline.New(baseline.DefaultConfig())
	res := exec.NewCPUExec(cpu).Run(q, r.DB)
	return cpu.Cycles(), cpu.Mem().BytesMoved(), res
}

// RunQuery executes one query across the baseline and every tier,
// verifying all engines agree.
func (r *Runner) RunQuery(num int) QueryResult {
	meta := queryMeta(num)
	out := QueryResult{Num: num, Flight: meta.Flight}
	bc, bb, bres := r.RunBaseline(num)
	out.BaselineCycles, out.BaselineBytes = bc, bb

	ref := exec.Reference(r.bind(meta.SQL), r.DB)
	if !ref.Equal(bres) {
		panic(fmt.Sprintf("experiments: %s baseline result mismatch", meta.Flight))
	}
	for t := Tier(0); t < NumTiers; t++ {
		run, res := r.RunQueryTier(num, t)
		if !ref.Equal(res) {
			panic(fmt.Sprintf("experiments: %s tier %v result mismatch", meta.Flight, t))
		}
		out.Tiers[t] = run
	}
	return out
}

// RunSuite executes all 13 queries across all tiers. Queries run in
// parallel — every run owns its engine instances and the database is
// read-only, so results and cycle accounting are unaffected.
func (r *Runner) RunSuite() []QueryResult {
	out := make([]QueryResult, 13)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for n := 1; n <= 13; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[n-1] = r.RunQuery(n)
		}(n)
	}
	wg.Wait()
	return out
}

// GeoMean computes the geometric mean of per-query speedups at a tier.
func GeoMean(results []QueryResult, t Tier) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range results {
		sum += math.Log(q.Speedup(t))
	}
	return math.Exp(sum / float64(len(results)))
}

func querySQL(num int) string { return queryMeta(num).SQL }

func queryMeta(num int) ssb.Query {
	for _, q := range ssb.Queries() {
		if q.Num == num {
			return q
		}
	}
	panic(fmt.Sprintf("experiments: no SSB query %d", num))
}
