package experiments

import (
	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/power"
)

// MKSBufferPoint is one buffer size of the §6.1 sensitivity sweep.
type MKSBufferPoint struct {
	BufferBytes int
	// TotalCycles across all 13 SSB queries.
	TotalCycles int64
	// Relative is performance relative to the 512-byte reference buffer
	// (>1 means faster than the 512 B configuration).
	Relative float64
}

// MKSBufferSweep runs the full SSB suite at the ADL+MKS+ABA design point
// for each vmks buffer size (the paper evaluates 64 B, 512 B and 2 KB,
// §6.1) and reports performance relative to 512 B.
func (r *Runner) MKSBufferSweep(sizes []int) []MKSBufferPoint {
	cycles := make([]int64, len(sizes))
	for si, size := range sizes {
		var total int64
		for n := 1; n <= 13; n++ {
			q := r.bind(querySQL(n))
			p := r.planFor(q, TierABA)
			cfg := TierABA.config(r.MAXVL)
			cfg.MKSBufferBytes = size
			eng := cape.New(cfg)
			opts := exec.DefaultCastleOptions()
			// The vmks threshold follows the buffer: batches below one
			// cacheline of keys never use vmks (§6.2).
			exec.NewCastle(eng, r.Cat, opts).Run(p, r.DB)
			total += eng.Stats().TotalCycles()
		}
		cycles[si] = total
	}
	var ref int64
	for si, size := range sizes {
		if size == 512 {
			ref = cycles[si]
		}
	}
	if ref == 0 && len(cycles) > 0 {
		ref = cycles[0]
	}
	out := make([]MKSBufferPoint, len(sizes))
	for si, size := range sizes {
		out[si] = MKSBufferPoint{
			BufferBytes: size,
			TotalCycles: cycles[si],
			Relative:    float64(ref) / float64(cycles[si]),
		}
	}
	return out
}

// DataMovement reports total bytes moved by the baseline and by Castle
// (full design point) across the 13 SSB queries (§6.3; the paper measures
// the baseline transferring 1.51x more bytes than Castle).
type DataMovement struct {
	BaselineBytes int64
	CastleBytes   int64
}

// Ratio is baseline bytes over Castle bytes.
func (d DataMovement) Ratio() float64 {
	if d.CastleBytes == 0 {
		return 0
	}
	return float64(d.BaselineBytes) / float64(d.CastleBytes)
}

// DataMovementSweep measures §6.3 from a completed suite run.
func DataMovementSweep(results []QueryResult) DataMovement {
	var d DataMovement
	for _, q := range results {
		d.BaselineBytes += q.BaselineBytes
		d.CastleBytes += q.Tiers[TierABA].BytesMoved
	}
	return d
}

// FusionAblation compares fused and unfused execution of one query (§7.4).
type FusionAblation struct {
	Num                      int
	FusedCycles, SplitCycles int64
}

// Penalty is the slowdown from disabling fusion.
func (f FusionAblation) Penalty() float64 {
	return float64(f.SplitCycles) / float64(f.FusedCycles)
}

// RunFusionAblation measures the fusion benefit for every SSB query at the
// full design point.
func (r *Runner) RunFusionAblation() []FusionAblation {
	out := make([]FusionAblation, 0, 13)
	for n := 1; n <= 13; n++ {
		q := r.bind(querySQL(n))
		p := r.planFor(q, TierABA)
		cfg := TierABA.config(r.MAXVL)

		engF := cape.New(cfg)
		exec.NewCastle(engF, r.Cat, exec.CastleOptions{Fusion: true}).Run(p, r.DB)
		engS := cape.New(cfg)
		exec.NewCastle(engS, r.Cat, exec.CastleOptions{Fusion: false}).Run(p, r.DB)

		out = append(out, FusionAblation{
			Num:         n,
			FusedCycles: engF.Stats().TotalCycles(),
			SplitCycles: engS.Stats().TotalCycles(),
		})
	}
	return out
}

// ABADiscoveryAblation compares ABA with database-provided column widths
// against ABA with embedded per-instruction discovery (§5.1's two options)
// on the arithmetic-heavy query flight 1.
type ABADiscoveryAblation struct {
	Num                          int
	StatsCycles, DiscoveryCycles int64
}

// RunABADiscoveryAblation measures §5.1's discovery modes on queries 1-3.
func (r *Runner) RunABADiscoveryAblation() []ABADiscoveryAblation {
	out := make([]ABADiscoveryAblation, 0, 3)
	for n := 1; n <= 3; n++ {
		q := r.bind(querySQL(n))
		p := r.planFor(q, TierABA)
		cfg := TierABA.config(r.MAXVL)

		engStats := cape.New(cfg)
		exec.NewCastle(engStats, r.Cat, exec.DefaultCastleOptions()).Run(p, r.DB)
		engDisc := cape.New(cfg)
		// nil catalog: widths unknown, the instruction embeds discovery.
		exec.NewCastle(engDisc, nil, exec.DefaultCastleOptions()).Run(p, r.DB)

		out = append(out, ABADiscoveryAblation{
			Num:             n,
			StatsCycles:     engStats.Stats().TotalCycles(),
			DiscoveryCycles: engDisc.Stats().TotalCycles(),
		})
	}
	return out
}

// CodebaseComparison reproduces the §4.1 reference-codebase validation:
// the AVX-512 vectorized codebase versus the scalar codebase (compiler
// auto-vectorization disabled) on the full SSB suite. The paper reports
// the scalar codebase at 2.1x MonetDB and the AVX-512 one at 3.8x MonetDB,
// i.e. the vectorized codebase is ~1.8x faster than the scalar one.
type CodebaseComparison struct {
	ScalarCycles int64
	AVXCycles    int64
}

// Ratio returns scalar cycles over AVX-512 cycles.
func (c CodebaseComparison) Ratio() float64 {
	if c.AVXCycles == 0 {
		return 0
	}
	return float64(c.ScalarCycles) / float64(c.AVXCycles)
}

// RunCodebaseComparison executes the 13 SSB queries on both baseline
// configurations.
func (r *Runner) RunCodebaseComparison() CodebaseComparison {
	var out CodebaseComparison
	for n := 1; n <= 13; n++ {
		q := r.bind(querySQL(n))

		avx := baseline.New(baseline.DefaultConfig())
		resA := exec.NewCPUExec(avx).Run(q, r.DB)
		out.AVXCycles += avx.Cycles()

		scalar := baseline.New(baseline.ScalarConfig())
		resS := exec.NewCPUExec(scalar).Run(q, r.DB)
		out.ScalarCycles += scalar.Cycles()

		if !resA.Equal(resS) {
			panic("experiments: scalar and AVX codebases disagree")
		}
	}
	return out
}

// PowerComparison reproduces the §6.1 energy argument for one query: CAPE
// runs under 3x the baseline's TDP but finishes an order of magnitude
// sooner, so it wins on energy.
type PowerComparison struct {
	Num        int
	Comparison power.Comparison
}

// RunPowerComparison runs one SSB query at the full design point and
// converts both engines' cycles into energy.
func (r *Runner) RunPowerComparison(num int) PowerComparison {
	q := r.bind(querySQL(num))
	p := r.planFor(q, TierABA)
	eng := cape.New(TierABA.config(r.MAXVL))
	exec.NewCastle(eng, r.Cat, exec.DefaultCastleOptions()).Run(p, r.DB)

	cpu := baseline.New(baseline.DefaultConfig())
	exec.NewCPUExec(cpu).Run(q, r.DB)

	m := power.DefaultModel()
	return PowerComparison{
		Num:        num,
		Comparison: m.Compare(eng.Stats(), eng.Config().EnableADL, cpu.Cycles()),
	}
}

// PIMPoint compares the SRAM CAPE against a processing-in-memory flavor
// for one query (the §8 future-work exploration: slower in-DRAM arrays,
// much higher internal load bandwidth).
type PIMPoint struct {
	Num                   int
	SRAMCycles, PIMCycles int64
}

// Ratio returns SRAM/PIM (>1 means the PIM flavor wins).
func (p PIMPoint) Ratio() float64 { return float64(p.SRAMCycles) / float64(p.PIMCycles) }

// RunPIMStudy executes the SSB suite on both CAPE flavors.
func (r *Runner) RunPIMStudy() []PIMPoint {
	out := make([]PIMPoint, 0, 13)
	for n := 1; n <= 13; n++ {
		q := r.bind(querySQL(n))
		p := r.planFor(q, TierABA)

		sram := cape.New(TierABA.config(r.MAXVL))
		resS := exec.NewCastle(sram, r.Cat, exec.DefaultCastleOptions()).Run(p, r.DB)

		pimCfg := cape.PIMConfig()
		pimCfg.MAXVL = r.MAXVL
		pim := cape.New(pimCfg)
		resP := exec.NewCastle(pim, r.Cat, exec.DefaultCastleOptions()).Run(p, r.DB)

		if !resS.Equal(resP) {
			panic("experiments: PIM flavor changed results")
		}
		out = append(out, PIMPoint{
			Num:        n,
			SRAMCycles: sram.Stats().TotalCycles(),
			PIMCycles:  pim.Stats().TotalCycles(),
		})
	}
	return out
}

// PerJoinPoint reports the speedup of one join edge within an end-to-end
// query (§7.2: "query 10 has three join operations ... speedups of 2.4x,
// 56x and 77x, with an overall query speedup of 16x").
type PerJoinPoint struct {
	Dim          string
	CastleCycles int64
	CPUCycles    int64
}

// Speedup is baseline join cycles over Castle join cycles.
func (p PerJoinPoint) Speedup() float64 {
	if p.CastleCycles == 0 {
		return 0
	}
	return float64(p.CPUCycles) / float64(p.CastleCycles)
}

// PerJoinStudy runs one query at the full design point and attributes
// cycles to each join edge on both engines. The second return value is the
// overall query speedup.
func (r *Runner) RunPerJoinStudy(num int) ([]PerJoinPoint, float64) {
	q := r.bind(querySQL(num))
	p := r.planFor(q, TierABA)

	eng := cape.New(TierABA.config(r.MAXVL))
	castle := exec.NewCastle(eng, r.Cat, exec.DefaultCastleOptions())
	resC := castle.Run(p, r.DB)

	cpu := baseline.New(baseline.DefaultConfig())
	cpuExec := exec.NewCPUExec(cpu)
	resB := cpuExec.Run(q, r.DB)
	if !resC.Equal(resB) {
		panic("experiments: per-join study result mismatch")
	}

	capeJoins := castle.PerJoinCycles()
	cpuJoins := cpuExec.PerJoinCycles()
	out := make([]PerJoinPoint, 0, len(p.Joins))
	for _, j := range p.Joins {
		out = append(out, PerJoinPoint{
			Dim:          j.Dim,
			CastleCycles: capeJoins[j.Dim],
			CPUCycles:    cpuJoins[j.Dim],
		})
	}
	overall := float64(cpu.Cycles()) / float64(eng.Stats().TotalCycles())
	return out, overall
}

// OrderSensitivity reports, for a plan shape, the executed-cycle spread
// across all join orders of that shape — §3.4's robustness claim: a
// right-deep plan's cost does not depend on the join order, so a bad
// cardinality estimate cannot produce a bad right-deep plan, while
// order matters greatly for shapes with left-deep segments.
type OrderSensitivity struct {
	Shape             plan.Shape
	BestCycles, Worst int64
}

// Spread is worst over best executed cycles.
func (o OrderSensitivity) Spread() float64 {
	if o.BestCycles == 0 {
		return 0
	}
	return float64(o.Worst) / float64(o.BestCycles)
}

// RunOrderSensitivity executes every join order of each plan shape for one
// query and measures real cycles (not estimates).
func (r *Runner) RunOrderSensitivity(num int) []OrderSensitivity {
	q := r.bind(querySQL(num))
	byShape := map[plan.Shape]*OrderSensitivity{}
	for _, cand := range optimizer.Enumerate(q, r.Cat, r.MAXVL) {
		phys := &plan.Physical{Query: q, Joins: cand.Joins, Switch: cand.SwitchAt,
			EstimatedSearches: cand.Searches}
		eng := cape.New(TierABA.config(r.MAXVL))
		exec.NewCastle(eng, r.Cat, exec.DefaultCastleOptions()).Run(phys, r.DB)
		cycles := eng.Stats().TotalCycles()

		s := byShape[phys.Shape()]
		if s == nil {
			s = &OrderSensitivity{Shape: phys.Shape(), BestCycles: cycles, Worst: cycles}
			byShape[phys.Shape()] = s
			continue
		}
		if cycles < s.BestCycles {
			s.BestCycles = cycles
		}
		if cycles > s.Worst {
			s.Worst = cycles
		}
	}
	out := make([]OrderSensitivity, 0, len(byShape))
	for _, shape := range []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		if s := byShape[shape]; s != nil {
			out = append(out, *s)
		}
	}
	return out
}
