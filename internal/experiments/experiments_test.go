package experiments

import (
	"bytes"
	"strings"
	"testing"

	"castle/internal/optimizer"
	"castle/internal/plan"
)

// suiteSF is small enough for CI but large enough that plan shapes and tier
// orderings match the paper's direction.
const suiteSF = 0.02

var suiteResults []QueryResult

func suite(t *testing.T) []QueryResult {
	t.Helper()
	if suiteResults == nil {
		r := NewRunner(suiteSF)
		suiteResults = r.RunSuite()
	}
	return suiteResults
}

func TestSuiteRunsAllQueriesAndCrossChecks(t *testing.T) {
	results := suite(t)
	if len(results) != 13 {
		t.Fatalf("suite ran %d queries, want 13", len(results))
	}
	for _, q := range results {
		if q.BaselineCycles <= 0 {
			t.Errorf("%s: no baseline cycles", q.Flight)
		}
		for tier := Tier(0); tier < NumTiers; tier++ {
			if q.Tiers[tier].Cycles <= 0 {
				t.Errorf("%s tier %v: no cycles", q.Flight, tier)
			}
		}
	}
}

// TestWaterfallOrdering asserts the Figure 1 / Figure 10 direction:
// operators-only is a slowdown; each added stage helps (or at worst is
// neutral) at the geomean level.
func TestWaterfallOrdering(t *testing.T) {
	results := suite(t)
	ops := GeoMean(results, TierOps)
	qo := GeoMean(results, TierQO)
	adl := GeoMean(results, TierADL)
	mks := GeoMean(results, TierMKS)
	aba := GeoMean(results, TierABA)

	if ops >= 1 {
		t.Errorf("operators-only geomean = %.2f, paper reports a slowdown (0.3x)", ops)
	}
	if qo <= 1 {
		t.Errorf("+query optimization geomean = %.2f, paper reports 5.3x", qo)
	}
	if qo <= ops {
		t.Errorf("query optimization (%.2f) must improve on operators-only (%.2f)", qo, ops)
	}
	if adl < qo*0.99 {
		t.Errorf("ADL (%.2f) must not regress QO (%.2f)", adl, qo)
	}
	if mks < adl*0.99 {
		t.Errorf("MKS (%.2f) must not regress ADL (%.2f)", mks, adl)
	}
	if aba < mks*0.99 {
		t.Errorf("ABA (%.2f) must not regress MKS (%.2f)", aba, mks)
	}
}

// TestQueryOptimizationPicksNonLeftDeep: §4.2 reports every best plan is
// right-deep or zig-zag.
func TestQueryOptimizationPicksNonLeftDeep(t *testing.T) {
	results := suite(t)
	for _, q := range results {
		if shape := q.Tiers[TierQO].PlanShape; shape == plan.LeftDeep {
			t.Errorf("%s: optimizer picked left-deep; paper reports only right-deep and zig-zag winners", q.Flight)
		}
	}
}

// TestFig7SearchDominatesJoinQueries: §4.3 reports queries 4-13 dominated
// by searches and joins consuming 96%% of all cycles.
func TestFig7SearchDominatesJoinQueries(t *testing.T) {
	results := suite(t)
	for _, q := range results {
		if q.Num < 4 {
			continue
		}
		by := q.Tiers[TierQO].CSBByClass
		var total, search int64
		for c, v := range by {
			total += v
			if c == 0 { // isa.ClassSearch
				search += v
			}
		}
		if total == 0 {
			t.Fatalf("%s: no CSB cycles recorded", q.Flight)
		}
		if frac := float64(search) / float64(total); frac < 0.5 {
			t.Errorf("%s: searches are %.0f%% of CSB cycles, paper shows them dominating queries 4-13",
				q.Flight, 100*frac)
		}
	}
}

func TestFig5CostsAndRenderers(t *testing.T) {
	q, cat := Fig5Query()
	est := optimizer.Estimator{Cat: cat}
	d1 := *q.JoinFor("d1")
	d2 := *q.JoinFor("d2")
	order := []plan.JoinEdge{d1, d2}
	ld := optimizer.Cost(q, est, 32768, order, 0)
	rd := optimizer.Cost(q, est, 32768, order, 2)
	zz := optimizer.Cost(q, est, 32768, order, 1)
	if !(zz < rd && rd < ld) {
		t.Fatalf("Figure 5 ordering violated: zz=%d rd=%d ld=%d", zz, rd, ld)
	}

	results := suite(t)
	var buf bytes.Buffer
	RenderFig1(&buf, results)
	RenderFig5(&buf)
	RenderFig6(&buf, results)
	RenderFig7(&buf, results)
	RenderFig10(&buf, results)
	RenderTable1(&buf)
	RenderTable2(&buf)
	RenderDataMovement(&buf, DataMovementSweep(results))
	RenderSuiteSummary(&buf, suiteSF, results)
	for _, want := range []string{"Figure 1", "Figure 5", "Figure 6", "Figure 7", "Figure 10", "Table 1", "Table 2", "geomean"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// TestJoinMicroShape asserts Figure 11's direction: speedup falls as the
// dimension grows, and the optimized Castle beats the unoptimized one.
func TestJoinMicroShape(t *testing.T) {
	points := JoinMicro(200_000, []int{100, 10_000, 100_000})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Speedup() <= points[2].Speedup() {
		t.Errorf("join speedup should fall with dimension size: %.2f vs %.2f",
			points[0].Speedup(), points[2].Speedup())
	}
	for _, p := range points {
		if p.Speedup() < p.SpeedupNoOpt() {
			t.Errorf("dim=%d: optimized Castle (%.2f) should beat non-optimized (%.2f)",
				p.X, p.Speedup(), p.SpeedupNoOpt())
		}
	}
	if points[0].Speedup() < 5 {
		t.Errorf("small-dimension join speedup = %.2f, expected a large win (paper: 79x at SF-scale)",
			points[0].Speedup())
	}
}

// TestAggregationMicroShape asserts Figure 12's direction: a large win at
// few groups, baseline overtaking at very many groups.
func TestAggregationMicroShape(t *testing.T) {
	points := AggregationMicro(500_000, []int{10, 1_000, 200_000})
	if points[0].Speedup() <= 1 {
		t.Errorf("10-group aggregation speedup = %.2f, want >1", points[0].Speedup())
	}
	if points[2].Speedup() >= 1 {
		t.Errorf("200K-group aggregation speedup = %.2f, paper shows baseline winning beyond ~5K groups",
			points[2].Speedup())
	}
	if !(points[0].Speedup() > points[1].Speedup() && points[1].Speedup() > points[2].Speedup()) {
		t.Errorf("speedup should fall monotonically with groups: %.2f, %.2f, %.2f",
			points[0].Speedup(), points[1].Speedup(), points[2].Speedup())
	}
}

// TestSelectionMicroShape asserts §7.1: Castle wins big, more so at higher
// selectivity and larger inputs.
func TestSelectionMicroShape(t *testing.T) {
	points := SelectionMicro([]int{100_000, 2_000_000}, []int{1, 90})
	for _, p := range points {
		if p.Speedup() < 5 {
			t.Errorf("selection speedup at rows=%d sel=%d%% = %.2f, want >5x", p.X, p.Series, p.Speedup())
		}
	}
	// Higher selectivity -> higher speedup at fixed size.
	if points[1].Speedup() <= points[0].Speedup() {
		t.Errorf("selectivity should increase the win: %.2f (90%%) vs %.2f (1%%)",
			points[1].Speedup(), points[0].Speedup())
	}
}

// TestMKSBufferSweepShape asserts §6.1: a sub-cacheline buffer hurts, a
// larger buffer does not.
func TestMKSBufferSweepShape(t *testing.T) {
	r := NewRunner(suiteSF)
	points := r.MKSBufferSweep([]int{64, 512, 2048})
	var p64, p512, p2048 MKSBufferPoint
	for _, p := range points {
		switch p.BufferBytes {
		case 64:
			p64 = p
		case 512:
			p512 = p
		case 2048:
			p2048 = p
		}
	}
	if p512.Relative != 1 {
		t.Fatalf("512B reference relative = %.2f, want 1", p512.Relative)
	}
	if p64.Relative > 1 {
		t.Errorf("64B buffer relative = %.2f, paper shows a slowdown (0.8x)", p64.Relative)
	}
	if p2048.Relative < 1 {
		t.Errorf("2KB buffer relative = %.2f, paper shows a speedup (2.0x)", p2048.Relative)
	}
}

// TestFusionAblationAlwaysHelps: §7.4.
func TestFusionAblationAlwaysHelps(t *testing.T) {
	r := NewRunner(suiteSF)
	for _, p := range r.RunFusionAblation() {
		if p.Penalty() <= 1 {
			t.Errorf("Q%d: fusion penalty %.3f, want >1", p.Num, p.Penalty())
		}
	}
}

// TestABADiscoveryCostsMore: embedded discovery must cost at least as much
// as statistics-provided widths (§5.1).
func TestABADiscoveryCostsMore(t *testing.T) {
	r := NewRunner(suiteSF)
	for _, p := range r.RunABADiscoveryAblation() {
		if p.DiscoveryCycles < p.StatsCycles {
			t.Errorf("Q%d: discovery (%d) cheaper than stats-provided (%d)",
				p.Num, p.DiscoveryCycles, p.StatsCycles)
		}
	}
}

// TestDataMovementDirection: §6.3 — the baseline moves more bytes.
func TestDataMovementDirection(t *testing.T) {
	d := DataMovementSweep(suite(t))
	if d.Ratio() <= 1 {
		t.Errorf("baseline/castle byte ratio = %.2f, paper reports 1.51x", d.Ratio())
	}
}

func TestTierStringsAndConfigs(t *testing.T) {
	for tier := Tier(0); tier < NumTiers; tier++ {
		if tier.String() == "" {
			t.Errorf("tier %d has no name", int(tier))
		}
		cfg := tier.config(1024)
		if cfg.MAXVL != 1024 {
			t.Errorf("tier %v config MAXVL = %d", tier, cfg.MAXVL)
		}
	}
	if Tier(99).String() == "" {
		t.Error("out-of-range tier should still render")
	}
	full := TierABA.config(32768)
	if !full.EnableADL || !full.EnableMKS || !full.EnableABA {
		t.Error("TierABA must enable all enhancements")
	}
	base := TierQO.config(32768)
	if base.EnableADL || base.EnableMKS || base.EnableABA {
		t.Error("TierQO must be unmodified CAPE")
	}
}

func TestQueryMetaPanicsOnBadNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	queryMeta(99)
}

func TestAuxiliaryRenderers(t *testing.T) {
	r := NewRunner(suiteSF)
	var buf bytes.Buffer
	RenderCodebases(&buf, r.RunCodebaseComparison())
	RenderPower(&buf, []PowerComparison{r.RunPowerComparison(4)})
	RenderFusion(&buf, r.RunFusionAblation()[:2])
	RenderABADiscovery(&buf, r.RunABADiscoveryAblation()[:1])
	RenderMKSBuffer(&buf, r.MKSBufferSweep([]int{64, 512}))
	RenderFig11(&buf, map[int][]MicroPoint{100000: JoinMicro(100000, []int{100})})
	RenderFig12(&buf, map[int][]MicroPoint{100000: AggregationMicro(100000, []int{10})})
	RenderSelection(&buf, SelectionMicro([]int{10000}, []int{10}))
	for _, want := range []string{"codebases", "Power", "fusion", "ABA", "MKS buffer", "Figure 11", "Figure 12", "Selection"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestCodebaseComparisonDirection: §4.1 — the vectorized codebase wins.
func TestCodebaseComparisonDirection(t *testing.T) {
	r := NewRunner(suiteSF)
	c := r.RunCodebaseComparison()
	if c.Ratio() <= 1.1 {
		t.Fatalf("AVX-512/scalar ratio = %.2f, want a clear vectorization win (paper ~1.8x)", c.Ratio())
	}
}

// TestPowerComparisonDirection: §6.1 — CAPE wins on energy despite higher
// TDP.
func TestPowerComparisonDirection(t *testing.T) {
	r := NewRunner(suiteSF)
	p := r.RunPowerComparison(4)
	if p.Comparison.EnergyRatioX <= 1 {
		t.Fatalf("energy ratio = %.2f, want CAPE ahead", p.Comparison.EnergyRatioX)
	}
	if p.Comparison.PowerRatioTDPX >= 3 {
		t.Fatalf("TDP ratio = %.2f, paper says under 3x", p.Comparison.PowerRatioTDPX)
	}
}

// TestScaleFactorStability: §4.1 — "we have also used the simulation
// framework to run experiments for scale factors from 0.5 up to 10 and the
// results are similar". At test scale we check two SFs give geomeans
// within 2x of each other at every tier.
func TestScaleFactorStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-SF sweep")
	}
	a := NewRunner(0.02).RunSuite()
	b := NewRunner(0.05).RunSuite()
	for tier := Tier(0); tier < NumTiers; tier++ {
		ga, gb := GeoMean(a, tier), GeoMean(b, tier)
		ratio := ga / gb
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("tier %v geomean unstable across SFs: %.2f vs %.2f", tier, ga, gb)
		}
	}
}

// TestPIMStudyShowsTradeoff: the §8 future-work flavor must help some
// load-bound queries and hurt some search-bound ones — a genuine tradeoff,
// not a dominance.
func TestPIMStudyShowsTradeoff(t *testing.T) {
	r := NewRunner(suiteSF)
	points := r.RunPIMStudy()
	wins, losses := 0, 0
	for _, p := range points {
		if p.Ratio() > 1 {
			wins++
		} else {
			losses++
		}
	}
	if wins == 0 || losses == 0 {
		t.Fatalf("PIM study should show a tradeoff, got %d wins / %d losses", wins, losses)
	}
	var buf bytes.Buffer
	RenderPIM(&buf, points)
	if !strings.Contains(buf.String(), "PIM") {
		t.Fatal("render missing")
	}
}

// TestPerJoinStudy: §7.2 — per-join speedups within one query differ, and
// each join wins on CAPE.
func TestPerJoinStudy(t *testing.T) {
	r := NewRunner(suiteSF)
	points, overall := r.RunPerJoinStudy(10)
	if len(points) != 3 {
		t.Fatalf("Q3.4 has 3 joins, got %d", len(points))
	}
	min, max := points[0].Speedup(), points[0].Speedup()
	for _, p := range points {
		if p.CastleCycles <= 0 || p.CPUCycles <= 0 {
			t.Fatalf("missing attribution: %+v", p)
		}
		if s := p.Speedup(); s < min {
			min = s
		} else if s > max {
			max = s
		}
	}
	if max/min < 1.5 {
		t.Errorf("per-join speedups should differ markedly (paper: 2.4x..77x), got %.1f..%.1f", min, max)
	}
	if overall <= 1 {
		t.Errorf("overall speedup = %.2f", overall)
	}
	var buf bytes.Buffer
	RenderPerJoin(&buf, 10, points, overall)
	if !strings.Contains(buf.String(), "join 1") {
		t.Fatal("render missing")
	}
}

// TestOrderSensitivity: §3.4 — right-deep executed cost is order
// independent; shapes with left-deep segments are order sensitive.
func TestOrderSensitivity(t *testing.T) {
	r := NewRunner(suiteSF)
	points := r.RunOrderSensitivity(11) // Q4.1: four joins
	var rd, ld OrderSensitivity
	for _, p := range points {
		switch p.Shape {
		case plan.RightDeep:
			rd = p
		case plan.LeftDeep:
			ld = p
		}
	}
	if rd.Spread() > 1.001 {
		t.Errorf("right-deep spread = %.3f, §3.4 says cost is order independent", rd.Spread())
	}
	if ld.Spread() < 1.2 {
		t.Errorf("left-deep spread = %.3f, should be order sensitive", ld.Spread())
	}
	var buf bytes.Buffer
	RenderOrderSensitivity(&buf, 11, points)
	if !strings.Contains(buf.String(), "right-deep") {
		t.Fatal("render missing")
	}
}

// TestHybridTracksWinnerInFig12: the dynamic router must stay within a few
// percent of the better engine on both sides of the crossover.
func TestHybridTracksWinnerInFig12(t *testing.T) {
	points := AggregationMicro(300_000, []int{10, 150_000})
	for _, p := range points {
		best := p.Speedup()
		if 1 > best {
			best = 1 // baseline itself
		}
		if p.HybridSpeedup() < best*0.95 {
			t.Errorf("groups=%d: hybrid %.2fx should track the winner (castle %.2fx, cpu 1x, routed %s)",
				p.X, p.HybridSpeedup(), p.Speedup(), p.HybridDevice)
		}
	}
	if points[0].HybridDevice != "CAPE" {
		t.Errorf("10 groups routed to %s, want CAPE", points[0].HybridDevice)
	}
	if points[1].HybridDevice != "CPU" {
		t.Errorf("150K groups routed to %s, want CPU", points[1].HybridDevice)
	}
}
