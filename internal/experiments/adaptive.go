package experiments

// adaptive.go measures what the statistics buy: the misestimate summary
// compares per-operator predicted-vs-actual divergence under the histogram
// estimator against the classic fixed-constant selectivities, and the
// adaptive curve runs every SSB query with the mid-query re-placement
// checkpoint on and off. Both land in the benchmark JSON artifact, so a
// regression in estimation quality is as visible in CI as one in cycles.

import (
	"fmt"
	"math"
	"sort"

	"castle"
	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/telemetry"
)

// DivStat summarizes a sample of symmetric-ratio divergences (100 = exact,
// 200 = off by 2x in either direction).
type DivStat struct {
	Samples int     `json:"samples"`
	MeanPct float64 `json:"mean_divergence_pct"`
	P95Pct  float64 `json:"p95_divergence_pct"`
}

// MisestimateModel is the per-operator divergence summary for one
// estimation model over the 13 SSB queries: overall and split by estimate
// source ("histogram" rows come from collected statistics, "assumed" rows
// from the fixed constants).
type MisestimateModel struct {
	Model    string             `json:"model"` // "histogram" or "fixed"
	Overall  DivStat            `json:"overall"`
	BySource map[string]DivStat `json:"by_source"`
}

func divStat(xs []float64) DivStat {
	if len(xs) == 0 {
		return DivStat{}
	}
	sort.Float64s(xs)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return DivStat{
		Samples: len(xs),
		MeanPct: sum / float64(len(xs)),
		P95Pct:  xs[int(0.95*float64(len(xs)-1))],
	}
}

// MisestimateSummary prices every SSB query's chosen placement twice — once
// from the collected histograms, once from the fixed-constant selectivities
// (CostModel.FixedEstimates) — executes each placement, and summarizes how
// far the per-operator predictions landed from the measured cycles. The
// histogram model earning a lower mean divergence is the quantified payoff
// of statistics-driven planning.
func (r *Runner) MisestimateSummary() []MisestimateModel {
	cfg := TierABA.config(r.MAXVL)
	models := []struct {
		name string
		m    optimizer.CostModel
	}{
		{"histogram", optimizer.DefaultCostModel()},
		{"fixed", func() optimizer.CostModel {
			m := optimizer.DefaultCostModel()
			m.FixedEstimates = true
			return m
		}()},
	}
	var out []MisestimateModel
	for _, mdl := range models {
		var overall []float64
		bySource := make(map[string][]float64)
		for num := 1; num <= 13; num++ {
			q := r.bind(querySQL(num))
			p, err := optimizer.Optimize(q, r.Cat, r.MAXVL)
			if err != nil {
				panic(err)
			}
			pp := optimizer.PlacePlanWith(p, r.Cat, r.MAXVL, mdl.m)
			castleEx := exec.NewCastle(cape.New(cfg), r.Cat, exec.DefaultCastleOptions())
			cpuex := exec.NewCPUExec(baseline.New(baseline.DefaultConfig()))
			x := exec.NewPlaced(castleEx, cpuex, r.Cat)
			if _, err := x.Run(pp, r.DB); err != nil {
				panic(fmt.Sprintf("experiments: misestimate bench Q%d (%s): %v", num, mdl.name, err))
			}
			bd := x.Breakdown()
			cells := pp.EstimateCells()
			tc := make(map[string]telemetry.EstimateCell, len(cells))
			for k, c := range cells {
				tc[k] = telemetry.EstimateCell{Cycles: c.Cycles, Source: c.Source}
			}
			bd.ApplyEstimateCells(tc)
			for _, o := range bd.Operators {
				if !o.Estimated() {
					continue
				}
				div, ok := telemetry.DivergencePct(o.EstCycles, o.Cycles)
				if !ok {
					continue // one-sided zero: no finite ratio to average
				}
				overall = append(overall, div)
				bySource[o.EstSource] = append(bySource[o.EstSource], div)
			}
		}
		mm := MisestimateModel{
			Model:    mdl.name,
			Overall:  divStat(overall),
			BySource: make(map[string]DivStat, len(bySource)),
		}
		for src, xs := range bySource {
			mm.BySource[src] = divStat(xs)
		}
		out = append(out, mm)
	}
	return out
}

// AdaptivePoint is one SSB query's static-vs-adaptive comparison through
// the facade: identical answers are asserted by the differential suite;
// here the interest is whether the checkpoint fired, whether the tail
// moved, and what the two runs cost.
type AdaptivePoint struct {
	Num            int     `json:"num"`
	Flight         string  `json:"flight"`
	StaticCycles   int64   `json:"static_cycles"`
	AdaptiveCycles int64   `json:"adaptive_cycles"`
	EstSurvivors   int64   `json:"est_survivors"`
	Observed       int64   `json:"observed_survivors"`
	DivergencePct  float64 `json:"divergence_pct"`
	Fired          bool    `json:"fired"`
	Replaced       bool    `json:"replaced"`
	TailDevice     string  `json:"tail_device"`
}

// RunAdaptiveCurve runs all 13 SSB queries under per-operator hybrid
// placement with the adaptive checkpoint off and on. The seed matches the
// facade test suite's (rather than the waterfall's) so the artifact shows
// the same demonstrated tail flip the tests pin; the curve compares a query
// against itself, so it shares no cycle counts with the other sections.
func RunAdaptiveCurve(sf float64) []AdaptivePoint {
	db := castle.GenerateSSB(sf, 20260704)
	static := castle.Options{Device: castle.DeviceHybrid, Placement: castle.PlacementPerOperator}
	adaptive := static
	adaptive.AdaptivePlacement = true

	var out []AdaptivePoint
	for i, q := range castle.SSBQueries() {
		srows, sm, err := db.QueryWith(q.SQL, static)
		if err != nil {
			panic(fmt.Sprintf("experiments: adaptive bench %s static: %v", q.Flight, err))
		}
		arows, am, err := db.QueryWith(q.SQL, adaptive)
		if err != nil {
			panic(fmt.Sprintf("experiments: adaptive bench %s adaptive: %v", q.Flight, err))
		}
		if len(srows.Data) != len(arows.Data) {
			panic(fmt.Sprintf("experiments: adaptive bench %s changed the answer", q.Flight))
		}
		a := am.Adaptive
		pt := AdaptivePoint{
			Num:            i + 1,
			Flight:         q.Flight,
			StaticCycles:   sm.Cycles,
			AdaptiveCycles: am.Cycles,
		}
		if a != nil {
			pt.EstSurvivors = a.EstSurvivors
			pt.Observed = a.Observed
			pt.DivergencePct = math.Round(a.DivergencePct*10) / 10
			pt.Fired = a.Fired
			pt.Replaced = a.Replaced
			pt.TailDevice = a.TailDevice.String()
		}
		out = append(out, pt)
	}
	return out
}
