// Package reference is the ground-truth oracle for the differential
// harness (internal/diffcheck): a deliberately simple row-at-a-time scalar
// interpreter over storage tables. It shares no code with the executors it
// checks — no hash maps, no vectorized sweeps, no cycle model, no shared
// accumulator plumbing — so a bug in the engines' common infrastructure
// cannot hide by appearing on both sides of a comparison. Everything is
// nested loops and linear scans, slow and obviously correct.
//
// Semantics mirror the engines exactly:
//   - inner-join star queries: a fact row survives only if every join edge
//     finds a dimension row that passes that dimension's predicates;
//   - AVG is integer floor division (toward negative infinity), 0 when no
//     rows contributed;
//   - COUNT(DISTINCT col) is the cardinality of the per-group value set;
//   - a grand aggregate (no GROUP BY) always yields exactly one row, all
//     zeros when nothing matched;
//   - rows are normalized (sorted by group key), then the ORDER BY is a
//     stable re-sort on top, then LIMIT truncates.
package reference

import (
	"sort"

	"castle/internal/plan"
	"castle/internal/storage"
)

// Row is one output group: encoded key values and one value per aggregate.
type Row struct {
	Keys []uint32
	Aggs []int64
}

// Result is the oracle's answer relation.
type Result struct {
	Rows []Row
}

// group is one in-flight group during the scan. Distinct value sets are
// kept as sorted slices (binary-search insert), not maps.
type group struct {
	keys  []uint32
	sums  []int64
	count int64
	sets  [][]uint32 // per aggregate slot; nil except COUNT(DISTINCT)
}

// Run evaluates a bound star query by brute force. Cost is
// O(factRows x dimRows) per join edge — use it on corpora sized for
// checking answers, not for benchmarks.
func Run(q *plan.Query, db *storage.Database) *Result {
	fact := db.MustTable(q.Fact)

	// Per-dimension state: the key column, a pass flag per dimension row
	// (all of that dimension's predicates hold), and the attribute columns
	// the query needs from it.
	type dimState struct {
		fk    []uint32
		key   []uint32
		pass  []bool
		attrs [][]uint32 // indexed like edge.NeedAttrs
	}
	dims := make([]dimState, len(q.Joins))
	for di, e := range q.Joins {
		dim := db.MustTable(e.Dim)
		st := dimState{
			fk:   fact.MustColumn(e.FactFK).Data,
			key:  dim.MustColumn(e.DimKey).Data,
			pass: make([]bool, dim.Rows()),
		}
		preds := q.DimPreds[e.Dim]
		for r := 0; r < dim.Rows(); r++ {
			ok := true
			for _, p := range preds {
				if !p.Matches(dim.MustColumn(p.Column).Data[r]) {
					ok = false
					break
				}
			}
			st.pass[r] = ok
		}
		st.attrs = make([][]uint32, len(e.NeedAttrs))
		for ai, a := range e.NeedAttrs {
			st.attrs[ai] = dim.MustColumn(a).Data
		}
		dims[di] = st
	}

	factPredCols := make([][]uint32, len(q.FactPreds))
	for i, p := range q.FactPreds {
		factPredCols[i] = fact.MustColumn(p.Column).Data
	}

	// Group keys come from fact columns or joined-dimension attributes.
	type keySrc struct {
		factCol []uint32 // non-nil for fact columns
		dim     int
		attr    int
	}
	srcs := make([]keySrc, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if g.Table == q.Fact {
			srcs[i] = keySrc{factCol: fact.MustColumn(g.Column).Data}
			continue
		}
		found := false
		for di, e := range q.Joins {
			if e.Dim != g.Table {
				continue
			}
			for ai, a := range e.NeedAttrs {
				if a == g.Column {
					srcs[i] = keySrc{dim: di, attr: ai}
					found = true
				}
			}
		}
		if !found {
			panic("reference: group-by column " + g.String() + " unreachable from join edges")
		}
	}

	aggA := make([][]uint32, len(q.Aggs))
	aggB := make([][]uint32, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind != plan.AggCount {
			aggA[i] = fact.MustColumn(a.A).Data
		}
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			aggB[i] = fact.MustColumn(a.B).Data
		}
	}

	var groups []*group
	keys := make([]uint32, len(q.GroupBy))
	dimRow := make([]int, len(dims))

rowLoop:
	for r := 0; r < fact.Rows(); r++ {
		for i, p := range q.FactPreds {
			if !p.Matches(factPredCols[i][r]) {
				continue rowLoop
			}
		}
		// Join: scan each dimension back to front for a passing row whose
		// key equals this row's foreign key. Back-to-front matches the
		// engines' hash-build semantics (last passing duplicate wins);
		// star-schema keys are unique so order only matters under
		// deliberately malformed inputs.
		for di := range dims {
			d := &dims[di]
			fk := d.fk[r]
			match := -1
			for dr := len(d.key) - 1; dr >= 0; dr-- {
				if d.key[dr] == fk && d.pass[dr] {
					match = dr
					break
				}
			}
			if match < 0 {
				continue rowLoop
			}
			dimRow[di] = match
		}
		for i, s := range srcs {
			if s.factCol != nil {
				keys[i] = s.factCol[r]
			} else {
				keys[i] = dims[s.dim].attrs[s.attr][dimRow[s.dim]]
			}
		}
		g := findGroup(&groups, keys, q.Aggs)
		g.count++
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggSumCol, plan.AggAvg:
				g.sums[i] += int64(aggA[i][r])
			case plan.AggSumMul:
				g.sums[i] += int64(aggA[i][r]) * int64(aggB[i][r])
			case plan.AggSumSub:
				g.sums[i] += int64(aggA[i][r]) - int64(aggB[i][r])
			case plan.AggCount:
				g.sums[i]++
			case plan.AggMin:
				if v := int64(aggA[i][r]); g.count == 1 || v < g.sums[i] {
					g.sums[i] = v
				}
			case plan.AggMax:
				if v := int64(aggA[i][r]); g.count == 1 || v > g.sums[i] {
					g.sums[i] = v
				}
			case plan.AggCountDistinct:
				insertSorted(&g.sets[i], aggA[i][r])
			}
		}
	}

	// Grand aggregates produce exactly one all-zero row when no fact row
	// qualified (the engines do not model SQL NULL).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, newGroup(nil, q.Aggs))
	}

	res := &Result{Rows: make([]Row, 0, len(groups))}
	for _, g := range groups {
		row := Row{Keys: g.keys, Aggs: append([]int64(nil), g.sums...)}
		for i, a := range q.Aggs {
			switch a.Kind {
			case plan.AggAvg:
				if g.count > 0 {
					row.Aggs[i] = floorDiv(g.sums[i], g.count)
				} else {
					row.Aggs[i] = 0
				}
			case plan.AggCountDistinct:
				row.Aggs[i] = int64(len(g.sets[i]))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.normalize()
	res.applyOrder(q.OrderBy)
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res
}

// findGroup locates the group with the given keys by linear search, or
// appends a fresh one.
func findGroup(groups *[]*group, keys []uint32, aggs []plan.AggExpr) *group {
next:
	for _, g := range *groups {
		for i := range keys {
			if g.keys[i] != keys[i] {
				continue next
			}
		}
		return g
	}
	g := newGroup(keys, aggs)
	*groups = append(*groups, g)
	return g
}

func newGroup(keys []uint32, aggs []plan.AggExpr) *group {
	return &group{
		keys: append([]uint32(nil), keys...),
		sums: make([]int64, len(aggs)),
		sets: make([][]uint32, len(aggs)),
	}
}

// insertSorted adds v to the sorted set if absent.
func insertSorted(set *[]uint32, v uint32) {
	s := *set
	i := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	if i < len(s) && s[i] == v {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	*set = s
}

// floorDiv divides toward negative infinity (AVG over SUM(a-b) partials can
// be negative).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// normalize sorts rows by group key, the engines' canonical comparison
// order.
func (r *Result) normalize() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i].Keys, r.Rows[j].Keys
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// applyOrder stably re-sorts by the ORDER BY terms on top of the normalized
// order, so ties stay deterministic.
func (r *Result) applyOrder(terms []plan.OrderTerm) {
	if len(terms) == 0 {
		return
	}
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for _, t := range terms {
			var av, bv int64
			if t.KeyIdx >= 0 {
				av, bv = int64(a.Keys[t.KeyIdx]), int64(b.Keys[t.KeyIdx])
			} else {
				av, bv = a.Aggs[t.AggIdx], b.Aggs[t.AggIdx]
			}
			if av == bv {
				continue
			}
			if t.Desc {
				return av > bv
			}
			return av < bv
		}
		return false
	})
}
