package reference

import (
	"testing"

	"castle/internal/plan"
	"castle/internal/storage"
)

func tinyDB() *storage.Database {
	db := storage.NewDatabase()
	d := storage.NewTable("dim")
	d.AddIntColumn("d_key", []uint32{1, 2, 3})
	d.AddIntColumn("d_year", []uint32{1992, 1992, 1993})
	db.Add(d)
	f := storage.NewTable("facts")
	f.AddIntColumn("f_dk", []uint32{1, 1, 2, 3, 3, 9}) // 9 dangles
	f.AddIntColumn("f_a", []uint32{10, 20, 30, 40, 50, 60})
	f.AddIntColumn("f_b", []uint32{1, 2, 3, 4, 5, 6})
	db.Add(f)
	return db
}

func join(attrs ...string) plan.JoinEdge {
	return plan.JoinEdge{Dim: "dim", FactFK: "f_dk", DimKey: "d_key", NeedAttrs: attrs}
}

func TestGroupedSumAndCount(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:    "facts",
		Joins:   []plan.JoinEdge{join("d_year")},
		GroupBy: []plan.ColRef{{Table: "dim", Column: "d_year"}},
		Aggs: []plan.AggExpr{
			{Kind: plan.AggSumCol, A: "f_a"},
			{Kind: plan.AggCount},
		},
	}
	res := Run(q, db)
	// Dangling fk 9 drops; 1992 <- rows {10,20,30}, 1993 <- {40,50}.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0].Keys[0] != 1992 || res.Rows[0].Aggs[0] != 60 || res.Rows[0].Aggs[1] != 3 {
		t.Fatalf("1992 row = %+v", res.Rows[0])
	}
	if res.Rows[1].Keys[0] != 1993 || res.Rows[1].Aggs[0] != 90 || res.Rows[1].Aggs[1] != 2 {
		t.Fatalf("1993 row = %+v", res.Rows[1])
	}
}

func TestDimPredicateFilters(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:     "facts",
		Joins:    []plan.JoinEdge{join()},
		DimPreds: map[string][]plan.Predicate{"dim": {{Table: "dim", Column: "d_year", Op: plan.PredEQ, Value: 1993}}},
		Aggs:     []plan.AggExpr{{Kind: plan.AggSumMul, A: "f_a", B: "f_b"}},
	}
	res := Run(q, db)
	if len(res.Rows) != 1 || res.Rows[0].Aggs[0] != 40*4+50*5 {
		t.Fatalf("result = %+v, want 410", res.Rows)
	}
}

func TestGrandAggregateZeroRowOnEmptyMatch(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:      "facts",
		FactPreds: []plan.Predicate{{Table: "facts", Column: "f_a", Op: plan.PredGT, Value: 1000}},
		Aggs: []plan.AggExpr{
			{Kind: plan.AggSumCol, A: "f_a"},
			{Kind: plan.AggMin, A: "f_a"},
			{Kind: plan.AggAvg, A: "f_a"},
		},
	}
	res := Run(q, db)
	if len(res.Rows) != 1 {
		t.Fatalf("want exactly one zero row, got %+v", res.Rows)
	}
	for i, v := range res.Rows[0].Aggs {
		if v != 0 {
			t.Fatalf("agg %d = %d, want 0", i, v)
		}
	}
}

func TestGroupedEmptyMatchYieldsNoRows(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:      "facts",
		Joins:     []plan.JoinEdge{join("d_year")},
		FactPreds: []plan.Predicate{{Table: "facts", Column: "f_a", Op: plan.PredLT, Value: 0}},
		GroupBy:   []plan.ColRef{{Table: "dim", Column: "d_year"}},
		Aggs:      []plan.AggExpr{{Kind: plan.AggCount}},
	}
	if res := Run(q, db); len(res.Rows) != 0 {
		t.Fatalf("grouped empty match must be empty, got %+v", res.Rows)
	}
}

func TestMinMaxAvgDistinct(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact: "facts",
		Aggs: []plan.AggExpr{
			{Kind: plan.AggMin, A: "f_a"},
			{Kind: plan.AggMax, A: "f_a"},
			{Kind: plan.AggAvg, A: "f_b"},
			{Kind: plan.AggCountDistinct, A: "f_dk"},
		},
	}
	res := Run(q, db)
	// f_b sums to 21 over 6 rows -> floor(21/6) = 3; distinct f_dk = {1,2,3,9}.
	want := []int64{10, 60, 3, 4}
	for i, w := range want {
		if res.Rows[0].Aggs[i] != w {
			t.Fatalf("agg %d = %d, want %d (all %v)", i, res.Rows[0].Aggs[i], w, res.Rows[0].Aggs)
		}
	}
}

func TestSumSubCanGoNegative(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:      "facts",
		FactPreds: []plan.Predicate{{Table: "facts", Column: "f_dk", Op: plan.PredEQ, Value: 1}},
		Aggs:      []plan.AggExpr{{Kind: plan.AggSumSub, A: "f_b", B: "f_a"}},
	}
	res := Run(q, db)
	if res.Rows[0].Aggs[0] != (1-10)+(2-20) {
		t.Fatalf("got %d, want -27", res.Rows[0].Aggs[0])
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:    "facts",
		GroupBy: []plan.ColRef{{Table: "facts", Column: "f_dk"}},
		Aggs:    []plan.AggExpr{{Kind: plan.AggSumCol, A: "f_a"}},
		OrderBy: []plan.OrderTerm{{KeyIdx: -1, AggIdx: 0, Desc: true}},
		Limit:   2,
	}
	res := Run(q, db)
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %+v", res.Rows)
	}
	// Sums by f_dk: 1->30, 2->30, 3->90, 9->60. DESC: 90, 60.
	if res.Rows[0].Aggs[0] != 90 || res.Rows[1].Aggs[0] != 60 {
		t.Fatalf("order wrong: %+v", res.Rows)
	}
}

func TestOrderByTiesStayNormalized(t *testing.T) {
	db := tinyDB()
	q := &plan.Query{
		Fact:    "facts",
		GroupBy: []plan.ColRef{{Table: "facts", Column: "f_dk"}},
		Aggs:    []plan.AggExpr{{Kind: plan.AggSumCol, A: "f_a"}},
		OrderBy: []plan.OrderTerm{{KeyIdx: -1, AggIdx: 0}},
	}
	res := Run(q, db)
	// Groups 1 and 2 tie at sum 30; the stable sort must keep them in
	// normalized (key-ascending) order.
	if res.Rows[0].Keys[0] != 1 || res.Rows[1].Keys[0] != 2 {
		t.Fatalf("tie order wrong: %+v", res.Rows)
	}
}

func TestDuplicateDimKeysLastPassingWins(t *testing.T) {
	db := storage.NewDatabase()
	d := storage.NewTable("dim")
	d.AddIntColumn("d_key", []uint32{7, 7})
	d.AddIntColumn("d_attr", []uint32{100, 200})
	db.Add(d)
	f := storage.NewTable("facts")
	f.AddIntColumn("f_dk", []uint32{7})
	f.AddIntColumn("f_v", []uint32{1})
	db.Add(f)
	q := &plan.Query{
		Fact:    "facts",
		Joins:   []plan.JoinEdge{{Dim: "dim", FactFK: "f_dk", DimKey: "d_key", NeedAttrs: []string{"d_attr"}}},
		GroupBy: []plan.ColRef{{Table: "dim", Column: "d_attr"}},
		Aggs:    []plan.AggExpr{{Kind: plan.AggCount}},
	}
	res := Run(q, db)
	if len(res.Rows) != 1 || res.Rows[0].Keys[0] != 200 {
		t.Fatalf("want last duplicate's attrs (200), got %+v", res.Rows)
	}
}

func TestInsertSorted(t *testing.T) {
	var s []uint32
	for _, v := range []uint32{5, 1, 9, 5, 1, 3} {
		insertSorted(&s, v)
	}
	want := []uint32{1, 3, 5, 9}
	if len(s) != len(want) {
		t.Fatalf("set = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("set = %v, want %v", s, want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {6, 2, 3}, {-6, 2, -3}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
