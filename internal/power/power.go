// Package power reproduces the paper's area and power analysis (§6.1):
// SRAM-derived area estimates for the vmks key buffer, CAPE's TDP budget
// (control processor + CSB dynamic + CSB leakage), the per-enhancement
// power arguments (ADL power-gates idle subarrays; ABA's bit-serial sign
// extension avoids a power spike; MKS reduces fetch/decode energy), and an
// energy accounting that converts the simulator's cycle breakdown into a
// CAPE-vs-baseline energy comparison.
//
// The paper reports component figures rather than per-operation energies,
// so this model is calibrated to those anchors: a 16.39 W CAPE TDP
// (16.23 W worst-case microoperation power plus a 155 mW control
// processor), 0.48 W of CSB leakage inside that envelope, a 5.63 W
// baseline TDP, and 7 nm high-performance SRAM bitcells of 0.032 µm².
package power

import (
	"fmt"

	"castle/internal/cape"
	"castle/internal/isa"
)

// Physical anchor constants from §6.1 and its citations.
const (
	// SRAMBitcellUM2 is the 7 nm high-performance SRAM bitcell area.
	SRAMBitcellUM2 = 0.032
	// CAPECoreAreaMM2 is one CAPE core (4 MB CSB design point) [15].
	CAPECoreAreaMM2 = 8.8
	// CAPEWorstMicroopWatts is the worst-case microoperation power.
	CAPEWorstMicroopWatts = 16.23
	// CPWatts is the control processor's power: a 20 nm Cortex-A53-class
	// core (269 mW at 1.3 GHz) scaled to 2.7 GHz in 7 nm -> 155 mW.
	CPWatts = 0.155
	// CSBLeakageWatts is the CSB's leakage power.
	CSBLeakageWatts = 0.48
	// BaselineTDPWatts is the iso-area out-of-order baseline's TDP.
	BaselineTDPWatts = 5.63
)

// BufferAreaUM2 returns the area of a vmks key buffer of the given byte
// capacity in high-performance SRAM (bits x bitcell area). For the paper's
// sweep: 64 B -> 16.384 µm², 512 B -> 131.072 µm². (The paper lists
// 1048.576 µm² for its largest buffer, which corresponds to 4 KB of
// bitcells at this node; 2 KB computes to 524.288 µm² — either way the
// overhead against an 8.8 mm² core is negligible, which is the claim being
// supported.)
func BufferAreaUM2(bytes int) float64 {
	return float64(bytes) * 8 * SRAMBitcellUM2
}

// BufferAreaOverhead returns a buffer's area as a fraction of the CAPE
// core.
func BufferAreaOverhead(bytes int) float64 {
	return BufferAreaUM2(bytes) / (CAPECoreAreaMM2 * 1e6)
}

// CAPETDPWatts returns CAPE's thermal design power: the worst-case
// microoperation envelope (which already contains CSB leakage) plus the
// control processor. §6.1 reports 16.39 W.
func CAPETDPWatts() float64 { return CAPEWorstMicroopWatts + CPWatts }

// TDPRatio returns CAPE TDP over baseline TDP (§6.1: "less than 3x").
func TDPRatio() float64 { return CAPETDPWatts() / BaselineTDPWatts }

// Model converts a simulated cycle breakdown into energy. Dynamic CSB
// power is scaled by an activity factor per instruction class: bit-serial
// GP-mode operations drive every subarray every cycle (near the worst-case
// envelope), while ADL's CAM-mode searches run in one value subarray per
// chain with the idle subarrays' peripherals power-gated (§6.1).
type Model struct {
	// ClockHz converts cycles to seconds.
	ClockHz float64
	// CSBDynamicPeakWatts is the dynamic (non-leakage) CSB power at full
	// activity.
	CSBDynamicPeakWatts float64
	// ActivityByClass scales dynamic power per Figure 7 class.
	ActivityByClass [isa.NumClasses]float64
	// CAMSearchActivity applies to searches executed in CAM mode (ADL
	// power-gates the idle subarrays in each chain).
	CAMSearchActivity float64
}

// DefaultModel returns the calibrated model at the paper's design point.
func DefaultModel() Model {
	return Model{
		ClockHz:             2.7e9,
		CSBDynamicPeakWatts: CAPEWorstMicroopWatts - CSBLeakageWatts,
		ActivityByClass: [isa.NumClasses]float64{
			isa.ClassSearch:     0.9, // GP-mode searches touch every subarray
			isa.ClassLogical:    0.8,
			isa.ClassComparison: 1.0, // bit-serial magnitude scans
			isa.ClassArithmetic: 1.0, // worst case: search/update every cycle
			isa.ClassOther:      0.3, // loads/config dominated by the VMU
		},
		CAMSearchActivity: 0.25, // one active subarray per chain, rest gated
	}
}

// Energy is a joules breakdown for one simulated execution.
type Energy struct {
	CSBDynamicJ float64
	LeakageJ    float64
	CPJ         float64
}

// TotalJ returns total joules.
func (e Energy) TotalJ() float64 { return e.CSBDynamicJ + e.LeakageJ + e.CPJ }

// CAPEEnergy estimates the energy of a simulated CAPE execution from its
// statistics. camSearches indicates whether searches ran in CAM mode (the
// ADL design point) for the power-gating credit.
func (m Model) CAPEEnergy(st cape.Stats, camSearches bool) Energy {
	seconds := st.Seconds(m.ClockHz)
	var dyn float64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		activity := m.ActivityByClass[c]
		if c == isa.ClassSearch && camSearches {
			activity = m.CAMSearchActivity
		}
		dyn += float64(st.CSBCyclesByClass[c]) / m.ClockHz * m.CSBDynamicPeakWatts * activity
	}
	return Energy{
		CSBDynamicJ: dyn,
		LeakageJ:    CSBLeakageWatts * seconds,
		CPJ:         CPWatts * seconds,
	}
}

// BaselineEnergy estimates the baseline core's energy from its cycle count,
// at a sustained fraction of its TDP (an out-of-order core running an
// optimized analytic kernel sits near its power envelope).
func (m Model) BaselineEnergy(cycles int64, sustainedFraction float64) float64 {
	return float64(cycles) / m.ClockHz * BaselineTDPWatts * sustainedFraction
}

// Comparison summarises a CAPE-vs-baseline energy comparison for one
// workload.
type Comparison struct {
	CAPE           Energy
	BaselineJ      float64
	SpeedupX       float64
	EnergyRatioX   float64 // baseline joules / CAPE joules
	PowerRatioTDPX float64
}

// Compare builds the §6.1 summary: CAPE burns under 3x the baseline's TDP
// but finishes ~10x sooner, so the energy advantage compounds.
func (m Model) Compare(capeStats cape.Stats, camSearches bool, baselineCycles int64) Comparison {
	ce := m.CAPEEnergy(capeStats, camSearches)
	be := m.BaselineEnergy(baselineCycles, 0.85)
	speedup := float64(baselineCycles) / float64(capeStats.TotalCycles())
	return Comparison{
		CAPE:           ce,
		BaselineJ:      be,
		SpeedupX:       speedup,
		EnergyRatioX:   be / ce.TotalJ(),
		PowerRatioTDPX: TDPRatio(),
	}
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf(
		"CAPE %.3g J (dyn %.3g + leak %.3g + CP %.3g) vs baseline %.3g J: %.1fx faster, %.1fx less energy (TDP ratio %.2fx)",
		c.CAPE.TotalJ(), c.CAPE.CSBDynamicJ, c.CAPE.LeakageJ, c.CAPE.CPJ,
		c.BaselineJ, c.SpeedupX, c.EnergyRatioX, c.PowerRatioTDPX)
}
