package power

import (
	"math"
	"testing"
	"testing/quick"

	"castle/internal/cape"
	"castle/internal/isa"
)

// TestPaperAnchors pins the §6.1 component figures.
func TestPaperAnchors(t *testing.T) {
	if got := CAPETDPWatts(); math.Abs(got-16.39) > 0.01 {
		t.Errorf("CAPE TDP = %.3f W, paper says 16.39 W", got)
	}
	if r := TDPRatio(); r >= 3 {
		t.Errorf("TDP ratio = %.2f, paper says 'less than 3x'", r)
	}
	if got := BufferAreaUM2(64); math.Abs(got-16.384) > 1e-9 {
		t.Errorf("64B buffer area = %f µm², paper says 16.384", got)
	}
	if got := BufferAreaUM2(512); math.Abs(got-131.072) > 1e-9 {
		t.Errorf("512B buffer area = %f µm², paper says 131.072", got)
	}
}

// TestBufferOverheadNegligible: §6.1 calls the buffer overhead negligible
// against the 8.8 mm² core.
func TestBufferOverheadNegligible(t *testing.T) {
	for _, b := range []int{64, 512, 2048} {
		if f := BufferAreaOverhead(b); f > 1e-4 {
			t.Errorf("%dB buffer is %.2e of the core — should be negligible", b, f)
		}
	}
}

func synthStats(search, arith int64) cape.Stats {
	var st cape.Stats
	st.CSBCyclesByClass[isa.ClassSearch] = search
	st.CSBCyclesByClass[isa.ClassArithmetic] = arith
	st.CSBCycles = search + arith
	st.CPCycles = (search + arith) / 10
	return st
}

func TestCAPEEnergyComponents(t *testing.T) {
	m := DefaultModel()
	e := m.CAPEEnergy(synthStats(1e9, 1e9), false)
	if e.CSBDynamicJ <= 0 || e.LeakageJ <= 0 || e.CPJ <= 0 {
		t.Fatalf("all components must be positive: %+v", e)
	}
	if e.TotalJ() != e.CSBDynamicJ+e.LeakageJ+e.CPJ {
		t.Fatal("TotalJ must sum the components")
	}
	// Dynamic power dominates leakage and CP at full activity.
	if e.CSBDynamicJ < e.LeakageJ || e.CSBDynamicJ < e.CPJ {
		t.Errorf("dynamic energy should dominate: %+v", e)
	}
}

// TestADLSavesPower: §6.1 — CAM-mode searches power-gate idle subarrays,
// so search-heavy executions burn less energy under ADL.
func TestADLSavesPower(t *testing.T) {
	m := DefaultModel()
	st := synthStats(1e9, 0)
	gp := m.CAPEEnergy(st, false)
	cam := m.CAPEEnergy(st, true)
	if cam.CSBDynamicJ >= gp.CSBDynamicJ {
		t.Errorf("CAM search energy (%.3g J) should be below GP (%.3g J)", cam.CSBDynamicJ, gp.CSBDynamicJ)
	}
}

// TestEnergyAdvantageCompounds: a 10x speedup at <3x TDP must yield a clear
// energy win.
func TestEnergyAdvantageCompounds(t *testing.T) {
	m := DefaultModel()
	capeStats := synthStats(5e8, 5e8) // 1e9 CSB cycles + CP
	baselineCycles := int64(10) * capeStats.TotalCycles()
	cmp := m.Compare(capeStats, true, baselineCycles)
	if cmp.SpeedupX < 9 || cmp.SpeedupX > 11 {
		t.Fatalf("speedup = %.2f, want ~10", cmp.SpeedupX)
	}
	if cmp.EnergyRatioX <= 1 {
		t.Errorf("energy ratio = %.2f, CAPE should win on energy", cmp.EnergyRatioX)
	}
	if cmp.String() == "" {
		t.Error("empty comparison string")
	}
}

// Property: energy is monotone in cycle counts.
func TestQuickEnergyMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(aRaw, bRaw uint32) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		ea := m.CAPEEnergy(synthStats(a, a), false).TotalJ()
		eb := m.CAPEEnergy(synthStats(b, b), false).TotalJ()
		return ea <= eb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: area grows linearly with buffer size.
func TestQuickBufferAreaLinear(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw) + 1
		return math.Abs(BufferAreaUM2(2*n)-2*BufferAreaUM2(n)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
