// Package baseline models the paper's comparison system: an aggressive
// out-of-order superscalar core (Skylake-class, Table 2) with AVX-512 SIMD
// extensions, iso-area with one CAPE core. Operators execute functionally
// (their results are cross-checked against the reference engine) while an
// analytic timing model charges cycles.
//
// The timing model captures the three effects that shape the paper's
// results:
//
//   - single-core streaming bandwidth is far below the 8-channel DDR4 peak
//     that CAPE's dedicated VMU sustains, so scan-dominated operators run
//     an order of magnitude slower per byte;
//   - random accesses (hash probes, aggregation table updates) cost more as
//     the working set spills through the cache hierarchy (Figures 11, 12);
//   - an out-of-order core overlaps compute with memory, so kernel cost is
//     the maximum, not the sum, of the two.
package baseline

import (
	"fmt"

	"castle/internal/bitvec"
	"castle/internal/cache"
	"castle/internal/mem"
)

// Config describes the baseline core (Table 2).
type Config struct {
	ClockHz    float64
	IssueWidth int
	// SIMDLanes is the number of 32-bit AVX-512 lanes.
	SIMDLanes int
	Hierarchy cache.Hierarchy
	// StreamBytesPerCycle is the single-core sustainable streaming
	// bandwidth. A Skylake-class core sustains roughly 12–14 GB/s from a
	// single thread — well below the 153.6 GB/s channel peak.
	StreamBytesPerCycle float64
	Mem                 mem.Config
	// Kernels holds the per-row instruction costs of the operator kernels
	// (the AVX-512 and scalar reference codebases of §4.1 differ here).
	Kernels KernelCosts
}

// KernelCosts parameterises the operator kernels' per-row instruction
// costs in cycles.
type KernelCosts struct {
	// CompareCyclesPerVector is one predicate evaluation over SIMDLanes
	// elements (load+compare+mask extract).
	CompareCyclesPerVector float64
	// MaskWriteCyclesPerVector stores the result bitmask per vector.
	MaskWriteCyclesPerVector float64
	// MatchBookkeepingCycles is per-matching-row result handling.
	MatchBookkeepingCycles float64
	// HashCyclesPerKey computes the hash of one key.
	HashCyclesPerKey float64
	// BuildCyclesPerRow is the insert bookkeeping beyond the table access.
	BuildCyclesPerRow float64
	// ProbeCyclesPerRow is the compare+advance of one probe.
	ProbeCyclesPerRow float64
	// AggUpdateCyclesPerRow adds a value into its group slot.
	AggUpdateCyclesPerRow float64
}

// AVX512Kernels returns the vectorized reference codebase's costs
// (branchless SIMD selection, hash-batching with SIMD probes).
func AVX512Kernels() KernelCosts {
	return KernelCosts{
		CompareCyclesPerVector:   1.5,
		MaskWriteCyclesPerVector: 1,
		MatchBookkeepingCycles:   0.5,
		HashCyclesPerKey:         2,
		BuildCyclesPerRow:        4,
		ProbeCyclesPerRow:        1.5,
		AggUpdateCyclesPerRow:    2,
	}
}

// ScalarKernels returns the scalar reference codebase's costs (§4.1; the
// automatic compiler vectorizer disabled). Branching per row and scalar
// hashing make every kernel component costlier.
func ScalarKernels() KernelCosts {
	return KernelCosts{
		CompareCyclesPerVector:   2, // per element (SIMDLanes is 1)
		MaskWriteCyclesPerVector: 1,
		MatchBookkeepingCycles:   1.5,
		HashCyclesPerKey:         4,
		BuildCyclesPerRow:        6,
		ProbeCyclesPerRow:        3,
		AggUpdateCyclesPerRow:    4,
	}
}

// DefaultConfig returns the Table 2 baseline: 8-issue OoO at 2.7 GHz with
// AVX-512, Skylake cache hierarchy, DDR4 memory.
func DefaultConfig() Config {
	return Config{
		ClockHz:             2.7e9,
		IssueWidth:          8,
		SIMDLanes:           16,
		Hierarchy:           cache.Skylake(),
		StreamBytesPerCycle: 4.8, // ~13 GB/s @ 2.7 GHz
		Mem:                 mem.DDR4(),
		Kernels:             AVX512Kernels(),
	}
}

// ScalarConfig returns the scalar reference codebase's core: the same
// machine running the non-vectorized binary (§4.1 disables the automatic
// compiler vectorizer), so SIMDLanes is 1 and every kernel is costlier.
func ScalarConfig() Config {
	cfg := DefaultConfig()
	cfg.SIMDLanes = 1
	cfg.Kernels = ScalarKernels()
	return cfg
}

// String summarises the design point.
func (c Config) String() string {
	return fmt.Sprintf("OoO %d-issue @%.1fGHz, AVX-512 (%d lanes), %s",
		c.IssueWidth, c.ClockHz/1e9, c.SIMDLanes, c.Hierarchy)
}

// CPU is a baseline core with cycle and traffic accounting.
type CPU struct {
	cfg    Config
	mm     *mem.System
	cycles float64
	hook   CycleHook
}

// CycleHook observes cycle charges as the timing model bills them — the
// baseline twin of cape.CycleHook, so CAPE-vs-CPU telemetry is
// span-for-span. The hook sees the same fractional cycles the accumulator
// adds; Cycles() truncates only at read time.
type CycleHook func(cycles float64)

// AttachCycleHook starts streaming cycle charges into h (nil detaches).
func (c *CPU) AttachCycleHook(h CycleHook) { c.hook = h }

// add centralizes cycle accumulation so the hook cannot diverge from the
// counter.
func (c *CPU) add(cycles float64) {
	c.cycles += cycles
	if c.hook != nil {
		c.hook(cycles)
	}
}

// New returns a baseline CPU.
func New(cfg Config) *CPU {
	return &CPU{cfg: cfg, mm: mem.NewSystem(cfg.Mem)}
}

// Config returns the configuration.
func (c *CPU) Config() Config { return c.cfg }

// Mem exposes the memory system for traffic accounting (§6.3).
func (c *CPU) Mem() *mem.System { return c.mm }

// Cycles returns accumulated cycles.
func (c *CPU) Cycles() int64 { return int64(c.cycles) }

// Seconds returns accumulated wall time.
func (c *CPU) Seconds() float64 { return c.cycles / c.cfg.ClockHz }

// RawCycles returns the fractional cycle accumulator (Cycles truncates).
// Parallel merges compare cores on the raw value so sub-cycle differences
// cannot flip which core is critical.
func (c *CPU) RawCycles() float64 { return c.cycles }

// ResetCycles clears the cycle counter.
func (c *CPU) ResetCycles() { c.cycles = 0 }

// Fork clones the CPU into k sibling cores for a morsel-parallel sweep on
// the same socket. Each clone gets an independent cycle counter and memory
// traffic accounting but no hook (per-core telemetry closures are not
// shareable; attach fresh hooks per core).
//
// The clones model resource sharing on a multicore: private L1/L2 are
// per-core and keep their capacity, while the last (shared) cache level is
// split k ways, so random-access working sets spill earlier when more cores
// run — the classic contention effect. Per-core streaming bandwidth is left
// unchanged: k cores at ~13 GB/s each stay under the 153.6 GB/s socket peak
// for any k this simulator schedules.
func (c *CPU) Fork(k int) []*CPU {
	if k < 1 {
		panic(fmt.Sprintf("baseline: Fork(%d): need at least one core", k))
	}
	cores := make([]*CPU, k)
	for i := range cores {
		cfg := c.cfg
		levels := make([]cache.Level, len(cfg.Hierarchy.Levels))
		copy(levels, cfg.Hierarchy.Levels)
		if n := len(levels); n > 0 && k > 1 {
			levels[n-1].CapacityBytes /= int64(k)
		}
		cfg.Hierarchy.Levels = levels
		cores[i] = New(cfg)
	}
	return cores
}

// AbsorbElapsed adds cycles to the counter without firing the hook. Used
// when a parent core absorbs the critical (max-cycle) forked core after a
// parallel sweep: per-core hooks already streamed those charges as work, and
// the elapsed-time absorption must not double-count them.
func (c *CPU) AbsorbElapsed(cycles float64) { c.cycles += cycles }

// AbsorbTraffic folds a forked core's memory-traffic counters into c
// without any cycle cost, keeping BytesMoved a work metric (§6.3) that sums
// over all cores.
func (c *CPU) AbsorbTraffic(o *CPU) {
	if o == nil {
		return
	}
	c.mm.Absorb(o.mm)
}

// ChargeCompute charges pure compute cycles.
func (c *CPU) ChargeCompute(cycles float64) { c.add(cycles) }

// ChargeStream charges a streaming kernel that reads/writes the given bytes
// while executing computeCycles of work; the OoO core and the prefetchers
// overlap the two, so the cost is their maximum.
func (c *CPU) ChargeStream(computeCycles float64, bytes int64) {
	memCycles := float64(bytes) / c.cfg.StreamBytesPerCycle
	if memCycles > computeCycles {
		c.add(memCycles)
	} else {
		c.add(computeCycles)
	}
	c.mm.AccountRead(bytes)
}

// ChargeStreamWrite charges a streaming write of n bytes overlapped with
// computeCycles of work.
func (c *CPU) ChargeStreamWrite(computeCycles float64, bytes int64) {
	memCycles := float64(bytes) / c.cfg.StreamBytesPerCycle
	if memCycles > computeCycles {
		c.add(memCycles)
	} else {
		c.add(computeCycles)
	}
	c.mm.AccountWrite(bytes)
}

// ChargeRandomAccesses charges n data-dependent accesses over a working set
// of wsBytes, plus the DRAM traffic of the misses.
func (c *CPU) ChargeRandomAccesses(n int64, wsBytes int64) {
	if n <= 0 {
		return
	}
	c.add(float64(n) * c.cfg.Hierarchy.ExpectedAccessCycles(wsBytes))
	missed := float64(n) * c.cfg.Hierarchy.DRAMMissFraction(wsBytes)
	c.mm.AccountRead(int64(missed) * int64(c.cfg.Hierarchy.LineBytes))
}

// CmpFunc is a scalar predicate on a column value.
type CmpFunc func(uint32) bool

// SelectionScan applies pred to col with AVX-512 16-lane compares and
// returns the match mask. Cost: one vector compare per 16 rows overlapped
// with streaming the column, plus mask writes that grow with selectivity
// (the paper notes baseline selection cost rises slightly with selectivity).
func (c *CPU) SelectionScan(col []uint32, pred CmpFunc) *bitvec.Vector {
	n := len(col)
	m := bitvec.New(n)
	matches := 0
	for i, x := range col {
		if pred(x) {
			m.Set(i)
			matches++
		}
	}
	k := c.cfg.Kernels
	vectors := float64(n)/float64(c.cfg.SIMDLanes) + 1
	c.ChargeStream(vectors*(k.CompareCyclesPerVector+k.MaskWriteCyclesPerVector), int64(n)*4)
	// Per-match result bookkeeping is serially dependent on the compare
	// output and does not hide under the stream (§7.1: baseline selection
	// cost grows with selectivity).
	c.ChargeCompute(float64(matches) * k.MatchBookkeepingCycles)
	return m
}

// SelectionScanResident is SelectionScan for a column already streamed into
// the core's working set this pass (a shared fused sweep streams each fact
// column once for the whole group). The compare/mask work is charged as
// compute — it no longer hides under a stream it does not issue — and the
// per-match bookkeeping is unchanged, so a member's functional result is
// identical to the solo kernel's.
func (c *CPU) SelectionScanResident(col []uint32, pred CmpFunc) *bitvec.Vector {
	n := len(col)
	m := bitvec.New(n)
	matches := 0
	for i, x := range col {
		if pred(x) {
			m.Set(i)
			matches++
		}
	}
	k := c.cfg.Kernels
	vectors := float64(n)/float64(c.cfg.SIMDLanes) + 1
	c.ChargeCompute(vectors * (k.CompareCyclesPerVector + k.MaskWriteCyclesPerVector))
	c.ChargeCompute(float64(matches) * k.MatchBookkeepingCycles)
	return m
}

// HashTable is a minimal open-addressing uint32->uint32 map used by the
// join and aggregation kernels (functional only; timing is analytic). It is
// exported opaquely so an executor can build a dimension table once on the
// primary core and probe it from several forked cores; all mutation stays
// inside this package.
type HashTable struct {
	keys  []uint32
	vals  []uint32
	used  []bool
	mask  uint32
	count int
}

func newHashTable(capacity int) *HashTable {
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	return &HashTable{
		keys: make([]uint32, size),
		vals: make([]uint32, size),
		used: make([]bool, size),
		mask: uint32(size - 1),
	}
}

func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func (h *HashTable) put(k, v uint32) {
	i := hash32(k) & h.mask
	for h.used[i] {
		if h.keys[i] == k {
			h.vals[i] = v
			return
		}
		i = (i + 1) & h.mask
	}
	h.used[i], h.keys[i], h.vals[i] = true, k, v
	h.count++
}

func (h *HashTable) get(k uint32) (uint32, bool) {
	i := hash32(k) & h.mask
	for h.used[i] {
		if h.keys[i] == k {
			return h.vals[i], true
		}
		i = (i + 1) & h.mask
	}
	return 0, false
}

// bytes returns the table's working-set size (key+value+metadata per slot).
func (h *HashTable) bytes() int64 { return int64(len(h.keys)) * 9 }

// BuildHashSemi builds a semi-join hash table on the dimension keys,
// charging the build to c. The table is read-only afterwards, so several
// forked cores may probe it concurrently.
func (c *CPU) BuildHashSemi(dimKeys []uint32) *HashTable {
	ht := newHashTable(len(dimKeys))
	for _, k := range dimKeys {
		ht.put(k, 1)
	}
	c.chargeBuild(len(dimKeys), ht)
	return ht
}

// BuildHashMap builds a key→attribute hash table (dimVals[i] for
// dimKeys[i]), charging the build to c.
func (c *CPU) BuildHashMap(dimKeys, dimVals []uint32) *HashTable {
	if len(dimKeys) != len(dimVals) {
		panic("baseline: dimension key/value length mismatch")
	}
	ht := newHashTable(len(dimKeys))
	for i, k := range dimKeys {
		ht.put(k, dimVals[i])
	}
	c.chargeBuild(len(dimKeys), ht)
	return ht
}

// ProbeSemi probes ht with the fact foreign-key column and returns the
// fact-side match mask. probeMask, when non-nil, restricts which fact rows
// probe (rows filtered out by earlier selections are skipped by the
// optimized kernel). The returned mask is indexed relative to factFK, so a
// forked core can probe a sub-range of the column.
func (c *CPU) ProbeSemi(factFK []uint32, ht *HashTable, probeMask *bitvec.Vector) *bitvec.Vector {
	out := bitvec.New(len(factFK))
	probes := 0
	if probeMask == nil {
		for i, k := range factFK {
			if _, ok := ht.get(k); ok {
				out.Set(i)
			}
		}
		probes = len(factFK)
	} else {
		for i := probeMask.First(); i != -1; i = probeMask.NextAfter(i) {
			if _, ok := ht.get(factFK[i]); ok {
				out.Set(i)
			}
			probes++
		}
	}
	c.chargeProbe(probes, len(factFK), ht)
	return out
}

// ProbeMap probes ht like ProbeSemi but also materializes the dimension
// attribute into a fact-aligned output column (vals[i] is meaningful where
// the mask is set).
func (c *CPU) ProbeMap(factFK []uint32, ht *HashTable, probeMask *bitvec.Vector) (*bitvec.Vector, []uint32) {
	out := bitvec.New(len(factFK))
	vals := make([]uint32, len(factFK))
	probes := 0
	visit := func(i int) {
		if v, ok := ht.get(factFK[i]); ok {
			out.Set(i)
			vals[i] = v
		}
		probes++
	}
	if probeMask == nil {
		for i := range factFK {
			visit(i)
		}
	} else {
		for i := probeMask.First(); i != -1; i = probeMask.NextAfter(i) {
			visit(i)
		}
	}
	c.chargeProbe(probes, len(factFK), ht)
	// Materializing the fact-aligned value column writes whole cachelines:
	// scattered qualifying rows touch nearly every line, so traffic is the
	// smaller of one line per probe and the full column.
	line := int64(c.cfg.Hierarchy.LineBytes)
	wbytes := int64(probes) * line
	if full := int64(len(factFK)) * 4; wbytes > full {
		wbytes = full
	}
	c.ChargeStreamWrite(0, wbytes)
	return out, vals
}

// ProbeSemiResident is ProbeSemi for a foreign-key column already streamed
// by the shared fused sweep: the probe compute and random accesses are
// charged in full, but the trailing FK column stream is not re-billed.
func (c *CPU) ProbeSemiResident(factFK []uint32, ht *HashTable, probeMask *bitvec.Vector) *bitvec.Vector {
	out := bitvec.New(len(factFK))
	probes := 0
	if probeMask == nil {
		for i, k := range factFK {
			if _, ok := ht.get(k); ok {
				out.Set(i)
			}
		}
		probes = len(factFK)
	} else {
		for i := probeMask.First(); i != -1; i = probeMask.NextAfter(i) {
			if _, ok := ht.get(factFK[i]); ok {
				out.Set(i)
			}
			probes++
		}
	}
	c.chargeProbeResident(probes, ht)
	return out
}

// ProbeMapResident is ProbeMap for a resident foreign-key column: the FK
// stream is skipped but the materialized attribute column is still written
// out (each member keeps its own fact-aligned attribute vectors).
func (c *CPU) ProbeMapResident(factFK []uint32, ht *HashTable, probeMask *bitvec.Vector) (*bitvec.Vector, []uint32) {
	out := bitvec.New(len(factFK))
	vals := make([]uint32, len(factFK))
	probes := 0
	visit := func(i int) {
		if v, ok := ht.get(factFK[i]); ok {
			out.Set(i)
			vals[i] = v
		}
		probes++
	}
	if probeMask == nil {
		for i := range factFK {
			visit(i)
		}
	} else {
		for i := probeMask.First(); i != -1; i = probeMask.NextAfter(i) {
			visit(i)
		}
	}
	c.chargeProbeResident(probes, ht)
	line := int64(c.cfg.Hierarchy.LineBytes)
	wbytes := int64(probes) * line
	if full := int64(len(factFK)) * 4; wbytes > full {
		wbytes = full
	}
	c.ChargeStreamWrite(0, wbytes)
	return out, vals
}

// HashJoinSemi builds a hash table on the dimension keys and probes it with
// the fact foreign-key column, returning the fact-side match mask (the
// semi-join the paper's microbenchmark measures, §7.2). It is
// charge-identical to BuildHashSemi followed by ProbeSemi.
func (c *CPU) HashJoinSemi(factFK []uint32, dimKeys []uint32, probeMask *bitvec.Vector) *bitvec.Vector {
	return c.ProbeSemi(factFK, c.BuildHashSemi(dimKeys), probeMask)
}

// HashJoinMap joins like HashJoinSemi but also materializes the dimension
// attribute (dimVals[i] for dimKeys[i]) into a fact-aligned output column.
func (c *CPU) HashJoinMap(factFK []uint32, dimKeys, dimVals []uint32, probeMask *bitvec.Vector) (*bitvec.Vector, []uint32) {
	return c.ProbeMap(factFK, c.BuildHashMap(dimKeys, dimVals), probeMask)
}

func (c *CPU) chargeBuild(rows int, ht *HashTable) {
	k := c.cfg.Kernels
	c.ChargeCompute(float64(rows) * (k.HashCyclesPerKey + k.BuildCyclesPerRow))
	c.ChargeRandomAccesses(int64(rows), ht.bytes())
	c.mm.AccountRead(int64(rows) * 4)
}

func (c *CPU) chargeProbe(probes, factRows int, ht *HashTable) {
	k := c.cfg.Kernels
	c.ChargeCompute(float64(probes) * (k.HashCyclesPerKey + k.ProbeCyclesPerRow))
	c.ChargeRandomAccesses(int64(probes), ht.bytes())
	// The FK column is streamed regardless of how many rows probe.
	c.ChargeStream(0, int64(factRows)*4)
}

// chargeProbeResident bills a probe whose foreign-key column is already
// resident (the shared sweep streamed it once for the whole group): probe
// compute and hash-table random accesses only, no column stream.
func (c *CPU) chargeProbeResident(probes int, ht *HashTable) {
	k := c.cfg.Kernels
	c.ChargeCompute(float64(probes) * (k.HashCyclesPerKey + k.ProbeCyclesPerRow))
	c.ChargeRandomAccesses(int64(probes), ht.bytes())
}

// AggResult is one group of a hash aggregation.
type AggResult struct {
	Key uint32
	Sum int64
}

// HashAggregate groups rows by groupCol and sums valCol per group,
// restricted to rows in mask (nil = all rows). This is the baseline for
// Castle's Algorithm 2 (§7.3); its cost is dominated by random updates into
// the aggregation table, which collapse once the table exceeds the LLC.
func (c *CPU) HashAggregate(groupCol, valCol []uint32, mask *bitvec.Vector) []AggResult {
	if len(groupCol) != len(valCol) {
		panic("baseline: group/value column length mismatch")
	}
	sums := make(map[uint32]int64)
	order := make([]uint32, 0, 64)
	rows := 0
	visit := func(i int) {
		k := groupCol[i]
		if _, ok := sums[k]; !ok {
			order = append(order, k)
		}
		sums[k] += int64(valCol[i])
		rows++
	}
	if mask == nil {
		for i := range groupCol {
			visit(i)
		}
	} else {
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			visit(i)
		}
	}
	// Timing: stream both columns, hash and update per row over a table
	// sized by the number of groups (~16 bytes per group slot, 2x slack).
	k := c.cfg.Kernels
	tableBytes := int64(len(order)) * 32
	c.ChargeStream(float64(rows)*(k.HashCyclesPerKey+k.AggUpdateCyclesPerRow), int64(len(groupCol))*8)
	c.ChargeRandomAccesses(int64(rows), tableBytes)

	out := make([]AggResult, len(order))
	for i, k := range order {
		out[i] = AggResult{Key: k, Sum: sums[k]}
	}
	return out
}

// SumReduce sums valCol over mask with AVX-512 (used for single-group
// aggregates like SSB query flight 1).
func (c *CPU) SumReduce(valCol []uint32, mask *bitvec.Vector) int64 {
	var sum int64
	rows := 0
	if mask == nil {
		for _, v := range valCol {
			sum += int64(v)
		}
		rows = len(valCol)
	} else {
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			sum += int64(valCol[i])
			rows++
		}
	}
	vectors := float64(rows)/float64(c.cfg.SIMDLanes) + 1
	c.ChargeStream(vectors*2, int64(rows)*4)
	return sum
}

// MulSumReduce computes sum(a[i]*b[i]) over mask (SSB Q1's
// sum(lo_extendedprice * lo_discount)).
func (c *CPU) MulSumReduce(a, b []uint32, mask *bitvec.Vector) int64 {
	if len(a) != len(b) {
		panic("baseline: column length mismatch")
	}
	var sum int64
	rows := 0
	if mask == nil {
		for i := range a {
			sum += int64(a[i]) * int64(b[i])
		}
		rows = len(a)
	} else {
		for i := mask.First(); i != -1; i = mask.NextAfter(i) {
			sum += int64(a[i]) * int64(b[i])
			rows++
		}
	}
	vectors := float64(rows)/float64(c.cfg.SIMDLanes) + 1
	c.ChargeStream(vectors*3, int64(rows)*8)
	return sum
}
