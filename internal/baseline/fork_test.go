package baseline

import "testing"

// TestForkSplitsSharedCache: forked cores model private L1/L2 but a shared
// last-level cache, so only the LLC capacity divides by the core count.
func TestForkSplitsSharedCache(t *testing.T) {
	c := New(DefaultConfig())
	orig := c.Config().Hierarchy.Levels
	llc := orig[len(orig)-1].CapacityBytes

	cores := c.Fork(2)
	if len(cores) != 2 {
		t.Fatalf("Fork(2) returned %d cores", len(cores))
	}
	for i, core := range cores {
		lv := core.Config().Hierarchy.Levels
		if got := lv[len(lv)-1].CapacityBytes; got != llc/2 {
			t.Fatalf("core %d LLC = %d bytes, want %d (half)", i, got, llc/2)
		}
		for l := 0; l < len(lv)-1; l++ {
			if lv[l].CapacityBytes != orig[l].CapacityBytes {
				t.Fatalf("core %d private level %d resized: %d != %d",
					i, l, lv[l].CapacityBytes, orig[l].CapacityBytes)
			}
		}
		if core.Cycles() != 0 {
			t.Fatalf("core %d starts with %d cycles", i, core.Cycles())
		}
	}
	// The parent's own hierarchy must be untouched.
	if got := c.Config().Hierarchy.Levels[len(orig)-1].CapacityBytes; got != llc {
		t.Fatalf("Fork mutated the parent's LLC: %d != %d", got, llc)
	}
	// A single-core fork keeps the whole LLC.
	one := c.Fork(1)
	lv := one[0].Config().Hierarchy.Levels
	if got := lv[len(lv)-1].CapacityBytes; got != llc {
		t.Fatalf("Fork(1) LLC = %d, want full %d", got, llc)
	}
}

func TestForkInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fork(0) must panic")
		}
	}()
	New(DefaultConfig()).Fork(0)
}

// TestAbsorbElapsedAndTraffic: AbsorbElapsed advances cycles without
// touching traffic; AbsorbTraffic folds a core's DRAM bytes without
// touching cycles — together they implement the elapsed/work split.
func TestAbsorbElapsedAndTraffic(t *testing.T) {
	c := New(DefaultConfig())
	cores := c.Fork(2)
	cores[0].ChargeStream(10, 1<<20)
	cores[1].ChargeStreamWrite(5, 1<<20)

	baseCycles := c.Cycles()
	baseBytes := c.Mem().BytesMoved()

	c.AbsorbElapsed(cores[0].RawCycles())
	if got, want := c.Cycles(), baseCycles+cores[0].Cycles(); got != want {
		t.Fatalf("AbsorbElapsed: cycles %d, want %d", got, want)
	}
	if c.Mem().BytesMoved() != baseBytes {
		t.Fatal("AbsorbElapsed must not move traffic")
	}

	afterElapsed := c.Cycles()
	c.AbsorbTraffic(cores[0])
	c.AbsorbTraffic(cores[1])
	c.AbsorbTraffic(nil) // nil-safe
	want := baseBytes + cores[0].Mem().BytesMoved() + cores[1].Mem().BytesMoved()
	if got := c.Mem().BytesMoved(); got != want {
		t.Fatalf("AbsorbTraffic: bytes %d, want %d", got, want)
	}
	if c.Cycles() != afterElapsed {
		t.Fatal("AbsorbTraffic must not charge cycles")
	}
}
