package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"castle/internal/bitvec"
)

func TestSelectionScanFunctional(t *testing.T) {
	c := New(DefaultConfig())
	col := make([]uint32, 1000)
	for i := range col {
		col[i] = uint32(i % 10)
	}
	m := c.SelectionScan(col, func(x uint32) bool { return x == 3 })
	if m.Count() != 100 {
		t.Fatalf("matches = %d, want 100", m.Count())
	}
	for i := range col {
		if m.Get(i) != (col[i] == 3) {
			t.Fatalf("mask wrong at %d", i)
		}
	}
	if c.Cycles() == 0 {
		t.Error("selection should charge cycles")
	}
	if c.Mem().BytesRead() == 0 {
		t.Error("selection should account column traffic")
	}
}

func TestHashJoinSemiFunctional(t *testing.T) {
	c := New(DefaultConfig())
	fact := []uint32{1, 2, 3, 4, 5, 2, 3, 9}
	dim := []uint32{2, 3}
	m := c.HashJoinSemi(fact, dim, nil)
	want := []bool{false, true, true, false, false, true, true, false}
	for i, w := range want {
		if m.Get(i) != w {
			t.Fatalf("semi-join mask wrong at %d", i)
		}
	}
}

func TestHashJoinSemiWithProbeMask(t *testing.T) {
	c := New(DefaultConfig())
	fact := []uint32{2, 2, 2, 2}
	dim := []uint32{2}
	probe := bitvec.FromIndices(4, []int{1, 3})
	m := c.HashJoinSemi(fact, dim, probe)
	if m.Get(0) || !m.Get(1) || m.Get(2) || !m.Get(3) {
		t.Fatal("probe mask not honored")
	}
}

func TestHashJoinMapFunctional(t *testing.T) {
	c := New(DefaultConfig())
	fact := []uint32{10, 20, 30, 20}
	dimKeys := []uint32{10, 20}
	dimVals := []uint32{1990, 1995}
	m, vals := c.HashJoinMap(fact, dimKeys, dimVals, nil)
	if !m.Get(0) || !m.Get(1) || m.Get(2) || !m.Get(3) {
		t.Fatal("map-join mask wrong")
	}
	if vals[0] != 1990 || vals[1] != 1995 || vals[3] != 1995 {
		t.Fatalf("map-join values wrong: %v", vals)
	}
}

func TestHashJoinMapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DefaultConfig()).HashJoinMap(nil, []uint32{1}, nil, nil)
}

func TestHashAggregateFunctional(t *testing.T) {
	c := New(DefaultConfig())
	g := []uint32{1, 2, 1, 3, 2, 1}
	v := []uint32{10, 20, 30, 40, 50, 60}
	res := c.HashAggregate(g, v, nil)
	got := map[uint32]int64{}
	for _, r := range res {
		got[r.Key] = r.Sum
	}
	if got[1] != 100 || got[2] != 70 || got[3] != 40 {
		t.Fatalf("aggregate wrong: %v", got)
	}
	// First-seen order is preserved.
	if res[0].Key != 1 || res[1].Key != 2 || res[2].Key != 3 {
		t.Fatalf("group order wrong: %v", res)
	}
}

func TestHashAggregateWithMask(t *testing.T) {
	c := New(DefaultConfig())
	g := []uint32{1, 1, 2, 2}
	v := []uint32{5, 7, 11, 13}
	m := bitvec.FromIndices(4, []int{1, 2})
	res := c.HashAggregate(g, v, m)
	got := map[uint32]int64{}
	for _, r := range res {
		got[r.Key] = r.Sum
	}
	if len(got) != 2 || got[1] != 7 || got[2] != 11 {
		t.Fatalf("masked aggregate wrong: %v", got)
	}
}

func TestSumAndMulSumReduce(t *testing.T) {
	c := New(DefaultConfig())
	a := []uint32{1, 2, 3, 4}
	b := []uint32{10, 10, 10, 10}
	if got := c.SumReduce(a, nil); got != 10 {
		t.Fatalf("SumReduce = %d, want 10", got)
	}
	if got := c.MulSumReduce(a, b, nil); got != 100 {
		t.Fatalf("MulSumReduce = %d, want 100", got)
	}
	m := bitvec.FromIndices(4, []int{0, 3})
	if got := c.SumReduce(a, m); got != 5 {
		t.Fatalf("masked SumReduce = %d, want 5", got)
	}
	if got := c.MulSumReduce(a, b, m); got != 50 {
		t.Fatalf("masked MulSumReduce = %d, want 50", got)
	}
}

// TestAggregationCostGrowsWithGroups reproduces the mechanism behind
// Figure 12: per-row aggregation cost rises as the table spills the caches.
func TestAggregationCostGrowsWithGroups(t *testing.T) {
	cost := func(groups int) float64 {
		c := New(DefaultConfig())
		n := 1 << 20
		g := make([]uint32, n)
		v := make([]uint32, n)
		rng := rand.New(rand.NewSource(1))
		for i := range g {
			g[i] = uint32(rng.Intn(groups))
			v[i] = 1
		}
		c.HashAggregate(g, v, nil)
		return float64(c.Cycles())
	}
	small := cost(100)
	large := cost(1 << 20)
	if large <= small*2 {
		t.Fatalf("aggregation with 1M groups (%.0f cycles) should cost far more than 100 groups (%.0f)", large, small)
	}
}

// TestJoinCostGrowsWithDimensionSize reproduces the mechanism behind
// Figure 11's baseline curve.
func TestJoinCostGrowsWithDimensionSize(t *testing.T) {
	cost := func(dimRows int) float64 {
		c := New(DefaultConfig())
		fact := make([]uint32, 1<<20)
		rng := rand.New(rand.NewSource(2))
		for i := range fact {
			fact[i] = uint32(rng.Intn(dimRows))
		}
		dim := make([]uint32, dimRows)
		for i := range dim {
			dim[i] = uint32(i)
		}
		c.HashJoinSemi(fact, dim, nil)
		return float64(c.Cycles())
	}
	small := cost(1 << 10)
	large := cost(1 << 22)
	if large <= small*1.5 {
		t.Fatalf("probing a 4M-row dim table (%.0f) should cost more than 1K rows (%.0f)", large, small)
	}
}

func TestHashTableInternals(t *testing.T) {
	h := newHashTable(3)
	h.put(1, 100)
	h.put(2, 200)
	h.put(1, 150) // overwrite
	if v, ok := h.get(1); !ok || v != 150 {
		t.Fatalf("get(1) = %d,%v", v, ok)
	}
	if v, ok := h.get(2); !ok || v != 200 {
		t.Fatalf("get(2) = %d,%v", v, ok)
	}
	if _, ok := h.get(99); ok {
		t.Fatal("get(99) should miss")
	}
	if h.count != 2 {
		t.Fatalf("count = %d, want 2", h.count)
	}
}

// Property: hash table behaves like a map.
func TestQuickHashTableMatchesMap(t *testing.T) {
	f := func(keys []uint32, vals []uint32) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		ref := map[uint32]uint32{}
		h := newHashTable(n)
		for i := 0; i < n; i++ {
			h.put(keys[i], vals[i])
			ref[keys[i]] = vals[i]
		}
		for k, v := range ref {
			got, ok := h.get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: semi-join mask equals a nested-loop scan for small inputs.
func TestQuickSemiJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fact := make([]uint32, rng.Intn(200)+1)
		for i := range fact {
			fact[i] = uint32(rng.Intn(20))
		}
		dim := make([]uint32, rng.Intn(10)+1)
		for i := range dim {
			dim[i] = uint32(rng.Intn(20))
		}
		c := New(DefaultConfig())
		got := c.HashJoinSemi(fact, dim, nil)
		for i, f := range fact {
			want := false
			for _, d := range dim {
				if f == d {
					want = true
					break
				}
			}
			if got.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigString(t *testing.T) {
	if DefaultConfig().String() == "" {
		t.Fatal("empty config string")
	}
}

func BenchmarkHashJoinProbe1M(b *testing.B) {
	fact := make([]uint32, 1<<20)
	rng := rand.New(rand.NewSource(3))
	for i := range fact {
		fact[i] = uint32(rng.Intn(30000))
	}
	dim := make([]uint32, 30000)
	for i := range dim {
		dim[i] = uint32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(DefaultConfig())
		c.HashJoinSemi(fact, dim, nil)
	}
}
