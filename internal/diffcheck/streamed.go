package diffcheck

// streamed.go adds the STREAMED column to the differential matrix: the
// pull-based batch pipeline must reproduce the scalar oracle bit for bit on
// every device and forced mixed placement, its books must balance with the
// xfer-overlap credit included, and its peak resident batch bytes must stay
// within the O(K·MAXVL) double-buffering bound.

import (
	"fmt"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/reference"
)

// checkStreamed runs q through the streaming pipeline on the CAPE executor
// and both forced mixed placements (fact stage on either device,
// aggregation tail on the other). The config-independent CPU streaming
// check runs once per K from Check's CPU loop.
func (c *Corpus) checkStreamed(q *plan.Query, want *reference.Result, cfg cape.Config, k int, factRows int64) *Mismatch {
	if m := c.checkStreamedCAPE(q, want, cfg, k, factRows); m != nil {
		return m
	}
	return c.checkStreamedMixed(q, want, cfg, k)
}

func (c *Corpus) checkStreamedCPU(q *plan.Query, want *reference.Result, k int, factRows int64) (m *Mismatch) {
	name := fmt.Sprintf("STREAMED[cpu,K=%d]", k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	cpu := baseline.New(baseline.DefaultConfig())
	x := exec.NewCPUExec(cpu)
	x.SetParallelism(k)
	x.SetStreaming(true)
	got := x.Run(q, c.DB)
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if d := checkAccounting(x.Breakdown(), x.ParallelStats(), cpu.Cycles(), factRows); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if st := x.StreamStats(); factRows > 0 && st.Batches == 0 {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("streaming run pulled no batches over %d fact rows", factRows)}
	}
	return nil
}

func (c *Corpus) checkStreamedCAPE(q *plan.Query, want *reference.Result, cfg cape.Config, k int, factRows int64) (m *Mismatch) {
	name := fmt.Sprintf("STREAMED[cape,maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	eng := cape.New(cfg)
	castle := exec.NewCastle(eng, c.Cat, exec.DefaultCastleOptions())
	castle.SetParallelism(k)
	castle.SetStreaming(true)
	got := castle.Run(p, c.DB)
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if d := checkAccounting(castle.Breakdown(), castle.ParallelStats(), eng.Stats().TotalCycles(), factRows); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if st := castle.StreamStats(); factRows > 0 && st.Batches == 0 {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("streaming run pulled no batches over %d fact rows", factRows)}
	}
	return nil
}

// checkStreamedMixed forces both mixed placements through the streaming
// placed executor: results must match the oracle, the books must balance
// with the overlap credit (TotalCycles = CAPE + CPU − overlap, rows summing
// exactly), and peak resident batch bytes must respect the double-buffering
// bound of two in-flight batches per lane.
func (c *Corpus) checkStreamedMixed(q *plan.Query, want *reference.Result, cfg cape.Config, k int) (m *Mismatch) {
	name := fmt.Sprintf("STREAMED[mixed,maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		aggDev := plan.DeviceCPU
		if factDev == plan.DeviceCPU {
			aggDev = plan.DeviceCAPE
			if groupedVVArith(q) {
				continue
			}
		}
		dimDev := make(map[string]plan.Device, len(p.Joins))
		for _, e := range p.Joins {
			dimDev[e.Dim] = factDev
		}
		pp := plan.Compile(p, factDev).Place(factDev, aggDev, dimDev)
		name := fmt.Sprintf("STREAMED[fact=%s,maxvl=%d,K=%d]", factDev, cfg.MAXVL, k)
		castle := exec.NewCastle(cape.New(cfg), c.Cat, exec.DefaultCastleOptions())
		cpuex := exec.NewCPUExec(baseline.New(baseline.DefaultConfig()))
		x := exec.NewPlaced(castle, cpuex, c.Cat)
		x.SetParallelism(k)
		x.SetStreaming(true)
		got, err := x.Run(pp, c.DB)
		if err != nil {
			return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
		}
		if d := diffResults(want, got); d != "" {
			return &Mismatch{Query: q, Engine: name, Detail: d}
		}
		capeCy, cpuCy := x.DeviceCycles()
		st := x.StreamStats()
		bd := x.Breakdown()
		if bd == nil {
			return &Mismatch{Query: q, Engine: name, Detail: "no breakdown recorded"}
		}
		if st.OverlapCycles < 0 {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("negative overlap credit %d", st.OverlapCycles)}
		}
		if bd.TotalCycles != capeCy+cpuCy-st.OverlapCycles {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("breakdown TotalCycles %d != CAPE %d + CPU %d - overlap %d",
					bd.TotalCycles, capeCy, cpuCy, st.OverlapCycles)}
		}
		if sum := bd.SumCycles(); sum != bd.TotalCycles {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("breakdown rows sum to %d, want %d exactly", sum, bd.TotalCycles)}
		}
		// Two in-flight batches per lane (double buffering), each at most
		// MAXVL tuples of 4-byte ship fields.
		if bound := int64(2*k*cfg.MAXVL) * int64(4*exec.ShipTupleFields(q)); st.PeakBatchBytes > bound {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("peak batch bytes %d exceed double-buffer bound %d", st.PeakBatchBytes, bound)}
		}
	}
	return nil
}
