package diffcheck

// shared.go adds the SHARED column to the differential matrix: the query
// under test is fused with deterministically derived companion queries into
// one multi-query fact sweep on each device, and every member's answer must
// reproduce its own solo oracle bit for bit. The attribution invariant is
// checked exactly: member cycle shares partition the fused run's engine
// delta with no remainder, and each member's breakdown rows partition its
// share.

import (
	"context"
	"fmt"
	"hash/fnv"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/reference"
)

// companionSeeds derives deterministic generator seeds from the query's
// canonical text, so a campaign failure replays from the original seed
// alone: Generate(seed) reproduces q, and q's text reproduces its group.
func companionSeeds(q *plan.Query, n int) []int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(FormatQuery(q)))
	base := int64(h.Sum64() >> 1) // keep positive for readability in reports
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// checkShared fuses q with two derived companions and runs the group as one
// shared sweep on both devices.
func (c *Corpus) checkShared(q *plan.Query, want *reference.Result, opts Options) *Mismatch {
	group := []*plan.Query{q}
	for _, seed := range companionSeeds(q, 2) {
		group = append(group, c.Generate(seed))
	}
	wants := []*reference.Result{want}
	for _, cq := range group[1:] {
		w, m := c.oracle(cq)
		if m != nil {
			m.Query = q // report under the query that seeded the group
			return m
		}
		wants = append(wants, w)
	}
	if m := c.checkSharedCPU(q, group, wants); m != nil {
		return m
	}
	for _, cfg := range opts.Configs {
		if m := c.checkSharedCAPE(q, group, wants, cfg); m != nil {
			return m
		}
	}
	return nil
}

func (c *Corpus) checkSharedCPU(q *plan.Query, group []*plan.Query, wants []*reference.Result) (m *Mismatch) {
	name := fmt.Sprintf("SHARED[cpu,n=%d]", len(group))
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	cpu := baseline.New(baseline.DefaultConfig())
	results, stats, err := exec.RunSharedCPU(context.Background(), cpu, group, c.DB, 0)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
	}
	return c.checkSharedResults(q, name, results, stats, wants, cpu.Cycles())
}

func (c *Corpus) checkSharedCAPE(q *plan.Query, group []*plan.Query, wants []*reference.Result, cfg cape.Config) (m *Mismatch) {
	name := fmt.Sprintf("SHARED[cape,maxvl=%d]", cfg.MAXVL)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	// Admit members greedily, exactly like the facade: grouped SUM(a*b)
	// members and register-budget overflows run solo there, so they are
	// simply left out of the fused group here.
	var plans []*plan.Physical
	var fusedWants []*reference.Result
	for i, cq := range group {
		p, err := optimizer.Optimize(cq, c.Cat, cfg.MAXVL)
		if err != nil {
			return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize member %d: %v", i, err)}
		}
		trial := append(plans[:len(plans):len(plans)], p)
		if exec.CAPESharedEligible(trial, cfg) != nil {
			continue
		}
		plans = trial
		fusedWants = append(fusedWants, wants[i])
	}
	if len(plans) < 2 {
		return nil // group degenerates to solo runs, already covered by CAPE column
	}
	eng := cape.New(cfg)
	results, stats, err := exec.RunSharedCAPE(context.Background(), eng, c.Cat,
		exec.DefaultCastleOptions(), plans, c.DB)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
	}
	return c.checkSharedResults(q, name, results, stats, fusedWants, eng.Stats().TotalCycles())
}

// checkSharedResults holds every fused member to its solo oracle and checks
// the attribution books: member shares partition the engine delta exactly,
// the shared-scan term is within the group total, and each member's
// breakdown rows partition its share.
func (c *Corpus) checkSharedResults(q *plan.Query, name string,
	results []exec.SharedMemberResult, stats exec.SharedStats,
	wants []*reference.Result, engineCycles int64) *Mismatch {

	if len(results) != len(wants) {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("%d member results for %d members", len(results), len(wants))}
	}
	var sum int64
	for i, r := range results {
		if d := diffResults(wants[i], r.Result); d != "" {
			return &Mismatch{Query: q, Engine: fmt.Sprintf("%s member %d", name, i), Detail: d}
		}
		if r.Breakdown == nil {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("member %d: no breakdown recorded", i)}
		}
		if bs := r.Breakdown.SumCycles(); bs != r.Cycles {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("member %d breakdown rows sum to %d, want attributed share %d exactly", i, bs, r.Cycles)}
		}
		sum += r.Cycles
	}
	if sum != stats.TotalCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("member shares sum to %d, group total is %d (attribution must partition exactly)", sum, stats.TotalCycles)}
	}
	if stats.TotalCycles != engineCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("group TotalCycles %d != engine delta %d", stats.TotalCycles, engineCycles)}
	}
	if stats.SharedScanCycles < 0 || stats.SharedScanCycles > stats.TotalCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("shared-scan term %d outside group total %d", stats.SharedScanCycles, stats.TotalCycles)}
	}
	return nil
}
