package diffcheck

// sharded.go adds the SHARDED column to the differential matrix: every
// query is replayed through the scatter-gather coordinator at several
// topologies (hash and range partitioning, N in {1,2,4}, a two-replica
// point so the load balancer is on the hot path) and must reproduce the
// scalar reference bit for bit, with the per-shard breakdown partitioning
// the elapsed cycle total exactly.

import (
	"context"
	"fmt"

	"castle/internal/cape"
	"castle/internal/cluster"
	"castle/internal/plan"
	"castle/internal/reference"
)

// shardedPoint is one topology x device the SHARDED sweep runs.
type shardedPoint struct {
	scheme   cluster.Scheme
	nodes    int
	replicas int
	device   string
}

// shardedMatrix keeps a campaign tractable: hash partitioning sweeps the
// node counts on the CPU engine, range partitioning (the pruning path)
// sweeps them on the low-MAXVL CAPE design point, and the N=2 rows run two
// replicas each.
func shardedMatrix() []shardedPoint {
	return []shardedPoint{
		{cluster.SchemeHash, 1, 1, "cpu"},
		{cluster.SchemeHash, 2, 2, "cpu"},
		{cluster.SchemeHash, 4, 1, "cpu"},
		{cluster.SchemeRange, 1, 1, "cape"},
		{cluster.SchemeRange, 2, 2, "cape"},
		{cluster.SchemeRange, 4, 1, "cape"},
	}
}

// coordinator returns the cached coordinator for one topology.
// Partitioning is deterministic and shards alias the corpus's column data,
// so one coordinator per topology serves a whole campaign.
func (c *Corpus) coordinator(p shardedPoint) (*cluster.Coordinator, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	key := fmt.Sprintf("%s/%d/%d", p.scheme, p.nodes, p.replicas)
	if coord, ok := c.clusters[key]; ok {
		return coord, nil
	}
	coord, err := cluster.New(c.DB, cluster.Config{Nodes: p.nodes, Replicas: p.replicas, Scheme: p.scheme})
	if err != nil {
		return nil, err
	}
	if c.clusters == nil {
		c.clusters = make(map[string]*cluster.Coordinator)
	}
	c.clusters[key] = coord
	return coord, nil
}

// checkSharded runs q through every cluster topology and holds the merged
// result to the scalar reference, plus the coordinator's accounting
// invariants (breakdown rows partition the elapsed total; work >= elapsed).
func (c *Corpus) checkSharded(q *plan.Query, want *reference.Result) *Mismatch {
	small := cape.DefaultConfig().WithEnhancements()
	small.MAXVL = 512
	for _, p := range shardedMatrix() {
		if m := c.checkShardedPoint(q, want, p, small); m != nil {
			return m
		}
	}
	return nil
}

func (c *Corpus) checkShardedPoint(q *plan.Query, want *reference.Result, p shardedPoint, small cape.Config) (m *Mismatch) {
	name := fmt.Sprintf("SHARDED[%s,n=%d,r=%d,%s]", p.scheme, p.nodes, p.replicas, p.device)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	coord, err := c.coordinator(p)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("cluster: %v", err)}
	}
	o := cluster.ExecOptions{Device: p.device, Parallelism: 1}
	if p.device == "cape" {
		o.Config = small
	}
	got, rep, err := coord.Run(context.Background(), q, o)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
	}
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	bd := rep.Breakdown
	if bd == nil {
		return &Mismatch{Query: q, Engine: name, Detail: "no breakdown recorded"}
	}
	if bd.TotalCycles != rep.Stats.ElapsedCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("breakdown TotalCycles %d != elapsed %d", bd.TotalCycles, rep.Stats.ElapsedCycles)}
	}
	if sum := bd.SumCycles(); sum != bd.TotalCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("breakdown rows sum to %d, want %d exactly", sum, bd.TotalCycles)}
	}
	if rep.Stats.WorkCycles < rep.Stats.ElapsedCycles {
		return &Mismatch{Query: q, Engine: name,
			Detail: fmt.Sprintf("WorkCycles %d below elapsed %d", rep.Stats.WorkCycles, rep.Stats.ElapsedCycles)}
	}
	return nil
}
