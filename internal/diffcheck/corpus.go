// Package diffcheck is the differential query-fuzzing harness: a seeded
// generator of random SSB-shaped star queries, a checker that runs each
// query through the scalar reference oracle (internal/reference), the
// baseline CPU executor, and the Castle/CAPE executor at several fan-out
// degrees and asserts identical answers plus the accounting invariants
// (breakdown rows partition TotalCycles; forked tiles absorb traffic
// exactly), and a greedy shrinker that minimizes any failing query before
// it is reported.
//
// Reproducing a report: every generated query is a pure function of its
// seed over a corpus, so `Generate(seed)` + `Check` replays a failure
// exactly. See docs/ARCHITECTURE.md §9.
package diffcheck

import (
	"math/rand"
	"sync"

	"castle/internal/cluster"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

// dimSpec describes one dimension the generator may join.
type dimSpec struct {
	table  string
	key    string
	factFK string
	// attrs are columns usable in predicates and GROUP BY.
	attrs []string
}

// Corpus is a database plus the schema vocabulary the generator draws
// from. The column names are SSB's, so a corpus can wrap either the real
// ssb.Generate output or the tiny synthetic database from NewTiny.
type Corpus struct {
	DB  *storage.Database
	Cat *stats.Catalog

	dims []dimSpec
	// measures are fact columns usable as aggregate inputs.
	measures []string
	// mulPairs are (A, B) pairs safe for SUM(A*B): every per-row product
	// fits the engine's 32-bit lanes (CAPE's vmul.vv truncates to 32 bits,
	// exactly like hardware would; SSB's own SUM(a*b) queries stay in
	// domain, so the generator must too).
	mulPairs [][2]string
	// subPairs are (A, B) pairs for SUM(A-B); differences accumulate in
	// int64 on every engine, so wide columns are fine here.
	subPairs [][2]string
	// factGroupCols are low-cardinality fact columns usable in GROUP BY.
	factGroupCols []string
	// factPredCols are fact columns usable in WHERE.
	factPredCols []string

	// cmu guards clusters, the lazily-built coordinator cache the SHARDED
	// differential column (sharded.go) reuses across a campaign.
	cmu      sync.Mutex
	clusters map[string]*cluster.Coordinator
}

// ssbVocab is the generator vocabulary shared by every corpus.
type ssbVocab struct {
	dims          []dimSpec
	measures      []string
	mulPairs      [][2]string
	subPairs      [][2]string
	factGroupCols []string
	factPredCols  []string
}

func ssbSpec() ssbVocab {
	dims := []dimSpec{
		{table: "date", key: "d_datekey", factFK: "lo_orderdate",
			attrs: []string{"d_year", "d_yearmonthnum", "d_monthnuminyear", "d_weeknuminyear", "d_daynuminweek"}},
		{table: "customer", key: "c_custkey", factFK: "lo_custkey",
			attrs: []string{"c_region", "c_nation", "c_city", "c_mktsegment"}},
		{table: "supplier", key: "s_suppkey", factFK: "lo_suppkey",
			attrs: []string{"s_region", "s_nation", "s_city"}},
		{table: "part", key: "p_partkey", factFK: "lo_partkey",
			attrs: []string{"p_mfgr", "p_category", "p_brand1", "p_size"}},
	}
	return ssbVocab{
		dims:     dims,
		measures: []string{"lo_quantity", "lo_extendedprice", "lo_discount", "lo_revenue", "lo_supplycost"},
		// extendedprice <= 50*200,000 and discount <= 10, so both products
		// stay below 2^32; revenue*supplycost (~6e13) would not, and is
		// deliberately absent — see mulPairs in Corpus.
		mulPairs: [][2]string{
			{"lo_extendedprice", "lo_discount"},
			{"lo_quantity", "lo_discount"},
		},
		subPairs: [][2]string{
			{"lo_extendedprice", "lo_discount"},
			{"lo_quantity", "lo_discount"},
			{"lo_revenue", "lo_supplycost"},
		},
		factGroupCols: []string{"lo_discount", "lo_quantity"},
		factPredCols:  []string{"lo_quantity", "lo_discount", "lo_extendedprice", "lo_orderdate"},
	}
}

// New wraps an SSB-schema database (e.g. ssb.Generate output) as a corpus.
func New(db *storage.Database) *Corpus {
	c := &Corpus{DB: db, Cat: stats.Collect(db)}
	v := ssbSpec()
	c.dims, c.measures = v.dims, v.measures
	c.mulPairs, c.subPairs = v.mulPairs, v.subPairs
	c.factGroupCols, c.factPredCols = v.factGroupCols, v.factPredCols
	return c
}

// NewSSB generates a real SSB database at the given scale factor and wraps
// it. The reference oracle is O(fact x dim) per join, so keep sf small
// (the CI smoke uses 0.005).
func NewSSB(sf float64, seed uint64) *Corpus {
	return New(ssb.Generate(ssb.Config{SF: sf, Seed: seed}))
}

// NewTiny builds a miniature SSB-shaped database: the same tables and
// column names at a few thousand fact rows, with deliberately nasty data
// the real generator never produces — dangling foreign keys (inner-join
// drops), skewed measures, and a date dimension small enough that a
// low-MAXVL CAPE config still spans several partitions. This is the corpus
// the ≥200-query property test and the fuzz target run on.
func NewTiny(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()

	// date: 3 years x 3 months x 10 days = 90 rows.
	var (
		dKeys, dYears, dYMNums, dWeeks, dMonths, dDows []uint32
		dYMs                                           []string
	)
	months := []string{"Jan", "Feb", "Mar"}
	for y := 1992; y <= 1994; y++ {
		for m := 1; m <= 3; m++ {
			for d := 1; d <= 10; d++ {
				dKeys = append(dKeys, uint32(y*10000+m*100+d))
				dYears = append(dYears, uint32(y))
				dYMNums = append(dYMNums, uint32(y*100+m))
				dYMs = append(dYMs, months[m-1]+string(rune('0'+y-1990)))
				dWeeks = append(dWeeks, uint32(1+((m-1)*10+d-1)/7))
				dMonths = append(dMonths, uint32(m))
				dDows = append(dDows, uint32((y+m+d)%7))
			}
		}
	}
	date := storage.NewTable("date")
	date.AddIntColumn("d_datekey", dKeys)
	date.AddIntColumn("d_year", dYears)
	date.AddIntColumn("d_yearmonthnum", dYMNums)
	date.AddStringColumn("d_yearmonth", dYMs)
	date.AddIntColumn("d_weeknuminyear", dWeeks)
	date.AddIntColumn("d_monthnuminyear", dMonths)
	date.AddIntColumn("d_daynuminweek", dDows)
	db.Add(date)

	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationsOf := map[string][]string{
		"AFRICA":      {"ALGERIA", "KENYA"},
		"AMERICA":     {"BRAZIL", "CANADA"},
		"ASIA":        {"CHINA", "JAPAN"},
		"EUROPE":      {"FRANCE", "GERMANY"},
		"MIDDLE EAST": {"IRAN", "JORDAN"},
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

	const custRows = 60
	cust := storage.NewTable("customer")
	{
		keys := make([]uint32, custRows)
		cities := make([]string, custRows)
		nats := make([]string, custRows)
		regs := make([]string, custRows)
		segs := make([]string, custRows)
		for i := 0; i < custRows; i++ {
			keys[i] = uint32(i + 1)
			reg := regions[rng.Intn(len(regions))]
			nat := nationsOf[reg][rng.Intn(2)]
			regs[i], nats[i] = reg, nat
			cities[i] = nat + string(rune('0'+rng.Intn(5)))
			segs[i] = segments[rng.Intn(len(segments))]
		}
		cust.AddIntColumn("c_custkey", keys)
		cust.AddStringColumn("c_city", cities)
		cust.AddStringColumn("c_nation", nats)
		cust.AddStringColumn("c_region", regs)
		cust.AddStringColumn("c_mktsegment", segs)
	}
	db.Add(cust)

	const suppRows = 12
	supp := storage.NewTable("supplier")
	{
		keys := make([]uint32, suppRows)
		cities := make([]string, suppRows)
		nats := make([]string, suppRows)
		regs := make([]string, suppRows)
		for i := 0; i < suppRows; i++ {
			keys[i] = uint32(i + 1)
			reg := regions[rng.Intn(len(regions))]
			nat := nationsOf[reg][rng.Intn(2)]
			regs[i], nats[i] = reg, nat
			cities[i] = nat + string(rune('0'+rng.Intn(5)))
		}
		supp.AddIntColumn("s_suppkey", keys)
		supp.AddStringColumn("s_city", cities)
		supp.AddStringColumn("s_nation", nats)
		supp.AddStringColumn("s_region", regs)
	}
	db.Add(supp)

	const partRows = 75
	part := storage.NewTable("part")
	{
		keys := make([]uint32, partRows)
		mfgrs := make([]string, partRows)
		cats := make([]string, partRows)
		brands := make([]string, partRows)
		sizes := make([]uint32, partRows)
		for i := 0; i < partRows; i++ {
			keys[i] = uint32(i + 1)
			m := 1 + i%5
			c := 1 + (i/5)%5
			b := 1 + (i/25)%3
			mfgrs[i] = "MFGR#" + string(rune('0'+m))
			cats[i] = mfgrs[i] + string(rune('0'+c))
			brands[i] = cats[i] + string(rune('0'+b))
			sizes[i] = uint32(1 + i%50)
		}
		part.AddIntColumn("p_partkey", keys)
		part.AddStringColumn("p_mfgr", mfgrs)
		part.AddStringColumn("p_category", cats)
		part.AddStringColumn("p_brand1", brands)
		part.AddIntColumn("p_size", sizes)
	}
	db.Add(part)

	const factRows = 2500
	lo := storage.NewTable("lineorder")
	{
		ordkey := make([]uint32, factRows)
		custkey := make([]uint32, factRows)
		partkey := make([]uint32, factRows)
		suppkey := make([]uint32, factRows)
		orderdate := make([]uint32, factRows)
		quantity := make([]uint32, factRows)
		extprice := make([]uint32, factRows)
		discount := make([]uint32, factRows)
		revenue := make([]uint32, factRows)
		supplycost := make([]uint32, factRows)
		// dangling returns an out-of-domain key ~3% of the time, so inner
		// joins drop rows (the real SSB generator never does this).
		dangling := func(valid uint32) uint32 {
			if rng.Intn(33) == 0 {
				return valid + 1_000_000
			}
			return valid
		}
		for i := 0; i < factRows; i++ {
			ordkey[i] = uint32(1 + i/4)
			custkey[i] = dangling(uint32(1 + rng.Intn(custRows)))
			partkey[i] = dangling(uint32(1 + rng.Intn(partRows)))
			suppkey[i] = dangling(uint32(1 + rng.Intn(suppRows)))
			orderdate[i] = dangling(dKeys[rng.Intn(len(dKeys))])
			q := uint32(1 + rng.Intn(50))
			quantity[i] = q
			price := uint32(90_000 + rng.Intn(110_000))
			extprice[i] = q * price
			d := uint32(rng.Intn(11))
			discount[i] = d
			revenue[i] = extprice[i] * (100 - d) / 100
			supplycost[i] = revenue[i] * uint32(40+rng.Intn(20)) / 100
		}
		lo.AddIntColumn("lo_orderkey", ordkey)
		lo.AddIntColumn("lo_custkey", custkey)
		lo.AddIntColumn("lo_partkey", partkey)
		lo.AddIntColumn("lo_suppkey", suppkey)
		lo.AddIntColumn("lo_orderdate", orderdate)
		lo.AddIntColumn("lo_quantity", quantity)
		lo.AddIntColumn("lo_extendedprice", extprice)
		lo.AddIntColumn("lo_discount", discount)
		lo.AddIntColumn("lo_revenue", revenue)
		lo.AddIntColumn("lo_supplycost", supplycost)
	}
	db.Add(lo)

	return New(db)
}
