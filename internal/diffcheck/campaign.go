package diffcheck

// campaign.go drives whole fuzzing campaigns: N seeded queries through
// Check, with the first failure shrunk to a minimal reproducer. Seeds are
// sequential from a base so a campaign is one number to replay.

import (
	"fmt"
	"io"
	"strings"

	"castle/internal/plan"
)

// Campaign generates and checks n queries with seeds base, base+1, ....
// On the first failure it shrinks the query (under the same Check) and
// returns the minimized mismatch; nil means the whole campaign passed.
// progress (may be nil) is called after every passing query.
func (c *Corpus) Campaign(n int, base int64, opts Options, progress func(done int)) *Mismatch {
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		q := c.Generate(seed)
		m := c.Check(q, opts)
		if m == nil {
			if progress != nil {
				progress(i + 1)
			}
			continue
		}
		shrunk := Shrink(q, func(cand *plan.Query) bool {
			return c.Check(cand, opts) != nil
		})
		// Re-check the minimal query to attach its (possibly different)
		// engine and detail to the report.
		final := c.Check(shrunk, opts)
		if final == nil {
			// Shrinking raced a non-deterministic failure; report the
			// original unminimized mismatch instead.
			final = m
		}
		final.Seed = seed
		return final
	}
	return nil
}

// WriteReport renders a mismatch as a reproducible report (the file
// cmd/experiments -diff drops on failure).
func (m *Mismatch) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "differential mismatch (replay: Corpus.Generate(%d), then shrink)\n", m.Seed)
	fmt.Fprintf(w, "engine: %s\n", m.Engine)
	fmt.Fprintf(w, "minimal query:\n%s\n", FormatQuery(m.Query))
	fmt.Fprintf(w, "detail:\n%s\n", m.Detail)
}

// FormatQuery renders a bound query as readable pseudo-SQL over encoded
// (32-bit) literals.
func FormatQuery(q *plan.Query) string {
	if q == nil {
		return "<nil>"
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	var sel []string
	for _, g := range q.GroupBy {
		sel = append(sel, g.String())
	}
	for _, a := range q.Aggs {
		sel = append(sel, a.String())
	}
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM " + q.Fact)
	for _, e := range q.Joins {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", e.Dim, e.FactFK, e.DimKey)
		if len(e.NeedAttrs) > 0 {
			fmt.Fprintf(&b, " /* attrs: %s */", strings.Join(e.NeedAttrs, ","))
		}
	}
	var where []string
	for _, p := range q.FactPreds {
		where = append(where, p.String())
	}
	for _, e := range q.Joins {
		for _, p := range q.DimPreds[e.Dim] {
			where = append(where, p.String())
		}
	}
	if len(where) > 0 {
		b.WriteString("\nWHERE " + strings.Join(where, " AND "))
	}
	if len(q.GroupBy) > 0 {
		var gs []string
		for _, g := range q.GroupBy {
			gs = append(gs, g.String())
		}
		b.WriteString("\nGROUP BY " + strings.Join(gs, ", "))
	}
	if len(q.OrderBy) > 0 {
		var os []string
		for _, t := range q.OrderBy {
			os = append(os, t.String())
		}
		b.WriteString("\nORDER BY " + strings.Join(os, ", "))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	return b.String()
}
