package diffcheck

import (
	"reflect"
	"strings"
	"testing"

	"castle/internal/exec"
	"castle/internal/plan"
	"castle/internal/reference"
	"castle/internal/telemetry"
)

// TestDifferentialCampaign is the harness's main property test: hundreds of
// seeded random queries through the scalar reference, the hash oracle, the
// CPU baseline, and the CAPE executor at K in {1,4} on two design points,
// asserting identical answers and balanced accounting on every one.
func TestDifferentialCampaign(t *testing.T) {
	for _, cs := range []int64{1, 2} {
		c := NewTiny(cs)
		n := 0
		m := c.Campaign(250, cs*10_000, DefaultOptions(), func(done int) { n = done })
		if m != nil {
			t.Fatalf("corpus %d:\n%s", cs, m)
		}
		if n != 250 {
			t.Fatalf("corpus %d: campaign checked %d queries, want 250", cs, n)
		}
	}
}

// TestDifferentialCampaignSSB runs a shorter campaign on real generated SSB
// data (the same corpus the CI smoke uses), so the harness is exercised on
// in-domain value distributions too, not just the adversarial tiny corpus.
func TestDifferentialCampaignSSB(t *testing.T) {
	if testing.Short() {
		t.Skip("SSB corpus generation is the slow part; covered by the tiny corpora in -short mode")
	}
	c := NewSSB(0.002, 42)
	if m := c.Campaign(60, 5_000, DefaultOptions(), nil); m != nil {
		t.Fatalf("ssb corpus:\n%s", m)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	c := NewTiny(1)
	for seed := int64(0); seed < 50; seed++ {
		a, b := c.Generate(seed), c.Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, FormatQuery(a), FormatQuery(b))
		}
	}
}

// TestGenerateCoversGrammar draws many queries and checks every grammar
// production actually fires — and that the two deliberate holes hold: no
// SUM(a*b) under GROUP BY, and only 32-bit-safe multiply pairs.
func TestGenerateCoversGrammar(t *testing.T) {
	c := NewTiny(1)
	var (
		sawJoin, sawNoJoin, sawGroup, sawOrder, sawLimit bool
		sawNever, sawIn, sawDimPred, sawFactPred         bool
		aggKinds                                         = map[plan.AggKind]bool{}
	)
	mulSafe := map[[2]string]bool{}
	for _, p := range c.mulPairs {
		mulSafe[p] = true
	}
	for seed := int64(0); seed < 2000; seed++ {
		q := c.Generate(seed)
		if len(q.Joins) > 0 {
			sawJoin = true
		} else {
			sawNoJoin = true
		}
		if len(q.GroupBy) > 0 {
			sawGroup = true
		}
		if len(q.OrderBy) > 0 {
			sawOrder = true
		}
		if q.Limit > 0 {
			sawLimit = true
		}
		var preds []plan.Predicate
		preds = append(preds, q.FactPreds...)
		if len(q.FactPreds) > 0 {
			sawFactPred = true
		}
		for _, ps := range q.DimPreds {
			sawDimPred = true
			preds = append(preds, ps...)
		}
		for _, p := range preds {
			if p.Never {
				sawNever = true
			}
			if p.Op == plan.PredIn {
				sawIn = true
			}
		}
		for _, a := range q.Aggs {
			aggKinds[a.Kind] = true
			if a.Kind == plan.AggSumMul {
				if len(q.GroupBy) > 0 {
					t.Fatalf("seed %d: SUM(a*b) under GROUP BY:\n%s", seed, FormatQuery(q))
				}
				if !mulSafe[[2]string{a.A, a.B}] {
					t.Fatalf("seed %d: SUM(%s*%s) is not a 32-bit-safe pair", seed, a.A, a.B)
				}
			}
		}
		// Every dimension group-by key must be materialized by its join.
		for _, g := range q.GroupBy {
			if g.Table == q.Fact {
				continue
			}
			e := q.JoinFor(g.Table)
			if e == nil {
				t.Fatalf("seed %d: group key %s has no join edge", seed, g)
			}
			found := false
			for _, a := range e.NeedAttrs {
				found = found || a == g.Column
			}
			if !found {
				t.Fatalf("seed %d: group key %s not in NeedAttrs %v", seed, g, e.NeedAttrs)
			}
		}
	}
	for _, flag := range []struct {
		ok   bool
		what string
	}{
		{sawJoin, "join"}, {sawNoJoin, "join-free query"}, {sawGroup, "group-by"},
		{sawOrder, "order-by"}, {sawLimit, "limit"}, {sawNever, "Never predicate"},
		{sawIn, "IN predicate"}, {sawDimPred, "dimension predicate"}, {sawFactPred, "fact predicate"},
	} {
		if !flag.ok {
			t.Errorf("2000 seeds never produced a %s", flag.what)
		}
	}
	for kind := plan.AggSumCol; kind <= plan.AggCountDistinct; kind++ {
		if !aggKinds[kind] {
			t.Errorf("2000 seeds never produced aggregate kind %d", kind)
		}
	}
}

func TestTinyCorpusHasDanglingKeys(t *testing.T) {
	c := NewTiny(1)
	lo := c.DB.MustTable("lineorder")
	for _, fk := range []string{"lo_custkey", "lo_partkey", "lo_suppkey", "lo_orderdate"} {
		dangling := 0
		for _, v := range lo.MustColumn(fk).Data {
			if v >= 1_000_000 {
				dangling++
			}
		}
		if dangling == 0 {
			t.Errorf("%s has no dangling keys; the corpus should force inner-join drops", fk)
		}
	}
}

// TestDiffResultsDetects exercises the comparator on hand-built divergences
// so a regression in it cannot silently turn the whole harness green.
func TestDiffResultsDetects(t *testing.T) {
	ref := &reference.Result{Rows: []reference.Row{{Keys: []uint32{1}, Aggs: []int64{10, 20}}}}
	same := &exec.Result{Rows: []exec.Row{{Keys: []uint32{1}, Aggs: []int64{10, 20}}}}
	if d := diffResults(ref, same); d != "" {
		t.Fatalf("equal results reported as diff: %s", d)
	}
	cases := []struct {
		name string
		got  *exec.Result
		want string
	}{
		{"row count", &exec.Result{}, "row count"},
		{"key", &exec.Result{Rows: []exec.Row{{Keys: []uint32{2}, Aggs: []int64{10, 20}}}}, "key[0]"},
		{"agg", &exec.Result{Rows: []exec.Row{{Keys: []uint32{1}, Aggs: []int64{10, 21}}}}, "agg[1]"},
		{"arity", &exec.Result{Rows: []exec.Row{{Keys: []uint32{1}, Aggs: []int64{10}}}}, "arity"},
	}
	for _, tc := range cases {
		if d := diffResults(ref, tc.got); !strings.Contains(d, tc.want) {
			t.Errorf("%s: diff %q does not mention %q", tc.name, d, tc.want)
		}
	}
}

// TestCheckAccountingDetects feeds checkAccounting books that violate each
// invariant in turn.
func TestCheckAccountingDetects(t *testing.T) {
	goodBD := func() *telemetry.Breakdown {
		return &telemetry.Breakdown{TotalCycles: 100, Operators: []telemetry.OperatorStats{
			{Operator: "prep", Cycles: 40, Rows: -1},
			{Operator: "sweep", Cycles: 60, Rows: -1},
		}}
	}
	goodPS := func() exec.ParallelStats {
		return exec.ParallelStats{
			Tiles: 2, ElapsedCycles: 100, WorkCycles: 170,
			TileCycles: []int64{70, 100}, TileRows: []int64{500, 500},
		}
	}
	if d := checkAccounting(goodBD(), goodPS(), 100, 1000); d != "" {
		t.Fatalf("balanced books flagged: %s", d)
	}
	cases := []struct {
		name   string
		mutate func(*telemetry.Breakdown, *exec.ParallelStats)
		want   string
	}{
		{"nil breakdown", nil, "no breakdown"},
		{"total mismatch", func(b *telemetry.Breakdown, _ *exec.ParallelStats) { b.TotalCycles = 99 }, "TotalCycles"},
		{"rows don't sum", func(b *telemetry.Breakdown, _ *exec.ParallelStats) {
			b.Operators = append(b.Operators, telemetry.OperatorStats{Operator: "extra", Cycles: 1})
		}, "sum to"},
		{"elapsed mismatch", func(_ *telemetry.Breakdown, ps *exec.ParallelStats) { ps.ElapsedCycles = 99 }, "elapsed"},
		{"lost rows", func(_ *telemetry.Breakdown, ps *exec.ParallelStats) { ps.TileRows[0] = 499 }, "fact rows"},
		{"work identity", func(_ *telemetry.Breakdown, ps *exec.ParallelStats) { ps.WorkCycles = 171 }, "WorkCycles"},
		{"tile vector size", func(_ *telemetry.Breakdown, ps *exec.ParallelStats) { ps.TileCycles = ps.TileCycles[:1] }, "tile vectors"},
	}
	for _, tc := range cases {
		b, ps := goodBD(), goodPS()
		if tc.mutate != nil {
			tc.mutate(b, &ps)
		} else {
			b = nil
		}
		if d := checkAccounting(b, ps, 100, 1000); !strings.Contains(d, tc.want) {
			t.Errorf("%s: detail %q does not mention %q", tc.name, d, tc.want)
		}
	}
}

// TestMismatchReport checks the report a failing campaign would drop:
// it must carry the replay seed, the engine name, and the minimal query.
func TestMismatchReport(t *testing.T) {
	c := NewTiny(1)
	q := c.Generate(3)
	m := &Mismatch{Seed: 3, Query: q, Engine: "CAPE[maxvl=512,K=4]", Detail: "row 0 agg[0] = 1, reference has 2"}
	var b strings.Builder
	m.WriteReport(&b)
	out := b.String()
	for _, want := range []string{"Generate(3)", "CAPE[maxvl=512,K=4]", "reference has 2", "FROM lineorder"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
