package diffcheck

// check.go runs one query through every engine configuration and compares
// answers and accounting. The comparison baseline is the scalar oracle in
// internal/reference; the hash-based exec.Reference is also held to it (the
// two oracles share no code, so agreement is meaningful). Engine panics are
// caught and reported as mismatches rather than crashing a campaign.

import (
	"context"
	"fmt"
	"strings"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/reference"
	"castle/internal/telemetry"
)

// Options configure the engine matrix a Check sweeps.
type Options struct {
	// Ks are the parallelism degrees to run each engine at.
	Ks []int
	// Configs are the CAPE design points to run.
	Configs []cape.Config
}

// DefaultOptions is the harness matrix: K ∈ {1,4} on both devices, one
// low-MAXVL enhanced CAPE config (forces multi-partition sweeps and real
// fan-out even on tiny corpora) and one high-MAXVL base config (single
// partition: exercises the K-clamp path).
func DefaultOptions() Options {
	small := cape.DefaultConfig().WithEnhancements()
	small.MAXVL = 512
	big := cape.DefaultConfig()
	big.MAXVL = 4096
	return Options{Ks: []int{1, 4}, Configs: []cape.Config{small, big}}
}

// Mismatch describes one differential failure: which engine diverged from
// the scalar reference (or which invariant broke), on which query.
type Mismatch struct {
	// Seed reproduces the original query via Corpus.Generate (filled by
	// Campaign; zero for direct Check calls).
	Seed int64
	// Query is the failing query — shrunk, if the campaign shrinker ran.
	Query *plan.Query
	// Engine names the diverging configuration, e.g. "CAPE[maxvl=512,K=4]".
	Engine string
	// Detail explains the failure (result diff, invariant, or panic).
	Detail string
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("engine %s diverged (seed %d)\nquery: %s\n%s",
		m.Engine, m.Seed, FormatQuery(m.Query), m.Detail)
}

// Check runs q through the full engine matrix. It returns nil when every
// engine agrees with the scalar reference and every accounting invariant
// holds, or the first Mismatch otherwise.
func (c *Corpus) Check(q *plan.Query, opts Options) *Mismatch {
	if len(opts.Ks) == 0 {
		opts = DefaultOptions()
	}
	want, m := c.oracle(q)
	if m != nil {
		return m
	}

	// The hash-based oracle in exec must match the scalar one.
	if m := c.checkHashOracle(q, want); m != nil {
		return m
	}

	factRows := int64(c.DB.MustTable(q.Fact).Rows())
	for _, k := range opts.Ks {
		if m := c.checkCPU(q, want, k, factRows); m != nil {
			return m
		}
		if m := c.checkStreamedCPU(q, want, k, factRows); m != nil {
			return m
		}
	}
	for _, cfg := range opts.Configs {
		var traffic []int64
		for _, k := range opts.Ks {
			bytes, m := c.checkCAPE(q, want, cfg, k, factRows)
			if m != nil {
				return m
			}
			traffic = append(traffic, bytes)
			if m := c.checkRouted(q, want, cfg, k); m != nil {
				return m
			}
			if m := c.checkMixed(q, want, cfg, k); m != nil {
				return m
			}
			if m := c.checkStreamed(q, want, cfg, k, factRows); m != nil {
				return m
			}
			if m := c.checkAdaptive(q, want, cfg, k); m != nil {
				return m
			}
		}
		// Fork traffic absorption: BytesMoved is a work metric — each
		// partition loads the same columns whichever tile runs it, and the
		// parent absorbs every tile's traffic on merge — so it must not
		// depend on the fan-out at all.
		for i := 1; i < len(traffic); i++ {
			if traffic[i] != traffic[0] {
				return &Mismatch{Query: q,
					Engine: fmt.Sprintf("CAPE[maxvl=%d]", cfg.MAXVL),
					Detail: fmt.Sprintf("traffic absorption: BytesMoved %d at K=%d vs %d at K=%d",
						traffic[i], opts.Ks[i], traffic[0], opts.Ks[0])}
			}
		}
	}
	// The sharded scatter-gather tier must agree at every topology too.
	if m := c.checkSharded(q, want); m != nil {
		return m
	}
	// So must the fused multi-query shared sweep (shared.go).
	if m := c.checkShared(q, want, opts); m != nil {
		return m
	}
	return nil
}

// oracle runs the scalar reference, converting panics into mismatches.
func (c *Corpus) oracle(q *plan.Query) (res *reference.Result, m *Mismatch) {
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: "reference", Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	return reference.Run(q, c.DB), nil
}

func (c *Corpus) checkHashOracle(q *plan.Query, want *reference.Result) (m *Mismatch) {
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: "exec.Reference", Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	got := exec.Reference(q, c.DB)
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: "exec.Reference", Detail: d}
	}
	return nil
}

func (c *Corpus) checkCPU(q *plan.Query, want *reference.Result, k int, factRows int64) (m *Mismatch) {
	name := fmt.Sprintf("CPU[K=%d]", k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	cpu := baseline.New(baseline.DefaultConfig())
	x := exec.NewCPUExec(cpu)
	x.SetParallelism(k)
	got := x.Run(q, c.DB)
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if d := checkAccounting(x.Breakdown(), x.ParallelStats(), cpu.Cycles(), factRows); d != "" {
		return &Mismatch{Query: q, Engine: name, Detail: d}
	}
	return nil
}

func (c *Corpus) checkCAPE(q *plan.Query, want *reference.Result, cfg cape.Config, k int, factRows int64) (bytes int64, m *Mismatch) {
	name := fmt.Sprintf("CAPE[maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return 0, &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	eng := cape.New(cfg)
	castle := exec.NewCastle(eng, c.Cat, exec.DefaultCastleOptions())
	castle.SetParallelism(k)
	got := castle.Run(p, c.DB)
	if d := diffResults(want, got); d != "" {
		return 0, &Mismatch{Query: q, Engine: name, Detail: d}
	}
	if d := checkAccounting(castle.Breakdown(), castle.ParallelStats(), eng.Stats().TotalCycles(), factRows); d != "" {
		return 0, &Mismatch{Query: q, Engine: name, Detail: d}
	}
	return eng.Mem().BytesMoved(), nil
}

// checkRouted runs the whole-query hybrid router (exec.DecideDevice through
// Hybrid.RunContext): whichever engine the §7.2 crossovers pick must
// reproduce the scalar reference bit for bit.
func (c *Corpus) checkRouted(q *plan.Query, want *reference.Result, cfg cape.Config, k int) (m *Mismatch) {
	name := fmt.Sprintf("HYBRID[maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	h := exec.NewDefaultHybrid(cfg, c.Cat)
	h.SetParallelism(k)
	got, dev, err := h.RunContext(context.Background(), p, c.DB)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
	}
	if d := diffResults(want, got); d != "" {
		return &Mismatch{Query: q, Engine: name + "->" + dev.String(), Detail: d}
	}
	return nil
}

// groupedVVArith reports the one aggregate shape the CAPE aggregation
// kernel rejects (SUM(a*b) under GROUP BY); forced placements must keep its
// tail off CAPE, exactly as the optimizer's placement layer does.
func groupedVVArith(q *plan.Query) bool {
	if len(q.GroupBy) == 0 {
		return false
	}
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			return true
		}
	}
	return false
}

// checkMixed forces both mixed per-operator placements — fact stage on CAPE
// with the aggregation tail on the CPU, and the reverse — through the
// placed executor: results must match the scalar reference, and the
// two-device books must balance exactly.
func (c *Corpus) checkMixed(q *plan.Query, want *reference.Result, cfg cape.Config, k int) (m *Mismatch) {
	name := fmt.Sprintf("MIXED[maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		aggDev := plan.DeviceCPU
		if factDev == plan.DeviceCPU {
			aggDev = plan.DeviceCAPE
			if groupedVVArith(q) {
				continue
			}
		}
		dimDev := make(map[string]plan.Device, len(p.Joins))
		for _, e := range p.Joins {
			dimDev[e.Dim] = factDev
		}
		pp := plan.Compile(p, factDev).Place(factDev, aggDev, dimDev)
		name := fmt.Sprintf("MIXED[fact=%s,maxvl=%d,K=%d]", factDev, cfg.MAXVL, k)
		castle := exec.NewCastle(cape.New(cfg), c.Cat, exec.DefaultCastleOptions())
		cpuex := exec.NewCPUExec(baseline.New(baseline.DefaultConfig()))
		x := exec.NewPlaced(castle, cpuex, c.Cat)
		x.SetParallelism(k)
		got, err := x.Run(pp, c.DB)
		if err != nil {
			return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
		}
		if d := diffResults(want, got); d != "" {
			return &Mismatch{Query: q, Engine: name, Detail: d}
		}
		capeCy, cpuCy := x.DeviceCycles()
		bd := x.Breakdown()
		if bd == nil {
			return &Mismatch{Query: q, Engine: name, Detail: "no breakdown recorded"}
		}
		if bd.TotalCycles != capeCy+cpuCy {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("breakdown TotalCycles %d != CAPE %d + CPU %d", bd.TotalCycles, capeCy, cpuCy)}
		}
		if sum := bd.SumCycles(); sum != bd.TotalCycles {
			return &Mismatch{Query: q, Engine: name,
				Detail: fmt.Sprintf("breakdown rows sum to %d, want %d exactly", sum, bd.TotalCycles)}
		}
	}
	return nil
}

// checkAccounting asserts the run's books balance: the breakdown rows
// partition the engine's TotalCycles exactly, and the parallel stats are
// self-consistent (elapsed matches the engine; every dispatched fact row is
// owned by exactly one tile; work >= elapsed with the documented identity).
func checkAccounting(b *telemetry.Breakdown, ps exec.ParallelStats, engineCycles, factRows int64) string {
	if b == nil {
		return "no breakdown recorded"
	}
	if b.TotalCycles != engineCycles {
		return fmt.Sprintf("breakdown TotalCycles %d != engine cycles %d", b.TotalCycles, engineCycles)
	}
	if sum := b.SumCycles(); sum != b.TotalCycles {
		return fmt.Sprintf("breakdown rows sum to %d, want %d exactly", sum, b.TotalCycles)
	}
	if ps.ElapsedCycles != engineCycles {
		return fmt.Sprintf("ParallelStats elapsed %d != engine cycles %d", ps.ElapsedCycles, engineCycles)
	}
	if ps.Tiles > 1 {
		if len(ps.TileCycles) != ps.Tiles || len(ps.TileRows) != ps.Tiles {
			return fmt.Sprintf("tile vectors sized %d/%d for %d tiles",
				len(ps.TileCycles), len(ps.TileRows), ps.Tiles)
		}
		var rows, work, max int64
		for i := range ps.TileCycles {
			rows += ps.TileRows[i]
			work += ps.TileCycles[i]
			if ps.TileCycles[i] > max {
				max = ps.TileCycles[i]
			}
		}
		if rows != factRows {
			return fmt.Sprintf("tiles own %d fact rows, table has %d", rows, factRows)
		}
		if want := ps.ElapsedCycles + work - max; ps.WorkCycles != want {
			return fmt.Sprintf("WorkCycles %d != elapsed+sum-max %d", ps.WorkCycles, want)
		}
		if ps.WorkCycles < ps.ElapsedCycles {
			return fmt.Sprintf("WorkCycles %d below elapsed %d", ps.WorkCycles, ps.ElapsedCycles)
		}
	}
	return ""
}

// diffResults compares an oracle result with an engine result; both are
// already normalized, ordered, and limited. Returns "" on equality.
func diffResults(want *reference.Result, got *exec.Result) string {
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count %d, reference has %d\nref:\n%s\ngot:\n%s",
			len(got.Rows), len(want.Rows), formatRef(want), formatExec(got))
	}
	for i := range want.Rows {
		w, g := want.Rows[i], got.Rows[i]
		if len(w.Keys) != len(g.Keys) || len(w.Aggs) != len(g.Aggs) {
			return fmt.Sprintf("row %d arity differs: ref %d/%d, got %d/%d",
				i, len(w.Keys), len(w.Aggs), len(g.Keys), len(g.Aggs))
		}
		for k := range w.Keys {
			if w.Keys[k] != g.Keys[k] {
				return fmt.Sprintf("row %d key[%d] = %d, reference has %d\nref:\n%s\ngot:\n%s",
					i, k, g.Keys[k], w.Keys[k], formatRef(want), formatExec(got))
			}
		}
		for k := range w.Aggs {
			if w.Aggs[k] != g.Aggs[k] {
				return fmt.Sprintf("row %d agg[%d] = %d, reference has %d\nref:\n%s\ngot:\n%s",
					i, k, g.Aggs[k], w.Aggs[k], formatRef(want), formatExec(got))
			}
		}
	}
	return ""
}

func formatRef(r *reference.Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %v | %v\n", row.Keys, row.Aggs)
	}
	return b.String()
}

func formatExec(r *exec.Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %v | %v\n", row.Keys, row.Aggs)
	}
	return b.String()
}
