package diffcheck

// shrink.go minimizes a failing query before it is reported. The shrinker
// is greedy: it proposes structurally smaller candidates one at a time and
// keeps any candidate on which the failure predicate still fires, looping
// to a fixed point. Every accepted candidate strictly reduces a finite
// measure of the query (clause count, IN-list length), so termination is
// guaranteed.

import "castle/internal/plan"

// Shrink minimizes q under fails, which must report true for any query
// that still exhibits the failure (typically a closure over Corpus.Check).
// The returned query fails, and no single further reduction of it does.
func Shrink(q *plan.Query, fails func(*plan.Query) bool) *plan.Query {
	cur := CloneQuery(q)
	for {
		if next := shrinkStep(cur, fails); next != nil {
			cur = next
			continue
		}
		return cur
	}
}

// shrinkStep tries every single-step reduction of q and returns the first
// one that still fails, or nil when q is minimal.
func shrinkStep(q *plan.Query, fails func(*plan.Query) bool) *plan.Query {
	var candidates []*plan.Query

	// Ordering and limits first: they never change which rows aggregate.
	if len(q.OrderBy) > 0 {
		c := CloneQuery(q)
		c.OrderBy = nil
		candidates = append(candidates, c)
	}
	if q.Limit > 0 {
		c := CloneQuery(q)
		c.Limit = 0
		candidates = append(candidates, c)
	}
	// Drop whole join edges (with their predicates) when no group-by key
	// needs the dimension.
	for i := range q.Joins {
		dim := q.Joins[i].Dim
		needed := false
		for _, g := range q.GroupBy {
			if g.Table == dim {
				needed = true
			}
		}
		if needed {
			continue
		}
		c := CloneQuery(q)
		c.Joins = append(c.Joins[:i], c.Joins[i+1:]...)
		delete(c.DimPreds, dim)
		candidates = append(candidates, dropDanglingOrder(c))
	}
	// Drop group-by columns (and the matching NeedAttrs entry).
	for i := range q.GroupBy {
		g := q.GroupBy[i]
		c := CloneQuery(q)
		c.GroupBy = append(c.GroupBy[:i], c.GroupBy[i+1:]...)
		if e := c.JoinFor(g.Table); e != nil {
			e.NeedAttrs = removeString(e.NeedAttrs, g.Column)
		}
		candidates = append(candidates, dropDanglingOrder(c))
	}
	// Drop aggregates (keep at least one).
	if len(q.Aggs) > 1 {
		for i := range q.Aggs {
			c := CloneQuery(q)
			c.Aggs = append(c.Aggs[:i], c.Aggs[i+1:]...)
			candidates = append(candidates, dropDanglingOrder(c))
		}
	}
	// Drop predicates.
	for i := range q.FactPreds {
		c := CloneQuery(q)
		c.FactPreds = append(c.FactPreds[:i], c.FactPreds[i+1:]...)
		candidates = append(candidates, c)
	}
	for dim, preds := range q.DimPreds {
		for i := range preds {
			c := CloneQuery(q)
			ps := c.DimPreds[dim]
			ps = append(ps[:i], ps[i+1:]...)
			if len(ps) == 0 {
				delete(c.DimPreds, dim)
			} else {
				c.DimPreds[dim] = ps
			}
			candidates = append(candidates, c)
		}
	}
	// Shrink IN lists.
	for i, p := range q.FactPreds {
		if p.Op == plan.PredIn && len(p.Values) > 1 {
			for v := range p.Values {
				c := CloneQuery(q)
				c.FactPreds[i].Values = append(c.FactPreds[i].Values[:v], c.FactPreds[i].Values[v+1:]...)
				candidates = append(candidates, c)
			}
		}
	}
	for dim, preds := range q.DimPreds {
		for i, p := range preds {
			if p.Op == plan.PredIn && len(p.Values) > 1 {
				for v := range p.Values {
					c := CloneQuery(q)
					vals := c.DimPreds[dim][i].Values
					c.DimPreds[dim][i].Values = append(vals[:v], vals[v+1:]...)
					candidates = append(candidates, c)
				}
			}
		}
	}
	// Prune attribute materializations no group-by key uses.
	for i := range q.Joins {
		for _, a := range q.Joins[i].NeedAttrs {
			if q.HasGroupCol(q.Joins[i].Dim, a) {
				continue
			}
			c := CloneQuery(q)
			c.Joins[i].NeedAttrs = removeString(c.Joins[i].NeedAttrs, a)
			candidates = append(candidates, c)
		}
	}

	for _, c := range candidates {
		if fails(c) {
			return c
		}
	}
	return nil
}

// dropDanglingOrder clears ORDER BY terms whose key/agg indices no longer
// exist after a structural reduction (simplest safe repair: the shrinker
// separately proposes dropping the ordering anyway).
func dropDanglingOrder(q *plan.Query) *plan.Query {
	for _, t := range q.OrderBy {
		if (t.KeyIdx >= 0 && t.KeyIdx >= len(q.GroupBy)) ||
			(t.AggIdx >= 0 && t.AggIdx >= len(q.Aggs)) {
			q.OrderBy = nil
			break
		}
	}
	return q
}

// CloneQuery deep-copies a query so candidate mutations never alias the
// original.
func CloneQuery(q *plan.Query) *plan.Query {
	c := &plan.Query{
		Fact:    q.Fact,
		Limit:   q.Limit,
		GroupBy: append([]plan.ColRef(nil), q.GroupBy...),
		Aggs:    append([]plan.AggExpr(nil), q.Aggs...),
		OrderBy: append([]plan.OrderTerm(nil), q.OrderBy...),
	}
	c.FactPreds = clonePreds(q.FactPreds)
	c.DimPreds = make(map[string][]plan.Predicate, len(q.DimPreds))
	for dim, ps := range q.DimPreds {
		c.DimPreds[dim] = clonePreds(ps)
	}
	c.Joins = make([]plan.JoinEdge, len(q.Joins))
	for i, e := range q.Joins {
		e.NeedAttrs = append([]string(nil), e.NeedAttrs...)
		c.Joins[i] = e
	}
	return c
}

func clonePreds(ps []plan.Predicate) []plan.Predicate {
	out := make([]plan.Predicate, len(ps))
	for i, p := range ps {
		p.Values = append([]uint32(nil), p.Values...)
		out[i] = p
	}
	return out
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
