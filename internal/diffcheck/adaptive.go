package diffcheck

// adaptive.go adds the ADAPTIVE column to the differential matrix: the
// mid-query re-placement checkpoint may move the aggregation tail between
// devices after the fact stage completes, and it must never change answers
// — only cycles. Both forced fact directions run twice, once with a replan
// hook that keeps the planned tail and once with a hook that flips it, so
// every (fact device, tail device) combination the checkpoint can produce
// is diffed against the scalar oracle.

import (
	"fmt"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/reference"
)

// checkAdaptive forces both mixed placements through the adaptive executor
// with an estimate so wrong the checkpoint always fires, exercising both
// the keep-tail and flip-tail replan outcomes. Results must match the
// oracle bit for bit; the books must balance exactly (adaptive runs
// materialize, so TotalCycles = CAPE + CPU with no overlap credit).
func (c *Corpus) checkAdaptive(q *plan.Query, want *reference.Result, cfg cape.Config, k int) (m *Mismatch) {
	name := fmt.Sprintf("ADAPTIVE[maxvl=%d,K=%d]", cfg.MAXVL, k)
	defer func() {
		if r := recover(); r != nil {
			m = &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	p, err := optimizer.Optimize(q, c.Cat, cfg.MAXVL)
	if err != nil {
		return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("optimize: %v", err)}
	}
	for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		aggDev := plan.DeviceCPU
		if factDev == plan.DeviceCPU {
			aggDev = plan.DeviceCAPE
			if groupedVVArith(q) {
				continue
			}
		}
		dimDev := make(map[string]plan.Device, len(p.Joins))
		for _, e := range p.Joins {
			dimDev[e.Dim] = factDev
		}
		pp := plan.Compile(p, factDev).Place(factDev, aggDev, dimDev)
		for _, flip := range []bool{false, true} {
			name := fmt.Sprintf("ADAPTIVE[fact=%s,flip=%v,maxvl=%d,K=%d]", factDev, flip, cfg.MAXVL, k)
			castle := exec.NewCastle(cape.New(cfg), c.Cat, exec.DefaultCastleOptions())
			cpuex := exec.NewCPUExec(baseline.New(baseline.DefaultConfig()))
			x := exec.NewPlaced(castle, cpuex, c.Cat)
			x.SetParallelism(k)
			target := aggDev
			if flip {
				if target == plan.DeviceCPU {
					target = plan.DeviceCAPE
				} else {
					target = plan.DeviceCPU
				}
			}
			// An estimate of 2^40 survivors misses any generated table by
			// orders of magnitude, so the checkpoint always fires and the
			// hook's decision always applies (modulo the grouped-SUM(a*b)
			// CPU-only guard, which the executor enforces itself).
			aopts := exec.AdaptiveOptions{
				EstSurvivors: 1 << 40,
				Replan:       func(int64) plan.Device { return target },
			}
			got, ast, err := x.RunAdaptiveContext(nil, pp, c.DB, aopts)
			if err != nil {
				return &Mismatch{Query: q, Engine: name, Detail: fmt.Sprintf("run: %v", err)}
			}
			if d := diffResults(want, got); d != "" {
				return &Mismatch{Query: q, Engine: name, Detail: d}
			}
			if !ast.Fired {
				return &Mismatch{Query: q, Engine: name,
					Detail: fmt.Sprintf("checkpoint did not fire on estimate %d vs observed %d", aopts.EstSurvivors, ast.Observed)}
			}
			wantTail := target
			if groupedVVArith(q) {
				wantTail = plan.DeviceCPU
			}
			if ast.TailDevice != wantTail {
				return &Mismatch{Query: q, Engine: name,
					Detail: fmt.Sprintf("tail ran on %s, want %s", ast.TailDevice, wantTail)}
			}
			if ast.Replaced != (wantTail != aggDev) {
				return &Mismatch{Query: q, Engine: name,
					Detail: fmt.Sprintf("Replaced=%v but tail moved %s -> %s", ast.Replaced, aggDev, wantTail)}
			}
			capeCy, cpuCy := x.DeviceCycles()
			bd := x.Breakdown()
			if bd == nil {
				return &Mismatch{Query: q, Engine: name, Detail: "no breakdown recorded"}
			}
			if bd.TotalCycles != capeCy+cpuCy {
				return &Mismatch{Query: q, Engine: name,
					Detail: fmt.Sprintf("breakdown TotalCycles %d != CAPE %d + CPU %d", bd.TotalCycles, capeCy, cpuCy)}
			}
			if sum := bd.SumCycles(); sum != bd.TotalCycles {
				return &Mismatch{Query: q, Engine: name,
					Detail: fmt.Sprintf("breakdown rows sum to %d, want %d exactly", sum, bd.TotalCycles)}
			}
		}
	}
	return nil
}
