package diffcheck

import (
	"reflect"
	"testing"

	"castle/internal/plan"
)

// hasAggKind is the structural failure predicate the shrinker tests use: it
// is deterministic and independent of any engine, so minimality assertions
// are exact.
func hasAggKind(kind plan.AggKind) func(*plan.Query) bool {
	return func(q *plan.Query) bool {
		for _, a := range q.Aggs {
			if a.Kind == kind {
				return true
			}
		}
		return false
	}
}

// TestShrinkToMinimalAggregate shrinks a deliberately baroque query under
// "contains a MIN aggregate" and expects everything else stripped: no
// joins, no predicates, no grouping, no ordering, one aggregate.
func TestShrinkToMinimalAggregate(t *testing.T) {
	c := NewTiny(1)
	var q *plan.Query
	// Find a seed whose query has a MIN plus plenty of other structure.
	for seed := int64(0); ; seed++ {
		if seed > 10_000 {
			t.Fatal("no suitably baroque seed found")
		}
		cand := c.Generate(seed)
		if hasAggKind(plan.AggMin)(cand) && len(cand.Joins) > 0 && len(cand.Aggs) > 1 &&
			(len(cand.FactPreds) > 0 || len(cand.DimPreds) > 0) {
			q = cand
			break
		}
	}
	min := Shrink(q, hasAggKind(plan.AggMin))
	if !hasAggKind(plan.AggMin)(min) {
		t.Fatal("shrunk query no longer fails the predicate")
	}
	if len(min.Aggs) != 1 || min.Aggs[0].Kind != plan.AggMin {
		t.Errorf("aggs not minimal: %v", min.Aggs)
	}
	if len(min.Joins) != 0 || len(min.GroupBy) != 0 || len(min.FactPreds) != 0 ||
		len(min.DimPreds) != 0 || len(min.OrderBy) != 0 || min.Limit != 0 {
		t.Errorf("residual structure after shrink:\n%s", FormatQuery(min))
	}
}

// TestShrinkKeepsGroupedJoin shrinks under "groups by a dimension column"
// and expects the join edge that materializes the key to survive.
func TestShrinkKeepsGroupedJoin(t *testing.T) {
	c := NewTiny(1)
	fails := func(q *plan.Query) bool {
		for _, g := range q.GroupBy {
			if g.Table != q.Fact {
				return true
			}
		}
		return false
	}
	for seed := int64(0); ; seed++ {
		if seed > 10_000 {
			t.Fatal("no seed with a dimension group key found")
		}
		q := c.Generate(seed)
		if !fails(q) {
			continue
		}
		min := Shrink(q, fails)
		if len(min.GroupBy) != 1 {
			t.Fatalf("want exactly one surviving group key, got %v", min.GroupBy)
		}
		g := min.GroupBy[0]
		e := min.JoinFor(g.Table)
		if e == nil {
			t.Fatalf("surviving group key %s lost its join edge:\n%s", g, FormatQuery(min))
		}
		if len(e.NeedAttrs) != 1 || e.NeedAttrs[0] != g.Column {
			t.Errorf("join attrs not minimal: %v for key %s", e.NeedAttrs, g)
		}
		return
	}
}

// TestShrinkInList shrinks under "has an IN predicate" and expects the
// surviving list to be a single element.
func TestShrinkInList(t *testing.T) {
	c := NewTiny(1)
	fails := func(q *plan.Query) bool {
		for _, p := range q.FactPreds {
			if p.Op == plan.PredIn {
				return true
			}
		}
		return false
	}
	for seed := int64(0); ; seed++ {
		if seed > 10_000 {
			t.Fatal("no seed with a fact IN predicate found")
		}
		q := c.Generate(seed)
		if !fails(q) {
			continue
		}
		min := Shrink(q, fails)
		if len(min.FactPreds) != 1 || min.FactPreds[0].Op != plan.PredIn {
			t.Fatalf("want one surviving IN predicate, got %v", min.FactPreds)
		}
		if n := len(min.FactPreds[0].Values); n != 1 {
			t.Errorf("IN list not minimal: %d values", n)
		}
		return
	}
}

// TestCloneQueryNoAliasing mutates every slice/map of a clone and checks
// the original is untouched.
func TestCloneQueryNoAliasing(t *testing.T) {
	c := NewTiny(1)
	for seed := int64(0); seed < 200; seed++ {
		q := c.Generate(seed)
		if len(q.Joins) == 0 || len(q.FactPreds) == 0 {
			continue
		}
		orig := c.Generate(seed) // independent copy for comparison
		cl := CloneQuery(q)
		cl.Fact = "mutated"
		if len(cl.Joins) > 0 {
			cl.Joins[0].Dim = "mutated"
			cl.Joins[0].NeedAttrs = append(cl.Joins[0].NeedAttrs, "mutated")
		}
		if len(cl.FactPreds) > 0 {
			cl.FactPreds[0].Column = "mutated"
			cl.FactPreds[0].Values = append(cl.FactPreds[0].Values, 99)
		}
		for dim := range cl.DimPreds {
			cl.DimPreds[dim] = nil
		}
		cl.GroupBy = append(cl.GroupBy, plan.ColRef{Table: "x", Column: "y"})
		cl.Aggs = append(cl.Aggs, plan.AggExpr{Kind: plan.AggCount})
		cl.OrderBy = append(cl.OrderBy, plan.OrderTerm{KeyIdx: -1, AggIdx: 0})
		if !reflect.DeepEqual(q, orig) {
			t.Fatalf("seed %d: mutating the clone changed the original", seed)
		}
		return
	}
	t.Fatal("no seed exercised every clone path")
}

// TestShrinkPassthrough: a query that is already minimal shrinks to itself.
func TestShrinkPassthrough(t *testing.T) {
	q := &plan.Query{
		Fact:     "lineorder",
		DimPreds: map[string][]plan.Predicate{},
		Aggs:     []plan.AggExpr{{Kind: plan.AggCount}},
	}
	min := Shrink(q, func(*plan.Query) bool { return true })
	if len(min.Aggs) != 1 || min.Aggs[0].Kind != plan.AggCount {
		t.Fatalf("minimal query changed: %s", FormatQuery(min))
	}
}
