package diffcheck

// gen.go is the randomized query generator. Every query is a pure function
// of (corpus, seed): Generate builds a fresh math/rand stream from the seed
// and draws the query shape from it, so any reported failure replays
// exactly. The grammar covers random join subsets (including none), all
// predicate operators (EQ/NE/LT/LE/GT/GE/BETWEEN/IN plus statically-false
// Never predicates), 0–2 group-by columns drawn from dimension attributes
// and low-cardinality fact columns, 1–3 aggregates over the full vocabulary
// (SUM, COUNT, MIN, MAX, AVG, COUNT DISTINCT, and the vv-arithmetic
// SUM(a*b)/SUM(a-b) shapes), and optional ORDER BY / LIMIT.
//
// Two deliberate holes mirror the modeled hardware's domain. SUM(a*b)
// never coexists with GROUP BY — the Castle executor rejects that shape by
// design (outside SSB; see exec.runPartition). And SUM(a*b) only draws
// from pairs whose per-row product fits 32 bits: CAPE's vmul.vv writes
// 32-bit lanes (truncating, as the hardware would), while the scalar
// engines multiply in int64, so an out-of-domain pair is a guaranteed
// false positive, not a bug. SSB's own arithmetic respects the same bound.

import (
	"math/rand"

	"castle/internal/plan"
	"castle/internal/storage"
)

// Generate returns the random query for a seed over this corpus.
func (c *Corpus) Generate(seed int64) *plan.Query {
	rng := rand.New(rand.NewSource(seed))
	q := &plan.Query{
		Fact:     "lineorder",
		DimPreds: map[string][]plan.Predicate{},
	}

	// Join a random subset of the dimensions, in random order.
	for _, di := range rng.Perm(len(c.dims)) {
		if rng.Intn(2) == 0 {
			continue
		}
		d := c.dims[di]
		q.Joins = append(q.Joins, plan.JoinEdge{Dim: d.table, FactFK: d.factFK, DimKey: d.key})
		// 0-2 predicates on this dimension's attributes.
		for n := rng.Intn(3); n > 0; n-- {
			col := d.attrs[rng.Intn(len(d.attrs))]
			q.DimPreds[d.table] = append(q.DimPreds[d.table],
				c.randPredicate(rng, d.table, col))
		}
	}

	// GROUP BY: up to two columns, from joined dimensions' attributes or
	// the low-cardinality fact columns. Dimension group columns must be
	// materialized by their join edge.
	nGroup := rng.Intn(3)
	for g := 0; g < nGroup; g++ {
		if len(q.Joins) > 0 && rng.Intn(3) != 0 {
			e := &q.Joins[rng.Intn(len(q.Joins))]
			d := c.dimSpecFor(e.Dim)
			col := d.attrs[rng.Intn(len(d.attrs))]
			if q.HasGroupCol(e.Dim, col) {
				continue
			}
			e.NeedAttrs = appendUnique(e.NeedAttrs, col)
			q.GroupBy = append(q.GroupBy, plan.ColRef{Table: e.Dim, Column: col})
		} else {
			col := c.factGroupCols[rng.Intn(len(c.factGroupCols))]
			if q.HasGroupCol(q.Fact, col) {
				continue
			}
			q.GroupBy = append(q.GroupBy, plan.ColRef{Table: q.Fact, Column: col})
		}
	}

	// Occasionally materialize an attribute nobody groups by (executors
	// must carry it without corrupting anything; the shrinker prunes it).
	if len(q.Joins) > 0 && rng.Intn(5) == 0 {
		e := &q.Joins[rng.Intn(len(q.Joins))]
		d := c.dimSpecFor(e.Dim)
		e.NeedAttrs = appendUnique(e.NeedAttrs, d.attrs[rng.Intn(len(d.attrs))])
	}

	// 0-2 fact predicates.
	for n := rng.Intn(3); n > 0; n-- {
		col := c.factPredCols[rng.Intn(len(c.factPredCols))]
		q.FactPreds = append(q.FactPreds, c.randPredicate(rng, q.Fact, col))
	}

	// 1-3 aggregates.
	nAggs := 1 + rng.Intn(3)
	for a := 0; a < nAggs; a++ {
		q.Aggs = append(q.Aggs, c.randAgg(rng, len(q.GroupBy) > 0))
	}

	// ORDER BY (over group keys and aggregate outputs) and LIMIT.
	if rng.Intn(5) < 2 {
		for n := 1 + rng.Intn(2); n > 0; n-- {
			t := plan.OrderTerm{KeyIdx: -1, AggIdx: -1, Desc: rng.Intn(2) == 0}
			if len(q.GroupBy) > 0 && rng.Intn(2) == 0 {
				t.KeyIdx = rng.Intn(len(q.GroupBy))
			} else {
				t.AggIdx = rng.Intn(len(q.Aggs))
			}
			q.OrderBy = append(q.OrderBy, t)
		}
	}
	if rng.Intn(4) == 0 {
		q.Limit = 1 + rng.Intn(8)
	}
	return q
}

// randPredicate draws a predicate over the column's observed [Min, Max]
// domain — occasionally straying outside it (empty or full matches) or
// emitting a statically-false Never predicate, both shapes the binder
// produces for out-of-dictionary string literals.
func (c *Corpus) randPredicate(rng *rand.Rand, table, col string) plan.Predicate {
	cc := c.DB.MustTable(table).MustColumn(col)
	p := plan.Predicate{Table: table, Column: col}
	if rng.Intn(20) == 0 {
		p.Never = true
		return p
	}
	span := int64(cc.Max) - int64(cc.Min) + 1
	pick := func() uint32 {
		v := int64(cc.Min) + rng.Int63n(span)
		if rng.Intn(12) == 0 {
			v += span / 2 // may exceed Max: matches nothing for EQ, everything for LE
		}
		return uint32(v)
	}
	switch rng.Intn(8) {
	case 0:
		p.Op, p.Value = plan.PredEQ, pick()
	case 1:
		p.Op, p.Value = plan.PredNE, pick()
	case 2:
		p.Op, p.Value = plan.PredLT, pick()
	case 3:
		p.Op, p.Value = plan.PredLE, pick()
	case 4:
		p.Op, p.Value = plan.PredGT, pick()
	case 5:
		p.Op, p.Value = plan.PredGE, pick()
	case 6:
		p.Op = plan.PredBetween
		a, b := pick(), pick()
		if a > b {
			a, b = b, a
		}
		p.Lo, p.Hi = a, b
	default:
		p.Op = plan.PredIn
		for n := 1 + rng.Intn(4); n > 0; n-- {
			p.Values = append(p.Values, pick())
		}
	}
	return p
}

// randAgg draws one aggregate expression. vv-multiply is excluded under
// GROUP BY (unsupported by the CAPE executor, by design) and restricted to
// 32-bit-safe column pairs (see the package doc hole list).
func (c *Corpus) randAgg(rng *rand.Rand, grouped bool) plan.AggExpr {
	m := func() string { return c.measures[rng.Intn(len(c.measures))] }
	for {
		switch rng.Intn(8) {
		case 0:
			return plan.AggExpr{Kind: plan.AggSumCol, A: m()}
		case 1:
			if grouped {
				continue
			}
			pr := c.mulPairs[rng.Intn(len(c.mulPairs))]
			return plan.AggExpr{Kind: plan.AggSumMul, A: pr[0], B: pr[1]}
		case 2:
			pr := c.subPairs[rng.Intn(len(c.subPairs))]
			return plan.AggExpr{Kind: plan.AggSumSub, A: pr[0], B: pr[1]}
		case 3:
			return plan.AggExpr{Kind: plan.AggCount}
		case 4:
			return plan.AggExpr{Kind: plan.AggMin, A: m()}
		case 5:
			return plan.AggExpr{Kind: plan.AggMax, A: m()}
		case 6:
			return plan.AggExpr{Kind: plan.AggAvg, A: m()}
		default:
			return plan.AggExpr{Kind: plan.AggCountDistinct, A: m()}
		}
	}
}

func (c *Corpus) dimSpecFor(table string) dimSpec {
	for _, d := range c.dims {
		if d.table == table {
			return d
		}
	}
	panic("diffcheck: unknown dimension " + table)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// column is a small helper for tests.
func column(db *storage.Database, table, col string) *storage.Column {
	return db.MustTable(table).MustColumn(col)
}
