package diffcheck

import (
	"sync"
	"testing"

	"castle/internal/plan"
)

// fuzzCorpus is shared across fuzz iterations: corpus construction is the
// expensive part and the corpus is immutable under Check.
var (
	fuzzOnce   sync.Once
	fuzzShared *Corpus
)

func fuzzCorpus() *Corpus {
	fuzzOnce.Do(func() { fuzzShared = NewTiny(1) })
	return fuzzShared
}

// FuzzDifferentialQuery is the native fuzz entry: the input is a query
// seed; the property is that the whole engine matrix agrees with the scalar
// reference and keeps its books balanced. Run with
//
//	go test ./internal/diffcheck -fuzz FuzzDifferentialQuery -fuzztime 10s
func FuzzDifferentialQuery(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	opts := DefaultOptions()
	f.Fuzz(func(t *testing.T, seed int64) {
		c := fuzzCorpus()
		q := c.Generate(seed)
		m := c.Check(q, opts)
		if m == nil {
			return
		}
		shrunk := Shrink(q, func(cand *plan.Query) bool { return c.Check(cand, opts) != nil })
		if final := c.Check(shrunk, opts); final != nil {
			final.Seed = seed
			m = final
		}
		t.Fatalf("seed %d:\n%s", seed, m)
	})
}
