// Package plan defines Castle's logical query representation and the
// physical plan shapes of Section 3.4 (left-deep, right-deep, zig-zag).
//
// A parsed SELECT is bound against a schema into a star Query: one fact
// relation, per-relation selection predicates, a set of fact-to-dimension
// join edges, group-by columns and aggregate expressions. The optimizer
// (internal/optimizer) turns a Query into a Physical plan; both the CAPE and
// the baseline executors consume the same structures.
package plan

import (
	"fmt"
	"strings"
)

// PredOp is a selection predicate operator.
type PredOp int

// Predicate operators.
const (
	PredEQ PredOp = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredBetween // inclusive range
	PredIn      // set membership (also folded OR-of-equalities)
)

func (o PredOp) String() string {
	switch o {
	case PredEQ:
		return "="
	case PredNE:
		return "<>"
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	case PredBetween:
		return "BETWEEN"
	case PredIn:
		return "IN"
	}
	return fmt.Sprintf("pred(%d)", int(o))
}

// Predicate is a single-column selection with literal operands already
// encoded into the column's 32-bit domain.
type Predicate struct {
	Table  string
	Column string
	Op     PredOp
	// Value is the operand for EQ/NE/LT/LE/GT/GE.
	Value uint32
	// Lo, Hi bound PredBetween (inclusive).
	Lo, Hi uint32
	// Values lists PredIn members.
	Values []uint32
	// Never marks a predicate that statically matches nothing (e.g. an
	// equality against a string absent from the dictionary).
	Never bool
}

func (p Predicate) String() string {
	if p.Never {
		return fmt.Sprintf("%s.%s NEVER", p.Table, p.Column)
	}
	switch p.Op {
	case PredBetween:
		return fmt.Sprintf("%s.%s BETWEEN %d AND %d", p.Table, p.Column, p.Lo, p.Hi)
	case PredIn:
		return fmt.Sprintf("%s.%s IN %v", p.Table, p.Column, p.Values)
	default:
		return fmt.Sprintf("%s.%s %s %d", p.Table, p.Column, p.Op, p.Value)
	}
}

// Matches evaluates the predicate against an encoded value.
func (p Predicate) Matches(v uint32) bool {
	if p.Never {
		return false
	}
	switch p.Op {
	case PredEQ:
		return v == p.Value
	case PredNE:
		return v != p.Value
	case PredLT:
		return v < p.Value
	case PredLE:
		return v <= p.Value
	case PredGT:
		return v > p.Value
	case PredGE:
		return v >= p.Value
	case PredBetween:
		return v >= p.Lo && v <= p.Hi
	case PredIn:
		for _, x := range p.Values {
			if v == x {
				return true
			}
		}
		return false
	}
	return false
}

// ColRef names table.column.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string { return c.Table + "." + c.Column }

// AggKind distinguishes aggregate expression shapes over fact columns.
type AggKind int

// Aggregate expression shapes.
const (
	AggSumCol        AggKind = iota // SUM(col)
	AggSumMul                       // SUM(a * b)
	AggSumSub                       // SUM(a - b)
	AggCount                        // COUNT(*) / COUNT(col)
	AggMin                          // MIN(col)
	AggMax                          // MAX(col)
	AggAvg                          // AVG(col), integer floor semantics
	AggCountDistinct                // COUNT(DISTINCT col)
)

// AggExpr is one aggregate output.
type AggExpr struct {
	Kind  AggKind
	A, B  string // fact column names (B unused for AggSumCol/AggCount)
	Alias string
}

func (a AggExpr) String() string {
	switch a.Kind {
	case AggSumCol:
		return fmt.Sprintf("SUM(%s)", a.A)
	case AggSumMul:
		return fmt.Sprintf("SUM(%s*%s)", a.A, a.B)
	case AggSumSub:
		return fmt.Sprintf("SUM(%s-%s)", a.A, a.B)
	case AggCount:
		return "COUNT(*)"
	case AggMin:
		return fmt.Sprintf("MIN(%s)", a.A)
	case AggMax:
		return fmt.Sprintf("MAX(%s)", a.A)
	case AggAvg:
		return fmt.Sprintf("AVG(%s)", a.A)
	case AggCountDistinct:
		return fmt.Sprintf("COUNT(DISTINCT %s)", a.A)
	}
	return "agg?"
}

// JoinEdge is a fact-to-dimension equi-join. The dimension key column is
// assumed unique (a primary key, as in every star schema): executors
// materialize at most one attribute tuple per key.
type JoinEdge struct {
	Dim    string // dimension relation
	FactFK string // fact foreign-key column
	DimKey string // dimension key column
	// NeedAttrs are dimension attributes the query projects or groups by;
	// the join must materialize them into fact-aligned vectors.
	NeedAttrs []string
}

func (j JoinEdge) String() string {
	s := fmt.Sprintf("%s (%s = %s)", j.Dim, j.FactFK, j.DimKey)
	if len(j.NeedAttrs) > 0 {
		s += " attrs=" + strings.Join(j.NeedAttrs, ",")
	}
	return s
}

// OrderTerm is one ORDER BY key: either a group-by column (KeyIdx >= 0)
// or an aggregate output (AggIdx >= 0).
type OrderTerm struct {
	KeyIdx int // index into GroupBy, or -1
	AggIdx int // index into Aggs, or -1
	Desc   bool
}

func (o OrderTerm) String() string {
	dir := "ASC"
	if o.Desc {
		dir = "DESC"
	}
	if o.KeyIdx >= 0 {
		return fmt.Sprintf("key[%d] %s", o.KeyIdx, dir)
	}
	return fmt.Sprintf("agg[%d] %s", o.AggIdx, dir)
}

// Query is a bound star-schema query.
type Query struct {
	Fact      string
	FactPreds []Predicate
	DimPreds  map[string][]Predicate
	Joins     []JoinEdge
	GroupBy   []ColRef
	Aggs      []AggExpr
	OrderBy   []OrderTerm
	// Limit caps the result rows after ordering; 0 means no limit.
	Limit int
}

// HasGroupCol reports whether table.column is already a group-by key.
func (q *Query) HasGroupCol(table, column string) bool {
	for _, g := range q.GroupBy {
		if g.Table == table && g.Column == column {
			return true
		}
	}
	return false
}

// JoinFor returns the join edge for a dimension table, or nil.
func (q *Query) JoinFor(dim string) *JoinEdge {
	for i := range q.Joins {
		if q.Joins[i].Dim == dim {
			return &q.Joins[i]
		}
	}
	return nil
}

// String renders a one-line summary.
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fact=%s joins=[", q.Fact)
	for i, j := range q.Joins {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(j.String())
	}
	b.WriteString("]")
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, " groupby=%v", q.GroupBy)
	}
	return b.String()
}

// Shape is a physical plan shape (§3.4, Figure 5).
type Shape int

// Plan shapes.
const (
	// LeftDeep uses the fact relation as the probe side throughout:
	// dimension partitions are stored in the CSB and probed once per fact
	// (or intermediate-result) row. Traditional systems favor this shape.
	LeftDeep Shape = iota
	// RightDeep stores the fact relation in the CSB; every dimension
	// probes it. Cost is independent of join order (§3.4).
	RightDeep
	// ZigZag starts right-deep and switches the probe direction mid-plan
	// once the intermediate result is smaller than the remaining
	// dimensions.
	ZigZag
)

func (s Shape) String() string {
	switch s {
	case LeftDeep:
		return "left-deep"
	case RightDeep:
		return "right-deep"
	case ZigZag:
		return "zig-zag"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Physical is an ordered join plan for a Query.
//
// Joins[0:Switch] execute right-deep (the filtered dimension probes the
// CSB-resident fact partition), Joins[Switch:] execute left-deep (the
// intermediate result probes CSB-resident dimension partitions). Switch ==
// len(Joins) is a pure right-deep plan; Switch == 0 is pure left-deep.
type Physical struct {
	Query  *Query
	Joins  []JoinEdge // execution order
	Switch int
	// EstimatedSearches is the optimizer's cost (Figure 5's unit).
	EstimatedSearches int64
}

// Shape classifies the plan.
func (p *Physical) Shape() Shape {
	switch {
	case p.Switch == 0 && len(p.Joins) > 0:
		return LeftDeep
	case p.Switch == len(p.Joins):
		return RightDeep
	default:
		return ZigZag
	}
}

// String renders the plan.
func (p *Physical) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan (%d searches est.): ", p.Shape(), p.EstimatedSearches)
	for i, j := range p.Joins {
		if i > 0 {
			b.WriteString(" -> ")
		}
		dir := "dim probes fact"
		if i >= p.Switch {
			dir = "intermediate probes dim"
		}
		fmt.Fprintf(&b, "%s[%s]", j.Dim, dir)
	}
	return b.String()
}
